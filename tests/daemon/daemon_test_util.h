#ifndef LSQCA_TESTS_DAEMON_TEST_UTIL_H
#define LSQCA_TESTS_DAEMON_TEST_UTIL_H

/**
 * @file
 * Shared plumbing for the daemon suite: per-test scratch directories,
 * the checked-in smoke spec, the real `lsqca` binary (LSQCA_CLI_BIN,
 * injected by CMake) used as the worker fleet, and a fixture that
 * runs an in-process Daemon on its own thread the way `lsqca serve`
 * would — signals off, stopped via requestStop().
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "common/fs.h"
#include "common/json.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/protocol.h"

namespace lsqca::test {

inline const char *kSmokeSpec = LSQCA_SOURCE_DIR "/specs/smoke.json";
inline const char *kCliBin = LSQCA_CLI_BIN;

/** A fresh empty directory unique to the running test. */
inline std::string
scratchDir(const std::string &tag)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string dir = ::testing::TempDir() + "lsqca_daemon_" +
                            info->test_suite_name() + "_" +
                            info->name() + "_" + tag;
    std::filesystem::remove_all(dir);
    fsutil::makeDirs(dir);
    return dir;
}

/** Copy the smoke spec under a different campaign name. */
inline std::string
specNamed(const std::string &dir, const std::string &name)
{
    Json spec = Json::load(kSmokeSpec);
    spec.set("name", name);
    const std::string path = dir + "/" + name + ".json";
    spec.write(path);
    return path;
}

/** An in-process `lsqca serve` running on a background thread. */
class DaemonFixture
{
  public:
    explicit DaemonFixture(daemon::DaemonOptions options)
    {
        options.handleSignals = false;
        if (options.workerExe.empty())
            options.workerExe = kCliBin;
        server_ = std::make_unique<daemon::Daemon>(std::move(options));
        thread_ = std::thread([this] { exitCode_ = server_->run(); });
        // The socket file appearing means the accept loop is live.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (!fsutil::exists(server_->socketPath()) &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        EXPECT_TRUE(fsutil::exists(server_->socketPath()));
    }

    ~DaemonFixture() { stop(); }

    /** Stop the daemon (idempotent) and return its exit code. */
    int
    stop()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
        return exitCode_;
    }

    /** Join a daemon that is expected to exit on its own (drain). */
    int
    waitExit()
    {
        if (thread_.joinable())
            thread_.join();
        return exitCode_;
    }

    daemon::Daemon &server() { return *server_; }
    const std::string &socketPath() const
    {
        return server_->socketPath();
    }

  private:
    std::unique_ptr<daemon::Daemon> server_;
    std::thread thread_;
    int exitCode_ = -1;
};

inline Json
request(const std::string &op)
{
    Json body = Json::object();
    body.set("op", op);
    body.set("proto", daemon::kProtocol);
    return body;
}

/** Submit @p specPath, optionally slowing every worker by @p sleep. */
inline Json
submitRequest(const std::string &specPath, std::int32_t shards,
              double sleepSeconds = 0.0)
{
    Json body = request("submit");
    body.set("spec",
             std::filesystem::absolute(specPath).string());
    body.set("shards", shards);
    body.set("no_timing", true);
    if (sleepSeconds > 0.0) {
        Json extra = Json::array();
        extra.push(Json("--test-sleep-seconds"));
        extra.push(Json(std::to_string(sleepSeconds)));
        body.set("extra_worker_args", std::move(extra));
    }
    return body;
}

/** Poll `status` until @p campaign is inactive (or 60 s pass). */
inline Json
awaitInactive(const std::string &socketPath,
              const std::string &campaign)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        daemon::Client client(socketPath);
        Json body = request("status");
        body.set("campaign", campaign);
        Json response = client.call(body);
        const Json *active = response.find("active");
        if (active != nullptr && !active->asBool())
            return response;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "campaign " << campaign << " never finished";
    return Json();
}

} // namespace lsqca::test

#endif // LSQCA_TESTS_DAEMON_TEST_UTIL_H
