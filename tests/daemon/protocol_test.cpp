/**
 * @file
 * Framing contract of lsqca-daemon-v1 (daemon/protocol.h): every
 * accepted line is a JSON object naming a known op, everything else
 * is rejected with a message the daemon can hand back verbatim, and
 * the response envelopes always carry ok + proto.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "daemon/protocol.h"

namespace lsqca::daemon {
namespace {

std::string
rejectionFor(const std::string &line)
{
    try {
        parseRequest(line);
    } catch (const ConfigError &error) {
        return error.what();
    }
    ADD_FAILURE() << "accepted: " << line;
    return "";
}

TEST(Protocol, ParsesEveryKnownOp)
{
    for (const char *op : {"ping", "submit", "status", "list", "watch",
                           "cancel", "drain"}) {
        const Request parsed = parseRequest(
            std::string("{\"op\":\"") + op + "\",\"proto\":\"" +
            kProtocol + "\"}");
        EXPECT_EQ(parsed.op, op);
        EXPECT_TRUE(parsed.body.isObject());
    }
}

TEST(Protocol, ProtoMemberIsOptionalButCheckedWhenPresent)
{
    EXPECT_EQ(parseRequest("{\"op\":\"ping\"}").op, "ping");
    EXPECT_NE(rejectionFor(
                  "{\"op\":\"ping\",\"proto\":\"lsqca-daemon-v0\"}")
                  .find("protocol mismatch"),
              std::string::npos);
}

TEST(Protocol, RejectsMalformedFrames)
{
    // Not JSON at all.
    EXPECT_NE(rejectionFor("{oops").find("malformed frame"),
              std::string::npos);
    EXPECT_NE(rejectionFor("").find("malformed frame"),
              std::string::npos);
    // JSON, but not an object.
    EXPECT_NE(rejectionFor("[1,2,3]").find("expected a JSON object"),
              std::string::npos);
    EXPECT_NE(rejectionFor("42").find("expected a JSON object"),
              std::string::npos);
    // An object without a usable op.
    EXPECT_NE(rejectionFor("{}").find("missing string \"op\""),
              std::string::npos);
    EXPECT_NE(rejectionFor("{\"op\":7}").find("missing string \"op\""),
              std::string::npos);
}

TEST(Protocol, RejectsUnknownOpsByName)
{
    const std::string what =
        rejectionFor("{\"op\":\"reboot\"}");
    EXPECT_NE(what.find("unknown op \"reboot\""), std::string::npos);
    // The rejection teaches the vocabulary.
    EXPECT_NE(what.find("ping|submit|status"), std::string::npos);
}

TEST(Protocol, ResponseEnvelopesCarryOkAndProto)
{
    const Json ok = okResponse();
    EXPECT_TRUE(ok.find("ok")->asBool());
    EXPECT_EQ(ok.find("proto")->asString(), kProtocol);

    const Json error = errorResponse("broken");
    EXPECT_FALSE(error.find("ok")->asBool());
    EXPECT_EQ(error.find("proto")->asString(), kProtocol);
    EXPECT_EQ(error.find("error")->asString(), "broken");
}

} // namespace
} // namespace lsqca::daemon
