/**
 * @file
 * End-to-end coverage of the multi-tenant sweep daemon (src/daemon)
 * against the real `lsqca` binary as its worker fleet. The invariants
 * pinned here are the ones docs/DAEMON.md promises: a hostile or
 * clumsy client cannot take the daemon down, two concurrent campaigns
 * share the worker pool fairly and still merge byte-identical to
 * direct unsharded runs, and a stopped daemon restarts without losing
 * completed work.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "api/spec.h"
#include "common/error.h"
#include "common/fs.h"
#include "daemon_test_util.h"
#include "service/journal.h"
#include "service/queue.h"
#include "service/scheduler.h"

namespace lsqca::daemon {
namespace {

using service::QueueState;
using service::TaskStatus;

/** Direct in-process --no-timing run; returns the BENCH file bytes. */
std::string
goldenRun(const std::string &specPath, const std::string &outDir)
{
    const api::SweepSpec spec = api::SweepSpec::load(specPath);
    api::BenchmarkRegistry registry = api::BenchmarkRegistry::paper();
    api::RunSpecOptions options;
    options.threads = 2;
    options.outDir = outDir;
    options.noTiming = true;
    const api::SpecRun run = api::runSpec(spec, registry, options);
    return fsutil::readFile(run.jsonPath);
}

DaemonOptions
baseOptions(const std::string &root, std::int32_t workers)
{
    DaemonOptions options;
    options.root = root;
    options.workers = workers;
    options.pollSeconds = 0.002;
    return options;
}

std::vector<Json>
journalEvents(const std::string &path)
{
    std::vector<Json> events;
    const std::string bytes = fsutil::readFile(path);
    std::size_t from = 0;
    while (from < bytes.size()) {
        const std::size_t to = bytes.find('\n', from);
        if (to == std::string::npos)
            break; // torn tail: only possible at a crash
        if (to > from)
            events.push_back(Json::parse(bytes.substr(from, to - from)));
        from = to + 1;
    }
    return events;
}

std::vector<std::string>
dispatchOrder(const std::string &root)
{
    std::vector<std::string> order;
    for (const Json &event :
         journalEvents(root + "/daemon.events.jsonl"))
        if (event.find("event")->asString() == "dispatch")
            order.push_back(event.find("campaign")->asString());
    return order;
}

bool
journalHasEvent(const std::string &path, const std::string &kind)
{
    for (const Json &event : journalEvents(path))
        if (event.find("event")->asString() == kind)
            return true;
    return false;
}

TEST(Daemon, SurvivesMalformedFramesAndUnknownOps)
{
    const std::string root = test::scratchDir("hostile");
    test::DaemonFixture fixture(baseOptions(root, 1));
    Client client(fixture.socketPath());

    // Raw bytes that are not JSON (Client::call would have quoted a
    // Json string into a legal frame).
    ASSERT_TRUE(net::sendLine(client.fd(), "{this is not json"));
    std::string raw;
    ASSERT_TRUE(client.readLine(raw));
    const Json malformed = Json::parse(raw);
    EXPECT_FALSE(malformed.find("ok")->asBool());
    EXPECT_NE(malformed.find("error")->asString().find(
                  "malformed frame"),
              std::string::npos);

    // The connection survives the bad frame.
    const Json pong = client.call(test::request("ping"));
    EXPECT_TRUE(pong.find("ok")->asBool());
    EXPECT_TRUE(pong.find("pong")->asBool());
    EXPECT_EQ(pong.find("campaigns")->asInt(), 0);

    Json rebootBody = Json::object();
    rebootBody.set("op", "reboot");
    const Json unknown = client.call(rebootBody);
    EXPECT_FALSE(unknown.find("ok")->asBool());
    EXPECT_NE(unknown.find("error")->asString().find(
                  "unknown op \"reboot\""),
              std::string::npos);

    EXPECT_TRUE(client.call(test::request("ping"))
                    .find("ok")
                    ->asBool());
    EXPECT_EQ(fixture.stop(), 0);
}

TEST(Daemon, OversizedFrameDropsThatPeerOnly)
{
    const std::string root = test::scratchDir("oversized");
    test::DaemonFixture fixture(baseOptions(root, 1));

    {
        Client hostile(fixture.socketPath());
        // One unterminated frame past the 1 MiB guard.
        std::string blob(net::kMaxLineBytes + 4096, 'x');
        EXPECT_TRUE(net::sendLine(hostile.fd(), blob));
        std::string line;
        ASSERT_TRUE(hostile.readLine(line));
        const Json response = Json::parse(line);
        EXPECT_FALSE(response.find("ok")->asBool());
        EXPECT_NE(response.find("error")->asString().find(
                      "frame exceeds"),
                  std::string::npos);
        // The daemon hangs up on the unrecoverable connection.
        EXPECT_FALSE(hostile.readLine(line));
    }

    // Other clients are unaffected.
    Client fresh(fixture.socketPath());
    EXPECT_TRUE(fresh.call(test::request("ping"))
                    .find("ok")
                    ->asBool());
    EXPECT_EQ(fixture.stop(), 0);
}

TEST(Daemon, StatusForAnUnknownCampaignIsAnError)
{
    const std::string root = test::scratchDir("unknown");
    test::DaemonFixture fixture(baseOptions(root, 1));
    Client client(fixture.socketPath());
    Json body = test::request("status");
    body.set("campaign", "absent");
    const Json response = client.call(body);
    EXPECT_FALSE(response.find("ok")->asBool());
    EXPECT_NE(response.find("error")->asString().find("no campaign"),
              std::string::npos);
    EXPECT_EQ(fixture.stop(), 0);
}

TEST(Daemon, TwoCampaignsInterleaveFairlyAndMergeByteIdentical)
{
    const std::string root = test::scratchDir("fair");
    const std::string specB = test::specNamed(root, "smoke_b");
    const std::string goldenA =
        goldenRun(test::kSmokeSpec, root + "/golden_a");
    const std::string goldenB = goldenRun(specB, root + "/golden_b");

    // ONE worker slot: the dispatch order in the daemon journal IS
    // the fairness record. Workers sleep long enough that the second
    // campaign is admitted while the first shard still runs.
    test::DaemonFixture fixture(baseOptions(root, 1));
    {
        Client client(fixture.socketPath());
        const Json a = client.call(
            test::submitRequest(test::kSmokeSpec, 4, 0.3));
        ASSERT_TRUE(a.find("ok")->asBool()) << a.dump(0);
        EXPECT_EQ(a.find("leg")->asString(), "submit");
        const Json b =
            client.call(test::submitRequest(specB, 4, 0.3));
        ASSERT_TRUE(b.find("ok")->asBool()) << b.dump(0);

        // A repeat submit while active is refused.
        const Json dup = client.call(
            test::submitRequest(test::kSmokeSpec, 4, 0.3));
        EXPECT_FALSE(dup.find("ok")->asBool());
        EXPECT_NE(dup.find("error")->asString().find(
                      "already active"),
                  std::string::npos);
    }
    test::awaitInactive(fixture.socketPath(), "smoke");
    test::awaitInactive(fixture.socketPath(), "smoke_b");

    EXPECT_EQ(fsutil::readFile(root +
                               "/campaigns/smoke/BENCH_smoke.json"),
              goldenA);
    EXPECT_EQ(
        fsutil::readFile(root +
                         "/campaigns/smoke_b/BENCH_smoke_b.json"),
        goldenB);

    // Fairness: 4 dispatches each, interleaved — neither campaign
    // monopolizes the single slot, and weight 1 everywhere bounds a
    // campaign's consecutive dispatches at 2 (one leading turn before
    // the rival is admitted, then strict alternation).
    const std::vector<std::string> order = dispatchOrder(root);
    EXPECT_EQ(std::count(order.begin(), order.end(), "smoke"), 4);
    EXPECT_EQ(std::count(order.begin(), order.end(), "smoke_b"), 4);
    std::size_t runLength = 1;
    std::size_t maxRun = 1;
    for (std::size_t i = 1; i < order.size(); ++i) {
        runLength = order[i] == order[i - 1] ? runLength + 1 : 1;
        maxRun = std::max(maxRun, runLength);
    }
    EXPECT_LE(maxRun, 2u) << "dispatch order not interleaved";
    const auto firstB =
        std::find(order.begin(), order.end(), "smoke_b");
    ASSERT_NE(firstB, order.end());
    // smoke shards were still pending when smoke_b got its first
    // turn: true interleaving, not back-to-back campaigns.
    EXPECT_NE(std::find(firstB, order.end(), std::string("smoke")),
              order.end());
    EXPECT_EQ(fixture.stop(), 0);
}

TEST(Daemon, ConcurrentSubmitsFromTwoClientsBothComplete)
{
    const std::string root = test::scratchDir("concurrent");
    const std::string specB = test::specNamed(root, "smoke_b");
    const std::string goldenA =
        goldenRun(test::kSmokeSpec, root + "/golden_a");
    const std::string goldenB = goldenRun(specB, root + "/golden_b");

    test::DaemonFixture fixture(baseOptions(root, 2));
    Json responseA;
    Json responseB;
    std::thread clientA([&] {
        Client client(fixture.socketPath());
        responseA =
            client.call(test::submitRequest(test::kSmokeSpec, 2));
    });
    std::thread clientB([&] {
        Client client(fixture.socketPath());
        responseB = client.call(test::submitRequest(specB, 2));
    });
    clientA.join();
    clientB.join();
    ASSERT_TRUE(responseA.find("ok")->asBool()) << responseA.dump(0);
    ASSERT_TRUE(responseB.find("ok")->asBool()) << responseB.dump(0);

    test::awaitInactive(fixture.socketPath(), "smoke");
    test::awaitInactive(fixture.socketPath(), "smoke_b");
    EXPECT_EQ(fsutil::readFile(root +
                               "/campaigns/smoke/BENCH_smoke.json"),
              goldenA);
    EXPECT_EQ(
        fsutil::readFile(root +
                         "/campaigns/smoke_b/BENCH_smoke_b.json"),
        goldenB);
    EXPECT_EQ(fixture.stop(), 0);
}

TEST(Daemon, WatchStreamsTheJournalAndDisconnectIsHarmless)
{
    const std::string root = test::scratchDir("watch");
    test::DaemonFixture fixture(baseOptions(root, 2));
    {
        Client submit(fixture.socketPath());
        ASSERT_TRUE(
            submit.call(test::submitRequest(test::kSmokeSpec, 4, 0.2))
                .find("ok")
                ->asBool());
    }

    Json watchBody = test::request("watch");
    watchBody.set("campaign", "smoke");

    // A watcher that reads a little and vanishes mid-stream.
    {
        Client quitter(fixture.socketPath());
        const Json accepted = quitter.call(watchBody);
        ASSERT_TRUE(accepted.find("ok")->asBool());
        EXPECT_EQ(accepted.find("events")->asString(),
                  service::kEventsSchema);
        std::string line;
        EXPECT_TRUE(quitter.readLine(line));
        // Destructor closes the socket with the stream mid-flight.
    }

    // A patient watcher sees the whole journal, ending with `done`.
    Client watcher(fixture.socketPath());
    ASSERT_TRUE(watcher.call(watchBody).find("ok")->asBool());
    std::vector<Json> events;
    std::string line;
    while (watcher.readLine(line))
        events.push_back(Json::parse(line));
    ASSERT_GE(events.size(), 3u);
    // First line is the schema header, last the completion verdict —
    // the same lsqca-events-v1 stream the on-disk journal holds.
    EXPECT_EQ(events.front().find("event")->asString(), "journal");
    EXPECT_EQ(events.front().find("schema")->asString(),
              service::kEventsSchema);
    EXPECT_EQ(events.back().find("event")->asString(), "done");
    EXPECT_TRUE(events.back().find("complete")->asBool());
    for (const Json &event : events)
        EXPECT_TRUE(event.find("seq")!= nullptr &&
                    event.find("event") != nullptr)
            << "journal line missing envelope fields";
    EXPECT_EQ(fixture.stop(), 0);
}

TEST(Daemon, CancelLeavesAResumableQueue)
{
    const std::string root = test::scratchDir("cancel");
    const std::string golden =
        goldenRun(test::kSmokeSpec, root + "/golden");
    test::DaemonFixture fixture(baseOptions(root, 1));
    {
        Client client(fixture.socketPath());
        ASSERT_TRUE(
            client.call(test::submitRequest(test::kSmokeSpec, 4, 5.0))
                .find("ok")
                ->asBool());
        Json cancelBody = test::request("cancel");
        cancelBody.set("campaign", "smoke");
        const Json cancelled = client.call(cancelBody);
        ASSERT_TRUE(cancelled.find("ok")->asBool())
            << cancelled.dump(0);
        EXPECT_TRUE(cancelled.find("cancelled")->asBool());

        // Cancelling twice is an error: the campaign is gone.
        EXPECT_FALSE(client.call(cancelBody).find("ok")->asBool());
    }

    const std::string stateDir = root + "/campaigns/smoke";
    EXPECT_TRUE(journalHasEvent(service::Journal::pathFor(stateDir),
                                "shutdown"));
    const QueueState parked =
        QueueState::load(service::queuePathFor(stateDir));
    EXPECT_EQ(parked.countWithStatus(TaskStatus::Done), 0u);

    // Re-submitting the same spec resumes the parked campaign.
    {
        Client client(fixture.socketPath());
        const Json resumed =
            client.call(test::submitRequest(test::kSmokeSpec, 4));
        ASSERT_TRUE(resumed.find("ok")->asBool()) << resumed.dump(0);
        EXPECT_EQ(resumed.find("leg")->asString(), "resume");
    }
    test::awaitInactive(fixture.socketPath(), "smoke");
    EXPECT_EQ(fsutil::readFile(stateDir + "/BENCH_smoke.json"),
              golden);
    EXPECT_EQ(fixture.stop(), 0);
}

TEST(Daemon, DrainRefusesNewWorkAndExitsWhenIdle)
{
    const std::string root = test::scratchDir("drain");
    const std::string specB = test::specNamed(root, "smoke_b");
    test::DaemonFixture fixture(baseOptions(root, 2));
    {
        Client client(fixture.socketPath());
        ASSERT_TRUE(
            client.call(test::submitRequest(test::kSmokeSpec, 2, 0.2))
                .find("ok")
                ->asBool());
        const Json draining = client.call(test::request("drain"));
        ASSERT_TRUE(draining.find("ok")->asBool());
        EXPECT_TRUE(draining.find("draining")->asBool());

        const Json refused =
            client.call(test::submitRequest(specB, 2));
        EXPECT_FALSE(refused.find("ok")->asBool());
        EXPECT_NE(refused.find("error")->asString().find("draining"),
                  std::string::npos);
    }
    // The active campaign finishes, then the daemon exits by itself.
    EXPECT_EQ(fixture.waitExit(), 0);
    const QueueState done = QueueState::load(
        service::queuePathFor(root + "/campaigns/smoke"));
    EXPECT_EQ(done.countWithStatus(TaskStatus::Done), 2u);
    EXPECT_TRUE(
        journalHasEvent(root + "/daemon.events.jsonl", "shutdown"));
}

TEST(Daemon, StopMidFlightThenRestartResumesWithoutLosingWork)
{
    const std::string root = test::scratchDir("restart");
    const std::string golden =
        goldenRun(test::kSmokeSpec, root + "/golden");
    const std::string stateDir = root + "/campaigns/smoke";

    std::size_t doneBeforeStop = 0;
    {
        test::DaemonFixture fixture(baseOptions(root, 1));
        Client client(fixture.socketPath());
        ASSERT_TRUE(
            client.call(test::submitRequest(test::kSmokeSpec, 4, 0.3))
                .find("ok")
                ->asBool());
        // Let at least one shard land, then pull the plug with the
        // campaign verifiably mid-flight.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(30);
        while (std::chrono::steady_clock::now() < deadline) {
            Json body = test::request("status");
            body.set("campaign", "smoke");
            const Json status = client.call(body);
            const QueueState queue =
                QueueState::fromJson(*status.find("queue"));
            doneBeforeStop = queue.countWithStatus(TaskStatus::Done);
            if (doneBeforeStop >= 1)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        ASSERT_GE(doneBeforeStop, 1u);
        EXPECT_EQ(fixture.stop(), 0);
    }

    // The stop behaved like SIGTERM: shutdown journaled everywhere,
    // completed work persisted, interrupted attempts left resumable.
    EXPECT_TRUE(
        journalHasEvent(root + "/daemon.events.jsonl", "shutdown"));
    EXPECT_TRUE(journalHasEvent(service::Journal::pathFor(stateDir),
                                "shutdown"));
    const QueueState parked =
        QueueState::load(service::queuePathFor(stateDir));
    EXPECT_GE(parked.countWithStatus(TaskStatus::Done),
              doneBeforeStop);
    EXPECT_LT(parked.countWithStatus(TaskStatus::Done), 4u);

    {
        test::DaemonFixture fixture(baseOptions(root, 2));
        Client client(fixture.socketPath());
        const Json resumed =
            client.call(test::submitRequest(test::kSmokeSpec, 4));
        ASSERT_TRUE(resumed.find("ok")->asBool()) << resumed.dump(0);
        EXPECT_EQ(resumed.find("leg")->asString(), "resume");
        test::awaitInactive(fixture.socketPath(), "smoke");
        EXPECT_EQ(fixture.stop(), 0);
    }
    const QueueState finished =
        QueueState::load(service::queuePathFor(stateDir));
    EXPECT_EQ(finished.countWithStatus(TaskStatus::Done), 4u);
    EXPECT_EQ(fsutil::readFile(stateDir + "/BENCH_smoke.json"),
              golden);
}

TEST(Daemon, SecondDaemonOnTheSameRootFailsFast)
{
    const std::string root = test::scratchDir("exclusive");
    test::DaemonFixture fixture(baseOptions(root, 1));

    DaemonOptions rivalOptions = baseOptions(root, 1);
    rivalOptions.handleSignals = false;
    rivalOptions.workerExe = test::kCliBin;
    Daemon rival(std::move(rivalOptions));
    // If the lock were ever missed, the preset stop keeps run() from
    // serving forever; the root flock must reject it first.
    rival.requestStop();
    EXPECT_THROW(rival.run(), ConfigError);
    EXPECT_EQ(fixture.stop(), 0);
}

} // namespace
} // namespace lsqca::daemon
