/**
 * @file
 * SimObserver event-stream tests: the telemetry layer's contracts.
 *
 *  - Shim fidelity: recordTrace == an explicit TraceCollector, and
 *    recordBreakdown == an explicit StallAttribution, on seed programs
 *    across point/line/hybrid/conventional machines (the pre-redesign
 *    recordTrace semantics are pinned by simulator_test.cpp's trace
 *    tests, which now run through the shim).
 *  - Conservation: per-opcode counts/beats equal the SimResult arrays,
 *    motion splits sum to memoryBeats, magic stalls sum to
 *    magicStallBeats, heatmap touches equal occupy events.
 *  - Determinism: JSONL event streams are bit-identical across sweep
 *    worker counts and across reruns, and a golden stream pins the
 *    exact bytes for a small Sec. V program.
 */

#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "circuit/lowering.h"
#include "common/error.h"
#include "sim/collectors/bank_heatmap.h"
#include "sim/collectors/jsonl_writer.h"
#include "sim/collectors/stall_attribution.h"
#include "sim/collectors/timeline.h"
#include "sim/collectors/trace_collector.h"
#include "sweep/sweep.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

using collectors::BankHeatmap;
using collectors::JsonlWriter;
using collectors::StallAttribution;
using collectors::Timeline;
using collectors::TraceCollector;

const Program &
adderProgram()
{
    static const Program program =
        translate(lowerToCliffordT(makeAdder(8)));
    return program;
}

/** The machines every contract is checked on. */
std::vector<SimOptions>
machines()
{
    std::vector<SimOptions> options(4);
    options[0].arch.sam = SamKind::Point;
    options[1].arch.sam = SamKind::Line;
    options[1].arch.banks = 2;
    options[2].arch.sam = SamKind::Line;
    options[2].arch.hybridFraction = 0.25;
    options[3].arch.sam = SamKind::Conventional;
    return options;
}

TEST(Observer, TraceShimEqualsExplicitCollector)
{
    const Program &p = adderProgram();
    for (SimOptions opts : machines()) {
        opts.recordTrace = true;
        const SimResult via_shim = simulate(p, opts);

        opts.recordTrace = false;
        TraceCollector collector;
        opts.observers = {&collector};
        simulate(p, opts);

        ASSERT_EQ(via_shim.trace.size(), collector.trace().size());
        for (std::size_t i = 0; i < via_shim.trace.size(); ++i) {
            EXPECT_EQ(via_shim.trace[i].time, collector.trace()[i].time);
            EXPECT_EQ(via_shim.trace[i].variable,
                      collector.trace()[i].variable);
        }
        EXPECT_EQ(via_shim.magicTimes, collector.magicTimes());
        EXPECT_EQ(via_shim.motionSamples, collector.motionSamples());
    }
}

TEST(Observer, BreakdownShimEqualsExplicitCollector)
{
    const Program &p = adderProgram();
    for (SimOptions opts : machines()) {
        opts.recordBreakdown = true;
        const SimResult via_shim = simulate(p, opts);
        ASSERT_FALSE(via_shim.breakdown.empty());

        opts.recordBreakdown = false;
        StallAttribution collector;
        opts.observers = {&collector};
        simulate(p, opts);
        EXPECT_EQ(via_shim.breakdown, collector.rows());
    }
}

TEST(Observer, StallAttributionConservesResultTotals)
{
    const Program &p = adderProgram();
    for (SimOptions opts : machines()) {
        StallAttribution stalls;
        opts.observers = {&stalls};
        // A cold buffer makes magic stalls nonzero on every machine.
        opts.arch.warmBuffer = false;
        const SimResult r = simulate(p, opts);

        std::int64_t motion = 0;
        std::int64_t magic_stall = 0;
        for (const OpcodeSplit &row : stalls.rows()) {
            const auto op = static_cast<std::size_t>(row.op);
            EXPECT_EQ(row.count, r.opcodeCount[op]);
            EXPECT_EQ(row.beats, r.opcodeBeats[op]);
            motion += row.split.motionBeats();
            magic_stall += row.split.magicStall;
        }
        EXPECT_EQ(motion, r.memoryBeats);
        EXPECT_EQ(magic_stall, r.magicStallBeats);
        EXPECT_GT(r.magicStallBeats, 0);
        EXPECT_EQ(stalls.totals().motionBeats(), r.memoryBeats);
    }
}

TEST(Observer, NullObserverLeavesResultsIdentical)
{
    const Program &p = adderProgram();
    for (SimOptions opts : machines()) {
        const SimResult plain = simulate(p, opts);
        SimObserver null_observer;
        opts.observers = {&null_observer};
        const SimResult observed = simulate(p, opts);
        EXPECT_EQ(plain.execBeats, observed.execBeats);
        EXPECT_EQ(plain.cpi, observed.cpi);
        EXPECT_EQ(plain.memoryBeats, observed.memoryBeats);
        EXPECT_EQ(plain.magicStallBeats, observed.magicStallBeats);
        EXPECT_EQ(plain.opcodeCount, observed.opcodeCount);
        EXPECT_EQ(plain.opcodeBeats, observed.opcodeBeats);
    }
}

TEST(Observer, RejectsNullObserverPointer)
{
    SimOptions opts;
    opts.observers = {nullptr};
    EXPECT_THROW(simulate(adderProgram(), opts), ConfigError);
}

/** Counts raw events for cross-checks against the collectors. */
class CountingObserver : public SimObserver
{
  public:
    std::int64_t instructions = 0;
    std::int64_t magics = 0;
    std::int64_t occupies = 0;
    std::int64_t vacates = 0;
    std::int64_t nextIndex = 0;
    bool ordered = true;
    bool cellsFollowInstruction = true;
    std::int64_t lastInstructionIndex = -1;

    void
    onInstruction(const InstructionEvent &event) override
    {
        ordered = ordered && event.index == nextIndex;
        ++nextIndex;
        ++instructions;
        lastInstructionIndex = event.index;
    }

    void
    onMagic(const MagicEvent &event) override
    {
        ++magics;
        EXPECT_LE(event.request, event.available);
        EXPECT_LE(event.available, event.end);
        EXPECT_EQ(event.index, lastInstructionIndex);
    }

    void
    onBankCell(const BankCellEvent &event) override
    {
        if (event.kind == CellEventKind::Occupy)
            ++occupies;
        else
            ++vacates;
        // Initial placement (-1) precedes instruction 0; afterwards a
        // cell event always follows its own instruction event.
        cellsFollowInstruction =
            cellsFollowInstruction &&
            (event.index == -1 || event.index == lastInstructionIndex);
    }
};

TEST(Observer, EventStreamOrderingContract)
{
    const Program &p = adderProgram();
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    CountingObserver counts;
    opts.observers = {&counts};
    const SimResult r = simulate(p, opts);

    EXPECT_TRUE(counts.ordered);
    EXPECT_TRUE(counts.cellsFollowInstruction);
    EXPECT_EQ(counts.instructions, r.instructionsSimulated);
    EXPECT_EQ(counts.magics,
              r.opcodeCount[static_cast<std::size_t>(Opcode::PM)]);
    EXPECT_EQ(counts.magics, r.magicConsumed);
    // Every vacate empties a cell some occupy filled.
    EXPECT_LE(counts.vacates, counts.occupies);
}

TEST(Observer, BankHeatmapAccountingMatchesRawEvents)
{
    const Program &p = adderProgram();
    for (SimOptions opts : machines()) {
        if (opts.arch.sam == SamKind::Conventional)
            continue;
        BankHeatmap heatmap;
        CountingObserver counts;
        opts.observers = {&heatmap, &counts};
        const SimResult r = simulate(p, opts);

        std::int64_t touches = 0;
        std::int64_t occupancy_beats = 0;
        std::int64_t cells = 0;
        for (const BankHeatmap::BankStats &bank : heatmap.banks()) {
            for (const BankHeatmap::CellStats &cell : bank.cells) {
                EXPECT_FALSE(cell.occupied); // closed at onSimEnd
                EXPECT_GE(cell.occupancyBeats, 0);
                EXPECT_LE(cell.occupancyBeats, r.execBeats);
                touches += cell.touches;
                occupancy_beats += cell.occupancyBeats;
                ++cells;
            }
        }
        EXPECT_EQ(touches, counts.occupies);
        EXPECT_EQ(heatmap.execBeats(), r.execBeats);
        EXPECT_LE(occupancy_beats, cells * r.execBeats);
        EXPECT_GT(occupancy_beats, 0);
    }
}

TEST(Observer, TimelineRingKeepsLastRecords)
{
    const Program &p = adderProgram();
    SimOptions opts;
    opts.arch.sam = SamKind::Conventional;
    Timeline timeline(4);
    opts.observers = {&timeline};
    const SimResult r = simulate(p, opts);

    EXPECT_EQ(timeline.seen(), r.instructionsSimulated);
    const auto records = timeline.records();
    ASSERT_EQ(records.size(), 4u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].index,
                  r.instructionsSimulated - 4 +
                      static_cast<std::int64_t>(i));
}

TEST(Observer, SimEndSeesShimOutput)
{
    // The SimEndEvent contract promises the *finished* result: when
    // the recordTrace/recordBreakdown shims are active, onSimEnd must
    // observe their vectors already in place.
    class EndInspector : public SimObserver
    {
      public:
        std::size_t traceSize = 0;
        std::size_t breakdownSize = 0;
        std::int64_t execBeats = -1;

        void
        onSimEnd(const SimEndEvent &event) override
        {
            traceSize = event.result->trace.size();
            breakdownSize = event.result->breakdown.size();
            execBeats = event.result->execBeats;
        }
    };

    const Program &p = adderProgram();
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    opts.recordTrace = true;
    opts.recordBreakdown = true;
    EndInspector inspector;
    opts.observers = {&inspector};
    const SimResult r = simulate(p, opts);

    EXPECT_EQ(inspector.traceSize, r.trace.size());
    EXPECT_GT(inspector.traceSize, 0u);
    EXPECT_EQ(inspector.breakdownSize, r.breakdown.size());
    EXPECT_GT(inspector.breakdownSize, 0u);
    EXPECT_EQ(inspector.execBeats, r.execBeats);
}

std::string
jsonlStream(const Program &p, SimOptions opts)
{
    std::ostringstream out;
    JsonlWriter writer(out);
    opts.observers = {&writer};
    simulate(p, opts);
    return out.str();
}

TEST(Observer, JsonlStreamStableAcrossRerunsAndMachines)
{
    const Program &p = adderProgram();
    for (const SimOptions &opts : machines()) {
        const std::string first = jsonlStream(p, opts);
        const std::string second = jsonlStream(p, opts);
        EXPECT_EQ(first, second);
        EXPECT_NE(first.find("\"event\":\"begin\""), std::string::npos);
        EXPECT_NE(first.find("\"event\":\"end\""), std::string::npos);
    }
}

TEST(Observer, SweepEventStreamsIdenticalAcrossWorkerCounts)
{
    const Program &p = adderProgram();
    const std::vector<SimOptions> archs = machines();

    auto streams = [&](std::int32_t threads) {
        // Per-job collectors: each job owns its writer, so worker
        // interleaving cannot mix streams.
        std::vector<std::ostringstream> outs(archs.size());
        std::vector<std::unique_ptr<JsonlWriter>> writers;
        std::vector<SweepJob> jobs;
        for (std::size_t i = 0; i < archs.size(); ++i) {
            writers.push_back(std::make_unique<JsonlWriter>(outs[i]));
            SweepJob job;
            job.name = "job" + std::to_string(i);
            job.program = &p;
            job.options = archs[i];
            job.options.observers = {writers.back().get()};
            jobs.push_back(std::move(job));
        }
        SweepEngine(SweepOptions{threads}).run(jobs);
        std::vector<std::string> result;
        for (auto &out : outs)
            result.push_back(out.str());
        return result;
    };

    const auto serial = streams(1);
    for (const std::string &stream : serial)
        EXPECT_FALSE(stream.empty());
    EXPECT_EQ(serial, streams(2));
    EXPECT_EQ(serial, streams(8));
}

/**
 * Golden JSONL for a small Sec. V program: one H, one T gadget, and a
 * CX on a 9-qubit point SAM — every event kind appears (instr, magic,
 * cell incl. the initial placement) with hand-checkable timing. The
 * golden file pins the exact bytes `lsqca trace` exports; regenerate
 * deliberately (see docs/OBSERVERS.md) if the event schema changes.
 */
TEST(Observer, GoldenJsonlForSmallSectionVProgram)
{
    Circuit circ(9);
    circ.h(0);
    circ.t(4);
    circ.cx(0, 8);
    const Program p = translate(lowerToCliffordT(circ));

    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    const std::string stream = jsonlStream(p, opts);

    const std::string path =
        std::string(LSQCA_SOURCE_DIR) + "/tests/golden/trace_small.jsonl";
    std::ifstream golden(path);
    ASSERT_TRUE(golden.good()) << "missing golden file " << path;
    std::ostringstream expected;
    expected << golden.rdbuf();
    EXPECT_EQ(stream, expected.str());
}

} // namespace
} // namespace lsqca
