#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "common/rng.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

/** Random Clifford+T circuit for property sweeps. */
Circuit
randomCircuit(std::int32_t qubits, std::int64_t gates, std::uint64_t seed)
{
    Circuit c(qubits);
    Rng rng(seed);
    for (std::int64_t i = 0; i < gates; ++i) {
        const auto q0 = static_cast<QubitId>(rng.below(qubits));
        switch (rng.below(6)) {
          case 0: c.h(q0); break;
          case 1: c.s(q0); break;
          case 2: c.t(q0); break;
          case 3: {
            auto q1 = static_cast<QubitId>(rng.below(qubits));
            if (q1 == q0)
                q1 = (q1 + 1) % qubits;
            c.cx(q0, q1);
            break;
          }
          case 4: {
            auto q1 = static_cast<QubitId>(rng.below(qubits));
            if (q1 == q0)
                q1 = (q1 + 1) % qubits;
            c.cz(q0, q1);
            break;
          }
          default: c.h(q0); break;
        }
    }
    return c;
}

struct PropertyCase
{
    std::uint64_t seed;
    SamKind sam;
    std::int32_t banks;
};

class SchedulerProperties : public ::testing::TestWithParam<PropertyCase>
{
  protected:
    Program
    program() const
    {
        const auto param = GetParam();
        return translate(randomCircuit(25, 300, param.seed));
    }

    SimOptions
    options() const
    {
        SimOptions opts;
        opts.arch.sam = GetParam().sam;
        opts.arch.banks = GetParam().banks;
        return opts;
    }
};

TEST_P(SchedulerProperties, ExecTimeIsPositiveAndFinite)
{
    const SimResult r = simulate(program(), options());
    EXPECT_GT(r.execBeats, 0);
    EXPECT_LT(r.execBeats, 1'000'000);
}

TEST_P(SchedulerProperties, Deterministic)
{
    const Program p = program();
    const SimResult a = simulate(p, options());
    const SimResult b = simulate(p, options());
    EXPECT_EQ(a.execBeats, b.execBeats);
    EXPECT_EQ(a.memoryBeats, b.memoryBeats);
}

TEST_P(SchedulerProperties, MoreFactoriesNeverSlower)
{
    const Program p = program();
    SimOptions opts = options();
    std::int64_t prev = -1;
    for (std::int32_t f : {1, 2, 4}) {
        opts.arch.factories = f;
        const auto beats = simulate(p, opts).execBeats;
        if (prev >= 0)
            EXPECT_LE(beats, prev) << "factories " << f;
        prev = beats;
    }
}

TEST_P(SchedulerProperties, BiggerBufferNeverSlower)
{
    const Program p = program();
    SimOptions opts = options();
    opts.arch.bufferCap = 1;
    const auto small = simulate(p, opts).execBeats;
    opts.arch.bufferCap = 16;
    const auto big = simulate(p, opts).execBeats;
    EXPECT_LE(big, small);
}

TEST_P(SchedulerProperties, SamNeverFasterThanConventional)
{
    // The conventional baseline has unit-time access and full ILP, so
    // with identical MSF capacity it lower-bounds the SAM machines.
    const Program p = program();
    const auto conv = simulateConventional(p).execBeats;
    const auto sam = simulate(p, options()).execBeats;
    EXPECT_GE(sam, conv);
}

TEST_P(SchedulerProperties, LsqcaDensityBeatsConventional)
{
    // At realistic sizes SAM density beats the 50% baseline; tiny
    // programs with heavy banking overheads are excluded by using a
    // 100-variable program here.
    const Program p =
        translate(randomCircuit(100, 120, GetParam().seed));
    const SimResult sam = simulate(p, options());
    EXPECT_GT(sam.density(), 0.5);
}

TEST_P(SchedulerProperties, MagicConsumptionMatchesProgram)
{
    const Program p = program();
    const SimResult r = simulate(p, options());
    EXPECT_EQ(r.magicConsumed, p.magicCount());
}

TEST_P(SchedulerProperties, CountedInstructionsExcludeMemoryTraffic)
{
    const Program p = program();
    const SimResult r = simulate(p, options());
    EXPECT_EQ(r.countedInstructions, p.countedInstructions());
    EXPECT_LE(r.countedInstructions, r.instructionsSimulated);
}

TEST_P(SchedulerProperties, TruncatedPrefixNeverExceedsFullTime)
{
    const Program p = program();
    SimOptions opts = options();
    const auto full = simulate(p, opts).execBeats;
    opts.maxInstructions = p.size() / 2;
    const auto half = simulate(p, opts).execBeats;
    EXPECT_LE(half, full);
}

TEST_P(SchedulerProperties, InMemoryOpsNeverSlower)
{
    // The Sec. V-C claim: in-memory execution removes load/store moves.
    const auto param = GetParam();
    const Circuit circ = randomCircuit(25, 300, param.seed);
    const Program in_mem = translate(circ);
    TranslateOptions topts;
    topts.inMemoryOps = false;
    const Program ld_st = translate(circ, topts);
    SimOptions opts = options();
    const auto fast = simulate(in_mem, opts).execBeats;
    opts.arch.inMemoryOps = false;
    const auto slow = simulate(ld_st, opts).execBeats;
    EXPECT_LE(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, SchedulerProperties,
    ::testing::Values(PropertyCase{1, SamKind::Point, 1},
                      PropertyCase{2, SamKind::Point, 2},
                      PropertyCase{3, SamKind::Line, 1},
                      PropertyCase{4, SamKind::Line, 2},
                      PropertyCase{5, SamKind::Line, 4},
                      PropertyCase{6, SamKind::Point, 1},
                      PropertyCase{7, SamKind::Line, 4},
                      PropertyCase{8, SamKind::Point, 2}));

TEST(SchedulerInvariants, HybridSweepDensityMonotone)
{
    const Program p = translate(randomCircuit(30, 200, 42));
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    double prev_density = 2.0;
    for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        opts.arch.hybridFraction = f;
        const SimResult r = simulate(p, opts);
        EXPECT_LE(r.density(), prev_density + 1e-12);
        prev_density = r.density();
    }
}

TEST(SchedulerInvariants, CliffordProgramsConsumeNoMagic)
{
    Circuit c(10);
    for (int i = 0; i < 9; ++i)
        c.cx(i, i + 1);
    const Program p = translate(c);
    SimOptions opts;
    opts.arch.sam = SamKind::Line;
    const SimResult r = simulate(p, opts);
    EXPECT_EQ(r.magicConsumed, 0);
    EXPECT_EQ(r.magicStallBeats, 0);
}

TEST(SchedulerInvariants, ZeroLatencyProgramFinishesInstantly)
{
    Program p(4);
    for (std::int32_t q = 0; q < 4; ++q) {
        Instruction pz;
        pz.op = Opcode::PZ_M;
        pz.m0 = q;
        p.append(pz);
    }
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    EXPECT_EQ(simulate(p, opts).execBeats, 0);
}

} // namespace
} // namespace lsqca
