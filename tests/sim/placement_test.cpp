#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

TEST(Placement, PolicyNames)
{
    EXPECT_STREQ(placementPolicyName(PlacementPolicy::RowMajor),
                 "row-major");
    EXPECT_STREQ(placementPolicyName(PlacementPolicy::Interleaved),
                 "interleaved");
}

TEST(Placement, DefaultIsRowMajor)
{
    EXPECT_EQ(ArchConfig{}.placement, PlacementPolicy::RowMajor);
}

TEST(Placement, InterleavedIsDeterministic)
{
    const Program p = translate(lowerToCliffordT(makeAdder(10)));
    SimOptions opts;
    opts.arch.sam = SamKind::Line;
    opts.arch.placement = PlacementPolicy::Interleaved;
    const auto a = simulate(p, opts).execBeats;
    const auto b = simulate(p, opts).execBeats;
    EXPECT_EQ(a, b);
}

TEST(Placement, InterleavingHelpsBitSlicedArithmetic)
{
    // The adder's working set is (a_i, b_i, carry_i); interleaved
    // placement starts them adjacent, cutting alignment traffic on the
    // serial (unconcealed) carry chain.
    const Program p = translate(lowerToCliffordT(makeAdder(32)));
    SimOptions row_major;
    row_major.arch.sam = SamKind::Line;
    SimOptions interleaved = row_major;
    interleaved.arch.placement = PlacementPolicy::Interleaved;
    const auto base = simulate(p, row_major);
    const auto opt = simulate(p, interleaved);
    EXPECT_LT(opt.memoryBeats, base.memoryBeats);
    EXPECT_LE(opt.execBeats, base.execBeats);
}

TEST(Placement, InterleavingPreservesResults)
{
    // Same instruction stream, same magic count, same density — only
    // the memory motion changes.
    const Program p = translate(lowerToCliffordT(makeMultiplier({6, 5})));
    for (SamKind sam : {SamKind::Point, SamKind::Line}) {
        SimOptions a;
        a.arch.sam = sam;
        SimOptions b = a;
        b.arch.placement = PlacementPolicy::Interleaved;
        const SimResult ra = simulate(p, a);
        const SimResult rb = simulate(p, b);
        EXPECT_EQ(ra.magicConsumed, rb.magicConsumed);
        EXPECT_EQ(ra.instructionsSimulated, rb.instructionsSimulated);
        EXPECT_DOUBLE_EQ(ra.density(), rb.density());
    }
}

TEST(Placement, NoEffectOnConventionalMachine)
{
    const Program p = translate(lowerToCliffordT(makeAdder(8)));
    SimOptions a;
    a.arch.sam = SamKind::Conventional;
    SimOptions b = a;
    b.arch.placement = PlacementPolicy::Interleaved;
    EXPECT_EQ(simulate(p, a).execBeats, simulate(p, b).execBeats);
}

} // namespace
} // namespace lsqca
