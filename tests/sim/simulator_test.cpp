#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "common/error.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

Program
emptyProgram(std::int32_t vars = 2)
{
    return Program(vars);
}

Instruction
inst1M(Opcode op, std::int32_t m, std::int32_t v = -1)
{
    Instruction inst;
    inst.op = op;
    inst.m0 = m;
    inst.v0 = v;
    return inst;
}

TEST(Simulator, EmptyProgramTakesZeroBeats)
{
    const Program p = emptyProgram();
    SimOptions opts;
    const SimResult r = simulate(p, opts);
    EXPECT_EQ(r.execBeats, 0);
    EXPECT_EQ(r.instructionsSimulated, 0);
    EXPECT_EQ(r.cpi, 0.0);
}

TEST(Simulator, ConventionalHadamardTakesThreeBeats)
{
    Program p(1);
    p.append(inst1M(Opcode::HD_M, 0));
    const SimResult r = simulateConventional(p);
    EXPECT_EQ(r.execBeats, 3);
    EXPECT_EQ(r.countedInstructions, 1);
    EXPECT_DOUBLE_EQ(r.cpi, 3.0);
}

TEST(Simulator, ConventionalPhaseTakesTwoBeats)
{
    Program p(1);
    p.append(inst1M(Opcode::PH_M, 0));
    const SimResult r = simulateConventional(p);
    EXPECT_EQ(r.execBeats, 2);
}

TEST(Simulator, IndependentOpsOverlapOnConventional)
{
    Program p(4);
    for (std::int32_t q = 0; q < 4; ++q)
        p.append(inst1M(Opcode::HD_M, q));
    const SimResult r = simulateConventional(p);
    EXPECT_EQ(r.execBeats, 3); // unlimited ILP
}

TEST(Simulator, DependentOpsSerializeOnSameQubit)
{
    Program p(1);
    p.append(inst1M(Opcode::HD_M, 0));
    p.append(inst1M(Opcode::PH_M, 0));
    const SimResult r = simulateConventional(p);
    EXPECT_EQ(r.execBeats, 5);
}

TEST(Simulator, PointSamSerializesOnScanCell)
{
    // Two H's on different qubits share the single scan cell, so the
    // point-SAM machine cannot overlap them.
    Program p(9);
    p.append(inst1M(Opcode::HD_M, 0));
    p.append(inst1M(Opcode::HD_M, 5));
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    const SimResult r = simulate(p, opts);
    EXPECT_GE(r.execBeats, 6); // at least 2 x 3-beat ops, serialized
}

TEST(Simulator, TwoBanksRestoreOverlap)
{
    // Variables deal round-robin: 0 -> bank0, 1 -> bank1; the two scan
    // cells work in parallel.
    Program p(8);
    p.append(inst1M(Opcode::HD_M, 0));
    p.append(inst1M(Opcode::HD_M, 1));
    SimOptions one;
    one.arch.sam = SamKind::Point;
    one.arch.banks = 1;
    SimOptions two = one;
    two.arch.banks = 2;
    EXPECT_LT(simulate(p, two).execBeats, simulate(p, one).execBeats);
}

TEST(Simulator, MagicBoundExecutionWithOneFactory)
{
    // 10 T gadgets on one qubit: 2 warm states + 8 produced every 15
    // beats make the MSF the bottleneck.
    Circuit c(1);
    for (int i = 0; i < 10; ++i)
        c.t(0);
    const Program p = translate(c);
    const SimResult r = simulateConventional(p);
    EXPECT_GE(r.execBeats, 8 * 15);
    EXPECT_EQ(r.magicConsumed, 10);
    EXPECT_GT(r.magicStallBeats, 0);
}

TEST(Simulator, MoreFactoriesRelieveMagicBound)
{
    Circuit c(4);
    for (int i = 0; i < 20; ++i)
        c.t(i % 4);
    const Program p = translate(c);
    const auto beats1 = simulateConventional(p).execBeats;
    const auto beats2 = simulateConventional(p, {.factories = 2}).execBeats;
    const auto beats4 = simulateConventional(p, {.factories = 4}).execBeats;
    EXPECT_LE(beats2, beats1);
    EXPECT_LE(beats4, beats2);
    EXPECT_LT(beats4, beats1); // strictly better end to end
}

TEST(Simulator, InstantMagicRemovesStalls)
{
    Circuit c(1);
    for (int i = 0; i < 10; ++i)
        c.t(0);
    const Program p = translate(c);
    SimOptions opts;
    opts.arch.sam = SamKind::Conventional;
    opts.arch.instantMagic = true;
    const SimResult r = simulate(p, opts);
    EXPECT_EQ(r.magicStallBeats, 0);
    EXPECT_LT(r.execBeats, 8 * 15);
}

TEST(Simulator, SkBarrierOrdersNextInstruction)
{
    // MZ writes v at t=0; SK waits for it and gates the next op.
    Program p(2);
    const auto v = p.newValue();
    p.append(inst1M(Opcode::MZ_M, 0, v));
    Instruction sk;
    sk.op = Opcode::SK;
    sk.v0 = v;
    p.append(sk);
    p.append(inst1M(Opcode::HD_M, 1));
    SimOptions opts;
    opts.arch.sam = SamKind::Conventional;
    opts.arch.lat.skWait = 7;
    const SimResult r = simulate(p, opts);
    // H starts after SK's 7-beat decoder wait.
    EXPECT_EQ(r.execBeats, 7 + 3);
}

TEST(Simulator, BarrierOnlyAppliesOnce)
{
    Program p(2);
    const auto v = p.newValue();
    p.append(inst1M(Opcode::MZ_M, 0, v));
    Instruction sk;
    sk.op = Opcode::SK;
    sk.v0 = v;
    p.append(sk);
    p.append(inst1M(Opcode::PH_M, 0)); // gated by SK
    p.append(inst1M(Opcode::HD_M, 1)); // NOT gated: runs from t=0
    SimOptions opts;
    opts.arch.sam = SamKind::Conventional;
    opts.arch.lat.skWait = 10;
    const SimResult r = simulate(p, opts);
    // exec = max(10+2 for gated PH, 3 for free H) = 12.
    EXPECT_EQ(r.execBeats, 12);
}

TEST(Simulator, CxBetweenConventionalQubitsIsTwoBeats)
{
    Program p(2);
    Instruction cx;
    cx.op = Opcode::CX;
    cx.m0 = 0;
    cx.m1 = 1;
    p.append(cx);
    const SimResult r = simulateConventional(p);
    EXPECT_EQ(r.execBeats, 2);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    const Circuit lowered = lowerToCliffordT(makeAdder(6));
    const Program p = translate(lowered);
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    const SimResult a = simulate(p, opts);
    const SimResult b = simulate(p, opts);
    EXPECT_EQ(a.execBeats, b.execBeats);
    EXPECT_EQ(a.memoryBeats, b.memoryBeats);
    EXPECT_EQ(a.magicConsumed, b.magicConsumed);
}

TEST(Simulator, TruncationLimitsWork)
{
    Circuit c(4);
    for (int i = 0; i < 40; ++i)
        c.h(i % 4);
    const Program p = translate(c);
    SimOptions opts;
    opts.arch.sam = SamKind::Conventional;
    opts.maxInstructions = 10;
    const SimResult r = simulate(p, opts);
    EXPECT_EQ(r.instructionsSimulated, 10);
    EXPECT_LT(r.execBeats, simulate(p, SimOptions{opts.arch}).execBeats);
}

TEST(Simulator, HybridFractionOneMatchesConventionalTime)
{
    const Circuit lowered = lowerToCliffordT(makeMultiplier({4, 3}));
    const Program p = translate(lowered);
    SimOptions hybrid;
    hybrid.arch.sam = SamKind::Line;
    hybrid.arch.hybridFraction = 1.0;
    const SimResult h = simulate(p, hybrid);
    const SimResult c = simulateConventional(p);
    EXPECT_EQ(h.execBeats, c.execBeats);
    EXPECT_DOUBLE_EQ(h.density(), 0.5);
}

TEST(Simulator, HybridKeepsHotQubitsFast)
{
    // A program hammering one qubit: hybrid f small should place that
    // qubit conventionally and beat the pure-SAM machine.
    Circuit c(64);
    for (int i = 0; i < 30; ++i)
        c.h(0);
    for (int i = 1; i < 8; ++i)
        c.h(i);
    const Program p = translate(c);
    SimOptions pure;
    pure.arch.sam = SamKind::Point;
    SimOptions hybrid = pure;
    hybrid.arch.hybridFraction = 0.05; // ~3 hottest qubits
    EXPECT_LT(simulate(p, hybrid).execBeats,
              simulate(p, pure).execBeats);
}

TEST(Simulator, TraceRecordsMemoryReferences)
{
    Program p(2);
    p.append(inst1M(Opcode::HD_M, 0));
    p.append(inst1M(Opcode::PH_M, 1));
    Instruction cx;
    cx.op = Opcode::CX;
    cx.m0 = 0;
    cx.m1 = 1;
    p.append(cx);
    SimOptions opts;
    opts.arch.sam = SamKind::Conventional;
    opts.recordTrace = true;
    const SimResult r = simulate(p, opts);
    EXPECT_EQ(r.trace.size(), 4u); // 1 + 1 + 2 operands
}

TEST(Simulator, OpcodeBreakdownSumsToProgram)
{
    const Circuit lowered = lowerToCliffordT(makeAdder(5));
    const Program p = translate(lowered);
    SimOptions opts;
    opts.arch.sam = SamKind::Line;
    const SimResult r = simulate(p, opts);
    std::int64_t total = 0;
    for (const auto count : r.opcodeCount)
        total += count;
    EXPECT_EQ(total, p.size());
    EXPECT_EQ(r.instructionsSimulated, p.size());
}

TEST(Simulator, LoadStoreRoundTripOnPointSam)
{
    TranslateOptions topts;
    topts.inMemoryOps = false;
    Circuit c(9);
    c.h(4);
    const Program p = translate(c, topts);
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    opts.arch.inMemoryOps = false;
    const SimResult r = simulate(p, opts);
    // LD + HD.C(3) + ST, with nonzero memory traffic.
    EXPECT_GT(r.memoryBeats, 0);
    EXPECT_GT(r.execBeats, 3);
    EXPECT_EQ(r.opcodeCount[static_cast<std::size_t>(Opcode::LD)], 1);
    EXPECT_EQ(r.opcodeCount[static_cast<std::size_t>(Opcode::ST)], 1);
}

TEST(Simulator, RowParallelUnitariesShareAWindow)
{
    // Five H gates on one line-SAM row: with row-parallel ops they all
    // complete in one 3-beat window; serialized otherwise.
    Program p(25); // 5x5 line bank
    for (std::int32_t q = 0; q < 5; ++q) // row 0
        p.append(inst1M(Opcode::HD_M, q));
    SimOptions batched;
    batched.arch.sam = SamKind::Line;
    const auto fast = simulate(p, batched).execBeats;
    SimOptions serial = batched;
    serial.arch.rowParallelOps = false;
    const auto slow = simulate(p, serial).execBeats;
    EXPECT_EQ(fast, 3);
    EXPECT_EQ(slow, 15);
}

TEST(Simulator, RowParallelRequiresSameRowAndOpcode)
{
    Program p(25);
    p.append(inst1M(Opcode::HD_M, 0));  // row 0
    p.append(inst1M(Opcode::PH_M, 1));  // different opcode: no join
    p.append(inst1M(Opcode::HD_M, 25 - 1)); // row 4: no join
    SimOptions opts;
    opts.arch.sam = SamKind::Line;
    const auto beats = simulate(p, opts).execBeats;
    EXPECT_GT(beats, 3); // the follow-ups serialized
}

TEST(Simulator, RowParallelOffOnPointSam)
{
    Program p(25);
    p.append(inst1M(Opcode::HD_M, 0));
    p.append(inst1M(Opcode::HD_M, 1));
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    // Point SAM has a single scan cell: always serialized.
    EXPECT_GE(simulate(p, opts).execBeats, 6);
}

TEST(Simulator, DensityReportedFromFloorplan)
{
    Program p(400);
    p.append(inst1M(Opcode::HD_M, 0));
    SimOptions opts;
    opts.arch.sam = SamKind::Line;
    const SimResult r = simulate(p, opts);
    EXPECT_NEAR(r.density(), 400.0 / 462.0, 1e-12);
}

TEST(Simulator, LoadStoreOnConventionalVariableIsFree)
{
    // Hybrid machines may see LD/ST touching a conventional-region
    // variable (region-agnostic object code): zero cost, no scan use.
    Program p(4);
    Instruction ld;
    ld.op = Opcode::LD;
    ld.m0 = 0;
    ld.c0 = 0;
    p.append(ld);
    Instruction st;
    st.op = Opcode::ST;
    st.m0 = 0;
    st.c0 = 0;
    p.append(st);
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    opts.arch.hybridFraction = 1.0; // everything conventional
    const SimResult r = simulate(p, opts);
    EXPECT_EQ(r.execBeats, 0);
    EXPECT_EQ(r.memoryBeats, 0);
}

TEST(Simulator, CrSlotInstructionsHonorTableLatencies)
{
    Program p(1);
    Instruction pp;
    pp.op = Opcode::PP_C;
    pp.c0 = 0;
    p.append(pp);
    Instruction hd;
    hd.op = Opcode::HD_C;
    hd.c0 = 0;
    p.append(hd);
    Instruction ph;
    ph.op = Opcode::PH_C;
    ph.c0 = 0;
    p.append(ph);
    const auto v = p.newValue();
    Instruction mx;
    mx.op = Opcode::MX_C;
    mx.c0 = 0;
    mx.v0 = v;
    p.append(mx);
    const SimResult r = simulateConventional(p);
    EXPECT_EQ(r.execBeats, 0 + 3 + 2 + 0);
}

TEST(Simulator, TwoSlotSurgerySerializesOnBothSlots)
{
    Program p(1);
    const auto v0 = p.newValue();
    const auto v1 = p.newValue();
    Instruction hd;
    hd.op = Opcode::HD_C;
    hd.c0 = 1;
    p.append(hd); // slot 1 busy until t=3
    Instruction zz;
    zz.op = Opcode::MZZ_C;
    zz.c0 = 0;
    zz.c1 = 1;
    zz.v0 = v0;
    p.append(zz); // waits for slot 1
    Instruction mz;
    mz.op = Opcode::MZ_C;
    mz.c0 = 0;
    mz.v0 = v1;
    p.append(mz);
    const SimResult r = simulateConventional(p);
    EXPECT_EQ(r.execBeats, 3 + 1);
}

TEST(Simulator, HybridRegionPrefersHottestVariables)
{
    // Variable 3 is touched constantly; with a tiny hybrid fraction it
    // must be the one placed conventionally (its ops take exactly the
    // fixed latencies).
    Program p(40);
    for (int i = 0; i < 10; ++i)
        p.append(inst1M(Opcode::PH_M, 3));
    p.append(inst1M(Opcode::PH_M, 7));
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    opts.arch.hybridFraction = 0.025; // exactly one variable
    const SimResult r = simulate(p, opts);
    // 10 sequential 2-beat phases on the hot conventional qubit = 20;
    // the single SAM op overlaps within that window.
    EXPECT_EQ(r.opcodeBeats[static_cast<std::size_t>(Opcode::PH_M)] -
                  r.memoryBeats,
              11 * 2);
}

TEST(Simulator, MotionSamplesRecordedWithTrace)
{
    Program p(16);
    p.append(inst1M(Opcode::HD_M, 0));
    p.append(inst1M(Opcode::HD_M, 9));
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    opts.recordTrace = true;
    const SimResult r = simulate(p, opts);
    EXPECT_FALSE(r.motionSamples.empty());
    for (const auto sample : r.motionSamples)
        EXPECT_GT(sample, 0);
    // Without trace recording the vector stays empty.
    opts.recordTrace = false;
    EXPECT_TRUE(simulate(p, opts).motionSamples.empty());
}

TEST(Simulator, MagicWaitConcealsScanMotion)
{
    // One T-gadget on a distant qubit with a COLD magic buffer: the
    // in-memory positioning (seek+pick) must overlap the 15-beat
    // production wait, so the gadget ends at max(wait, motion)+surgery,
    // not wait+motion+surgery.
    Circuit c(64);
    c.t(55); // far from the port in an 8x8-ish bank
    const Program p = translate(c);
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    opts.arch.warmBuffer = false; // first magic ready at beat 15
    const SimResult r = simulate(p, opts);
    // Gadget tail: MZZ surgery (1) + conditional PH (2). The motion is
    // concealed inside the 15-beat magic wait entirely (motion < 15
    // here would not hold for q55; allow the general bound instead):
    // end <= max(15, motion) + 1 + transfer + 2.
    std::int64_t motion = 0;
    SimOptions traced = opts;
    traced.recordTrace = true;
    for (const auto sample : simulate(p, traced).motionSamples)
        motion = std::max(motion, sample);
    EXPECT_LE(r.execBeats,
              std::max<std::int64_t>(15 + 1, motion) + 1 + 2 + 1);
    EXPECT_LT(r.execBeats, 15 + motion + 3); // strictly overlapped
}

TEST(Simulator, CrossBankCxFreesBothScans)
{
    // CX between banks: both banks position concurrently; a later op on
    // a third qubit in bank 0 must not wait for the full CX window on
    // point SAM (the scan frees after positioning).
    Program p(32);
    Instruction cx;
    cx.op = Opcode::CX;
    cx.m0 = 0; // bank 0
    cx.m1 = 1; // bank 1
    p.append(cx);
    p.append(inst1M(Opcode::HD_M, 2)); // bank 0 again
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    opts.arch.banks = 2;
    const SimResult r = simulate(p, opts);
    SimOptions one_bank = opts;
    one_bank.arch.banks = 1;
    EXPECT_LE(r.execBeats, simulate(p, one_bank).execBeats);
}

TEST(Simulator, ValidatesConfig)
{
    Program p(4);
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    opts.arch.banks = 3; // invalid for point SAM
    EXPECT_THROW(simulate(p, opts), ConfigError);
}

} // namespace
} // namespace lsqca
