#include "synth/arith.h"

#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "circuit/statevector.h"
#include "common/error.h"

namespace lsqca {
namespace {

/** Prepare little-endian integer @p value on @p span via initial ones. */
void
setBits(std::vector<QubitId> &ones, const QubitSpan &span,
        std::uint64_t value)
{
    for (std::size_t i = 0; i < span.size(); ++i)
        if (value & (std::uint64_t{1} << i))
            ones.push_back(span[i]);
}

/** Read little-endian integer from measured @p span. */
std::uint64_t
readBits(StateVector &sv, const QubitSpan &span)
{
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < span.size(); ++i)
        if (sv.measureZ(span[i]))
            value |= std::uint64_t{1} << i;
    return value;
}

struct AddCase
{
    std::uint64_t a;
    std::uint64_t b;
};

class RippleAdd3 : public ::testing::TestWithParam<AddCase>
{
};

TEST_P(RippleAdd3, ComputesSumAndClearsCarries)
{
    const auto [a_val, b_val] = GetParam();
    Circuit circ;
    const QubitId a0 = circ.addRegister("a", 3);
    const QubitId b0 = circ.addRegister("b", 4);
    const QubitId c0 = circ.addRegister("carry", 3);
    const QubitSpan a = spanOf(a0, 3);
    const QubitSpan b = spanOf(b0, 4);
    const QubitSpan carry = spanOf(c0, 3);
    rippleAdd(circ, a, b, carry);

    std::vector<QubitId> ones;
    setBits(ones, a, a_val);
    setBits(ones, b, b_val);
    auto run = runStateVector(circ, ones);
    EXPECT_EQ(readBits(run.state, b), a_val + b_val);
    EXPECT_EQ(readBits(run.state, a), a_val); // addend unchanged
    EXPECT_EQ(readBits(run.state, carry), 0u); // scratch restored
}

std::vector<AddCase>
allPairs3Bit()
{
    std::vector<AddCase> cases;
    for (std::uint64_t a = 0; a < 8; ++a)
        for (std::uint64_t b = 0; b < 8; ++b)
            cases.push_back({a, b});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Exhaustive3Bit, RippleAdd3,
                         ::testing::ValuesIn(allPairs3Bit()));

TEST(RippleAdd, LoweredFormStillAddsAndCostsFourTPerBit)
{
    Circuit circ;
    const QubitId a0 = circ.addRegister("a", 3);
    const QubitId b0 = circ.addRegister("b", 4);
    const QubitId c0 = circ.addRegister("carry", 3);
    rippleAdd(circ, spanOf(a0, 3), spanOf(b0, 4), spanOf(c0, 3));
    // One temporary AND per bit: 4 T each, uncomputes free.
    EXPECT_EQ(circ.tCount(), 12);

    const Circuit lowered = lowerToCliffordT(circ);
    std::vector<QubitId> ones;
    setBits(ones, spanOf(a0, 3), 5);
    setBits(ones, spanOf(b0, 3), 7);
    auto run = runStateVector(lowered, ones);
    EXPECT_EQ(readBits(run.state, spanOf(b0, 4)), 12u);
    EXPECT_EQ(readBits(run.state, spanOf(c0, 3)), 0u);
}

struct CtrlAddCase
{
    std::uint64_t a;
    std::uint64_t b;
    bool ctrl;
};

class RippleCtrlAdd : public ::testing::TestWithParam<CtrlAddCase>
{
};

TEST_P(RippleCtrlAdd, AddsOnlyWhenControlIsSet)
{
    const auto [a_val, b_val, ctrl_on] = GetParam();
    Circuit circ;
    const QubitId ctl = circ.addRegister("ctl", 1);
    const QubitId a0 = circ.addRegister("a", 3);
    const QubitId b0 = circ.addRegister("b", 4);
    const QubitId c0 = circ.addRegister("carry", 4);
    const QubitSpan a = spanOf(a0, 3);
    const QubitSpan b = spanOf(b0, 4);
    const QubitSpan carry = spanOf(c0, 4);
    rippleAddControlled(circ, ctl, a, b, carry);

    std::vector<QubitId> ones;
    if (ctrl_on)
        ones.push_back(ctl);
    setBits(ones, a, a_val);
    setBits(ones, b, b_val);
    auto run = runStateVector(circ, ones);
    const std::uint64_t expected = ctrl_on ? a_val + b_val : b_val;
    EXPECT_EQ(readBits(run.state, b), expected);
    EXPECT_EQ(readBits(run.state, a), a_val);
    EXPECT_EQ(readBits(run.state, carry), 0u);
}

std::vector<CtrlAddCase>
controlledCases()
{
    std::vector<CtrlAddCase> cases;
    for (std::uint64_t a = 0; a < 8; ++a)
        for (std::uint64_t b : {0ULL, 3ULL, 5ULL, 7ULL})
            for (bool ctrl : {false, true})
                cases.push_back({a, b, ctrl});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep3Bit, RippleCtrlAdd,
                         ::testing::ValuesIn(controlledCases()));

TEST(RippleCtrlAdd, SuperposedControlStaysCoherent)
{
    // |+> control: result is an equal superposition of added / unadded.
    Circuit circ;
    const QubitId ctl = circ.addRegister("ctl", 1);
    const QubitId a0 = circ.addRegister("a", 2);
    const QubitId b0 = circ.addRegister("b", 3);
    const QubitId c0 = circ.addRegister("carry", 3);
    circ.h(ctl);
    rippleAddControlled(circ, ctl, spanOf(a0, 2), spanOf(b0, 3),
                        spanOf(c0, 3));
    // a = 3, b = 1: outcome is (ctl=0, b=1) or (ctl=1, b=4), equal odds.
    auto run = runStateVector(circ, {a0, a0 + 1, b0});
    const auto p_unadded = run.state.probability(
        (0ull << 0) | (3ull << 1) | (1ull << 3));
    const auto p_added = run.state.probability(
        (1ull << 0) | (3ull << 1) | (4ull << 3));
    EXPECT_NEAR(p_unadded, 0.5, 1e-9);
    EXPECT_NEAR(p_added, 0.5, 1e-9);
}

TEST(RippleCtrlAdd, LoweredControlledFormIsExact)
{
    Circuit circ;
    const QubitId ctl = circ.addRegister("ctl", 1);
    const QubitId a0 = circ.addRegister("a", 2);
    const QubitId b0 = circ.addRegister("b", 3);
    const QubitId c0 = circ.addRegister("carry", 3);
    rippleAddControlled(circ, ctl, spanOf(a0, 2), spanOf(b0, 3),
                        spanOf(c0, 3));
    const Circuit lowered = lowerToCliffordT(circ);
    std::vector<QubitId> ones{ctl};
    setBits(ones, spanOf(a0, 2), 3);
    setBits(ones, spanOf(b0, 3), 2);
    auto run = runStateVector(lowered, ones);
    EXPECT_EQ(readBits(run.state, spanOf(b0, 3)), 5u);
    EXPECT_EQ(readBits(run.state, spanOf(c0, 3)), 0u);
}

TEST(RippleCtrlAdd, RejectsControlAliasingOperands)
{
    Circuit circ(10);
    EXPECT_THROW(rippleAddControlled(circ, 0, spanOf(0, 3), spanOf(3, 4),
                                     spanOf(7, 4)),
                 ConfigError); // ctrl inside addend
}

TEST(Arith, SpanOf)
{
    const QubitSpan s = spanOf(5, 3);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0], 5);
    EXPECT_EQ(s[2], 7);
}

TEST(Arith, AdderArityValidation)
{
    Circuit circ(10);
    EXPECT_THROW(rippleAdd(circ, spanOf(0, 3), spanOf(3, 3), spanOf(6, 3)),
                 ConfigError); // b needs w+1 bits
    EXPECT_THROW(rippleAdd(circ, spanOf(0, 3), spanOf(3, 4), spanOf(7, 2)),
                 ConfigError); // carry needs w bits
}

TEST(PhaseOnAllOnes, SingleAndDoubleLiterals)
{
    Circuit circ(2);
    circ.h(0);
    circ.h(1);
    phaseOnAllOnes(circ, {0, 1}, {});
    circ.h(0);
    circ.h(1);
    auto run = runStateVector(circ);
    EXPECT_LT(run.state.probability(0), 0.999); // phase acted
    EXPECT_NEAR(run.state.norm(), 1.0, 1e-9);
}

TEST(PhaseOnAllOnes, MarksExactlyAllOnesState)
{
    const int k = 4;
    Circuit circ(static_cast<std::int32_t>(k) + 2); // + 2 scratch
    for (int q = 0; q < k; ++q)
        circ.h(q);
    phaseOnAllOnes(circ, {0, 1, 2, 3}, {4, 5});
    auto run = runStateVector(circ);

    // Reference: H^k then phase on |1111> via explicit CCX+CZ network.
    StateVector ref(k + 2);
    for (int q = 0; q < k; ++q)
        ref.applyH(q);
    ref.applyCCX(0, 1, 4);
    ref.applyCCX(2, 3, 5);
    ref.applyCZ(4, 5);
    ref.applyCCX(2, 3, 5);
    ref.applyCCX(0, 1, 4);
    EXPECT_NEAR(run.state.fidelity(ref), 1.0, 1e-9);
}

TEST(PhaseOnAllOnes, ScratchRestoredToZero)
{
    Circuit circ(6);
    for (int q = 0; q < 4; ++q)
        circ.h(q);
    phaseOnAllOnes(circ, {0, 1, 2, 3}, {4, 5});
    auto run = runStateVector(circ);
    EXPECT_NEAR(run.state.probabilityOne(4), 0.0, 1e-9);
    EXPECT_NEAR(run.state.probabilityOne(5), 0.0, 1e-9);
}

TEST(PhaseOnAllOnes, ScratchSizeValidated)
{
    Circuit circ(5);
    EXPECT_THROW(phaseOnAllOnes(circ, {0, 1, 2, 3}, {4}), ConfigError);
}

} // namespace
} // namespace lsqca
