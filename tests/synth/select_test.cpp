#include "synth/benchmarks.h"

#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "circuit/statevector.h"

namespace lsqca {
namespace {

constexpr double kEps = 1e-9;

/** Apply the reference Pauli P_i directly to a state. */
void
applyTermDirect(StateVector &sv, const PauliTerm &term, QubitId sys0)
{
    const QubitId u = sys0 + term.site0;
    const QubitId v = sys0 + term.site1;
    switch (term.kind) {
      case PauliTerm::Kind::XX:
        sv.applyX(u);
        sv.applyX(v);
        break;
      case PauliTerm::Kind::YY:
        sv.applyY(u);
        sv.applyY(v);
        break;
      case PauliTerm::Kind::ZZ:
        sv.applyZ(u);
        sv.applyZ(v);
        break;
    }
}

/**
 * Core semantic check: SELECT applied to |i> (x) |psi> must produce
 * |i> (x) P_i |psi> (global phase irrelevant via fidelity).
 */
void
checkSelectOnIndex(std::int64_t index, std::uint64_t seed)
{
    const std::int32_t width = 2;
    const SelectLayout layout = selectLayout(width);
    const auto terms = heisenbergTerms(width);
    ASSERT_LT(index, static_cast<std::int64_t>(terms.size()));
    const Circuit circ = makeSelect({width, 0});
    ASSERT_EQ(circ.numQubits(), layout.totalQubits);

    const QubitId ctl0 = circ.reg("control").first;
    const QubitId sys0 = circ.reg("system").first;
    const std::int32_t bits = layout.controlBits;

    // Prepare |index> on control (MSB-first mapping: control[j] holds
    // bit bits-1-j) and a non-trivial product state on the system.
    std::vector<QubitId> ones;
    for (std::int32_t j = 0; j < bits; ++j)
        if ((index >> (bits - 1 - j)) & 1)
            ones.push_back(ctl0 + j);
    ones.push_back(sys0 + 1);
    ones.push_back(sys0 + 2);

    auto run = runStateVector(circ, ones, seed);

    // Reference: same preparation, then P_index applied directly.
    StateVector ref(circ.numQubits(), seed);
    for (QubitId q : ones)
        ref.applyX(q);
    applyTermDirect(ref, terms[static_cast<std::size_t>(index)], sys0);
    EXPECT_NEAR(run.state.fidelity(ref), 1.0, kEps) << "index " << index;
}

class SelectSemantics : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(SelectSemantics, AppliesExactlyTermI)
{
    checkSelectOnIndex(GetParam(), 0x1234);
}

// W=2 has L = 12 terms; cover all of them.
INSTANTIATE_TEST_SUITE_P(AllTwelveTerms, SelectSemantics,
                         ::testing::Range<std::int64_t>(0, 12));

TEST(SelectSemantics, LoweredCircuitMatchesToo)
{
    const std::int32_t width = 2;
    const auto terms = heisenbergTerms(width);
    const Circuit lowered = lowerToCliffordT(makeSelect({width, 0}));
    const QubitId ctl0 = lowered.reg("control").first;
    const QubitId sys0 = lowered.reg("system").first;
    const std::int32_t bits = selectLayout(width).controlBits;

    const std::int64_t index = 7;
    std::vector<QubitId> ones;
    for (std::int32_t j = 0; j < bits; ++j)
        if ((index >> (bits - 1 - j)) & 1)
            ones.push_back(ctl0 + j);
    ones.push_back(sys0);

    auto run = runStateVector(lowered, ones, 99);
    StateVector ref(lowered.numQubits(), 99);
    for (QubitId q : ones)
        ref.applyX(q);
    applyTermDirect(ref, terms[7], sys0);
    EXPECT_NEAR(run.state.fidelity(ref), 1.0, kEps);
}

TEST(SelectSemantics, SuperposedIndexActsBlockwise)
{
    // Control in (|0> + |1>)/sqrt(2) over the two lowest indices:
    // SELECT must apply P_0 / P_1 coherently per branch.
    const std::int32_t width = 2;
    const auto terms = heisenbergTerms(width);
    const Circuit circ = makeSelect({width, 0});
    const QubitId ctl0 = circ.reg("control").first;
    const QubitId sys0 = circ.reg("system").first;
    const std::int32_t bits = selectLayout(width).controlBits;
    const QubitId lsb = ctl0 + bits - 1; // chain position of bit 0

    // Build combined circuit: H on the control LSB, then SELECT.
    Circuit combined;
    for (const auto &r : circ.registers())
        combined.addRegister(r.name, r.size);
    combined.h(lsb);
    for (const auto &g : circ.gates())
        combined.append(g);

    auto run = runStateVector(combined, {sys0});

    // Per-branch exactness is covered by the per-index tests above;
    // here we require normalization plus the entanglement signature of
    // blockwise action (terms 0 and 1 are different Paulis: XX vs YY).
    ASSERT_EQ(terms[0].kind, PauliTerm::Kind::XX);
    ASSERT_EQ(terms[1].kind, PauliTerm::Kind::YY);
    EXPECT_NEAR(run.state.norm(), 1.0, kEps);
    // The two branches apply different Paulis, so the control LSB must
    // now be entangled with the system: probability of lsb=1 stays 1/2.
    EXPECT_NEAR(run.state.probabilityOne(lsb), 0.5, 1e-6);
}

TEST(SelectCopies, RegistersAndFanOut)
{
    SelectParams params;
    params.width = 2;
    params.controlCopies = 2;
    const Circuit circ = makeSelect(params);
    const SelectLayout layout = selectLayout(2);
    // Two control+temporal register pairs plus the system register.
    EXPECT_EQ(circ.registers().size(), 5u);
    EXPECT_EQ(circ.reg("control_0").size, layout.controlBits);
    EXPECT_EQ(circ.reg("temporal_1").size, layout.temporalBits);
    EXPECT_EQ(circ.numQubits(),
              layout.totalQubits + layout.controlBits +
                  layout.temporalBits);
}

TEST(SelectCopies, EveryTermAppliedExactlyOnce)
{
    for (std::int32_t copies : {1, 2, 3}) {
        SelectParams params;
        params.width = 3;
        params.controlCopies = copies;
        const Circuit circ = makeSelect(params);
        // Each term contributes exactly two controlled Paulis; count
        // the CX/CZ acting on system qubits (X/Y via cx, Z via cz).
        const QubitId sys0 = circ.reg("system").first;
        std::int64_t controlled = 0;
        for (const auto &g : circ.gates())
            if ((g.kind == GateKind::CX || g.kind == GateKind::CZ) &&
                g.qubits[1] >= sys0)
                ++controlled;
        EXPECT_EQ(controlled, 2 * 36) << copies << " copies";
    }
}

TEST(SelectCopies, ParallelCopiesReduceDepth)
{
    SelectParams serial;
    serial.width = 3;
    SelectParams parallel = serial;
    parallel.controlCopies = 3;
    EXPECT_LT(makeSelect(parallel).unitDepth(),
              makeSelect(serial).unitDepth());
}

TEST(SelectCopies, TwoCopySemanticsMatchOnBasisIndices)
{
    // W=2 with two copies is 24 qubits: check P_i lands on |i> branches
    // for the first terms of BOTH partitions (walker 0 owns even
    // indices, walker 1 odd ones).
    const std::int32_t width = 2;
    const auto terms = heisenbergTerms(width);
    SelectParams params;
    params.width = width;
    params.controlCopies = 2;
    params.maxTerms = 4;
    const Circuit circ = makeSelect(params);
    const std::int32_t bits = selectLayout(width).controlBits;
    const QubitId ctl0 = circ.reg("control_0").first;
    const QubitId sys0 = circ.reg("system").first;

    // Indices 0 and 1 cover both partitions (walker 0 / walker 1).
    for (std::int64_t index : {0, 1}) {
        std::vector<QubitId> ones;
        for (std::int32_t j = 0; j < bits; ++j)
            if ((index >> (bits - 1 - j)) & 1)
                ones.push_back(ctl0 + j);
        ones.push_back(sys0 + 1);
        auto run = runStateVector(circ, ones, 7);

        StateVector ref(circ.numQubits(), 7);
        for (QubitId q : ones)
            ref.applyX(q);
        applyTermDirect(ref, terms[static_cast<std::size_t>(index)],
                        sys0);
        EXPECT_NEAR(run.state.fidelity(ref), 1.0, kEps)
            << "index " << index;
    }
}

TEST(SelectStructure, TruncationLimitsTerms)
{
    const Circuit full = makeSelect({2, 0});
    const Circuit partial = makeSelect({2, 3});
    EXPECT_LT(partial.size(), full.size());
    EXPECT_EQ(partial.numQubits(), full.numQubits());
}

TEST(SelectStructure, AmortizedAndCountIsSmall)
{
    // The sawtooth walker rebuilds ~2 links per term on average; the
    // total AND count must stay well below bits-per-term.
    const std::int32_t width = 4;
    const Circuit circ = makeSelect({width, 0});
    const auto layout = selectLayout(width);
    std::int64_t ands = 0;
    for (const auto &g : circ.gates())
        if (g.kind == GateKind::AndInit)
            ++ands;
    const double per_term = static_cast<double>(ands) /
                            static_cast<double>(layout.numTerms);
    EXPECT_LT(per_term, 3.0);
    EXPECT_GT(per_term, 1.0);
}

TEST(SelectStructure, ControlAndTemporalAreHot)
{
    // Fig. 8a: control/temporal registers are referenced far more often
    // per qubit than the system register.
    const Circuit circ = makeSelect({5, 0});
    const auto refs = circ.referenceCounts();
    const auto mean = [&](const QubitRegister &r) {
        double sum = 0;
        for (std::int32_t i = 0; i < r.size; ++i)
            sum += static_cast<double>(
                refs[static_cast<std::size_t>(r.first + i)]);
        return sum / static_cast<double>(r.size);
    };
    const double control = mean(circ.reg("control"));
    const double temporal = mean(circ.reg("temporal"));
    const double system = mean(circ.reg("system"));
    EXPECT_GT(control, 3 * system);
    EXPECT_GT(temporal, 3 * system);
}

} // namespace
} // namespace lsqca
