#include "synth/benchmarks.h"

#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "circuit/statevector.h"
#include "common/error.h"

namespace lsqca {
namespace {

// ---- paper qubit counts (Sec. VI-B) ----------------------------------

TEST(PaperSizes, AdderIs433)
{
    EXPECT_EQ(makeAdder().numQubits(), 433);
}

TEST(PaperSizes, BvIs280)
{
    EXPECT_EQ(makeBernsteinVazirani().numQubits(), 280);
}

TEST(PaperSizes, CatIs260)
{
    EXPECT_EQ(makeCat().numQubits(), 260);
}

TEST(PaperSizes, GhzIs127)
{
    EXPECT_EQ(makeGhz().numQubits(), 127);
}

TEST(PaperSizes, MultiplierIs400)
{
    EXPECT_EQ(makeMultiplier().numQubits(), 400);
}

TEST(PaperSizes, SquareRootIs60)
{
    EXPECT_EQ(makeSquareRoot().numQubits(), 60);
}

struct SelectSize
{
    std::int32_t width;
    std::int32_t qubits;
};

class SelectSizes : public ::testing::TestWithParam<SelectSize>
{
};

TEST_P(SelectSizes, MatchesPaperDataCellCounts)
{
    const auto [width, qubits] = GetParam();
    EXPECT_EQ(selectLayout(width).totalQubits, qubits);
}

// 143 for the Sec. VI-B instance; 467..10,235 for Fig. 15.
INSTANTIATE_TEST_SUITE_P(PaperInstances, SelectSizes,
                         ::testing::Values(SelectSize{11, 143},
                                           SelectSize{21, 467},
                                           SelectSize{41, 1711},
                                           SelectSize{61, 3753},
                                           SelectSize{81, 6595},
                                           SelectSize{101, 10235}));

TEST(PaperSizes, SuiteHasSevenPrograms)
{
    const auto suite = paperSuite(/*select_max_terms=*/10);
    ASSERT_EQ(suite.size(), 7u);
    EXPECT_EQ(suite[0].name, "adder");
    EXPECT_EQ(suite[6].name, "SELECT");
    EXPECT_EQ(suite[6].circuit.numQubits(), 143);
}

// ---- magic-state structure -------------------------------------------

TEST(MagicStructure, CliffordBenchmarksHaveNoT)
{
    EXPECT_EQ(makeBernsteinVazirani(16).tCount(), 0);
    EXPECT_EQ(makeCat(16).tCount(), 0);
    EXPECT_EQ(makeGhz(16).tCount(), 0);
}

TEST(MagicStructure, ArithmeticBenchmarksConsumeT)
{
    EXPECT_GT(makeAdder(4).tCount(), 0);
    EXPECT_GT(makeMultiplier({4, 3}).tCount(), 0);
    EXPECT_GT(makeSquareRoot({3, 4, 1}).tCount(), 0);
    EXPECT_GT(makeSelect({2, 0}).tCount(), 0);
}

// ---- functional verification (state-vector oracle) ---------------------

std::uint64_t
readSpan(StateVector &sv, QubitId first, std::int32_t size)
{
    std::uint64_t v = 0;
    for (std::int32_t i = 0; i < size; ++i)
        if (sv.measureZ(first + i))
            v |= std::uint64_t{1} << i;
    return v;
}

void
setSpan(std::vector<QubitId> &ones, QubitId first, std::int32_t size,
        std::uint64_t value)
{
    for (std::int32_t i = 0; i < size; ++i)
        if (value & (std::uint64_t{1} << i))
            ones.push_back(first + i);
}

struct AdderCase
{
    std::uint64_t a;
    std::uint64_t b;
};

class AdderFunction : public ::testing::TestWithParam<AdderCase>
{
};

TEST_P(AdderFunction, FourBitSum)
{
    const auto [a_val, b_val] = GetParam();
    const Circuit circ = makeAdder(4); // 13 qubits
    const auto &a = circ.reg("a");
    const auto &b = circ.reg("b");
    const auto &carry = circ.reg("carry");
    std::vector<QubitId> ones;
    setSpan(ones, a.first, a.size, a_val);
    setSpan(ones, b.first, 4, b_val);
    auto run = runStateVector(circ, ones);
    EXPECT_EQ(readSpan(run.state, b.first, b.size), a_val + b_val);
    EXPECT_EQ(readSpan(run.state, carry.first, carry.size), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Samples, AdderFunction,
    ::testing::Values(AdderCase{0, 0}, AdderCase{1, 1}, AdderCase{15, 15},
                      AdderCase{9, 6}, AdderCase{7, 12}, AdderCase{3, 5},
                      AdderCase{15, 1}, AdderCase{8, 8}));

TEST(AdderFunction, LoweredCircuitStillAdds)
{
    const Circuit lowered = lowerToCliffordT(makeAdder(3));
    const auto &a = lowered.reg("a");
    const auto &b = lowered.reg("b");
    std::vector<QubitId> ones;
    setSpan(ones, a.first, 3, 5);
    setSpan(ones, b.first, 3, 6);
    auto run = runStateVector(lowered, ones);
    EXPECT_EQ(readSpan(run.state, b.first, b.size), 11u);
}

struct MulCase
{
    std::uint64_t a;
    std::uint64_t b;
};

class MultiplierFunction : public ::testing::TestWithParam<MulCase>
{
};

TEST_P(MultiplierFunction, ThreeByTwoBitProduct)
{
    const auto [a_val, b_val] = GetParam();
    const Circuit circ = makeMultiplier({3, 2}); // 3+2+5+4 = 14 qubits
    const auto &a = circ.reg("a");
    const auto &b = circ.reg("b");
    const auto &p = circ.reg("product");
    const auto &carry = circ.reg("carry");
    std::vector<QubitId> ones;
    setSpan(ones, a.first, a.size, a_val);
    setSpan(ones, b.first, b.size, b_val);
    auto run = runStateVector(circ, ones);
    EXPECT_EQ(readSpan(run.state, p.first, p.size), a_val * b_val);
    EXPECT_EQ(readSpan(run.state, a.first, a.size), a_val);
    EXPECT_EQ(readSpan(run.state, b.first, b.size), b_val);
    EXPECT_EQ(readSpan(run.state, carry.first, carry.size), 0u);
}

std::vector<MulCase>
allMul3x2()
{
    std::vector<MulCase> cases;
    for (std::uint64_t a = 0; a < 8; ++a)
        for (std::uint64_t b = 0; b < 4; ++b)
            cases.push_back({a, b});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Exhaustive3x2, MultiplierFunction,
                         ::testing::ValuesIn(allMul3x2()));

TEST(BvFunction, RecoversSecret)
{
    const std::uint64_t secret = 0b1011010;
    const Circuit circ = makeBernsteinVazirani(8, secret);
    auto run = runStateVector(circ);
    // Measurements wrote data bits in order; bit i of the secret.
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(run.bits[static_cast<std::size_t>(i)] != 0,
                  ((secret >> i) & 1) != 0)
            << "bit " << i;
}

TEST(BvFunction, AllOnesDefaultSecret)
{
    const Circuit circ = makeBernsteinVazirani(6);
    auto run = runStateVector(circ);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(run.bits[static_cast<std::size_t>(i)], 1);
}

TEST(CatGhzFunction, ProduceMacroscopicSuperposition)
{
    for (const Circuit &circ : {makeCat(5), makeGhz(5)}) {
        auto run = runStateVector(circ);
        EXPECT_NEAR(run.state.probability(0b00000), 0.5, 1e-9);
        EXPECT_NEAR(run.state.probability(0b11111), 0.5, 1e-9);
    }
}

TEST(CatGhzFunction, BothAreSerialChains)
{
    // QASMBench's cat and ghz are both linear CX chains; they differ
    // only in qubit count (260 vs 127 at paper scale).
    EXPECT_EQ(makeCat(64).unitDepth(), 64);  // h + 63 chained cx
    EXPECT_EQ(makeGhz(64).unitDepth(), 64);
    EXPECT_EQ(makeCat(64).size(), makeGhz(64).size());
}

TEST(SquareRootFunction, GroverFindsTheRoot)
{
    // k=2, N=1: unique solution x=1 among 4 candidates; one Grover
    // iteration amplifies it to certainty.
    SquareRootParams params;
    params.width = 2;
    params.target = 1;
    params.iterations = 1;
    const Circuit circ = makeSquareRoot(params);
    ASSERT_EQ(circ.numQubits(), 12);
    auto run = runStateVector(circ);
    // x register is measured last; bits live in run.bits tail. Check
    // via the recorded measurement outcomes: x must equal 1.
    const auto &x = circ.reg("x");
    (void)x;
    // The two measured bits are the final two classical bits.
    const auto nbits = run.bits.size();
    ASSERT_GE(nbits, 2u);
    EXPECT_EQ(run.bits[nbits - 2], 1); // x bit 0
    EXPECT_EQ(run.bits[nbits - 1], 0); // x bit 1
}

TEST(SquareRootFunction, ParameterValidation)
{
    EXPECT_THROW(makeSquareRoot({1, 0, 1}), ConfigError);
    EXPECT_THROW(makeSquareRoot({4, 0, 0}), ConfigError);
    EXPECT_THROW(makeSquareRoot({2, 100, 1}), ConfigError); // N too big
}

TEST(Heisenberg, TermCountAndOrder)
{
    const auto terms = heisenbergTerms(3);
    EXPECT_EQ(terms.size(), 36u); // 6 * 3 * 2
    // First edge: (0,0)-(0,1) horizontally, XX then YY then ZZ.
    EXPECT_EQ(terms[0].kind, PauliTerm::Kind::XX);
    EXPECT_EQ(terms[0].site0, 0);
    EXPECT_EQ(terms[0].site1, 1);
    EXPECT_EQ(terms[1].kind, PauliTerm::Kind::YY);
    EXPECT_EQ(terms[2].kind, PauliTerm::Kind::ZZ);
    // Second edge from site 0 goes down.
    EXPECT_EQ(terms[3].site0, 0);
    EXPECT_EQ(terms[3].site1, 3);
}

TEST(Heisenberg, ConsecutiveTermsAreSpatiallyLocal)
{
    const auto terms = heisenbergTerms(5);
    std::int64_t local = 0;
    for (std::size_t i = 1; i < terms.size(); ++i) {
        const auto dist = std::min(
            std::abs(terms[i].site0 - terms[i - 1].site0),
            std::abs(terms[i].site1 - terms[i - 1].site1));
        if (dist <= 5)
            ++local;
    }
    EXPECT_GT(static_cast<double>(local) /
                  static_cast<double>(terms.size() - 1),
              0.9);
}

TEST(Benchmarks, RegisterNamesForAnalysis)
{
    const Circuit sel = makeSelect({2, 0});
    EXPECT_EQ(sel.registers().size(), 3u);
    EXPECT_EQ(sel.registers()[0].name, "control");
    EXPECT_EQ(sel.registers()[1].name, "temporal");
    EXPECT_EQ(sel.registers()[2].name, "system");
    const Circuit mul = makeMultiplier({3, 2});
    EXPECT_EQ(mul.registers().size(), 4u);
}

} // namespace
} // namespace lsqca
