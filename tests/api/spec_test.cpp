/**
 * @file
 * SweepSpec tests: deterministic cartesian expansion (golden job
 * lists), JSON round trip, the builtin paper specs (including the
 * checked-in specs/ files matching their C++ builders), shard slicing
 * that partitions the sweep, and shard-merge == unsharded (byte
 * identical under --no-timing).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "api/paper_specs.h"
#include "api/serialize.h"
#include "api/spec.h"
#include "common/error.h"
#include "synth/benchmarks.h"

namespace lsqca::api {
namespace {

/** A 2x2x2 toy spec exercising every axis feature. */
SweepSpec
toySpec()
{
    return SweepSpec::fromJson(Json::parse(R"({
      "schema": "lsqca-spec-v1",
      "name": "toy",
      "name_template": "{benchmark}/{machine}/f{factories}",
      "axes": [
        {"axis": "factories", "values": [1, 2]},
        {"axis": "benchmark", "values": [
          {"bench": "ghz", "params": {"num_qubits": 8}},
          {"name": "S4", "bench": "select", "params": {"width": 4},
           "prefix": 100}
        ]},
        {"axis": "machine", "values": [
          {"arch": {"sam": "point", "banks": 1}},
          {"name": "conv", "arch": {"sam": "conventional"}}
        ]}
      ]
    })"));
}

TEST(SweepSpec, ExpandsInDeterministicOrder)
{
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const auto jobs = expandSpec(toySpec(), registry);
    const std::vector<std::string> expected = {
        "ghz/point#1/f1", "ghz/conv/f1", "S4/point#1/f1", "S4/conv/f1",
        "ghz/point#1/f2", "ghz/conv/f2", "S4/point#1/f2", "S4/conv/f2",
    };
    ASSERT_EQ(jobs.size(), expected.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].name, expected[i]) << i;
    // Axis patches compose: factories from axis 0, machine from axis 2.
    EXPECT_EQ(jobs[0].options.arch.factories, 1);
    EXPECT_EQ(jobs[4].options.arch.factories, 2);
    EXPECT_EQ(jobs[0].options.arch.sam, SamKind::Point);
    EXPECT_EQ(jobs[1].options.arch.sam, SamKind::Conventional);
    // Prefix rides the benchmark axis; params are canonicalized.
    EXPECT_EQ(jobs[0].options.maxInstructions, 0);
    EXPECT_EQ(jobs[2].options.maxInstructions, 100);
    EXPECT_EQ(jobs[2].params.at("control_copies").asInt(), 1);
}

TEST(SweepSpec, JsonRoundTrip)
{
    const SweepSpec spec = toySpec();
    const SweepSpec back = SweepSpec::fromJson(spec.toJson());
    EXPECT_EQ(back.toJson().dump(), spec.toJson().dump());
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const auto a = expandSpec(spec, registry);
    const auto b = expandSpec(back, registry);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(toJson(a[i].options).dump(),
                  toJson(b[i].options).dump());
    }
}

TEST(SweepSpec, BuilderRoundTripsThroughJson)
{
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    for (const char *name :
         {"fig13", "fig14", "fig15", "ablation", "smoke"}) {
        const SweepSpec spec = specs::byName(name);
        const SweepSpec back =
            SweepSpec::fromJson(Json::parse(spec.toJson().dump()));
        const auto a = expandSpec(spec, registry);
        const auto b = expandSpec(back, registry);
        ASSERT_EQ(a.size(), b.size()) << name;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].name, b[i].name) << name;
            EXPECT_EQ(toJson(a[i].options).dump(),
                      toJson(b[i].options).dump())
                << name << " " << a[i].name;
            EXPECT_EQ(a[i].translate.inMemoryOps,
                      b[i].translate.inMemoryOps);
        }
    }
}

TEST(SweepSpec, PaperSpecSizesMatchTheOldBenches)
{
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    // Pre-refactor job counts: 3*7*6, 3*7*(1+21*4), 3*5*(1+8),
    // 3*(1+11*2).
    EXPECT_EQ(expandSpec(specs::fig13(), registry).size(), 126u);
    EXPECT_EQ(expandSpec(specs::fig14(), registry).size(), 1785u);
    EXPECT_EQ(expandSpec(specs::fig15(), registry).size(), 135u);
    EXPECT_EQ(expandSpec(specs::ablation(), registry).size(), 69u);
}

TEST(SweepSpec, HotHybridFractionResolvesPerBenchmark)
{
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const auto jobs = expandSpec(specs::fig15(), registry);
    bool sawHybrid = false;
    for (const ExpandedJob &job : jobs) {
        if (job.name.find("hybrid") == std::string::npos)
            continue;
        sawHybrid = true;
        const std::int32_t width = static_cast<std::int32_t>(
            job.params.at("width").asInt());
        EXPECT_DOUBLE_EQ(job.options.arch.hybridFraction,
                         selectHotFraction(width))
            << job.name;
    }
    EXPECT_TRUE(sawHybrid);
}

TEST(SweepSpec, CheckedInSpecFilesMatchTheBuilders)
{
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    struct Pinned
    {
        const char *builder;
        const char *path;
        const char *specName; // fig13.json renames to avoid a BENCH
                              // filename collision with the bench
    };
    const Pinned files[] = {
        {"fig13", LSQCA_SOURCE_DIR "/specs/fig13.json", "fig13_cpi"},
        {"smoke", LSQCA_SOURCE_DIR "/specs/smoke.json", "smoke"},
        {"fig14_sampled",
         LSQCA_SOURCE_DIR "/specs/fig14_sampled.json",
         "fig14_sampled"},
    };
    for (const auto &[builder, path, specName] : files) {
        const SweepSpec fromFile = SweepSpec::load(path);
        EXPECT_EQ(fromFile.name, specName);
        const SweepSpec fromBuilder = specs::byName(builder);
        const auto a = expandSpec(fromFile, registry);
        const auto b = expandSpec(fromBuilder, registry);
        ASSERT_EQ(a.size(), b.size()) << path;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].name, b[i].name) << path;
            EXPECT_EQ(toJson(a[i].options).dump(),
                      toJson(b[i].options).dump())
                << path << " " << a[i].name;
        }
    }
}

TEST(SweepSpec, RejectsMalformedSpecs)
{
    auto parse = [](const char *text) {
        return SweepSpec::fromJson(Json::parse(text));
    };
    // Wrong/missing schema (v2 is valid: it adds the estimator block,
    // see SweepSpec.EstimatorSchema).
    EXPECT_THROW(parse(R"({"name": "x", "axes": []})"), ConfigError);
    EXPECT_THROW(
        parse(R"({"schema": "lsqca-spec-v3", "name": "x",
                  "axes": [{"axis": "a", "values": [1]}]})"),
        ConfigError);
    // The estimator block is v2-only.
    EXPECT_THROW(
        parse(R"({"schema": "lsqca-spec-v1", "name": "x",
                  "estimator": {"mode": "sampled"},
                  "axes": [{"axis": "a", "values": [1]}]})"),
        ConfigError);
    // Unknown top-level key.
    EXPECT_THROW(
        parse(R"({"schema": "lsqca-spec-v1", "name": "x", "axess": [],
                  "axes": [{"axis": "a", "values": [1]}]})"),
        ConfigError);
    // Unknown axis-value key.
    EXPECT_THROW(
        parse(R"({"schema": "lsqca-spec-v1", "name": "x",
                  "axes": [{"axis": "a",
                            "values": [{"bennch": "adder"}]}]})"),
        ConfigError);
    // Empty values.
    EXPECT_THROW(
        parse(R"({"schema": "lsqca-spec-v1", "name": "x",
                  "axes": [{"axis": "a", "values": []}]})"),
        ConfigError);

    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    // No benchmark axis.
    SweepSpec noBench = SweepSpec::fromJson(Json::parse(
        R"({"schema": "lsqca-spec-v1", "name": "x",
            "axes": [{"axis": "factories", "values": [1]}]})"));
    EXPECT_THROW(expandSpec(noBench, registry), ConfigError);
    // Template placeholder naming no axis.
    SweepSpec badTemplate = toySpec();
    badTemplate.nameTemplate = "{typo}";
    EXPECT_THROW(expandSpec(badTemplate, registry), ConfigError);
    // Invalid composed machine (point SAM with 4 banks).
    SweepSpec badMachine = toySpec();
    badMachine.axes[2].values[0].arch =
        Json::parse(R"({"sam": "point", "banks": 4})");
    EXPECT_THROW(expandSpec(badMachine, registry), ConfigError);
}

TEST(SweepSpec, EstimatorSchema)
{
    // The v2 estimator block (docs/SAMPLING.md): parsed strictly,
    // applied to every expanded job, round-tripped byte for byte.
    const SweepSpec spec = SweepSpec::fromJson(Json::parse(R"({
      "schema": "lsqca-spec-v2",
      "name": "sampled_toy",
      "name_template": "{benchmark}/{machine}",
      "estimator": {"mode": "sampled", "unit_instrs": 200,
                    "warmup_instrs": 150, "period": 40,
                    "target_ci": 0.1},
      "axes": [
        {"axis": "benchmark", "values": [
          {"bench": "ghz", "params": {"num_qubits": 8}}]},
        {"axis": "machine", "values": [
          {"arch": {"sam": "point", "banks": 1}}]}
      ]
    })"));
    EXPECT_TRUE(spec.estimator.sampled());
    EXPECT_EQ(spec.estimator.unitInstrs, 200);
    EXPECT_EQ(spec.estimator.warmupInstrs, 150);
    EXPECT_EQ(spec.estimator.period, 40);
    EXPECT_DOUBLE_EQ(spec.estimator.targetCi, 0.1);

    // Round trip keeps the v2 schema and the block itself.
    const Json dumped = spec.toJson();
    EXPECT_EQ(dumped.at("schema").asString(), "lsqca-spec-v2");
    const SweepSpec back = SweepSpec::fromJson(dumped);
    EXPECT_EQ(back.toJson().dump(), dumped.dump());
    EXPECT_EQ(back.estimator, spec.estimator);

    // Every expanded job inherits the estimator.
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const auto jobs = expandSpec(spec, registry);
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].options.estimator, spec.estimator);

    // Malformed estimator blocks are rejected, not defaulted.
    auto parse = [](const char *text) {
        return SweepSpec::fromJson(Json::parse(text));
    };
    EXPECT_THROW(
        parse(R"({"schema": "lsqca-spec-v2", "name": "x",
                  "estimator": {"mode": "sampled", "period": 0},
                  "axes": [{"axis": "a", "values": [1]}]})"),
        ConfigError);
    EXPECT_THROW(
        parse(R"({"schema": "lsqca-spec-v2", "name": "x",
                  "estimator": {"mode": "sampled", "unitt_instrs": 5},
                  "axes": [{"axis": "a", "values": [1]}]})"),
        ConfigError);
}

TEST(SweepSpec, EstimatorOptionsSerializeRoundTrip)
{
    estimate::EstimatorOptions est;
    est.mode = estimate::EstimatorMode::Sampled;
    est.unitInstrs = 123;
    est.warmupInstrs = 45;
    est.period = 6;
    est.targetCi = 0.07;
    EXPECT_EQ(estimatorOptionsFromJson(toJson(est)), est);

    // Exact-mode SimOptions serialize with no estimator key at all —
    // the pre-estimator document shape, byte for byte.
    SimOptions exact;
    EXPECT_EQ(toJson(exact).find("estimator"), nullptr);
    SimOptions sampled;
    sampled.estimator = est;
    const Json doc = toJson(sampled);
    ASSERT_NE(doc.find("estimator"), nullptr);
    const SimOptions backOptions = simOptionsFromJson(doc);
    EXPECT_EQ(backOptions.estimator, est);
    EXPECT_EQ(toJson(simOptionsFromJson(toJson(exact))).dump(),
              toJson(exact).dump());
}

TEST(ShardRange, ParsesAndValidates)
{
    const ShardRange shard = ShardRange::parse("2/8");
    EXPECT_EQ(shard.index, 2);
    EXPECT_EQ(shard.count, 8);
    EXPECT_THROW(ShardRange::parse("8/8"), ConfigError);
    EXPECT_THROW(ShardRange::parse("-1/8"), ConfigError);
    EXPECT_THROW(ShardRange::parse("1of8"), ConfigError);
    EXPECT_THROW(ShardRange::parse("a/b"), ConfigError);
    EXPECT_THROW(ShardRange::parse("1/"), ConfigError);
    EXPECT_THROW(ShardRange::parse("1/0"), ConfigError);
}

TEST(ShardRange, SlicesPartitionTheJobList)
{
    for (const std::size_t total : {0u, 1u, 7u, 126u, 1785u}) {
        for (const std::int32_t count : {1, 2, 3, 5, 16}) {
            std::size_t covered = 0;
            std::size_t expectedBegin = 0;
            for (std::int32_t i = 0; i < count; ++i) {
                ShardRange shard;
                shard.index = i;
                shard.count = count;
                const auto [begin, end] = shard.bounds(total);
                EXPECT_EQ(begin, expectedBegin); // contiguous
                EXPECT_LE(begin, end);
                covered += end - begin;
                expectedBegin = end;
            }
            EXPECT_EQ(covered, total) << total << "/" << count;
            EXPECT_EQ(expectedBegin, total);
        }
    }
}

TEST(RunSpec, ShardMergeEqualsUnshardedByteForByte)
{
    // The whole distributed-sweep contract in one test: run the smoke
    // spec unsharded and as 3 shards (different thread counts), merge
    // the shard documents, and require byte identity under no-timing.
    const SweepSpec spec = specs::smoke();
    BenchmarkRegistry registry = BenchmarkRegistry::paper();

    RunSpecOptions base;
    base.noTiming = true;
    base.writeJson = false;
    const SpecRun whole = runSpec(spec, registry, base);

    std::vector<Json> shardDocs;
    for (std::int32_t i = 0; i < 3; ++i) {
        RunSpecOptions options = base;
        options.shard.index = i;
        options.shard.count = 3;
        options.threads = i + 1; // worker count must not matter
        // A fresh registry per shard: each machine translates only
        // what its slice needs.
        BenchmarkRegistry shardRegistry = BenchmarkRegistry::paper();
        const SpecRun shard = runSpec(spec, shardRegistry, options);
        EXPECT_LT(shardRegistry.cachedPrograms(),
                  registry.cachedPrograms() + 1);
        // Round-trip through text, as real shard files would.
        shardDocs.push_back(
            Json::parse(shard.document.dump()));
    }
    const Json merged = mergeBenchReports(shardDocs);
    EXPECT_EQ(merged.dump(), whole.document.dump());
}

TEST(RunSpec, MergeValidatesThePartition)
{
    const SweepSpec spec = specs::smoke();
    RunSpecOptions options;
    options.noTiming = true;
    options.writeJson = false;
    options.shard.count = 3;

    std::vector<Json> docs;
    for (std::int32_t i = 0; i < 3; ++i) {
        options.shard.index = i;
        BenchmarkRegistry registry = BenchmarkRegistry::paper();
        docs.push_back(runSpec(spec, registry, options).document);
    }
    // Missing shard.
    EXPECT_THROW(mergeBenchReports({docs[0], docs[2]}), ConfigError);
    // Duplicate shard.
    EXPECT_THROW(mergeBenchReports({docs[0], docs[1], docs[1]}),
                 ConfigError);
    // Different sweep name.
    Json renamed = docs[2];
    renamed.set("bench", "other");
    EXPECT_THROW(mergeBenchReports({docs[0], docs[1], renamed}),
                 ConfigError);
    // All three in any order merge fine.
    EXPECT_NO_THROW(mergeBenchReports({docs[2], docs[0], docs[1]}));
}

TEST(RunSpec, BreakdownSpecEmitsBenchV2AndMergesRoundTrip)
{
    // record_breakdown promotes the BENCH document to lsqca-bench-v2
    // with a per-entry breakdown array; sharded v2 documents merge
    // byte-identically, and v1/v2 documents refuse to mix.
    SweepSpec spec = toySpec();
    spec.recordBreakdown = true;
    const SweepSpec back =
        SweepSpec::fromJson(Json::parse(spec.toJson().dump()));
    EXPECT_TRUE(back.recordBreakdown);

    BenchmarkRegistry registry = BenchmarkRegistry::paper();
    for (const ExpandedJob &job : expandSpec(spec, registry))
        EXPECT_TRUE(job.options.recordBreakdown) << job.name;

    RunSpecOptions options;
    options.noTiming = true;
    options.writeJson = false;
    const SpecRun whole = runSpec(spec, registry, options);
    EXPECT_EQ(whole.document.at("schema").asString(), "lsqca-bench-v2");
    for (const Json &entry : whole.document.at("entries").items()) {
        const std::vector<OpcodeSplit> breakdown =
            breakdownFromJson(entry.at("breakdown"));
        EXPECT_FALSE(breakdown.empty());
        std::int64_t motion = 0;
        for (const OpcodeSplit &row : breakdown)
            motion += row.split.motionBeats();
        EXPECT_EQ(motion,
                  entry.at("metrics").at("memory_beats").asInt());
    }

    std::vector<Json> shardDocs;
    for (std::int32_t i = 0; i < 2; ++i) {
        RunSpecOptions shardOptions = options;
        shardOptions.shard.index = i;
        shardOptions.shard.count = 2;
        BenchmarkRegistry shardRegistry = BenchmarkRegistry::paper();
        shardDocs.push_back(
            runSpec(spec, shardRegistry, shardOptions).document);
    }
    const Json merged = mergeBenchReports(shardDocs);
    EXPECT_EQ(merged.dump(), whole.document.dump());

    // Over-sharding leaves some shards empty; they must still stamp
    // the v2 schema (the flag decides, not the entry contents) or the
    // shard set would mix schemas and refuse to merge.
    std::vector<Json> overDocs;
    for (std::int32_t i = 0; i < 10; ++i) {
        RunSpecOptions shardOptions = options;
        shardOptions.shard.index = i;
        shardOptions.shard.count = 10; // > 8 jobs: empty shards exist
        BenchmarkRegistry shardRegistry = BenchmarkRegistry::paper();
        overDocs.push_back(
            runSpec(spec, shardRegistry, shardOptions).document);
    }
    for (const Json &doc : overDocs)
        EXPECT_EQ(doc.at("schema").asString(), "lsqca-bench-v2");
    EXPECT_EQ(mergeBenchReports(overDocs).dump(),
              whole.document.dump());

    // The shard fingerprint covers the schema bump: the same spec with
    // breakdowns off must not address the same cached shard bytes.
    SweepSpec plain = toySpec();
    BenchmarkRegistry plainRegistry = BenchmarkRegistry::paper();
    const auto jobsV2 = expandSpec(spec, registry);
    const auto jobsV1 = expandSpec(plain, plainRegistry);
    EXPECT_NE(shardFingerprint(spec, jobsV2, ShardRange{}, true),
              shardFingerprint(plain, jobsV1, ShardRange{}, true));

    // v1 and v2 documents never merge together.
    const Json v1doc =
        runSpec(plain, plainRegistry, options).document;
    EXPECT_THROW(mergeBenchReports({v1doc, whole.document}),
                 ConfigError);
}

TEST(RunSpec, ResultsMatchDirectSimulation)
{
    const SweepSpec spec = toySpec();
    BenchmarkRegistry registry = BenchmarkRegistry::paper();
    RunSpecOptions options;
    options.writeJson = false;
    const SpecRun run = runSpec(spec, registry, options);
    ASSERT_EQ(run.report.results.size(), 8u);
    for (std::size_t i = 0; i < run.jobs.size(); ++i) {
        const SimResult direct = simulate(*run.jobs[i].program,
                                          run.jobs[i].options);
        EXPECT_EQ(run.report.results[i].execBeats, direct.execBeats)
            << run.jobs[i].name;
        EXPECT_EQ(run.report.results[i].cpi, direct.cpi);
    }
}

} // namespace
} // namespace lsqca::api
