/**
 * @file
 * BenchmarkRegistry tests: all seven paper generators are registered,
 * parameters are canonicalized and validated strictly, and translation
 * is memoized (a program shared across N configs is lowered once).
 */

#include <gtest/gtest.h>

#include "api/registry.h"
#include "circuit/lowering.h"
#include "common/error.h"
#include "synth/benchmarks.h"

namespace lsqca::api {
namespace {

TEST(Registry, AllSevenPaperBenchmarksRegistered)
{
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const std::vector<std::string> expected = {
        "adder", "bv",          "cat",    "ghz",
        "multiplier", "square_root", "select"};
    ASSERT_EQ(registry.entries().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(registry.entries()[i].name, expected[i]);
}

TEST(Registry, DefaultParamsReproducePaperQubitCounts)
{
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    // Paper sizes (benchmarks.h): adder 433, bv 280, cat 260, ghz 127,
    // multiplier 400, square_root 60, SELECT(11) 143.
    const std::pair<const char *, std::int32_t> sizes[] = {
        {"adder", 433},       {"bv", 280},         {"cat", 260},
        {"ghz", 127},         {"multiplier", 400}, {"square_root", 60},
        {"select", 143},
    };
    for (const auto &[name, qubits] : sizes) {
        const Json canonical =
            registry.canonicalParams(name, Json());
        const Circuit circuit =
            registry.entry(name).synthesize(canonical);
        EXPECT_EQ(circuit.numQubits(), qubits) << name;
    }
}

TEST(Registry, CanonicalizationFillsDefaults)
{
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    EXPECT_EQ(registry.canonicalParams("select", Json()).dump(0),
              registry
                  .canonicalParams(
                      "select", Json::parse(R"({"width": 11})"))
                  .dump(0));
    const Json canonical = registry.canonicalParams(
        "select", Json::parse(R"({"max_terms": 60})"));
    EXPECT_EQ(canonical.at("width").asInt(), 11);
    EXPECT_EQ(canonical.at("max_terms").asInt(), 60);
    EXPECT_EQ(canonical.at("control_copies").asInt(), 1);
}

TEST(Registry, RejectsUnknownBenchmarksAndParams)
{
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    EXPECT_THROW(registry.entry("qft"), ConfigError);
    EXPECT_THROW(registry.canonicalParams(
                     "adder", Json::parse(R"({"widht": 8})")),
                 ConfigError);
    EXPECT_THROW(registry.canonicalParams(
                     "adder", Json::parse(R"({"width": 0})")),
                 ConfigError);
    EXPECT_THROW(registry.canonicalParams(
                     "select", Json::parse(R"({"width": 1})")),
                 ConfigError);
    EXPECT_THROW(registry.canonicalParams("adder", Json::parse("[1]")),
                 ConfigError);
}

TEST(Registry, MemoizesTranslation)
{
    BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const Json params = Json::parse(R"({"width": 8})");
    const Program &first = registry.program("adder", params);
    EXPECT_EQ(registry.cachedPrograms(), 1u);
    // Same benchmark under a different spelling of the same params:
    // same cached Program object, not a second translation.
    const Program &second = registry.program("adder", params);
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(registry.cachedPrograms(), 1u);
    // Different params or translate options are distinct programs.
    registry.program("adder", Json::parse(R"({"width": 9})"));
    EXPECT_EQ(registry.cachedPrograms(), 2u);
    TranslateOptions ldst;
    ldst.inMemoryOps = false;
    const Program &third = registry.program("adder", params, ldst);
    EXPECT_EQ(registry.cachedPrograms(), 3u);
    EXPECT_NE(&first, &third);
}

TEST(Registry, ProgramMatchesDirectTranslation)
{
    BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const Program &cached = registry.program(
        "ghz", Json::parse(R"({"num_qubits": 24})"));
    const Program direct = translate(lowerToCliffordT(makeGhz(24)));
    EXPECT_EQ(cached.disassemble(), direct.disassemble());
}

TEST(Registry, HotFractionMatchesSelectLayout)
{
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    EXPECT_DOUBLE_EQ(
        registry.hotFraction("select", Json::parse(R"({"width": 21})")),
        selectHotFraction(21));
    // Only SELECT defines a hot set.
    EXPECT_THROW(registry.hotFraction("adder", Json()), ConfigError);
}

TEST(Registry, RejectsDuplicateRegistration)
{
    BenchmarkRegistry registry = BenchmarkRegistry::paper();
    BenchmarkEntry dup;
    dup.name = "adder";
    dup.canonicalize = [](const Json &) { return Json::object(); };
    dup.synthesize = [](const Json &) { return makeAdder(4); };
    EXPECT_THROW(registry.add(std::move(dup)), ConfigError);
}

} // namespace
} // namespace lsqca::api
