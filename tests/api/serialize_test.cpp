/**
 * @file
 * Round-trip property tests for the config serializers: every
 * ArchConfig/Latencies/SimOptions field survives toJson -> fromJson,
 * unknown keys and out-of-range values are rejected, and label()
 * agrees across the round trip for every machine the benches use.
 */

#include <gtest/gtest.h>

#include <vector>

#include "api/serialize.h"
#include "circuit/lowering.h"
#include "common/error.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca::api {
namespace {

/** Every (sam, banks, hybrid) machine the figure benches sweep. */
std::vector<ArchConfig>
benchMachines()
{
    std::vector<ArchConfig> machines;
    auto push = [&](SamKind sam, std::int32_t banks, double hybrid) {
        ArchConfig cfg;
        cfg.sam = sam;
        cfg.banks = banks;
        cfg.hybridFraction = hybrid;
        machines.push_back(cfg);
    };
    push(SamKind::Conventional, 1, 0.0);
    for (const std::int32_t banks : {1, 2})
        push(SamKind::Point, banks, 0.0);
    for (const std::int32_t banks : {1, 2, 4})
        push(SamKind::Line, banks, 0.0);
    for (int step = 0; step <= 20; ++step) { // Fig. 14 hybrid grid
        push(SamKind::Point, 2, 0.05 * step);
        push(SamKind::Line, 4, 0.05 * step);
    }
    for (const std::int32_t width : {21, 41, 61, 81, 101}) // Fig. 15
        push(SamKind::Point, 1, selectHotFraction(width));
    return machines;
}

TEST(SerializeArch, RoundTripsEveryField)
{
    ArchConfig cfg;
    cfg.sam = SamKind::Line;
    cfg.banks = 4;
    cfg.factories = 3;
    cfg.bufferCap = 7;
    cfg.crRegisters = 5;
    cfg.hybridFraction = 0.375;
    cfg.localityStore = false;
    cfg.inMemoryOps = false;
    cfg.rowParallelOps = false;
    cfg.directSurgery = true;
    cfg.placement = PlacementPolicy::Interleaved;
    cfg.instantMagic = true;
    cfg.warmBuffer = false;
    cfg.lat.hadamard = 5;
    cfg.lat.phase = 4;
    cfg.lat.surgery = 2;
    cfg.lat.move = 3;
    cfg.lat.longMove = 6;
    cfg.lat.pickDiagonal1 = 7;
    cfg.lat.pickStraight1 = 8;
    cfg.lat.pickDiagonal2 = 9;
    cfg.lat.pickStraight2 = 10;
    cfg.lat.msfPeriod = 20;
    cfg.lat.magicTransfer = 2;
    cfg.lat.skWait = 1;

    const ArchConfig back = archConfigFromJson(toJson(cfg));
    EXPECT_EQ(toJson(back).dump(), toJson(cfg).dump());
    EXPECT_EQ(back.sam, cfg.sam);
    EXPECT_EQ(back.banks, cfg.banks);
    EXPECT_EQ(back.factories, cfg.factories);
    EXPECT_EQ(back.bufferCap, cfg.bufferCap);
    EXPECT_EQ(back.crRegisters, cfg.crRegisters);
    EXPECT_DOUBLE_EQ(back.hybridFraction, cfg.hybridFraction);
    EXPECT_EQ(back.localityStore, cfg.localityStore);
    EXPECT_EQ(back.inMemoryOps, cfg.inMemoryOps);
    EXPECT_EQ(back.rowParallelOps, cfg.rowParallelOps);
    EXPECT_EQ(back.directSurgery, cfg.directSurgery);
    EXPECT_EQ(back.placement, cfg.placement);
    EXPECT_EQ(back.instantMagic, cfg.instantMagic);
    EXPECT_EQ(back.warmBuffer, cfg.warmBuffer);
    EXPECT_EQ(back.lat.hadamard, cfg.lat.hadamard);
    EXPECT_EQ(back.lat.msfPeriod, cfg.lat.msfPeriod);
    EXPECT_EQ(back.lat.skWait, cfg.lat.skWait);
}

TEST(SerializeArch, RoundTripsThroughText)
{
    // The full loop a spec file travels: dump -> parse -> fromJson.
    for (const ArchConfig &cfg : benchMachines()) {
        const Json doc = Json::parse(toJson(cfg).dump());
        const ArchConfig back = archConfigFromJson(doc);
        EXPECT_EQ(toJson(back).dump(), toJson(cfg).dump());
    }
}

TEST(SerializeArch, LabelAgreesAcrossRoundTrip)
{
    for (const ArchConfig &cfg : benchMachines())
        EXPECT_EQ(archConfigFromJson(toJson(cfg)).label(), cfg.label());
}

TEST(SerializeArch, RejectsUnknownKeys)
{
    ArchConfig cfg;
    Json doc = toJson(cfg);
    doc.set("bankz", 2); // typo must not silently run the default
    EXPECT_THROW(archConfigFromJson(doc), ConfigError);

    Json nested = toJson(cfg);
    Json lat = toJson(cfg.lat);
    lat.set("surgeryy", 1);
    nested.set("latencies", std::move(lat));
    EXPECT_THROW(archConfigFromJson(nested), ConfigError);
}

TEST(SerializeArch, RejectsOutOfRangeValues)
{
    auto patched = [](const char *key, Json value) {
        Json doc = toJson(ArchConfig{});
        doc.set(key, std::move(value));
        return doc;
    };
    EXPECT_THROW(archConfigFromJson(patched("banks", 0)), ConfigError);
    EXPECT_THROW(archConfigFromJson(patched("banks", -1)), ConfigError);
    EXPECT_THROW(archConfigFromJson(
                     patched("banks", std::int64_t{1} << 40)),
                 ConfigError);
    // Point SAM supports at most two banks (validate()).
    Json pointBanks = toJson(ArchConfig{});
    pointBanks.set("sam", "point");
    pointBanks.set("banks", 3);
    EXPECT_THROW(archConfigFromJson(pointBanks), ConfigError);
    EXPECT_THROW(archConfigFromJson(patched("factories", 0)),
                 ConfigError);
    EXPECT_THROW(archConfigFromJson(patched("buffer_cap", -2)),
                 ConfigError);
    EXPECT_THROW(archConfigFromJson(patched("cr_registers", 1)),
                 ConfigError);
    EXPECT_THROW(archConfigFromJson(patched("hybrid_fraction", -0.1)),
                 ConfigError);
    EXPECT_THROW(archConfigFromJson(patched("hybrid_fraction", 1.5)),
                 ConfigError);
    EXPECT_THROW(archConfigFromJson(patched("sam", "hexagonal")),
                 ConfigError);
    EXPECT_THROW(archConfigFromJson(patched("placement", "diagonal")),
                 ConfigError);
    EXPECT_THROW(archConfigFromJson(patched("banks", 1.5)),
                 ConfigError);
    EXPECT_THROW(archConfigFromJson(patched("banks", "two")),
                 ConfigError);
}

TEST(SerializeLatencies, RejectsNegativeBeats)
{
    for (const char *key :
         {"hadamard", "phase", "surgery", "move", "long_move",
          "pick_diagonal1", "pick_straight1", "pick_diagonal2",
          "pick_straight2", "msf_period", "magic_transfer", "sk_wait"}) {
        Json lat = toJson(Latencies{});
        lat.set(key, -1);
        Latencies out;
        EXPECT_THROW(applyLatenciesPatch(out, lat), ConfigError) << key;
    }
}

TEST(SerializeLatencies, RoundTripsEveryField)
{
    Latencies lat;
    lat.hadamard = 11;
    lat.phase = 12;
    lat.surgery = 13;
    lat.move = 14;
    lat.longMove = 15;
    lat.pickDiagonal1 = 16;
    lat.pickStraight1 = 17;
    lat.pickDiagonal2 = 18;
    lat.pickStraight2 = 19;
    lat.msfPeriod = 20;
    lat.magicTransfer = 21;
    lat.skWait = 22;
    EXPECT_EQ(toJson(latenciesFromJson(toJson(lat))).dump(),
              toJson(lat).dump());
}

TEST(SerializeSimOptions, RoundTripsAndValidates)
{
    SimOptions options;
    options.arch.sam = SamKind::Line;
    options.arch.banks = 2;
    options.maxInstructions = 60'000;
    options.recordTrace = true;
    options.recordBreakdown = true;
    const SimOptions back = simOptionsFromJson(toJson(options));
    EXPECT_EQ(toJson(back).dump(), toJson(options).dump());
    EXPECT_TRUE(back.recordBreakdown);
    // Observers are runtime-only and never serialized.
    EXPECT_TRUE(back.observers.empty());

    Json doc = toJson(options);
    doc.set("max_instructions", -5);
    EXPECT_THROW(simOptionsFromJson(doc), ConfigError);
    Json unknown = toJson(options);
    unknown.set("prefix", 10);
    EXPECT_THROW(simOptionsFromJson(unknown), ConfigError);
}

TEST(SerializeBreakdown, RoundTripsEveryField)
{
    LatencySplit split;
    split.load = 1;
    split.store = 2;
    split.seek = 3;
    split.pick = 4;
    split.align = 5;
    split.surgery = 6;
    split.compute = 7;
    split.magicStall = 8;
    split.skWait = 9;
    EXPECT_EQ(latencySplitFromJson(toJson(split)), split);

    std::vector<OpcodeSplit> breakdown;
    breakdown.push_back({Opcode::HD_M, 10, 40, split});
    breakdown.push_back({Opcode::CX, 3, 36, LatencySplit{}});
    EXPECT_EQ(breakdownFromJson(toJson(breakdown)), breakdown);
    EXPECT_EQ(toJson(breakdownFromJson(toJson(breakdown))).dump(),
              toJson(breakdown).dump());
}

TEST(SerializeBreakdown, RejectsMalformedDocuments)
{
    Json entry = Json::object();
    entry.set("op", "NOT_AN_OPCODE");
    entry.set("count", 1);
    entry.set("beats", 1);
    entry.set("split", toJson(LatencySplit{}));
    EXPECT_THROW(breakdownFromJson(Json::array().push(entry)),
                 ConfigError);

    Json bad_split = toJson(LatencySplit{});
    bad_split.set("warp", 1);
    EXPECT_THROW(latencySplitFromJson(bad_split), ConfigError);
    Json negative = toJson(LatencySplit{});
    negative.set("load", -1);
    EXPECT_THROW(latencySplitFromJson(negative), ConfigError);
}

TEST(SerializeBreakdown, SimulateBreakdownSurvivesTheRoundTrip)
{
    // End to end: a real breakdown from the simulator serializes and
    // parses back identically (the lsqca-bench-v2 entry payload).
    const Program p = translate(lowerToCliffordT(makeAdder(4)));
    SimOptions options;
    options.arch.sam = SamKind::Point;
    options.recordBreakdown = true;
    const SimResult r = simulate(p, options);
    ASSERT_FALSE(r.breakdown.empty());
    EXPECT_EQ(breakdownFromJson(toJson(r.breakdown)), r.breakdown);
}

TEST(SerializeArch, PartialPatchKeepsDefaults)
{
    ArchConfig cfg;
    applyArchPatch(cfg, Json::parse(R"({"sam": "line", "banks": 4})"));
    EXPECT_EQ(cfg.sam, SamKind::Line);
    EXPECT_EQ(cfg.banks, 4);
    EXPECT_EQ(cfg.factories, 1);          // untouched default
    EXPECT_TRUE(cfg.localityStore);       // untouched default
    EXPECT_EQ(cfg.lat.msfPeriod, 15);     // untouched default
}

TEST(SerializeTranslate, RoundTripsAndValidates)
{
    TranslateOptions options;
    options.inMemoryOps = false;
    options.crSlots = 3;
    const TranslateOptions back =
        translateOptionsFromJson(toJson(options));
    EXPECT_EQ(back.inMemoryOps, options.inMemoryOps);
    EXPECT_EQ(back.crSlots, options.crSlots);
    EXPECT_THROW(
        translateOptionsFromJson(Json::parse(R"({"cr_slots": 1})")),
        ConfigError);
    EXPECT_THROW(
        translateOptionsFromJson(Json::parse(R"({"in_mem": true})")),
        ConfigError);
}

} // namespace
} // namespace lsqca::api
