#include "isa/assembler.h"

#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "common/error.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

TEST(Assembler, ParsesMinimalProgram)
{
    const Program p = assemble("HD.M m0\nCX m0, m1\n");
    ASSERT_EQ(p.size(), 2);
    EXPECT_EQ(p.numVariables(), 2);
    EXPECT_EQ(p.instructions()[0].op, Opcode::HD_M);
    EXPECT_EQ(p.instructions()[1].op, Opcode::CX);
    EXPECT_EQ(p.instructions()[1].m1, 1);
}

TEST(Assembler, HonorsHeaderVariableCount)
{
    const Program p =
        assemble("; lsqca program: 10 variables, 1 instructions\n"
                 "HD.M m0\n");
    EXPECT_EQ(p.numVariables(), 10);
}

TEST(Assembler, ParsesRegisterDirectives)
{
    const Program p = assemble("; lsqca program: 5 variables\n"
                               "; register data: m0..m3\n"
                               "; register anc: m4..m4\n"
                               "HD.M m4\n");
    ASSERT_EQ(p.registers().size(), 2u);
    EXPECT_EQ(p.registers()[0].name, "data");
    EXPECT_EQ(p.registers()[0].size, 4);
    EXPECT_EQ(p.registers()[1].name, "anc");
    EXPECT_EQ(p.registerOf(4), 1);
}

TEST(Assembler, ParsesValueArrows)
{
    const Program p = assemble("MZ.M m0 -> v2\nSK v2\n");
    ASSERT_EQ(p.size(), 2);
    EXPECT_EQ(p.instructions()[0].v0, 2);
    EXPECT_EQ(p.instructions()[1].op, Opcode::SK);
    EXPECT_EQ(p.numValues(), 3); // implicit allocation up to v2
}

TEST(Assembler, ParsesTGadgetSequence)
{
    const Program p = assemble("PM c0\n"
                               "MZZ.M c0, m3 -> v0\n"
                               "MX.C c0 -> v1\n"
                               "SK v0\n"
                               "PH.M m3\n");
    ASSERT_EQ(p.size(), 5);
    EXPECT_EQ(p.magicCount(), 1);
    EXPECT_EQ(p.instructions()[1].c0, 0);
    EXPECT_EQ(p.instructions()[1].m0, 3);
}

TEST(Assembler, RejectsUnknownMnemonic)
{
    EXPECT_THROW(assemble("FROB m0\n"), ConfigError);
}

TEST(Assembler, RejectsMalformedOperand)
{
    EXPECT_THROW(assemble("HD.M q0\n"), ConfigError);
    EXPECT_THROW(assemble("HD.M m\n"), ConfigError);
    EXPECT_THROW(assemble("HD.M mzz\n"), ConfigError);
}

TEST(Assembler, RejectsArityMismatch)
{
    EXPECT_THROW(assemble("HD.M m0, m1\n"), ConfigError);
    EXPECT_THROW(assemble("CX m0\n"), ConfigError);
    EXPECT_THROW(assemble("LD m0\n"), ConfigError);
}

TEST(Assembler, RejectsHeaderSmallerThanOperands)
{
    EXPECT_THROW(assemble("; lsqca program: 1 variables\nCX m0, m5\n"),
                 ConfigError);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("HD.M m0\nBAD m1\n");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(Assembler, RoundTripsSmallProgram)
{
    Circuit circ(3);
    circ.h(0);
    circ.t(1);
    circ.cx(0, 2);
    circ.measZ(2);
    const Program original = translate(circ);
    const Program reparsed = assemble(original.disassemble());
    ASSERT_EQ(reparsed.size(), original.size());
    EXPECT_EQ(reparsed.numVariables(), original.numVariables());
    for (std::int64_t i = 0; i < original.size(); ++i) {
        const auto &a = original.instructions()[static_cast<std::size_t>(i)];
        const auto &b = reparsed.instructions()[static_cast<std::size_t>(i)];
        EXPECT_EQ(a.op, b.op) << "instruction " << i;
        EXPECT_EQ(a.str(), b.str()) << "instruction " << i;
    }
}

TEST(Assembler, RoundTripsWholeBenchmark)
{
    const Program original =
        translate(lowerToCliffordT(makeAdder(6)));
    const Program reparsed = assemble(original.disassemble());
    ASSERT_EQ(reparsed.size(), original.size());
    EXPECT_EQ(reparsed.disassemble(), original.disassemble());
    EXPECT_EQ(reparsed.magicCount(), original.magicCount());
    EXPECT_EQ(reparsed.registers().size(), original.registers().size());
}

TEST(Assembler, IgnoresBlankLinesAndComments)
{
    const Program p = assemble("\n  \n; just a note\nHD.M m0 ; trailing\n");
    EXPECT_EQ(p.size(), 1);
}

} // namespace
} // namespace lsqca
