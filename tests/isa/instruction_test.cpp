#include "isa/instruction.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace lsqca {
namespace {

TEST(OpcodeInfo, TableILatencies)
{
    // Fixed latencies straight from Table I.
    EXPECT_EQ(opcodeInfo(Opcode::PZ_C).latency, 0);
    EXPECT_EQ(opcodeInfo(Opcode::PP_C).latency, 0);
    EXPECT_EQ(opcodeInfo(Opcode::HD_C).latency, 3);
    EXPECT_EQ(opcodeInfo(Opcode::PH_C).latency, 2);
    EXPECT_EQ(opcodeInfo(Opcode::MX_C).latency, 0);
    EXPECT_EQ(opcodeInfo(Opcode::MZ_C).latency, 0);
    EXPECT_EQ(opcodeInfo(Opcode::MXX_C).latency, 1);
    EXPECT_EQ(opcodeInfo(Opcode::MZZ_C).latency, 1);
    EXPECT_EQ(opcodeInfo(Opcode::PZ_M).latency, 0);
    EXPECT_EQ(opcodeInfo(Opcode::MX_M).latency, 0);
}

TEST(OpcodeInfo, VariableLatencyOpcodes)
{
    for (Opcode op : {Opcode::LD, Opcode::ST, Opcode::PM, Opcode::SK,
                      Opcode::HD_M, Opcode::PH_M, Opcode::MXX_M,
                      Opcode::MZZ_M, Opcode::CX, Opcode::CZ})
        EXPECT_EQ(opcodeInfo(op).latency, kVariableLatency)
            << mnemonic(op);
}

TEST(OpcodeInfo, ClassesMatchTableI)
{
    EXPECT_EQ(opcodeInfo(Opcode::LD).cls, OpClass::Memory);
    EXPECT_EQ(opcodeInfo(Opcode::ST).cls, OpClass::Memory);
    EXPECT_EQ(opcodeInfo(Opcode::PM).cls, OpClass::Preparation);
    EXPECT_EQ(opcodeInfo(Opcode::SK).cls, OpClass::Control);
    EXPECT_EQ(opcodeInfo(Opcode::HD_M).cls, OpClass::InMemoryUnitary);
    EXPECT_EQ(opcodeInfo(Opcode::MZZ_M).cls,
              OpClass::InMemoryMeasurement);
    EXPECT_EQ(opcodeInfo(Opcode::CX).cls, OpClass::OptimizedUnitary);
}

TEST(OpcodeInfo, MnemonicsAreUnique)
{
    std::set<std::string> names;
    for (int i = 0; i < kNumOpcodes; ++i)
        names.insert(mnemonic(static_cast<Opcode>(i)));
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumOpcodes));
}

TEST(OpcodeInfo, OperandArities)
{
    EXPECT_EQ(opcodeInfo(Opcode::LD).numMem, 1);
    EXPECT_EQ(opcodeInfo(Opcode::LD).numReg, 1);
    EXPECT_EQ(opcodeInfo(Opcode::MZZ_C).numReg, 2);
    EXPECT_EQ(opcodeInfo(Opcode::MZZ_C).numVal, 1);
    EXPECT_EQ(opcodeInfo(Opcode::MZZ_M).numMem, 1);
    EXPECT_EQ(opcodeInfo(Opcode::MZZ_M).numReg, 1);
    EXPECT_EQ(opcodeInfo(Opcode::CX).numMem, 2);
    EXPECT_EQ(opcodeInfo(Opcode::SK).numVal, 1);
}

TEST(Instruction, LoadStoreRendering)
{
    Instruction ld;
    ld.op = Opcode::LD;
    ld.m0 = 12;
    ld.c0 = 1;
    EXPECT_EQ(ld.str(), "LD m12, c1");

    Instruction st;
    st.op = Opcode::ST;
    st.m0 = 12;
    st.c0 = 0;
    EXPECT_EQ(st.str(), "ST c0, m12");
}

TEST(Instruction, InMemoryMeasurementRendering)
{
    Instruction zz;
    zz.op = Opcode::MZZ_M;
    zz.c0 = 1;
    zz.m0 = 40;
    zz.v0 = 3;
    EXPECT_EQ(zz.str(), "MZZ.M c1, m40 -> v3");
}

TEST(Instruction, SkipRendering)
{
    Instruction sk;
    sk.op = Opcode::SK;
    sk.v0 = 9;
    EXPECT_EQ(sk.str(), "SK v9");
}

TEST(Instruction, CxRendering)
{
    Instruction cx;
    cx.op = Opcode::CX;
    cx.m0 = 3;
    cx.m1 = 7;
    EXPECT_EQ(cx.str(), "CX m3, m7");
}

} // namespace
} // namespace lsqca
