#include "isa/program.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace lsqca {
namespace {

Instruction
makeLd(std::int32_t m, std::int32_t c)
{
    Instruction inst;
    inst.op = Opcode::LD;
    inst.m0 = m;
    inst.c0 = c;
    return inst;
}

TEST(Program, AppendValidatesMemoryOperands)
{
    Program p(4);
    EXPECT_NO_THROW(p.append(makeLd(3, 0)));
    EXPECT_THROW(p.append(makeLd(4, 0)), ConfigError);
    EXPECT_THROW(p.append(makeLd(-1, 0)), ConfigError);
}

TEST(Program, AppendValidatesRegisterOperands)
{
    Program p(2);
    Instruction inst;
    inst.op = Opcode::HD_C;
    EXPECT_THROW(p.append(inst), ConfigError); // missing c0
    inst.c0 = 0;
    EXPECT_NO_THROW(p.append(inst));

    Instruction zz;
    zz.op = Opcode::MZZ_C;
    zz.c0 = 0;
    zz.c1 = 0; // duplicate register
    zz.v0 = p.newValue();
    EXPECT_THROW(p.append(zz), ConfigError);
    zz.c1 = 1;
    EXPECT_NO_THROW(p.append(zz));
}

TEST(Program, AppendValidatesValues)
{
    Program p(2);
    Instruction mz;
    mz.op = Opcode::MZ_M;
    mz.m0 = 0;
    mz.v0 = 0; // not allocated yet
    EXPECT_THROW(p.append(mz), ConfigError);
    mz.v0 = p.newValue();
    EXPECT_NO_THROW(p.append(mz));
}

TEST(Program, DuplicateMemoryOperandsRejected)
{
    Program p(3);
    Instruction cx;
    cx.op = Opcode::CX;
    cx.m0 = 1;
    cx.m1 = 1;
    EXPECT_THROW(p.append(cx), ConfigError);
}

TEST(Program, RegistersAndLookup)
{
    Program p(10);
    p.addRegister("control", 0, 4);
    p.addRegister("system", 4, 6);
    EXPECT_EQ(p.registerOf(0), 0);
    EXPECT_EQ(p.registerOf(5), 1);
    EXPECT_THROW(p.addRegister("bad", 8, 5), ConfigError); // overflows
}

TEST(Program, CountedInstructionsExcludesLoadStore)
{
    Program p(2);
    p.append(makeLd(0, 0));
    Instruction h;
    h.op = Opcode::HD_C;
    h.c0 = 0;
    p.append(h);
    Instruction st;
    st.op = Opcode::ST;
    st.m0 = 0;
    st.c0 = 0;
    p.append(st);
    EXPECT_EQ(p.size(), 3);
    EXPECT_EQ(p.countedInstructions(), 1);
}

TEST(Program, MagicCountCountsPm)
{
    Program p(1);
    Instruction pm;
    pm.op = Opcode::PM;
    pm.c0 = 0;
    p.append(pm);
    p.append(pm);
    EXPECT_EQ(p.magicCount(), 2);
}

TEST(Program, ReferenceCountsOverMemoryOperands)
{
    Program p(3);
    p.append(makeLd(0, 0));
    Instruction cx;
    cx.op = Opcode::CX;
    cx.m0 = 0;
    cx.m1 = 2;
    p.append(cx);
    const auto refs = p.referenceCounts();
    EXPECT_EQ(refs[0], 2);
    EXPECT_EQ(refs[1], 0);
    EXPECT_EQ(refs[2], 1);
}

TEST(Program, DisassemblyFormat)
{
    Program p(2);
    p.addRegister("q", 0, 2);
    p.append(makeLd(1, 0));
    const std::string out = p.disassemble();
    EXPECT_NE(out.find("; lsqca program: 2 variables"), std::string::npos);
    EXPECT_NE(out.find("; register q: m0..m1"), std::string::npos);
    EXPECT_NE(out.find("LD m1, c0"), std::string::npos);
}

TEST(Program, DisassemblyTruncation)
{
    Program p(1);
    for (int i = 0; i < 10; ++i) {
        Instruction h;
        h.op = Opcode::HD_M;
        h.m0 = 0;
        p.append(h);
    }
    const std::string out = p.disassemble(3);
    EXPECT_NE(out.find("... 7 more instructions"), std::string::npos);
}

} // namespace
} // namespace lsqca
