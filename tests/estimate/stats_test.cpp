/**
 * @file
 * Hand-computed fixtures for the sampled estimator's statistics core
 * (src/estimate/stats.h): Student-t critical values, sample mean /
 * unbiased variance / 95% CI half-width, and the degenerate cases
 * (empty, single sample, zero variance) the estimator leans on.
 */

#include "estimate/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lsqca::estimate {
namespace {

TEST(Stats, TCriticalMatchesTheTable)
{
    // Spot-check the standard two-sided 95% table at its edges.
    EXPECT_DOUBLE_EQ(tCritical95(1), 12.706);
    EXPECT_DOUBLE_EQ(tCritical95(2), 4.303);
    EXPECT_DOUBLE_EQ(tCritical95(10), 2.228);
    EXPECT_DOUBLE_EQ(tCritical95(30), 2.042);
    // Beyond the table: the normal quantile.
    EXPECT_DOUBLE_EQ(tCritical95(31), 1.96);
    EXPECT_DOUBLE_EQ(tCritical95(1000000), 1.96);
    // No degrees of freedom, no interval.
    EXPECT_DOUBLE_EQ(tCritical95(0), 0.0);
    EXPECT_DOUBLE_EQ(tCritical95(-5), 0.0);
}

TEST(Stats, TCriticalIsMonotoneDecreasing)
{
    for (std::int64_t df = 1; df < 40; ++df)
        EXPECT_GE(tCritical95(df), tCritical95(df + 1)) << "df " << df;
}

TEST(Stats, EmptySampleIsAllZeros)
{
    const SampleStats s = sampleStats({});
    EXPECT_EQ(s.n, 0);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(s.variance, 0.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(Stats, SingleSampleHasMeanButNoSpread)
{
    const SampleStats s = sampleStats({42.5});
    EXPECT_EQ(s.n, 1);
    EXPECT_DOUBLE_EQ(s.mean, 42.5);
    EXPECT_DOUBLE_EQ(s.variance, 0.0);
    EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(Stats, IdenticalSamplesCollapseTheInterval)
{
    const SampleStats s = sampleStats({3.0, 3.0, 3.0, 3.0});
    EXPECT_EQ(s.n, 4);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.variance, 0.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(Stats, HandComputedThreeSampleFixture)
{
    // {1, 2, 3}: mean 2, sum of squared deviations 2, unbiased
    // variance 2/2 = 1, stddev 1, ci95 = t(2) * 1 / sqrt(3).
    const SampleStats s = sampleStats({1.0, 2.0, 3.0});
    EXPECT_EQ(s.n, 3);
    EXPECT_DOUBLE_EQ(s.mean, 2.0);
    EXPECT_DOUBLE_EQ(s.variance, 1.0);
    EXPECT_DOUBLE_EQ(s.stddev, 1.0);
    EXPECT_DOUBLE_EQ(s.ci95, 4.303 / std::sqrt(3.0));
}

TEST(Stats, HandComputedEightSampleFixture)
{
    // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, squared deviations sum to
    // 9+1+1+1+0+0+4+16 = 32, variance 32/7, ci95 = t(7) * s / sqrt(8).
    const SampleStats s =
        sampleStats({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_EQ(s.n, 8);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.variance, 32.0 / 7.0);
    EXPECT_DOUBLE_EQ(s.stddev, std::sqrt(32.0 / 7.0));
    EXPECT_DOUBLE_EQ(s.ci95,
                     2.365 * std::sqrt(32.0 / 7.0) / std::sqrt(8.0));
}

TEST(Stats, LargeSampleUsesTheNormalQuantile)
{
    // 40 alternating values 0/2: mean 1, variance 40/39, df 39 > 30.
    std::vector<double> xs(40);
    for (std::size_t i = 0; i < xs.size(); ++i)
        xs[i] = (i % 2 == 0) ? 0.0 : 2.0;
    const SampleStats s = sampleStats(xs);
    EXPECT_DOUBLE_EQ(s.mean, 1.0);
    EXPECT_DOUBLE_EQ(s.variance, 40.0 / 39.0);
    EXPECT_DOUBLE_EQ(s.ci95,
                     1.96 * std::sqrt(40.0 / 39.0) / std::sqrt(40.0));
}

TEST(Stats, MeanIsTranslationInvariantSpreadIsNot)
{
    const SampleStats a = sampleStats({1.0, 2.0, 3.0});
    const SampleStats b = sampleStats({101.0, 102.0, 103.0});
    EXPECT_DOUBLE_EQ(b.mean, a.mean + 100.0);
    EXPECT_DOUBLE_EQ(b.variance, a.variance);
    EXPECT_DOUBLE_EQ(b.ci95, a.ci95);
}

} // namespace
} // namespace lsqca::estimate
