/**
 * @file
 * Sampled-estimator correctness (docs/SAMPLING.md), pinned two ways:
 *
 *  * exactness contracts — period=1 coverage and streams shorter than
 *    the effective-period clamp must reproduce the exact simulation
 *    bit for bit (estimated == false, identical SimResult);
 *  * a seeded differential harness — functional fast-forward must
 *    leave the machine in exactly the state detailed execution
 *    reaches, checked via Machine::functionalDigest() at random
 *    checkpoints over real translated programs.
 *
 * The harness seed count follows LSQCA_SAMPLE_SEEDS (default 8; the
 * `ctest -L sample` entry re-runs it with 32, see CMakeLists.txt).
 * Line SAM runs with row_parallel_ops off: the fast-forward path
 * always commits the align a row-parallel batch may elide (the one
 * documented divergence, covered statistically by the sampling CI
 * gate instead).
 */

#include "estimate/sampled.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "circuit/lowering.h"
#include "common/error.h"
#include "common/rng.h"
#include "estimate/options.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

using estimate::EstimatorMode;
using estimate::EstimatorOptions;

int
sampleSeedCount()
{
    if (const char *env = std::getenv("LSQCA_SAMPLE_SEEDS")) {
        const int n = std::atoi(env);
        if (n >= 1 && n <= 65536)
            return n;
    }
    return 8;
}

/** Distinct, well-mixed 64-bit seed for differential round @p index. */
std::uint64_t
differentialSeed(int index)
{
    return 0x9e3779b97f4a7c15ULL *
           (static_cast<std::uint64_t>(index) + 1);
}

/** Small real programs shared by every test in this file. */
const Program &
pooledProgram(int which)
{
    // 603 / 48 / 4735 instructions respectively: a mid-size
    // arithmetic stream, a trivial transversal chain, and a stream
    // long enough for the estimator to genuinely sample.
    static const Program adder =
        translate(lowerToCliffordT(makeAdder(16)));
    static const Program ghz =
        translate(lowerToCliffordT(makeGhz(48)));
    static const Program select =
        translate(lowerToCliffordT(makeSelect({.width = 4})));
    switch (which % 3) {
      case 0: return adder;
      case 1: return ghz;
      default: return select;
    }
}

EstimatorOptions
sampledOptions(std::int64_t unit, std::int64_t warm, std::int64_t period)
{
    EstimatorOptions est;
    est.mode = EstimatorMode::Sampled;
    est.unitInstrs = unit;
    est.warmupInstrs = warm;
    est.period = period;
    return est;
}

/** Every machine-visible field two exact-coverage runs must share. */
void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.execBeats, b.execBeats);
    EXPECT_EQ(a.instructionsSimulated, b.instructionsSimulated);
    EXPECT_EQ(a.countedInstructions, b.countedInstructions);
    EXPECT_EQ(a.cpi, b.cpi); // bit-for-bit, not just close
    EXPECT_EQ(a.magicConsumed, b.magicConsumed);
    EXPECT_EQ(a.magicStallBeats, b.magicStallBeats);
    EXPECT_EQ(a.memoryBeats, b.memoryBeats);
    EXPECT_EQ(a.opcodeCount, b.opcodeCount);
    EXPECT_EQ(a.opcodeBeats, b.opcodeBeats);
    EXPECT_EQ(a.floorplan.density(), b.floorplan.density());
}

TEST(EstimatorOptions, EffectivePeriodClampsShortStreams)
{
    EstimatorOptions est = sampledOptions(200, 200, 40);
    // Long streams keep the configured period.
    EXPECT_EQ(est.effectivePeriod(320), 40);
    EXPECT_EQ(est.effectivePeriod(100000), 40);
    // Mid-size streams shrink it so >= kMinMeasuredUnits units are
    // measured.
    EXPECT_EQ(est.effectivePeriod(80), 10);
    EXPECT_EQ(est.effectivePeriod(16), 2);
    // Too short for a sample at all: whole-stream coverage.
    EXPECT_EQ(est.effectivePeriod(15), 1);
    EXPECT_EQ(est.effectivePeriod(8), 1);
    EXPECT_EQ(est.effectivePeriod(1), 1);
    EXPECT_EQ(est.effectivePeriod(0), 1);
    // period=1 is never inflated.
    est.period = 1;
    EXPECT_EQ(est.effectivePeriod(100000), 1);
}

TEST(EstimatorOptions, ModeNamesRoundTrip)
{
    EXPECT_STREQ(estimate::estimatorModeName(EstimatorMode::Exact),
                 "exact");
    EXPECT_STREQ(estimate::estimatorModeName(EstimatorMode::Sampled),
                 "sampled");
    EXPECT_EQ(estimate::estimatorModeFromName("exact"),
              EstimatorMode::Exact);
    EXPECT_EQ(estimate::estimatorModeFromName("sampled"),
              EstimatorMode::Sampled);
    EXPECT_THROW(estimate::estimatorModeFromName("smarts"),
                 ConfigError);
}

TEST(EstimatorOptions, ValidateRejectsBadSampledParameters)
{
    EstimatorOptions est = sampledOptions(0, 0, 1);
    EXPECT_THROW(est.validate(), ConfigError);
    est = sampledOptions(100, -1, 1);
    EXPECT_THROW(est.validate(), ConfigError);
    est = sampledOptions(100, 0, 0);
    EXPECT_THROW(est.validate(), ConfigError);
    est = sampledOptions(100, 0, 1);
    est.targetCi = -0.1;
    EXPECT_THROW(est.validate(), ConfigError);
    // Exact mode ignores the sampling knobs entirely.
    est = EstimatorOptions{};
    est.unitInstrs = 0;
    EXPECT_NO_THROW(est.validate());
}

/** Period 1 measures every unit: the estimate telescopes to exact. */
void
expectPeriodOneExact(SamKind kind, std::int32_t banks)
{
    const Program &prog = pooledProgram(0);
    SimOptions exact;
    exact.arch.sam = kind;
    exact.arch.banks = banks;
    SimOptions sampled = exact;
    sampled.estimator = sampledOptions(64, 32, 1);

    const SimResult e = simulate(prog, exact);
    const SimResult s = simulate(prog, sampled);
    EXPECT_FALSE(e.estimated);
    EXPECT_FALSE(s.estimated);
    EXPECT_DOUBLE_EQ(s.cpiCi95, 0.0);
    EXPECT_DOUBLE_EQ(s.samplingError, 0.0);
    expectSameResult(e, s);
}

TEST(Sampled, PeriodOneIsBitIdenticalToExactOnPoint)
{
    expectPeriodOneExact(SamKind::Point, 1);
}

TEST(Sampled, PeriodOneIsBitIdenticalToExactOnLine)
{
    expectPeriodOneExact(SamKind::Line, 4);
}

TEST(Sampled, PeriodOneIsBitIdenticalToExactOnConventional)
{
    expectPeriodOneExact(SamKind::Conventional, 1);
}

TEST(Sampled, ShortStreamDegradesToExactCoverage)
{
    // 900 instructions / unit 200 = 5 units < kMinMeasuredUnits: the
    // period clamp turns the run into whole-stream coverage, which
    // must equal the exact truncated run.
    const Program &prog = pooledProgram(2);
    ASSERT_GT(prog.size(), 900);
    SimOptions exact;
    exact.arch.sam = SamKind::Point;
    exact.maxInstructions = 900;
    SimOptions sampled = exact;
    sampled.estimator = sampledOptions(200, 200, 40);

    const SimResult e = simulate(prog, exact);
    const SimResult s = simulate(prog, sampled);
    EXPECT_FALSE(s.estimated);
    EXPECT_EQ(s.sampledUnits, 5);
    EXPECT_EQ(s.ffInstructions, 0);
    expectSameResult(e, s);
}

TEST(Sampled, EstimateLandsNearExactAndAccountsEveryInstruction)
{
    const Program &prog = pooledProgram(2);
    SimOptions exact;
    exact.arch.sam = SamKind::Point;
    SimOptions sampled = exact;
    sampled.estimator = sampledOptions(200, 200, 40);

    const SimResult e = simulate(prog, exact);
    const SimResult s = simulate(prog, sampled);
    ASSERT_TRUE(s.estimated);
    EXPECT_GE(s.sampledUnits, EstimatorOptions::kMinMeasuredUnits);
    EXPECT_GT(s.ffInstructions, 0);
    EXPECT_EQ(s.detailedInstructions + s.ffInstructions,
              s.instructionsSimulated);
    EXPECT_EQ(s.countedInstructions, e.countedInstructions);
    // Magic consumption is functional, never estimated.
    EXPECT_EQ(s.magicConsumed, e.magicConsumed);
    // The estimate carries a real interval and lands near the truth
    // (deterministic simulator: this is a fixed fact, not a flake).
    EXPECT_GT(s.cpiCi95, 0.0);
    EXPECT_GT(s.samplingError, 0.0);
    EXPECT_NEAR(s.cpi, e.cpi, 0.25 * e.cpi);
}

// ---- differential harness: fast-forward vs detailed execution -------------
//
// Two machines over the same program and config: one executes every
// instruction in full detail, the other only replays the functional
// skip-list (Program::streamIndex()->memOps) through fastForwardOne().
// Their functionalDigest() — PM count, per-bank gap/scan position,
// full cell maps — must agree at every checkpoint. A mismatch prints
// the seed and instruction index so the failure replays exactly.

template <SamKind KIND>
void
runFfDifferential(const Program &prog, const SimOptions &opts,
                  std::uint64_t seed, std::int64_t checkpoint)
{
    detail::Machine<KIND, false> det(prog, opts);
    detail::Machine<KIND, false> ff(prog, opts);
    const Instruction *code = prog.instructions().data();
    const auto index = prog.streamIndex();
    const auto &memOps = index->memOps;
    std::size_t cursor = 0;
    const std::int64_t limit = prog.size();
    for (std::int64_t i = 0; i < limit; ++i) {
        det.executeOne(code[i]);
        while (cursor < memOps.size() && memOps[cursor] <= i) {
            ff.fastForwardOne(code[memOps[cursor]]);
            ++cursor;
        }
        if ((i + 1) % checkpoint == 0) {
            ASSERT_EQ(det.functionalDigest(), ff.functionalDigest())
                << "seed " << seed << " after instruction " << i;
        }
    }
    ASSERT_EQ(det.functionalDigest(), ff.functionalDigest())
        << "seed " << seed << " at end of stream";
}

class SampledFfDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(SampledFfDifferential, FunctionalStateMatchesDetailed)
{
    const std::uint64_t seed =
        differentialSeed(GetParam()) ^ 0xf00dfacedULL;
    Rng rng(seed);
    const Program &prog =
        pooledProgram(static_cast<int>(rng.below(3)));
    const std::int64_t checkpoint = rng.between(128, 1024);

    SimOptions opts;
    opts.arch.factories = static_cast<std::int32_t>(rng.between(1, 2));
    opts.arch.localityStore = rng.chance(0.75);
    opts.arch.inMemoryOps = rng.chance(0.75);
    if (rng.chance(0.25))
        opts.arch.hybridFraction = 0.3;

    switch (rng.below(3)) {
      case 0:
        opts.arch.sam = SamKind::Point;
        opts.arch.banks = static_cast<std::int32_t>(rng.between(1, 2));
        runFfDifferential<SamKind::Point>(prog, opts, seed, checkpoint);
        break;
      case 1:
        opts.arch.sam = SamKind::Line;
        opts.arch.banks = static_cast<std::int32_t>(rng.between(1, 4));
        // Option A: ff always commits the align a row-parallel batch
        // may skip, so bit-identity is pinned with batching off.
        opts.arch.rowParallelOps = false;
        runFfDifferential<SamKind::Line>(prog, opts, seed, checkpoint);
        break;
      default:
        opts.arch.sam = SamKind::Conventional;
        opts.arch.banks = 1;
        runFfDifferential<SamKind::Conventional>(prog, opts, seed,
                                                 checkpoint);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SampledFfDifferential,
                         ::testing::Range(0, sampleSeedCount()));

/**
 * The estimator's own ff+warm+measure walk, replayed against exact
 * coverage: after a sampled run, rerunning the same config with
 * period 1 must land on the same functional end-state a plain
 * detailed pass reaches. This closes the loop the unit harness above
 * leaves open — resetTimingEpoch() between spans must not perturb
 * functional state either.
 */
class SampledRunDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(SampledRunDifferential, SampledRunPreservesFunctionalAccounting)
{
    const std::uint64_t seed =
        differentialSeed(GetParam()) ^ 0xca55e77eULL;
    Rng rng(seed);
    const Program &prog =
        pooledProgram(static_cast<int>(rng.below(3)));

    SimOptions opts;
    opts.arch.sam = rng.chance(0.5) ? SamKind::Point : SamKind::Line;
    if (opts.arch.sam == SamKind::Line) {
        opts.arch.banks = static_cast<std::int32_t>(rng.between(1, 4));
        opts.arch.rowParallelOps = false;
    }
    opts.estimator = sampledOptions(rng.between(50, 300),
                                    rng.between(0, 300),
                                    rng.between(2, 50));

    const SimResult s = simulate(prog, opts);
    SimOptions exact = opts;
    exact.estimator = EstimatorOptions{};
    const SimResult e = simulate(prog, exact);

    // Functional accounting is exact regardless of sampling.
    EXPECT_EQ(s.instructionsSimulated, e.instructionsSimulated)
        << "seed " << seed;
    EXPECT_EQ(s.countedInstructions, e.countedInstructions)
        << "seed " << seed;
    EXPECT_EQ(s.magicConsumed, e.magicConsumed) << "seed " << seed;
    if (s.estimated) {
        EXPECT_EQ(s.detailedInstructions + s.ffInstructions,
                  s.instructionsSimulated)
            << "seed " << seed;
        EXPECT_GE(s.sampledUnits,
                  EstimatorOptions::kMinMeasuredUnits)
            << "seed " << seed;
    } else {
        expectSameResult(e, s);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SampledRunDifferential,
                         ::testing::Range(0, sampleSeedCount()));

} // namespace
} // namespace lsqca
