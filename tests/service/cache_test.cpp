/**
 * @file
 * The result cache must be byte-exact (a cached shard replaces a
 * worker run, so any drift would silently corrupt the merged
 * artifact), safe against bad keys (a fingerprint becomes a file
 * name), and inert when disabled.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/fs.h"
#include "common/hash.h"
#include "service/cache.h"
#include "service_test_util.h"

namespace lsqca::service {
namespace {

const char *kKey = "0123456789abcdef";

TEST(ResultCache, StoreThenFetchIsByteExact)
{
    const std::string dir = test::scratchDir("cache");
    const ResultCache cache(dir + "/cache");
    const std::string doc =
        "{\n  \"bench\": \"smoke\",\n  \"entries\": []\n}\n";
    fsutil::writeFileAtomic(dir + "/src.json", doc);

    EXPECT_FALSE(cache.contains(kKey));
    EXPECT_FALSE(cache.fetch(kKey, dir + "/miss.json"));
    EXPECT_FALSE(fsutil::exists(dir + "/miss.json"));
    EXPECT_EQ(cache.size(), 0u);

    cache.store(kKey, dir + "/src.json");
    EXPECT_TRUE(cache.contains(kKey));
    EXPECT_EQ(cache.size(), 1u);

    // Fetch into a nested destination: parents are created and the
    // bytes match exactly.
    const std::string dest = dir + "/deep/nested/out.json";
    EXPECT_TRUE(cache.fetch(kKey, dest));
    EXPECT_EQ(fsutil::readFile(dest), doc);
}

TEST(ResultCache, StoreOverwritesSameKey)
{
    const std::string dir = test::scratchDir("overwrite");
    const ResultCache cache(dir + "/cache");
    fsutil::writeFileAtomic(dir + "/a.json", "aaa");
    fsutil::writeFileAtomic(dir + "/b.json", "bbb");
    cache.store(kKey, dir + "/a.json");
    cache.store(kKey, dir + "/b.json");
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(cache.fetch(kKey, dir + "/out.json"));
    EXPECT_EQ(fsutil::readFile(dir + "/out.json"), "bbb");
}

TEST(ResultCache, RejectsMalformedFingerprints)
{
    const std::string dir = test::scratchDir("badkey");
    const ResultCache cache(dir);
    // Path traversal or corruption in a queue file must never escape
    // the cache directory.
    EXPECT_THROW(cache.pathFor("../../etc/passwd"), ConfigError);
    EXPECT_THROW(cache.pathFor("0123"), ConfigError);
    EXPECT_THROW(cache.pathFor("0123456789ABCDEF"), ConfigError);
    EXPECT_NO_THROW(cache.pathFor(kKey));
}

TEST(ResultCache, DisabledCacheIsInert)
{
    const ResultCache cache{std::string()};
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.contains(kKey));
    EXPECT_EQ(cache.size(), 0u);
    const std::string dir = test::scratchDir("disabled");
    fsutil::writeFileAtomic(dir + "/src.json", "x");
    cache.store(kKey, dir + "/src.json"); // no-op, no throw
    EXPECT_FALSE(cache.fetch(kKey, dir + "/out.json"));
    EXPECT_THROW(cache.pathFor(kKey), ConfigError);
}

TEST(ResultCache, FingerprintHelpers)
{
    // The hash is pinned: cache keys are an on-disk format shared
    // across builds, so an accidental algorithm change must fail.
    EXPECT_EQ(fnv1a64(""), kFnv1a64Offset);
    EXPECT_EQ(contentFingerprint(""), "cbf29ce484222325");
    EXPECT_EQ(contentFingerprint("lsqca"), "1d71fb5df48284ab");
    EXPECT_TRUE(isFingerprint(contentFingerprint("anything")));
    EXPECT_FALSE(isFingerprint("0123456789abcde"));
    EXPECT_FALSE(isFingerprint("0123456789abcdeg"));
}

} // namespace
} // namespace lsqca::service
