/**
 * @file
 * Black-box coverage of the CLI surface the orchestrator rides on:
 * worker flags (--timeout-seconds, --seed-check, --die-after), the
 * directory form of `merge` with duplicate-entry rejection, and the
 * submit/status/resume round trip — each against the real binary, the
 * way CI and other machines invoke it.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fs.h"
#include "common/json.h"
#include "common/subprocess.h"
#include "service_test_util.h"

namespace lsqca::service {
namespace {

struct CliResult
{
    int exitCode = -1;
    bool signaled = false;
    std::string output; // stdout + stderr
};

/** Run the real lsqca binary and capture everything. */
CliResult
runCli(std::vector<std::string> args, const std::string &logPath)
{
    proc::Command command;
    command.argv = {test::kCliBin};
    command.argv.insert(command.argv.end(), args.begin(), args.end());
    command.logPath = logPath;
    const proc::Status status = proc::wait(proc::spawn(command));
    CliResult result;
    result.exitCode = status.exitCode;
    result.signaled = status.signaled;
    result.output = fsutil::exists(logPath)
                        ? fsutil::readFile(logPath)
                        : std::string();
    return result;
}

TEST(Cli, TimeoutSecondsAbortsWithCode124)
{
    const std::string dir = test::scratchDir("timeout");
    // The full fig13 sweep takes well over 10 ms of synthesis +
    // simulation, so the watchdog always wins this race.
    const CliResult result =
        runCli({"run", test::kFig13Spec, "--timeout-seconds", "0.01",
                "--out", dir + "/out"},
               dir + "/log");
    EXPECT_EQ(result.exitCode, 124);
    EXPECT_NE(result.output.find("exceeded --timeout-seconds"),
              std::string::npos)
        << result.output;
}

TEST(Cli, DieAfterExitsMidShardWithoutOutput)
{
    const std::string dir = test::scratchDir("dieafter");
    const CliResult result =
        runCli({"run", test::kSmokeSpec, "--shard", "0/2",
                "--die-after", "1", "--no-timing", "--out",
                dir + "/out"},
               dir + "/log");
    EXPECT_EQ(result.exitCode, 75);
    EXPECT_FALSE(fsutil::exists(
        dir + "/out/BENCH_smoke.shard0of2.json"));
}

TEST(Cli, SeedCheckMismatchFailsAndMalformedValueIsRejected)
{
    const std::string dir = test::scratchDir("seedcheck");
    const CliResult mismatch =
        runCli({"run", test::kSmokeSpec, "--seed-check",
                "0123456789abcdef", "--out", dir + "/out"},
               dir + "/log1");
    EXPECT_EQ(mismatch.exitCode, 1);
    EXPECT_NE(mismatch.output.find("--seed-check mismatch"),
              std::string::npos)
        << mismatch.output;

    const CliResult malformed =
        runCli({"run", test::kSmokeSpec, "--seed-check", "nope"},
               dir + "/log2");
    EXPECT_EQ(malformed.exitCode, 1);
    EXPECT_NE(malformed.output.find("16-hex-digit"),
              std::string::npos)
        << malformed.output;
}

TEST(Cli, MergeAcceptsADirectoryOfShards)
{
    const std::string dir = test::scratchDir("mergedir");
    for (const char *shard : {"0/2", "1/2"})
        ASSERT_EQ(runCli({"run", test::kSmokeSpec, "--shard", shard,
                          "--no-timing", "--out", dir + "/shards"},
                         dir + "/runlog")
                      .exitCode,
                  0);
    ASSERT_EQ(runCli({"run", test::kSmokeSpec, "--no-timing", "--out",
                      dir + "/direct"},
                     dir + "/runlog")
                  .exitCode,
              0);

    const CliResult merged =
        runCli({"merge", dir + "/shards", "--out",
                dir + "/merged.json"},
               dir + "/mergelog");
    EXPECT_EQ(merged.exitCode, 0);
    EXPECT_EQ(fsutil::readFile(dir + "/merged.json"),
              fsutil::readFile(dir + "/direct/BENCH_smoke.json"));
}

TEST(Cli, MergeRejectsDuplicateEntriesWithPositions)
{
    const std::string dir = test::scratchDir("mergedup");
    ASSERT_EQ(runCli({"run", test::kSmokeSpec, "--no-timing", "--out",
                      dir + "/out"},
                     dir + "/runlog")
                  .exitCode,
              0);
    const std::string doc = dir + "/out/BENCH_smoke.json";
    const CliResult result =
        runCli({"merge", doc, doc}, dir + "/mergelog");
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("duplicate entry \""),
              std::string::npos)
        << result.output;
    // The error points at both offending documents by path.
    EXPECT_NE(result.output.find(doc), std::string::npos);
}

TEST(Cli, MergeRejectsADirectoryWithoutBenchFiles)
{
    const std::string dir = test::scratchDir("mergeempty");
    fsutil::makeDirs(dir + "/empty");
    const CliResult result =
        runCli({"merge", dir + "/empty"}, dir + "/log");
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("no BENCH_*.json"),
              std::string::npos)
        << result.output;
}

TEST(Cli, SubmitStatusResumeRoundTrip)
{
    const std::string dir = test::scratchDir("campaign");
    ASSERT_EQ(runCli({"run", test::kSmokeSpec, "--no-timing", "--out",
                      dir + "/direct"},
                     dir + "/runlog")
                  .exitCode,
              0);

    // Interrupt mid-campaign (simulated orchestrator death killing a
    // worker mid-run), then resume to the byte-identical artifact.
    const CliResult interrupted = runCli(
        {"submit", test::kSmokeSpec, "--workers", "2", "--shards",
         "4", "--no-timing", "--state", dir + "/state",
         "--test-stop-after", "2"},
        dir + "/submitlog");
    EXPECT_EQ(interrupted.exitCode, 3);
    EXPECT_NE(interrupted.output.find("campaign interrupted"),
              std::string::npos)
        << interrupted.output;

    const CliResult status =
        runCli({"status", dir + "/state"}, dir + "/statuslog");
    EXPECT_EQ(status.exitCode, 0);
    EXPECT_NE(status.output.find("campaign smoke"), std::string::npos);
    EXPECT_NE(status.output.find("running"), std::string::npos);

    const CliResult resumed =
        runCli({"resume", dir + "/state", "--workers", "2"},
               dir + "/resumelog");
    EXPECT_EQ(resumed.exitCode, 0);
    EXPECT_NE(resumed.output.find("4/4 shards done"),
              std::string::npos)
        << resumed.output;
    EXPECT_EQ(fsutil::readFile(dir + "/state/BENCH_smoke.json"),
              fsutil::readFile(dir + "/direct/BENCH_smoke.json"));
}

TEST(Cli, StatusShowsEstimatorModeAndEscalations)
{
    const std::string dir = test::scratchDir("sampledstatus");
    // A sampled campaign whose target_ci nothing meets: both shards
    // run sampled, then escalate to exact reruns (docs/SAMPLING.md).
    const std::string spec = dir + "/sampled.json";
    fsutil::writeFileAtomic(spec, R"({
  "schema": "lsqca-spec-v2",
  "name": "escalate_cli",
  "name_template": "{benchmark}/{machine}",
  "estimator": {"mode": "sampled", "unit_instrs": 50,
                "warmup_instrs": 50, "period": 10,
                "target_ci": 0.0001},
  "axes": [
    {"axis": "benchmark", "values": [
      {"name": "adder", "bench": "adder", "params": {"width": 24}}]},
    {"axis": "machine", "values": [
      {"name": "point#1", "arch": {"sam": "point", "banks": 1}},
      {"name": "line#2", "arch": {"sam": "line", "banks": 2}}]}
  ]
})");
    const CliResult submitted =
        runCli({"submit", spec, "--workers", "2", "--shards", "2",
                "--no-timing", "--state", dir + "/state"},
               dir + "/submitlog");
    EXPECT_EQ(submitted.exitCode, 0);
    EXPECT_NE(submitted.output.find("2 escalated"), std::string::npos)
        << submitted.output;

    // Status renders the per-task estimator mode column and counts
    // the derived escalation tasks.
    const CliResult status =
        runCli({"status", dir + "/state"}, dir + "/statuslog");
    EXPECT_EQ(status.exitCode, 0);
    EXPECT_NE(status.output.find("sampled"), std::string::npos)
        << status.output;
    EXPECT_NE(status.output.find("exact (escalated)"),
              std::string::npos)
        << status.output;
    EXPECT_NE(status.output.find("2 escalated"), std::string::npos)
        << status.output;
}

TEST(Cli, ReportReconstructsAnInterruptedCampaignFromTheJournal)
{
    const std::string dir = test::scratchDir("report");
    // Interrupt mid-campaign, resume, then report: the full history —
    // both legs, every spawn — comes from events.jsonl alone.
    const CliResult interrupted = runCli(
        {"submit", test::kSmokeSpec, "--workers", "2", "--shards",
         "4", "--no-timing", "--state", dir + "/state",
         "--clock", "logical", "--test-stop-after", "2"},
        dir + "/submitlog");
    EXPECT_EQ(interrupted.exitCode, 3);
    // A journal only reopens under its original clock: resuming with
    // the default (monotonic) clock is refused...
    const CliResult wrongClock =
        runCli({"resume", dir + "/state", "--workers", "2"},
               dir + "/wrongclocklog");
    EXPECT_EQ(wrongClock.exitCode, 1);
    EXPECT_NE(wrongClock.output.find("clock"), std::string::npos)
        << wrongClock.output;
    // ...and the matching clock continues the same journal.
    ASSERT_EQ(runCli({"resume", dir + "/state", "--workers", "2",
                      "--clock", "logical"},
                     dir + "/resumelog")
                  .exitCode,
              0);

    const CliResult report =
        runCli({"report", dir + "/state"}, dir + "/reportlog");
    EXPECT_EQ(report.exitCode, 0);
    EXPECT_NE(report.output.find("campaign smoke"), std::string::npos)
        << report.output;
    EXPECT_NE(report.output.find("status: complete"),
              std::string::npos);
    EXPECT_NE(report.output.find("2 legs"), std::string::npos)
        << report.output;
    EXPECT_NE(report.output.find("wall-clock breakdown"),
              std::string::npos);
    EXPECT_NE(report.output.find("worker utilization"),
              std::string::npos);

    // --chrome-trace publishes a Perfetto-loadable document whose
    // spans all sit on real worker tracks with monotone durations.
    const std::string tracePath = dir + "/trace.json";
    const CliResult traced =
        runCli({"report", dir + "/state", "--chrome-trace",
                tracePath},
               dir + "/tracelog");
    EXPECT_EQ(traced.exitCode, 0);
    EXPECT_NE(traced.output.find("chrome trace:"), std::string::npos)
        << traced.output;
    const Json doc = Json::parse(fsutil::readFile(tracePath));
    int spans = 0;
    for (const Json &event : doc.at("traceEvents").items())
        if (event.at("ph").asString() == "X") {
            ++spans;
            EXPECT_GE(event.at("dur").asDouble(), 0.0);
            EXPECT_GT(event.at("tid").asInt(), 0);
        }
    EXPECT_GE(spans, 4); // at least one attempt per shard
}

TEST(Cli, ReportIsByteIdenticalAcrossLogicalClockReruns)
{
    const std::string dir = test::scratchDir("reportbytes");
    const auto campaign = [&](const std::string &state,
                              const std::string &log) {
        EXPECT_EQ(runCli({"submit", test::kSmokeSpec, "--workers",
                          "1", "--shards", "2", "--no-timing",
                          "--state", state, "--clock", "logical"},
                         log)
                      .exitCode,
                  0);
        return runCli({"report", state}, log + ".report").output;
    };
    const std::string first = campaign(dir + "/a", dir + "/log1");
    const std::string second = campaign(dir + "/b", dir + "/log2");
    EXPECT_EQ(first, second);
    // Logical clock reports in event units, not seconds.
    EXPECT_NE(first.find("span_ev"), std::string::npos) << first;
}

TEST(Cli, ReportExplainsAMissingJournal)
{
    const std::string dir = test::scratchDir("reportnojournal");
    ASSERT_EQ(runCli({"submit", test::kSmokeSpec, "--workers", "1",
                      "--shards", "2", "--no-timing", "--state",
                      dir + "/state", "--no-journal"},
                     dir + "/submitlog")
                  .exitCode,
              0);
    EXPECT_FALSE(fsutil::exists(dir + "/state/events.jsonl"));
    const CliResult report =
        runCli({"report", dir + "/state"}, dir + "/reportlog");
    EXPECT_EQ(report.exitCode, 1);
    EXPECT_NE(report.output.find("no campaign journal"),
              std::string::npos)
        << report.output;
}

TEST(Cli, StatusShowsAgeColumnAndStragglerWarning)
{
    const std::string dir = test::scratchDir("statusage");
    ASSERT_EQ(runCli({"submit", test::kSmokeSpec, "--workers", "2",
                      "--shards", "2", "--no-timing", "--state",
                      dir + "/state"},
                     dir + "/submitlog")
                  .exitCode,
              0);
    const CliResult status =
        runCli({"status", dir + "/state"}, dir + "/statuslog");
    EXPECT_EQ(status.exitCode, 0);
    EXPECT_NE(status.output.find("age_s"), std::string::npos)
        << status.output;

    // Splice a straggler-kill retry into the journal (the event the
    // orchestrator writes when it shoots a slow worker) and status
    // surfaces the explicit warning, pointing at `lsqca report`.
    const std::string journal = dir + "/state/events.jsonl";
    fsutil::writeFileAtomic(
        journal,
        fsutil::readFile(journal) +
            "{\"event\":\"retry\",\"seq\":999,\"t\":999,"
            "\"shard\":0,\"attempt\":1,\"cause\":\"straggler\"}\n");
    const CliResult warned =
        runCli({"status", dir + "/state"}, dir + "/warnlog");
    EXPECT_EQ(warned.exitCode, 0);
    EXPECT_NE(warned.output.find("warning: 1 straggler kill"),
              std::string::npos)
        << warned.output;
    EXPECT_NE(warned.output.find("lsqca report"), std::string::npos);
}

TEST(Cli, RunWritesAMetricsSnapshotOnRequest)
{
    const std::string dir = test::scratchDir("runmetrics");
    const CliResult result =
        runCli({"run", test::kSmokeSpec, "--threads", "2",
                "--no-timing", "--out", dir + "/out", "--metrics",
                dir + "/metrics.json"},
               dir + "/runlog");
    EXPECT_EQ(result.exitCode, 0);
    const Json snapshot =
        Json::parse(fsutil::readFile(dir + "/metrics.json"));
    EXPECT_GT(snapshot.at("sweep.jobs").asInt(), 0);
    EXPECT_GT(snapshot.at("sweep.job_wall_seconds").at("count")
                  .asInt(),
              0);
    EXPECT_GT(snapshot.at("pool.tasks").asInt(), 0);
    // The snapshot is an opt-in side channel: BENCH bytes match an
    // uninstrumented run exactly.
    const CliResult plain =
        runCli({"run", test::kSmokeSpec, "--threads", "2",
                "--no-timing", "--out", dir + "/plain"},
               dir + "/plainlog");
    EXPECT_EQ(plain.exitCode, 0);
    EXPECT_EQ(fsutil::readFile(dir + "/out/BENCH_smoke.json"),
              fsutil::readFile(dir + "/plain/BENCH_smoke.json"));
}

TEST(Cli, SubmitRejectsUnknownFlagsAndNonFileSpecs)
{
    const std::string dir = test::scratchDir("submitbad");
    EXPECT_EQ(runCli({"submit", test::kSmokeSpec, "--wrokers", "2"},
                     dir + "/log1")
                  .exitCode,
              1);
    // Builtin names are for `run`; workers must re-load a real file.
    const CliResult builtin =
        runCli({"submit", "smoke"}, dir + "/log2");
    EXPECT_EQ(builtin.exitCode, 1);
    EXPECT_NE(builtin.output.find("spec *file*"), std::string::npos)
        << builtin.output;
}

} // namespace
} // namespace lsqca::service
