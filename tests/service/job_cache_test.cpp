/**
 * @file
 * The job-granularity incremental cache, end to end: canonical job
 * fingerprints (partition- and sweep-name-invariant), runSpec's splice
 * seam against an in-memory cache client, the on-disk
 * `lsqca-jobcache-v1` store, and the orchestrator behaviours the
 * tentpole promises — a resubmit after adding one grid point computes
 * exactly one job, a slice whose jobs are all cached assembles with
 * zero spawns, and an interrupted campaign never leaves an empty or
 * torn artifact behind.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "api/job_cache.h"
#include "api/registry.h"
#include "api/spec.h"
#include "common/fs.h"
#include "common/hash.h"
#include "service/cache.h"
#include "service/orchestrator.h"
#include "service_test_util.h"

namespace lsqca::service {
namespace {

using api::BenchmarkRegistry;
using api::SweepSpec;

/** Direct in-process --no-timing run; returns the BENCH file bytes. */
std::string
goldenRun(const std::string &specPath, const std::string &outDir)
{
    const SweepSpec spec = SweepSpec::load(specPath);
    BenchmarkRegistry registry = BenchmarkRegistry::paper();
    api::RunSpecOptions options;
    options.threads = 2;
    options.outDir = outDir;
    options.noTiming = true;
    const api::SpecRun run = api::runSpec(spec, registry, options);
    return fsutil::readFile(run.jsonPath);
}

OrchestratorOptions
baseOptions(const std::string &stateDir)
{
    OrchestratorOptions options;
    options.stateDir = stateDir;
    options.workerExe = test::kCliBin;
    options.workers = 2;
    options.noTiming = true;
    options.pollSeconds = 0.002;
    return options;
}

/**
 * A one-benchmark sweep over @p machines line-SAM grid points — the
 * "add one grid point" scenario is gridSpec(k) vs gridSpec(k + 1).
 */
std::string
gridSpec(const std::string &path, int machines)
{
    std::string doc = R"({
  "schema": "lsqca-spec-v1",
  "name": "incr",
  "name_template": "{benchmark}/{machine}",
  "axes": [
    {"axis": "benchmark", "values": [
      {"name": "adder", "bench": "adder", "params": {"width": 8}}]},
    {"axis": "machine", "values": [)";
    for (int banks = 1; banks <= machines; ++banks) {
        doc += "\n      {\"name\": \"line#" + std::to_string(banks) +
               "\", \"arch\": {\"sam\": \"line\", \"banks\": " +
               std::to_string(banks) + "}}";
        if (banks < machines)
            doc += ",";
    }
    doc += R"(]}
  ]
})";
    fsutil::writeFileAtomic(path, doc);
    return path;
}

/** In-memory JobCacheClient: entries keyed by fingerprint, as bytes. */
class MapJobCache final : public api::JobCacheClient
{
  public:
    Json fetchEntry(const std::string &fingerprint) override
    {
        ++fetches;
        const auto it = entries.find(fingerprint);
        return it == entries.end() ? Json()
                                   : Json::parse(it->second);
    }

    void storeEntry(const std::string &fingerprint, const Json &entry,
                    const Json &provenance) override
    {
        ++stores;
        EXPECT_TRUE(isFingerprint(fingerprint));
        // The provenance manifest is the key's preimage: canonical,
        // and hashing it must reproduce the fingerprint.
        EXPECT_EQ(contentFingerprint(provenance.dump(0)), fingerprint);
        entries[fingerprint] = entry.dump(0);
    }

    std::map<std::string, std::string> entries;
    int fetches = 0;
    int stores = 0;
};

TEST(JobFingerprints, AreStablePartitionAndSweepNameInvariant)
{
    const SweepSpec spec = SweepSpec::load(test::kSmokeSpec);
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const auto jobs = api::expandSpec(spec, registry);

    const auto prints = api::jobFingerprints(spec, jobs, true);
    ASSERT_EQ(prints.size(), jobs.size());
    for (const std::string &print : prints)
        EXPECT_TRUE(isFingerprint(print)) << print;
    for (std::size_t i = 0; i < prints.size(); ++i)
        for (std::size_t j = i + 1; j < prints.size(); ++j)
            EXPECT_NE(prints[i], prints[j]);

    // Deterministic across recomputation…
    EXPECT_EQ(api::jobFingerprints(spec, jobs, true), prints);
    // …independent of the sweep's name (unlike shard fingerprints,
    // the job address is the grid point, not the campaign)…
    SweepSpec renamed = spec;
    renamed.name = "entirely_different_sweep";
    EXPECT_EQ(api::jobFingerprints(renamed, jobs, true), prints);
    // …and sensitive to the flags that change entry bytes.
    EXPECT_NE(api::jobFingerprints(spec, jobs, false), prints);
}

TEST(RunSpec, JobCacheSplicesByteIdenticallyAndHealsDroppedEntries)
{
    const std::string dir = test::scratchDir("splice");
    const std::string golden = goldenRun(test::kSmokeSpec, dir + "/golden");

    const SweepSpec spec = SweepSpec::load(test::kSmokeSpec);
    BenchmarkRegistry registry = BenchmarkRegistry::paper();
    MapJobCache cache;
    api::RunSpecOptions options;
    options.threads = 2;
    options.noTiming = true;
    options.jobCache = &cache;

    // Cold pass: every job computed, every entry published.
    options.outDir = dir + "/cold";
    const api::SpecRun cold = api::runSpec(spec, registry, options);
    const auto total =
        static_cast<std::int64_t>(cold.expanded.size());
    EXPECT_EQ(cold.jobCacheHits, 0);
    EXPECT_EQ(cold.jobsComputed, total);
    EXPECT_EQ(cache.stores, total);
    EXPECT_EQ(static_cast<std::int64_t>(cache.entries.size()), total);
    // Attaching a cache never changes the artifact bytes.
    EXPECT_EQ(fsutil::readFile(cold.jsonPath), golden);

    // Warm pass: zero simulations, same bytes.
    options.outDir = dir + "/warm";
    const api::SpecRun warm = api::runSpec(spec, registry, options);
    EXPECT_EQ(warm.jobCacheHits, total);
    EXPECT_EQ(warm.jobsComputed, 0);
    EXPECT_TRUE(warm.jobs.empty());
    EXPECT_EQ(fsutil::readFile(warm.jsonPath), golden);

    // Drop one entry: exactly that job recomputes, the store heals.
    cache.entries.erase(cache.entries.begin());
    options.outDir = dir + "/healed";
    const api::SpecRun healed = api::runSpec(spec, registry, options);
    EXPECT_EQ(healed.jobCacheHits, total - 1);
    EXPECT_EQ(healed.jobsComputed, 1);
    EXPECT_EQ(static_cast<std::int64_t>(cache.entries.size()), total);
    EXPECT_EQ(fsutil::readFile(healed.jsonPath), golden);
}

TEST(ResultCache, JobStoreRoundTripsAndTreatsForeignBytesAsMisses)
{
    const std::string dir = test::scratchDir("jobstore");
    const ResultCache cache(dir + "/cache");
    const std::string print = "00ff00ff00ff00ff";

    EXPECT_FALSE(cache.containsJob(print));
    EXPECT_TRUE(cache.fetchJob(print).isNull());
    EXPECT_EQ(cache.jobCount(), 0u);

    Json entry = Json::object();
    entry.set("name", "adder/line#1");
    Json provenance = Json::object();
    provenance.set("schema", "lsqca-job-v1");
    cache.storeJob(print, entry, provenance);
    EXPECT_TRUE(cache.containsJob(print));
    EXPECT_EQ(cache.jobCount(), 1u);
    EXPECT_EQ(cache.fetchJob(print).dump(0), entry.dump(0));
    // The wrapper document carries the provenance manifest verbatim.
    const Json wrapper = Json::load(cache.jobPathFor(print));
    EXPECT_EQ(wrapper.at("schema").asString(), "lsqca-jobcache-v1");
    EXPECT_EQ(wrapper.at("fingerprint").asString(), print);
    EXPECT_EQ(wrapper.at("provenance").dump(0), provenance.dump(0));

    // Foreign or torn bytes in a shared directory: a miss, never an
    // error — and never served as an entry.
    const std::string alien = "11ee11ee11ee11ee";
    fsutil::writeFileAtomic(cache.jobPathFor(alien), "{\"not\": ");
    EXPECT_TRUE(cache.fetchJob(alien).isNull());
    const std::string mislabeled = "22dd22dd22dd22dd";
    fsutil::writeFileAtomic(cache.jobPathFor(mislabeled),
                            fsutil::readFile(cache.jobPathFor(print)));
    EXPECT_TRUE(cache.fetchJob(mislabeled).isNull());

    // A disabled cache misses and stores nothing, silently.
    const ResultCache disabled{""};
    EXPECT_TRUE(disabled.fetchJob(print).isNull());
    EXPECT_NO_THROW(disabled.storeJob(print, entry, provenance));
    EXPECT_EQ(disabled.jobCount(), 0u);
}

TEST(Orchestrator, ResubmitWithOneAddedGridPointComputesOneJob)
{
    const std::string dir = test::scratchDir("incremental");
    const std::string specA = gridSpec(dir + "/a.json", 3);
    const std::string specB = gridSpec(dir + "/b.json", 4);
    const std::string golden = goldenRun(specB, dir + "/golden");
    const std::string cacheDir = dir + "/cache";

    OrchestratorOptions first = baseOptions(dir + "/a");
    first.shards = 3;
    first.cacheDir = cacheDir;
    const CampaignReport seeded = Orchestrator(first).submit(specA);
    EXPECT_TRUE(seeded.complete);
    EXPECT_EQ(seeded.spawned, 3);
    // Cold cache: the workers published one entry per simulated job.
    EXPECT_EQ(seeded.jobCacheHits, 0);
    EXPECT_EQ(seeded.jobsComputed, 3);
    EXPECT_EQ(ResultCache(cacheDir).jobCount(), 3u);

    // The tentpole scenario: one added grid point moves every shard
    // boundary (different count, different fingerprints), yet exactly
    // ONE job is simulated; everything else splices from the cache.
    OrchestratorOptions second = baseOptions(dir + "/b");
    second.shards = 2;
    second.cacheDir = cacheDir;
    const CampaignReport resub = Orchestrator(second).submit(specB);
    EXPECT_TRUE(resub.complete);
    EXPECT_EQ(resub.jobsComputed, 1);
    EXPECT_EQ(resub.jobCacheHits, 3);
    EXPECT_EQ(resub.spawned, 1);   // only the shard holding the new job
    EXPECT_EQ(resub.cacheHits, 1); // the all-cached shard, assembled
    EXPECT_EQ(fsutil::readFile(resub.mergedPath), golden);
    // The queue records the per-task split for `lsqca status`.
    EXPECT_EQ(resub.queue.tasks[0].jobsCached, 2);
    EXPECT_EQ(resub.queue.tasks[0].jobsComputed, 0);
    EXPECT_EQ(resub.queue.tasks[1].jobsCached, 1);
    EXPECT_EQ(resub.queue.tasks[1].jobsComputed, 1);
    // …and the split survives the on-disk round trip.
    const QueueState onDisk = Orchestrator::inspect(dir + "/b");
    EXPECT_EQ(onDisk.toJson().dump(), resub.queue.toJson().dump());
    // The journal carries the same story (report/status read it).
    EXPECT_EQ(resub.metrics.at("service.job_cache.hits").asInt(), 3);
    EXPECT_EQ(resub.metrics.at("service.job_cache.computed").asInt(),
              1);
}

TEST(Orchestrator, FullyJobCachedShardsAssembleWithZeroSpawns)
{
    const std::string dir = test::scratchDir("assemble");
    const std::string spec = gridSpec(dir + "/spec.json", 3);
    const std::string golden = goldenRun(spec, dir + "/golden");
    const std::string cacheDir = dir + "/cache";

    OrchestratorOptions first = baseOptions(dir + "/a");
    first.shards = 3;
    first.cacheDir = cacheDir;
    EXPECT_TRUE(Orchestrator(first).submit(spec).complete);

    // Drop every shard-level document, keep the job entries: the fast
    // path is cold but the job layer can rebuild each slice — and does
    // so in-process, without a single worker spawn.
    for (const std::string &doc :
         fsutil::listFiles(cacheDir, "", ".json"))
        fsutil::removeFile(doc);
    EXPECT_EQ(ResultCache(cacheDir).size(), 0u);
    ASSERT_EQ(ResultCache(cacheDir).jobCount(), 3u);

    OrchestratorOptions second = baseOptions(dir + "/b");
    second.shards = 3;
    second.cacheDir = cacheDir;
    const CampaignReport report = Orchestrator(second).submit(spec);
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.spawned, 0);
    EXPECT_EQ(report.cacheHits, 3);
    EXPECT_EQ(report.jobCacheHits, 3);
    EXPECT_EQ(report.jobsComputed, 0);
    EXPECT_EQ(fsutil::readFile(report.mergedPath), golden);
    // Assembly re-warmed the shard-level fast path.
    EXPECT_EQ(ResultCache(cacheDir).size(), 3u);
}

TEST(Orchestrator, InterruptedCampaignNeverLeavesEmptyOrTornState)
{
    const std::string dir = test::scratchDir("durability");
    const std::string spec = gridSpec(dir + "/spec.json", 4);
    const std::string golden = goldenRun(spec, dir + "/golden");
    // The campaign's default cache location, shared by the resume leg.
    const std::string cacheDir = dir + "/state/cache";

    // The kill-during-save harness: two-job shards whose first
    // attempts die after one job (publishing a partial job-cache
    // entry on the way down), while the orchestrator itself "dies"
    // after three dispatches, SIGKILLing whatever workers are live.
    OrchestratorOptions options = baseOptions(dir + "/state");
    options.shards = 2;
    options.firstAttemptExtraArgs = {"--die-after", "1"};
    options.stopAfterDispatches = 3;
    const CampaignReport first = Orchestrator(options).submit(spec);
    EXPECT_TRUE(first.interrupted);

    // Whatever the kill interleaving, every published artifact parses
    // whole: the queue…
    const QueueState stranded = Orchestrator::inspect(dir + "/state");
    EXPECT_EQ(stranded.tasks.size(), 2u);
    // …the metrics snapshot…
    ASSERT_TRUE(fsutil::exists(dir + "/state/metrics.json"));
    EXPECT_GT(
        Json::load(dir + "/state/metrics.json").size(), 0u);
    // …and every cache entry (the dying workers' partial stores land
    // under jobs/): each is a whole lsqca-jobcache-v1 document whose
    // name, fingerprint field, and provenance hash all agree.
    const ResultCache cache(cacheDir);
    const auto jobDocs =
        fsutil::listFiles(cacheDir + "/jobs", "", ".json");
    EXPECT_GT(jobDocs.size(), 0u);
    for (const std::string &path : jobDocs) {
        const Json doc = Json::load(path);
        EXPECT_EQ(doc.at("schema").asString(), "lsqca-jobcache-v1");
        const std::string print = doc.at("fingerprint").asString();
        EXPECT_EQ(cache.jobPathFor(print), path);
        EXPECT_EQ(contentFingerprint(doc.at("provenance").dump(0)),
                  print);
        EXPECT_TRUE(doc.at("entry").isObject());
    }

    // Resume finishes the campaign from exactly that state — and the
    // partial entries mean the re-runs splice rather than resimulate.
    const CampaignReport resumed =
        Orchestrator(baseOptions(dir + "/state")).resume();
    EXPECT_TRUE(resumed.complete);
    EXPECT_GT(resumed.jobCacheHits, 0);
    EXPECT_EQ(fsutil::readFile(resumed.mergedPath), golden);
}

} // namespace
} // namespace lsqca::service
