/**
 * @file
 * The queue document is the campaign's source of truth, so its
 * round-trip must be exact, its parse strict (a corrupted or
 * hand-edited queue.json must fail loudly, not resurrect a wrong
 * campaign), and its crash-recovery transition (resetRunning) must
 * keep attempt counts — that is what makes "attempts persist across
 * orchestrator restart" true.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/fs.h"
#include "service/queue.h"
#include "service_test_util.h"

namespace lsqca::service {
namespace {

QueueState
sampleState()
{
    QueueState state;
    state.campaign = "smoke";
    state.specPath = "/tmp/specs/smoke.json";
    state.shardCount = 3;
    state.noTiming = true;
    state.maxAttempts = 5;
    for (std::int32_t i = 0; i < 3; ++i) {
        ShardTask task;
        task.index = i;
        task.fingerprint = "00112233445566" + std::to_string(70 + i);
        state.tasks.push_back(task);
    }
    state.tasks[0].status = TaskStatus::Done;
    state.tasks[0].attempts = 1;
    state.tasks[0].wallSeconds = 0.25;
    state.tasks[0].output = "shards/BENCH_smoke.shard0of3.json";
    state.tasks[1].status = TaskStatus::Running;
    state.tasks[1].attempts = 2;
    state.tasks[1].lastError = "worker signal 9";
    state.tasks[2].cached = true;
    return state;
}

TEST(QueueState, RoundTripsThroughJson)
{
    const QueueState state = sampleState();
    const QueueState back = QueueState::fromJson(state.toJson());
    EXPECT_EQ(back.campaign, state.campaign);
    EXPECT_EQ(back.specPath, state.specPath);
    EXPECT_EQ(back.shardCount, state.shardCount);
    EXPECT_EQ(back.noTiming, state.noTiming);
    EXPECT_EQ(back.maxAttempts, state.maxAttempts);
    ASSERT_EQ(back.tasks.size(), state.tasks.size());
    for (std::size_t i = 0; i < state.tasks.size(); ++i) {
        EXPECT_EQ(back.tasks[i].index, state.tasks[i].index);
        EXPECT_EQ(back.tasks[i].fingerprint,
                  state.tasks[i].fingerprint);
        EXPECT_EQ(back.tasks[i].status, state.tasks[i].status);
        EXPECT_EQ(back.tasks[i].attempts, state.tasks[i].attempts);
        EXPECT_EQ(back.tasks[i].wallSeconds,
                  state.tasks[i].wallSeconds);
        EXPECT_EQ(back.tasks[i].cached, state.tasks[i].cached);
        EXPECT_EQ(back.tasks[i].output, state.tasks[i].output);
        EXPECT_EQ(back.tasks[i].lastError, state.tasks[i].lastError);
    }
    // And byte-stable: dump(parse(dump)) == dump.
    EXPECT_EQ(back.toJson().dump(), state.toJson().dump());
}

TEST(QueueState, SaveAndLoad)
{
    const std::string dir = test::scratchDir("queue");
    const std::string path = dir + "/queue.json";
    const QueueState state = sampleState();
    state.save(path);
    const QueueState back = QueueState::load(path);
    EXPECT_EQ(back.toJson().dump(), state.toJson().dump());
    // No stale temp file left behind by the atomic write.
    EXPECT_EQ(fsutil::listFiles(dir).size(), 1u);
}

TEST(QueueState, LoadErrorsCarryThePath)
{
    const std::string dir = test::scratchDir("badqueue");
    const std::string path = dir + "/queue.json";
    fsutil::writeFileAtomic(path, "{\"schema\": \"nope\"}");
    try {
        QueueState::load(path);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    }
}

TEST(QueueState, ParseIsStrict)
{
    const Json good = sampleState().toJson();

    Json wrongSchema = good;
    wrongSchema.set("schema", "lsqca-queue-v0");
    EXPECT_THROW(QueueState::fromJson(wrongSchema), ConfigError);

    Json unknownKey = good;
    unknownKey.set("surprise", 1);
    EXPECT_THROW(QueueState::fromJson(unknownKey), ConfigError);

    // Task arity must match shard_count.
    Json wrongCount = good;
    wrongCount.set("shard_count", 4);
    EXPECT_THROW(QueueState::fromJson(wrongCount), ConfigError);

    // Tasks must arrive ordered by shard index.
    QueueState shuffled = sampleState();
    std::swap(shuffled.tasks[0], shuffled.tasks[1]);
    EXPECT_THROW(QueueState::fromJson(shuffled.toJson()), ConfigError);

    QueueState badFingerprint = sampleState();
    badFingerprint.tasks[0].fingerprint = "not-hex!";
    EXPECT_THROW(QueueState::fromJson(badFingerprint.toJson()),
                 ConfigError);
}

TEST(QueueState, TaskStatusNamesRoundTrip)
{
    for (const TaskStatus status :
         {TaskStatus::Pending, TaskStatus::Running, TaskStatus::Done,
          TaskStatus::Failed})
        EXPECT_EQ(taskStatusFromName(taskStatusName(status)), status);
    EXPECT_THROW(taskStatusFromName("exploded"), ConfigError);
}

TEST(QueueState, ResetRunningKeepsAttempts)
{
    QueueState state = sampleState();
    EXPECT_EQ(state.resetRunning(), 1u);
    EXPECT_EQ(state.tasks[1].status, TaskStatus::Pending);
    EXPECT_EQ(state.tasks[1].attempts, 2);
    EXPECT_NE(state.tasks[1].lastError.find("orchestrator stopped"),
              std::string::npos);
    // Done and pending tasks are untouched.
    EXPECT_EQ(state.tasks[0].status, TaskStatus::Done);
    EXPECT_EQ(state.tasks[2].status, TaskStatus::Pending);
    EXPECT_EQ(state.resetRunning(), 0u);
}

TEST(QueueState, StatusCounts)
{
    const QueueState state = sampleState();
    EXPECT_EQ(state.countWithStatus(TaskStatus::Done), 1u);
    EXPECT_EQ(state.countWithStatus(TaskStatus::Running), 1u);
    EXPECT_EQ(state.countWithStatus(TaskStatus::Pending), 1u);
    EXPECT_EQ(state.countWithStatus(TaskStatus::Failed), 0u);
    EXPECT_FALSE(state.allDone());

    QueueState done = state;
    for (ShardTask &task : done.tasks)
        task.status = TaskStatus::Done;
    EXPECT_TRUE(done.allDone());
}

} // namespace
} // namespace lsqca::service
