/**
 * @file
 * End-to-end orchestrator coverage against the real `lsqca` binary
 * (LSQCA_CLI_BIN) as the worker fleet. The invariant every test pins:
 * whatever happens on the way there — crashes, interrupts, retries,
 * cache hits — the merged campaign artifact is byte-identical to a
 * direct unsharded run under --no-timing.
 */

#include <gtest/gtest.h>

#include "api/registry.h"
#include "api/spec.h"
#include "common/error.h"
#include "common/fs.h"
#include "common/hash.h"
#include "service/journal.h"
#include "service/orchestrator.h"
#include "service/report.h"
#include "service_test_util.h"

namespace lsqca::service {
namespace {

using api::BenchmarkRegistry;
using api::SweepSpec;

/** Direct in-process --no-timing run; returns the BENCH file bytes. */
std::string
goldenRun(const std::string &specPath, const std::string &outDir)
{
    const SweepSpec spec = SweepSpec::load(specPath);
    BenchmarkRegistry registry = BenchmarkRegistry::paper();
    api::RunSpecOptions options;
    options.threads = 2;
    options.outDir = outDir;
    options.noTiming = true;
    const api::SpecRun run = api::runSpec(spec, registry, options);
    return fsutil::readFile(run.jsonPath);
}

OrchestratorOptions
baseOptions(const std::string &stateDir)
{
    OrchestratorOptions options;
    options.stateDir = stateDir;
    options.workerExe = test::kCliBin;
    options.workers = 2;
    options.noTiming = true;
    options.pollSeconds = 0.002;
    return options;
}

TEST(StragglerDeadline, IsFactorTimesMedianWithFloor)
{
    EXPECT_DOUBLE_EQ(stragglerDeadline(10.0, 4.0, 10.0), 40.0);
    // Millisecond shards are protected by the floor.
    EXPECT_DOUBLE_EQ(stragglerDeadline(0.006, 4.0, 10.0), 10.0);
    EXPECT_DOUBLE_EQ(stragglerDeadline(2.0, 1.0, 0.0), 2.0);
}

TEST(Orchestrator, SubmitMatchesDirectRunByteForByte)
{
    const std::string dir = test::scratchDir("submit");
    const std::string golden =
        goldenRun(test::kSmokeSpec, dir + "/golden");

    OrchestratorOptions options = baseOptions(dir + "/state");
    options.shards = 4;
    Orchestrator orchestrator(options);
    const CampaignReport report =
        orchestrator.submit(test::kSmokeSpec);

    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.spawned, 4);
    EXPECT_EQ(report.cacheHits, 0);
    EXPECT_EQ(report.retries, 0);
    EXPECT_EQ(fsutil::readFile(report.mergedPath), golden);
    for (const ShardTask &task : report.queue.tasks) {
        EXPECT_EQ(task.status, TaskStatus::Done);
        EXPECT_EQ(task.attempts, 1);
        EXPECT_FALSE(task.cached);
        EXPECT_TRUE(task.lastError.empty());
    }
    // The on-disk queue matches the returned snapshot.
    const QueueState onDisk = Orchestrator::inspect(dir + "/state");
    EXPECT_EQ(onDisk.toJson().dump(), report.queue.toJson().dump());
}

TEST(Orchestrator, SubmitRefusesAnOccupiedStateDir)
{
    const std::string dir = test::scratchDir("occupied");
    OrchestratorOptions options = baseOptions(dir + "/state");
    options.shards = 2;
    Orchestrator(options).submit(test::kSmokeSpec);
    EXPECT_THROW(Orchestrator(options).submit(test::kSmokeSpec),
                 ConfigError);
}

TEST(Orchestrator, CrashedWorkersAreRequeuedAndMergeStaysGolden)
{
    const std::string dir = test::scratchDir("crash");
    const std::string golden =
        goldenRun(test::kSmokeSpec, dir + "/golden");

    OrchestratorOptions options = baseOptions(dir + "/state");
    options.shards = 3;
    // Every shard's first attempt dies mid-shard after one job (the
    // satellite's "worker killed mid-shard" hook); retries run clean.
    options.firstAttemptExtraArgs = {"--die-after", "1"};
    const CampaignReport report =
        Orchestrator(options).submit(test::kSmokeSpec);

    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.spawned, 6);
    EXPECT_EQ(report.retries, 3);
    EXPECT_EQ(fsutil::readFile(report.mergedPath), golden);
    for (const ShardTask &task : report.queue.tasks)
        EXPECT_EQ(task.attempts, 2);
}

TEST(Orchestrator, AttemptBudgetExhaustionMarksShardsFailed)
{
    const std::string dir = test::scratchDir("budget");
    OrchestratorOptions options = baseOptions(dir + "/state");
    options.shards = 2;
    options.maxAttempts = 2;
    // Die on *every* attempt: the budget must run out.
    options.extraWorkerArgs = {"--die-after", "0"};
    const CampaignReport report =
        Orchestrator(options).submit(test::kSmokeSpec);

    EXPECT_FALSE(report.complete);
    EXPECT_TRUE(report.mergedPath.empty());
    EXPECT_EQ(report.spawned, 4);
    for (const ShardTask &task : report.queue.tasks) {
        EXPECT_EQ(task.status, TaskStatus::Failed);
        EXPECT_EQ(task.attempts, 2);
        EXPECT_NE(task.lastError.find("died mid-shard"),
                  std::string::npos)
            << task.lastError;
    }
}

TEST(Orchestrator, InterruptResumePersistsAttemptCounts)
{
    const std::string dir = test::scratchDir("interrupt");
    const std::string golden =
        goldenRun(test::kSmokeSpec, dir + "/golden");

    OrchestratorOptions options = baseOptions(dir + "/state");
    options.workers = 1;
    options.shards = 3;
    options.stopAfterDispatches = 1;
    const CampaignReport first =
        Orchestrator(options).submit(test::kSmokeSpec);
    EXPECT_TRUE(first.interrupted);
    EXPECT_FALSE(first.complete);
    EXPECT_EQ(first.spawned, 1);

    // The dispatch was recorded before the "machine died": shard 0 is
    // still marked running with one attempt on the books.
    const QueueState stranded = Orchestrator::inspect(dir + "/state");
    EXPECT_EQ(stranded.tasks[0].status, TaskStatus::Running);
    EXPECT_EQ(stranded.tasks[0].attempts, 1);
    EXPECT_EQ(stranded.tasks[1].attempts, 0);

    OrchestratorOptions resumeOptions = baseOptions(dir + "/state");
    const CampaignReport second =
        Orchestrator(resumeOptions).resume();
    EXPECT_TRUE(second.complete);
    EXPECT_EQ(fsutil::readFile(second.mergedPath), golden);
    // Shard 0's interrupted attempt still counts: 1 stranded + 1
    // clean respawn; the untouched shards ran once.
    EXPECT_EQ(second.queue.tasks[0].attempts, 2);
    EXPECT_EQ(second.queue.tasks[1].attempts, 1);
    EXPECT_EQ(second.queue.tasks[2].attempts, 1);
}

TEST(Orchestrator, ResumeWithoutCampaignThrows)
{
    const std::string dir = test::scratchDir("nocampaign");
    EXPECT_THROW(Orchestrator(baseOptions(dir + "/state")).resume(),
                 ConfigError);
}

TEST(Orchestrator, ResumeRejectsASpecThatChangedUnderTheCampaign)
{
    const std::string dir = test::scratchDir("drift");
    const std::string specCopy = dir + "/smoke.json";
    fsutil::copyFileAtomic(test::kSmokeSpec, specCopy);

    OrchestratorOptions options = baseOptions(dir + "/state");
    options.workers = 1;
    options.shards = 2;
    options.stopAfterDispatches = 1;
    EXPECT_TRUE(Orchestrator(options).submit(specCopy).interrupted);

    // Change the experiment content (one benchmark's width) and try
    // to continue: the fingerprints no longer match the queue.
    std::string text = fsutil::readFile(specCopy);
    const std::size_t at = text.find("\"width\": 16");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 11, "\"width\": 17");
    fsutil::writeFileAtomic(specCopy, text);
    try {
        Orchestrator(baseOptions(dir + "/state")).resume();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "changed under the campaign"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Orchestrator, RaisedMaxAttemptsReopensFailedShards)
{
    const std::string dir = test::scratchDir("reopen");
    const std::string golden =
        goldenRun(test::kSmokeSpec, dir + "/golden");

    OrchestratorOptions options = baseOptions(dir + "/state");
    options.shards = 2;
    options.maxAttempts = 1;
    options.extraWorkerArgs = {"--die-after", "0"};
    EXPECT_FALSE(
        Orchestrator(options).submit(test::kSmokeSpec).complete);

    OrchestratorOptions retry = baseOptions(dir + "/state");
    retry.maxAttempts = 3; // raise the budget, drop the crash hook
    const CampaignReport report = Orchestrator(retry).resume();
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(fsutil::readFile(report.mergedPath), golden);
}

/**
 * The acceptance path on the full Fig. 13 sweep: submit with 4
 * workers, interrupt once, resume to a byte-identical artifact, then
 * re-submit against the same cache and watch every worker spawn
 * disappear.
 */
TEST(Orchestrator, Fig13InterruptResumeThenCachedResubmit)
{
    const std::string dir = test::scratchDir("fig13");
    const std::string golden =
        goldenRun(test::kFig13Spec, dir + "/golden");
    const std::string cacheDir = dir + "/cache";

    OrchestratorOptions options = baseOptions(dir + "/a");
    options.workers = 4;
    options.shards = 8;
    options.cacheDir = cacheDir;
    options.stopAfterDispatches = 3;
    const CampaignReport interrupted =
        Orchestrator(options).submit(test::kFig13Spec);
    EXPECT_TRUE(interrupted.interrupted);

    OrchestratorOptions resumeOptions = baseOptions(dir + "/a");
    resumeOptions.workers = 4;
    resumeOptions.cacheDir = cacheDir;
    const CampaignReport resumed =
        Orchestrator(resumeOptions).resume();
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(fsutil::readFile(resumed.mergedPath), golden);
    // Every shard ran at least once across the two legs; the three
    // interrupted attempts may or may not have re-run.
    EXPECT_GE(interrupted.spawned + resumed.spawned, 8);

    // Second campaign, same cache: all shards skip, zero spawns
    // (counted, per the acceptance criterion), same bytes.
    OrchestratorOptions again = baseOptions(dir + "/b");
    again.workers = 4;
    again.shards = 8;
    again.cacheDir = cacheDir;
    const CampaignReport cached =
        Orchestrator(again).submit(test::kFig13Spec);
    EXPECT_TRUE(cached.complete);
    EXPECT_EQ(cached.spawned, 0);
    EXPECT_EQ(cached.cacheHits, 8);
    EXPECT_EQ(fsutil::readFile(cached.mergedPath), golden);
    for (const ShardTask &task : cached.queue.tasks)
        EXPECT_TRUE(task.cached);

    // The acceptance contract: the journal ALONE reconstructs the
    // interrupted-and-resumed campaign's full history, agreeing with
    // the orchestrator's own counters summed across both legs.
    ASSERT_EQ(resumed.journalPath, Journal::pathFor(dir + "/a"));
    const CampaignStats history =
        CampaignStats::fromFile(resumed.journalPath);
    EXPECT_EQ(history.legs, 2);
    EXPECT_EQ(history.shardCount, 8);
    EXPECT_TRUE(history.complete);
    EXPECT_EQ(history.spawned,
              interrupted.spawned + resumed.spawned);
    EXPECT_EQ(history.cacheHits,
              interrupted.cacheHits + resumed.cacheHits);
    EXPECT_EQ(history.retries, interrupted.retries + resumed.retries);
    EXPECT_EQ(history.stragglersKilled,
              interrupted.stragglersKilled + resumed.stragglersKilled);
    // Every shard finished exactly once, by work or by cache.
    EXPECT_EQ(history.tasksDone + history.cacheHits, 8);
    EXPECT_EQ(history.tasksFailed, 0);
    EXPECT_EQ(history.mergedPath, "BENCH_fig13_cpi.json");
    EXPECT_GT(history.bytesMerged, 0);
    // One attempt span per spawn, each on a real worker slot 1..4.
    EXPECT_EQ(static_cast<std::int64_t>(history.spans.size()),
              history.spawned);
    for (const AttemptSpan &span : history.spans) {
        EXPECT_GE(span.worker, 1);
        EXPECT_LE(span.worker, 4);
        EXPECT_GE(span.end, span.start);
    }

    // The cached resubmit's journal: 8 hits, zero spawns — and the
    // final metrics snapshot agrees with both.
    const CampaignStats rerun =
        CampaignStats::fromFile(Journal::pathFor(dir + "/b"));
    EXPECT_TRUE(rerun.complete);
    EXPECT_EQ(rerun.spawned, 0);
    EXPECT_EQ(rerun.cacheHits, 8);
    EXPECT_EQ(rerun.cacheMisses, 0);
    EXPECT_TRUE(rerun.spans.empty());
    EXPECT_EQ(cached.metrics.at("service.spawns").asInt(), 0);
    EXPECT_EQ(cached.metrics.at("service.cache.hits").asInt(), 8);
    EXPECT_EQ(cached.metricsPath, dir + "/b/metrics.json");
    EXPECT_TRUE(fsutil::exists(cached.metricsPath));
}

TEST(Orchestrator, LogicalClockCampaignsJournalByteIdentically)
{
    // Two identical single-worker campaigns under --clock logical
    // write byte-identical journals: every `t` is the sequence number
    // and wall-time payload fields are suppressed (docs/METRICS.md).
    const std::string dir = test::scratchDir("logical");
    const auto campaign = [&](const std::string &state) {
        OrchestratorOptions options = baseOptions(state);
        options.workers = 1;
        options.shards = 2;
        options.clock = JournalClock::Logical;
        const CampaignReport report =
            Orchestrator(options).submit(test::kSmokeSpec);
        EXPECT_TRUE(report.complete);
        return fsutil::readFile(report.journalPath);
    };
    const std::string first = campaign(dir + "/a");
    EXPECT_EQ(first, campaign(dir + "/b"));
    EXPECT_NE(first.find("\"clock\":\"logical\""), std::string::npos);
    EXPECT_EQ(first.find("\"wall\""), std::string::npos);
    EXPECT_EQ(first.find("\"pid\""), std::string::npos);
}

TEST(Orchestrator, NoJournalLeavesNoEventsFileAndMatchesGolden)
{
    const std::string dir = test::scratchDir("nojournal");
    const std::string golden =
        goldenRun(test::kSmokeSpec, dir + "/golden");
    OrchestratorOptions options = baseOptions(dir + "/state");
    options.shards = 2;
    options.journal = false;
    const CampaignReport report =
        Orchestrator(options).submit(test::kSmokeSpec);
    EXPECT_TRUE(report.complete);
    EXPECT_TRUE(report.journalPath.empty());
    EXPECT_TRUE(report.metricsPath.empty());
    EXPECT_FALSE(
        fsutil::exists(Journal::pathFor(dir + "/state")));
    EXPECT_FALSE(fsutil::exists(dir + "/state/metrics.json"));
    // Observability off never changes the campaign artifact.
    EXPECT_EQ(fsutil::readFile(report.mergedPath), golden);
}

/**
 * Spec pair for the escalation test: the same two long-running jobs
 * (8-bit adder on point#1 and line#2 — both produce estimated
 * entries with nonzero sampling_error), once under a sampled
 * estimator whose target_ci nothing can meet, once exact.
 */
std::string
escalationSpec(const std::string &path, bool sampled)
{
    std::string doc = R"({
  "schema": ")";
    doc += sampled ? "lsqca-spec-v2" : "lsqca-spec-v1";
    doc += R"(",
  "name": "escalate",
  "name_template": "{benchmark}/{machine}",
)";
    if (sampled)
        doc += R"(  "estimator": {"mode": "sampled", "unit_instrs": 50,
                "warmup_instrs": 50, "period": 10,
                "target_ci": 0.0001},
)";
    doc += R"(  "axes": [
    {"axis": "benchmark", "values": [
      {"name": "adder", "bench": "adder", "params": {"width": 24}}]},
    {"axis": "machine", "values": [
      {"name": "point#1", "arch": {"sam": "point", "banks": 1}},
      {"name": "line#2", "arch": {"sam": "line", "banks": 2}}]}
  ]
})";
    fsutil::writeFileAtomic(path, doc);
    return path;
}

TEST(Orchestrator, SampledShardsEscalateToExactAndMergeGolden)
{
    const std::string dir = test::scratchDir("escalate");
    const std::string sampledSpec =
        escalationSpec(dir + "/sampled.json", true);
    const std::string exactSpec =
        escalationSpec(dir + "/exact.json", false);
    // The contract: with every shard escalated, the merged campaign
    // artifact is byte-identical to an exact run of the same sweep.
    const std::string golden = goldenRun(exactSpec, dir + "/golden");

    OrchestratorOptions options = baseOptions(dir + "/state");
    options.shards = 2;
    const CampaignReport report =
        Orchestrator(options).submit(sampledSpec);

    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.escalations, 2);
    EXPECT_EQ(report.queue.escalationCount(), 2u);
    ASSERT_EQ(report.queue.tasks.size(), 4u);
    for (const ShardTask &task : report.queue.tasks) {
        EXPECT_EQ(task.status, TaskStatus::Done);
        if (task.escalated) {
            // Derived exact reruns: base shard index, forced exact.
            EXPECT_TRUE(task.mode.empty()) << task.index;
            EXPECT_NE(report.queue.escalationFor(task.index), nullptr);
        } else {
            EXPECT_EQ(task.mode, "sampled") << task.index;
        }
    }
    EXPECT_EQ(fsutil::readFile(report.mergedPath), golden);

    // The escalations survive the on-disk queue (status/resume see
    // them after an orchestrator restart).
    const QueueState onDisk = Orchestrator::inspect(dir + "/state");
    EXPECT_EQ(onDisk.escalationCount(), 2u);
    EXPECT_EQ(onDisk.toJson().dump(), report.queue.toJson().dump());
}

TEST(ShardFingerprints, AreStableDistinctAndContentAddressed)
{
    const SweepSpec spec = SweepSpec::load(test::kSmokeSpec);
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const auto jobs = api::expandSpec(spec, registry);

    const auto prints = api::shardFingerprints(spec, jobs, 4, true);
    ASSERT_EQ(prints.size(), 4u);
    for (const std::string &print : prints)
        EXPECT_TRUE(isFingerprint(print)) << print;
    for (std::size_t i = 0; i < prints.size(); ++i)
        for (std::size_t j = i + 1; j < prints.size(); ++j)
            EXPECT_NE(prints[i], prints[j]);

    // Deterministic across recomputation…
    EXPECT_EQ(api::shardFingerprints(spec, jobs, 4, true), prints);
    // …invariant under a serialization round-trip of the spec (the
    // address is the expanded content, not the file's formatting)…
    const SweepSpec reloaded = SweepSpec::fromJson(spec.toJson());
    const auto reloadedJobs = api::expandSpec(reloaded, registry);
    EXPECT_EQ(api::shardFingerprints(reloaded, reloadedJobs, 4, true),
              prints);
    // …and sensitive to everything that changes the artifact bytes.
    EXPECT_NE(api::shardFingerprints(spec, jobs, 4, false), prints);
    EXPECT_NE(api::shardFingerprints(spec, jobs, 5, true)[0],
              prints[0]);
}

TEST(RunSpec, SeedCheckMismatchFailsBeforeSimulating)
{
    const SweepSpec spec = SweepSpec::load(test::kSmokeSpec);
    BenchmarkRegistry registry = BenchmarkRegistry::paper();
    api::RunSpecOptions options;
    options.writeJson = false;
    options.seedCheck = "0123456789abcdef";
    try {
        api::runSpec(spec, registry, options);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("--seed-check mismatch"),
                  std::string::npos)
            << e.what();
    }

    // The matching fingerprint passes.
    const auto jobs = api::expandSpec(spec, registry);
    options.seedCheck =
        api::shardFingerprint(spec, jobs, api::ShardRange{}, false);
    EXPECT_NO_THROW(api::runSpec(spec, registry, options));
}

} // namespace
} // namespace lsqca::service
