/**
 * @file
 * CampaignStats fold unit tests over hand-authored event streams:
 * attempt spans and their outcome labels, retry-cause tallies, cache
 * accounting, interrupted-leg span closure, and the Chrome-trace
 * emitter's structure — pinned independently of the orchestrator so
 * `lsqca report` keeps reconstructing history from events.jsonl alone.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/error.h"
#include "service/report.h"

namespace lsqca::service {
namespace {

std::vector<Json>
parseEvents(const std::vector<std::string> &lines)
{
    std::vector<Json> events;
    events.reserve(lines.size());
    for (const std::string &line : lines)
        events.push_back(Json::parse(line));
    return events;
}

/**
 * A logical-clock campaign: shard 0 crashes once then succeeds, shard
 * 1 is a cache hit, one escalation, then merge + done. Mirrors what
 * the orchestrator writes (docs/METRICS.md).
 */
std::vector<Json>
smokeEvents()
{
    return parseEvents({
        R"({"event":"journal","seq":1,"t":1,"schema":"lsqca-events-v1","clock":"logical"})",
        R"({"event":"submit","seq":2,"t":2,"campaign":"smoke","spec":"specs/smoke.json","shards":2,"workers":2,"max_attempts":3})",
        R"({"event":"cache_hit","seq":3,"t":3,"shard":1,"fingerprint":"0123456789abcdef"})",
        R"({"event":"spawn","seq":4,"t":4,"shard":0,"attempt":1,"worker":1})",
        R"({"event":"exit","seq":5,"t":5,"shard":0,"attempt":1,"worker":1,"code":75})",
        R"({"event":"retry","seq":6,"t":6,"shard":0,"attempt":1,"cause":"crash"})",
        R"({"event":"spawn","seq":7,"t":7,"shard":0,"attempt":2,"worker":1})",
        R"({"event":"exit","seq":8,"t":8,"shard":0,"attempt":2,"worker":1,"ok":true})",
        R"({"event":"task_done","seq":9,"t":9,"shard":0,"output":"shards/BENCH_smoke.shard0of2.json"})",
        R"({"event":"escalation","seq":10,"t":10,"shard":0,"entry":"adder/point#1","ci":0.5,"target_ci":0.1})",
        R"({"event":"merge","seq":11,"t":11,"path":"BENCH_smoke.json","shards":2,"bytes":1234})",
        R"({"event":"done","seq":12,"t":12,"complete":true,"interrupted":false,"spawned":2,"cache_hits":1,"retries":1,"stragglers_killed":0,"escalations":1})",
    });
}

TEST(CampaignStats, FoldsCountersSpansAndCauses)
{
    const CampaignStats stats =
        CampaignStats::fromEvents(smokeEvents());
    EXPECT_EQ(stats.clock, "logical");
    EXPECT_EQ(stats.campaign, "smoke");
    EXPECT_EQ(stats.specPath, "specs/smoke.json");
    EXPECT_EQ(stats.shardCount, 2);
    EXPECT_EQ(stats.maxAttempts, 3);
    EXPECT_EQ(stats.events, 12);
    EXPECT_EQ(stats.legs, 1);
    EXPECT_EQ(stats.spawned, 2);
    EXPECT_EQ(stats.cacheHits, 1);
    // One distinct task ever needed a spawn (shard 0, twice).
    EXPECT_EQ(stats.cacheMisses, 1);
    EXPECT_EQ(stats.retries, 1);
    EXPECT_EQ(stats.retriesByCause.at("crash"), 1);
    EXPECT_EQ(stats.stragglersKilled, 0);
    EXPECT_EQ(stats.tasksDone, 1);
    EXPECT_EQ(stats.tasksFailed, 0);
    EXPECT_TRUE(stats.complete);
    EXPECT_FALSE(stats.interrupted);
    EXPECT_EQ(stats.mergedPath, "BENCH_smoke.json");
    EXPECT_EQ(stats.bytesMerged, 1234);
    EXPECT_DOUBLE_EQ(stats.firstT, 1.0);
    EXPECT_DOUBLE_EQ(stats.lastT, 12.0);
    EXPECT_DOUBLE_EQ(stats.span(), 11.0);

    // The two attempts of shard 0, labeled by their verdict events.
    ASSERT_EQ(stats.spans.size(), 2u);
    EXPECT_EQ(stats.spans[0].shard, 0);
    EXPECT_EQ(stats.spans[0].attempt, 1);
    EXPECT_EQ(stats.spans[0].worker, 1);
    EXPECT_DOUBLE_EQ(stats.spans[0].start, 4.0);
    EXPECT_DOUBLE_EQ(stats.spans[0].end, 5.0);
    EXPECT_EQ(stats.spans[0].outcome, "retry:crash");
    EXPECT_EQ(stats.spans[1].attempt, 2);
    EXPECT_EQ(stats.spans[1].outcome, "done");
    EXPECT_DOUBLE_EQ(stats.busySeconds(1), 2.0);
    EXPECT_EQ(stats.workers(), std::vector<std::int32_t>{1});

    ASSERT_EQ(stats.escalations.size(), 1u);
    EXPECT_EQ(stats.escalations[0].shard, 0);
    EXPECT_EQ(stats.escalations[0].entry, "adder/point#1");
    EXPECT_DOUBLE_EQ(stats.escalations[0].ci, 0.5);
    EXPECT_DOUBLE_EQ(stats.escalations[0].targetCi, 0.1);
}

TEST(CampaignStats, OrphanSpansCloseAtLegBoundaryAsInterrupted)
{
    // Leg 1 dies with a worker running (no exit event — the
    // orchestrator was killed); leg 2 resumes and finishes the shard.
    const CampaignStats stats =
        CampaignStats::fromEvents(parseEvents({
            R"({"event":"journal","seq":1,"t":1,"schema":"lsqca-events-v1","clock":"logical"})",
            R"({"event":"submit","seq":2,"t":2,"campaign":"smoke","shards":1,"workers":1,"max_attempts":3})",
            R"({"event":"spawn","seq":3,"t":3,"shard":0,"attempt":1,"worker":1})",
            R"({"event":"resume","seq":4,"t":4,"campaign":"smoke","shards":1,"workers":1,"max_attempts":3})",
            R"({"event":"spawn","seq":5,"t":5,"shard":0,"attempt":2,"worker":1})",
        }));
    EXPECT_EQ(stats.legs, 2);
    ASSERT_EQ(stats.spans.size(), 2u);
    // The orphan closed where its leg ended, labeled interrupted.
    EXPECT_EQ(stats.spans[0].outcome, "interrupted");
    EXPECT_DOUBLE_EQ(stats.spans[0].end, 4.0);
    // The still-open final span extends to the end of the stream.
    EXPECT_EQ(stats.spans[1].outcome, "interrupted");
    EXPECT_DOUBLE_EQ(stats.spans[1].end, 5.0);
    EXPECT_FALSE(stats.complete);
}

TEST(CampaignStats, StragglerKillsAndFailuresAreTallied)
{
    const CampaignStats stats =
        CampaignStats::fromEvents(parseEvents({
            R"({"event":"journal","seq":1,"t":1,"schema":"lsqca-events-v1","clock":"logical"})",
            R"({"event":"submit","seq":2,"t":2,"campaign":"smoke","shards":2,"workers":2,"max_attempts":1})",
            R"({"event":"spawn","seq":3,"t":3,"shard":0,"attempt":1,"worker":1})",
            R"({"event":"exit","seq":4,"t":4,"shard":0,"attempt":1,"worker":1,"killed":true})",
            R"({"event":"task_failed","seq":5,"t":5,"shard":0,"attempts":1,"cause":"straggler"})",
            R"({"event":"spawn","seq":6,"t":6,"shard":1,"attempt":1,"worker":2})",
            R"({"event":"exit","seq":7,"t":7,"shard":1,"attempt":1,"worker":2,"code":124})",
            R"({"event":"task_failed","seq":8,"t":8,"shard":1,"attempts":1,"cause":"timeout"})",
        }));
    EXPECT_EQ(stats.tasksFailed, 2);
    EXPECT_EQ(stats.retries, 0);
    EXPECT_EQ(stats.stragglersKilled, 1);
    EXPECT_EQ(stats.retriesByCause.at("straggler"), 1);
    EXPECT_EQ(stats.retriesByCause.at("timeout"), 1);
    ASSERT_EQ(stats.spans.size(), 2u);
    EXPECT_EQ(stats.spans[0].outcome, "failed:straggler");
    EXPECT_EQ(stats.spans[1].outcome, "failed:timeout");
    EXPECT_EQ(stats.workers(),
              (std::vector<std::int32_t>{1, 2}));
}

TEST(CampaignStats, RejectsStreamsWithoutAHeader)
{
    EXPECT_THROW(CampaignStats::fromEvents({}), ConfigError);
    EXPECT_THROW(CampaignStats::fromEvents(parseEvents({
                     R"({"event":"submit","seq":1,"t":1,"campaign":"x"})",
                 })),
                 ConfigError);
    EXPECT_THROW(
        CampaignStats::fromEvents(parseEvents({
            R"({"event":"journal","seq":1,"t":1,"schema":"lsqca-events-v9","clock":"logical"})",
        })),
        ConfigError);
}

TEST(RenderReport, ShowsTheTablesAndCacheRate)
{
    const CampaignStats stats =
        CampaignStats::fromEvents(smokeEvents());
    std::ostringstream out;
    renderReport(stats, out);
    const std::string text = out.str();
    EXPECT_NE(text.find("campaign smoke"), std::string::npos) << text;
    EXPECT_NE(text.find("status: complete"), std::string::npos);
    EXPECT_NE(text.find("wall-clock breakdown"), std::string::npos);
    EXPECT_NE(text.find("retry causes"), std::string::npos);
    EXPECT_NE(text.find("crash"), std::string::npos);
    EXPECT_NE(text.find("ci escalations"), std::string::npos);
    EXPECT_NE(text.find("worker utilization"), std::string::npos);
    EXPECT_NE(text.find("hit rate 50.0%"), std::string::npos) << text;
    EXPECT_NE(text.find("BENCH_smoke.json (1234 bytes)"),
              std::string::npos)
        << text;

    // Deterministic: the same stats render byte-identically.
    std::ostringstream again;
    renderReport(stats, again);
    EXPECT_EQ(text, again.str());
}

TEST(ChromeTrace, EmitsMetadataSpansAndInstants)
{
    const CampaignStats stats =
        CampaignStats::fromEvents(smokeEvents());
    std::ostringstream out;
    writeChromeTrace(stats, out);
    const Json doc = Json::parse(out.str());
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    const Json &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());

    int spans = 0, instants = 0, metadata = 0;
    for (const Json &event : events.items()) {
        const std::string ph = event.at("ph").asString();
        if (ph == "X") {
            ++spans;
            // Monotone: every span has non-negative duration on a
            // real worker track.
            EXPECT_GE(event.at("dur").asDouble(), 0.0);
            EXPECT_GE(event.at("ts").asDouble(), 0.0);
            EXPECT_GT(event.at("tid").asInt(), 0);
        } else if (ph == "i") {
            ++instants;
            EXPECT_EQ(event.at("tid").asInt(), 0);
        } else {
            EXPECT_EQ(ph, "M");
            ++metadata;
        }
    }
    EXPECT_EQ(spans, 2);
    // cache hit + retry + escalation + merge on the orchestrator track.
    EXPECT_EQ(instants, 4);
    // process_name + orchestrator + one worker thread.
    EXPECT_EQ(metadata, 3);
}

} // namespace
} // namespace lsqca::service
