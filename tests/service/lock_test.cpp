/**
 * @file
 * State-dir lockfile contract (service/lock.h): one live driver per
 * campaign directory, the loser told who owns it, stale locks from
 * dead processes reclaimed automatically, and the orchestrator
 * actually enforcing all of this on its submit/resume paths.
 */

#include <gtest/gtest.h>

#include <string>

#include <unistd.h>

#include "common/error.h"
#include "common/fs.h"
#include "service/lock.h"
#include "service/orchestrator.h"
#include "service_test_util.h"

namespace lsqca::service {
namespace {

TEST(StateLock, SecondAcquireFailsFastNamingTheHolder)
{
    const std::string dir = test::scratchDir("double");
    StateLock first = StateLock::acquire(dir);
    EXPECT_TRUE(first.held());
    // flock conflicts apply across open file descriptions, so a
    // second acquire loses even inside one process.
    try {
        StateLock second = StateLock::acquire(dir);
        FAIL() << "second acquire must throw";
    } catch (const ConfigError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("locked"), std::string::npos) << what;
        EXPECT_NE(what.find(std::to_string(::getpid())),
                  std::string::npos)
            << what;
    }
}

TEST(StateLock, ReleaseMakesTheDirAcquirableAgain)
{
    const std::string dir = test::scratchDir("release");
    StateLock lock = StateLock::acquire(dir);
    lock.release();
    EXPECT_FALSE(lock.held());
    StateLock again = StateLock::acquire(dir);
    EXPECT_TRUE(again.held());
}

TEST(StateLock, StaleFileFromADeadProcessIsReclaimed)
{
    const std::string dir = test::scratchDir("stale");
    // A lock file left behind by a driver that died without release:
    // the pid inside is informative only — no live flock, no claim.
    fsutil::makeDirs(dir);
    fsutil::writeFileAtomic(StateLock::pathFor(dir), "999999\n");
    StateLock lock = StateLock::acquire(dir);
    EXPECT_TRUE(lock.held());
    // Our pid replaced the stale one.
    EXPECT_NE(fsutil::readFile(StateLock::pathFor(dir))
                  .find(std::to_string(::getpid())),
              std::string::npos);
}

TEST(StateLock, MoveTransfersOwnership)
{
    const std::string dir = test::scratchDir("move");
    StateLock lock = StateLock::acquire(dir);
    StateLock stolen = std::move(lock);
    EXPECT_FALSE(lock.held());
    EXPECT_TRUE(stolen.held());
    stolen.release();
    EXPECT_TRUE(StateLock::acquire(dir).held());
}

TEST(StateLock, OrchestratorRefusesALockedStateDir)
{
    const std::string dir = test::scratchDir("orch");
    StateLock lock = StateLock::acquire(dir + "/state");

    OrchestratorOptions options;
    options.stateDir = dir + "/state";
    options.workerExe = test::kCliBin;
    options.shards = 2;
    options.noTiming = true;
    EXPECT_THROW(Orchestrator(options).submit(test::kSmokeSpec),
                 ConfigError);

    // Releasing the rival makes the same submit succeed.
    lock.release();
    EXPECT_TRUE(
        Orchestrator(options).submit(test::kSmokeSpec).complete);
}

} // namespace
} // namespace lsqca::service
