#ifndef LSQCA_TESTS_SERVICE_TEST_UTIL_H
#define LSQCA_TESTS_SERVICE_TEST_UTIL_H

/**
 * @file
 * Shared plumbing for the service suite: per-test scratch directories
 * and the paths to the checked-in specs and the real `lsqca` binary
 * (LSQCA_CLI_BIN, injected by CMake) that the orchestrator tests use
 * as their worker fleet.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/fs.h"

namespace lsqca::test {

inline const char *kSmokeSpec = LSQCA_SOURCE_DIR "/specs/smoke.json";
inline const char *kFig13Spec = LSQCA_SOURCE_DIR "/specs/fig13.json";
inline const char *kCliBin = LSQCA_CLI_BIN;

/** A fresh empty directory unique to the running test. */
inline std::string
scratchDir(const std::string &tag)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string dir = ::testing::TempDir() + "lsqca_service_" +
                            info->test_suite_name() + "_" +
                            info->name() + "_" + tag;
    std::filesystem::remove_all(dir);
    fsutil::makeDirs(dir);
    return dir;
}

} // namespace lsqca::test

#endif // LSQCA_TESTS_SERVICE_TEST_UTIL_H
