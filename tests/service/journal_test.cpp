/**
 * @file
 * Campaign journal crash-safety and determinism: header/sequence
 * invariants, reopen continuity (one continuous history across
 * interrupt + resume), torn-tail repair (a writer killed mid-append
 * leaves a reloadable journal), the clock-mismatch guard, and the
 * logical clock's byte-determinism — the substrate the `lsqca report`
 * acceptance contract stands on (docs/METRICS.md).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/fs.h"
#include "common/jsonl.h"
#include "service/journal.h"
#include "service_test_util.h"

namespace lsqca::service {
namespace {

Json
fields(std::initializer_list<std::pair<const char *, std::int64_t>>
           pairs)
{
    Json object = Json::object();
    for (const auto &[key, value] : pairs)
        object.set(key, value);
    return object;
}

TEST(Journal, PathForAndDisabledNullObject)
{
    EXPECT_EQ(Journal::pathFor("/x/state"), "/x/state/events.jsonl");
    Journal disabled;
    EXPECT_FALSE(disabled.enabled());
    disabled.record("spawn", fields({{"shard", 1}})); // no-op, no crash
    EXPECT_EQ(disabled.seq(), 0);
    EXPECT_EQ(disabled.path(), "");
}

TEST(Journal, FreshJournalStartsWithAHeaderAndSequences)
{
    const std::string dir = test::scratchDir("fresh");
    const std::string path = Journal::pathFor(dir);
    {
        Journal journal = Journal::open(path, JournalClock::Logical);
        ASSERT_TRUE(journal.enabled());
        EXPECT_TRUE(journal.logical());
        EXPECT_EQ(journal.seq(), 1); // the header event
        journal.record("spawn",
                       fields({{"shard", 0}, {"attempt", 1},
                               {"worker", 1}}));
        EXPECT_EQ(journal.seq(), 2);
    }
    const jsonl::ReadResult read = jsonl::readLines(path);
    EXPECT_FALSE(read.truncatedTail);
    ASSERT_EQ(read.lines.size(), 2u);
    const Json &header = read.lines.front();
    EXPECT_EQ(header.at("event").asString(), "journal");
    EXPECT_EQ(header.at("seq").asInt(), 1);
    EXPECT_EQ(header.at("schema").asString(), kEventsSchema);
    EXPECT_EQ(header.at("clock").asString(), "logical");
    // Logical clock: t == seq, and no wall fields anywhere.
    EXPECT_EQ(header.at("t").asInt(), 1);
    EXPECT_EQ(header.find("wall"), nullptr);
    EXPECT_EQ(header.find("wall0"), nullptr);
    EXPECT_EQ(read.lines[1].at("t").asInt(), 2);
}

TEST(Journal, MonotonicHeaderCarriesWallEpoch)
{
    const std::string dir = test::scratchDir("wall");
    const std::string path = Journal::pathFor(dir);
    {
        Journal journal = Journal::open(path, JournalClock::Monotonic);
        EXPECT_FALSE(journal.logical());
        journal.record("spawn",
                       fields({{"shard", 0}, {"attempt", 1},
                               {"worker", 1}}));
    }
    const jsonl::ReadResult read = jsonl::readLines(path);
    ASSERT_EQ(read.lines.size(), 2u);
    const Json &header = read.lines.front();
    EXPECT_EQ(header.at("clock").asString(), "monotonic");
    EXPECT_GT(header.at("wall").asDouble(), 0.0);
    EXPECT_GT(header.at("wall0").asDouble(), 0.0);
    // t is seconds since the campaign epoch: small and non-negative.
    EXPECT_GE(read.lines[1].at("t").asDouble(), 0.0);
    EXPECT_LT(read.lines[1].at("t").asDouble(), 60.0);
}

TEST(Journal, ReopenContinuesTheSequence)
{
    const std::string dir = test::scratchDir("reopen");
    const std::string path = Journal::pathFor(dir);
    {
        Journal journal = Journal::open(path, JournalClock::Logical);
        journal.record("submit", fields({{"shards", 4}}));
    } // interrupt: writer closes cleanly mid-campaign
    {
        Journal journal = Journal::open(path, JournalClock::Logical);
        EXPECT_EQ(journal.seq(), 2); // continues, no second header
        journal.record("resume", fields({{"shards", 4}}));
        EXPECT_EQ(journal.seq(), 3);
    }
    const jsonl::ReadResult read = jsonl::readLines(path);
    ASSERT_EQ(read.lines.size(), 3u);
    // One continuous history: exactly one header, seq 1..3.
    EXPECT_EQ(read.lines[0].at("event").asString(), "journal");
    EXPECT_EQ(read.lines[1].at("event").asString(), "submit");
    EXPECT_EQ(read.lines[2].at("event").asString(), "resume");
    for (std::size_t i = 0; i < read.lines.size(); ++i)
        EXPECT_EQ(read.lines[i].at("seq").asInt(),
                  static_cast<std::int64_t>(i + 1));
}

TEST(Journal, TornTailIsTruncatedAndLoggedOnReopen)
{
    const std::string dir = test::scratchDir("torn");
    const std::string path = Journal::pathFor(dir);
    {
        Journal journal = Journal::open(path, JournalClock::Logical);
        journal.record("spawn",
                       fields({{"shard", 0}, {"attempt", 1},
                               {"worker", 1}}));
    }
    // Simulate a writer killed mid-append: a torn, unterminated line.
    const std::string intact = fsutil::readFile(path);
    fsutil::writeFileAtomic(path, intact + "{\"event\":\"exi");

    // Readers of the (still-torn) journal tolerate the tail...
    EXPECT_TRUE(jsonl::readLines(path).truncatedTail);

    // ...and reopening repairs it: tail cut, `truncated` appended,
    // sequence continuing from the last complete record.
    {
        Journal journal = Journal::open(path, JournalClock::Logical);
        EXPECT_EQ(journal.seq(), 3);
        journal.record("resume", fields({{"shards", 1}}));
    }
    const jsonl::ReadResult read = jsonl::readLines(path);
    EXPECT_FALSE(read.truncatedTail);
    ASSERT_EQ(read.lines.size(), 4u);
    EXPECT_EQ(read.lines[2].at("event").asString(), "truncated");
    EXPECT_EQ(read.lines[2].at("seq").asInt(), 3);
    EXPECT_EQ(read.lines[3].at("event").asString(), "resume");
    EXPECT_EQ(read.lines[3].at("seq").asInt(), 4);
}

TEST(Journal, ReopenRejectsAClockMismatch)
{
    const std::string dir = test::scratchDir("clockmismatch");
    const std::string path = Journal::pathFor(dir);
    { Journal::open(path, JournalClock::Logical); }
    try {
        Journal::open(path, JournalClock::Monotonic);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &error) {
        EXPECT_NE(std::string(error.what()).find("clock"),
                  std::string::npos)
            << error.what();
    }
}

TEST(Journal, LogicalClockJournalsAreByteDeterministic)
{
    const std::string dir = test::scratchDir("deterministic");
    const auto write = [&](const std::string &path) {
        Journal journal = Journal::open(path, JournalClock::Logical);
        journal.record("submit", fields({{"shards", 2}}));
        journal.record("spawn",
                       fields({{"shard", 0}, {"attempt", 1},
                               {"worker", 1}}));
        Json exit = fields({{"shard", 0}, {"attempt", 1},
                            {"worker", 1}});
        exit.set("ok", true);
        journal.record("exit", exit);
    };
    write(dir + "/a.jsonl");
    write(dir + "/b.jsonl");
    EXPECT_EQ(fsutil::readFile(dir + "/a.jsonl"),
              fsutil::readFile(dir + "/b.jsonl"));
}

TEST(Journal, ClockNamesRoundTrip)
{
    EXPECT_STREQ(journalClockName(JournalClock::Monotonic),
                 "monotonic");
    EXPECT_STREQ(journalClockName(JournalClock::Logical), "logical");
    EXPECT_EQ(journalClockFromName("monotonic"),
              JournalClock::Monotonic);
    EXPECT_EQ(journalClockFromName("logical"), JournalClock::Logical);
    EXPECT_THROW(journalClockFromName("wall"), ConfigError);
}

} // namespace
} // namespace lsqca::service
