/**
 * @file
 * Contract of the Unix-socket line transport under src/common/socket:
 * listen/connect/accept over a filesystem path, full-line framing in
 * both blocking and non-blocking reads, the 1 MiB line guard going
 * sticky on overflow, and EOF detection — the substrate the daemon
 * protocol (docs/DAEMON.md) rides on.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/error.h"
#include "common/fs.h"
#include "common/socket.h"

namespace lsqca::net {
namespace {

std::string
scratchDir(const std::string &tag)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string dir = ::testing::TempDir() + "lsqca_socket_" +
                            info->name() + "_" + tag;
    std::filesystem::remove_all(dir);
    fsutil::makeDirs(dir);
    return dir;
}

/** Listener + connected client pair over a real socket file. */
struct Pair
{
    int listenFd = -1;
    int client = -1;
    int server = -1;

    explicit Pair(const std::string &path)
    {
        listenFd = listenUnix(path);
        client = connectUnix(path);
        // The connection is queued on the listener immediately.
        for (int spin = 0; spin < 1000 && server < 0; ++spin)
            server = acceptClient(listenFd);
        EXPECT_GE(server, 0);
    }

    ~Pair()
    {
        closeFd(client);
        closeFd(server);
        closeFd(listenFd);
    }
};

TEST(Socket, LineRoundtripOverAcceptedConnection)
{
    const std::string dir = scratchDir("roundtrip");
    Pair pair(dir + "/s.sock");

    ASSERT_TRUE(sendLine(pair.client, "{\"op\":\"ping\"}"));
    std::string line;
    EXPECT_EQ(LineReader(pair.server).read(line),
              LineReader::Status::Line);
    EXPECT_EQ(line, "{\"op\":\"ping\"}");

    ASSERT_TRUE(sendLine(pair.server, "pong"));
    LineReader clientReader(pair.client);
    EXPECT_EQ(clientReader.read(line), LineReader::Status::Line);
    EXPECT_EQ(line, "pong");
}

TEST(Socket, PollSplitsCoalescedLinesAndReportsNoData)
{
    const std::string dir = scratchDir("coalesced");
    Pair pair(dir + "/s.sock");
    setNonBlocking(pair.server);
    LineReader reader(pair.server);

    std::string line;
    // Nothing sent yet: a non-blocking pump reports NoData.
    EXPECT_EQ(reader.poll(line), LineReader::Status::NoData);

    // Two frames in one TCP-style burst come back as two lines.
    ASSERT_TRUE(sendLine(pair.client, "first"));
    ASSERT_TRUE(sendLine(pair.client, "second"));
    for (int spin = 0; spin < 1000; ++spin) {
        if (reader.poll(line) == LineReader::Status::Line)
            break;
        waitReadable(pair.server, 0.01);
    }
    EXPECT_EQ(line, "first");
    EXPECT_EQ(reader.poll(line), LineReader::Status::Line);
    EXPECT_EQ(line, "second");
    EXPECT_EQ(reader.poll(line), LineReader::Status::NoData);
}

TEST(Socket, EofAfterPeerCloses)
{
    const std::string dir = scratchDir("eof");
    Pair pair(dir + "/s.sock");
    ASSERT_TRUE(sendLine(pair.client, "last"));
    closeFd(pair.client);
    pair.client = -1;

    LineReader reader(pair.server);
    std::string line;
    EXPECT_EQ(reader.read(line), LineReader::Status::Line);
    EXPECT_EQ(line, "last");
    EXPECT_EQ(reader.read(line), LineReader::Status::Eof);
    // EOF is sticky.
    EXPECT_EQ(reader.read(line), LineReader::Status::Eof);
}

TEST(Socket, OverflowIsStickyPastTheLineGuard)
{
    const std::string dir = scratchDir("overflow");
    Pair pair(dir + "/s.sock");

    // A writer pushing one endless unterminated line; raw write(2)
    // because sendLine would add the newline that makes it legal.
    std::thread writer([&] {
        const std::string chunk(64 * 1024, 'x');
        std::size_t written = 0;
        while (written <= kMaxLineBytes + chunk.size()) {
            const ssize_t n =
                ::write(pair.client, chunk.data(), chunk.size());
            if (n <= 0)
                break;
            written += static_cast<std::size_t>(n);
        }
        closeFd(pair.client);
        pair.client = -1;
    });

    LineReader reader(pair.server);
    std::string line;
    EXPECT_EQ(reader.read(line), LineReader::Status::Overflow);
    EXPECT_EQ(reader.read(line), LineReader::Status::Overflow);
    writer.join();
}

TEST(Socket, AcceptReportsNoPendingConnection)
{
    const std::string dir = scratchDir("accept");
    const int listenFd = listenUnix(dir + "/s.sock");
    EXPECT_EQ(acceptClient(listenFd), -1);
    closeFd(listenFd);
}

TEST(Socket, ConnectToNothingThrows)
{
    const std::string dir = scratchDir("nothing");
    EXPECT_THROW(connectUnix(dir + "/absent.sock"), ConfigError);
}

TEST(Socket, ListenReclaimsAStaleSocketFile)
{
    const std::string dir = scratchDir("stale");
    const std::string path = dir + "/s.sock";
    {
        const int first = listenUnix(path);
        closeFd(first);
    }
    // The dead listener's socket file is still on disk; a fresh
    // listener (holding the root lock, per the daemon's contract)
    // replaces it instead of failing with EADDRINUSE.
    const int second = listenUnix(path);
    EXPECT_GE(second, 0);
    const int client = connectUnix(path);
    EXPECT_GE(client, 0);
    closeFd(client);
    closeFd(second);
}

} // namespace
} // namespace lsqca::net
