#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace lsqca {
namespace {

TEST(SummaryStats, EmptyThrowsOnAccess)
{
    SummaryStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_THROW(s.mean(), ConfigError);
    EXPECT_THROW(s.min(), ConfigError);
    EXPECT_THROW(s.max(), ConfigError);
}

TEST(SummaryStats, SingleValue)
{
    SummaryStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryStats, KnownMoments)
{
    SummaryStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStats, MergeMatchesCombined)
{
    SummaryStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double v = i * 0.7 - 3.0;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStats, MergeWithEmpty)
{
    SummaryStats a, empty;
    a.add(1.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(EmpiricalCdf, AtOnEmptyIsZero)
{
    EmpiricalCdf cdf;
    EXPECT_DOUBLE_EQ(cdf.at(10.0), 0.0);
}

TEST(EmpiricalCdf, StepFunction)
{
    EmpiricalCdf cdf;
    cdf.add({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.at(99.0), 1.0);
}

TEST(EmpiricalCdf, QuantileNearestRank)
{
    EmpiricalCdf cdf;
    cdf.add({10.0, 20.0, 30.0, 40.0, 50.0});
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
    EXPECT_THROW(cdf.quantile(1.5), ConfigError);
}

TEST(EmpiricalCdf, CurveIsMonotoneAndDeduplicated)
{
    EmpiricalCdf cdf;
    cdf.add({3.0, 1.0, 3.0, 2.0, 3.0});
    const auto curve = cdf.curve();
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_DOUBLE_EQ(curve[0].first, 1.0);
    EXPECT_DOUBLE_EQ(curve[0].second, 0.2);
    EXPECT_DOUBLE_EQ(curve[2].first, 3.0);
    EXPECT_DOUBLE_EQ(curve[2].second, 1.0);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GT(curve[i].first, curve[i - 1].first);
        EXPECT_GT(curve[i].second, curve[i - 1].second);
    }
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(Geomean, RejectsEmptyAndNonPositive)
{
    EXPECT_THROW(geomean({}), ConfigError);
    EXPECT_THROW(geomean({1.0, 0.0}), ConfigError);
    EXPECT_THROW(geomean({-1.0}), ConfigError);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.0);   // bin 0
    h.add(1.9);   // bin 0
    h.add(2.0);   // bin 1
    h.add(9.9);   // bin 4
    h.add(-5.0);  // clamps to bin 0
    h.add(50.0);  // clamps to bin 4
    EXPECT_EQ(h.binCount(0), 3u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 2.0);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0.0, 0.0, 3), ConfigError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

} // namespace
} // namespace lsqca
