/**
 * @file
 * Json parser/accessor tests: parse(dump(x)) == x, strict syntax
 * errors with positions, and accessor type checking. The spec and
 * BENCH pipelines both stand on these guarantees.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/json.h"

namespace lsqca {
namespace {

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_TRUE(Json::parse("true").asBool());
    EXPECT_FALSE(Json::parse("false").asBool());
    EXPECT_EQ(Json::parse("42").asInt(), 42);
    EXPECT_EQ(Json::parse("-7").asInt(), -7);
    EXPECT_TRUE(Json::parse("42").isInt());
    EXPECT_DOUBLE_EQ(Json::parse("0.25").asDouble(), 0.25);
    EXPECT_DOUBLE_EQ(Json::parse("1e3").asDouble(), 1000.0);
    EXPECT_FALSE(Json::parse("0.25").isInt());
    EXPECT_EQ(Json::parse("\"hi\"").asString(), "hi");
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").asString(),
              "a\"b\\c\nd\te");
    EXPECT_EQ(Json::parse(R"("A")").asString(), "A");
    EXPECT_EQ(Json::parse(R"("é")").asString(), "\xc3\xa9");
}

TEST(JsonParse, NestedDocument)
{
    const Json doc = Json::parse(
        R"({"a": [1, 2.5, "x", null], "b": {"c": true}})");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.size(), 2u);
    const Json &a = doc.at("a");
    ASSERT_TRUE(a.isArray());
    ASSERT_EQ(a.size(), 4u);
    EXPECT_EQ(a.items()[0].asInt(), 1);
    EXPECT_DOUBLE_EQ(a.items()[1].asDouble(), 2.5);
    EXPECT_EQ(a.items()[2].asString(), "x");
    EXPECT_TRUE(a.items()[3].isNull());
    EXPECT_TRUE(doc.at("b").at("c").asBool());
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_THROW(doc.at("missing"), ConfigError);
}

TEST(JsonParse, RoundTripsItsOwnDump)
{
    Json doc = Json::object();
    doc.set("name", "sweep/point#1");
    doc.set("count", std::int64_t{123456789012345});
    doc.set("ratio", 1.0 / 3.0);
    doc.set("tiny", 1e-300);
    doc.set("flag", false);
    Json list = Json::array();
    list.push(Json());
    list.push(-1);
    list.push(0.05 * 13); // awkward binary fraction
    doc.set("list", std::move(list));
    for (int indent : {0, 2, 4}) {
        const Json reparsed = Json::parse(doc.dump(indent));
        EXPECT_EQ(reparsed, doc) << "indent " << indent;
        EXPECT_EQ(reparsed.dump(2), doc.dump(2));
    }
}

TEST(JsonParse, PreservesKeyOrder)
{
    const Json doc = Json::parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_EQ(doc.members().size(), 3u);
    EXPECT_EQ(doc.members()[0].first, "z");
    EXPECT_EQ(doc.members()[1].first, "a");
    EXPECT_EQ(doc.members()[2].first, "m");
}

TEST(JsonParse, RejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\" 1}", "{\"a\": }", "tru", "01x",
          "\"unterminated", "[1] trailing", "{\"a\":1,}", "[1,,2]",
          "nan", "--1", "{\"a\":1 \"b\":2}", "\"bad\\q\"", "01",
          "-012"}) {
        EXPECT_THROW(Json::parse(bad), ConfigError) << bad;
    }
}

TEST(JsonParse, RejectsDuplicateKeys)
{
    EXPECT_THROW(Json::parse(R"({"a": 1, "a": 2})"), ConfigError);
}

TEST(JsonParse, ErrorsCarryPosition)
{
    try {
        Json::parse("{\n  \"a\": oops\n}");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("2:8"), std::string::npos)
            << e.what();
    }
}

TEST(JsonParse, BigIntegersStayExact)
{
    const std::int64_t big = 9007199254740993; // 2^53 + 1
    EXPECT_EQ(Json::parse(std::to_string(big)).asInt(), big);
    // Out-of-int64 integers degrade to doubles rather than failing...
    const Json huge = Json::parse("99999999999999999999999");
    EXPECT_TRUE(huge.isNumber());
    // ...and refuse integer conversion instead of overflowing.
    EXPECT_THROW(huge.asInt(), ConfigError);
    EXPECT_THROW(Json(1e23).asInt(), ConfigError);
}

TEST(JsonAccessors, TypeMismatchesThrow)
{
    const Json doc = Json::parse(R"({"s": "x", "n": 1.5})");
    EXPECT_THROW(doc.at("s").asInt(), ConfigError);
    EXPECT_THROW(doc.at("n").asInt(), ConfigError); // non-integral
    EXPECT_THROW(doc.at("s").asDouble(), ConfigError);
    EXPECT_THROW(doc.at("n").asString(), ConfigError);
    EXPECT_THROW(doc.at("n").asBool(), ConfigError);
    EXPECT_THROW(doc.items(), ConfigError);
    EXPECT_THROW(Json(1.5).members(), ConfigError);
    // Exact doubles convert to integers.
    EXPECT_EQ(Json(3.0).asInt(), 3);
}

TEST(JsonEquality, StructuralAndOrderSensitive)
{
    EXPECT_EQ(Json::parse("[1, 2]"), Json::parse("[1,2]"));
    EXPECT_NE(Json::parse("[1, 2]"), Json::parse("[2, 1]"));
    EXPECT_NE(Json::parse("{\"a\":1,\"b\":2}"),
              Json::parse("{\"b\":2,\"a\":1}"));
    EXPECT_NE(Json(1.0), Json(std::int64_t{1})); // kinds differ
}

} // namespace
} // namespace lsqca
