/**
 * @file
 * MetricsRegistry coverage: instrument semantics (counter, gauge,
 * histogram), reference stability, kind checking, the name-sorted
 * deterministic snapshot, and thread-safety of concurrent updates —
 * the properties the sweep pool and orchestrator instrumentation
 * (docs/METRICS.md) stand on.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.h"
#include "common/metrics.h"

namespace lsqca::metrics {
namespace {

TEST(Metrics, CounterAccumulates)
{
    Registry registry;
    Counter &c = registry.counter("service.spawns");
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    // Same name resolves to the same instrument.
    EXPECT_EQ(&registry.counter("service.spawns"), &c);
}

TEST(Metrics, GaugeIsLastWriteWins)
{
    Registry registry;
    Gauge &g = registry.gauge("service.workers");
    g.set(4.0);
    g.set(2.0);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Metrics, HistogramTracksCountSumMinMaxMean)
{
    Registry registry;
    Histogram &h = registry.histogram("sweep.job_wall_seconds");
    EXPECT_EQ(h.count(), 0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.observe(2.0);
    h.observe(6.0);
    h.observe(1.0);
    EXPECT_EQ(h.count(), 3);
    EXPECT_DOUBLE_EQ(h.sum(), 9.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 6.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Metrics, NameBindsToOneInstrumentKind)
{
    Registry registry;
    registry.counter("service.retries");
    EXPECT_THROW(registry.gauge("service.retries"), InternalError);
    EXPECT_THROW(registry.histogram("service.retries"), InternalError);
}

TEST(Metrics, SnapshotIsNameSortedAndOrderIndependent)
{
    // Two registries fed the same updates in different registration
    // order serialize byte-identically — what keeps metrics.json (and
    // the --clock logical report) deterministic.
    Registry a;
    a.counter("z.count").add(3);
    a.gauge("a.level").set(1.5);
    a.histogram("m.wall").observe(2.0);

    Registry b;
    b.histogram("m.wall").observe(2.0);
    b.counter("z.count").add(3);
    b.gauge("a.level").set(1.5);

    const std::string dumpA = a.toJson().dump(2);
    EXPECT_EQ(dumpA, b.toJson().dump(2));

    const Json snapshot = a.toJson();
    ASSERT_EQ(snapshot.members().size(), 3u);
    EXPECT_EQ(snapshot.members()[0].first, "a.level");
    EXPECT_EQ(snapshot.members()[1].first, "m.wall");
    EXPECT_EQ(snapshot.members()[2].first, "z.count");
    EXPECT_EQ(snapshot.at("z.count").asInt(), 3);
    EXPECT_DOUBLE_EQ(snapshot.at("a.level").asDouble(), 1.5);
    const Json &hist = snapshot.at("m.wall");
    EXPECT_EQ(hist.at("count").asInt(), 1);
    EXPECT_DOUBLE_EQ(hist.at("sum").asDouble(), 2.0);
    EXPECT_DOUBLE_EQ(hist.at("mean").asDouble(), 2.0);
    EXPECT_DOUBLE_EQ(hist.at("min").asDouble(), 2.0);
    EXPECT_DOUBLE_EQ(hist.at("max").asDouble(), 2.0);
}

TEST(Metrics, ConcurrentUpdatesNeverLoseEvents)
{
    Registry registry;
    Counter &hits = registry.counter("hits");
    Histogram &wall = registry.histogram("wall");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                hits.add();
                wall.observe(1.0);
            }
        });
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(hits.value(), kThreads * kPerThread);
    EXPECT_EQ(wall.count(), kThreads * kPerThread);
    EXPECT_DOUBLE_EQ(wall.sum(), kThreads * kPerThread);
    EXPECT_DOUBLE_EQ(wall.min(), 1.0);
    EXPECT_DOUBLE_EQ(wall.max(), 1.0);
}

} // namespace
} // namespace lsqca::metrics
