/**
 * @file
 * Crash-safety contract of the fsutil atomic write path: every
 * successful writeFileAtomic must fsync its data before rename
 * publishes the name, concurrent writers of one path must never tear
 * each other's staging files, and listFiles must tolerate directory
 * entries that cannot be stat()ed (dangling symlinks in a shared
 * cache directory) instead of aborting the listing.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/fs.h"

namespace lsqca::fsutil {
namespace {

namespace stdfs = std::filesystem;

std::string
scratchDir(const std::string &tag)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string dir = ::testing::TempDir() + "lsqca_fs_" +
                            info->name() + "_" + tag;
    stdfs::remove_all(dir);
    makeDirs(dir);
    return dir;
}

/** Files under @p dir whose names contain ".tmp." (staging leaks). */
std::vector<std::string>
stagingLeaks(const std::string &dir)
{
    std::vector<std::string> leaks;
    for (const auto &item : stdfs::directory_iterator(dir))
        if (item.path().filename().string().find(".tmp.") !=
            std::string::npos)
            leaks.push_back(item.path().string());
    return leaks;
}

TEST(WriteFileAtomic, FsyncsDataBeforeEveryPublish)
{
    const std::string dir = scratchDir("fsync");
    const AtomicWriteStats before = atomicWriteStats();
    writeFileAtomic(dir + "/a.json", "{\"a\":1}\n");
    writeFileAtomic(dir + "/b.json", "{\"b\":2}\n");
    const AtomicWriteStats after = atomicWriteStats();
    EXPECT_EQ(after.writes, before.writes + 2);
    // The durability half of the contract: a data fsync per publish,
    // issued before the rename (a crash right after rename must not be
    // able to surface an empty file at the final path).
    EXPECT_GE(after.fsyncs, before.fsyncs + 2);
    EXPECT_EQ(readFile(dir + "/a.json"), "{\"a\":1}\n");
}

TEST(WriteFileAtomic, ConcurrentSamePathWritersNeverTearOrLeak)
{
    const std::string dir = scratchDir("race");
    const std::string path = dir + "/contended.json";
    // Distinct payloads large enough that interleaved partial writes
    // would be visible as mixed-character content.
    constexpr int kWriters = 4;
    constexpr int kRounds = 24;
    std::vector<std::string> payloads;
    payloads.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w)
        payloads.push_back(std::string(64 * 1024, 'A' + w));

    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&, w] {
            for (int round = 0; round < kRounds; ++round)
                writeFileAtomic(path, payloads[w]);
        });
    for (std::thread &writer : writers)
        writer.join();

    // Whatever write won last, the published bytes are exactly one
    // writer's payload — never a mix, never truncated.
    const std::string final = readFile(path);
    bool intact = false;
    for (const std::string &payload : payloads)
        intact = intact || final == payload;
    EXPECT_TRUE(intact) << "torn content, size " << final.size();
    // Every staging file was uniquely named and renamed or cleaned up.
    EXPECT_TRUE(stagingLeaks(dir).empty());
}

TEST(ListFiles, SkipsEntriesThatCannotBeStatted)
{
    const std::string dir = scratchDir("dangling");
    writeFileAtomic(dir + "/keep.json", "{}");
    makeDirs(dir + "/subdir.json"); // directory, despite the suffix
    // A dangling symlink: exists as a directory entry, but stat()
    // fails. The throwing is_regular_file() overload would abort the
    // whole listing here.
    std::error_code ec;
    stdfs::create_symlink(dir + "/never-created.json",
                          dir + "/dangling.json", ec);
    ASSERT_FALSE(ec) << ec.message();

    const std::vector<std::string> files = listFiles(dir, "", ".json");
    ASSERT_EQ(files.size(), 1u);
    EXPECT_EQ(files[0], dir + "/keep.json");
}

} // namespace
} // namespace lsqca::fsutil
