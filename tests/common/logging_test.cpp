#include "common/logging.h"

#include <gtest/gtest.h>

namespace lsqca {
namespace {

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { previous_ = logLevel(); }
    void TearDown() override { setLogLevel(previous_); }
    LogLevel previous_ = LogLevel::Warn;
};

TEST_F(LoggingTest, DefaultLevelIsWarnOrHigher)
{
    EXPECT_GE(static_cast<int>(logLevel()),
              static_cast<int>(LogLevel::Warn));
}

TEST_F(LoggingTest, SetAndGetRoundTrip)
{
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
}

TEST_F(LoggingTest, EmitBelowLevelDoesNotCrash)
{
    setLogLevel(LogLevel::Off);
    logDebug("dropped ", 1);
    logInfo("dropped ", 2.5);
    logWarn("dropped ", "three");
    logError("dropped ", 'x');
}

TEST_F(LoggingTest, EmitAboveLevelDoesNotCrash)
{
    setLogLevel(LogLevel::Debug);
    logDebug("visible ", 42, " parts ", 1.5);
}

} // namespace
} // namespace lsqca
