#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace lsqca {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++equal;
    EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowRejectsZeroBound)
{
    Rng rng(7);
    EXPECT_THROW(rng.below(0), ConfigError);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusiveBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.between(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, BetweenRejectsInvertedBounds)
{
    Rng rng(3);
    EXPECT_THROW(rng.between(4, 2), ConfigError);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

} // namespace
} // namespace lsqca
