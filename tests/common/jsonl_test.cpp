/**
 * @file
 * Shared JSONL plumbing tests: the compact line writer, the
 * tmp+rename Export publish cycle (`lsqca trace` and
 * `--chrome-trace` ride on it), and the tolerant reader's torn-tail
 * handling — the same guarantee the campaign journal's crash-safety
 * leans on.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/error.h"
#include "common/fs.h"
#include "common/jsonl.h"

namespace lsqca::jsonl {
namespace {

std::string
scratchDir(const std::string &tag)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string dir = ::testing::TempDir() + "lsqca_jsonl_" +
                            info->name() + "_" + tag;
    std::filesystem::remove_all(dir);
    fsutil::makeDirs(dir);
    return dir;
}

TEST(JsonlWriter, EmitsOneCompactDocumentPerLine)
{
    std::ostringstream out;
    Writer writer(out);
    Json a = Json::object();
    a.set("event", "spawn");
    a.set("shard", std::int64_t{3});
    writer.emit(a);
    writer.emit(Json::parse("[1,2]"));
    EXPECT_EQ(writer.lines(), 2);
    EXPECT_EQ(out.str(), "{\"event\":\"spawn\",\"shard\":3}\n[1,2]\n");
}

TEST(JsonlExport, PublishesAtomicallyViaTmpRename)
{
    const std::string dir = scratchDir("publish");
    const std::string path = dir + "/events.jsonl";
    {
        Export target(path);
        EXPECT_FALSE(target.toStdout());
        target.stream() << "{\"x\":1}\n";
        // Nothing at the final path until publish().
        EXPECT_FALSE(fsutil::exists(path));
        target.publish();
    }
    EXPECT_TRUE(fsutil::exists(path));
    EXPECT_FALSE(fsutil::exists(path + ".tmp"));
    EXPECT_EQ(fsutil::readFile(path), "{\"x\":1}\n");
}

TEST(JsonlExport, UnpublishedExportLeavesNothingBehind)
{
    const std::string dir = scratchDir("abandon");
    const std::string path = dir + "/out.json";
    {
        Export target(path);
        target.stream() << "partial";
        // Destroyed without publish(): the crash/throw path.
    }
    EXPECT_FALSE(fsutil::exists(path));
    EXPECT_FALSE(fsutil::exists(path + ".tmp"));
}

TEST(JsonlRead, ParsesCompleteLines)
{
    const std::string dir = scratchDir("read");
    const std::string path = dir + "/lines.jsonl";
    fsutil::writeFileAtomic(path, "{\"a\":1}\n{\"a\":2}\n");
    const ReadResult result = readLines(path);
    EXPECT_FALSE(result.truncatedTail);
    ASSERT_EQ(result.lines.size(), 2u);
    EXPECT_EQ(result.lines[0].at("a").asInt(), 1);
    EXPECT_EQ(result.lines[1].at("a").asInt(), 2);
}

TEST(JsonlRead, ToleratesATornFinalLine)
{
    // A writer killed mid-append leaves an unterminated last line; the
    // reader drops it and flags the tear instead of failing.
    const std::string dir = scratchDir("torn");
    const std::string path = dir + "/torn.jsonl";
    fsutil::writeFileAtomic(path, "{\"a\":1}\n{\"a\":2}\n{\"a\":");
    const ReadResult result = readLines(path);
    EXPECT_TRUE(result.truncatedTail);
    ASSERT_EQ(result.lines.size(), 2u);
    EXPECT_EQ(result.lines[1].at("a").asInt(), 2);
}

TEST(JsonlRead, RejectsAMalformedCompleteLineWithItsNumber)
{
    const std::string dir = scratchDir("badline");
    const std::string path = dir + "/bad.jsonl";
    fsutil::writeFileAtomic(path, "{\"a\":1}\nnot json\n{\"a\":3}\n");
    try {
        readLines(path);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find(path), std::string::npos) << what;
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    }
}

} // namespace
} // namespace lsqca::jsonl
