#include "common/error.h"

#include <gtest/gtest.h>

namespace lsqca {
namespace {

TEST(Error, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(LSQCA_REQUIRE(true, "ok"));
}

TEST(Error, RequireThrowsConfigError)
{
    EXPECT_THROW(LSQCA_REQUIRE(false, "bad input"), ConfigError);
}

TEST(Error, AssertThrowsInternalError)
{
    EXPECT_THROW(LSQCA_ASSERT(1 == 2, "broken invariant"), InternalError);
}

TEST(Error, ConfigErrorMessageContainsContext)
{
    try {
        LSQCA_REQUIRE(false, "the width is wrong");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("the width is wrong"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("error_test.cpp"),
                  std::string::npos);
    }
}

TEST(Error, InternalErrorMessageContainsExpression)
{
    try {
        LSQCA_ASSERT(2 + 2 == 5, "math failed");
        FAIL() << "expected InternalError";
    } catch (const InternalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("math failed"), std::string::npos);
        EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    }
}

TEST(Error, ConfigErrorIsRuntimeError)
{
    EXPECT_THROW(LSQCA_REQUIRE(false, "x"), std::runtime_error);
}

TEST(Error, InternalErrorIsLogicError)
{
    EXPECT_THROW(LSQCA_ASSERT(false, "x"), std::logic_error);
}

} // namespace
} // namespace lsqca
