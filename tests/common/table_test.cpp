#include "common/table.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace lsqca {
namespace {

TEST(TextTable, RejectsEmptyHeaders)
{
    EXPECT_THROW(TextTable({}), ConfigError);
}

TEST(TextTable, RejectsArityMismatch)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), ConfigError);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    const std::string out = t.render("demo");
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Header rule present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecials)
{
    TextTable t({"x"});
    t.addRow({"plain"});
    t.addRow({"has,comma"});
    t.addRow({"has\"quote"});
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("plain\n"), std::string::npos);
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::num(0.875, 3), "0.875");
}

TEST(TextTable, RowAndColumnCounts)
{
    TextTable t({"a", "b", "c"});
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTable, WriteCsvRejectsBadPath)
{
    TextTable t({"a"});
    EXPECT_THROW(t.writeCsv("/nonexistent_dir_xyz/file.csv"), ConfigError);
}

} // namespace
} // namespace lsqca
