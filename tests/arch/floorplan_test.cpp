#include "arch/floorplan.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace lsqca {
namespace {

TEST(Floorplan, BankCapacityDealsRoundRobin)
{
    EXPECT_EQ(bankCapacity(10, 1, 0), 10);
    EXPECT_EQ(bankCapacity(10, 4, 0), 3);
    EXPECT_EQ(bankCapacity(10, 4, 1), 3);
    EXPECT_EQ(bankCapacity(10, 4, 2), 2);
    EXPECT_EQ(bankCapacity(10, 4, 3), 2);
    EXPECT_THROW(bankCapacity(10, 2, 2), ConfigError);
}

TEST(Floorplan, MultiplierLineSamMatchesPaper)
{
    // Paper Sec. VI-B: line SAM achieves ~400/462 = 87% for the
    // 400-qubit multiplier.
    ArchConfig cfg;
    cfg.sam = SamKind::Line;
    const FloorplanStats stats = floorplanStats(cfg, 400, 0);
    EXPECT_EQ(stats.samCells, 420);   // 20x20 data + 20-cell scan row
    EXPECT_EQ(stats.crCells, 42);     // 2 columns x 21
    EXPECT_EQ(stats.totalCells, 462);
    EXPECT_NEAR(stats.density(), 400.0 / 462.0, 1e-12);
    EXPECT_NEAR(stats.density(), 0.87, 0.01);
}

TEST(Floorplan, MultiplierPointSamNearFullDensity)
{
    ArchConfig cfg;
    cfg.sam = SamKind::Point;
    const FloorplanStats stats = floorplanStats(cfg, 400, 0);
    EXPECT_EQ(stats.samCells, 401);
    EXPECT_EQ(stats.crCells, 6);
    EXPECT_NEAR(stats.density(), 400.0 / 407.0, 1e-12);
    EXPECT_GT(stats.density(), 0.98);
}

TEST(Floorplan, ConventionalIsHalfDensity)
{
    ArchConfig cfg;
    cfg.sam = SamKind::Conventional;
    const FloorplanStats stats = floorplanStats(cfg, 123, 123);
    EXPECT_EQ(stats.totalCells, 246);
    EXPECT_DOUBLE_EQ(stats.density(), 0.5);
}

TEST(Floorplan, FullHybridEqualsConventional)
{
    ArchConfig cfg;
    cfg.sam = SamKind::Line;
    cfg.hybridFraction = 1.0;
    const FloorplanStats stats = floorplanStats(cfg, 200, 200);
    EXPECT_EQ(stats.samCells, 0);
    EXPECT_EQ(stats.crCells, 0);
    EXPECT_EQ(stats.totalCells, 400);
    EXPECT_DOUBLE_EQ(stats.density(), 0.5);
}

TEST(Floorplan, HybridDensityInterpolates)
{
    ArchConfig cfg;
    cfg.sam = SamKind::Point;
    const double d0 = floorplanStats(cfg, 400, 0).density();
    const double d_half = floorplanStats(cfg, 400, 200).density();
    const double d1 = floorplanStats(cfg, 400, 400).density();
    EXPECT_GT(d0, d_half);
    EXPECT_GT(d_half, d1);
    EXPECT_DOUBLE_EQ(d1, 0.5);
}

TEST(Floorplan, MoreBanksNeverRaiseLineDensity)
{
    ArchConfig one;
    one.sam = SamKind::Line;
    one.banks = 1;
    ArchConfig four = one;
    four.banks = 4;
    const double d1 = floorplanStats(one, 400, 0).density();
    const double d4 = floorplanStats(four, 400, 0).density();
    EXPECT_LE(d4, d1 + 1e-12);
}

TEST(Floorplan, SecondPointBankCostsLittle)
{
    ArchConfig one;
    one.sam = SamKind::Point;
    ArchConfig two = one;
    two.banks = 2;
    const auto s1 = floorplanStats(one, 400, 0);
    const auto s2 = floorplanStats(two, 400, 0);
    EXPECT_EQ(s2.samCells, 402); // one extra scan cell
    EXPECT_LT(s2.density(), s1.density());
    EXPECT_GT(s2.density(), 0.97);
}

TEST(Floorplan, PointBankShapeIsSquarest)
{
    ArchConfig cfg;
    cfg.sam = SamKind::Point;
    const BankShape s = bankShape(cfg, 399, 0); // 400 cells
    EXPECT_EQ(s.rows, 20);
    EXPECT_EQ(s.cols, 20);
    EXPECT_GE(static_cast<std::int64_t>(s.rows) * s.cols,
              s.capacity + 1);
}

TEST(Floorplan, LineBankShapeAddsScanRow)
{
    ArchConfig cfg;
    cfg.sam = SamKind::Line;
    const BankShape s = bankShape(cfg, 400, 0);
    EXPECT_EQ(s.rows, 21); // 20 data rows + scan row
    EXPECT_EQ(s.cols, 20);
    // L x (L+1) form when L*L is too small.
    const BankShape t = bankShape(cfg, 20, 0);
    EXPECT_EQ(t.rows, 5); // 4x5 data + scan
    EXPECT_EQ(t.cols, 5);
}

TEST(Floorplan, DensityApproachesOneAsymptotically)
{
    ArchConfig cfg;
    cfg.sam = SamKind::Point;
    const double small = floorplanStats(cfg, 100, 0).density();
    const double large = floorplanStats(cfg, 10000, 0).density();
    EXPECT_GT(large, small);
    EXPECT_GT(large, 0.999);
}

TEST(Floorplan, CatalogueMatchesFig7)
{
    const auto entries = floorplanCatalogue();
    ASSERT_GE(entries.size(), 4u);
    EXPECT_DOUBLE_EQ(entries[0].density, 0.25);
    EXPECT_DOUBLE_EQ(entries[1].density, 4.0 / 9.0);
    EXPECT_DOUBLE_EQ(entries[2].density, 0.5);
    EXPECT_DOUBLE_EQ(entries[3].density, 2.0 / 3.0);
    // Unit-time access for the first three floorplans.
    EXPECT_EQ(entries[0].accessBeats, 1);
    EXPECT_EQ(entries[1].accessBeats, 1);
    EXPECT_EQ(entries[2].accessBeats, 1);
    EXPECT_GT(entries[3].accessBeats, 1);
}

TEST(Floorplan, ConventionalQubitValidation)
{
    ArchConfig cfg;
    EXPECT_THROW(floorplanStats(cfg, 10, 11), ConfigError);
    EXPECT_THROW(floorplanStats(cfg, 10, -1), ConfigError);
}

} // namespace
} // namespace lsqca
