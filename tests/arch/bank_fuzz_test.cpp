#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "arch/line_sam.h"
#include "arch/point_sam.h"
#include "common/rng.h"

namespace lsqca {
namespace {

std::vector<QubitId>
iota(std::int32_t n)
{
    std::vector<QubitId> vars(static_cast<std::size_t>(n));
    std::iota(vars.begin(), vars.end(), 0);
    return vars;
}

/**
 * Random op soup on a point-SAM bank: load/store/fetch/seek in legal
 * orders. Invariants: costs non-negative, occupancy conserved, every
 * qubit placed exactly once, positions in range.
 */
class PointSamFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PointSamFuzz, InvariantsHoldUnderRandomOps)
{
    const std::int32_t n = 48;
    Rng rng(GetParam());
    PointSamBank bank(n, Latencies{});
    bank.placeInitial(iota(n));
    std::set<QubitId> in_cr; // qubits currently loaded out

    for (int step = 0; step < 2000; ++step) {
        const auto q = static_cast<QubitId>(rng.below(n));
        const bool resident = bank.holds(q);
        switch (rng.below(4)) {
          case 0:
            if (resident && in_cr.size() < 2) {
                ASSERT_GE(bank.loadCost(q), 1);
                bank.commitLoad(q);
                in_cr.insert(q);
            }
            break;
          case 1:
            if (!resident && in_cr.count(q)) {
                const bool locality = rng.chance(0.7);
                ASSERT_GE(bank.storeCost(q, locality), 1);
                bank.commitStore(q, locality);
                in_cr.erase(q);
            }
            break;
          case 2:
            if (resident) {
                ASSERT_GE(bank.seekCost(q), 0);
                bank.commitSeek(q);
            }
            break;
          default:
            if (resident) {
                ASSERT_GE(bank.fetchToPortCost(q), 0);
                bank.commitFetchToPort(q);
                ASSERT_TRUE(bank.holds(q));
            }
            break;
        }
        ASSERT_EQ(bank.occupancy(),
                  n - static_cast<std::int32_t>(in_cr.size()));
        // Scan position stays within the grid bounds.
        ASSERT_GE(bank.scanPosition().row, 0);
        ASSERT_LT(bank.scanPosition().row, bank.rows());
        ASSERT_GE(bank.scanPosition().col, 0);
        ASSERT_LT(bank.scanPosition().col, bank.cols());
    }
    // Every out-qubit can be stored back.
    for (QubitId q : in_cr)
        bank.commitStore(q, true);
    ASSERT_EQ(bank.occupancy(), n);
    for (QubitId q = 0; q < n; ++q)
        ASSERT_TRUE(bank.holds(q));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointSamFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

class LineSamFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LineSamFuzz, InvariantsHoldUnderRandomOps)
{
    const std::int32_t n = 50;
    Rng rng(GetParam());
    LineSamBank bank(n, Latencies{});
    bank.placeInitial(iota(n));
    std::set<QubitId> in_cr;

    for (int step = 0; step < 2000; ++step) {
        const auto q = static_cast<QubitId>(rng.below(n));
        const bool resident = bank.holds(q);
        switch (rng.below(4)) {
          case 0:
            if (resident && in_cr.size() < 2) {
                ASSERT_GE(bank.loadCost(q), 3); // step-in + long move
                bank.commitLoad(q);
                in_cr.insert(q);
            }
            break;
          case 1:
            if (!resident && in_cr.count(q)) {
                const bool locality = rng.chance(0.7);
                ASSERT_GE(bank.storeCost(q, locality), 3);
                bank.commitStore(q, locality);
                in_cr.erase(q);
            }
            break;
          case 2:
            if (resident) {
                ASSERT_GE(bank.alignCost(q), 0);
                bank.commitAlign(q);
                ASSERT_EQ(bank.alignCost(q), 0);
            }
            break;
          default:
            if (resident) {
                const auto other = static_cast<QubitId>(rng.below(n));
                if (other != q && bank.holds(other) &&
                    bank.canDirectSurgery(q, other)) {
                    ASSERT_GE(bank.directSurgeryCost(q, other), 0);
                    bank.commitDirectSurgery(q, other);
                }
            }
            break;
        }
        ASSERT_EQ(bank.occupancy(),
                  n - static_cast<std::int32_t>(in_cr.size()));
        ASSERT_GE(bank.gap(), 0);
        ASSERT_LE(bank.gap(), bank.dataRows());
    }
    for (QubitId q : in_cr)
        bank.commitStore(q, true);
    ASSERT_EQ(bank.occupancy(), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineSamFuzz,
                         ::testing::Values(66, 77, 88, 99, 111));

TEST(BankFuzz, PointBankSurvivesFullChurn)
{
    // Load and locality-store every qubit once; afterwards the hot set
    // sits near the port and total occupancy is intact.
    const std::int32_t n = 35;
    PointSamBank bank(n, Latencies{});
    bank.placeInitial(iota(n));
    std::int64_t first_total = 0;
    for (QubitId q = 0; q < n; ++q)
        first_total += bank.loadCost(q);
    for (QubitId q = 0; q < n; ++q) {
        bank.commitLoad(q);
        bank.commitStore(q, true);
    }
    std::int64_t second_total = 0;
    for (QubitId q = 0; q < n; ++q)
        second_total += bank.loadCost(q);
    EXPECT_EQ(bank.occupancy(), n);
    // The churned layout is no worse on aggregate: everything was
    // stored through the port stack.
    EXPECT_LE(second_total, first_total * 2);
}

TEST(BankFuzz, LineBankSequentialChurnKeepsRowsCompact)
{
    const std::int32_t n = 49; // 7x7
    LineSamBank bank(n, Latencies{});
    bank.placeInitial(iota(n));
    for (QubitId q = 0; q < n; ++q) {
        bank.commitLoad(q);
        bank.commitStore(q, true);
        ASSERT_EQ(bank.occupancy(), n);
    }
    // All qubits remain accounted for and alignable.
    for (QubitId q = 0; q < n; ++q) {
        ASSERT_TRUE(bank.holds(q));
        ASSERT_GE(bank.alignCost(q), 0);
    }
}

} // namespace
} // namespace lsqca
