#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <set>
#include <string>

#include "arch/line_sam.h"
#include "arch/point_sam.h"
#include "common/rng.h"
#include "geom/grid.h"
#include "reference/reference_banks.h"

namespace lsqca {
namespace {

std::vector<QubitId>
iota(std::int32_t n)
{
    std::vector<QubitId> vars(static_cast<std::size_t>(n));
    std::iota(vars.begin(), vars.end(), 0);
    return vars;
}

/**
 * Seed-set size for the differential suites. The default (8 per bank
 * kind) keeps the discovered ctest run CI-sized; the fuzz-labeled
 * ctest entry re-runs the same suites with LSQCA_FUZZ_SEEDS=64 (see
 * CMakeLists.txt and the CI `ctest -L fuzz` step).
 */
int
fuzzSeedCount()
{
    if (const char *env = std::getenv("LSQCA_FUZZ_SEEDS")) {
        const int n = std::atoi(env);
        if (n >= 1 && n <= 65536)
            return n;
    }
    return 8;
}

/** Distinct, well-mixed 64-bit seed for differential round @p index. */
std::uint64_t
differentialSeed(int index)
{
    return 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
}

/**
 * Per-seed bank configuration: capacities sweep the small/odd shapes
 * (rectangular point grids, L x (L+1) line grids, capacity 2 edge
 * cases) and a third of the seeds run with non-default latencies so
 * cost agreement is checked beyond the paper constants.
 */
Latencies
latenciesForSeed(Rng &rng)
{
    Latencies lat;
    if (rng.chance(1.0 / 3.0)) {
        lat.move = static_cast<std::int32_t>(rng.between(1, 3));
        lat.longMove = static_cast<std::int32_t>(rng.between(1, 5));
        lat.pickDiagonal1 = static_cast<std::int32_t>(rng.between(4, 8));
        lat.pickStraight1 = static_cast<std::int32_t>(rng.between(3, 7));
        lat.pickDiagonal2 = static_cast<std::int32_t>(rng.between(2, 6));
        lat.pickStraight2 = static_cast<std::int32_t>(rng.between(1, 5));
    }
    return lat;
}

/**
 * Random op soup on a point-SAM bank: load/store/fetch/seek in legal
 * orders. Invariants: costs non-negative, occupancy conserved, every
 * qubit placed exactly once, positions in range.
 */
class PointSamFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PointSamFuzz, InvariantsHoldUnderRandomOps)
{
    const std::int32_t n = 48;
    Rng rng(GetParam());
    PointSamBank bank(n, Latencies{});
    bank.placeInitial(iota(n));
    std::set<QubitId> in_cr; // qubits currently loaded out

    for (int step = 0; step < 2000; ++step) {
        const auto q = static_cast<QubitId>(rng.below(n));
        const bool resident = bank.holds(q);
        switch (rng.below(4)) {
          case 0:
            if (resident && in_cr.size() < 2) {
                ASSERT_GE(bank.loadCost(q), 1);
                bank.commitLoad(q);
                in_cr.insert(q);
            }
            break;
          case 1:
            if (!resident && in_cr.count(q)) {
                const bool locality = rng.chance(0.7);
                ASSERT_GE(bank.storeCost(q, locality), 1);
                bank.commitStore(q, locality);
                in_cr.erase(q);
            }
            break;
          case 2:
            if (resident) {
                ASSERT_GE(bank.seekCost(q), 0);
                bank.commitSeek(q);
            }
            break;
          default:
            if (resident) {
                ASSERT_GE(bank.fetchToPortCost(q), 0);
                bank.commitFetchToPort(q);
                ASSERT_TRUE(bank.holds(q));
            }
            break;
        }
        ASSERT_EQ(bank.occupancy(),
                  n - static_cast<std::int32_t>(in_cr.size()));
        // Scan position stays within the grid bounds.
        ASSERT_GE(bank.scanPosition().row, 0);
        ASSERT_LT(bank.scanPosition().row, bank.rows());
        ASSERT_GE(bank.scanPosition().col, 0);
        ASSERT_LT(bank.scanPosition().col, bank.cols());
    }
    // Every out-qubit can be stored back.
    for (QubitId q : in_cr)
        bank.commitStore(q, true);
    ASSERT_EQ(bank.occupancy(), n);
    for (QubitId q = 0; q < n; ++q)
        ASSERT_TRUE(bank.holds(q));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointSamFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

class LineSamFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LineSamFuzz, InvariantsHoldUnderRandomOps)
{
    const std::int32_t n = 50;
    Rng rng(GetParam());
    LineSamBank bank(n, Latencies{});
    bank.placeInitial(iota(n));
    std::set<QubitId> in_cr;

    for (int step = 0; step < 2000; ++step) {
        const auto q = static_cast<QubitId>(rng.below(n));
        const bool resident = bank.holds(q);
        switch (rng.below(4)) {
          case 0:
            if (resident && in_cr.size() < 2) {
                ASSERT_GE(bank.loadCost(q), 3); // step-in + long move
                bank.commitLoad(q);
                in_cr.insert(q);
            }
            break;
          case 1:
            if (!resident && in_cr.count(q)) {
                const bool locality = rng.chance(0.7);
                ASSERT_GE(bank.storeCost(q, locality), 3);
                bank.commitStore(q, locality);
                in_cr.erase(q);
            }
            break;
          case 2:
            if (resident) {
                ASSERT_GE(bank.alignCost(q), 0);
                bank.commitAlign(q);
                ASSERT_EQ(bank.alignCost(q), 0);
            }
            break;
          default:
            if (resident) {
                const auto other = static_cast<QubitId>(rng.below(n));
                if (other != q && bank.holds(other) &&
                    bank.canDirectSurgery(q, other)) {
                    ASSERT_GE(bank.directSurgeryCost(q, other), 0);
                    bank.commitDirectSurgery(q, other);
                }
            }
            break;
        }
        ASSERT_EQ(bank.occupancy(),
                  n - static_cast<std::int32_t>(in_cr.size()));
        ASSERT_GE(bank.gap(), 0);
        ASSERT_LE(bank.gap(), bank.dataRows());
    }
    for (QubitId q : in_cr)
        bank.commitStore(q, true);
    ASSERT_EQ(bank.occupancy(), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineSamFuzz,
                         ::testing::Values(66, 77, 88, 99, 111));

TEST(BankFuzz, PointBankSurvivesFullChurn)
{
    // Load and locality-store every qubit once; afterwards the hot set
    // sits near the port and total occupancy is intact.
    const std::int32_t n = 35;
    PointSamBank bank(n, Latencies{});
    bank.placeInitial(iota(n));
    std::int64_t first_total = 0;
    for (QubitId q = 0; q < n; ++q)
        first_total += bank.loadCost(q);
    for (QubitId q = 0; q < n; ++q) {
        bank.commitLoad(q);
        bank.commitStore(q, true);
    }
    std::int64_t second_total = 0;
    for (QubitId q = 0; q < n; ++q)
        second_total += bank.loadCost(q);
    EXPECT_EQ(bank.occupancy(), n);
    // The churned layout is no worse on aggregate: everything was
    // stored through the port stack.
    EXPECT_LE(second_total, first_total * 2);
}

TEST(BankFuzz, LineBankSequentialChurnKeepsRowsCompact)
{
    const std::int32_t n = 49; // 7x7
    LineSamBank bank(n, Latencies{});
    bank.placeInitial(iota(n));
    for (QubitId q = 0; q < n; ++q) {
        bank.commitLoad(q);
        bank.commitStore(q, true);
        ASSERT_EQ(bank.occupancy(), n);
    }
    // All qubits remain accounted for and alignable.
    for (QubitId q = 0; q < n; ++q) {
        ASSERT_TRUE(bank.holds(q));
        ASSERT_GE(bank.alignCost(q), 0);
    }
}

// ---- differential harness: optimized banks vs scan-based oracles ----------
//
// The optimized banks (incremental occupancy index + memoized
// destination lookups) must be bit-identical to the reference oracles
// in tests/arch/reference — every cost, every destination, every piece
// of scan state, at every step of a random op soup. A mismatch prints
// the seed and step so the failure replays deterministically.

/** Full-layout agreement: every resident qubit sits in the same cell. */
template <typename Bank, typename RefBank>
void
expectSameLayout(const Bank &opt, const RefBank &ref, std::int32_t n,
                 std::uint64_t seed, int step)
{
    ASSERT_EQ(opt.occupancy(), ref.occupancy())
        << "seed " << seed << " step " << step;
    for (QubitId q = 0; q < n; ++q) {
        ASSERT_EQ(opt.holds(q), ref.holds(q))
            << "seed " << seed << " step " << step << " qubit " << q;
        if (opt.holds(q))
            ASSERT_EQ(opt.positionOf(q), ref.positionOf(q))
                << "seed " << seed << " step " << step << " qubit " << q;
    }
}

class PointSamDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(PointSamDifferential, BitIdenticalToReferenceOracle)
{
    const std::uint64_t seed = differentialSeed(GetParam());
    Rng rng(seed);
    const auto n = static_cast<std::int32_t>(rng.between(2, 120));
    const Latencies lat = latenciesForSeed(rng);
    // Sometimes under-fill the bank: extra holes change pickCost's
    // two-empty discount and every nearest-empty query.
    const auto placed = static_cast<std::int32_t>(
        n - rng.below(static_cast<std::uint64_t>(std::min(n - 1, 3)) + 1));
    const std::size_t cr_limit = 1 + rng.below(4);

    PointSamBank opt(n, lat);
    reference::ReferencePointSamBank ref(n, lat);
    opt.placeInitial(iota(placed));
    ref.placeInitial(iota(placed));
    std::set<QubitId> in_cr;

    for (int step = 0; step < 1200; ++step) {
        const auto q = static_cast<QubitId>(rng.below(
            static_cast<std::uint64_t>(placed)));
        ASSERT_EQ(opt.holds(q), ref.holds(q))
            << "seed " << seed << " step " << step;
        const bool resident = opt.holds(q);
        switch (rng.below(4)) {
          case 0:
            if (resident && in_cr.size() < cr_limit) {
                ASSERT_EQ(opt.loadCost(q), ref.loadCost(q))
                    << "seed " << seed << " step " << step;
                opt.commitLoad(q);
                ref.commitLoad(q);
                in_cr.insert(q);
            }
            break;
          case 1:
            if (!resident && in_cr.count(q)) {
                const bool locality = rng.chance(0.5);
                ASSERT_EQ(opt.storeCost(q, locality),
                          ref.storeCost(q, locality))
                    << "seed " << seed << " step " << step
                    << " locality " << locality;
                ASSERT_EQ(opt.commitStore(q, locality),
                          ref.commitStore(q, locality))
                    << "seed " << seed << " step " << step
                    << " locality " << locality;
                in_cr.erase(q);
            }
            break;
          case 2:
            if (resident) {
                ASSERT_EQ(opt.seekCost(q), ref.seekCost(q))
                    << "seed " << seed << " step " << step;
                opt.commitSeek(q);
                ref.commitSeek(q);
            }
            break;
          default:
            if (resident) {
                ASSERT_EQ(opt.fetchToPortCost(q), ref.fetchToPortCost(q))
                    << "seed " << seed << " step " << step;
                opt.commitFetchToPort(q);
                ref.commitFetchToPort(q);
            }
            break;
        }
        ASSERT_EQ(opt.scanPosition(), ref.scanPosition())
            << "seed " << seed << " step " << step;
        ASSERT_EQ(opt.occupancy(), ref.occupancy())
            << "seed " << seed << " step " << step;
        if (step % 64 == 0)
            expectSameLayout(opt, ref, placed, seed, step);
    }
    for (QubitId q : in_cr) {
        ASSERT_EQ(opt.storeCost(q, true), ref.storeCost(q, true));
        ASSERT_EQ(opt.commitStore(q, true), ref.commitStore(q, true));
    }
    expectSameLayout(opt, ref, placed, seed, -1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointSamDifferential,
                         ::testing::Range(0, fuzzSeedCount()));

class LineSamDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(LineSamDifferential, BitIdenticalToReferenceOracle)
{
    const std::uint64_t seed = differentialSeed(GetParam()) ^ 0x5ca1ab1eULL;
    Rng rng(seed);
    const auto n = static_cast<std::int32_t>(rng.between(2, 120));
    const Latencies lat = latenciesForSeed(rng);
    const auto placed = static_cast<std::int32_t>(
        n - rng.below(static_cast<std::uint64_t>(std::min(n - 1, 3)) + 1));
    const std::size_t cr_limit = 1 + rng.below(4);

    LineSamBank opt(n, lat);
    reference::ReferenceLineSamBank ref(n, lat);
    opt.placeInitial(iota(placed));
    ref.placeInitial(iota(placed));
    std::set<QubitId> in_cr;

    for (int step = 0; step < 1200; ++step) {
        const auto q = static_cast<QubitId>(rng.below(
            static_cast<std::uint64_t>(placed)));
        ASSERT_EQ(opt.holds(q), ref.holds(q))
            << "seed " << seed << " step " << step;
        const bool resident = opt.holds(q);
        switch (rng.below(5)) {
          case 0:
            if (resident && in_cr.size() < cr_limit) {
                ASSERT_EQ(opt.loadCost(q), ref.loadCost(q))
                    << "seed " << seed << " step " << step;
                opt.commitLoad(q);
                ref.commitLoad(q);
                in_cr.insert(q);
            }
            break;
          case 1:
            if (!resident && in_cr.count(q)) {
                const bool locality = rng.chance(0.5);
                ASSERT_EQ(opt.storeCost(q, locality),
                          ref.storeCost(q, locality))
                    << "seed " << seed << " step " << step
                    << " locality " << locality;
                ASSERT_EQ(opt.commitStore(q, locality),
                          ref.commitStore(q, locality))
                    << "seed " << seed << " step " << step
                    << " locality " << locality;
                in_cr.erase(q);
            }
            break;
          case 2:
            if (resident) {
                ASSERT_EQ(opt.alignCost(q), ref.alignCost(q))
                    << "seed " << seed << " step " << step;
                opt.commitAlign(q);
                ref.commitAlign(q);
            }
            break;
          case 3: {
            const auto row = static_cast<std::int32_t>(
                rng.below(static_cast<std::uint64_t>(opt.dataRows())));
            ASSERT_EQ(opt.alignCostToRow(row), ref.alignCostToRow(row))
                << "seed " << seed << " step " << step << " row " << row;
            break;
          }
          default:
            if (resident) {
                const auto other = static_cast<QubitId>(rng.below(
                    static_cast<std::uint64_t>(placed)));
                if (other != q && opt.holds(other)) {
                    ASSERT_EQ(opt.canDirectSurgery(q, other),
                              ref.canDirectSurgery(q, other))
                        << "seed " << seed << " step " << step;
                    if (opt.canDirectSurgery(q, other)) {
                        ASSERT_EQ(opt.directSurgeryCost(q, other),
                                  ref.directSurgeryCost(q, other))
                            << "seed " << seed << " step " << step;
                        opt.commitDirectSurgery(q, other);
                        ref.commitDirectSurgery(q, other);
                    }
                }
            }
            break;
        }
        ASSERT_EQ(opt.gap(), ref.gap())
            << "seed " << seed << " step " << step;
        ASSERT_EQ(opt.occupancy(), ref.occupancy())
            << "seed " << seed << " step " << step;
        if (step % 64 == 0)
            expectSameLayout(opt, ref, placed, seed, step);
    }
    for (QubitId q : in_cr) {
        ASSERT_EQ(opt.storeCost(q, true), ref.storeCost(q, true));
        ASSERT_EQ(opt.commitStore(q, true), ref.commitStore(q, true));
    }
    expectSameLayout(opt, ref, placed, seed, -1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineSamDifferential,
                         ::testing::Range(0, fuzzSeedCount()));

/**
 * Grid-level differential: the incremental OccupancyIndex behind
 * OccupancyGrid must answer nearestEmpty / nearestEmptyInRow /
 * emptyCells / makeRoomAt exactly like the reference scan for random
 * occupancy patterns and random targets (including targets outside
 * the grid, which the scan handles by plain distance).
 */
class GridDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(GridDifferential, IndexMatchesReferenceScan)
{
    const std::uint64_t seed = differentialSeed(GetParam()) ^ 0x0ddba11ULL;
    Rng rng(seed);
    const auto rows = static_cast<std::int32_t>(rng.between(1, 9));
    const auto cols = static_cast<std::int32_t>(rng.between(1, 9));
    OccupancyGrid opt(rows, cols);
    reference::ReferenceOccupancyGrid ref(rows, cols);
    QubitId next_q = 0;

    for (int step = 0; step < 600; ++step) {
        const Coord target{
            static_cast<std::int32_t>(rng.between(-2, rows + 1)),
            static_cast<std::int32_t>(rng.between(-2, cols + 1))};
        switch (rng.below(5)) {
          case 0: { // place at a random empty cell
            const auto empties = ref.emptyCells();
            if (!empties.empty()) {
                const Coord c = empties[rng.below(empties.size())];
                opt.place(next_q, c);
                ref.place(next_q, c);
                ++next_q;
            }
            break;
          }
          case 1: { // remove a random resident qubit
            if (ref.occupiedCount() > 0) {
                QubitId q;
                do {
                    q = static_cast<QubitId>(rng.below(
                        static_cast<std::uint64_t>(next_q)));
                } while (!ref.find(q).has_value());
                ASSERT_EQ(opt.remove(q), ref.remove(q))
                    << "seed " << seed << " step " << step;
            }
            break;
          }
          case 2: { // makeRoomAt an in-grid cell
            if (ref.emptyCount() > 0) {
                const Coord dest{
                    static_cast<std::int32_t>(rng.below(
                        static_cast<std::uint64_t>(rows))),
                    static_cast<std::int32_t>(rng.below(
                        static_cast<std::uint64_t>(cols)))};
                ASSERT_EQ(opt.makeRoomAt(dest), ref.makeRoomAt(dest))
                    << "seed " << seed << " step " << step;
            }
            break;
          }
          case 3:
            ASSERT_EQ(opt.nearestEmpty(target), ref.nearestEmpty(target))
                << "seed " << seed << " step " << step << " target "
                << target;
            break;
          default: {
            const auto row = static_cast<std::int32_t>(
                rng.below(static_cast<std::uint64_t>(rows)));
            ASSERT_EQ(opt.nearestEmptyInRow(row, target.col),
                      ref.nearestEmptyInRow(row, target.col))
                << "seed " << seed << " step " << step << " row " << row
                << " target_col " << target.col;
            break;
          }
        }
        ASSERT_EQ(opt.occupiedCount(), ref.occupiedCount())
            << "seed " << seed << " step " << step;
        if (step % 64 == 0)
            ASSERT_EQ(opt.emptyCells(), ref.emptyCells())
                << "seed " << seed << " step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridDifferential,
                         ::testing::Range(0, fuzzSeedCount()));

} // namespace
} // namespace lsqca
