#ifndef LSQCA_TESTS_ARCH_REFERENCE_REFERENCE_BANKS_H
#define LSQCA_TESTS_ARCH_REFERENCE_REFERENCE_BANKS_H

/**
 * @file
 * Scan-based reference oracles for the SAM bank cost models.
 *
 * These are deliberate copies of the pre-index implementations: a
 * ReferenceOccupancyGrid whose nearestEmpty/nearestEmptyInRow are full
 * O(rows * cols) row-major scans with a strict "closer than best"
 * comparison, and ReferencePointSamBank / ReferenceLineSamBank that
 * recompute every destination from scratch (no memo between cost and
 * commit). They define the behavioral contract the optimized banks in
 * src/arch must reproduce bit-for-bit: the differential harness in
 * tests/arch/bank_fuzz_test.cpp drives an optimized bank and its
 * oracle through identical op soups and asserts equal costs,
 * destinations, and scan state at every step.
 *
 * Keep these naive. Do not "fix" or optimize them alongside src/arch —
 * an intentional cost-model change must update both sides AND the
 * golden tables in point_sam_test.cpp / line_sam_test.cpp.
 */

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "arch/config.h"
#include "geom/coord.h"
#include "geom/grid.h"

namespace lsqca::reference {

/** Dense occupancy grid with full-scan nearest-empty queries. */
class ReferenceOccupancyGrid
{
  public:
    ReferenceOccupancyGrid(std::int32_t rows, std::int32_t cols);

    std::int32_t rows() const { return rows_; }
    std::int32_t cols() const { return cols_; }
    std::int32_t cellCount() const { return rows_ * cols_; }
    bool contains(const Coord &c) const;
    QubitId at(const Coord &c) const;
    bool isEmptyCell(const Coord &c) const { return at(c) == kNoQubit; }
    std::int32_t occupiedCount() const { return occupied_; }
    std::int32_t emptyCount() const { return cellCount() - occupied_; }

    void place(QubitId q, const Coord &c);
    Coord remove(QubitId q);
    void relocate(QubitId q, const Coord &to);
    std::optional<Coord> find(QubitId q) const;
    Coord locate(QubitId q) const;

    std::optional<Coord> nearestEmpty(const Coord &target) const;
    std::optional<Coord> nearestEmptyInRow(std::int32_t row,
                                           std::int32_t target_col) const;
    std::vector<Coord> emptyCells() const;
    std::int32_t makeRoomAt(const Coord &dest);

  private:
    std::size_t index(const Coord &c) const;

    std::int32_t rows_;
    std::int32_t cols_;
    std::int32_t occupied_ = 0;
    std::vector<QubitId> cells_;
    std::unordered_map<QubitId, Coord> positions_;
};

/** Scan-based oracle for PointSamBank; same public surface. */
class ReferencePointSamBank
{
  public:
    ReferencePointSamBank(std::int32_t capacity, const Latencies &lat);

    std::int32_t capacity() const { return capacity_; }
    std::int32_t occupancy() const { return grid_.occupiedCount(); }
    std::int32_t rows() const { return grid_.rows(); }
    std::int32_t cols() const { return grid_.cols(); }
    Coord scanPosition() const { return scan_; }
    Coord portAnchor() const { return port_; }
    bool holds(QubitId q) const { return grid_.find(q).has_value(); }
    Coord positionOf(QubitId q) const { return grid_.locate(q); }

    void placeInitial(const std::vector<QubitId> &vars);
    std::int64_t loadCost(QubitId q) const;
    void commitLoad(QubitId q);
    std::int64_t storeCost(QubitId q, bool locality) const;
    Coord commitStore(QubitId q, bool locality);
    std::int64_t seekCost(QubitId q) const;
    void commitSeek(QubitId q);
    std::int64_t fetchToPortCost(QubitId q) const;
    void commitFetchToPort(QubitId q);

  private:
    Coord homeOrNearest(QubitId q) const;
    Coord storeDestination(QubitId q, bool locality) const;
    std::int64_t pickCost(const Coord &from, const Coord &to) const;

    std::int32_t capacity_;
    Latencies lat_;
    ReferenceOccupancyGrid grid_;
    Coord scan_;
    Coord port_;
    std::unordered_map<QubitId, Coord> homes_;
};

/** Scan-based oracle for LineSamBank; same public surface. */
class ReferenceLineSamBank
{
  public:
    ReferenceLineSamBank(std::int32_t capacity, const Latencies &lat);

    std::int32_t capacity() const { return capacity_; }
    std::int32_t occupancy() const { return grid_.occupiedCount(); }
    std::int32_t dataRows() const { return grid_.rows(); }
    std::int32_t cols() const { return grid_.cols(); }
    std::int32_t gap() const { return gap_; }
    bool holds(QubitId q) const { return grid_.find(q).has_value(); }
    Coord positionOf(QubitId q) const { return grid_.locate(q); }

    void placeInitial(const std::vector<QubitId> &vars);
    std::int64_t alignCostToRow(std::int32_t row) const;
    std::int64_t alignCost(QubitId q) const;
    void commitAlign(QubitId q);
    std::int64_t loadCost(QubitId q) const;
    void commitLoad(QubitId q);
    std::int64_t storeCost(QubitId q, bool locality) const;
    Coord commitStore(QubitId q, bool locality);
    bool canDirectSurgery(QubitId a, QubitId b) const;
    std::int64_t directSurgeryCost(QubitId a, QubitId b) const;
    void commitDirectSurgery(QubitId a, QubitId b);

  private:
    struct StorePlan
    {
        Coord dest;
        std::int64_t shifts;
    };
    StorePlan storePlan(QubitId q, bool locality) const;
    std::int32_t nearerGapSide(std::int32_t row) const;

    std::int32_t capacity_;
    Latencies lat_;
    ReferenceOccupancyGrid grid_;
    std::int32_t gap_ = 0;
    std::unordered_map<QubitId, Coord> homes_;
};

} // namespace lsqca::reference

#endif // LSQCA_TESTS_ARCH_REFERENCE_REFERENCE_BANKS_H
