#include "reference/reference_banks.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace lsqca::reference {

// ---- ReferenceOccupancyGrid (the seed's scan-based grid) -------------------

ReferenceOccupancyGrid::ReferenceOccupancyGrid(std::int32_t rows,
                                               std::int32_t cols)
    : rows_(rows), cols_(cols),
      cells_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
             kNoQubit)
{
    LSQCA_REQUIRE(rows > 0 && cols > 0,
                  "ReferenceOccupancyGrid dimensions must be positive");
}

bool
ReferenceOccupancyGrid::contains(const Coord &c) const
{
    return c.row >= 0 && c.row < rows_ && c.col >= 0 && c.col < cols_;
}

std::size_t
ReferenceOccupancyGrid::index(const Coord &c) const
{
    LSQCA_ASSERT(contains(c), "grid coordinate out of range");
    return static_cast<std::size_t>(c.row) * static_cast<std::size_t>(cols_)
           + static_cast<std::size_t>(c.col);
}

QubitId
ReferenceOccupancyGrid::at(const Coord &c) const
{
    return cells_[index(c)];
}

void
ReferenceOccupancyGrid::place(QubitId q, const Coord &c)
{
    LSQCA_REQUIRE(q != kNoQubit, "cannot place the sentinel qubit");
    LSQCA_REQUIRE(!positions_.count(q), "qubit already placed");
    auto &cell = cells_[index(c)];
    LSQCA_REQUIRE(cell == kNoQubit, "cell already occupied");
    cell = q;
    positions_.emplace(q, c);
    ++occupied_;
}

Coord
ReferenceOccupancyGrid::remove(QubitId q)
{
    const auto it = positions_.find(q);
    LSQCA_REQUIRE(it != positions_.end(), "qubit not placed");
    const Coord c = it->second;
    cells_[index(c)] = kNoQubit;
    positions_.erase(it);
    --occupied_;
    return c;
}

void
ReferenceOccupancyGrid::relocate(QubitId q, const Coord &to)
{
    auto &dest = cells_[index(to)];
    LSQCA_REQUIRE(dest == kNoQubit, "relocate destination occupied");
    const auto it = positions_.find(q);
    LSQCA_REQUIRE(it != positions_.end(), "qubit not placed");
    cells_[index(it->second)] = kNoQubit;
    dest = q;
    it->second = to;
}

std::optional<Coord>
ReferenceOccupancyGrid::find(QubitId q) const
{
    const auto it = positions_.find(q);
    if (it == positions_.end())
        return std::nullopt;
    return it->second;
}

Coord
ReferenceOccupancyGrid::locate(QubitId q) const
{
    const auto pos = find(q);
    LSQCA_REQUIRE(pos.has_value(), "qubit not placed in grid");
    return *pos;
}

std::optional<Coord>
ReferenceOccupancyGrid::nearestEmpty(const Coord &target) const
{
    // The contract-defining scan: row-major order, strictly-closer test.
    std::optional<Coord> best;
    std::int32_t best_dist = std::numeric_limits<std::int32_t>::max();
    for (std::int32_t r = 0; r < rows_; ++r) {
        for (std::int32_t c = 0; c < cols_; ++c) {
            const Coord cell{r, c};
            if (!isEmptyCell(cell))
                continue;
            const std::int32_t d = manhattan(cell, target);
            if (d < best_dist) {
                best_dist = d;
                best = cell;
            }
        }
    }
    return best;
}

std::optional<Coord>
ReferenceOccupancyGrid::nearestEmptyInRow(std::int32_t row,
                                          std::int32_t target_col) const
{
    LSQCA_REQUIRE(row >= 0 && row < rows_, "row out of range");
    std::optional<Coord> best;
    std::int32_t best_dist = std::numeric_limits<std::int32_t>::max();
    for (std::int32_t c = 0; c < cols_; ++c) {
        const Coord cell{row, c};
        if (!isEmptyCell(cell))
            continue;
        const std::int32_t d = std::abs(c - target_col);
        if (d < best_dist) {
            best_dist = d;
            best = cell;
        }
    }
    return best;
}

std::int32_t
ReferenceOccupancyGrid::makeRoomAt(const Coord &dest)
{
    LSQCA_REQUIRE(contains(dest), "makeRoomAt target out of range");
    if (isEmptyCell(dest))
        return 0;
    const auto hole = nearestEmpty(dest);
    LSQCA_REQUIRE(hole.has_value(), "makeRoomAt on a full grid");
    Coord cur = *hole;
    std::int32_t steps = 0;
    while (!(cur == dest)) {
        Coord next = cur;
        if (cur.row != dest.row)
            next.row += dest.row > cur.row ? 1 : -1;
        else
            next.col += dest.col > cur.col ? 1 : -1;
        const QubitId occupant = at(next);
        if (occupant != kNoQubit)
            relocate(occupant, cur);
        cur = next;
        ++steps;
    }
    return steps;
}

std::vector<Coord>
ReferenceOccupancyGrid::emptyCells() const
{
    std::vector<Coord> out;
    for (std::int32_t r = 0; r < rows_; ++r)
        for (std::int32_t c = 0; c < cols_; ++c)
            if (cells_[static_cast<std::size_t>(r * cols_ + c)] == kNoQubit)
                out.push_back({r, c});
    return out;
}

// ---- ReferencePointSamBank (the seed's point-SAM cost model) ---------------

namespace {

std::int32_t
pointGridRowsFor(std::int32_t capacity)
{
    return static_cast<std::int32_t>(
        std::ceil(std::sqrt(static_cast<double>(capacity + 1))));
}

std::int32_t
pointGridColsFor(std::int32_t capacity, std::int32_t rows)
{
    return static_cast<std::int32_t>((capacity + 1 + rows - 1) / rows);
}

/** Tightest L x L or L x (L+1) data grid holding @p capacity cells. */
std::pair<std::int32_t, std::int32_t>
lineDataGridFor(std::int32_t capacity)
{
    auto side = static_cast<std::int32_t>(
        std::floor(std::sqrt(static_cast<double>(capacity))));
    if (static_cast<std::int64_t>(side) * side >= capacity)
        return {side, side};
    if (static_cast<std::int64_t>(side) * (side + 1) >= capacity)
        return {side, side + 1};
    return {side + 1, side + 1};
}

} // namespace

ReferencePointSamBank::ReferencePointSamBank(std::int32_t capacity,
                                             const Latencies &lat)
    : capacity_(capacity), lat_(lat),
      grid_(pointGridRowsFor(capacity),
            pointGridColsFor(capacity, pointGridRowsFor(capacity)))
{
    LSQCA_REQUIRE(capacity >= 1, "point-SAM bank needs capacity >= 1");
    port_ = {grid_.rows() / 2, 0};
    scan_ = port_;
}

void
ReferencePointSamBank::placeInitial(const std::vector<QubitId> &vars)
{
    LSQCA_REQUIRE(static_cast<std::int32_t>(vars.size()) <= capacity_,
                  "point-SAM bank over capacity");
    std::size_t next = 0;
    for (std::int32_t r = 0; r < grid_.rows() && next < vars.size(); ++r) {
        for (std::int32_t c = 0; c < grid_.cols() && next < vars.size();
             ++c) {
            const Coord cell{r, c};
            if (cell == port_)
                continue; // the scan cell's initial position stays empty
            grid_.place(vars[next], cell);
            homes_.emplace(vars[next], cell);
            ++next;
        }
    }
    LSQCA_ASSERT(next == vars.size(), "initial placement did not fit");
}

std::int64_t
ReferencePointSamBank::pickCost(const Coord &from, const Coord &to) const
{
    const std::int32_t dr = std::abs(from.row - to.row);
    const std::int32_t dc = std::abs(from.col - to.col);
    const std::int32_t diag = std::min(dr, dc);
    const std::int32_t straight = std::max(dr, dc) - diag;
    const bool two_empty = grid_.emptyCount() >= 2;
    const std::int64_t diag_cost =
        two_empty ? lat_.pickDiagonal2 : lat_.pickDiagonal1;
    const std::int64_t straight_cost =
        two_empty ? lat_.pickStraight2 : lat_.pickStraight1;
    return diag * diag_cost + straight * straight_cost;
}

std::int64_t
ReferencePointSamBank::seekCost(QubitId q) const
{
    const Coord pos = grid_.locate(q);
    const std::int64_t dist = manhattan(scan_, pos);
    return std::max<std::int64_t>(0, dist - 1) * lat_.move;
}

void
ReferencePointSamBank::commitSeek(QubitId q)
{
    scan_ = grid_.locate(q);
}

std::int64_t
ReferencePointSamBank::loadCost(QubitId q) const
{
    const Coord pos = grid_.locate(q);
    return seekCost(q) + pickCost(pos, port_) + lat_.move;
}

void
ReferencePointSamBank::commitLoad(QubitId q)
{
    grid_.remove(q);
    scan_ = port_;
}

Coord
ReferencePointSamBank::homeOrNearest(QubitId q) const
{
    const auto it = homes_.find(q);
    LSQCA_ASSERT(it != homes_.end(), "qubit has no home cell in bank");
    if (grid_.isEmptyCell(it->second))
        return it->second;
    const auto near = grid_.nearestEmpty(it->second);
    LSQCA_ASSERT(near.has_value(), "point-SAM bank is full");
    return *near;
}

Coord
ReferencePointSamBank::storeDestination(QubitId q, bool locality) const
{
    if (!locality)
        return homeOrNearest(q);
    return port_;
}

std::int64_t
ReferencePointSamBank::storeCost(QubitId q, bool locality) const
{
    const Coord dest = storeDestination(q, locality);
    return lat_.move + pickCost(port_, dest);
}

Coord
ReferencePointSamBank::commitStore(QubitId q, bool locality)
{
    const Coord dest = storeDestination(q, locality);
    grid_.makeRoomAt(dest);
    grid_.place(q, dest);
    if (homes_.find(q) == homes_.end())
        homes_.emplace(q, dest);
    scan_ = dest;
    return dest;
}

std::int64_t
ReferencePointSamBank::fetchToPortCost(QubitId q) const
{
    const Coord pos = grid_.locate(q);
    return seekCost(q) + pickCost(pos, port_);
}

void
ReferencePointSamBank::commitFetchToPort(QubitId q)
{
    grid_.remove(q);
    grid_.makeRoomAt(port_);
    grid_.place(q, port_);
    scan_ = port_;
}

// ---- ReferenceLineSamBank (the seed's line-SAM cost model) -----------------

ReferenceLineSamBank::ReferenceLineSamBank(std::int32_t capacity,
                                           const Latencies &lat)
    : capacity_(capacity), lat_(lat),
      grid_(lineDataGridFor(capacity).first, lineDataGridFor(capacity).second)
{
    LSQCA_REQUIRE(capacity >= 1, "line-SAM bank needs capacity >= 1");
}

void
ReferenceLineSamBank::placeInitial(const std::vector<QubitId> &vars)
{
    LSQCA_REQUIRE(static_cast<std::int32_t>(vars.size()) <= capacity_,
                  "line-SAM bank over capacity");
    std::size_t next = 0;
    for (std::int32_t r = 0; r < grid_.rows() && next < vars.size(); ++r) {
        for (std::int32_t c = 0; c < grid_.cols() && next < vars.size();
             ++c) {
            grid_.place(vars[next], {r, c});
            homes_.emplace(vars[next], Coord{r, c});
            ++next;
        }
    }
    LSQCA_ASSERT(next == vars.size(), "initial placement did not fit");
}

std::int64_t
ReferenceLineSamBank::alignCostToRow(std::int32_t row) const
{
    const std::int64_t above = std::abs(gap_ - row);
    const std::int64_t below = std::abs(gap_ - (row + 1));
    return std::min(above, below) * lat_.move;
}

std::int32_t
ReferenceLineSamBank::nearerGapSide(std::int32_t row) const
{
    return std::abs(gap_ - row) <= std::abs(gap_ - (row + 1)) ? row
                                                              : row + 1;
}

std::int64_t
ReferenceLineSamBank::alignCost(QubitId q) const
{
    return alignCostToRow(grid_.locate(q).row);
}

void
ReferenceLineSamBank::commitAlign(QubitId q)
{
    gap_ = nearerGapSide(grid_.locate(q).row);
}

std::int64_t
ReferenceLineSamBank::loadCost(QubitId q) const
{
    return alignCost(q) + lat_.move + lat_.longMove;
}

void
ReferenceLineSamBank::commitLoad(QubitId q)
{
    const Coord pos = grid_.locate(q);
    gap_ = nearerGapSide(pos.row);
    grid_.remove(q);
}

bool
ReferenceLineSamBank::canDirectSurgery(QubitId a, QubitId b) const
{
    const std::int32_t ra = grid_.locate(a).row;
    const std::int32_t rb = grid_.locate(b).row;
    return std::abs(ra - rb) <= 1;
}

std::int64_t
ReferenceLineSamBank::directSurgeryCost(QubitId a, QubitId b) const
{
    const std::int32_t ra = grid_.locate(a).row;
    const std::int32_t rb = grid_.locate(b).row;
    if (ra == rb)
        return alignCostToRow(ra);
    const std::int32_t between = std::max(ra, rb);
    return std::abs(gap_ - between) * lat_.move;
}

void
ReferenceLineSamBank::commitDirectSurgery(QubitId a, QubitId b)
{
    const std::int32_t ra = grid_.locate(a).row;
    const std::int32_t rb = grid_.locate(b).row;
    gap_ = ra == rb ? nearerGapSide(ra) : std::max(ra, rb);
}

ReferenceLineSamBank::StorePlan
ReferenceLineSamBank::storePlan(QubitId q, bool locality) const
{
    if (!locality) {
        const auto it = homes_.find(q);
        LSQCA_ASSERT(it != homes_.end(), "qubit has no home cell in bank");
        if (grid_.isEmptyCell(it->second))
            return {it->second, alignCostToRow(it->second.row) / lat_.move};
        const auto near = grid_.nearestEmpty(it->second);
        LSQCA_ASSERT(near.has_value(), "line-SAM bank is full");
        return {*near, alignCostToRow(near->row) / lat_.move};
    }
    const std::int32_t row =
        gap_ < grid_.rows() ? gap_ : grid_.rows() - 1;
    const auto hole = grid_.nearestEmpty({row, 0});
    LSQCA_ASSERT(hole.has_value(), "line-SAM bank is full");
    return {Coord{row, hole->col}, 0};
}

std::int64_t
ReferenceLineSamBank::storeCost(QubitId q, bool locality) const
{
    const StorePlan plan = storePlan(q, locality);
    return plan.shifts * lat_.move + lat_.longMove + lat_.move;
}

Coord
ReferenceLineSamBank::commitStore(QubitId q, bool locality)
{
    const StorePlan plan = storePlan(q, locality);
    grid_.makeRoomAt(plan.dest);
    grid_.place(q, plan.dest);
    if (homes_.find(q) == homes_.end())
        homes_.emplace(q, plan.dest);
    gap_ = nearerGapSide(plan.dest.row);
    return plan.dest;
}

} // namespace lsqca::reference
