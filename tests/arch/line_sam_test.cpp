#include "arch/line_sam.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"

namespace lsqca {
namespace {

std::vector<QubitId>
iota(std::int32_t n)
{
    std::vector<QubitId> vars(static_cast<std::size_t>(n));
    std::iota(vars.begin(), vars.end(), 0);
    return vars;
}

TEST(LineSam, DataGridShapes)
{
    LineSamBank square(400, Latencies{});
    EXPECT_EQ(square.dataRows(), 20);
    EXPECT_EQ(square.cols(), 20);
    LineSamBank rect(20, Latencies{});
    EXPECT_EQ(rect.dataRows(), 4);
    EXPECT_EQ(rect.cols(), 5);
}

TEST(LineSam, GapStartsAtTop)
{
    LineSamBank bank(16, Latencies{});
    EXPECT_EQ(bank.gap(), 0);
}

TEST(LineSam, AlignCostIsRowDistance)
{
    LineSamBank bank(25, Latencies{}); // 5x5
    bank.placeInitial(iota(25));
    // Gap at 0: adjacent to row 0 already.
    EXPECT_EQ(bank.alignCostToRow(0), 0);
    // Row 3: gap must travel to 3 or 4 -> 3 shifts.
    EXPECT_EQ(bank.alignCostToRow(3), 3);
    EXPECT_EQ(bank.alignCostToRow(4), 4);
}

TEST(LineSam, LoadCostIsAlignPlusConstant)
{
    Latencies lat;
    LineSamBank bank(25, lat);
    bank.placeInitial(iota(25));
    // Qubit 12 sits in row 2 (row-major fill, 5 per row).
    const std::int64_t align = bank.alignCostToRow(2);
    EXPECT_EQ(bank.loadCost(12), align + lat.move + lat.longMove);
}

TEST(LineSam, WorstCaseLoadIsHalfSqrtN)
{
    // Paper Sec. IV-C3: latency ~ 0.5 sqrt(n) in the worst case (plus
    // small constants).
    const std::int32_t n = 400;
    LineSamBank bank(n, Latencies{});
    bank.placeInitial(iota(n));
    std::int64_t worst = 0;
    for (QubitId q = 0; q < n; ++q)
        worst = std::max(worst, bank.loadCost(q));
    EXPECT_LE(worst, 20 + 3); // H-1 shifts + step + long move
    EXPECT_GE(worst, 15);
}

TEST(LineSam, LoadParksGapAtTargetRow)
{
    LineSamBank bank(25, Latencies{});
    bank.placeInitial(iota(25));
    bank.commitLoad(17); // row 3
    EXPECT_FALSE(bank.holds(17));
    // Gap now adjacent to row 3: same-row reloads are cheap.
    EXPECT_EQ(bank.alignCostToRow(3), 0);
    EXPECT_LE(bank.loadCost(16), 3);
}

TEST(LineSam, SequentialSameRowAccessIsCheap)
{
    // The line-SAM selling point: continuous access to cells in one
    // line needs no additional movement.
    LineSamBank bank(100, Latencies{}); // 10x10
    bank.placeInitial(iota(100));
    bank.commitAlign(55); // row 5
    for (QubitId q = 50; q < 60; ++q)
        EXPECT_EQ(bank.alignCost(q), 0);
    // A different row still costs shifts.
    EXPECT_GT(bank.alignCost(95), 0);
}

TEST(LineSam, LocalityStorePrefersGapAdjacentRow)
{
    LineSamBank bank(24, Latencies{}); // 24 in 5x5 -> one empty slot
    bank.placeInitial(iota(24));
    bank.commitLoad(7); // row 1; gap parks at row boundary 1/2
    // Store back with locality: gap-adjacent row has the freed slot.
    const std::int64_t cost = bank.storeCost(7, true);
    Latencies lat;
    EXPECT_EQ(cost, lat.longMove + lat.move); // zero shifts
    const Coord dest = bank.commitStore(7, true);
    EXPECT_EQ(dest.row, 1);
}

TEST(LineSam, HomeStoreReturnsToOriginalCell)
{
    LineSamBank bank(24, Latencies{});
    bank.placeInitial(iota(24));
    const Coord home = bank.positionOf(20);
    bank.commitLoad(20);
    const Coord dest = bank.commitStore(20, /*locality=*/false);
    EXPECT_EQ(dest, home);
}

TEST(LineSam, StoreAfterDistantLoadPairsQubitsInOneRow)
{
    // Spatial locality (Fig. 12b): two qubits touched together end up
    // in the same or adjacent lines.
    LineSamBank bank(99, Latencies{}); // 10x10 grid, 1 free slot
    bank.placeInitial(iota(99));
    bank.commitLoad(95); // bottom row; gap parks there
    bank.commitStore(95, true);
    bank.commitLoad(91);
    const Coord d2 = bank.commitStore(91, true);
    const Coord d1 = bank.positionOf(95);
    EXPECT_LE(std::abs(d1.row - d2.row), 1);
}

TEST(LineSam, OccupancyBookkeeping)
{
    LineSamBank bank(10, Latencies{});
    bank.placeInitial(iota(10));
    EXPECT_EQ(bank.occupancy(), 10);
    bank.commitLoad(0);
    EXPECT_EQ(bank.occupancy(), 9);
    bank.commitStore(0, true);
    EXPECT_EQ(bank.occupancy(), 10);
}

// ---- golden cost tables ----------------------------------------------------
//
// Exact beat counts for small named layouts, worked by hand from the
// Sec. V line-SAM model: load = gap shifts to the target row + 1 step
// into the gap + the constant long-range slide; stores add the same
// shift term for the destination row. Cost drift fails here with a
// readable per-qubit diff before the differential fuzz harness points
// at a seed.

TEST(LineSamGolden, FourByFiveLoadCosts)
{
    // Capacity 20 -> 4x5 data grid, gap at 0: rows cost 0,1,2,3 shifts,
    // +1 step-in +2 long move.
    LineSamBank bank(20, Latencies{});
    bank.placeInitial(iota(20));
    const std::int64_t expected[20] = {3, 3, 3, 3, 3, 4, 4, 4, 4, 4,
                                       5, 5, 5, 5, 5, 6, 6, 6, 6, 6};
    for (QubitId q = 0; q < 20; ++q)
        EXPECT_EQ(bank.loadCost(q), expected[q]) << "qubit " << q;
    for (std::int32_t r = 0; r < 4; ++r)
        EXPECT_EQ(bank.alignCostToRow(r), r) << "row " << r;
}

TEST(LineSamGolden, FourByFiveStoreAfterLoad)
{
    // Loading q13 (row 2) parks the gap at 2; both store flavors then
    // need zero shifts: home (2,3) is the freed cell and the locality
    // row is the gap row, so each costs longMove + move = 3 beats.
    LineSamBank bank(20, Latencies{});
    bank.placeInitial(iota(20));
    bank.commitLoad(13);
    EXPECT_EQ(bank.gap(), 2);
    EXPECT_EQ(bank.storeCost(13, /*locality=*/false), 3);
    EXPECT_EQ(bank.storeCost(13, /*locality=*/true), 3);
    const Coord dest = bank.commitStore(13, true);
    EXPECT_EQ(dest, (Coord{2, 3}));
    EXPECT_EQ(bank.gap(), 2);
}

TEST(LineSamGolden, FiveByFiveCustomLatencies)
{
    // move=2, longMove=5: shifts scale by move, the slide by longMove —
    // rows cost 0..4 shifts x 2 + 2 step-in + 5.
    Latencies lat;
    lat.move = 2;
    lat.longMove = 5;
    LineSamBank bank(25, lat);
    bank.placeInitial(iota(25));
    const std::int64_t expected[25] = {7,  7,  7,  7,  7,  9,  9,  9,  9,
                                       9,  11, 11, 11, 11, 11, 13, 13, 13,
                                       13, 13, 15, 15, 15, 15, 15};
    for (QubitId q = 0; q < 25; ++q)
        EXPECT_EQ(bank.loadCost(q), expected[q]) << "qubit " << q;
}

TEST(LineSam, CapacityValidation)
{
    EXPECT_THROW(LineSamBank(0, Latencies{}), ConfigError);
    LineSamBank bank(4, Latencies{});
    EXPECT_THROW(bank.placeInitial(iota(5)), ConfigError);
}

TEST(LineSam, AlignCommitMovesGap)
{
    LineSamBank bank(25, Latencies{});
    bank.placeInitial(iota(25));
    EXPECT_GT(bank.alignCost(22), 0); // row 4
    bank.commitAlign(22);
    EXPECT_EQ(bank.alignCost(22), 0);
    // Row 0 now distant: gap parked at 4 -> min(|4-0|, |4-1|) shifts.
    EXPECT_EQ(bank.alignCost(2), 3);
}

} // namespace
} // namespace lsqca
