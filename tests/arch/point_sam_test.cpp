#include "arch/point_sam.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"

namespace lsqca {
namespace {

std::vector<QubitId>
iota(std::int32_t n)
{
    std::vector<QubitId> vars(static_cast<std::size_t>(n));
    std::iota(vars.begin(), vars.end(), 0);
    return vars;
}

TEST(PointSam, GridCoversCapacityPlusScan)
{
    PointSamBank bank(399, Latencies{});
    EXPECT_EQ(bank.rows(), 20);
    EXPECT_EQ(bank.cols(), 20);
    bank.placeInitial(iota(399));
    EXPECT_EQ(bank.occupancy(), 399);
}

TEST(PointSam, ScanStartsAtPortAnchor)
{
    PointSamBank bank(24, Latencies{});
    EXPECT_EQ(bank.scanPosition(), bank.portAnchor());
    EXPECT_EQ(bank.portAnchor().col, 0);
    EXPECT_EQ(bank.portAnchor().row, bank.rows() / 2);
}

TEST(PointSam, InitialPlacementSkipsScanCell)
{
    PointSamBank bank(8, Latencies{}); // 3x3 grid
    bank.placeInitial(iota(8));
    EXPECT_FALSE(bank.holds(8));
    for (QubitId q = 0; q < 8; ++q)
        EXPECT_TRUE(bank.holds(q));
}

TEST(PointSam, LoadCostMatchesPaperFormula)
{
    // With the scan at the port, picking a cell W columns and H rows
    // away costs seek (W + H - 1) + pick (6 min + 5 |W-H|) + 1 entry,
    // i.e. the paper's W + H + 6 min(W,H) + 5|W-H| up to the constant.
    PointSamBank bank(99, Latencies{}); // 10x10
    bank.placeInitial(iota(99));
    const Coord port = bank.portAnchor();
    // Find a qubit at known offset.
    const QubitId q = bank.holds(0) ? 0 : 1;
    const Coord pos = bank.positionOf(q);
    const std::int64_t w = std::abs(pos.col - port.col);
    const std::int64_t h = std::abs(pos.row - port.row);
    const std::int64_t expected = std::max<std::int64_t>(0, w + h - 1) +
                                  6 * std::min(w, h) +
                                  5 * std::llabs(w - h) + 1;
    EXPECT_EQ(bank.loadCost(q), expected);
}

TEST(PointSam, WorstCaseLoadIsOrderSevenSqrtN)
{
    // Paper Sec. IV-C2: 7 sqrt(n) beats in the worst case.
    const std::int32_t n = 399;
    PointSamBank bank(n, Latencies{});
    bank.placeInitial(iota(n));
    std::int64_t worst = 0;
    for (QubitId q = 0; q < n; ++q)
        if (bank.holds(q))
            worst = std::max(worst, bank.loadCost(q));
    const double bound = 7.0 * std::sqrt(static_cast<double>(n));
    EXPECT_LE(static_cast<double>(worst), bound * 1.25);
    EXPECT_GE(static_cast<double>(worst), bound * 0.5);
}

TEST(PointSam, LoadFreesCellAndParksScanAtPort)
{
    PointSamBank bank(8, Latencies{});
    bank.placeInitial(iota(8));
    bank.commitLoad(3);
    EXPECT_FALSE(bank.holds(3));
    EXPECT_EQ(bank.occupancy(), 7);
    EXPECT_EQ(bank.scanPosition(), bank.portAnchor());
}

TEST(PointSam, TwoEmptiesSpeedUpPicks)
{
    PointSamBank bank(99, Latencies{});
    bank.placeInitial(iota(99));
    // Pick a far-away qubit, measure cost with one empty cell.
    QubitId far = -1;
    std::int64_t far_cost = 0;
    for (QubitId q = 0; q < 99; ++q) {
        if (bank.holds(q) && bank.loadCost(q) > far_cost) {
            far = q;
            far_cost = bank.loadCost(q);
        }
    }
    ASSERT_NE(far, -1);
    // Remove some other qubit -> two empties -> same target is cheaper.
    const QubitId other = far == 0 ? 1 : 0;
    bank.commitLoad(other);
    EXPECT_LT(bank.loadCost(far), far_cost);
}

TEST(PointSam, LocalityStoreLandsNearPort)
{
    PointSamBank bank(24, Latencies{});
    bank.placeInitial(iota(24));
    bank.commitLoad(20); // frees a far cell, scan back at port
    const std::int64_t cost = bank.storeCost(20, /*locality=*/true);
    const Coord dest = bank.commitStore(20, true);
    // Nearest empty to the port is the freed far cell or the port
    // itself; with only one empty it's that cell. After the earlier
    // load the only empty is q20's old cell... locality store must pick
    // the nearest-to-port empty, which is exactly that cell here.
    EXPECT_TRUE(bank.holds(20));
    EXPECT_EQ(bank.occupancy(), 24);
    EXPECT_GE(cost, 1); // at least the CR-exit move
    (void)dest;
}

TEST(PointSam, LocalityStoreBeatsHomeStoreWhenHomeIsFar)
{
    Latencies lat;
    PointSamBank bank(99, lat);
    bank.placeInitial(iota(99));
    // Load the farthest qubit, then load a near one so two empties
    // exist with one near the port region.
    QubitId far = -1;
    std::int64_t far_cost = 0;
    for (QubitId q = 0; q < 99; ++q) {
        if (bank.holds(q) && bank.loadCost(q) > far_cost) {
            far = q;
            far_cost = bank.loadCost(q);
        }
    }
    bank.commitLoad(far);
    const std::int64_t locality_cost = bank.storeCost(far, true);
    const std::int64_t home_cost = bank.storeCost(far, false);
    EXPECT_LE(locality_cost, home_cost);
}

TEST(PointSam, RepeatedAccessGetsCheaperWithLocalityStore)
{
    // Temporal locality: load+store the same qubit twice; the second
    // load must be no more expensive than the first (it was stored
    // near the port).
    PointSamBank bank(99, Latencies{});
    bank.placeInitial(iota(99));
    QubitId far = -1;
    std::int64_t far_cost = 0;
    for (QubitId q = 0; q < 99; ++q) {
        if (bank.holds(q) && bank.loadCost(q) > far_cost) {
            far = q;
            far_cost = bank.loadCost(q);
        }
    }
    bank.commitLoad(far);
    bank.commitStore(far, true);
    EXPECT_LT(bank.loadCost(far), far_cost);
}

TEST(PointSam, SeekTracksScanPosition)
{
    PointSamBank bank(24, Latencies{});
    bank.placeInitial(iota(24));
    const QubitId q = 15;
    const std::int64_t first = bank.seekCost(q);
    bank.commitSeek(q);
    // Scan is now adjacent: the repeat seek is free.
    EXPECT_EQ(bank.seekCost(q), 0);
    EXPECT_LE(bank.seekCost(q), first);
}

TEST(PointSam, FetchToPortRelocatesQubit)
{
    PointSamBank bank(24, Latencies{});
    bank.placeInitial(iota(24));
    const QubitId q = 23;
    const std::int64_t fetch = bank.fetchToPortCost(q);
    const std::int64_t load = bank.loadCost(q);
    EXPECT_EQ(load, fetch + 1); // load = fetch + CR entry move
    bank.commitFetchToPort(q);
    EXPECT_TRUE(bank.holds(q));
    // Now port-adjacent: the next fetch is near-free.
    EXPECT_LE(bank.fetchToPortCost(q), 6);
}

// ---- golden cost tables ----------------------------------------------------
//
// Exact beat counts for small named layouts, worked by hand from the
// Sec. V cost model (seek = manhattan - 1, pick = 6/5 beats per
// diagonal/straight compound move with one empty, 4/3 with two, +1 CR
// entry). Any cost drift fails here with a readable per-qubit diff
// before the differential fuzz harness points at a seed.

TEST(PointSamGolden, ThreeByThreeLoadCosts)
{
    // Capacity 8 -> 3x3 grid, port (1,0), scan starts there, layout:
    //   q0 q1 q2
    //   .. q3 q4     (.. = the empty scan/port cell)
    //   q5 q6 q7
    PointSamBank bank(8, Latencies{});
    bank.placeInitial(iota(8));
    const std::int64_t expected_load[8] = {6, 8, 14, 6, 12, 6, 8, 14};
    const std::int64_t expected_seek[8] = {0, 1, 2, 0, 1, 0, 1, 2};
    for (QubitId q = 0; q < 8; ++q) {
        EXPECT_EQ(bank.loadCost(q), expected_load[q]) << "qubit " << q;
        EXPECT_EQ(bank.seekCost(q), expected_seek[q]) << "qubit " << q;
    }
}

TEST(PointSamGolden, ThreeByThreeStoreCosts)
{
    // Loading q4 (home (1,2)) leaves two empties: the port and (1,2).
    // Home store picks (1,2) back with the two-empty discount
    // (2 straight x 3 + 1 entry = 7); locality store drops at the port
    // for the bare CR-exit move.
    PointSamBank bank(8, Latencies{});
    bank.placeInitial(iota(8));
    bank.commitLoad(4);
    EXPECT_EQ(bank.storeCost(4, /*locality=*/false), 7);
    EXPECT_EQ(bank.storeCost(4, /*locality=*/true), 1);
    const Coord dest = bank.commitStore(4, true);
    EXPECT_EQ(dest, bank.portAnchor());
    EXPECT_EQ(bank.scanPosition(), dest);
}

TEST(PointSamGolden, ThreeByThreeTwoEmptyDiscount)
{
    // With q0 and q7 loaded out (two holes beyond the scan), every
    // remaining pick uses the cheap 4/3-beat compound moves.
    PointSamBank bank(8, Latencies{});
    bank.placeInitial(iota(8));
    bank.commitLoad(0);
    bank.commitLoad(7);
    const std::int64_t expected[6] = {6, 10, 4, 8, 4, 6}; // q1..q6
    for (QubitId q = 1; q < 7; ++q)
        EXPECT_EQ(bank.loadCost(q), expected[q - 1]) << "qubit " << q;
}

TEST(PointSamGolden, FiveByFiveLoadCosts)
{
    // Capacity 24 -> 5x5 grid, port (2,0): the full worked table.
    PointSamBank bank(24, Latencies{});
    bank.placeInitial(iota(24));
    const std::int64_t expected[24] = {12, 14, 16, 22, 28, 6,  8,  14,
                                       20, 26, 6,  12, 18, 24, 6,  8,
                                       14, 20, 26, 12, 14, 16, 22, 28};
    for (QubitId q = 0; q < 24; ++q)
        EXPECT_EQ(bank.loadCost(q), expected[q]) << "qubit " << q;
}

TEST(PointSamGolden, ThreeByThreeCustomLatencies)
{
    // move=2, pickDiagonal1=7, pickStraight1=4: the same 3x3 layout
    // re-costed, pinning that every term scales by its own latency.
    Latencies lat;
    lat.move = 2;
    lat.pickDiagonal1 = 7;
    lat.pickStraight1 = 4;
    PointSamBank bank(8, lat);
    bank.placeInitial(iota(8));
    const std::int64_t expected[8] = {6, 11, 17, 6, 12, 6, 11, 17};
    for (QubitId q = 0; q < 8; ++q)
        EXPECT_EQ(bank.loadCost(q), expected[q]) << "qubit " << q;
}

TEST(PointSam, CapacityValidation)
{
    EXPECT_THROW(PointSamBank(0, Latencies{}), ConfigError);
    PointSamBank bank(3, Latencies{});
    EXPECT_THROW(bank.placeInitial(iota(4)), ConfigError);
}

TEST(PointSam, CustomLatenciesRespected)
{
    Latencies lat;
    lat.pickDiagonal1 = 60;
    lat.pickStraight1 = 50;
    lat.move = 10;
    PointSamBank slow(24, lat);
    slow.placeInitial(iota(24));
    PointSamBank fast(24, Latencies{});
    fast.placeInitial(iota(24));
    for (QubitId q : {5, 12, 23})
        EXPECT_EQ(slow.loadCost(q), 10 * fast.loadCost(q));
}

} // namespace
} // namespace lsqca
