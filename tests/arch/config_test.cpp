#include "arch/config.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace lsqca {
namespace {

TEST(ArchConfig, DefaultsMatchPaper)
{
    const ArchConfig cfg;
    EXPECT_EQ(cfg.sam, SamKind::Point);
    EXPECT_EQ(cfg.banks, 1);
    EXPECT_EQ(cfg.factories, 1);
    EXPECT_EQ(cfg.crRegisters, 2);
    EXPECT_TRUE(cfg.localityStore);
    EXPECT_TRUE(cfg.inMemoryOps);
    EXPECT_EQ(cfg.effectiveBufferCap(), 2); // 2 * factories
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ArchConfig, LatencyDefaultsMatchFig4)
{
    const Latencies lat;
    EXPECT_EQ(lat.hadamard, 3);
    EXPECT_EQ(lat.phase, 2);
    EXPECT_EQ(lat.surgery, 1);
    EXPECT_EQ(lat.move, 1);
    EXPECT_EQ(lat.longMove, 2);
    EXPECT_EQ(lat.pickDiagonal1, 6);
    EXPECT_EQ(lat.pickStraight1, 5);
    EXPECT_EQ(lat.pickDiagonal2, 4);
    EXPECT_EQ(lat.pickStraight2, 3);
    EXPECT_EQ(lat.msfPeriod, 15);
}

TEST(ArchConfig, BufferCapOverride)
{
    ArchConfig cfg;
    cfg.factories = 4;
    EXPECT_EQ(cfg.effectiveBufferCap(), 8);
    cfg.bufferCap = 3;
    EXPECT_EQ(cfg.effectiveBufferCap(), 3);
}

TEST(ArchConfig, PointSamBankLimit)
{
    ArchConfig cfg;
    cfg.sam = SamKind::Point;
    cfg.banks = 2;
    EXPECT_NO_THROW(cfg.validate());
    cfg.banks = 3;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg.sam = SamKind::Line;
    cfg.banks = 8;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ArchConfig, HybridFractionBounds)
{
    ArchConfig cfg;
    cfg.hybridFraction = 1.5;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg.hybridFraction = -0.1;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg.hybridFraction = 0.95;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ArchConfig, Labels)
{
    ArchConfig cfg;
    EXPECT_EQ(cfg.label(), "point#1");
    cfg.sam = SamKind::Line;
    cfg.banks = 4;
    EXPECT_EQ(cfg.label(), "line#4");
    cfg.sam = SamKind::Conventional;
    EXPECT_EQ(cfg.label(), "conventional");
}

TEST(ArchConfig, SamKindNames)
{
    EXPECT_STREQ(samKindName(SamKind::Point), "point");
    EXPECT_STREQ(samKindName(SamKind::Line), "line");
    EXPECT_STREQ(samKindName(SamKind::Conventional), "conventional");
}

} // namespace
} // namespace lsqca
