#include "arch/msf.h"

#include <gtest/gtest.h>

namespace lsqca {
namespace {

TEST(MagicSource, WarmStartPrefillsBuffer)
{
    MagicSource msf(1, 2, 15, 1, /*warm=*/true, /*instant=*/false);
    // Two states ready at t = 0.
    EXPECT_EQ(msf.acquire(0).start, 0);
    EXPECT_EQ(msf.acquire(0).start, 0);
    // Third state produced from t = 0: ready at 15.
    EXPECT_EQ(msf.acquire(0).start, 15);
    EXPECT_EQ(msf.consumed(), 3);
}

TEST(MagicSource, ColdStartWaitsOnePeriod)
{
    MagicSource msf(1, 2, 15, 1, /*warm=*/false, /*instant=*/false);
    EXPECT_EQ(msf.acquire(0).start, 15);
    EXPECT_EQ(msf.acquire(0).start, 30);
}

TEST(MagicSource, SteadyStateRateIsPeriodOverFactories)
{
    MagicSource msf(1, 2, 15, 1, true, false);
    std::int64_t last = 0;
    for (int i = 0; i < 50; ++i)
        last = msf.acquire(0).start;
    // 2 prefilled + 48 produced: the 50th consumption ~ 48 * 15.
    EXPECT_EQ(last, 48 * 15);
}

TEST(MagicSource, MultipleFactoriesScaleThroughput)
{
    MagicSource msf(4, 8, 15, 1, true, false);
    std::int64_t last = 0;
    for (int i = 0; i < 48; ++i)
        last = msf.acquire(0).start;
    // 8 prefilled + 40 produced by 4 factories: last ready ~ 10 * 15.
    EXPECT_EQ(last, 10 * 15);
}

TEST(MagicSource, SlowConsumerNeverWaits)
{
    MagicSource msf(1, 2, 15, 1, true, false);
    for (int i = 0; i < 20; ++i) {
        const auto grant = msf.acquire(i * 100);
        EXPECT_EQ(grant.start, i * 100);
    }
    EXPECT_EQ(msf.stallBeats(), 0);
}

TEST(MagicSource, BufferCapLimitsBurst)
{
    // After a long idle period, `cap` states are buffered plus one more
    // held inside the stalled factory (it completed long ago and
    // transfers the instant a slot frees); the next one needs a fresh
    // production run.
    MagicSource msf(1, 3, 10, 0, true, false);
    const std::int64_t t = 1000;
    EXPECT_EQ(msf.acquire(t).start, t);
    EXPECT_EQ(msf.acquire(t).start, t);
    EXPECT_EQ(msf.acquire(t).start, t);
    EXPECT_EQ(msf.acquire(t).start, t);      // factory-held state
    EXPECT_EQ(msf.acquire(t).start, t + 10); // freshly produced
}

TEST(MagicSource, StallBeatsAccumulate)
{
    MagicSource msf(1, 1, 10, 0, false, false);
    msf.acquire(0); // ready at 10 -> 10 beats stalled
    EXPECT_EQ(msf.stallBeats(), 10);
    msf.acquire(50); // ready well before 50 -> no stall
    EXPECT_EQ(msf.stallBeats(), 10);
}

TEST(MagicSource, TransferLatencyAppliesAfterGrant)
{
    MagicSource msf(1, 2, 15, 3, true, false);
    const auto grant = msf.acquire(7);
    EXPECT_EQ(grant.start, 7);
    EXPECT_EQ(grant.end, 10);
}

TEST(MagicSource, InstantModeNeverWaits)
{
    MagicSource msf(1, 1, 15, 1, false, /*instant=*/true);
    for (int i = 0; i < 100; ++i) {
        const auto grant = msf.acquire(i);
        EXPECT_EQ(grant.start, i);
        EXPECT_EQ(grant.end, i);
    }
    EXPECT_EQ(msf.stallBeats(), 0);
}

TEST(MagicSource, ConstructionValidation)
{
    EXPECT_THROW(MagicSource(0, 1, 15, 1, true, false), ConfigError);
    EXPECT_THROW(MagicSource(1, 0, 15, 1, true, false), ConfigError);
    EXPECT_THROW(MagicSource(1, 1, 0, 1, true, false), ConfigError);
    EXPECT_THROW(MagicSource(1, 1, 15, -1, true, false), ConfigError);
}

TEST(MagicSource, MonotoneRequestsGiveMonotoneGrants)
{
    MagicSource msf(2, 4, 15, 1, true, false);
    std::int64_t prev = -1;
    for (int i = 0; i < 40; ++i) {
        const auto grant = msf.acquire(i * 3);
        EXPECT_GE(grant.start, prev);
        prev = grant.start;
    }
}

} // namespace
} // namespace lsqca
