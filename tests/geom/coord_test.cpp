#include "geom/coord.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace lsqca {
namespace {

TEST(Coord, EqualityAndArithmetic)
{
    const Coord a{1, 2};
    const Coord b{3, -1};
    EXPECT_EQ(a + b, (Coord{4, 1}));
    EXPECT_EQ(b - a, (Coord{2, -3}));
    EXPECT_EQ(a, (Coord{1, 2}));
    EXPECT_NE(a, b);
}

TEST(Coord, ManhattanDistance)
{
    EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
    EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
    EXPECT_EQ(manhattan({-2, 5}, {1, 1}), 7);
    EXPECT_EQ(manhattan({5, 5}, {5, 9}), 4);
}

TEST(Coord, ChebyshevDistance)
{
    EXPECT_EQ(chebyshev({0, 0}, {3, 4}), 4);
    EXPECT_EQ(chebyshev({1, 1}, {1, 1}), 0);
    EXPECT_EQ(chebyshev({-2, 0}, {2, 1}), 4);
}

TEST(Coord, MetricSymmetry)
{
    const Coord a{7, -3};
    const Coord b{-1, 9};
    EXPECT_EQ(manhattan(a, b), manhattan(b, a));
    EXPECT_EQ(chebyshev(a, b), chebyshev(b, a));
}

TEST(Coord, TriangleInequality)
{
    const Coord a{0, 0}, b{5, 2}, c{9, 9};
    EXPECT_LE(manhattan(a, c), manhattan(a, b) + manhattan(b, c));
    EXPECT_LE(chebyshev(a, c), chebyshev(a, b) + chebyshev(b, c));
}

TEST(Coord, HashDistinguishesRowAndColumn)
{
    std::unordered_set<Coord> set;
    set.insert({1, 2});
    set.insert({2, 1});
    set.insert({1, 2}); // duplicate
    EXPECT_EQ(set.size(), 2u);
}

TEST(Coord, StreamOutput)
{
    std::ostringstream oss;
    oss << Coord{3, -4};
    EXPECT_EQ(oss.str(), "(3,-4)");
}

} // namespace
} // namespace lsqca
