#include "geom/grid.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace lsqca {
namespace {

TEST(OccupancyGrid, ConstructionValidation)
{
    EXPECT_THROW(OccupancyGrid(0, 3), ConfigError);
    EXPECT_THROW(OccupancyGrid(3, 0), ConfigError);
    OccupancyGrid g(4, 5);
    EXPECT_EQ(g.rows(), 4);
    EXPECT_EQ(g.cols(), 5);
    EXPECT_EQ(g.cellCount(), 20);
    EXPECT_EQ(g.emptyCount(), 20);
}

TEST(OccupancyGrid, PlaceFindRemove)
{
    OccupancyGrid g(3, 3);
    g.place(7, {1, 2});
    EXPECT_EQ(g.occupiedCount(), 1);
    EXPECT_EQ(g.at({1, 2}), 7);
    EXPECT_TRUE(g.find(7).has_value());
    EXPECT_EQ(g.locate(7), (Coord{1, 2}));
    EXPECT_EQ(g.remove(7), (Coord{1, 2}));
    EXPECT_EQ(g.occupiedCount(), 0);
    EXPECT_FALSE(g.find(7).has_value());
}

TEST(OccupancyGrid, RejectsDoublePlacement)
{
    OccupancyGrid g(2, 2);
    g.place(1, {0, 0});
    EXPECT_THROW(g.place(1, {0, 1}), ConfigError);   // same qubit twice
    EXPECT_THROW(g.place(2, {0, 0}), ConfigError);   // occupied cell
    EXPECT_THROW(g.place(kNoQubit, {1, 1}), ConfigError);
}

TEST(OccupancyGrid, RemoveUnplacedThrows)
{
    OccupancyGrid g(2, 2);
    EXPECT_THROW(g.remove(5), ConfigError);
    EXPECT_THROW(g.locate(5), ConfigError);
}

TEST(OccupancyGrid, Relocate)
{
    OccupancyGrid g(3, 3);
    g.place(4, {0, 0});
    g.relocate(4, {2, 2});
    EXPECT_EQ(g.locate(4), (Coord{2, 2}));
    EXPECT_TRUE(g.isEmptyCell({0, 0}));
    g.place(5, {0, 0});
    EXPECT_THROW(g.relocate(4, {0, 0}), ConfigError);
}

TEST(OccupancyGrid, NearestEmptyPrefersClosest)
{
    OccupancyGrid g(3, 3);
    for (std::int32_t r = 0; r < 3; ++r)
        for (std::int32_t c = 0; c < 3; ++c)
            if (!(r == 0 && c == 2) && !(r == 2 && c == 0))
                g.place(r * 3 + c + 1, {r, c});
    // Empties: (0,2) and (2,0).
    EXPECT_EQ(g.nearestEmpty({0, 0}), (Coord{0, 2}));
    EXPECT_EQ(g.nearestEmpty({2, 2}), (Coord{0, 2})); // tie -> lower row
    EXPECT_EQ(g.nearestEmpty({2, 1}), (Coord{2, 0}));
}

TEST(OccupancyGrid, NearestEmptyOnFullGrid)
{
    OccupancyGrid g(2, 2);
    for (std::int32_t i = 0; i < 4; ++i)
        g.place(i + 1, {i / 2, i % 2});
    EXPECT_FALSE(g.nearestEmpty({0, 0}).has_value());
}

TEST(OccupancyGrid, NearestEmptyInRow)
{
    OccupancyGrid g(2, 4);
    g.place(1, {0, 0});
    g.place(2, {0, 1});
    // Row 0 empties: cols 2, 3.
    EXPECT_EQ(g.nearestEmptyInRow(0, 0), (Coord{0, 2}));
    EXPECT_EQ(g.nearestEmptyInRow(0, 3), (Coord{0, 3}));
    EXPECT_EQ(g.nearestEmptyInRow(1, 2), (Coord{1, 2}));
    g.place(3, {0, 2});
    g.place(4, {0, 3});
    EXPECT_FALSE(g.nearestEmptyInRow(0, 0).has_value());
    EXPECT_THROW(g.nearestEmptyInRow(5, 0), ConfigError);
}

TEST(OccupancyGrid, EmptyCellsRowMajor)
{
    OccupancyGrid g(2, 2);
    g.place(1, {0, 1});
    g.place(2, {1, 0});
    const auto empties = g.emptyCells();
    ASSERT_EQ(empties.size(), 2u);
    EXPECT_EQ(empties[0], (Coord{0, 0}));
    EXPECT_EQ(empties[1], (Coord{1, 1}));
}

TEST(OccupancyGrid, ContainsBounds)
{
    OccupancyGrid g(2, 3);
    EXPECT_TRUE(g.contains({0, 0}));
    EXPECT_TRUE(g.contains({1, 2}));
    EXPECT_FALSE(g.contains({-1, 0}));
    EXPECT_FALSE(g.contains({2, 0}));
    EXPECT_FALSE(g.contains({0, 3}));
}

} // namespace
} // namespace lsqca
