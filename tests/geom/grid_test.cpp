#include "geom/grid.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.h"

namespace lsqca {
namespace {

TEST(OccupancyGrid, ConstructionValidation)
{
    EXPECT_THROW(OccupancyGrid(0, 3), ConfigError);
    EXPECT_THROW(OccupancyGrid(3, 0), ConfigError);
    OccupancyGrid g(4, 5);
    EXPECT_EQ(g.rows(), 4);
    EXPECT_EQ(g.cols(), 5);
    EXPECT_EQ(g.cellCount(), 20);
    EXPECT_EQ(g.emptyCount(), 20);
}

TEST(OccupancyGrid, PlaceFindRemove)
{
    OccupancyGrid g(3, 3);
    g.place(7, {1, 2});
    EXPECT_EQ(g.occupiedCount(), 1);
    EXPECT_EQ(g.at({1, 2}), 7);
    EXPECT_TRUE(g.find(7).has_value());
    EXPECT_EQ(g.locate(7), (Coord{1, 2}));
    EXPECT_EQ(g.remove(7), (Coord{1, 2}));
    EXPECT_EQ(g.occupiedCount(), 0);
    EXPECT_FALSE(g.find(7).has_value());
}

TEST(OccupancyGrid, RejectsDoublePlacement)
{
    OccupancyGrid g(2, 2);
    g.place(1, {0, 0});
    EXPECT_THROW(g.place(1, {0, 1}), ConfigError);   // same qubit twice
    EXPECT_THROW(g.place(2, {0, 0}), ConfigError);   // occupied cell
    EXPECT_THROW(g.place(kNoQubit, {1, 1}), ConfigError);
}

TEST(OccupancyGrid, RemoveUnplacedThrows)
{
    OccupancyGrid g(2, 2);
    EXPECT_THROW(g.remove(5), ConfigError);
    EXPECT_THROW(g.locate(5), ConfigError);
}

TEST(OccupancyGrid, Relocate)
{
    OccupancyGrid g(3, 3);
    g.place(4, {0, 0});
    g.relocate(4, {2, 2});
    EXPECT_EQ(g.locate(4), (Coord{2, 2}));
    EXPECT_TRUE(g.isEmptyCell({0, 0}));
    g.place(5, {0, 0});
    EXPECT_THROW(g.relocate(4, {0, 0}), ConfigError);
}

TEST(OccupancyGrid, NearestEmptyPrefersClosest)
{
    OccupancyGrid g(3, 3);
    for (std::int32_t r = 0; r < 3; ++r)
        for (std::int32_t c = 0; c < 3; ++c)
            if (!(r == 0 && c == 2) && !(r == 2 && c == 0))
                g.place(r * 3 + c + 1, {r, c});
    // Empties: (0,2) and (2,0).
    EXPECT_EQ(g.nearestEmpty({0, 0}), (Coord{0, 2}));
    EXPECT_EQ(g.nearestEmpty({2, 2}), (Coord{0, 2})); // tie -> lower row
    EXPECT_EQ(g.nearestEmpty({2, 1}), (Coord{2, 0}));
}

TEST(OccupancyGrid, NearestEmptyOnFullGrid)
{
    OccupancyGrid g(2, 2);
    for (std::int32_t i = 0; i < 4; ++i)
        g.place(i + 1, {i / 2, i % 2});
    EXPECT_FALSE(g.nearestEmpty({0, 0}).has_value());
}

TEST(OccupancyGrid, NearestEmptyInRow)
{
    OccupancyGrid g(2, 4);
    g.place(1, {0, 0});
    g.place(2, {0, 1});
    // Row 0 empties: cols 2, 3.
    EXPECT_EQ(g.nearestEmptyInRow(0, 0), (Coord{0, 2}));
    EXPECT_EQ(g.nearestEmptyInRow(0, 3), (Coord{0, 3}));
    EXPECT_EQ(g.nearestEmptyInRow(1, 2), (Coord{1, 2}));
    g.place(3, {0, 2});
    g.place(4, {0, 3});
    EXPECT_FALSE(g.nearestEmptyInRow(0, 0).has_value());
    EXPECT_THROW(g.nearestEmptyInRow(5, 0), ConfigError);
}

// ---- nearest-empty tie-breaking --------------------------------------------
//
// The documented contract (grid.h): among equal-Manhattan-distance
// empty cells the smallest row wins, then the smallest column — the
// first candidate a row-major scan with a strict "closer than best"
// test keeps. The incremental OccupancyIndex must reproduce this scan
// order exactly; these regressions pin the tie cases so an index
// rewrite cannot silently change bank store destinations.

TEST(OccupancyGrid, NearestEmptyTieBreaksTowardSmallerRow)
{
    OccupancyGrid g(3, 3);
    QubitId q = 1;
    for (std::int32_t r = 0; r < 3; ++r)
        for (std::int32_t c = 0; c < 3; ++c)
            if (!(r == 0 && c == 1) && !(r == 1 && c == 0))
                g.place(q++, {r, c});
    // Empties (0,1) and (1,0) are both 1 step from (1,1).
    EXPECT_EQ(g.nearestEmpty({1, 1}), (Coord{0, 1}));
}

TEST(OccupancyGrid, NearestEmptyTieBreaksTowardSmallerColWithinRow)
{
    OccupancyGrid g(3, 3);
    QubitId q = 1;
    for (std::int32_t r = 0; r < 3; ++r)
        for (std::int32_t c = 0; c < 3; ++c)
            if (!(r == 1 && c == 0) && !(r == 1 && c == 2))
                g.place(q++, {r, c});
    // Empties (1,0) and (1,2) are both 1 step from (1,1).
    EXPECT_EQ(g.nearestEmpty({1, 1}), (Coord{1, 0}));
}

TEST(OccupancyGrid, NearestEmptyFourWayTieRing)
{
    OccupancyGrid g(5, 5);
    QubitId q = 1;
    const Coord ring[4] = {{1, 2}, {2, 1}, {2, 3}, {3, 2}};
    for (std::int32_t r = 0; r < 5; ++r)
        for (std::int32_t c = 0; c < 5; ++c) {
            bool empty = false;
            for (const Coord &e : ring)
                if (e == Coord{r, c})
                    empty = true;
            if (!empty)
                g.place(q++, {r, c});
        }
    // All four ring cells are 1 step from the center: smallest row wins.
    EXPECT_EQ(g.nearestEmpty({2, 2}), (Coord{1, 2}));
    // Remove the winner from contention: (2,1) and (2,3) tie within
    // row 2 and the smaller column wins over (3,2).
    g.place(q++, {1, 2});
    EXPECT_EQ(g.nearestEmpty({2, 2}), (Coord{2, 1}));
}

TEST(OccupancyGrid, NearestEmptyInRowTieBreaksTowardSmallerCol)
{
    OccupancyGrid g(1, 5);
    g.place(1, {0, 1});
    g.place(2, {0, 2});
    g.place(3, {0, 3});
    // Empties at cols 0 and 4, target col 2: both 2 away.
    EXPECT_EQ(g.nearestEmptyInRow(0, 2), (Coord{0, 0}));
}

TEST(OccupancyGrid, TieOrderSurvivesChurn)
{
    // Occupy/vacate churn must leave the index answering ties exactly
    // like a fresh scan: compare against a brute-force scan oracle
    // after every mutation.
    auto brute = [](const OccupancyGrid &g, const Coord &target) {
        std::optional<Coord> best;
        std::int32_t best_dist = std::numeric_limits<std::int32_t>::max();
        for (std::int32_t r = 0; r < g.rows(); ++r)
            for (std::int32_t c = 0; c < g.cols(); ++c) {
                if (!g.isEmptyCell({r, c}))
                    continue;
                const std::int32_t d = manhattan({r, c}, target);
                if (d < best_dist) {
                    best_dist = d;
                    best = Coord{r, c};
                }
            }
        return best;
    };
    OccupancyGrid g(4, 4);
    QubitId q = 1;
    for (std::int32_t r = 0; r < 4; ++r)
        for (std::int32_t c = 0; c < 4; ++c)
            g.place(q++, {r, c});
    // Vacate a diagonal, re-occupy part of it, then check every target.
    g.remove(1);           // (0,0)
    g.remove(6);           // (1,1)
    g.remove(11);          // (2,2)
    g.remove(16);          // (3,3)
    g.place(17, {1, 1});
    for (std::int32_t r = 0; r < 4; ++r)
        for (std::int32_t c = 0; c < 4; ++c)
            EXPECT_EQ(g.nearestEmpty({r, c}), brute(g, {r, c}))
                << "target (" << r << "," << c << ")";
}

TEST(OccupancyGrid, VersionBumpsOnEveryMutation)
{
    OccupancyGrid g(2, 2);
    const std::uint64_t v0 = g.version();
    g.place(1, {0, 0});
    const std::uint64_t v1 = g.version();
    EXPECT_GT(v1, v0);
    g.relocate(1, {1, 1});
    const std::uint64_t v2 = g.version();
    EXPECT_GT(v2, v1);
    g.remove(1);
    EXPECT_GT(g.version(), v2);
    // Queries do not mutate.
    const std::uint64_t v3 = g.version();
    (void)g.nearestEmpty({0, 0});
    (void)g.nearestEmptyInRow(0, 0);
    (void)g.emptyCells();
    EXPECT_EQ(g.version(), v3);
}

TEST(OccupancyGrid, EmptyCellsRowMajor)
{
    OccupancyGrid g(2, 2);
    g.place(1, {0, 1});
    g.place(2, {1, 0});
    const auto empties = g.emptyCells();
    ASSERT_EQ(empties.size(), 2u);
    EXPECT_EQ(empties[0], (Coord{0, 0}));
    EXPECT_EQ(empties[1], (Coord{1, 1}));
}

TEST(OccupancyGrid, ContainsBounds)
{
    OccupancyGrid g(2, 3);
    EXPECT_TRUE(g.contains({0, 0}));
    EXPECT_TRUE(g.contains({1, 2}));
    EXPECT_FALSE(g.contains({-1, 0}));
    EXPECT_FALSE(g.contains({2, 0}));
    EXPECT_FALSE(g.contains({0, 3}));
}

} // namespace
} // namespace lsqca
