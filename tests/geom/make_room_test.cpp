#include "geom/grid.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"

namespace lsqca {
namespace {

/** Fill all cells except @p hole. */
OccupancyGrid
fullGridExcept(std::int32_t rows, std::int32_t cols, Coord hole)
{
    OccupancyGrid grid(rows, cols);
    QubitId next = 0;
    for (std::int32_t r = 0; r < rows; ++r)
        for (std::int32_t c = 0; c < cols; ++c)
            if (!(Coord{r, c} == hole))
                grid.place(next++, {r, c});
    return grid;
}

TEST(MakeRoom, NoopWhenDestinationEmpty)
{
    OccupancyGrid grid(3, 3);
    grid.place(1, {0, 0});
    EXPECT_EQ(grid.makeRoomAt({2, 2}), 0);
    EXPECT_TRUE(grid.isEmptyCell({2, 2}));
}

TEST(MakeRoom, SlidesChainTowardHole)
{
    // Hole at (0,2); make room at (0,0): occupants shift right by one.
    OccupancyGrid grid(1, 3);
    grid.place(10, {0, 0});
    grid.place(11, {0, 1});
    const std::int32_t steps = grid.makeRoomAt({0, 0});
    EXPECT_EQ(steps, 2);
    EXPECT_TRUE(grid.isEmptyCell({0, 0}));
    EXPECT_EQ(grid.at({0, 1}), 10);
    EXPECT_EQ(grid.at({0, 2}), 11);
}

TEST(MakeRoom, WalksRowsThenColumns)
{
    OccupancyGrid grid = fullGridExcept(3, 3, {2, 2});
    const QubitId displaced = grid.at({0, 0});
    const std::int32_t steps = grid.makeRoomAt({0, 0});
    EXPECT_EQ(steps, manhattan({2, 2}, {0, 0}));
    EXPECT_TRUE(grid.isEmptyCell({0, 0}));
    // The displaced occupant moved one step along the path.
    EXPECT_NE(grid.find(displaced)->row == 0 &&
                  grid.find(displaced)->col == 0,
              true);
}

TEST(MakeRoom, PreservesQubitSetAndOccupancy)
{
    OccupancyGrid grid = fullGridExcept(4, 5, {3, 4});
    const std::int32_t before = grid.occupiedCount();
    grid.makeRoomAt({0, 0});
    EXPECT_EQ(grid.occupiedCount(), before);
    std::set<QubitId> seen;
    for (std::int32_t r = 0; r < 4; ++r)
        for (std::int32_t c = 0; c < 5; ++c)
            if (grid.at({r, c}) != kNoQubit)
                EXPECT_TRUE(seen.insert(grid.at({r, c})).second);
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(before));
}

TEST(MakeRoom, ThrowsOnFullGrid)
{
    OccupancyGrid grid(2, 2);
    for (QubitId q = 0; q < 4; ++q)
        grid.place(q, {q / 2, q % 2});
    EXPECT_THROW(grid.makeRoomAt({0, 0}), ConfigError);
}

TEST(MakeRoom, ThrowsOutOfRange)
{
    OccupancyGrid grid(2, 2);
    EXPECT_THROW(grid.makeRoomAt({5, 5}), ConfigError);
}

TEST(MakeRoom, RepeatedInsertionFormsStack)
{
    // Repeatedly making room at the same cell pushes earlier arrivals
    // outward ring by ring (the port LRU-stack behaviour).
    OccupancyGrid grid(5, 5);
    const Coord port{2, 0};
    for (QubitId q = 0; q < 10; ++q) {
        grid.makeRoomAt(port);
        grid.place(q, port);
        EXPECT_EQ(grid.at(port), q);
        grid.remove(q);
        grid.place(q, *grid.nearestEmpty(port)); // park it nearby
    }
    EXPECT_EQ(grid.occupiedCount(), 10);
}

TEST(MakeRoom, FuzzPreservesInvariants)
{
    Rng rng(2024);
    OccupancyGrid grid = fullGridExcept(6, 6, {5, 5});
    for (int step = 0; step < 500; ++step) {
        const Coord dest{
            static_cast<std::int32_t>(rng.below(6)),
            static_cast<std::int32_t>(rng.below(6))};
        const std::int32_t steps = grid.makeRoomAt(dest);
        ASSERT_GE(steps, 0);
        ASSERT_TRUE(grid.isEmptyCell(dest));
        ASSERT_EQ(grid.occupiedCount(), 35);
        // Re-fill the hole with a fresh insertion to keep churn going.
        const QubitId q = grid.at({dest.row, (dest.col + 1) % 6});
        if (q != kNoQubit) {
            grid.remove(q);
            grid.place(q, dest);
        }
    }
}

} // namespace
} // namespace lsqca
