#include "sweep/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lsqca {
namespace {

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> pending;
    for (int i = 0; i < 100; ++i)
        pending.push_back(pool.submit([&ran] { ++ran; }));
    for (auto &f : pending)
        f.get();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, FutureCarriesResult)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ResultsMatchSubmissionOrder)
{
    // Futures pair each result with its submission slot even though
    // completion order is arbitrary.
    ThreadPool pool(8);
    std::vector<std::future<int>> pending;
    for (int i = 0; i < 64; ++i)
        pending.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(pending[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto boom = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(boom.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, MinimumOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, PendingTasksRunBeforeShutdown)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&ran] { ++ran; });
        // Destructor joins after the queue drains.
    }
    EXPECT_EQ(ran.load(), 32);
}

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(pool, 0, 1000, 16,
                [&hits](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        ++hits[static_cast<std::size_t>(i)];
                });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsANoop)
{
    ThreadPool pool(2);
    bool touched = false;
    parallelFor(pool, 5, 5, 8,
                [&touched](std::int64_t, std::int64_t) {
                    touched = true;
                });
    EXPECT_FALSE(touched);
}

TEST(ParallelSum, MatchesSerialSum)
{
    ThreadPool pool(4);
    auto body = [](std::int64_t lo, std::int64_t hi) {
        double s = 0.0;
        for (std::int64_t i = lo; i < hi; ++i)
            s += static_cast<double>(i);
        return s;
    };
    const double parallel = parallelSum(pool, 0, 100000, 64, body);
    EXPECT_DOUBLE_EQ(parallel, 100000.0 * 99999.0 / 2.0);
}

TEST(ParallelSum, DeterministicAcrossWorkerCounts)
{
    // Same chunk partition regardless of pool size: the floating-point
    // result is bit-identical for 1, 2, and 8 workers.
    auto body = [](std::int64_t lo, std::int64_t hi) {
        double s = 0.0;
        for (std::int64_t i = lo; i < hi; ++i)
            s += 1.0 / static_cast<double>(i + 1);
        return s;
    };
    ThreadPool one(1), two(2), eight(8);
    const double a = parallelSum(one, 0, 250000, 64, body);
    const double b = parallelSum(two, 0, 250000, 64, body);
    const double c = parallelSum(eight, 0, 250000, 64, body);
    EXPECT_EQ(a, b); // bitwise, not approximate
    EXPECT_EQ(b, c);
}

} // namespace
} // namespace lsqca
