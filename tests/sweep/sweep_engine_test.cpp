#include "sweep/sweep.h"

#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "common/error.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

/** A mixed job list exercising all three machine kinds. */
std::vector<SweepJob>
mixedJobs(const Program &program)
{
    std::vector<SweepJob> jobs;
    auto add = [&](const char *name, SamKind sam, std::int32_t banks,
                   double hybrid) {
        SweepJob job;
        job.name = name;
        job.program = &program;
        job.options.arch.sam = sam;
        job.options.arch.banks = banks;
        job.options.arch.hybridFraction = hybrid;
        jobs.push_back(job);
    };
    add("conv", SamKind::Conventional, 1, 0.0);
    add("point1", SamKind::Point, 1, 0.0);
    add("point2", SamKind::Point, 2, 0.0);
    add("line1", SamKind::Line, 1, 0.0);
    add("line4", SamKind::Line, 4, 0.0);
    add("hybrid", SamKind::Line, 2, 0.25);
    return jobs;
}

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.execBeats, b.execBeats);
    EXPECT_EQ(a.instructionsSimulated, b.instructionsSimulated);
    EXPECT_EQ(a.countedInstructions, b.countedInstructions);
    EXPECT_EQ(a.cpi, b.cpi); // bitwise: same division, same inputs
    EXPECT_EQ(a.magicConsumed, b.magicConsumed);
    EXPECT_EQ(a.magicStallBeats, b.magicStallBeats);
    EXPECT_EQ(a.memoryBeats, b.memoryBeats);
    EXPECT_EQ(a.opcodeCount, b.opcodeCount);
    EXPECT_EQ(a.opcodeBeats, b.opcodeBeats);
    EXPECT_EQ(a.density(), b.density());
}

TEST(SweepEngine, ParallelSweepsAreBitIdenticalToSerial)
{
    const Program program = translate(lowerToCliffordT(makeAdder(8)));
    const auto jobs = mixedJobs(program);

    // Direct serial reference, bypassing the engine entirely.
    std::vector<SimResult> reference;
    for (const auto &job : jobs)
        reference.push_back(simulate(*job.program, job.options));

    for (std::int32_t threads : {1, 2, 8}) {
        SweepEngine engine({threads});
        const SweepReport report = engine.run(jobs);
        ASSERT_EQ(report.results.size(), jobs.size());
        EXPECT_EQ(report.threads, threads);
        for (std::size_t i = 0; i < jobs.size(); ++i)
            expectIdentical(report.results[i], reference[i]);
    }
}

TEST(SweepEngine, ResultsStayInSubmissionOrder)
{
    // Jobs of wildly different sizes: the large one finishes last on a
    // multi-worker pool, but must stay in its submission slot.
    const Program small = translate(lowerToCliffordT(makeGhz(4)));
    const Program large = translate(lowerToCliffordT(makeAdder(12)));
    std::vector<SweepJob> jobs;
    SweepJob job;
    job.options.arch.sam = SamKind::Point;
    job.name = "large";
    job.program = &large;
    jobs.push_back(job);
    job.name = "small";
    job.program = &small;
    jobs.push_back(job);

    SweepEngine engine({4});
    const SweepReport report = engine.run(jobs);
    ASSERT_EQ(report.results.size(), 2u);
    EXPECT_EQ(report.results[0].instructionsSimulated, large.size());
    EXPECT_EQ(report.results[1].instructionsSimulated, small.size());
}

TEST(SweepEngine, EmptyJobListYieldsEmptyReport)
{
    SweepEngine engine({2});
    const SweepReport report = engine.run({});
    EXPECT_TRUE(report.results.empty());
    EXPECT_TRUE(report.jobSeconds.empty());
}

TEST(SweepEngine, JobExceptionPropagates)
{
    const Program program = translate(lowerToCliffordT(makeGhz(4)));
    std::vector<SweepJob> jobs;
    SweepJob ok;
    ok.name = "ok";
    ok.program = &program;
    ok.options.arch.sam = SamKind::Point;
    jobs.push_back(ok);
    SweepJob bad = ok;
    bad.name = "bad";
    bad.options.arch.banks = 3; // invalid for point SAM
    jobs.push_back(bad);
    SweepEngine engine({2});
    EXPECT_THROW(engine.run(jobs), ConfigError);
}

TEST(SweepEngine, RejectsNullProgram)
{
    std::vector<SweepJob> jobs(1);
    jobs[0].name = "null";
    SweepEngine engine({1});
    EXPECT_THROW(engine.run(jobs), ConfigError);
}

TEST(SweepEngine, BenchReportSchema)
{
    const Program program = translate(lowerToCliffordT(makeGhz(4)));
    std::vector<SweepJob> jobs;
    SweepJob job;
    job.name = "ghz/point#1";
    job.program = &program;
    job.options.arch.sam = SamKind::Point;
    jobs.push_back(job);
    SweepEngine engine({1});
    const SweepReport report = engine.run(jobs);
    const Json doc = benchReport("unit", jobs, report);
    const std::string text = doc.dump(0);
    EXPECT_NE(text.find("\"bench\":\"unit\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"ghz/point#1\""), std::string::npos);
    EXPECT_NE(text.find("\"cpi\":"), std::string::npos);
    EXPECT_NE(text.find("\"exec_beats\":"), std::string::npos);
    EXPECT_NE(text.find("\"wall_seconds\":"), std::string::npos);
}

} // namespace
} // namespace lsqca
