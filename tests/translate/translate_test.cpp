#include "translate/translate.h"

#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "common/error.h"
#include "synth/benchmarks.h"

namespace lsqca {
namespace {

std::vector<Opcode>
opcodesOf(const Program &p)
{
    std::vector<Opcode> ops;
    for (const auto &inst : p.instructions())
        ops.push_back(inst.op);
    return ops;
}

TEST(Translate, HadamardBecomesInMemory)
{
    Circuit c(1);
    c.h(0);
    const Program p = translate(c);
    ASSERT_EQ(p.size(), 1);
    EXPECT_EQ(p.instructions()[0].op, Opcode::HD_M);
    EXPECT_EQ(p.instructions()[0].m0, 0);
}

TEST(Translate, PhaseAndSdgBecomePhM)
{
    Circuit c(1);
    c.s(0);
    c.sdg(0);
    const Program p = translate(c);
    ASSERT_EQ(p.size(), 2);
    EXPECT_EQ(p.instructions()[0].op, Opcode::PH_M);
    EXPECT_EQ(p.instructions()[1].op, Opcode::PH_M);
}

TEST(Translate, PauliGatesAreElided)
{
    Circuit c(2);
    c.x(0);
    c.y(1);
    c.z(0);
    const Program p = translate(c);
    EXPECT_EQ(p.size(), 0);
}

TEST(Translate, TGadgetShape)
{
    Circuit c(1);
    c.t(0);
    const Program p = translate(c);
    const auto ops = opcodesOf(p);
    ASSERT_EQ(ops.size(), 5u);
    EXPECT_EQ(ops[0], Opcode::PM);
    EXPECT_EQ(ops[1], Opcode::MZZ_M);
    EXPECT_EQ(ops[2], Opcode::MX_C);
    EXPECT_EQ(ops[3], Opcode::SK);
    EXPECT_EQ(ops[4], Opcode::PH_M);
    // The gadget touches the target in memory.
    EXPECT_EQ(p.instructions()[1].m0, 0);
    EXPECT_EQ(p.instructions()[4].m0, 0);
    // The SK consumes the ZZ outcome.
    EXPECT_EQ(p.instructions()[3].v0, p.instructions()[1].v0);
    EXPECT_EQ(p.magicCount(), 1);
}

TEST(Translate, TdgSameShapeAsT)
{
    Circuit c(1);
    c.tdg(0);
    const Program p = translate(c);
    EXPECT_EQ(p.size(), 5);
    EXPECT_EQ(p.magicCount(), 1);
}

TEST(Translate, MagicSlotsRoundRobin)
{
    Circuit c(1);
    c.t(0);
    c.t(0);
    const Program p = translate(c);
    EXPECT_NE(p.instructions()[0].c0, p.instructions()[5].c0);
}

TEST(Translate, CxAndCzBecomeOptimizedInstructions)
{
    Circuit c(3);
    c.cx(0, 1);
    c.cz(1, 2);
    const Program p = translate(c);
    ASSERT_EQ(p.size(), 2);
    EXPECT_EQ(p.instructions()[0].op, Opcode::CX);
    EXPECT_EQ(p.instructions()[0].m0, 0);
    EXPECT_EQ(p.instructions()[0].m1, 1);
    EXPECT_EQ(p.instructions()[1].op, Opcode::CZ);
}

TEST(Translate, PrepAndMeasurementMapping)
{
    Circuit c(2);
    c.prepZ(0);
    c.prepX(1);
    const ClassicalBit b0 = c.measZ(0);
    const ClassicalBit b1 = c.measX(1);
    const Program p = translate(c);
    const auto ops = opcodesOf(p);
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[0], Opcode::PZ_M);
    EXPECT_EQ(ops[1], Opcode::PP_M);
    EXPECT_EQ(ops[2], Opcode::MZ_M);
    EXPECT_EQ(ops[3], Opcode::MX_M);
    // Classical bits map 1:1 onto the first program values.
    EXPECT_EQ(p.instructions()[2].v0, b0);
    EXPECT_EQ(p.instructions()[3].v0, b1);
}

TEST(Translate, ConditionedGateGetsSkGuard)
{
    Circuit c(2);
    const ClassicalBit b = c.measZ(0);
    c.appendConditioned(GateKind::S, 1, b);
    const Program p = translate(c);
    const auto ops = opcodesOf(p);
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0], Opcode::MZ_M);
    EXPECT_EQ(ops[1], Opcode::SK);
    EXPECT_EQ(p.instructions()[1].v0, b);
    EXPECT_EQ(ops[2], Opcode::PH_M);
}

TEST(Translate, ConditionedCzFromAndUncompute)
{
    Circuit c(3);
    c.andUncompute(0, 1, 2);
    const Program p = translate(lowerToCliffordT(c));
    const auto ops = opcodesOf(p);
    // MX.M (outcome), SK, CZ, PZ.M (ancilla recycle).
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[0], Opcode::MX_M);
    EXPECT_EQ(ops[1], Opcode::SK);
    EXPECT_EQ(ops[2], Opcode::CZ);
    EXPECT_EQ(ops[3], Opcode::PZ_M);
}

TEST(Translate, NonInMemoryUsesLoadStore)
{
    TranslateOptions opts;
    opts.inMemoryOps = false;
    Circuit c(1);
    c.h(0);
    const Program p = translate(c, opts);
    const auto ops = opcodesOf(p);
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0], Opcode::LD);
    EXPECT_EQ(ops[1], Opcode::HD_C);
    EXPECT_EQ(ops[2], Opcode::ST);
    EXPECT_EQ(p.countedInstructions(), 1);
}

TEST(Translate, NonInMemoryTGadgetUsesCrMeasurement)
{
    TranslateOptions opts;
    opts.inMemoryOps = false;
    Circuit c(1);
    c.t(0);
    const Program p = translate(c, opts);
    const auto ops = opcodesOf(p);
    ASSERT_EQ(ops.size(), 7u);
    EXPECT_EQ(ops[0], Opcode::LD);
    EXPECT_EQ(ops[1], Opcode::PM);
    EXPECT_EQ(ops[2], Opcode::MZZ_C);
    EXPECT_EQ(ops[3], Opcode::MX_C);
    EXPECT_EQ(ops[4], Opcode::SK);
    EXPECT_EQ(ops[5], Opcode::PH_C);
    EXPECT_EQ(ops[6], Opcode::ST);
    // Both CR cells are in play: the loaded target and the magic state.
    EXPECT_NE(p.instructions()[0].c0, p.instructions()[1].c0);
}

TEST(Translate, RegisterMetadataCopied)
{
    Circuit c;
    c.addRegister("control", 2);
    c.addRegister("system", 3);
    c.h(0);
    const Program p = translate(c);
    ASSERT_EQ(p.registers().size(), 2u);
    EXPECT_EQ(p.registers()[0].name, "control");
    EXPECT_EQ(p.registers()[1].size, 3);
    EXPECT_EQ(p.numVariables(), 5);
}

TEST(Translate, RejectsUnloweredMacros)
{
    Circuit c(3);
    c.ccx(0, 1, 2);
    EXPECT_THROW(translate(c), ConfigError);
}

TEST(Translate, RejectsTooFewSlots)
{
    Circuit c(1);
    TranslateOptions opts;
    opts.crSlots = 1;
    EXPECT_THROW(translate(c, opts), ConfigError);
}

TEST(Translate, NonInMemoryMeasurementStaysInMemory)
{
    // Measurements need no auxiliary cells (Table I: 0 beats), so even
    // the LD/ST translation leaves them as in-memory instructions.
    TranslateOptions opts;
    opts.inMemoryOps = false;
    Circuit c(1);
    c.measZ(0);
    const Program p = translate(c, opts);
    ASSERT_EQ(p.size(), 1);
    EXPECT_EQ(p.instructions()[0].op, Opcode::MZ_M);
}

TEST(Translate, GuardedCxKeepsOperandOrder)
{
    Circuit c(3);
    const ClassicalBit b = c.measZ(2);
    Gate g;
    g.kind = GateKind::CX;
    g.qubits[0] = 0;
    g.qubits[1] = 1;
    g.condBit = b;
    c.append(g);
    const Program p = translate(c);
    ASSERT_EQ(p.size(), 3); // MZ, SK, CX
    EXPECT_EQ(p.instructions()[1].op, Opcode::SK);
    EXPECT_EQ(p.instructions()[2].m0, 0);
    EXPECT_EQ(p.instructions()[2].m1, 1);
}

TEST(Translate, ValueSlotsNeverCollide)
{
    // Gadget-internal values must not alias circuit classical bits.
    Circuit c(2);
    const ClassicalBit b = c.measZ(0);
    c.t(1);
    const Program p = translate(c);
    const Instruction &zz = p.instructions()[2]; // MZ, PM, MZZ.M, ...
    EXPECT_EQ(zz.op, Opcode::MZZ_M);
    EXPECT_NE(zz.v0, b);
    EXPECT_GE(p.numValues(), 3);
}

TEST(Translate, CountedInstructionsMatchSimulatorDenominator)
{
    const Circuit lowered = lowerToCliffordT(makeAdder(5));
    TranslateOptions opts;
    opts.inMemoryOps = false;
    const Program p = translate(lowered, opts);
    EXPECT_LT(p.countedInstructions(), p.size()); // LD/ST excluded
    EXPECT_GT(p.countedInstructions(), 0);
}

TEST(Translate, SdgEmitsSingleInstructionLikeS)
{
    Circuit c(1);
    c.s(0);
    const auto s_count = translate(c).size();
    Circuit c2(1);
    c2.sdg(0);
    EXPECT_EQ(translate(c2).size(), s_count);
}

TEST(Translate, WholeBenchmarkTranslates)
{
    const Circuit lowered = lowerToCliffordT(makeAdder(8));
    const Program p = translate(lowered);
    EXPECT_GT(p.size(), 0);
    EXPECT_EQ(p.numVariables(), lowered.numQubits());
    EXPECT_EQ(p.magicCount(), lowered.tCount());
}

} // namespace
} // namespace lsqca
