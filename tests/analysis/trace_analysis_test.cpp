#include "analysis/trace_analysis.h"

#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

SimResult
traceOf(const Program &p)
{
    SimOptions opts;
    opts.arch.sam = SamKind::Conventional;
    opts.arch.instantMagic = true;
    opts.recordTrace = true;
    return simulate(p, opts);
}

TEST(TraceAnalysis, TimestampsPerVariable)
{
    Circuit c(3);
    c.h(0);
    c.h(0);
    c.h(1);
    const Program p = translate(c);
    const SimResult r = traceOf(p);
    const TraceAnalysis analysis(p, r);
    EXPECT_EQ(analysis.timestamps(0).size(), 2u);
    EXPECT_EQ(analysis.timestamps(1).size(), 1u);
    EXPECT_TRUE(analysis.timestamps(2).empty());
    EXPECT_EQ(analysis.totalReferences(), 3);
}

TEST(TraceAnalysis, PeriodsAreGapsBetweenReferences)
{
    // Two H on q0 back to back: period == 3 beats (H latency).
    Circuit c(1);
    c.h(0);
    c.h(0);
    c.h(0);
    const Program p = translate(c);
    const TraceAnalysis analysis(p, traceOf(p));
    const auto &all = analysis.groups()[0];
    EXPECT_EQ(all.references, 3);
    EXPECT_EQ(all.periods.count(), 2u);
    EXPECT_DOUBLE_EQ(analysis.meanPeriod(), 3.0);
}

TEST(TraceAnalysis, GroupsFollowRegisters)
{
    Circuit c;
    c.addRegister("hot", 1);
    c.addRegister("cold", 2);
    c.h(0);
    c.h(0);
    c.h(1);
    const Program p = translate(c);
    const TraceAnalysis analysis(p, traceOf(p));
    ASSERT_EQ(analysis.groups().size(), 3u); // all + 2 registers
    EXPECT_EQ(analysis.groups()[1].name, "hot");
    EXPECT_EQ(analysis.groups()[1].references, 2);
    EXPECT_EQ(analysis.groups()[2].name, "cold");
    EXPECT_EQ(analysis.groups()[2].references, 1);
}

TEST(TraceAnalysis, MagicDemandInterval)
{
    Circuit c(1);
    for (int i = 0; i < 5; ++i)
        c.t(0);
    const Program p = translate(c);
    const TraceAnalysis analysis(p, traceOf(p));
    EXPECT_GT(analysis.magicDemandInterval(), 0.0);
}

TEST(TraceAnalysis, SequentialFractionDetectsChains)
{
    // cat chain touches neighbors: sequential fraction should be high.
    const Program chain = translate(makeCat(40));
    const TraceAnalysis seq(chain, traceOf(chain));
    EXPECT_GT(seq.sequentialFraction(2), 0.8);
}

TEST(TraceAnalysis, SelectShowsRegisterSkew)
{
    // Fig. 8a: control/temporal hot, system cold.
    const Circuit lowered = lowerToCliffordT(makeSelect({5, 0}));
    const Program p = translate(lowered);
    const TraceAnalysis analysis(p, traceOf(p));
    double control_rate = 0, system_rate = 0;
    for (const auto &g : analysis.groups()) {
        if (g.name == "control")
            control_rate = static_cast<double>(g.references);
        if (g.name == "system")
            system_rate = static_cast<double>(g.references);
    }
    ASSERT_GT(control_rate, 0);
    ASSERT_GT(system_rate, 0);
    // Normalize per qubit: control has 8 qubits, system 25 (W=5).
    EXPECT_GT(control_rate / 8.0, 3.0 * system_rate / 25.0);
}

TEST(TraceAnalysis, TemporalLocalityInMultiplier)
{
    // Sec. III-B: many short periods, few long ones -> the CDF at small
    // periods is already substantial.
    const Circuit lowered = lowerToCliffordT(makeMultiplier({4, 3}));
    const Program p = translate(lowered);
    const TraceAnalysis analysis(p, traceOf(p));
    const auto &all = analysis.groups()[0];
    ASSERT_GT(all.periods.count(), 100u);
    const double median = all.periods.quantile(0.5);
    const double p99 = all.periods.quantile(0.99);
    EXPECT_LT(median, 10.0);
    EXPECT_GT(p99, median); // heavy tail exists
}

TEST(TraceAnalysis, RejectsOutOfRangeSamples)
{
    Program p(1);
    SimResult r;
    r.trace.push_back({0, 5}); // variable 5 out of range
    EXPECT_THROW(TraceAnalysis(p, r), ConfigError);
}

} // namespace
} // namespace lsqca
