#include "analysis/estimator.h"

#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

struct EstimatorCase
{
    const char *name;
    SamKind sam;
    std::int32_t banks;
    std::int32_t factories;
};

class EstimatorBounds : public ::testing::TestWithParam<EstimatorCase>
{
};

TEST_P(EstimatorBounds, LowerBoundsHoldAgainstSimulation)
{
    const auto param = GetParam();
    const Program p = translate(lowerToCliffordT(makeAdder(10)));
    ArchConfig cfg;
    cfg.sam = param.sam;
    cfg.banks = param.banks;
    cfg.factories = param.factories;
    const ResourceEstimate est = estimateResources(p, cfg);
    SimOptions opts;
    opts.arch = cfg;
    const SimResult sim = simulate(p, opts);

    EXPECT_LE(est.lowerBoundBeats, sim.execBeats);
    EXPECT_LE(est.cpiLowerBound, sim.cpi + 1e-9);
    EXPECT_EQ(est.magicStates, sim.magicConsumed);
    EXPECT_DOUBLE_EQ(est.floorplan.density(), sim.density());
}

INSTANTIATE_TEST_SUITE_P(
    Machines, EstimatorBounds,
    ::testing::Values(EstimatorCase{"point1", SamKind::Point, 1, 1},
                      EstimatorCase{"point2", SamKind::Point, 2, 2},
                      EstimatorCase{"line1", SamKind::Line, 1, 1},
                      EstimatorCase{"line4", SamKind::Line, 4, 4},
                      EstimatorCase{"conv", SamKind::Conventional, 1,
                                    1}));

TEST(Estimator, ConventionalMatchesExactlyWhenMagicBound)
{
    // A pure chain of T gates on one qubit: the conventional machine is
    // exactly magic-production bound after the warm buffer drains.
    Circuit c(1);
    for (int i = 0; i < 20; ++i)
        c.t(0);
    const Program p = translate(c);
    ArchConfig cfg;
    cfg.sam = SamKind::Conventional;
    const ResourceEstimate est = estimateResources(p, cfg);
    EXPECT_EQ(est.magicStates, 20);
    EXPECT_EQ(est.magicProductionBeats, 18 * 15); // 2 warm states
    SimOptions opts;
    opts.arch = cfg;
    const SimResult sim = simulate(p, opts);
    EXPECT_LE(est.lowerBoundBeats, sim.execBeats);
    // The bound is tight within the gadget tail (one surgery + phase).
    EXPECT_GE(est.lowerBoundBeats, sim.execBeats - 16);
}

TEST(Estimator, InstantMagicZeroesProduction)
{
    Circuit c(1);
    c.t(0);
    const Program p = translate(c);
    ArchConfig cfg;
    cfg.instantMagic = true;
    const ResourceEstimate est = estimateResources(p, cfg);
    EXPECT_EQ(est.magicProductionBeats, 0);
    EXPECT_GT(est.dataflowBeats, 0);
}

TEST(Estimator, MoreFactoriesShrinkProduction)
{
    const Program p = translate(lowerToCliffordT(makeAdder(12)));
    ArchConfig one;
    ArchConfig four;
    four.factories = 4;
    EXPECT_GT(estimateResources(p, one).magicProductionBeats,
              estimateResources(p, four).magicProductionBeats);
}

TEST(Estimator, HybridFractionCountsConventionalCells)
{
    Program p(100);
    ArchConfig cfg;
    cfg.sam = SamKind::Point;
    cfg.hybridFraction = 0.5;
    const ResourceEstimate est = estimateResources(p, cfg);
    EXPECT_EQ(est.floorplan.conventionalCells, 100); // 2 * 50
    EXPECT_LT(est.floorplan.density(), 1.0);
}

TEST(Estimator, ReportContainsKeyNumbers)
{
    const Program p = translate(lowerToCliffordT(makeAdder(4)));
    const ResourceEstimate est = estimateResources(p, ArchConfig{});
    const std::string report = est.report();
    EXPECT_NE(report.find("magic states"), std::string::npos);
    EXPECT_NE(report.find("memory density"), std::string::npos);
    EXPECT_NE(report.find(std::to_string(est.magicStates)),
              std::string::npos);
}

TEST(CodeDistance, GrowsWithExposure)
{
    const std::int32_t short_run = requiredCodeDistance(1'000, 100);
    const std::int32_t long_run = requiredCodeDistance(10'000'000, 100);
    EXPECT_GE(long_run, short_run);
    EXPECT_GE(short_run, 3);
}

TEST(CodeDistance, OverheadFeedsBackIntoDensity)
{
    // The paper's Sec. VI-B remark: a floorplan that is 2x slower may
    // need a larger distance, shrinking its physical-qubit advantage.
    const std::int64_t cells_dense = 407;  // point SAM, 400 qubits
    const std::int64_t cells_half = 800;   // conventional
    const std::int64_t fast = 100'000;
    const std::int64_t slow = 10 * fast; // 10x overhead
    const auto d_fast = requiredCodeDistance(fast, cells_half);
    const auto d_slow = requiredCodeDistance(slow, cells_dense);
    const auto phys_conv = physicalQubits(cells_half, d_fast);
    const auto phys_lsqca = physicalQubits(cells_dense, d_slow);
    // Even with the distance penalty the dense floorplan wins on
    // physical qubits here, but by less than the naive cell ratio.
    const double cell_ratio = static_cast<double>(cells_half) /
                              static_cast<double>(cells_dense);
    const double phys_ratio = static_cast<double>(phys_conv) /
                              static_cast<double>(phys_lsqca);
    EXPECT_LE(phys_ratio, cell_ratio + 1e-12);
}

TEST(CodeDistance, TighterBudgetNeedsLargerDistance)
{
    CodeDistanceModel strict;
    strict.targetFailure = 1e-6;
    CodeDistanceModel loose;
    loose.targetFailure = 1e-1;
    EXPECT_GT(requiredCodeDistance(1'000'000, 500, strict),
              requiredCodeDistance(1'000'000, 500, loose));
}

TEST(CodeDistance, ValidatesModel)
{
    CodeDistanceModel bad;
    bad.physicalErrorRate = 2e-2; // above threshold
    EXPECT_THROW(requiredCodeDistance(1, 1, bad), ConfigError);
    EXPECT_THROW(physicalQubits(10, 4), ConfigError); // even distance
}

TEST(CodeDistance, PhysicalQubitFormula)
{
    // d=3: 17 physical qubits per patch; d=11: 241.
    EXPECT_EQ(physicalQubits(1, 3), 17);
    EXPECT_EQ(physicalQubits(1, 11), 241);
    EXPECT_EQ(physicalQubits(10, 3), 170);
}

TEST(Estimator, DataflowDepthRespectsSkBarriers)
{
    Program p(2);
    const auto v = p.newValue();
    Instruction mz;
    mz.op = Opcode::MZ_M;
    mz.m0 = 0;
    mz.v0 = v;
    p.append(mz);
    Instruction sk;
    sk.op = Opcode::SK;
    sk.v0 = v;
    p.append(sk);
    Instruction ph;
    ph.op = Opcode::PH_M;
    ph.m0 = 0;
    p.append(ph);
    ArchConfig cfg;
    cfg.lat.skWait = 5;
    const ResourceEstimate est = estimateResources(p, cfg);
    // SK waits 5 after the measurement; but PH on m0 depends only on
    // the variable here (the barrier is modeled in the simulator); the
    // dataflow estimate must still be <= simulation.
    SimOptions opts;
    opts.arch = cfg;
    EXPECT_LE(est.dataflowBeats, simulate(p, opts).execBeats);
}

} // namespace
} // namespace lsqca
