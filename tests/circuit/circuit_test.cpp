#include "circuit/circuit.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace lsqca {
namespace {

TEST(Circuit, RegistersAreContiguous)
{
    Circuit c;
    const QubitId a = c.addRegister("a", 3);
    const QubitId b = c.addRegister("b", 2);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 3);
    EXPECT_EQ(c.numQubits(), 5);
    EXPECT_EQ(c.registerOf(0), 0);
    EXPECT_EQ(c.registerOf(4), 1);
    EXPECT_EQ(c.reg("b").size, 2);
    EXPECT_THROW(c.reg("missing"), ConfigError);
    EXPECT_THROW(c.addRegister("a", 1), ConfigError); // duplicate name
}

TEST(Circuit, OperandValidation)
{
    Circuit c(2);
    EXPECT_THROW(c.h(2), ConfigError);
    EXPECT_THROW(c.h(-1), ConfigError);
    EXPECT_THROW(c.cx(0, 0), ConfigError); // duplicate operands
    EXPECT_NO_THROW(c.cx(0, 1));
}

TEST(Circuit, MeasurementAllocatesBits)
{
    Circuit c(2);
    const ClassicalBit b0 = c.measZ(0);
    const ClassicalBit b1 = c.measX(1);
    EXPECT_EQ(b0, 0);
    EXPECT_EQ(b1, 1);
    EXPECT_EQ(c.numClassicalBits(), 2);
}

TEST(Circuit, ConditionedGateValidation)
{
    Circuit c(2);
    const ClassicalBit b = c.measZ(0);
    EXPECT_NO_THROW(c.appendConditioned(GateKind::S, 1, b));
    EXPECT_THROW(c.appendConditioned(GateKind::S, 1, 99), ConfigError);
    EXPECT_THROW(c.appendConditioned(GateKind::CX, 1, b), ConfigError);
}

TEST(Circuit, TCountCountsMacros)
{
    Circuit c(4);
    c.t(0);
    c.tdg(1);
    EXPECT_EQ(c.tCount(), 2);
    c.ccx(0, 1, 2);     // +4 (temporary-AND equivalent)
    c.andInit(0, 1, 3); // +4
    EXPECT_EQ(c.tCount(), 10);
    EXPECT_EQ(c.toffoliCount(), 2);
}

TEST(Circuit, TwoQubitCount)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cz(1, 2);
    c.ccx(0, 1, 2);
    EXPECT_EQ(c.twoQubitCount(), 3);
}

TEST(Circuit, UnitDepthTracksDependencies)
{
    Circuit c(3);
    // Parallel layer: h q0, h q1, h q2 -> depth 1.
    c.h(0);
    c.h(1);
    c.h(2);
    EXPECT_EQ(c.unitDepth(), 1);
    // Serial chain adds depth.
    c.cx(0, 1);
    c.cx(1, 2);
    EXPECT_EQ(c.unitDepth(), 3);
}

TEST(Circuit, DepthHonorsLatencyFunction)
{
    Circuit c(2);
    c.h(0);      // 3 beats
    c.s(0);      // 2 beats
    c.cx(0, 1);  // 1 beat
    const auto latency = [](const Gate &g) -> std::int64_t {
        switch (g.kind) {
          case GateKind::H: return 3;
          case GateKind::S: return 2;
          case GateKind::CX: return 1;
          default: return 0;
        }
    };
    EXPECT_EQ(c.depth(latency), 6);
}

TEST(Circuit, DepthIncludesClassicalEdges)
{
    Circuit c(2);
    const ClassicalBit b = c.measZ(0);
    c.appendConditioned(GateKind::X, 1, b); // depends on b
    // Unit latency: meas (1) then conditioned x (1) = 2 even though the
    // two gates touch disjoint qubits.
    EXPECT_EQ(c.unitDepth(), 2);
}

TEST(Circuit, ReferenceCounts)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(0, 2);
    const auto refs = c.referenceCounts();
    EXPECT_EQ(refs[0], 3);
    EXPECT_EQ(refs[1], 1);
    EXPECT_EQ(refs[2], 1);
}

TEST(Gate, StringRendering)
{
    Circuit c(3);
    c.cx(0, 1);
    EXPECT_EQ(c.gates().back().str(), "cx q0, q1");
    const ClassicalBit b = c.measZ(2);
    EXPECT_EQ(c.gates().back().str(), "meas_z q2 -> c" + std::to_string(b));
    c.appendConditioned(GateKind::S, 0, b);
    EXPECT_EQ(c.gates().back().str(), "s q0 if c0");
}

TEST(Gate, ArityTable)
{
    EXPECT_EQ(gateArity(GateKind::H), 1);
    EXPECT_EQ(gateArity(GateKind::CX), 2);
    EXPECT_EQ(gateArity(GateKind::CCX), 3);
    EXPECT_EQ(gateArity(GateKind::AndInit), 3);
    EXPECT_EQ(gateArity(GateKind::MeasX), 1);
}

} // namespace
} // namespace lsqca
