#include "circuit/statevector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace lsqca {
namespace {

constexpr double kEps = 1e-10;

TEST(StateVector, InitializesToZeroState)
{
    StateVector sv(3);
    EXPECT_NEAR(sv.probability(0), 1.0, kEps);
    EXPECT_NEAR(sv.norm(), 1.0, kEps);
}

TEST(StateVector, CapacityGuard)
{
    EXPECT_THROW(StateVector(0), ConfigError);
    EXPECT_THROW(StateVector(StateVector::kMaxQubits + 1), ConfigError);
}

TEST(StateVector, XFlipsBit)
{
    StateVector sv(2);
    sv.applyX(1);
    EXPECT_NEAR(sv.probability(0b10), 1.0, kEps);
}

TEST(StateVector, InvolutionsSquareToIdentity)
{
    StateVector sv(1);
    sv.applyH(0);
    sv.applyH(0);
    EXPECT_NEAR(sv.probability(0), 1.0, kEps);
    sv.applyX(0);
    sv.applyX(0);
    EXPECT_NEAR(sv.probability(0), 1.0, kEps);
}

TEST(StateVector, SSquaredIsZ)
{
    // On |+>: S^2 |+> == Z |+> == |->, so H S S |+> == |1>.
    StateVector sv(1);
    sv.applyH(0);
    sv.applyS(0);
    sv.applyS(0);
    sv.applyH(0);
    EXPECT_NEAR(sv.probabilityOne(0), 1.0, kEps);
}

TEST(StateVector, TSquaredIsS)
{
    StateVector a(1), b(1);
    a.applyH(0);
    a.applyT(0);
    a.applyT(0);
    b.applyH(0);
    b.applyS(0);
    EXPECT_NEAR(a.fidelity(b), 1.0, kEps);
}

TEST(StateVector, TdgUndoesT)
{
    StateVector sv(1);
    sv.applyH(0);
    sv.applyT(0);
    sv.applyTdg(0);
    sv.applyH(0);
    EXPECT_NEAR(sv.probability(0), 1.0, kEps);
}

TEST(StateVector, SdgUndoesS)
{
    StateVector sv(1);
    sv.applyH(0);
    sv.applyS(0);
    sv.applySdg(0);
    sv.applyH(0);
    EXPECT_NEAR(sv.probability(0), 1.0, kEps);
}

TEST(StateVector, HXHIsZ)
{
    StateVector a(1), b(1);
    a.applyH(0);
    a.applyX(0);
    a.applyH(0);
    b.applyZ(0);
    EXPECT_NEAR(a.fidelity(b), 1.0, kEps);
}

TEST(StateVector, YEqualsIXZUpToPhase)
{
    // |<psi_Y | psi_XZ>|^2 == 1 since Y == i X Z.
    StateVector a(1), b(1);
    a.applyH(0);
    a.applyY(0);
    b.applyH(0);
    b.applyZ(0);
    b.applyX(0);
    EXPECT_NEAR(a.fidelity(b), 1.0, kEps);
}

TEST(StateVector, BellStateProbabilities)
{
    StateVector sv(2);
    sv.applyH(0);
    sv.applyCX(0, 1);
    EXPECT_NEAR(sv.probability(0b00), 0.5, kEps);
    EXPECT_NEAR(sv.probability(0b11), 0.5, kEps);
    EXPECT_NEAR(sv.probability(0b01), 0.0, kEps);
    EXPECT_NEAR(sv.probability(0b10), 0.0, kEps);
}

TEST(StateVector, CZPhaseOnlyOnBothOnes)
{
    // CZ on |11> flips the sign; verify via interference: the state
    // H(0) H(1) CZ H(0) H(1) |00> has probability 1/4 on each of the
    // four outcomes... instead compare against the direct matrix effect.
    StateVector a(2), b(2);
    a.applyX(0);
    a.applyX(1);
    a.applyCZ(0, 1);
    b.applyX(0);
    b.applyX(1);
    b.applyZ(0); // phase -1 on |1> of qubit 0 == global -1 here
    EXPECT_NEAR(a.fidelity(b), 1.0, kEps);
}

TEST(StateVector, SwapExchangesStates)
{
    StateVector sv(2);
    sv.applyX(0);
    sv.applySwap(0, 1);
    EXPECT_NEAR(sv.probability(0b10), 1.0, kEps);
}

TEST(StateVector, CCXTruthTable)
{
    for (std::uint64_t in = 0; in < 8; ++in) {
        StateVector sv(3);
        for (int q = 0; q < 3; ++q)
            if (in & (1u << q))
                sv.applyX(q);
        sv.applyCCX(0, 1, 2);
        const std::uint64_t expected =
            ((in & 1) && (in & 2)) ? (in ^ 4) : in;
        EXPECT_NEAR(sv.probability(expected), 1.0, kEps)
            << "input " << in;
    }
}

TEST(StateVector, MeasureZCollapsesDeterministically)
{
    StateVector sv(1);
    sv.applyX(0);
    EXPECT_TRUE(sv.measureZ(0));
    EXPECT_NEAR(sv.probabilityOne(0), 1.0, kEps);
}

TEST(StateVector, MeasureXOnPlusIsZero)
{
    StateVector sv(1);
    sv.applyH(0); // |+>
    EXPECT_FALSE(sv.measureX(0));
    sv.applyZ(0); // |->
    EXPECT_TRUE(sv.measureX(0));
}

TEST(StateVector, MeasurementPreservesNorm)
{
    StateVector sv(3, 123);
    sv.applyH(0);
    sv.applyCX(0, 1);
    sv.applyH(2);
    sv.measureZ(1);
    EXPECT_NEAR(sv.norm(), 1.0, kEps);
}

TEST(StateVector, ResetsWork)
{
    StateVector sv(2, 7);
    sv.applyH(0);
    sv.applyCX(0, 1);
    sv.resetZ(0);
    EXPECT_NEAR(sv.probabilityOne(0), 0.0, kEps);
    sv.resetX(1);
    // |+> has probability 1/2 of measuring one.
    EXPECT_NEAR(sv.probabilityOne(1), 0.5, kEps);
}

TEST(StateVector, ConditionedGateRespectsBits)
{
    Circuit c(2);
    const ClassicalBit b = c.measZ(0); // measures |0> -> bit 0
    c.appendConditioned(GateKind::X, 1, b);
    auto run = runStateVector(c);
    EXPECT_NEAR(run.state.probabilityOne(1), 0.0, kEps);

    Circuit c2(2);
    c2.x(0);
    const ClassicalBit b2 = c2.measZ(0); // bit 1
    c2.appendConditioned(GateKind::X, 1, b2);
    auto run2 = runStateVector(c2);
    EXPECT_NEAR(run2.state.probabilityOne(1), 1.0, kEps);
}

TEST(StateVector, RunClassicalEchoesInputs)
{
    Circuit c(4);
    // Identity network: outputs mirror the prepared inputs.
    const auto bits = runClassical(c, {1, 3}, {0, 1, 2, 3});
    EXPECT_FALSE(bits[0]);
    EXPECT_TRUE(bits[1]);
    EXPECT_FALSE(bits[2]);
    EXPECT_TRUE(bits[3]);
}

TEST(StateVector, GhzCircuitViaGateInterface)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    auto run = runStateVector(c);
    EXPECT_NEAR(run.state.probability(0b000), 0.5, kEps);
    EXPECT_NEAR(run.state.probability(0b111), 0.5, kEps);
}

TEST(StateVector, AndMacrosActAsToffoli)
{
    Circuit c(3);
    c.x(0);
    c.x(1);
    c.andInit(0, 1, 2);
    auto run = runStateVector(c);
    EXPECT_NEAR(run.state.probabilityOne(2), 1.0, kEps);
}

} // namespace
} // namespace lsqca
