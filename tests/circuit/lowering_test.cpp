#include "circuit/lowering.h"

#include <gtest/gtest.h>

#include "circuit/statevector.h"
#include "common/error.h"

namespace lsqca {
namespace {

constexpr double kEps = 1e-9;

/**
 * Fidelity between running @p reference and @p lowered from the same
 * computational-basis input (macro gates execute natively in the
 * reference; measurement-based gadget randomness must not matter).
 */
double
loweredFidelity(const Circuit &reference, const Circuit &lowered,
                const std::vector<QubitId> &ones, std::uint64_t seed)
{
    auto ref = runStateVector(reference, ones, seed);
    auto low = runStateVector(lowered, ones, seed + 17);
    return low.state.fidelity(ref.state);
}

class CcxLowering : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CcxLowering, Textbook7TMatchesCcxOnBasisStates)
{
    const std::uint64_t in = GetParam();
    Circuit macro(3);
    macro.ccx(0, 1, 2);
    const Circuit lowered = lowerToCliffordT(macro,
                                             ToffoliStyle::Textbook7T);
    EXPECT_EQ(lowered.numQubits(), 3);
    std::vector<QubitId> ones;
    for (int q = 0; q < 3; ++q)
        if (in & (1u << q))
            ones.push_back(q);
    EXPECT_NEAR(loweredFidelity(macro, lowered, ones, 11), 1.0, kEps)
        << "basis input " << in;
}

TEST_P(CcxLowering, TemporaryAnd4TMatchesCcxOnBasisStates)
{
    const std::uint64_t in = GetParam();
    Circuit macro(3);
    macro.ccx(0, 1, 2);
    const Circuit lowered =
        lowerToCliffordT(macro, ToffoliStyle::TemporaryAnd4T);
    EXPECT_EQ(lowered.numQubits(), 4); // + ccx_anc
    std::vector<QubitId> ones;
    for (int q = 0; q < 3; ++q)
        if (in & (1u << q))
            ones.push_back(q);
    // Compare only the 3 data qubits: the ancilla returns to |0>, so
    // full-state fidelity against the macro (padded) still works.
    Circuit macro_padded(4);
    macro_padded.ccx(0, 1, 2);
    EXPECT_NEAR(loweredFidelity(macro_padded, lowered, ones, 23), 1.0,
                kEps)
        << "basis input " << in;
}

INSTANTIATE_TEST_SUITE_P(AllBasisInputs, CcxLowering,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Lowering, CcxOnSuperposition)
{
    Circuit macro(3);
    macro.h(0);
    macro.h(1);
    macro.ccx(0, 1, 2);
    const Circuit lowered = lowerToCliffordT(macro,
                                             ToffoliStyle::Textbook7T);
    EXPECT_NEAR(loweredFidelity(macro, lowered, {}, 31), 1.0, kEps);
}

TEST(Lowering, And4TGadgetExactOnSuperposition)
{
    // The 4-T AND must leave *zero* residual phase, which only shows up
    // on superposed controls.
    Circuit macro(3);
    macro.h(0);
    macro.h(1);
    macro.andInit(0, 1, 2);
    const Circuit lowered = lowerToCliffordT(macro);
    EXPECT_NEAR(loweredFidelity(macro, lowered, {}, 37), 1.0, kEps);
}

TEST(Lowering, AndComputeUncomputeRoundTrip)
{
    Circuit macro(3);
    macro.h(0);
    macro.h(1);
    macro.andInit(0, 1, 2);
    macro.s(0); // some work in between
    macro.andUncompute(0, 1, 2);
    macro.h(0);
    macro.h(1);
    const Circuit lowered = lowerToCliffordT(macro);
    // The uncompute involves a random X-basis measurement; the final
    // state must still match the reference exactly.
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL})
        EXPECT_NEAR(loweredFidelity(macro, lowered, {}, seed), 1.0, kEps);
}

TEST(Lowering, AndGadgetTCountIsFour)
{
    Circuit macro(3);
    macro.andInit(0, 1, 2);
    const Circuit lowered = lowerToCliffordT(macro);
    EXPECT_EQ(lowered.tCount(), 4);
}

TEST(Lowering, Textbook7TCountIsSeven)
{
    Circuit macro(3);
    macro.ccx(0, 1, 2);
    const Circuit lowered = lowerToCliffordT(macro,
                                             ToffoliStyle::Textbook7T);
    EXPECT_EQ(lowered.tCount(), 7);
}

TEST(Lowering, AndUncomputeHasZeroTCount)
{
    Circuit macro(3);
    macro.andUncompute(0, 1, 2);
    const Circuit lowered = lowerToCliffordT(macro);
    EXPECT_EQ(lowered.tCount(), 0);
}

TEST(Lowering, SwapBecomesThreeCx)
{
    Circuit macro(2);
    macro.swap(0, 1);
    const Circuit lowered = lowerToCliffordT(macro);
    EXPECT_EQ(lowered.size(), 3);
    for (const auto &g : lowered.gates())
        EXPECT_EQ(g.kind, GateKind::CX);
    EXPECT_NEAR(loweredFidelity(macro, lowered, {0}, 41), 1.0, kEps);
}

TEST(Lowering, OutputContainsOnlyCliffordT)
{
    Circuit macro(4);
    macro.h(0);
    macro.ccx(0, 1, 2);
    macro.andInit(1, 2, 3);
    macro.andUncompute(1, 2, 3);
    macro.swap(0, 3);
    for (ToffoliStyle style :
         {ToffoliStyle::Textbook7T, ToffoliStyle::TemporaryAnd4T}) {
        const Circuit lowered = lowerToCliffordT(macro, style);
        for (const auto &g : lowered.gates())
            EXPECT_TRUE(isCliffordTGate(g.kind)) << gateName(g.kind);
    }
}

TEST(Lowering, PreservesRegistersAndBits)
{
    Circuit macro;
    macro.addRegister("alpha", 2);
    macro.addRegister("beta", 2);
    macro.measZ(0);
    macro.ccx(0, 1, 2);
    const Circuit lowered = lowerToCliffordT(macro,
                                             ToffoliStyle::Textbook7T);
    ASSERT_EQ(lowered.registers().size(), 2u);
    EXPECT_EQ(lowered.registers()[0].name, "alpha");
    EXPECT_EQ(lowered.registers()[1].name, "beta");
    EXPECT_GE(lowered.numClassicalBits(), macro.numClassicalBits());
}

TEST(Lowering, SharedAncillaReusedAcrossCcx)
{
    Circuit macro(4);
    macro.ccx(0, 1, 2);
    macro.ccx(1, 2, 3);
    const Circuit lowered =
        lowerToCliffordT(macro, ToffoliStyle::TemporaryAnd4T);
    EXPECT_EQ(lowered.numQubits(), 5); // exactly one extra ancilla
    // Semantics on a random-ish basis input.
    Circuit padded(5);
    padded.ccx(0, 1, 2);
    padded.ccx(1, 2, 3);
    EXPECT_NEAR(loweredFidelity(padded, lowered, {0, 1}, 53), 1.0, kEps);
}

} // namespace
} // namespace lsqca
