/**
 * @file
 * Semantic fuzz: random macro-level circuits (Clifford + T + CCX +
 * temporary-AND pairs) must match their Clifford+T lowerings exactly on
 * the state-vector oracle, for both Toffoli styles and across
 * measurement-randomness seeds. This is the broad net behind the
 * hand-picked lowering tests.
 */

#include <gtest/gtest.h>

#include <vector>

#include "circuit/lowering.h"
#include "circuit/statevector.h"
#include "common/rng.h"

namespace lsqca {
namespace {

constexpr double kEps = 1e-9;

/**
 * Random 6-qubit macro circuit. AND targets are tracked so AndInit
 * always hits a |0> cell and is eventually uncomputed, and the controls
 * of a live AND are frozen until its uncompute — the temporary-AND
 * contract every real generator in src/synth honors (measurement-based
 * uncomputation assumes the controls are untouched in between).
 * Qubits 4-5 serve as the AND scratch pool.
 */
Circuit
randomMacroCircuit(std::uint64_t seed, std::int64_t gates)
{
    Rng rng(seed);
    Circuit c(6);
    // Scratch state: -1 = free, otherwise packed (a<<3)|b of the live
    // AND's controls (those controls are frozen while live).
    std::array<std::int32_t, 2> live{-1, -1};
    auto frozen = [&](QubitId q) {
        for (const std::int32_t pair : live)
            if (pair != -1 && ((pair >> 3) == q || (pair & 7) == q))
                return true;
        return false;
    };
    auto freeQubit = [&]() -> QubitId {
        for (int attempt = 0; attempt < 8; ++attempt) {
            const auto q = static_cast<QubitId>(rng.below(4));
            if (!frozen(q))
                return q;
        }
        return kNoQubit;
    };
    for (std::int64_t i = 0; i < gates; ++i) {
        switch (rng.below(10)) {
          case 0: case 1: case 2: case 3: {
            const QubitId q = freeQubit();
            if (q == kNoQubit)
                break;
            switch (rng.below(4)) {
              case 0: c.h(q); break;
              case 1: c.s(q); break;
              case 2: c.t(q); break;
              default: c.tdg(q); break;
            }
            break;
          }
          case 4: case 5: {
            const QubitId a = freeQubit();
            const QubitId b = freeQubit();
            if (a == kNoQubit || b == kNoQubit || a == b)
                break;
            if (rng.chance(0.5))
                c.cx(a, b);
            else
                c.cz(a, b);
            break;
          }
          case 6: {
            const QubitId a = freeQubit();
            const QubitId b = freeQubit();
            const QubitId t = freeQubit();
            if (a == kNoQubit || b == kNoQubit || t == kNoQubit ||
                a == b || a == t || b == t)
                break;
            c.ccx(a, b, t);
            break;
          }
          case 7: { // open a temporary AND if a scratch cell is free
            for (std::size_t s = 0; s < live.size(); ++s) {
                if (live[s] == -1) {
                    const QubitId a = freeQubit();
                    const QubitId b = freeQubit();
                    if (a == kNoQubit || b == kNoQubit || a == b)
                        break;
                    c.andInit(a, b, static_cast<QubitId>(4 + s));
                    live[s] = (a << 3) | b;
                    break;
                }
            }
            break;
          }
          case 8: { // close a live AND
            for (std::size_t s = 0; s < live.size(); ++s) {
                if (live[s] != -1) {
                    c.andUncompute(live[s] >> 3, live[s] & 7,
                                   static_cast<QubitId>(4 + s));
                    live[s] = -1;
                    break;
                }
            }
            break;
          }
          default: {
            const QubitId q = freeQubit();
            if (q != kNoQubit)
                c.x(q);
            break;
          }
        }
    }
    for (std::size_t s = 0; s < live.size(); ++s)
        if (live[s] != -1)
            c.andUncompute(live[s] >> 3, live[s] & 7,
                           static_cast<QubitId>(4 + s));
    return c;
}

class LoweringFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LoweringFuzz, Textbook7TMatchesMacros)
{
    const Circuit macro = randomMacroCircuit(GetParam(), 60);
    const Circuit lowered =
        lowerToCliffordT(macro, ToffoliStyle::Textbook7T);
    auto ref = runStateVector(macro, {0, 2}, GetParam());
    auto low = runStateVector(lowered, {0, 2}, GetParam() * 31 + 7);
    EXPECT_NEAR(low.state.fidelity(ref.state), 1.0, kEps);
}

TEST_P(LoweringFuzz, TemporaryAnd4TMatchesMacros)
{
    const Circuit macro = randomMacroCircuit(GetParam(), 60);
    const Circuit lowered =
        lowerToCliffordT(macro, ToffoliStyle::TemporaryAnd4T);
    // The 4T style may append one shared ancilla; pad the reference.
    Circuit padded(lowered.numQubits());
    for (const auto &g : macro.gates())
        padded.append(g);
    auto ref = runStateVector(padded, {1, 3}, GetParam());
    auto low = runStateVector(lowered, {1, 3}, GetParam() * 17 + 3);
    EXPECT_NEAR(low.state.fidelity(ref.state), 1.0, kEps);
}

TEST_P(LoweringFuzz, LoweredOutputIsAlwaysCliffordT)
{
    const Circuit macro = randomMacroCircuit(GetParam(), 80);
    for (ToffoliStyle style :
         {ToffoliStyle::Textbook7T, ToffoliStyle::TemporaryAnd4T})
        for (const auto &g : lowerToCliffordT(macro, style).gates())
            ASSERT_TRUE(isCliffordTGate(g.kind)) << gateName(g.kind);
}

TEST_P(LoweringFuzz, MeasurementRandomnessDoesNotLeak)
{
    // The AND-uncompute involves random X-measurements; the corrected
    // state must be seed-independent.
    const Circuit macro = randomMacroCircuit(GetParam(), 50);
    const Circuit lowered = lowerToCliffordT(macro);
    auto a = runStateVector(lowered, {}, 1111);
    auto b = runStateVector(lowered, {}, 2222);
    EXPECT_NEAR(a.state.fidelity(b.state), 1.0, kEps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoweringFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

} // namespace
} // namespace lsqca
