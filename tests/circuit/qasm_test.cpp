#include "circuit/qasm.h"

#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "synth/benchmarks.h"

namespace lsqca {
namespace {

TEST(Qasm, HeaderAndRegisters)
{
    Circuit c;
    c.addRegister("data", 3);
    c.addRegister("anc", 1);
    const std::string qasm = toQasm(c);
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("include \"qelib1.inc\";"), std::string::npos);
    EXPECT_NE(qasm.find("qreg data[3];"), std::string::npos);
    EXPECT_NE(qasm.find("qreg anc[1];"), std::string::npos);
}

TEST(Qasm, AnonymousRegisterFallback)
{
    const Circuit c(2);
    // Circuit(2) creates a register named "q".
    EXPECT_NE(toQasm(c).find("qreg q[2];"), std::string::npos);
}

TEST(Qasm, GateSpellings)
{
    Circuit c;
    c.addRegister("r", 3);
    c.h(0);
    c.sdg(1);
    c.t(2);
    c.cx(0, 1);
    c.cz(1, 2);
    c.swap(0, 2);
    c.ccx(0, 1, 2);
    const std::string qasm = toQasm(c);
    EXPECT_NE(qasm.find("h r[0];"), std::string::npos);
    EXPECT_NE(qasm.find("sdg r[1];"), std::string::npos);
    EXPECT_NE(qasm.find("t r[2];"), std::string::npos);
    EXPECT_NE(qasm.find("cx r[0], r[1];"), std::string::npos);
    EXPECT_NE(qasm.find("cz r[1], r[2];"), std::string::npos);
    EXPECT_NE(qasm.find("swap r[0], r[2];"), std::string::npos);
    EXPECT_NE(qasm.find("ccx r[0], r[1], r[2];"), std::string::npos);
}

TEST(Qasm, RegisterRelativeIndices)
{
    Circuit c;
    c.addRegister("a", 2);
    c.addRegister("b", 2);
    c.cx(1, 2); // a[1] -> b[0]
    EXPECT_NE(toQasm(c).find("cx a[1], b[0];"), std::string::npos);
}

TEST(Qasm, MeasurementsUsePerBitCregs)
{
    Circuit c(2);
    const ClassicalBit b0 = c.measZ(0);
    const ClassicalBit b1 = c.measX(1);
    const std::string qasm = toQasm(c);
    EXPECT_NE(qasm.find("creg c0[1];"), std::string::npos);
    EXPECT_NE(qasm.find("creg c1[1];"), std::string::npos);
    EXPECT_NE(qasm.find("measure q[0] -> c" + std::to_string(b0)),
              std::string::npos);
    // X-basis measurement is H-conjugated.
    EXPECT_NE(qasm.find("h q[1];\nmeasure q[1] -> c" +
                        std::to_string(b1)),
              std::string::npos);
}

TEST(Qasm, ConditionedGates)
{
    Circuit c(2);
    const ClassicalBit b = c.measZ(0);
    c.appendConditioned(GateKind::S, 1, b);
    c.czConditioned(0, 1, b);
    const std::string qasm = toQasm(c);
    EXPECT_NE(qasm.find("if (c0 == 1) s q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("if (c0 == 1) cz q[0], q[1];"),
              std::string::npos);
}

TEST(Qasm, PreparationsUseReset)
{
    Circuit c(1);
    c.prepZ(0);
    c.prepX(0);
    const std::string qasm = toQasm(c);
    EXPECT_NE(qasm.find("reset q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("reset q[0];\nh q[0];"), std::string::npos);
}

TEST(Qasm, AndMacrosAnnotated)
{
    Circuit c(3);
    c.andInit(0, 1, 2);
    c.andUncompute(0, 1, 2);
    const std::string qasm = toQasm(c);
    EXPECT_NE(qasm.find("// temporary AND (4T)"), std::string::npos);
    EXPECT_NE(qasm.find("// AND uncompute"), std::string::npos);
}

TEST(Qasm, WholeBenchmarkExports)
{
    const std::string qasm = toQasm(makeGhz(16));
    EXPECT_NE(qasm.find("qreg q[16];"), std::string::npos);
    // 15 chained CNOTs.
    std::size_t count = 0;
    for (std::size_t pos = qasm.find("cx "); pos != std::string::npos;
         pos = qasm.find("cx ", pos + 1))
        ++count;
    EXPECT_EQ(count, 15u);
}

TEST(Qasm, LoweredCircuitExportsCleanly)
{
    const std::string qasm =
        toQasm(lowerToCliffordT(makeSquareRoot({2, 1, 1})));
    EXPECT_NE(qasm.find("tdg"), std::string::npos);
    EXPECT_EQ(qasm.find("ccx"), std::string::npos); // fully lowered
}

} // namespace
} // namespace lsqca
