#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

/**
 * Headline regression (paper abstract / Sec. VI-B): on the 400-qubit
 * multiplier with one MSF, line-SAM reaches ~87% memory density at a
 * small execution-time overhead versus the conventional 50% floorplan.
 *
 * A steady-state prefix keeps the test fast; the shift-add loop is
 * periodic, so the overhead ratio converges quickly.
 */
class MultiplierHeadline : public ::testing::Test
{
  protected:
    static constexpr std::int64_t kPrefix = 120'000;

    static const Program &
    program()
    {
        static const Program p =
            translate(lowerToCliffordT(makeMultiplier()));
        return p;
    }
};

TEST_F(MultiplierHeadline, LineSamDensityMatchesPaper)
{
    SimOptions opts;
    opts.arch.sam = SamKind::Line;
    opts.maxInstructions = 1; // density is static
    const SimResult r = simulate(program(), opts);
    EXPECT_GE(r.density(), 0.85);
    EXPECT_LE(r.density(), 0.88);
}

TEST_F(MultiplierHeadline, LineSamOverheadIsSmallAtOneFactory)
{
    SimOptions line;
    line.arch.sam = SamKind::Line;
    line.maxInstructions = kPrefix;
    const auto lsqca = simulate(program(), line).execBeats;
    const auto conv =
        simulateConventional(program(), {.maxInstructions = kPrefix}).execBeats;
    const double overhead =
        static_cast<double>(lsqca) / static_cast<double>(conv);
    EXPECT_GE(overhead, 1.0);
    // Paper: ~1.06 with QASMBench's rotation-heavy multiplier; our
    // Toffoli-based substitution has ~1 CX per T (a harsher concealment
    // test), measuring ~1.4 at one bank (1.0 at four banks) — see
    // EXPERIMENTS.md.
    EXPECT_LE(overhead, 1.45);
}

TEST_F(MultiplierHeadline, InterleavedPlacementRecoversPaperOverhead)
{
    // With bit-sliced ("strategic") data allocation — the paper's
    // future-work knob — our harsher Toffoli-based multiplier reaches
    // the paper's ~1.06 line-SAM headline at the full 87% density.
    SimOptions line;
    line.arch.sam = SamKind::Line;
    line.arch.placement = PlacementPolicy::Interleaved;
    line.maxInstructions = kPrefix;
    const SimResult r = simulate(program(), line);
    const auto conv =
        simulateConventional(program(), {.maxInstructions = kPrefix}).execBeats;
    const double overhead =
        static_cast<double>(r.execBeats) / static_cast<double>(conv);
    EXPECT_GE(r.density(), 0.85);
    EXPECT_LE(overhead, 1.10); // paper: ~1.06
}

TEST_F(MultiplierHeadline, PointSamDensityNearOne)
{
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    opts.maxInstructions = 1;
    const SimResult r = simulate(program(), opts);
    EXPECT_GT(r.density(), 0.98);
}

TEST_F(MultiplierHeadline, MagicBoundAtOneFactory)
{
    // The multiplier demands magic states much faster than one factory
    // produces them (Sec. III-B), so the conventional machine spends
    // most of its time stalled on the MSF -- the slack that hides the
    // LSQCA memory latency.
    const auto conv = simulateConventional(program(), {.maxInstructions = kPrefix});
    EXPECT_GT(conv.magicStallBeats, conv.execBeats / 2);
}

TEST(CliffordHeadline, BvCatGhzSufferWithoutMagicBottleneck)
{
    // Fig. 13: bv/cat/ghz consume no magic states, so nothing conceals
    // the load/store latency and point-SAM overheads are large.
    for (const auto &[name, circ] :
         {std::pair<const char *, Circuit>{"bv",
                                           makeBernsteinVazirani(64)},
          {"cat", makeCat(64)},
          {"ghz", makeGhz(64)}}) {
        const Program p = translate(lowerToCliffordT(circ));
        SimOptions point;
        point.arch.sam = SamKind::Point;
        const auto lsqca = simulate(p, point).execBeats;
        const auto conv = simulateConventional(p).execBeats;
        const double overhead =
            static_cast<double>(lsqca) / static_cast<double>(conv);
        EXPECT_GT(overhead, 3.0) << name;
    }
}

TEST(SelectHeadline, HybridReachesHighDensityWithSmallOverhead)
{
    // Sec. VI-C: placing control+temporal conventionally (f ~ 0.15 for
    // W=11) keeps the hot registers fast while SAM holds the system
    // register; overhead stays small, density far above 0.5.
    const Circuit sel = makeSelect({11, 220});
    const Program p = translate(lowerToCliffordT(sel));
    SimOptions hybrid;
    hybrid.arch.sam = SamKind::Point;
    hybrid.arch.hybridFraction = 0.16;
    const SimResult h = simulate(p, hybrid);
    const auto conv = simulateConventional(p);
    const double overhead = static_cast<double>(h.execBeats) /
                            static_cast<double>(conv.execBeats);
    EXPECT_GT(h.density(), 0.80);
    EXPECT_LT(overhead, 1.35);
}

TEST(SelectHeadline, PureSamSelectOverheadModestAtOneFactory)
{
    const Circuit sel = makeSelect({11, 220});
    const Program p = translate(lowerToCliffordT(sel));
    SimOptions line;
    line.arch.sam = SamKind::Line;
    const auto lsqca = simulate(p, line).execBeats;
    const auto conv = simulateConventional(p).execBeats;
    const double overhead =
        static_cast<double>(lsqca) / static_cast<double>(conv);
    EXPECT_LT(overhead, 2.0);
}

TEST(GapHeadline, MoreFactoriesWidenLsqcaGap)
{
    // Sec. VI-B: with more MSFs the magic bottleneck fades and the
    // LSQCA/conventional gap grows (until banking closes it again).
    const Circuit adder = makeAdder(24);
    const Program p = translate(lowerToCliffordT(adder));
    SimOptions point;
    point.arch.sam = SamKind::Point;
    std::vector<double> overheads;
    for (std::int32_t f : {1, 4}) {
        point.arch.factories = f;
        const auto lsqca = simulate(p, point).execBeats;
        const auto conv = simulateConventional(p, {.factories = f}).execBeats;
        overheads.push_back(static_cast<double>(lsqca) /
                            static_cast<double>(conv));
    }
    EXPECT_GT(overheads[1], overheads[0]);
}

} // namespace
} // namespace lsqca
