/**
 * @file
 * bench::parseArgs must fail fast: an unknown flag or a malformed
 * number exits non-zero instead of silently running the wrong
 * experiment (the pre-refactor parser ignored unknown arguments and
 * atoi'd "--threads x" to zero workers).
 */

#include <gtest/gtest.h>

#include "bench_util.h"

namespace lsqca::bench {
namespace {

BenchArgs
parse(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "bench");
    return parseArgs(static_cast<int>(argv.size()),
                     const_cast<char **>(argv.data()));
}

TEST(BenchArgs, ParsesTheSupportedFlags)
{
    const BenchArgs args =
        parse({"--csv", "csvdir", "--full", "--threads", "8", "--out",
               "outdir", "--smoke", "--shard", "1/4",
               "--timeout-seconds", "2.5", "--seed-check",
               "0123456789abcdef"});
    ASSERT_TRUE(args.csvDir.has_value());
    EXPECT_EQ(*args.csvDir, "csvdir");
    EXPECT_TRUE(args.full);
    EXPECT_EQ(args.threads, 8);
    EXPECT_EQ(args.outDir, "outdir");
    EXPECT_TRUE(args.smoke);
    EXPECT_EQ(args.shard.index, 1);
    EXPECT_EQ(args.shard.count, 4);
    EXPECT_DOUBLE_EQ(args.timeoutSeconds, 2.5);
    EXPECT_EQ(args.seedCheck, "0123456789abcdef");
}

TEST(BenchArgsDeathTest, RejectsUnknownArguments)
{
    EXPECT_EXIT(parse({"--theads", "4"}),
                testing::ExitedWithCode(2), "unknown argument");
    EXPECT_EXIT(parse({"extra"}), testing::ExitedWithCode(2),
                "unknown argument");
}

TEST(BenchArgsDeathTest, RejectsMalformedThreads)
{
    // atoi("x") == 0 used to silently fall back to one worker.
    EXPECT_EXIT(parse({"--threads", "x"}),
                testing::ExitedWithCode(2), "--threads expects");
    EXPECT_EXIT(parse({"--threads", "4x"}),
                testing::ExitedWithCode(2), "--threads expects");
    EXPECT_EXIT(parse({"--threads", "-1"}),
                testing::ExitedWithCode(2), "--threads expects");
    EXPECT_EXIT(parse({"--threads", "99999999999999999999"}),
                testing::ExitedWithCode(2), "--threads expects");
}

TEST(BenchArgsDeathTest, RejectsMissingValues)
{
    EXPECT_EXIT(parse({"--csv"}), testing::ExitedWithCode(2),
                "missing value");
    EXPECT_EXIT(parse({"--out"}), testing::ExitedWithCode(2),
                "missing value");
    EXPECT_EXIT(parse({"--threads"}), testing::ExitedWithCode(2),
                "missing value");
}

TEST(BenchArgsDeathTest, RejectsBadShards)
{
    EXPECT_EXIT(parse({"--shard", "2/2"}), testing::ExitedWithCode(2),
                "shard");
    EXPECT_EXIT(parse({"--shard", "nope"}), testing::ExitedWithCode(2),
                "shard");
}

TEST(BenchArgsDeathTest, RejectsBadTimeouts)
{
    // The orchestrator passes these through to workers; a malformed
    // policy value must stop the worker, not run an unlimited sweep.
    EXPECT_EXIT(parse({"--timeout-seconds", "x"}),
                testing::ExitedWithCode(2),
                "--timeout-seconds expects");
    EXPECT_EXIT(parse({"--timeout-seconds", "0"}),
                testing::ExitedWithCode(2),
                "--timeout-seconds expects");
    EXPECT_EXIT(parse({"--timeout-seconds", "-1"}),
                testing::ExitedWithCode(2),
                "--timeout-seconds expects");
    EXPECT_EXIT(parse({"--timeout-seconds"}),
                testing::ExitedWithCode(2), "missing value");
}

TEST(BenchArgsDeathTest, RejectsBadSeedChecks)
{
    EXPECT_EXIT(parse({"--seed-check", "nope"}),
                testing::ExitedWithCode(2), "--seed-check expects");
    EXPECT_EXIT(parse({"--seed-check", "0123456789ABCDEF"}),
                testing::ExitedWithCode(2), "--seed-check expects");
    EXPECT_EXIT(parse({"--seed-check"}), testing::ExitedWithCode(2),
                "missing value");
}

} // namespace
} // namespace lsqca::bench
