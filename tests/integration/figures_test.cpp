/**
 * @file
 * Figure-shape regressions: the qualitative relations each figure of
 * the paper asserts, checked at miniature scale so the whole net runs
 * in seconds. These are the invariants a refactor must not break.
 */

#include <gtest/gtest.h>

#include "circuit/lowering.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

struct MiniSuite
{
    std::string name;
    Program program;
    bool cliffordOnly;
};

const std::vector<MiniSuite> &
miniSuite()
{
    static const std::vector<MiniSuite> suite = [] {
        std::vector<MiniSuite> loads;
        auto add = [&](const char *name, const Circuit &c,
                       bool clifford) {
            loads.push_back(
                {name, translate(lowerToCliffordT(c)), clifford});
        };
        add("adder", makeAdder(16), false);
        add("bv", makeBernsteinVazirani(48), true);
        add("cat", makeCat(48), true);
        add("ghz", makeGhz(48), true);
        add("multiplier", makeMultiplier({8, 6}), false);
        add("square_root", makeSquareRoot({3, 4, 1}), false);
        add("SELECT", makeSelect({4, 0}), false);
        return loads;
    }();
    return suite;
}

double
overhead(const Program &p, SamKind sam, std::int32_t banks,
         std::int32_t factories)
{
    SimOptions opts;
    opts.arch.sam = sam;
    opts.arch.banks = banks;
    opts.arch.factories = factories;
    const auto lsqca = simulate(p, opts).execBeats;
    const auto conv = simulateConventional(p, {.factories = factories}).execBeats;
    return static_cast<double>(lsqca) / static_cast<double>(conv);
}

TEST(Fig13Shape, CliffordProgramsSufferMostOnPointSam)
{
    // bv/cat/ghz (no magic bottleneck) must show larger point-SAM
    // overheads than every magic-bound program.
    double worst_magic_bound = 0;
    double best_clifford = 1e18;
    for (const auto &load : miniSuite()) {
        const double ratio = overhead(load.program, SamKind::Point, 1, 1);
        if (load.cliffordOnly)
            best_clifford = std::min(best_clifford, ratio);
        else
            worst_magic_bound = std::max(worst_magic_bound, ratio);
    }
    EXPECT_GT(best_clifford, worst_magic_bound);
}

TEST(Fig13Shape, BanksNeverHurt)
{
    for (const auto &load : miniSuite()) {
        const double one = overhead(load.program, SamKind::Line, 1, 1);
        const double four = overhead(load.program, SamKind::Line, 4, 1);
        EXPECT_LE(four, one * 1.05) << load.name;
    }
}

TEST(Fig13Shape, FactoriesWidenTheGapForMagicBoundPrograms)
{
    for (const auto &load : miniSuite()) {
        if (load.cliffordOnly)
            continue;
        const double f1 = overhead(load.program, SamKind::Point, 1, 1);
        const double f4 = overhead(load.program, SamKind::Point, 1, 4);
        EXPECT_GE(f4, f1 * 0.95) << load.name;
    }
}

TEST(Fig13Shape, LineBeatsPointOnTime)
{
    for (const auto &load : miniSuite()) {
        const double point = overhead(load.program, SamKind::Point, 1, 1);
        const double line = overhead(load.program, SamKind::Line, 1, 1);
        EXPECT_LE(line, point * 1.10) << load.name;
    }
}

TEST(Fig14Shape, HybridCurveMonotoneForEveryBenchmark)
{
    // Density decreases with f while some SAM remains; the f=1 endpoint
    // (no CR/SAM at all) is exactly the 0.5 baseline. At miniature
    // sizes the CR is comparatively large, so the final jump to 0.5 can
    // go up — which is why the endpoint is checked separately.
    for (const auto &load : miniSuite()) {
        SimOptions opts;
        opts.arch.sam = SamKind::Point;
        double prev_density = 2.0;
        for (double f : {0.0, 0.2, 0.4, 0.6, 0.8}) {
            opts.arch.hybridFraction = f;
            const SimResult r = simulate(load.program, opts);
            EXPECT_LE(r.density(), prev_density + 1e-12) << load.name;
            prev_density = r.density();
        }
        opts.arch.hybridFraction = 1.0;
        const SimResult endpoint = simulate(load.program, opts);
        EXPECT_DOUBLE_EQ(endpoint.density(), 0.5) << load.name;
        // And f=1 is never slower than f=0 (pure LSQCA).
        opts.arch.hybridFraction = 0.0;
        EXPECT_LE(endpoint.execBeats,
                  simulate(load.program, opts).execBeats)
            << load.name;
    }
}

TEST(Fig15Shape, SelectDensityGrowsWithInstanceSize)
{
    double prev = 0.0;
    for (std::int32_t width : {4, 6, 8}) {
        const Program p =
            translate(lowerToCliffordT(makeSelect({width, 60})));
        SimOptions opts;
        opts.arch.sam = SamKind::Point;
        const double density = simulate(p, opts).density();
        EXPECT_GT(density, prev) << "width " << width;
        prev = density;
    }
}

TEST(Fig15Shape, HybridPinsHotRegistersAndWins)
{
    const SelectLayout layout = selectLayout(5);
    const Program p = translate(lowerToCliffordT(makeSelect({5, 0})));
    const double hot = static_cast<double>(layout.controlBits +
                                           layout.temporalBits) /
                       static_cast<double>(layout.totalQubits);
    SimOptions pure;
    pure.arch.sam = SamKind::Point;
    SimOptions hybrid = pure;
    hybrid.arch.hybridFraction = hot;
    const SimResult a = simulate(p, pure);
    const SimResult b = simulate(p, hybrid);
    EXPECT_LT(b.execBeats, a.execBeats); // faster
    EXPECT_GT(b.density(), 0.6);         // still far above 1/2
}

TEST(Fig8Shape, MagicIntervalOrdersMultiplierBeforeSelect)
{
    // The multiplier demands magic states faster than SELECT
    // (paper: 2.14 vs 11.6 beats).
    auto interval = [](const Circuit &c) {
        const Program p = translate(lowerToCliffordT(c));
        SimOptions opts;
        opts.arch.sam = SamKind::Conventional;
        opts.arch.instantMagic = true;
        opts.recordTrace = true;
        const SimResult r = simulate(p, opts);
        double sum = 0;
        for (std::size_t i = 1; i < r.magicTimes.size(); ++i)
            sum += static_cast<double>(r.magicTimes[i] -
                                       r.magicTimes[i - 1]);
        return sum / static_cast<double>(r.magicTimes.size() - 1);
    };
    EXPECT_LT(interval(makeMultiplier({8, 6})),
              interval(makeSelect({4, 0})));
}

} // namespace
} // namespace lsqca
