#include <gtest/gtest.h>

#include "analysis/trace_analysis.h"
#include "circuit/lowering.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

/** Full pipeline: synthesize -> lower -> translate -> simulate. */
SimResult
runPipeline(const Circuit &circuit, SamKind sam, std::int32_t banks = 1,
            std::int32_t factories = 1)
{
    const Program p = translate(lowerToCliffordT(circuit));
    SimOptions opts;
    opts.arch.sam = sam;
    opts.arch.banks = banks;
    opts.arch.factories = factories;
    return simulate(p, opts);
}

TEST(EndToEnd, AdderOnAllArchitectures)
{
    const Circuit adder = makeAdder(8);
    const auto conv = runPipeline(adder, SamKind::Conventional);
    const auto point = runPipeline(adder, SamKind::Point);
    const auto line = runPipeline(adder, SamKind::Line);
    EXPECT_GT(conv.execBeats, 0);
    EXPECT_GE(point.execBeats, conv.execBeats);
    EXPECT_GE(line.execBeats, conv.execBeats);
    EXPECT_GT(point.density(), line.density());
    EXPECT_GT(line.density(), conv.density());
}

TEST(EndToEnd, MagicHeavyCircuitsHideMemoryLatency)
{
    // For the magic-bound adder, the LSQCA overhead at one factory must
    // be a small fraction; for the Clifford-only cat chain it is large.
    const Circuit adder = makeAdder(16);
    const double adder_overhead =
        static_cast<double>(runPipeline(adder, SamKind::Line).execBeats) /
        static_cast<double>(
            runPipeline(adder, SamKind::Conventional).execBeats);

    const Circuit cat = makeCat(49);
    const double cat_overhead =
        static_cast<double>(runPipeline(cat, SamKind::Line).execBeats) /
        static_cast<double>(
            runPipeline(cat, SamKind::Conventional).execBeats);

    // The 16-bit adder's serial carry chain conceals only part of the
    // latency (~2x); the Clifford-only cat conceals none.
    EXPECT_LT(adder_overhead, 2.5);
    EXPECT_GT(cat_overhead, 2.5);
    EXPECT_GT(cat_overhead, adder_overhead);
}

TEST(EndToEnd, MultiBankImprovesLineSam)
{
    const Circuit sel = makeSelect({3, 0});
    const auto one = runPipeline(sel, SamKind::Line, 1, 4);
    const auto four = runPipeline(sel, SamKind::Line, 4, 4);
    EXPECT_LE(four.execBeats, one.execBeats);
}

TEST(EndToEnd, LocalityAwareStoreHelpsPointSam)
{
    const Circuit sel = makeSelect({3, 0});
    const Program p = translate(lowerToCliffordT(sel));
    SimOptions with;
    with.arch.sam = SamKind::Point;
    SimOptions without = with;
    without.arch.localityStore = false;
    EXPECT_LE(simulate(p, with).execBeats,
              simulate(p, without).execBeats);
}

TEST(EndToEnd, InMemoryOpsReduceTime)
{
    const Circuit adder = makeAdder(6);
    const Circuit lowered = lowerToCliffordT(adder);
    const Program in_mem = translate(lowered);
    TranslateOptions topts;
    topts.inMemoryOps = false;
    const Program ld_st = translate(lowered, topts);
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    const auto fast = simulate(in_mem, opts).execBeats;
    opts.arch.inMemoryOps = false;
    const auto slow = simulate(ld_st, opts).execBeats;
    EXPECT_LT(fast, slow);
}

TEST(EndToEnd, Fig8StyleTraceAnalysisRuns)
{
    const Circuit lowered = lowerToCliffordT(makeSelect({4, 100}));
    const Program p = translate(lowered);
    SimOptions opts;
    opts.arch.sam = SamKind::Conventional;
    opts.arch.instantMagic = true;
    opts.recordTrace = true;
    const SimResult r = simulate(p, opts);
    const TraceAnalysis analysis(p, r);
    EXPECT_GT(analysis.totalReferences(), 100);
    EXPECT_GT(analysis.magicDemandInterval(), 0.0);
    // Register CDFs exist for control/temporal/system.
    EXPECT_EQ(analysis.groups().size(), 4u);
}

TEST(EndToEnd, HybridSweepTradesDensityForTime)
{
    const Circuit sel = makeSelect({3, 0});
    const Program p = translate(lowerToCliffordT(sel));
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    std::vector<double> densities;
    std::vector<std::int64_t> times;
    for (double f : {0.0, 0.5, 1.0}) {
        opts.arch.hybridFraction = f;
        const SimResult r = simulate(p, opts);
        densities.push_back(r.density());
        times.push_back(r.execBeats);
    }
    EXPECT_GT(densities[0], densities[1]);
    EXPECT_GT(densities[1], densities[2]);
    EXPECT_GE(times[0], times[1]);
    EXPECT_GE(times[1], times[2]);
}

TEST(EndToEnd, PaperSuiteRunsEndToEnd)
{
    // Miniature versions of all seven programs flow through the whole
    // stack on every architecture without error.
    std::vector<Circuit> programs;
    programs.push_back(makeAdder(5));
    programs.push_back(makeBernsteinVazirani(12));
    programs.push_back(makeCat(12));
    programs.push_back(makeGhz(12));
    programs.push_back(makeMultiplier({3, 3}));
    programs.push_back(makeSquareRoot({2, 1, 1}));
    programs.push_back(makeSelect({2, 0}));
    for (const auto &circ : programs) {
        for (SamKind sam :
             {SamKind::Point, SamKind::Line, SamKind::Conventional}) {
            const SimResult r = runPipeline(circ, sam);
            EXPECT_GT(r.execBeats, 0);
            EXPECT_GT(r.countedInstructions, 0);
        }
    }
}

} // namespace
} // namespace lsqca
