#ifndef LSQCA_ANALYSIS_TRACE_ANALYSIS_H
#define LSQCA_ANALYSIS_TRACE_ANALYSIS_H

/**
 * @file
 * Memory-reference pattern analysis (Sec. III-B / Fig. 8): per-variable
 * reference timestamps, reference-period distributions, per-register
 * breakdowns, and the magic-state demand rate.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "isa/program.h"
#include "sim/result.h"

namespace lsqca {

/** Reference-period statistics for one variable group. */
struct GroupPeriods
{
    std::string name;           ///< register name or "all"
    std::int64_t references = 0;
    EmpiricalCdf periods;       ///< gaps between successive references
};

/** Full analysis of one simulation trace. */
class TraceAnalysis
{
  public:
    /**
     * Analyze @p result (must have been simulated with recordTrace) for
     * @p program (supplies register names).
     */
    TraceAnalysis(const Program &program, const SimResult &result);

    /** Sorted reference timestamps of one variable. */
    const std::vector<std::int64_t> &timestamps(std::int32_t var) const;

    /** Period CDFs: index 0 is "all", then one per program register. */
    const std::vector<GroupPeriods> &groups() const { return groups_; }

    /** Mean beats between magic-state consumptions (0 if < 2 PMs). */
    double magicDemandInterval() const { return magicInterval_; }

    /** Total references recorded. */
    std::int64_t totalReferences() const { return totalRefs_; }

    /**
     * Mean reference period across all variables (temporal-locality
     * headline scalar).
     */
    double meanPeriod() const;

    /**
     * Fraction of successive references (over the whole trace) whose
     * variable distance is at most @p radius — the spatial-locality
     * scalar backing the "sequential access" observation.
     */
    double sequentialFraction(std::int32_t radius = 2) const;

  private:
    std::vector<std::vector<std::int64_t>> perVar_;
    std::vector<GroupPeriods> groups_;
    std::vector<std::pair<std::int64_t, std::int32_t>> ordered_;
    double magicInterval_ = 0.0;
    std::int64_t totalRefs_ = 0;
};

} // namespace lsqca

#endif // LSQCA_ANALYSIS_TRACE_ANALYSIS_H
