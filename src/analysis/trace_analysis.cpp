#include "analysis/trace_analysis.h"

#include <algorithm>

#include "common/error.h"

namespace lsqca {

TraceAnalysis::TraceAnalysis(const Program &program, const SimResult &result)
{
    const auto n = static_cast<std::size_t>(program.numVariables());
    perVar_.assign(n, {});
    for (const TraceSample &s : result.trace) {
        LSQCA_REQUIRE(s.variable >= 0 &&
                          static_cast<std::size_t>(s.variable) < n,
                      "trace sample variable out of range");
        perVar_[static_cast<std::size_t>(s.variable)].push_back(s.time);
        ordered_.push_back({s.time, s.variable});
    }
    totalRefs_ = static_cast<std::int64_t>(ordered_.size());
    std::stable_sort(ordered_.begin(), ordered_.end());

    groups_.resize(1 + program.registers().size());
    groups_[0].name = "all";
    for (std::size_t r = 0; r < program.registers().size(); ++r)
        groups_[r + 1].name = program.registers()[r].name;

    for (std::size_t v = 0; v < n; ++v) {
        auto &ts = perVar_[v];
        std::sort(ts.begin(), ts.end());
        const std::int32_t reg =
            program.registerOf(static_cast<std::int32_t>(v));
        for (std::size_t i = 0; i < ts.size(); ++i) {
            groups_[0].references++;
            if (reg >= 0)
                groups_[static_cast<std::size_t>(reg) + 1].references++;
            if (i == 0)
                continue;
            const auto gap = static_cast<double>(ts[i] - ts[i - 1]);
            groups_[0].periods.add(gap);
            if (reg >= 0)
                groups_[static_cast<std::size_t>(reg) + 1].periods.add(gap);
        }
    }

    if (result.magicTimes.size() >= 2) {
        auto times = result.magicTimes;
        std::sort(times.begin(), times.end());
        const auto span = static_cast<double>(times.back() - times.front());
        magicInterval_ = span / static_cast<double>(times.size() - 1);
    }
}

const std::vector<std::int64_t> &
TraceAnalysis::timestamps(std::int32_t var) const
{
    LSQCA_REQUIRE(var >= 0 &&
                      static_cast<std::size_t>(var) < perVar_.size(),
                  "variable out of range");
    return perVar_[static_cast<std::size_t>(var)];
}

double
TraceAnalysis::meanPeriod() const
{
    double sum = 0.0;
    std::int64_t count = 0;
    for (const auto &ts : perVar_) {
        for (std::size_t i = 1; i < ts.size(); ++i) {
            sum += static_cast<double>(ts[i] - ts[i - 1]);
            ++count;
        }
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double
TraceAnalysis::sequentialFraction(std::int32_t radius) const
{
    if (ordered_.size() < 2)
        return 0.0;
    std::int64_t close = 0;
    for (std::size_t i = 1; i < ordered_.size(); ++i) {
        if (std::abs(ordered_[i].second - ordered_[i - 1].second) <=
            radius)
            ++close;
    }
    return static_cast<double>(close) /
           static_cast<double>(ordered_.size() - 1);
}

} // namespace lsqca
