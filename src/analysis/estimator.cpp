#include "analysis/estimator.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace lsqca {
namespace {

/** Fixed Table-I latency of @p inst (0 for variable-latency motion). */
std::int64_t
fixedLatency(const Instruction &inst, const Latencies &lat)
{
    switch (inst.op) {
      case Opcode::HD_C:
      case Opcode::HD_M:
        return lat.hadamard;
      case Opcode::PH_C:
      case Opcode::PH_M:
        return lat.phase;
      case Opcode::MXX_C:
      case Opcode::MZZ_C:
      case Opcode::MXX_M:
      case Opcode::MZZ_M:
        return lat.surgery;
      case Opcode::CX:
      case Opcode::CZ:
        return 2 * lat.surgery;
      case Opcode::SK:
        return lat.skWait;
      default:
        return 0;
    }
}

} // namespace

ResourceEstimate
estimateResources(const Program &program, const ArchConfig &config)
{
    config.validate();
    ResourceEstimate est;
    est.dataQubits = program.numVariables();
    est.instructions = program.size();
    est.countedInstructions = program.countedInstructions();
    est.magicStates = program.magicCount();

    // Warm buffer: the first effectiveBufferCap() states are free; the
    // rest are produced at period/factories.
    const std::int64_t produced = std::max<std::int64_t>(
        0, est.magicStates - config.effectiveBufferCap());
    est.magicProductionBeats =
        config.instantMagic
            ? 0
            : (produced * config.lat.msfPeriod + config.factories - 1) /
                  config.factories;

    // Dataflow critical path over variables, slots, and values with
    // fixed latencies only (memory motion >= 0 for every SAM).
    std::vector<std::int64_t> var_ready(
        static_cast<std::size_t>(program.numVariables()), 0);
    std::vector<std::int64_t> val_ready(
        static_cast<std::size_t>(program.numValues()), 0);
    std::int32_t max_slot = 1;
    for (const auto &inst : program.instructions())
        max_slot = std::max({max_slot, inst.c0, inst.c1});
    std::vector<std::int64_t> slot_ready(
        static_cast<std::size_t>(max_slot) + 1, 0);
    std::int64_t total = 0;
    for (const auto &inst : program.instructions()) {
        const OpcodeInfo &info = opcodeInfo(inst.op);
        std::int64_t start = 0;
        if (info.numMem >= 1)
            start = std::max(start,
                             var_ready[static_cast<std::size_t>(
                                 inst.m0)]);
        if (info.numMem >= 2)
            start = std::max(start,
                             var_ready[static_cast<std::size_t>(
                                 inst.m1)]);
        if (info.numReg >= 1)
            start = std::max(start,
                             slot_ready[static_cast<std::size_t>(
                                 inst.c0)]);
        if (info.numReg >= 2)
            start = std::max(start,
                             slot_ready[static_cast<std::size_t>(
                                 inst.c1)]);
        if (inst.op == Opcode::SK)
            start = std::max(start,
                             val_ready[static_cast<std::size_t>(
                                 inst.v0)]);
        const std::int64_t end = start + fixedLatency(inst, config.lat);
        if (info.numMem >= 1)
            var_ready[static_cast<std::size_t>(inst.m0)] = end;
        if (info.numMem >= 2)
            var_ready[static_cast<std::size_t>(inst.m1)] = end;
        if (info.numReg >= 1)
            slot_ready[static_cast<std::size_t>(inst.c0)] = end;
        if (info.numReg >= 2)
            slot_ready[static_cast<std::size_t>(inst.c1)] = end;
        if (info.numVal >= 1 && inst.op != Opcode::SK)
            val_ready[static_cast<std::size_t>(inst.v0)] = end;
        total = std::max(total, end);
    }
    est.dataflowBeats = total;
    est.lowerBoundBeats =
        std::max(est.magicProductionBeats, est.dataflowBeats);

    std::int64_t conventional = 0;
    if (config.sam != SamKind::Conventional)
        conventional = static_cast<std::int64_t>(
            config.hybridFraction *
                static_cast<double>(est.dataQubits) +
            0.5);
    else
        conventional = est.dataQubits;
    est.floorplan =
        floorplanStats(config, est.dataQubits,
                       std::min(conventional, est.dataQubits));

    est.cpiLowerBound =
        est.countedInstructions == 0
            ? 0.0
            : static_cast<double>(est.lowerBoundBeats) /
                  static_cast<double>(est.countedInstructions);
    return est;
}

std::int32_t
requiredCodeDistance(std::int64_t beats, std::int64_t cells,
                     const CodeDistanceModel &model)
{
    LSQCA_REQUIRE(beats >= 0 && cells >= 0,
                  "negative beats or cells");
    LSQCA_REQUIRE(model.physicalErrorRate > 0 &&
                      model.physicalErrorRate < model.thresholdRate,
                  "physical error rate must sit below threshold");
    LSQCA_REQUIRE(model.targetFailure > 0 && model.targetFailure < 1,
                  "target failure must be a probability");
    const double exposure =
        std::max<double>(1.0, static_cast<double>(beats)) *
        std::max<double>(1.0, static_cast<double>(cells));
    const double ratio =
        model.physicalErrorRate / model.thresholdRate; // < 1
    for (std::int32_t d = 3; d <= 99; d += 2) {
        const double per_patch_beat =
            model.prefactor *
            std::pow(ratio, (static_cast<double>(d) + 1.0) / 2.0);
        if (per_patch_beat * exposure <= model.targetFailure)
            return d;
    }
    return 101; // beyond any practical regime
}

std::int64_t
physicalQubits(std::int64_t cells, std::int32_t d)
{
    LSQCA_REQUIRE(d >= 3 && d % 2 == 1, "distance must be odd and >= 3");
    return cells * (2 * static_cast<std::int64_t>(d) * d - 1);
}

std::string
ResourceEstimate::report() const
{
    std::ostringstream oss;
    oss << "resource estimate\n"
        << "  data qubits          : " << dataQubits << "\n"
        << "  instructions         : " << instructions << " ("
        << countedInstructions << " counted)\n"
        << "  magic states         : " << magicStates << "\n"
        << "  magic production     : " << magicProductionBeats
        << " beats\n"
        << "  dataflow critical    : " << dataflowBeats << " beats\n"
        << "  execution lower bound: " << lowerBoundBeats << " beats\n"
        << "  CPI lower bound      : " << cpiLowerBound << "\n"
        << "  cells (SAM/CR/conv)  : " << floorplan.samCells << "/"
        << floorplan.crCells << "/" << floorplan.conventionalCells
        << "\n"
        << "  memory density       : " << floorplan.density() << "\n";
    return oss.str();
}

} // namespace lsqca
