#ifndef LSQCA_ANALYSIS_ESTIMATOR_H
#define LSQCA_ANALYSIS_ESTIMATOR_H

/**
 * @file
 * Closed-form resource estimation for LSQCA machines — the quick
 * "what-if" companion to the cycle-accurate simulator. Estimates are
 * proven bounds (tested against the simulator): execution time is at
 * least the magic-production time and at least the dataflow critical
 * path; memory density comes from exact cell accounting.
 */

#include <cstdint>
#include <string>

#include "arch/config.h"
#include "arch/floorplan.h"
#include "isa/program.h"

namespace lsqca {

/** Closed-form resource estimates for one program on one machine. */
struct ResourceEstimate
{
    std::int64_t dataQubits = 0;
    std::int64_t instructions = 0;
    std::int64_t countedInstructions = 0;
    std::int64_t magicStates = 0;

    /** Beats to produce all magic states (factories * period model). */
    std::int64_t magicProductionBeats = 0;

    /** Dataflow critical path with Table-I fixed latencies (memory
     *  motion excluded — a true lower bound for every SAM). */
    std::int64_t dataflowBeats = 0;

    /** max(magicProductionBeats, dataflowBeats): execution time lower
     *  bound for any floorplan with this MSF configuration. */
    std::int64_t lowerBoundBeats = 0;

    /** Exact floorplan cell accounting (MSFs excluded). */
    FloorplanStats floorplan;

    /** Lower bound on CPI. */
    double cpiLowerBound = 0.0;

    /** Multi-line human-readable report. */
    std::string report() const;
};

/**
 * Estimate @p program on @p config. The hybrid fraction contributes its
 * conventional-region cells; magic production assumes a warm buffer.
 */
ResourceEstimate estimateResources(const Program &program,
                                   const ArchConfig &config);

/** Physical-layer assumptions for code-distance sizing. */
struct CodeDistanceModel
{
    double physicalErrorRate = 1e-3; ///< per physical op
    double thresholdRate = 1e-2;     ///< surface-code threshold
    double prefactor = 0.1;          ///< A in p_L = A (p/p_th)^((d+1)/2)
    double targetFailure = 1e-2;     ///< whole-run failure budget
};

/**
 * Smallest odd code distance d whose total logical failure probability
 * stays within budget for @p cells logical patches over @p beats code
 * beats, under the standard p_L(d) = A (p/p_th)^((d+1)/2) per-patch
 * per-beat scaling. This quantifies the paper's Sec. VI-B remark that
 * execution-time overhead feeds back into code distance: a slower
 * floorplan needs a larger d, eroding its physical-qubit advantage.
 *
 * @return the required distance (at least 3).
 */
std::int32_t requiredCodeDistance(std::int64_t beats, std::int64_t cells,
                                  const CodeDistanceModel &model = {});

/**
 * Physical qubits for @p cells surface-code patches at distance @p d:
 * 2d^2 - 1 physical qubits per patch (data + syndrome).
 */
std::int64_t physicalQubits(std::int64_t cells, std::int32_t d);

} // namespace lsqca

#endif // LSQCA_ANALYSIS_ESTIMATOR_H
