#ifndef LSQCA_ISA_PROGRAM_H
#define LSQCA_ISA_PROGRAM_H

/**
 * @file
 * Container for translated LSQCA programs.
 *
 * A Program is portable object code: it references variables, CR slots,
 * and classical values but never concrete cell positions, so the same
 * Program runs on any point-/line-/hybrid-SAM instance (the paper's
 * program-portability contribution, Sec. VII-B).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace lsqca {

/** A named contiguous variable range (mirrors circuit registers). */
struct VariableRegister
{
    std::string name;
    std::int32_t first = 0;
    std::int32_t size = 0;
};

/**
 * Memoized per-instruction prefix data over a Program, shared by every
 * consumer that would otherwise rescan the stream per job (the sampled
 * estimator walks skipped spans through memOps instead of the whole
 * code vector; see src/estimate/).
 */
struct StreamIndex
{
    /** countedPrefix[i] = counted (non-LD/ST) instructions in [0, i). */
    std::vector<std::int64_t> countedPrefix;
    /** pmPrefix[i] = PM instructions in [0, i). */
    std::vector<std::int64_t> pmPrefix;
    /**
     * Ascending indices of instructions with a memory operand or PM —
     * the only opcodes that can change functional machine state.
     */
    std::vector<std::int64_t> memOps;
    /** maxSlotPrefix[i] = largest CR slot referenced in [0, i), or -1. */
    std::vector<std::int32_t> maxSlotPrefix;
    /** maxValPrefix[i] = largest value slot referenced in [0, i), or -1. */
    std::vector<std::int32_t> maxValPrefix;
};

/** An LSQCA instruction sequence plus symbol-table metadata. */
class Program
{
  public:
    Program() = default;

    /** Create a program over @p num_variables memory variables. */
    explicit Program(std::int32_t num_variables);

    std::int32_t numVariables() const { return numVariables_; }
    std::int32_t numValues() const { return numValues_; }
    const std::vector<Instruction> &instructions() const { return code_; }
    const std::vector<VariableRegister> &registers() const { return regs_; }

    /** Declare a named variable register (metadata only). */
    void addRegister(const std::string &name, std::int32_t first,
                     std::int32_t size);

    /** Register index owning variable @p m; -1 if anonymous. */
    std::int32_t registerOf(std::int32_t m) const;

    /** Allocate a fresh classical value slot. */
    std::int32_t newValue() { return numValues_++; }

    /** Append a validated instruction. */
    void append(const Instruction &inst);

    std::int64_t size() const
    {
        return static_cast<std::int64_t>(code_.size());
    }

    /**
     * Number of instructions counted in CPI denominators: logical
     * commands excluding LD/ST traffic, so CPI ratios between
     * architectures equal execution-time ratios (see DESIGN.md §4.11).
     */
    std::int64_t countedInstructions() const;

    /** Number of PM instructions == magic states consumed. */
    std::int64_t magicCount() const;

    /**
     * Per-variable static reference counts over memory operands.
     * Cached after the first call: every hybrid sweep job over a
     * shared program asks for the same counts, and the O(program)
     * scan dominated fig14's wall-clock when repeated per job.
     * Thread-safe — concurrent first calls may each compute, but they
     * store identical vectors.
     */
    std::vector<std::int64_t> referenceCounts() const;

    /**
     * Prefix-sum / memory-op index over the stream, memoized with the
     * same contract as referenceCounts(): computed on first call,
     * invalidated by append(), safe under concurrent readers.
     */
    std::shared_ptr<const StreamIndex> streamIndex() const;

    /** Multi-line disassembly (capped at @p max_lines, 0 = all). */
    std::string disassemble(std::size_t max_lines = 0) const;

  private:
    std::int32_t numVariables_ = 0;
    std::int32_t numValues_ = 0;
    std::vector<Instruction> code_;
    std::vector<VariableRegister> regs_;
    /** referenceCounts() memo; reset by append(). */
    mutable std::shared_ptr<const std::vector<std::int64_t>> refCounts_;
    /** streamIndex() memo; reset by append(). */
    mutable std::shared_ptr<const StreamIndex> streamIndex_;
};

} // namespace lsqca

#endif // LSQCA_ISA_PROGRAM_H
