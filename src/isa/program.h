#ifndef LSQCA_ISA_PROGRAM_H
#define LSQCA_ISA_PROGRAM_H

/**
 * @file
 * Container for translated LSQCA programs.
 *
 * A Program is portable object code: it references variables, CR slots,
 * and classical values but never concrete cell positions, so the same
 * Program runs on any point-/line-/hybrid-SAM instance (the paper's
 * program-portability contribution, Sec. VII-B).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace lsqca {

/** A named contiguous variable range (mirrors circuit registers). */
struct VariableRegister
{
    std::string name;
    std::int32_t first = 0;
    std::int32_t size = 0;
};

/** An LSQCA instruction sequence plus symbol-table metadata. */
class Program
{
  public:
    Program() = default;

    /** Create a program over @p num_variables memory variables. */
    explicit Program(std::int32_t num_variables);

    std::int32_t numVariables() const { return numVariables_; }
    std::int32_t numValues() const { return numValues_; }
    const std::vector<Instruction> &instructions() const { return code_; }
    const std::vector<VariableRegister> &registers() const { return regs_; }

    /** Declare a named variable register (metadata only). */
    void addRegister(const std::string &name, std::int32_t first,
                     std::int32_t size);

    /** Register index owning variable @p m; -1 if anonymous. */
    std::int32_t registerOf(std::int32_t m) const;

    /** Allocate a fresh classical value slot. */
    std::int32_t newValue() { return numValues_++; }

    /** Append a validated instruction. */
    void append(const Instruction &inst);

    std::int64_t size() const
    {
        return static_cast<std::int64_t>(code_.size());
    }

    /**
     * Number of instructions counted in CPI denominators: logical
     * commands excluding LD/ST traffic, so CPI ratios between
     * architectures equal execution-time ratios (see DESIGN.md §4.11).
     */
    std::int64_t countedInstructions() const;

    /** Number of PM instructions == magic states consumed. */
    std::int64_t magicCount() const;

    /** Per-variable static reference counts over memory operands. */
    std::vector<std::int64_t> referenceCounts() const;

    /** Multi-line disassembly (capped at @p max_lines, 0 = all). */
    std::string disassemble(std::size_t max_lines = 0) const;

  private:
    std::int32_t numVariables_ = 0;
    std::int32_t numValues_ = 0;
    std::vector<Instruction> code_;
    std::vector<VariableRegister> regs_;
};

} // namespace lsqca

#endif // LSQCA_ISA_PROGRAM_H
