#include "isa/instruction.h"

#include <array>
#include <sstream>

#include "common/error.h"

namespace lsqca {
namespace {

// Latencies are the fixed Table I values; kVariableLatency entries are
// resolved by the machine model at issue time.
constexpr std::array<OpcodeInfo, kNumOpcodes> kOpcodeTable = {{
    {"LD",    OpClass::Memory,              kVariableLatency, 1, 1, 0},
    {"ST",    OpClass::Memory,              kVariableLatency, 1, 1, 0},
    {"PZ.C",  OpClass::Preparation,         0,                0, 1, 0},
    {"PP.C",  OpClass::Preparation,         0,                0, 1, 0},
    {"PM",    OpClass::Preparation,         kVariableLatency, 0, 1, 0},
    {"HD.C",  OpClass::Unitary,             3,                0, 1, 0},
    {"PH.C",  OpClass::Unitary,             2,                0, 1, 0},
    {"MX.C",  OpClass::Measurement,         0,                0, 1, 1},
    {"MZ.C",  OpClass::Measurement,         0,                0, 1, 1},
    {"MXX.C", OpClass::Measurement,         1,                0, 2, 1},
    {"MZZ.C", OpClass::Measurement,         1,                0, 2, 1},
    {"SK",    OpClass::Control,             kVariableLatency, 0, 0, 1},
    {"PZ.M",  OpClass::InMemoryPreparation, 0,                1, 0, 0},
    {"PP.M",  OpClass::InMemoryPreparation, 0,                1, 0, 0},
    {"HD.M",  OpClass::InMemoryUnitary,     kVariableLatency, 1, 0, 0},
    {"PH.M",  OpClass::InMemoryUnitary,     kVariableLatency, 1, 0, 0},
    {"MX.M",  OpClass::InMemoryMeasurement, 0,                1, 0, 1},
    {"MZ.M",  OpClass::InMemoryMeasurement, 0,                1, 0, 1},
    {"MXX.M", OpClass::InMemoryMeasurement, kVariableLatency, 1, 1, 1},
    {"MZZ.M", OpClass::InMemoryMeasurement, kVariableLatency, 1, 1, 1},
    {"CX",    OpClass::OptimizedUnitary,    kVariableLatency, 2, 0, 0},
    {"CZ",    OpClass::OptimizedUnitary,    kVariableLatency, 2, 0, 0},
}};

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    LSQCA_ASSERT(idx < kOpcodeTable.size(), "opcode out of range");
    return kOpcodeTable[idx];
}

Opcode
opcodeFromMnemonic(const std::string &name)
{
    for (std::size_t idx = 0; idx < kOpcodeTable.size(); ++idx)
        if (name == kOpcodeTable[idx].mnemonic)
            return static_cast<Opcode>(idx);
    throw ConfigError("unknown opcode mnemonic \"" + name + "\"");
}

std::string
Instruction::str() const
{
    const OpcodeInfo &info = opcodeInfo(op);
    std::ostringstream oss;
    oss << info.mnemonic;
    bool first = true;
    auto emit = [&](char prefix, std::int32_t value) {
        oss << (first ? " " : ", ") << prefix << value;
        first = false;
    };
    // Operand print order follows Table I syntax per opcode.
    switch (op) {
      case Opcode::LD:
        emit('m', m0);
        emit('c', c0);
        break;
      case Opcode::ST:
        emit('c', c0);
        emit('m', m0);
        break;
      case Opcode::MXX_M:
      case Opcode::MZZ_M:
        emit('c', c0);
        emit('m', m0);
        break;
      default: {
        for (int i = 0; i < info.numReg; ++i)
            emit('c', i == 0 ? c0 : c1);
        for (int i = 0; i < info.numMem; ++i)
            emit('m', i == 0 ? m0 : m1);
        break;
      }
    }
    if (info.numVal > 0) {
        oss << (op == Opcode::SK ? (first ? " " : ", ") : " -> ");
        oss << 'v' << v0;
        first = false;
    }
    return oss.str();
}

} // namespace lsqca
