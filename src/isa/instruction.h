#ifndef LSQCA_ISA_INSTRUCTION_H
#define LSQCA_ISA_INSTRUCTION_H

/**
 * @file
 * The LSQCA instruction set (paper Table I).
 *
 * Operand model: memory operands (M) are *program variables*; the SAM
 * controller owns the variable -> cell mapping, which is what makes
 * LSQCA object code portable across floorplan instances (Sec. VII-B).
 * Register operands (C) name CR slots. Value operands (V) name classical
 * outcome slots.
 */

#include <cstdint>
#include <string>

namespace lsqca {

/** LSQCA opcodes, grouped exactly as in Table I. */
enum class Opcode : std::uint8_t
{
    // Memory.
    LD,     ///< Load logical qubit from SAM to CR (variable latency).
    ST,     ///< Store logical qubit from CR to SAM (variable latency).
    // Preparation (in CR).
    PZ_C,   ///< Initialize a CR qubit to |0> (0 beats).
    PP_C,   ///< Initialize a CR qubit to |+> (0 beats).
    PM,     ///< Move a magic state from the MSF to CR (variable).
    // Unitary (in CR).
    HD_C,   ///< Hadamard (3 beats).
    PH_C,   ///< Phase gate (2 beats).
    // Measurement (in CR).
    MX_C,   ///< Pauli-X measurement (0 beats).
    MZ_C,   ///< Pauli-Z measurement (0 beats).
    MXX_C,  ///< Two-qubit XX measurement (1 beat).
    MZZ_C,  ///< Two-qubit ZZ measurement (1 beat).
    // Control.
    SK,     ///< Skip next instruction when value is zero (variable).
    // In-memory preparation.
    PZ_M,
    PP_M,
    // In-memory unitary (variable: scan seek + op).
    HD_M,
    PH_M,
    // In-memory measurement.
    MX_M,
    MZ_M,
    MXX_M,  ///< XX measurement between a CR qubit and a memory qubit.
    MZZ_M,  ///< ZZ measurement between a CR qubit and a memory qubit.
    // Optimized unitary (runtime-scheduled operand placement, Sec. VI-A).
    CX,     ///< CNOT between two memory qubits.
    CZ,     ///< CZ between two memory qubits (same machinery as CX).
};

/** Number of distinct opcodes (for tables indexed by opcode). */
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::CZ) + 1;

/** Coarse instruction classes from the "Type" column of Table I. */
enum class OpClass : std::uint8_t
{
    Memory,
    Preparation,
    Unitary,
    Measurement,
    Control,
    InMemoryPreparation,
    InMemoryUnitary,
    InMemoryMeasurement,
    OptimizedUnitary,
};

/** Sentinel latency for variable-latency opcodes. */
inline constexpr std::int32_t kVariableLatency = -1;

/** Static operand/latency metadata for one opcode. */
struct OpcodeInfo
{
    const char *mnemonic;   ///< Table I syntax name, e.g. "MZZ.M".
    OpClass cls;            ///< Table I type.
    std::int32_t latency;   ///< Fixed beats, or kVariableLatency.
    std::int8_t numMem;     ///< M operands.
    std::int8_t numReg;     ///< C operands.
    std::int8_t numVal;     ///< V operands.
};

/** Metadata for @p op (total function over the enum). */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Table I mnemonic for @p op. */
inline const char *
mnemonic(Opcode op)
{
    return opcodeInfo(op).mnemonic;
}

/** Inverse of mnemonic(). @throws ConfigError on unknown names. */
Opcode opcodeFromMnemonic(const std::string &name);

/**
 * One decoded LSQCA instruction.
 *
 * Unused operand slots stay -1. Field use per opcode follows Table I:
 * e.g. LD uses (m0, c0); ST uses (c0, m0); MZZ.M uses (c0, m0, v0);
 * CX uses (m0, m1); SK uses (v0).
 */
struct Instruction
{
    Opcode op = Opcode::LD;
    std::int32_t m0 = -1;  ///< First memory variable.
    std::int32_t m1 = -1;  ///< Second memory variable.
    std::int32_t c0 = -1;  ///< First CR slot.
    std::int32_t c1 = -1;  ///< Second CR slot.
    std::int32_t v0 = -1;  ///< Classical value slot.

    /** Assembly-style rendering, e.g. "MZZ.M c0, m17 -> v3". */
    std::string str() const;
};

} // namespace lsqca

#endif // LSQCA_ISA_INSTRUCTION_H
