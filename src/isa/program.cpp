#include "isa/program.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace lsqca {

Program::Program(std::int32_t num_variables)
    : numVariables_(num_variables)
{
    LSQCA_REQUIRE(num_variables >= 0, "negative variable count");
}

void
Program::addRegister(const std::string &name, std::int32_t first,
                     std::int32_t size)
{
    LSQCA_REQUIRE(first >= 0 && size > 0 &&
                      first + size <= numVariables_,
                  "variable register out of range: " + name);
    regs_.push_back({name, first, size});
}

std::int32_t
Program::registerOf(std::int32_t m) const
{
    for (std::size_t i = 0; i < regs_.size(); ++i)
        if (m >= regs_[i].first && m < regs_[i].first + regs_[i].size)
            return static_cast<std::int32_t>(i);
    return -1;
}

void
Program::append(const Instruction &inst)
{
    const OpcodeInfo &info = opcodeInfo(inst.op);
    auto checkMem = [&](std::int32_t m) {
        LSQCA_REQUIRE(m >= 0 && m < numVariables_,
                      std::string(info.mnemonic) +
                          ": memory operand out of range");
    };
    if (info.numMem >= 1)
        checkMem(inst.m0);
    if (info.numMem >= 2) {
        checkMem(inst.m1);
        LSQCA_REQUIRE(inst.m0 != inst.m1,
                      std::string(info.mnemonic) +
                          ": memory operands must differ");
    }
    if (info.numReg >= 1)
        LSQCA_REQUIRE(inst.c0 >= 0, std::string(info.mnemonic) +
                                        ": missing register operand");
    if (info.numReg >= 2)
        LSQCA_REQUIRE(inst.c1 >= 0 && inst.c1 != inst.c0,
                      std::string(info.mnemonic) +
                          ": invalid second register operand");
    if (info.numVal >= 1)
        LSQCA_REQUIRE(inst.v0 >= 0 && inst.v0 < numValues_,
                      std::string(info.mnemonic) +
                          ": value operand not allocated");
    code_.push_back(inst);
    refCounts_ = nullptr;
    streamIndex_ = nullptr;
}

std::int64_t
Program::countedInstructions() const
{
    std::int64_t count = 0;
    for (const auto &inst : code_)
        if (inst.op != Opcode::LD && inst.op != Opcode::ST)
            ++count;
    return count;
}

std::int64_t
Program::magicCount() const
{
    std::int64_t count = 0;
    for (const auto &inst : code_)
        if (inst.op == Opcode::PM)
            ++count;
    return count;
}

std::vector<std::int64_t>
Program::referenceCounts() const
{
    if (auto cached = std::atomic_load_explicit(
            &refCounts_, std::memory_order_acquire))
        return *cached;
    std::vector<std::int64_t> counts(
        static_cast<std::size_t>(numVariables_), 0);
    for (const auto &inst : code_) {
        const OpcodeInfo &info = opcodeInfo(inst.op);
        if (info.numMem >= 1)
            ++counts[static_cast<std::size_t>(inst.m0)];
        if (info.numMem >= 2)
            ++counts[static_cast<std::size_t>(inst.m1)];
    }
    auto memo = std::make_shared<const std::vector<std::int64_t>>(
        std::move(counts));
    std::atomic_store_explicit(&refCounts_, memo,
                               std::memory_order_release);
    return *memo;
}

std::shared_ptr<const StreamIndex>
Program::streamIndex() const
{
    if (auto cached = std::atomic_load_explicit(
            &streamIndex_, std::memory_order_acquire))
        return cached;
    auto index = std::make_shared<StreamIndex>();
    const std::size_t n = code_.size();
    index->countedPrefix.resize(n + 1, 0);
    index->pmPrefix.resize(n + 1, 0);
    index->maxSlotPrefix.resize(n + 1, -1);
    index->maxValPrefix.resize(n + 1, -1);
    for (std::size_t i = 0; i < n; ++i) {
        const Instruction &inst = code_[i];
        index->countedPrefix[i + 1] =
            index->countedPrefix[i] +
            (inst.op != Opcode::LD && inst.op != Opcode::ST);
        index->pmPrefix[i + 1] =
            index->pmPrefix[i] + (inst.op == Opcode::PM);
        index->maxSlotPrefix[i + 1] = std::max(
            {index->maxSlotPrefix[i], inst.c0, inst.c1});
        index->maxValPrefix[i + 1] =
            std::max(index->maxValPrefix[i], inst.v0);
        if (inst.op == Opcode::PM || opcodeInfo(inst.op).numMem >= 1)
            index->memOps.push_back(static_cast<std::int64_t>(i));
    }
    std::shared_ptr<const StreamIndex> memo = std::move(index);
    std::atomic_store_explicit(&streamIndex_, memo,
                               std::memory_order_release);
    return memo;
}

std::string
Program::disassemble(std::size_t max_lines) const
{
    std::ostringstream oss;
    oss << "; lsqca program: " << numVariables_ << " variables, "
        << code_.size() << " instructions, " << magicCount()
        << " magic states\n";
    for (const auto &r : regs_)
        oss << "; register " << r.name << ": m" << r.first << "..m"
            << (r.first + r.size - 1) << "\n";
    std::size_t line = 0;
    for (const auto &inst : code_) {
        if (max_lines != 0 && line >= max_lines) {
            oss << "; ... " << (code_.size() - line)
                << " more instructions\n";
            break;
        }
        oss << inst.str() << "\n";
        ++line;
    }
    return oss.str();
}

} // namespace lsqca
