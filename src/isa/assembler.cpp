#include "isa/assembler.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace lsqca {
namespace {

/** Mnemonic -> opcode lookup built once from the opcode table. */
const std::unordered_map<std::string, Opcode> &
mnemonicTable()
{
    static const auto table = [] {
        std::unordered_map<std::string, Opcode> map;
        for (int i = 0; i < kNumOpcodes; ++i)
            map.emplace(mnemonic(static_cast<Opcode>(i)),
                        static_cast<Opcode>(i));
        return map;
    }();
    return table;
}

[[noreturn]] void
fail(std::size_t line_no, const std::string &msg)
{
    throw ConfigError("assembler: line " + std::to_string(line_no + 1) +
                      ": " + msg);
}

/** One parsed operand: a prefixed index like m12 / c0 / v3. */
struct Operand
{
    char prefix;
    std::int32_t index;
};

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current += c;
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

Operand
parseOperand(const std::string &token, std::size_t line_no)
{
    if (token.size() < 2)
        fail(line_no, "malformed operand '" + token + "'");
    const char prefix = token[0];
    if (prefix != 'm' && prefix != 'c' && prefix != 'v')
        fail(line_no, "operand '" + token +
                          "' must start with m, c, or v");
    for (std::size_t i = 1; i < token.size(); ++i)
        if (!std::isdigit(static_cast<unsigned char>(token[i])))
            fail(line_no, "operand '" + token + "' has a non-numeric "
                          "index");
    return {prefix, static_cast<std::int32_t>(std::stol(
                        token.substr(1)))};
}

/** Parse "; lsqca program: N variables, ..." -> N (or -1). */
std::int32_t
parseHeaderVariables(const std::string &line)
{
    const std::string key = "lsqca program:";
    const auto pos = line.find(key);
    if (pos == std::string::npos)
        return -1;
    std::istringstream iss(line.substr(pos + key.size()));
    std::int64_t n = -1;
    iss >> n;
    return static_cast<std::int32_t>(n);
}

/** Parse "; register name: mA..mB" -> (name, A, B) if present. */
bool
parseRegisterComment(const std::string &line, std::string &name,
                     std::int32_t &first, std::int32_t &last)
{
    const std::string key = "register ";
    const auto pos = line.find(key);
    if (pos == std::string::npos)
        return false;
    const auto colon = line.find(':', pos);
    if (colon == std::string::npos)
        return false;
    name = line.substr(pos + key.size(), colon - pos - key.size());
    std::string rest = line.substr(colon + 1);
    const auto m1 = rest.find('m');
    const auto dots = rest.find("..");
    if (m1 == std::string::npos || dots == std::string::npos)
        return false;
    const auto m2 = rest.find('m', dots);
    if (m2 == std::string::npos)
        return false;
    first = static_cast<std::int32_t>(
        std::stol(rest.substr(m1 + 1, dots - m1 - 1)));
    last = static_cast<std::int32_t>(std::stol(rest.substr(m2 + 1)));
    return true;
}

} // namespace

Program
assemble(const std::string &text)
{
    struct Pending
    {
        Opcode op;
        std::vector<Operand> operands;
        std::size_t lineNo;
    };

    std::int32_t num_variables = -1;
    std::int32_t max_variable = -1;
    std::int32_t max_value = -1;
    std::vector<std::tuple<std::string, std::int32_t, std::int32_t>>
        registers;
    std::vector<Pending> pending;

    std::istringstream stream(text);
    std::string line;
    std::size_t line_no = 0;
    for (; std::getline(stream, line); ++line_no) {
        // Strip comments; harvest the directives they may carry.
        const auto semi = line.find(';');
        if (semi != std::string::npos) {
            const std::string comment = line.substr(semi);
            if (num_variables < 0)
                num_variables = parseHeaderVariables(comment);
            std::string name;
            std::int32_t first = 0;
            std::int32_t last = 0;
            if (parseRegisterComment(comment, name, first, last))
                registers.emplace_back(name, first, last);
            line = line.substr(0, semi);
        }
        auto tokens = tokenize(line);
        if (tokens.empty())
            continue;
        // "->" is sugar between operands; drop it.
        std::vector<std::string> kept;
        for (auto &token : tokens)
            if (token != "->")
                kept.push_back(std::move(token));

        const auto it = mnemonicTable().find(kept[0]);
        if (it == mnemonicTable().end())
            fail(line_no, "unknown mnemonic '" + kept[0] + "'");
        Pending inst{it->second, {}, line_no};
        for (std::size_t i = 1; i < kept.size(); ++i) {
            const Operand operand = parseOperand(kept[i], line_no);
            if (operand.prefix == 'm')
                max_variable = std::max(max_variable, operand.index);
            if (operand.prefix == 'v')
                max_value = std::max(max_value, operand.index);
            inst.operands.push_back(operand);
        }
        pending.push_back(std::move(inst));
    }

    if (num_variables < 0)
        num_variables = max_variable + 1;
    LSQCA_REQUIRE(num_variables > max_variable,
                  "assembler: header variable count smaller than the "
                  "largest m-operand");

    Program program(num_variables);
    for (const auto &[name, first, last] : registers)
        program.addRegister(name, first, last - first + 1);
    for (std::int32_t v = 0; v <= max_value; ++v)
        program.newValue();

    for (const auto &inst : pending) {
        const OpcodeInfo &info = opcodeInfo(inst.op);
        Instruction out;
        out.op = inst.op;
        int mem_seen = 0;
        int reg_seen = 0;
        int val_seen = 0;
        for (const Operand &operand : inst.operands) {
            switch (operand.prefix) {
              case 'm':
                (mem_seen++ == 0 ? out.m0 : out.m1) = operand.index;
                break;
              case 'c':
                (reg_seen++ == 0 ? out.c0 : out.c1) = operand.index;
                break;
              default:
                ++val_seen;
                out.v0 = operand.index;
                break;
            }
        }
        if (mem_seen != info.numMem || reg_seen != info.numReg ||
            val_seen != info.numVal) {
            fail(inst.lineNo,
                 std::string("operand mismatch for ") + info.mnemonic +
                     ": expected " + std::to_string(info.numMem) +
                     "m/" + std::to_string(info.numReg) + "c/" +
                     std::to_string(info.numVal) + "v");
        }
        try {
            program.append(out);
        } catch (const ConfigError &e) {
            fail(inst.lineNo, e.what());
        }
    }
    return program;
}

} // namespace lsqca
