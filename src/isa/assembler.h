#ifndef LSQCA_ISA_ASSEMBLER_H
#define LSQCA_ISA_ASSEMBLER_H

/**
 * @file
 * Text assembler for LSQCA programs.
 *
 * Accepts the exact dialect the disassembler emits, so object code can
 * round-trip through text:
 *
 *   ; lsqca program: 9 variables, 15 instructions, 1 magic states
 *   ; register data: m0..m7
 *   HD.M m0
 *   LD m3, c0
 *   MZZ.M c0, m8 -> v1
 *   SK v1
 *   ...
 *
 * Directives: the header comment declares the variable count; register
 * comments declare named ranges. Value slots are allocated implicitly
 * up to the highest index referenced. Unknown mnemonics, malformed
 * operands, and out-of-range references raise ConfigError with the
 * offending line number.
 */

#include <string>

#include "isa/program.h"

namespace lsqca {

/** Parse @p text into a validated Program. @throws ConfigError */
Program assemble(const std::string &text);

} // namespace lsqca

#endif // LSQCA_ISA_ASSEMBLER_H
