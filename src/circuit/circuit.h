#ifndef LSQCA_CIRCUIT_CIRCUIT_H
#define LSQCA_CIRCUIT_CIRCUIT_H

/**
 * @file
 * Quantum circuit container with named registers and circuit metrics.
 *
 * Registers matter for the paper's analysis: SELECT partitions its qubits
 * into control / temporal / system registers with very different access
 * frequencies (Fig. 8a), and the hybrid floorplan pins hot registers into
 * the conventional region (Sec. VI-C).
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "circuit/gate.h"

namespace lsqca {

/** A contiguous, named range of qubits within a circuit. */
struct QubitRegister
{
    std::string name;
    QubitId first = 0;
    std::int32_t size = 0;

    bool
    contains(QubitId q) const
    {
        return q >= first && q < first + size;
    }
};

/**
 * An ordered list of gates over `numQubits()` logical qubits and
 * `numClassicalBits()` classical bits, with emit helpers and metrics.
 */
class Circuit
{
  public:
    Circuit() = default;

    /** Create a circuit with one anonymous register of @p num_qubits. */
    explicit Circuit(std::int32_t num_qubits);

    /** Append a named register; returns the index of its first qubit. */
    QubitId addRegister(const std::string &name, std::int32_t size);

    std::int32_t numQubits() const { return numQubits_; }
    std::int32_t numClassicalBits() const { return numBits_; }
    const std::vector<Gate> &gates() const { return gates_; }
    const std::vector<QubitRegister> &registers() const { return regs_; }

    /** Register index owning qubit @p q; -1 when q is anonymous. */
    std::int32_t registerOf(QubitId q) const;

    /** Register by name. @pre the register exists. */
    const QubitRegister &reg(const std::string &name) const;

    /** Allocate a fresh classical bit. */
    ClassicalBit newBit();

    /** Append an arbitrary gate (operands validated). */
    void append(const Gate &gate);

    // ---- emit helpers -------------------------------------------------
    void x(QubitId q) { append1(GateKind::X, q); }
    void y(QubitId q) { append1(GateKind::Y, q); }
    void z(QubitId q) { append1(GateKind::Z, q); }
    void h(QubitId q) { append1(GateKind::H, q); }
    void s(QubitId q) { append1(GateKind::S, q); }
    void sdg(QubitId q) { append1(GateKind::Sdg, q); }
    void t(QubitId q) { append1(GateKind::T, q); }
    void tdg(QubitId q) { append1(GateKind::Tdg, q); }
    void prepZ(QubitId q) { append1(GateKind::PrepZ, q); }
    void prepX(QubitId q) { append1(GateKind::PrepX, q); }
    void cx(QubitId control, QubitId target);
    void cz(QubitId a, QubitId b);
    void swap(QubitId a, QubitId b);
    void ccx(QubitId c0, QubitId c1, QubitId target);

    /** Temporary AND: t must be |0>; becomes |c0 AND c1>. Costs 4 T. */
    void andInit(QubitId c0, QubitId c1, QubitId t);

    /** Uncompute a temporary AND (measurement + conditional CZ; 0 T). */
    void andUncompute(QubitId c0, QubitId c1, QubitId t);

    /** Measure in Z basis into a fresh classical bit (returned). */
    ClassicalBit measZ(QubitId q);

    /** Measure in X basis into a fresh classical bit (returned). */
    ClassicalBit measX(QubitId q);

    /** Classically-conditioned single-qubit gate. */
    void appendConditioned(GateKind kind, QubitId q, ClassicalBit cond);

    /** Classically-conditioned CZ (AND uncompute correction). */
    void czConditioned(QubitId a, QubitId b, ClassicalBit cond);

    // ---- metrics ------------------------------------------------------
    /** Number of T/Tdg gates plus 4 per unlowered AndInit/CCX macro. */
    std::int64_t tCount() const;

    /** Number of explicit CCX + AndInit macros still in the circuit. */
    std::int64_t toffoliCount() const;

    /** Gates with two or more qubit operands. */
    std::int64_t twoQubitCount() const;

    std::int64_t size() const
    {
        return static_cast<std::int64_t>(gates_.size());
    }

    /**
     * Dependency depth under a per-gate latency function (classical-bit
     * edges included). Latency 0 gates still order their operands.
     */
    std::int64_t
    depth(const std::function<std::int64_t(const Gate &)> &latency) const;

    /** Unit-latency depth. */
    std::int64_t unitDepth() const;

    /**
     * Per-qubit static reference counts (number of gates touching each
     * qubit) — drives the hybrid floorplan's hot-register selection.
     */
    std::vector<std::int64_t> referenceCounts() const;

  private:
    void append1(GateKind kind, QubitId q);
    void validateQubit(QubitId q) const;

    std::int32_t numQubits_ = 0;
    std::int32_t numBits_ = 0;
    std::vector<Gate> gates_;
    std::vector<QubitRegister> regs_;
};

} // namespace lsqca

#endif // LSQCA_CIRCUIT_CIRCUIT_H
