#include "circuit/qasm.h"

#include <sstream>

#include "common/error.h"

namespace lsqca {
namespace {

/** QASM register reference "name[offset]" for qubit @p q. */
std::string
qref(const Circuit &circuit, QubitId q)
{
    const std::int32_t reg = circuit.registerOf(q);
    if (reg < 0)
        return "q[" + std::to_string(q) + "]";
    const auto &r =
        circuit.registers()[static_cast<std::size_t>(reg)];
    return r.name + "[" + std::to_string(q - r.first) + "]";
}

} // namespace

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream oss;
    oss << "OPENQASM 2.0;\n";
    oss << "include \"qelib1.inc\";\n";
    if (circuit.registers().empty() && circuit.numQubits() > 0)
        oss << "qreg q[" << circuit.numQubits() << "];\n";
    for (const auto &r : circuit.registers())
        oss << "qreg " << r.name << "[" << r.size << "];\n";
    for (ClassicalBit b = 0; b < circuit.numClassicalBits(); ++b)
        oss << "creg c" << b << "[1];\n";

    for (const auto &g : circuit.gates()) {
        std::string prefix;
        if (g.condBit != kNoBit)
            prefix = "if (c" + std::to_string(g.condBit) + " == 1) ";
        const std::string q0 = qref(circuit, g.qubits[0]);
        const std::string q1 =
            g.arity() >= 2 ? qref(circuit, g.qubits[1]) : "";
        const std::string q2 =
            g.arity() >= 3 ? qref(circuit, g.qubits[2]) : "";
        switch (g.kind) {
          case GateKind::X: oss << prefix << "x " << q0 << ";\n"; break;
          case GateKind::Y: oss << prefix << "y " << q0 << ";\n"; break;
          case GateKind::Z: oss << prefix << "z " << q0 << ";\n"; break;
          case GateKind::H: oss << prefix << "h " << q0 << ";\n"; break;
          case GateKind::S: oss << prefix << "s " << q0 << ";\n"; break;
          case GateKind::Sdg:
            oss << prefix << "sdg " << q0 << ";\n";
            break;
          case GateKind::T: oss << prefix << "t " << q0 << ";\n"; break;
          case GateKind::Tdg:
            oss << prefix << "tdg " << q0 << ";\n";
            break;
          case GateKind::CX:
            oss << prefix << "cx " << q0 << ", " << q1 << ";\n";
            break;
          case GateKind::CZ:
            oss << prefix << "cz " << q0 << ", " << q1 << ";\n";
            break;
          case GateKind::Swap:
            oss << prefix << "swap " << q0 << ", " << q1 << ";\n";
            break;
          case GateKind::CCX:
            oss << prefix << "ccx " << q0 << ", " << q1 << ", " << q2
                << ";\n";
            break;
          case GateKind::AndInit:
            oss << prefix << "ccx " << q0 << ", " << q1 << ", " << q2
                << "; // temporary AND (4T)\n";
            break;
          case GateKind::AndUncompute:
            oss << prefix << "ccx " << q0 << ", " << q1 << ", " << q2
                << "; // AND uncompute (measure-based)\n";
            break;
          case GateKind::PrepZ:
            oss << prefix << "reset " << q0 << ";\n";
            break;
          case GateKind::PrepX:
            oss << prefix << "reset " << q0 << ";\n"
                << prefix << "h " << q0 << ";\n";
            break;
          case GateKind::MeasZ:
            oss << prefix << "measure " << q0 << " -> c" << g.cbit
                << "[0];\n";
            break;
          case GateKind::MeasX:
            oss << prefix << "h " << q0 << ";\n"
                << prefix << "measure " << q0 << " -> c" << g.cbit
                << "[0];\n"
                << prefix << "h " << q0 << ";\n";
            break;
        }
    }
    return oss.str();
}

} // namespace lsqca
