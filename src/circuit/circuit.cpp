#include "circuit/circuit.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace lsqca {

const char *
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::H: return "h";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::CX: return "cx";
      case GateKind::CZ: return "cz";
      case GateKind::Swap: return "swap";
      case GateKind::T: return "t";
      case GateKind::Tdg: return "tdg";
      case GateKind::CCX: return "ccx";
      case GateKind::AndInit: return "and";
      case GateKind::AndUncompute: return "unand";
      case GateKind::PrepZ: return "prep_z";
      case GateKind::PrepX: return "prep_x";
      case GateKind::MeasZ: return "meas_z";
      case GateKind::MeasX: return "meas_x";
    }
    return "?";
}

std::string
Gate::str() const
{
    std::ostringstream oss;
    oss << gateName(kind);
    for (int i = 0; i < arity(); ++i)
        oss << (i == 0 ? " q" : ", q") << qubits[static_cast<size_t>(i)];
    if (cbit != kNoBit)
        oss << " -> c" << cbit;
    if (condBit != kNoBit)
        oss << " if c" << condBit;
    return oss.str();
}

Circuit::Circuit(std::int32_t num_qubits)
{
    LSQCA_REQUIRE(num_qubits >= 0, "negative qubit count");
    if (num_qubits > 0)
        addRegister("q", num_qubits);
}

QubitId
Circuit::addRegister(const std::string &name, std::int32_t size)
{
    LSQCA_REQUIRE(size > 0, "register size must be positive");
    for (const auto &r : regs_)
        LSQCA_REQUIRE(r.name != name, "duplicate register name: " + name);
    const QubitId first = numQubits_;
    regs_.push_back({name, first, size});
    numQubits_ += size;
    return first;
}

std::int32_t
Circuit::registerOf(QubitId q) const
{
    for (std::size_t i = 0; i < regs_.size(); ++i)
        if (regs_[i].contains(q))
            return static_cast<std::int32_t>(i);
    return -1;
}

const QubitRegister &
Circuit::reg(const std::string &name) const
{
    for (const auto &r : regs_)
        if (r.name == name)
            return r;
    throw ConfigError("no such register: " + name);
}

ClassicalBit
Circuit::newBit()
{
    return numBits_++;
}

void
Circuit::validateQubit(QubitId q) const
{
    LSQCA_REQUIRE(q >= 0 && q < numQubits_,
                  "qubit operand out of range: q" + std::to_string(q));
}

void
Circuit::append(const Gate &gate)
{
    const int arity = gate.arity();
    for (int i = 0; i < arity; ++i)
        validateQubit(gate.qubits[static_cast<size_t>(i)]);
    for (int i = 0; i < arity; ++i)
        for (int j = i + 1; j < arity; ++j)
            LSQCA_REQUIRE(gate.qubits[static_cast<size_t>(i)] !=
                              gate.qubits[static_cast<size_t>(j)],
                          "duplicate qubit operand in " +
                              std::string(gateName(gate.kind)));
    if (isMeasurement(gate.kind))
        LSQCA_REQUIRE(gate.cbit != kNoBit && gate.cbit < numBits_,
                      "measurement without a valid classical bit");
    if (gate.condBit != kNoBit)
        LSQCA_REQUIRE(gate.condBit < numBits_,
                      "condition bit out of range");
    gates_.push_back(gate);
}

void
Circuit::append1(GateKind kind, QubitId q)
{
    Gate g;
    g.kind = kind;
    g.qubits[0] = q;
    append(g);
}

void
Circuit::cx(QubitId control, QubitId target)
{
    Gate g;
    g.kind = GateKind::CX;
    g.qubits[0] = control;
    g.qubits[1] = target;
    append(g);
}

void
Circuit::cz(QubitId a, QubitId b)
{
    Gate g;
    g.kind = GateKind::CZ;
    g.qubits[0] = a;
    g.qubits[1] = b;
    append(g);
}

void
Circuit::swap(QubitId a, QubitId b)
{
    Gate g;
    g.kind = GateKind::Swap;
    g.qubits[0] = a;
    g.qubits[1] = b;
    append(g);
}

void
Circuit::ccx(QubitId c0, QubitId c1, QubitId target)
{
    Gate g;
    g.kind = GateKind::CCX;
    g.qubits[0] = c0;
    g.qubits[1] = c1;
    g.qubits[2] = target;
    append(g);
}

void
Circuit::andInit(QubitId c0, QubitId c1, QubitId t)
{
    Gate g;
    g.kind = GateKind::AndInit;
    g.qubits[0] = c0;
    g.qubits[1] = c1;
    g.qubits[2] = t;
    append(g);
}

void
Circuit::andUncompute(QubitId c0, QubitId c1, QubitId t)
{
    Gate g;
    g.kind = GateKind::AndUncompute;
    g.qubits[0] = c0;
    g.qubits[1] = c1;
    g.qubits[2] = t;
    append(g);
}

ClassicalBit
Circuit::measZ(QubitId q)
{
    Gate g;
    g.kind = GateKind::MeasZ;
    g.qubits[0] = q;
    g.cbit = newBit();
    append(g);
    return g.cbit;
}

ClassicalBit
Circuit::measX(QubitId q)
{
    Gate g;
    g.kind = GateKind::MeasX;
    g.qubits[0] = q;
    g.cbit = newBit();
    append(g);
    return g.cbit;
}

void
Circuit::appendConditioned(GateKind kind, QubitId q, ClassicalBit cond)
{
    LSQCA_REQUIRE(gateArity(kind) == 1,
                  "appendConditioned expects a single-qubit gate");
    Gate g;
    g.kind = kind;
    g.qubits[0] = q;
    g.condBit = cond;
    append(g);
}

void
Circuit::czConditioned(QubitId a, QubitId b, ClassicalBit cond)
{
    Gate g;
    g.kind = GateKind::CZ;
    g.qubits[0] = a;
    g.qubits[1] = b;
    g.condBit = cond;
    append(g);
}

std::int64_t
Circuit::tCount() const
{
    std::int64_t count = 0;
    for (const auto &g : gates_) {
        if (isTLike(g.kind))
            ++count;
        else if (g.kind == GateKind::CCX || g.kind == GateKind::AndInit)
            count += 4; // temporary-AND lowering cost
    }
    return count;
}

std::int64_t
Circuit::toffoliCount() const
{
    std::int64_t count = 0;
    for (const auto &g : gates_)
        if (g.kind == GateKind::CCX || g.kind == GateKind::AndInit)
            ++count;
    return count;
}

std::int64_t
Circuit::twoQubitCount() const
{
    std::int64_t count = 0;
    for (const auto &g : gates_)
        if (g.arity() >= 2)
            ++count;
    return count;
}

std::int64_t
Circuit::depth(
    const std::function<std::int64_t(const Gate &)> &latency) const
{
    std::vector<std::int64_t> qubit_frontier(
        static_cast<std::size_t>(numQubits_), 0);
    std::vector<std::int64_t> bit_frontier(
        static_cast<std::size_t>(numBits_), 0);
    std::int64_t total = 0;
    for (const auto &g : gates_) {
        std::int64_t start = 0;
        for (int i = 0; i < g.arity(); ++i)
            start = std::max(
                start,
                qubit_frontier[static_cast<std::size_t>(
                    g.qubits[static_cast<size_t>(i)])]);
        if (g.condBit != kNoBit)
            start = std::max(
                start, bit_frontier[static_cast<std::size_t>(g.condBit)]);
        const std::int64_t end = start + latency(g);
        for (int i = 0; i < g.arity(); ++i)
            qubit_frontier[static_cast<std::size_t>(
                g.qubits[static_cast<size_t>(i)])] = end;
        if (g.cbit != kNoBit)
            bit_frontier[static_cast<std::size_t>(g.cbit)] = end;
        total = std::max(total, end);
    }
    return total;
}

std::int64_t
Circuit::unitDepth() const
{
    return depth([](const Gate &) { return std::int64_t{1}; });
}

std::vector<std::int64_t>
Circuit::referenceCounts() const
{
    std::vector<std::int64_t> counts(
        static_cast<std::size_t>(numQubits_), 0);
    for (const auto &g : gates_)
        for (int i = 0; i < g.arity(); ++i)
            ++counts[static_cast<std::size_t>(
                g.qubits[static_cast<size_t>(i)])];
    return counts;
}

} // namespace lsqca
