#ifndef LSQCA_CIRCUIT_GATE_H
#define LSQCA_CIRCUIT_GATE_H

/**
 * @file
 * Gate-level IR for logical quantum circuits.
 *
 * The gate set is the FTQC-friendly universal set of Sec. II-C plus the
 * Toffoli/temporary-AND macros that benchmark synthesis uses before
 * Clifford+T lowering. Classical bits support the measurement-based
 * gadgets (T teleportation, AND uncomputation).
 */

#include <array>
#include <cstdint>
#include <string>

#include "geom/grid.h"

namespace lsqca {

/** Index of a classical bit in a circuit's classical store. */
using ClassicalBit = std::int32_t;

/** Sentinel for "no classical bit". */
inline constexpr ClassicalBit kNoBit = -1;

/** Logical gate kinds understood by the IR and state-vector simulator. */
enum class GateKind : std::uint8_t
{
    // Pauli unitaries (negligible FTQC latency; trackable in Pauli frame).
    X, Y, Z,
    // Clifford unitaries.
    H, S, Sdg, CX, CZ, Swap,
    // Non-Clifford unitaries.
    T, Tdg,
    // Macros lowered before translation to the LSQCA ISA.
    CCX,        ///< Toffoli on (control, control, target).
    AndInit,    ///< Temporary AND: (a, b, t): |t>=|0> -> |a AND b>. 4 T.
    AndUncompute, ///< Inverse via MX + conditional CZ. 0 T.
    // State preparation.
    PrepZ, PrepX,
    // Measurement (writes the gate's classical bit).
    MeasZ, MeasX,
};

/** Number of qubit operands a gate kind takes. */
constexpr int
gateArity(GateKind kind)
{
    switch (kind) {
      case GateKind::X: case GateKind::Y: case GateKind::Z:
      case GateKind::H: case GateKind::S: case GateKind::Sdg:
      case GateKind::T: case GateKind::Tdg:
      case GateKind::PrepZ: case GateKind::PrepX:
      case GateKind::MeasZ: case GateKind::MeasX:
        return 1;
      case GateKind::CX: case GateKind::CZ: case GateKind::Swap:
        return 2;
      case GateKind::CCX: case GateKind::AndInit:
      case GateKind::AndUncompute:
        return 3;
    }
    return 0;
}

/** True for the non-Clifford gates that consume magic states directly. */
constexpr bool
isTLike(GateKind kind)
{
    return kind == GateKind::T || kind == GateKind::Tdg;
}

/** True for measurement gates (they write a classical bit). */
constexpr bool
isMeasurement(GateKind kind)
{
    return kind == GateKind::MeasZ || kind == GateKind::MeasX;
}

/** Short mnemonic, e.g. "cx". */
const char *gateName(GateKind kind);

/**
 * One gate application.
 *
 * @c qubits holds gateArity(kind) operands (controls first). @c cbit is
 * the classical destination for measurements. @c condBit, when valid,
 * gates execution on that classical bit being one (measurement-based
 * corrections).
 */
struct Gate
{
    GateKind kind = GateKind::X;
    std::array<QubitId, 3> qubits{kNoQubit, kNoQubit, kNoQubit};
    ClassicalBit cbit = kNoBit;
    ClassicalBit condBit = kNoBit;

    int arity() const { return gateArity(kind); }

    /** Human-readable rendering, e.g. "cx q3, q7". */
    std::string str() const;
};

} // namespace lsqca

#endif // LSQCA_CIRCUIT_GATE_H
