#include "circuit/statevector.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace lsqca {
namespace {

constexpr std::complex<double> kI{0.0, 1.0};

} // namespace

StateVector::StateVector(std::int32_t num_qubits, std::uint64_t seed)
    : numQubits_(num_qubits), rng_(seed)
{
    LSQCA_REQUIRE(num_qubits > 0, "state vector needs at least one qubit");
    LSQCA_REQUIRE(num_qubits <= kMaxQubits,
                  "state vector capacity exceeded (max " +
                      std::to_string(kMaxQubits) + " qubits)");
    amps_.assign(std::uint64_t{1} << num_qubits, {0.0, 0.0});
    amps_[0] = {1.0, 0.0};
}

std::uint64_t
StateVector::stride(QubitId q) const
{
    LSQCA_REQUIRE(q >= 0 && q < numQubits_, "qubit out of range");
    return std::uint64_t{1} << q;
}

StateVector::Amplitude
StateVector::amplitude(std::uint64_t index) const
{
    LSQCA_REQUIRE(index < amps_.size(), "basis index out of range");
    return amps_[index];
}

double
StateVector::probability(std::uint64_t index) const
{
    return std::norm(amplitude(index));
}

double
StateVector::probabilityOne(QubitId q) const
{
    const std::uint64_t bit = stride(q);
    double p = 0.0;
    for (std::uint64_t i = 0; i < amps_.size(); ++i)
        if (i & bit)
            p += std::norm(amps_[i]);
    return p;
}

double
StateVector::norm() const
{
    double n = 0.0;
    for (const auto &a : amps_)
        n += std::norm(a);
    return n;
}

double
StateVector::fidelity(const StateVector &other) const
{
    LSQCA_REQUIRE(other.amps_.size() == amps_.size(),
                  "fidelity requires equal qubit counts");
    Amplitude overlap{0.0, 0.0};
    for (std::uint64_t i = 0; i < amps_.size(); ++i)
        overlap += std::conj(other.amps_[i]) * amps_[i];
    return std::norm(overlap);
}

void
StateVector::apply1(QubitId q, const Amplitude m00, const Amplitude m01,
                    const Amplitude m10, const Amplitude m11)
{
    const std::uint64_t bit = stride(q);
    for (std::uint64_t base = 0; base < amps_.size(); ++base) {
        if (base & bit)
            continue;
        const Amplitude a0 = amps_[base];
        const Amplitude a1 = amps_[base | bit];
        amps_[base] = m00 * a0 + m01 * a1;
        amps_[base | bit] = m10 * a0 + m11 * a1;
    }
}

void
StateVector::applyX(QubitId q)
{
    apply1(q, 0, 1, 1, 0);
}

void
StateVector::applyY(QubitId q)
{
    apply1(q, 0, -kI, kI, 0);
}

void
StateVector::applyZ(QubitId q)
{
    apply1(q, 1, 0, 0, -1);
}

void
StateVector::applyH(QubitId q)
{
    const double r = 1.0 / std::numbers::sqrt2;
    apply1(q, r, r, r, -r);
}

void
StateVector::applyS(QubitId q)
{
    apply1(q, 1, 0, 0, kI);
}

void
StateVector::applySdg(QubitId q)
{
    apply1(q, 1, 0, 0, -kI);
}

void
StateVector::applyT(QubitId q)
{
    apply1(q, 1, 0, 0, std::polar(1.0, std::numbers::pi / 4));
}

void
StateVector::applyTdg(QubitId q)
{
    apply1(q, 1, 0, 0, std::polar(1.0, -std::numbers::pi / 4));
}

void
StateVector::applyCX(QubitId control, QubitId target)
{
    const std::uint64_t cbit = stride(control);
    const std::uint64_t tbit = stride(target);
    LSQCA_REQUIRE(control != target, "cx operands must differ");
    for (std::uint64_t i = 0; i < amps_.size(); ++i)
        if ((i & cbit) && !(i & tbit))
            std::swap(amps_[i], amps_[i | tbit]);
}

void
StateVector::applyCZ(QubitId a, QubitId b)
{
    const std::uint64_t abit = stride(a);
    const std::uint64_t bbit = stride(b);
    LSQCA_REQUIRE(a != b, "cz operands must differ");
    for (std::uint64_t i = 0; i < amps_.size(); ++i)
        if ((i & abit) && (i & bbit))
            amps_[i] = -amps_[i];
}

void
StateVector::applySwap(QubitId a, QubitId b)
{
    const std::uint64_t abit = stride(a);
    const std::uint64_t bbit = stride(b);
    LSQCA_REQUIRE(a != b, "swap operands must differ");
    for (std::uint64_t i = 0; i < amps_.size(); ++i)
        if ((i & abit) && !(i & bbit))
            std::swap(amps_[i], amps_[(i & ~abit) | bbit]);
}

void
StateVector::applyCCX(QubitId c0, QubitId c1, QubitId target)
{
    const std::uint64_t b0 = stride(c0);
    const std::uint64_t b1 = stride(c1);
    const std::uint64_t tbit = stride(target);
    LSQCA_REQUIRE(c0 != c1 && c0 != target && c1 != target,
                  "ccx operands must differ");
    for (std::uint64_t i = 0; i < amps_.size(); ++i)
        if ((i & b0) && (i & b1) && !(i & tbit))
            std::swap(amps_[i], amps_[i | tbit]);
}

bool
StateVector::measureZ(QubitId q)
{
    const double p1 = probabilityOne(q);
    const bool outcome = rng_.chance(p1);
    const std::uint64_t bit = stride(q);
    const double keep = outcome ? p1 : 1.0 - p1;
    LSQCA_ASSERT(keep > 1e-12, "measurement of an impossible outcome");
    const double scale = 1.0 / std::sqrt(keep);
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        const bool is_one = (i & bit) != 0;
        if (is_one == outcome)
            amps_[i] *= scale;
        else
            amps_[i] = {0.0, 0.0};
    }
    return outcome;
}

bool
StateVector::measureX(QubitId q)
{
    applyH(q);
    const bool outcome = measureZ(q);
    applyH(q);
    return outcome;
}

void
StateVector::resetZ(QubitId q)
{
    if (measureZ(q))
        applyX(q);
}

void
StateVector::resetX(QubitId q)
{
    resetZ(q);
    applyH(q);
}

void
StateVector::applyGate(const Gate &gate, std::vector<std::uint8_t> &bits)
{
    if (gate.condBit != kNoBit) {
        LSQCA_REQUIRE(static_cast<std::size_t>(gate.condBit) < bits.size(),
                      "condition bit not yet written");
        if (!bits[static_cast<std::size_t>(gate.condBit)])
            return;
    }
    const QubitId q0 = gate.qubits[0];
    const QubitId q1 = gate.qubits[1];
    const QubitId q2 = gate.qubits[2];
    switch (gate.kind) {
      case GateKind::X: applyX(q0); break;
      case GateKind::Y: applyY(q0); break;
      case GateKind::Z: applyZ(q0); break;
      case GateKind::H: applyH(q0); break;
      case GateKind::S: applyS(q0); break;
      case GateKind::Sdg: applySdg(q0); break;
      case GateKind::T: applyT(q0); break;
      case GateKind::Tdg: applyTdg(q0); break;
      case GateKind::CX: applyCX(q0, q1); break;
      case GateKind::CZ: applyCZ(q0, q1); break;
      case GateKind::Swap: applySwap(q0, q1); break;
      case GateKind::CCX: applyCCX(q0, q1, q2); break;
      // Macro semantics: AND == CCX on a |0> target; uncompute is the
      // inverse on a target holding a AND b.
      case GateKind::AndInit: applyCCX(q0, q1, q2); break;
      case GateKind::AndUncompute: applyCCX(q0, q1, q2); break;
      case GateKind::PrepZ: resetZ(q0); break;
      case GateKind::PrepX: resetX(q0); break;
      case GateKind::MeasZ: {
        const bool outcome = measureZ(q0);
        if (static_cast<std::size_t>(gate.cbit) >= bits.size())
            bits.resize(static_cast<std::size_t>(gate.cbit) + 1, 0);
        bits[static_cast<std::size_t>(gate.cbit)] = outcome ? 1 : 0;
        break;
      }
      case GateKind::MeasX: {
        const bool outcome = measureX(q0);
        if (static_cast<std::size_t>(gate.cbit) >= bits.size())
            bits.resize(static_cast<std::size_t>(gate.cbit) + 1, 0);
        bits[static_cast<std::size_t>(gate.cbit)] = outcome ? 1 : 0;
        break;
      }
    }
}

StateVectorRun
runStateVector(const Circuit &circuit,
               const std::vector<QubitId> &initial_ones, std::uint64_t seed)
{
    StateVectorRun run{StateVector(circuit.numQubits(), seed), {}};
    run.bits.assign(static_cast<std::size_t>(circuit.numClassicalBits()),
                    0);
    for (QubitId q : initial_ones)
        run.state.applyX(q);
    for (const auto &g : circuit.gates())
        run.state.applyGate(g, run.bits);
    return run;
}

std::vector<bool>
runClassical(const Circuit &circuit, const std::vector<QubitId> &initial_ones,
             const std::vector<QubitId> &outputs, std::uint64_t seed)
{
    auto run = runStateVector(circuit, initial_ones, seed);
    std::vector<bool> result;
    result.reserve(outputs.size());
    for (QubitId q : outputs)
        result.push_back(run.state.measureZ(q));
    return result;
}

} // namespace lsqca
