#include "circuit/statevector.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"
#include "sweep/thread_pool.h"

namespace lsqca {
namespace {

constexpr std::complex<double> kI{0.0, 1.0};

/**
 * Amplitude sweeps at or above this size fan out over the shared
 * thread pool; smaller states stay on the calling thread (the fork
 * overhead would dominate). 2^18 amplitudes = 4 MiB of state.
 */
constexpr std::uint64_t kParallelAmps = std::uint64_t{1} << 18;

/** Fixed chunk count for parallel sweeps (see parallelSum contract). */
constexpr int kSweepChunks = 64;

/**
 * Insert a zero bit at the position of @p bit (a power of two): maps a
 * compacted index onto the full index space with that bit clear. The
 * workhorse of every stride-based kernel below — iterating compacted
 * indices visits exactly the relevant amplitudes with no per-index
 * branch.
 */
inline std::uint64_t
insertZeroBit(std::uint64_t value, std::uint64_t bit)
{
    return ((value & ~(bit - 1)) << 1) | (value & (bit - 1));
}

/** insertZeroBit over two distinct bit positions. */
inline std::uint64_t
insertZeroBits2(std::uint64_t value, std::uint64_t lo, std::uint64_t hi)
{
    return insertZeroBit(insertZeroBit(value, lo), hi);
}

/** Order two bit masks ascending. */
inline void
sortBits2(std::uint64_t &a, std::uint64_t &b)
{
    if (a > b)
        std::swap(a, b);
}

/**
 * Complex multiply written out in reals. std::complex's operator* calls
 * the libgcc NaN-recovery routine (__muldc3) per product, which
 * dominates the amplitude kernels; gate matrices and amplitudes are
 * always finite, where this form computes the identical value.
 */
inline std::complex<double>
cmul(std::complex<double> x, std::complex<double> y)
{
    return {x.real() * y.real() - x.imag() * y.imag(),
            x.real() * y.imag() + x.imag() * y.real()};
}

/**
 * Run kernel(a0, a1) over every (clear, set) amplitude pair of @p bit,
 * fanning out over the shared pool above the size threshold. The
 * kernel is a concrete functor type, so each gate shape compiles to
 * its own specialized loop.
 */
template <typename Kernel>
inline void
sweepPairs(std::complex<double> *amps, std::uint64_t size,
           std::uint64_t bit, Kernel kernel)
{
    const auto half = static_cast<std::int64_t>(size >> 1);
    auto chunk = [amps, bit, kernel](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t g = lo; g < hi; ++g) {
            const std::uint64_t base =
                insertZeroBit(static_cast<std::uint64_t>(g), bit);
            kernel(amps[base], amps[base | bit]);
        }
    };
    if (size < kParallelAmps) {
        chunk(0, half);
        return;
    }
    parallelFor(ThreadPool::shared(), 0, half, kSweepChunks, chunk);
}

/** As sweepPairs, but visits only the set-bit amplitudes (phase-type
 *  gates touch half the state). */
template <typename Kernel>
inline void
sweepSetHalf(std::complex<double> *amps, std::uint64_t size,
             std::uint64_t bit, Kernel kernel)
{
    const auto half = static_cast<std::int64_t>(size >> 1);
    auto chunk = [amps, bit, kernel](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t g = lo; g < hi; ++g)
            kernel(amps[insertZeroBit(static_cast<std::uint64_t>(g),
                                      bit) |
                        bit]);
    };
    if (size < kParallelAmps) {
        chunk(0, half);
        return;
    }
    parallelFor(ThreadPool::shared(), 0, half, kSweepChunks, chunk);
}

} // namespace

StateVector::StateVector(std::int32_t num_qubits, std::uint64_t seed)
    : numQubits_(num_qubits), rng_(seed)
{
    LSQCA_REQUIRE(num_qubits > 0, "state vector needs at least one qubit");
    LSQCA_REQUIRE(num_qubits <= kMaxQubits,
                  "state vector capacity exceeded (max " +
                      std::to_string(kMaxQubits) + " qubits)");
    amps_.assign(std::uint64_t{1} << num_qubits, {0.0, 0.0});
    amps_[0] = {1.0, 0.0};
}

std::uint64_t
StateVector::stride(QubitId q) const
{
    LSQCA_REQUIRE(q >= 0 && q < numQubits_, "qubit out of range");
    return std::uint64_t{1} << q;
}

StateVector::Amplitude
StateVector::amplitude(std::uint64_t index) const
{
    LSQCA_REQUIRE(index < amps_.size(), "basis index out of range");
    return amps_[index];
}

double
StateVector::probability(std::uint64_t index) const
{
    return std::norm(amplitude(index));
}

double
StateVector::probabilityOne(QubitId q) const
{
    // Visit only the set-bit half of the space: compacted index g maps
    // to the full index with the qubit bit forced to 1. Half the
    // iterations of the old full scan, and no per-index branch.
    const std::uint64_t bit = stride(q);
    const auto half = static_cast<std::int64_t>(amps_.size() >> 1);
    const Amplitude *amps = amps_.data();
    auto chunk = [amps, bit](std::int64_t lo, std::int64_t hi) {
        double p = 0.0;
        for (std::int64_t g = lo; g < hi; ++g)
            p += std::norm(
                amps[insertZeroBit(static_cast<std::uint64_t>(g), bit) |
                     bit]);
        return p;
    };
    if (amps_.size() < kParallelAmps)
        return chunk(0, half);
    return parallelSum(ThreadPool::shared(), 0, half, kSweepChunks,
                       chunk);
}

double
StateVector::norm() const
{
    const Amplitude *amps = amps_.data();
    auto chunk = [amps](std::int64_t lo, std::int64_t hi) {
        double n = 0.0;
        for (std::int64_t i = lo; i < hi; ++i)
            n += std::norm(amps[i]);
        return n;
    };
    const auto size = static_cast<std::int64_t>(amps_.size());
    if (amps_.size() < kParallelAmps)
        return chunk(0, size);
    return parallelSum(ThreadPool::shared(), 0, size, kSweepChunks,
                       chunk);
}

double
StateVector::fidelity(const StateVector &other) const
{
    LSQCA_REQUIRE(other.amps_.size() == amps_.size(),
                  "fidelity requires equal qubit counts");
    Amplitude overlap{0.0, 0.0};
    for (std::uint64_t i = 0; i < amps_.size(); ++i)
        overlap += std::conj(other.amps_[i]) * amps_[i];
    return std::norm(overlap);
}

void
StateVector::apply1(QubitId q, const Amplitude m00, const Amplitude m01,
                    const Amplitude m10, const Amplitude m11)
{
    // Compacted index g enumerates the 2^(n-1) amplitude pairs
    // directly (the old loop walked all 2^n indices and skipped half
    // with a data-dependent branch), and the matrix shape dispatches
    // once per call to a kernel specialized for it: every gate in the
    // Clifford+T set is diagonal, anti-diagonal, or real, and the
    // general complex fallback never runs in practice.
    const std::uint64_t bit = stride(q);
    const std::uint64_t size = amps_.size();
    Amplitude *amps = amps_.data();
    constexpr Amplitude kZero{0.0, 0.0};
    constexpr Amplitude kOne{1.0, 0.0};

    if (m01 == kZero && m10 == kZero) {
        if (m00 == kOne) {
            // Phase-type (Z/S/T/...): only the set half changes.
            sweepSetHalf(amps, size, bit,
                         [m11](Amplitude &a) { a = cmul(m11, a); });
        } else {
            sweepPairs(amps, size, bit,
                       [m00, m11](Amplitude &a0, Amplitude &a1) {
                           a0 = cmul(m00, a0);
                           a1 = cmul(m11, a1);
                       });
        }
        return;
    }
    if (m00 == kZero && m11 == kZero) {
        if (m01 == kOne && m10 == kOne) {
            // X: a pure swap, no arithmetic.
            sweepPairs(amps, size, bit,
                       [](Amplitude &a0, Amplitude &a1) {
                           std::swap(a0, a1);
                       });
        } else {
            sweepPairs(amps, size, bit,
                       [m01, m10](Amplitude &a0, Amplitude &a1) {
                           const Amplitude t = cmul(m01, a1);
                           a1 = cmul(m10, a0);
                           a0 = t;
                       });
        }
        return;
    }
    if (m00.imag() == 0.0 && m01.imag() == 0.0 && m10.imag() == 0.0 &&
        m11.imag() == 0.0) {
        // Real dense matrix (H): 8 real multiplies per pair.
        const double r00 = m00.real(), r01 = m01.real();
        const double r10 = m10.real(), r11 = m11.real();
        sweepPairs(amps, size, bit,
                   [r00, r01, r10, r11](Amplitude &a0, Amplitude &a1) {
                       const Amplitude b0{
                           r00 * a0.real() + r01 * a1.real(),
                           r00 * a0.imag() + r01 * a1.imag()};
                       const Amplitude b1{
                           r10 * a0.real() + r11 * a1.real(),
                           r10 * a0.imag() + r11 * a1.imag()};
                       a0 = b0;
                       a1 = b1;
                   });
        return;
    }
    sweepPairs(amps, size, bit,
               [m00, m01, m10, m11](Amplitude &a0, Amplitude &a1) {
                   const Amplitude b0 = cmul(m00, a0) + cmul(m01, a1);
                   const Amplitude b1 = cmul(m10, a0) + cmul(m11, a1);
                   a0 = b0;
                   a1 = b1;
               });
}

void
StateVector::applyX(QubitId q)
{
    apply1(q, 0, 1, 1, 0);
}

void
StateVector::applyY(QubitId q)
{
    apply1(q, 0, -kI, kI, 0);
}

void
StateVector::applyZ(QubitId q)
{
    apply1(q, 1, 0, 0, -1);
}

void
StateVector::applyH(QubitId q)
{
    const double r = 1.0 / std::numbers::sqrt2;
    apply1(q, r, r, r, -r);
}

void
StateVector::applyS(QubitId q)
{
    apply1(q, 1, 0, 0, kI);
}

void
StateVector::applySdg(QubitId q)
{
    apply1(q, 1, 0, 0, -kI);
}

void
StateVector::applyT(QubitId q)
{
    apply1(q, 1, 0, 0, std::polar(1.0, std::numbers::pi / 4));
}

void
StateVector::applyTdg(QubitId q)
{
    apply1(q, 1, 0, 0, std::polar(1.0, -std::numbers::pi / 4));
}

void
StateVector::applyCX(QubitId control, QubitId target)
{
    const std::uint64_t cbit = stride(control);
    const std::uint64_t tbit = stride(target);
    LSQCA_REQUIRE(control != target, "cx operands must differ");
    // Enumerate only the control=1, target=0 quarter of the space.
    std::uint64_t lo = cbit, hi = tbit;
    sortBits2(lo, hi);
    const auto quarter = static_cast<std::int64_t>(amps_.size() >> 2);
    Amplitude *amps = amps_.data();
    auto chunk = [amps, lo, hi, cbit, tbit](std::int64_t a,
                                            std::int64_t b) {
        for (std::int64_t g = a; g < b; ++g) {
            const std::uint64_t i =
                insertZeroBits2(static_cast<std::uint64_t>(g), lo, hi) |
                cbit;
            std::swap(amps[i], amps[i | tbit]);
        }
    };
    if (amps_.size() < kParallelAmps) {
        chunk(0, quarter);
        return;
    }
    parallelFor(ThreadPool::shared(), 0, quarter, kSweepChunks, chunk);
}

void
StateVector::applyCZ(QubitId a, QubitId b)
{
    const std::uint64_t abit = stride(a);
    const std::uint64_t bbit = stride(b);
    LSQCA_REQUIRE(a != b, "cz operands must differ");
    std::uint64_t lo = abit, hi = bbit;
    sortBits2(lo, hi);
    const auto quarter = static_cast<std::int64_t>(amps_.size() >> 2);
    Amplitude *amps = amps_.data();
    auto chunk = [amps, lo, hi, abit, bbit](std::int64_t from,
                                            std::int64_t to) {
        for (std::int64_t g = from; g < to; ++g) {
            const std::uint64_t i =
                insertZeroBits2(static_cast<std::uint64_t>(g), lo, hi) |
                abit | bbit;
            amps[i] = -amps[i];
        }
    };
    if (amps_.size() < kParallelAmps) {
        chunk(0, quarter);
        return;
    }
    parallelFor(ThreadPool::shared(), 0, quarter, kSweepChunks, chunk);
}

void
StateVector::applySwap(QubitId a, QubitId b)
{
    const std::uint64_t abit = stride(a);
    const std::uint64_t bbit = stride(b);
    LSQCA_REQUIRE(a != b, "swap operands must differ");
    std::uint64_t lo = abit, hi = bbit;
    sortBits2(lo, hi);
    const auto quarter = static_cast<std::int64_t>(amps_.size() >> 2);
    Amplitude *amps = amps_.data();
    auto chunk = [amps, lo, hi, abit, bbit](std::int64_t from,
                                            std::int64_t to) {
        for (std::int64_t g = from; g < to; ++g) {
            const std::uint64_t i =
                insertZeroBits2(static_cast<std::uint64_t>(g), lo, hi) |
                abit;
            std::swap(amps[i], amps[(i & ~abit) | bbit]);
        }
    };
    if (amps_.size() < kParallelAmps) {
        chunk(0, quarter);
        return;
    }
    parallelFor(ThreadPool::shared(), 0, quarter, kSweepChunks, chunk);
}

void
StateVector::applyCCX(QubitId c0, QubitId c1, QubitId target)
{
    const std::uint64_t b0 = stride(c0);
    const std::uint64_t b1 = stride(c1);
    const std::uint64_t tbit = stride(target);
    LSQCA_REQUIRE(c0 != c1 && c0 != target && c1 != target,
                  "ccx operands must differ");
    // Enumerate only the c0=1, c1=1, target=0 eighth of the space: the
    // compacted index expands over the three operand bits (ascending),
    // then the control bits are forced on.
    std::uint64_t bits[3] = {b0, b1, tbit};
    std::sort(bits, bits + 3);
    const auto eighth = static_cast<std::int64_t>(amps_.size() >> 3);
    Amplitude *amps = amps_.data();
    const std::uint64_t lo = bits[0], mid = bits[1], hi = bits[2];
    auto chunk = [amps, lo, mid, hi, b0, b1, tbit](std::int64_t from,
                                                   std::int64_t to) {
        for (std::int64_t g = from; g < to; ++g) {
            const std::uint64_t i =
                insertZeroBit(
                    insertZeroBits2(static_cast<std::uint64_t>(g), lo,
                                    mid),
                    hi) |
                b0 | b1;
            std::swap(amps[i], amps[i | tbit]);
        }
    };
    if (amps_.size() < kParallelAmps) {
        chunk(0, eighth);
        return;
    }
    parallelFor(ThreadPool::shared(), 0, eighth, kSweepChunks, chunk);
}

bool
StateVector::measureZ(QubitId q)
{
    const double p1 = probabilityOne(q);
    const bool outcome = rng_.chance(p1);
    const std::uint64_t bit = stride(q);
    const double keep = outcome ? p1 : 1.0 - p1;
    LSQCA_ASSERT(keep > 1e-12, "measurement of an impossible outcome");
    const double scale = 1.0 / std::sqrt(keep);
    // Collapse without a per-index branch: for each amplitude pair, the
    // kept side scales and the other zeroes; which is which is decided
    // once from the outcome.
    const std::uint64_t keepSide = outcome ? bit : 0;
    const std::uint64_t dropSide = outcome ? 0 : bit;
    const auto half = static_cast<std::int64_t>(amps_.size() >> 1);
    Amplitude *amps = amps_.data();
    auto chunk = [amps, bit, keepSide, dropSide,
                  scale](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t g = lo; g < hi; ++g) {
            const std::uint64_t base =
                insertZeroBit(static_cast<std::uint64_t>(g), bit);
            amps[base | keepSide] *= scale;
            amps[base | dropSide] = {0.0, 0.0};
        }
    };
    if (amps_.size() < kParallelAmps) {
        chunk(0, half);
    } else {
        parallelFor(ThreadPool::shared(), 0, half, kSweepChunks, chunk);
    }
    return outcome;
}

bool
StateVector::measureX(QubitId q)
{
    applyH(q);
    const bool outcome = measureZ(q);
    applyH(q);
    return outcome;
}

void
StateVector::resetZ(QubitId q)
{
    if (measureZ(q))
        applyX(q);
}

void
StateVector::resetX(QubitId q)
{
    resetZ(q);
    applyH(q);
}

void
StateVector::applyGate(const Gate &gate, std::vector<std::uint8_t> &bits)
{
    if (gate.condBit != kNoBit) {
        LSQCA_REQUIRE(static_cast<std::size_t>(gate.condBit) < bits.size(),
                      "condition bit not yet written");
        if (!bits[static_cast<std::size_t>(gate.condBit)])
            return;
    }
    const QubitId q0 = gate.qubits[0];
    const QubitId q1 = gate.qubits[1];
    const QubitId q2 = gate.qubits[2];
    switch (gate.kind) {
      case GateKind::X: applyX(q0); break;
      case GateKind::Y: applyY(q0); break;
      case GateKind::Z: applyZ(q0); break;
      case GateKind::H: applyH(q0); break;
      case GateKind::S: applyS(q0); break;
      case GateKind::Sdg: applySdg(q0); break;
      case GateKind::T: applyT(q0); break;
      case GateKind::Tdg: applyTdg(q0); break;
      case GateKind::CX: applyCX(q0, q1); break;
      case GateKind::CZ: applyCZ(q0, q1); break;
      case GateKind::Swap: applySwap(q0, q1); break;
      case GateKind::CCX: applyCCX(q0, q1, q2); break;
      // Macro semantics: AND == CCX on a |0> target; uncompute is the
      // inverse on a target holding a AND b.
      case GateKind::AndInit: applyCCX(q0, q1, q2); break;
      case GateKind::AndUncompute: applyCCX(q0, q1, q2); break;
      case GateKind::PrepZ: resetZ(q0); break;
      case GateKind::PrepX: resetX(q0); break;
      case GateKind::MeasZ: {
        const bool outcome = measureZ(q0);
        if (static_cast<std::size_t>(gate.cbit) >= bits.size())
            bits.resize(static_cast<std::size_t>(gate.cbit) + 1, 0);
        bits[static_cast<std::size_t>(gate.cbit)] = outcome ? 1 : 0;
        break;
      }
      case GateKind::MeasX: {
        const bool outcome = measureX(q0);
        if (static_cast<std::size_t>(gate.cbit) >= bits.size())
            bits.resize(static_cast<std::size_t>(gate.cbit) + 1, 0);
        bits[static_cast<std::size_t>(gate.cbit)] = outcome ? 1 : 0;
        break;
      }
    }
}

StateVectorRun
runStateVector(const Circuit &circuit,
               const std::vector<QubitId> &initial_ones, std::uint64_t seed)
{
    StateVectorRun run{StateVector(circuit.numQubits(), seed), {}};
    run.bits.assign(static_cast<std::size_t>(circuit.numClassicalBits()),
                    0);
    for (QubitId q : initial_ones)
        run.state.applyX(q);
    for (const auto &g : circuit.gates())
        run.state.applyGate(g, run.bits);
    return run;
}

std::vector<bool>
runClassical(const Circuit &circuit, const std::vector<QubitId> &initial_ones,
             const std::vector<QubitId> &outputs, std::uint64_t seed)
{
    auto run = runStateVector(circuit, initial_ones, seed);
    std::vector<bool> result;
    result.reserve(outputs.size());
    for (QubitId q : outputs)
        result.push_back(run.state.measureZ(q));
    return result;
}

} // namespace lsqca
