#include "circuit/lowering.h"

#include "common/error.h"

namespace lsqca {
namespace {

/** Emit the canonical 7-T Toffoli network onto @p out. */
void
emitCcx7T(Circuit &out, QubitId a, QubitId b, QubitId c)
{
    out.h(c);
    out.cx(b, c);
    out.tdg(c);
    out.cx(a, c);
    out.t(c);
    out.cx(b, c);
    out.tdg(c);
    out.cx(a, c);
    out.t(b);
    out.t(c);
    out.h(c);
    out.cx(a, b);
    out.t(a);
    out.tdg(b);
    out.cx(a, b);
}

/**
 * Emit the 4-T temporary-AND gadget: |a,b,0> -> |a,b,a AND b>.
 *
 * The target is re-prepared in |+>, accumulates the controlled phase via
 * four T/Tdg interleaved with CX from the controls, and H+S converts the
 * phase kickback into a computational AND with no residual phase (see
 * tests/circuit/lowering_test.cpp for the exact-state check).
 */
void
emitAnd4T(Circuit &out, QubitId a, QubitId b, QubitId t)
{
    out.prepX(t);
    out.cx(b, t);
    out.tdg(t);
    out.cx(a, t);
    out.t(t);
    out.cx(b, t);
    out.tdg(t);
    out.cx(a, t);
    out.t(t);
    out.h(t);
    out.s(t);
}

/** Emit the measurement-based AND uncompute: MX + conditional CZ. */
void
emitUnAnd(Circuit &out, QubitId a, QubitId b, QubitId t)
{
    const ClassicalBit outcome = out.measX(t);
    out.czConditioned(a, b, outcome);
    // Leave the ancilla in a fresh |0> for reuse.
    out.prepZ(t);
}

} // namespace

Circuit
lowerToCliffordT(const Circuit &circuit, ToffoliStyle style)
{
    Circuit out;
    for (const auto &r : circuit.registers())
        out.addRegister(r.name, r.size);

    // Classical bits of the source circuit are re-created up front so that
    // source cbit indices stay valid; gadget-internal bits follow after.
    for (std::int32_t i = 0; i < circuit.numClassicalBits(); ++i)
        out.newBit();

    QubitId ccx_anc = kNoQubit;
    auto ensureAncilla = [&]() {
        if (ccx_anc == kNoQubit)
            ccx_anc = out.addRegister("ccx_anc", 1);
        return ccx_anc;
    };

    for (const auto &g : circuit.gates()) {
        switch (g.kind) {
          case GateKind::Swap:
            LSQCA_REQUIRE(g.condBit == kNoBit,
                          "conditioned swap is not supported");
            out.cx(g.qubits[0], g.qubits[1]);
            out.cx(g.qubits[1], g.qubits[0]);
            out.cx(g.qubits[0], g.qubits[1]);
            break;
          case GateKind::CCX: {
            LSQCA_REQUIRE(g.condBit == kNoBit,
                          "conditioned ccx is not supported");
            if (style == ToffoliStyle::Textbook7T) {
                emitCcx7T(out, g.qubits[0], g.qubits[1], g.qubits[2]);
            } else {
                const QubitId m = ensureAncilla();
                emitAnd4T(out, g.qubits[0], g.qubits[1], m);
                out.cx(m, g.qubits[2]);
                emitUnAnd(out, g.qubits[0], g.qubits[1], m);
            }
            break;
          }
          case GateKind::AndInit:
            // Explicit ANDs always use the 4-T gadget (no ancilla cost).
            LSQCA_REQUIRE(g.condBit == kNoBit,
                          "conditioned and is not supported");
            emitAnd4T(out, g.qubits[0], g.qubits[1], g.qubits[2]);
            break;
          case GateKind::AndUncompute:
            LSQCA_REQUIRE(g.condBit == kNoBit,
                          "conditioned unand is not supported");
            emitUnAnd(out, g.qubits[0], g.qubits[1], g.qubits[2]);
            break;
          default:
            out.append(g);
            break;
        }
    }

    for (const auto &g : out.gates())
        LSQCA_ASSERT(isCliffordTGate(g.kind),
                     "lowering left a non-Clifford+T gate behind");
    return out;
}

} // namespace lsqca
