#ifndef LSQCA_CIRCUIT_LOWERING_H
#define LSQCA_CIRCUIT_LOWERING_H

/**
 * @file
 * Lowering from the macro gate set (CCX, AndInit/AndUncompute) to the
 * Clifford+T set the LSQCA translator consumes (Sec. VI-A: "each benchmark
 * program is decomposed into Clifford operations, T gates, and single-qubit
 * Pauli measurements").
 */

#include "circuit/circuit.h"

namespace lsqca {

/**
 * How *bare* CCX gates are decomposed. Explicit AndInit/AndUncompute
 * macros always lower to the 4-T temporary-AND gadget in place (they are
 * the generator's deliberate choice and add no ancilla), matching the
 * paper's note that SELECT Toffolis decompose into fewer T gates.
 */
enum class ToffoliStyle
{
    /** Canonical 7-T, ancilla-free CCX network (default: preserves the
     *  paper's register-file sizes exactly). */
    Textbook7T,
    /** 4-T temporary-AND gadget via one appended, reused ancilla. */
    TemporaryAnd4T,
};

/** True when @p kind may appear in a lowered (Clifford+T) circuit. */
constexpr bool
isCliffordTGate(GateKind kind)
{
    switch (kind) {
      case GateKind::X: case GateKind::Y: case GateKind::Z:
      case GateKind::H: case GateKind::S: case GateKind::Sdg:
      case GateKind::CX: case GateKind::CZ:
      case GateKind::T: case GateKind::Tdg:
      case GateKind::PrepZ: case GateKind::PrepX:
      case GateKind::MeasZ: case GateKind::MeasX:
        return true;
      case GateKind::Swap: case GateKind::CCX:
      case GateKind::AndInit: case GateKind::AndUncompute:
        return false;
    }
    return false;
}

/**
 * Lower @p circuit to the Clifford+T gate set.
 *
 * Swap becomes three CX. Bare CCX follows @p style. AndInit lowers to the
 * 4-T gadget (four T/Tdg on the target, four CX, H, S); AndUncompute
 * lowers to MX plus a classically-conditioned CZ. Registers are
 * preserved; in TemporaryAnd4T style one extra "ccx_anc" register is
 * appended when the input contains bare CCX gates.
 *
 * @return a circuit for which every gate satisfies isCliffordTGate().
 */
Circuit lowerToCliffordT(const Circuit &circuit,
                         ToffoliStyle style = ToffoliStyle::Textbook7T);

} // namespace lsqca

#endif // LSQCA_CIRCUIT_LOWERING_H
