#ifndef LSQCA_CIRCUIT_STATEVECTOR_H
#define LSQCA_CIRCUIT_STATEVECTOR_H

/**
 * @file
 * Dense state-vector simulator for functional verification.
 *
 * This is the repository's semantic ground truth: benchmark generators and
 * the measurement-based gadgets (4-T AND, T teleportation) are validated
 * by executing small instances exactly. It supports the full IR gate set,
 * Pauli measurements with collapse, and classically-conditioned gates.
 * Capacity is bounded (default 22 qubits) — it is a test oracle, not part
 * of the architecture model.
 */

#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"

namespace lsqca {

/** Dense 2^n-amplitude quantum state with gate application. */
class StateVector
{
  public:
    using Amplitude = std::complex<double>;

    /** Maximum supported qubit count (memory guard; 24 qubits = 256 MiB
     *  of amplitudes — enough for the SELECT control-copy checks). */
    static constexpr int kMaxQubits = 24;

    /** Initialize |0...0>. @pre 0 < num_qubits <= kMaxQubits */
    explicit StateVector(std::int32_t num_qubits,
                         std::uint64_t seed = 0x5eed'0001);

    std::int32_t numQubits() const { return numQubits_; }

    /** Amplitude of computational basis state @p index. */
    Amplitude amplitude(std::uint64_t index) const;

    /** Probability of measuring all qubits as basis state @p index. */
    double probability(std::uint64_t index) const;

    /** Probability that qubit @p q measures 1 in the Z basis. */
    double probabilityOne(QubitId q) const;

    /** Squared norm (should stay 1 within numerical error). */
    double norm() const;

    /**
     * Inner-product fidelity |<other|this>|^2 — used by tests to compare
     * a lowered circuit against its macro-level reference.
     */
    double fidelity(const StateVector &other) const;

    // ---- gate application --------------------------------------------
    void applyX(QubitId q);
    void applyY(QubitId q);
    void applyZ(QubitId q);
    void applyH(QubitId q);
    void applyS(QubitId q);
    void applySdg(QubitId q);
    void applyT(QubitId q);
    void applyTdg(QubitId q);
    void applyCX(QubitId control, QubitId target);
    void applyCZ(QubitId a, QubitId b);
    void applySwap(QubitId a, QubitId b);
    void applyCCX(QubitId c0, QubitId c1, QubitId target);

    /** Measure in Z basis; collapses the state. @return outcome bit. */
    bool measureZ(QubitId q);

    /** Measure in X basis; collapses the state. @return outcome bit. */
    bool measureX(QubitId q);

    /** Reset qubit to |0> (measure + conditional flip). */
    void resetZ(QubitId q);

    /** Reset qubit to |+>. */
    void resetX(QubitId q);

    /**
     * Execute one IR gate, honoring classical condition bits and writing
     * measurement outcomes into @p bits (resized as needed).
     */
    void applyGate(const Gate &gate, std::vector<std::uint8_t> &bits);

  private:
    void apply1(QubitId q, const Amplitude m00, const Amplitude m01,
                const Amplitude m10, const Amplitude m11);
    std::uint64_t stride(QubitId q) const;

    std::int32_t numQubits_;
    std::vector<Amplitude> amps_;
    Rng rng_;
};

/** Result of running a circuit through the state-vector oracle. */
struct StateVectorRun
{
    StateVector state;
    std::vector<std::uint8_t> bits; ///< classical store after execution
};

/**
 * Run @p circuit from |0...0> (optionally X-flipping @p initial_ones
 * first) and return the final state plus classical bits.
 */
StateVectorRun runStateVector(const Circuit &circuit,
                              const std::vector<QubitId> &initial_ones = {},
                              std::uint64_t seed = 0x5eed'0001);

/**
 * Convenience oracle for reversible/arithmetic circuits: run and then
 * Z-measure @p outputs, returning the observed bits (deterministic for
 * classical networks).
 */
std::vector<bool> runClassical(const Circuit &circuit,
                               const std::vector<QubitId> &initial_ones,
                               const std::vector<QubitId> &outputs,
                               std::uint64_t seed = 0x5eed'0001);

} // namespace lsqca

#endif // LSQCA_CIRCUIT_STATEVECTOR_H
