#ifndef LSQCA_CIRCUIT_QASM_H
#define LSQCA_CIRCUIT_QASM_H

/**
 * @file
 * OpenQASM 2.0 export for circuits — the interchange surface toward
 * external toolchains (the benchmarks originate from QASMBench, so the
 * reverse direction closes the loop for inspection and cross-checks).
 *
 * Each named register maps to a qreg; every classical bit becomes its
 * own 1-bit creg so classically-conditioned gates translate to QASM2
 * `if (c==1)` statements. Toffoli-family macros emit `ccx` (AndInit /
 * AndUncompute carry an annotation comment); lower the circuit first if
 * a strict Clifford+T stream is needed.
 */

#include <string>

#include "circuit/circuit.h"

namespace lsqca {

/** Render @p circuit as an OpenQASM 2.0 program. */
std::string toQasm(const Circuit &circuit);

} // namespace lsqca

#endif // LSQCA_CIRCUIT_QASM_H
