#include "daemon/daemon.h"

#include <algorithm>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>

#include <poll.h>
#include <unistd.h>

#include "common/error.h"
#include "common/fs.h"
#include "common/shutdown.h"

namespace lsqca::daemon {

namespace fs = std::filesystem;
using service::QueueState;
using service::Scheduler;
using service::SchedulerOptions;
using service::StateLock;
using service::TaskStatus;

std::string
Daemon::defaultSocketPath(const std::string &root)
{
    return root + "/daemon.sock";
}

std::string
Daemon::campaignDir(const std::string &root, const std::string &name)
{
    return root + "/campaigns/" + name;
}

Daemon::Daemon(DaemonOptions options) : options_(std::move(options))
{
    LSQCA_REQUIRE(!options_.root.empty(), "the daemon needs a root dir");
    LSQCA_REQUIRE(!options_.workerExe.empty(),
                  "the daemon needs a worker executable");
    LSQCA_REQUIRE(options_.workers >= 1 && options_.workers <= 1024,
                  "--workers must lie in [1, 1024]");
    socketPath_ = options_.socketPath.empty()
                      ? defaultSocketPath(options_.root)
                      : options_.socketPath;
    cacheDir_ = options_.cacheDir.empty() ? options_.root + "/cache"
                                          : options_.cacheDir;
}

Daemon::~Daemon()
{
    for (const std::unique_ptr<Peer> &peer : peers_)
        net::closeFd(peer->fd);
    peers_.clear();
    if (listenFd_ >= 0) {
        net::closeFd(listenFd_);
        listenFd_ = -1;
        ::unlink(socketPath_.c_str());
    }
}

SchedulerOptions
Daemon::schedulerOptions(
    const std::vector<std::string> &extraWorkerArgs) const
{
    SchedulerOptions sched;
    sched.cacheDir = cacheDir_;
    sched.threadsPerWorker = options_.threadsPerWorker;
    // Journal leg metadata: the pool every tenant shares, not a
    // per-campaign allotment.
    sched.workers = options_.workers;
    sched.timeoutSeconds = options_.timeoutSeconds;
    sched.stragglerFactor = options_.stragglerFactor;
    sched.minStragglerSeconds = options_.minStragglerSeconds;
    sched.workerExe = options_.workerExe;
    sched.clock = options_.clock;
    sched.extraWorkerArgs = extraWorkerArgs;
    return sched;
}

Tenant *
Daemon::findTenant(const std::string &name)
{
    for (const std::unique_ptr<Tenant> &tenant : tenants_)
        if (tenant->name == name)
            return tenant.get();
    return nullptr;
}

std::size_t
Daemon::runningTotal() const
{
    std::size_t total = 0;
    for (const std::unique_ptr<Tenant> &tenant : tenants_)
        total += tenant->scheduler->runningCount();
    return total;
}

void
Daemon::dispatchSlots()
{
    // Weighted round-robin: each free slot goes to the next campaign
    // in admission order with pending work; a visited campaign keeps
    // the cursor for `weight` dispatches before it moves on, so
    // weight 1 everywhere is strict alternation — the fairness the
    // daemon journal's dispatch sequence records.
    if (tenants_.empty())
        return;
    std::size_t running = runningTotal();
    while (running < static_cast<std::size_t>(options_.workers)) {
        Tenant *pick = nullptr;
        std::size_t pickIndex = 0;
        for (std::size_t scan = 0; scan < tenants_.size(); ++scan) {
            const std::size_t i = (cursor_ + scan) % tenants_.size();
            if (tenants_[i]->scheduler->pendingCount() > 0) {
                pick = tenants_[i].get();
                pickIndex = i;
                break;
            }
        }
        if (pick == nullptr)
            return;
        if (pickIndex != cursor_ || pick->credits <= 0)
            pick->credits = pick->weight;
        cursor_ = pickIndex;
        const std::int32_t shard = pick->scheduler->dispatchOne();
        if (shard < 0)
            return;
        ++running;
        Json fields = Json::object();
        fields.set("campaign", pick->name);
        fields.set("shard", shard);
        journal_.record("dispatch", fields);
        if (--pick->credits <= 0)
            cursor_ = (pickIndex + 1) % tenants_.size();
    }
}

void
Daemon::finishDrained()
{
    for (std::size_t i = 0; i < tenants_.size();) {
        Tenant &tenant = *tenants_[i];
        if (!tenant.scheduler->drained()) {
            ++i;
            continue;
        }
        if (tenant.scheduler->maybeEscalate()) {
            // Derived exact reruns joined the queue: give the shared
            // cache a chance first, then dispatch as usual.
            tenant.scheduler->cachePass();
            ++i;
            continue;
        }
        const service::CampaignReport report =
            tenant.scheduler->finish(false);
        Json fields = Json::object();
        fields.set("campaign", tenant.name);
        fields.set("complete", report.complete);
        fields.set("spawned", report.spawned);
        fields.set("cache_hits", report.cacheHits);
        journal_.record("campaign_done", fields);
        // Destroying the tenant releases its state-dir lock; its
        // journal file stays for watchers still catching up.
        tenants_.erase(tenants_.begin() +
                       static_cast<std::ptrdiff_t>(i));
        if (cursor_ >= tenants_.size())
            cursor_ = 0;
    }
}

void
Daemon::pumpWatchers()
{
    for (const std::unique_ptr<Peer> &peer : peers_) {
        if (!peer->watching || peer->closed)
            continue;
        std::error_code ec;
        const std::uintmax_t size =
            fs::file_size(peer->watchPath, ec);
        if (!ec && size > peer->watchOffset) {
            std::ifstream in(peer->watchPath, std::ios::binary);
            if (!in)
                continue;
            in.seekg(static_cast<std::streamoff>(peer->watchOffset));
            std::string chunk(
                static_cast<std::size_t>(size - peer->watchOffset),
                '\0');
            in.read(chunk.data(),
                    static_cast<std::streamsize>(chunk.size()));
            chunk.resize(static_cast<std::size_t>(in.gcount()));
            // Forward only whole lines: a torn tail (the journal's
            // single-write discipline makes one possible only at a
            // crash) stays buffered in the file until complete.
            const std::size_t lastNewline = chunk.rfind('\n');
            if (lastNewline != std::string::npos) {
                std::size_t from = 0;
                bool dropped = false;
                while (from <= lastNewline) {
                    const std::size_t to = chunk.find('\n', from);
                    if (!net::sendLine(
                            peer->fd,
                            chunk.substr(from, to - from))) {
                        // Peer vanished mid-watch; drop it quietly.
                        peer->closed = true;
                        dropped = true;
                        break;
                    }
                    from = to + 1;
                }
                if (!dropped)
                    peer->watchOffset += lastNewline + 1;
            }
        }
        // The stream ends when the campaign is inactive and fully
        // forwarded (the last line is its `done` event).
        if (!peer->closed && findTenant(peer->watchCampaign) == nullptr) {
            std::error_code sizeEc;
            const std::uintmax_t finalSize =
                fs::file_size(peer->watchPath, sizeEc);
            if (sizeEc || peer->watchOffset >= finalSize)
                peer->closed = true;
        }
    }
}

Json
Daemon::opPing()
{
    Json response = okResponse();
    response.set("pong", true);
    response.set("campaigns",
                 static_cast<std::int64_t>(tenants_.size()));
    response.set("workers", options_.workers);
    response.set("draining", draining_);
    return response;
}

Json
Daemon::opSubmit(const Json &body)
{
    LSQCA_REQUIRE(!draining_,
                  "daemon is draining; not admitting new campaigns");
    const Json *specField = body.find("spec");
    LSQCA_REQUIRE(specField != nullptr && specField->isString(),
                  "submit needs a string \"spec\" path");
    const std::string specPath = specField->asString();
    LSQCA_REQUIRE(!specPath.empty() && specPath.front() == '/',
                  "submit needs an absolute spec path (client and "
                  "daemon working directories differ)");

    std::int32_t shards = 0;
    if (const Json *field = body.find("shards"))
        shards = static_cast<std::int32_t>(field->asInt());
    bool noTiming = false;
    if (const Json *field = body.find("no_timing"))
        noTiming = field->asBool();
    std::int32_t weight = 1;
    if (const Json *field = body.find("weight"))
        weight = static_cast<std::int32_t>(field->asInt());
    LSQCA_REQUIRE(weight >= 1 && weight <= 64,
                  "weight must lie in [1, 64]");
    std::int32_t maxAttempts = options_.maxAttempts;
    if (const Json *field = body.find("max_attempts"))
        maxAttempts = static_cast<std::int32_t>(field->asInt());
    std::vector<std::string> extraWorkerArgs;
    if (const Json *field = body.find("extra_worker_args"))
        for (const Json &arg : field->items())
            extraWorkerArgs.push_back(arg.asString());

    // The campaign keys on the spec's name — the same state dir a
    // repeat submit of the same spec resumes.
    const std::string name = api::SweepSpec::load(specPath).name;
    LSQCA_REQUIRE(findTenant(name) == nullptr,
                  "campaign \"" + name +
                      "\" is already active in this daemon");

    auto tenant = std::make_unique<Tenant>();
    tenant->name = name;
    tenant->stateDir = campaignDir(options_.root, name);
    tenant->weight = weight;
    // Fails fast when a one-shot orchestrator (or another daemon)
    // owns the dir — the same flock the one-shot path takes.
    tenant->lock = StateLock::acquire(tenant->stateDir);

    service::CampaignAdmission admission =
        fsutil::exists(service::queuePathFor(tenant->stateDir))
            ? service::reopenCampaign(tenant->stateDir, maxAttempts)
            : service::admitCampaign(specPath, tenant->stateDir, shards,
                                     options_.workers, noTiming,
                                     maxAttempts);
    const char *leg = admission.leg;

    SchedulerOptions sched = schedulerOptions(extraWorkerArgs);
    sched.stateDir = tenant->stateDir;
    tenant->scheduler = std::make_unique<Scheduler>(
        std::move(sched), std::move(admission));
    tenant->scheduler->cachePass();

    Json fields = Json::object();
    fields.set("campaign", name);
    fields.set("leg", leg);
    fields.set("shards", tenant->scheduler->state().shardCount);
    fields.set("weight", weight);
    journal_.record("admit", fields);

    Json response = okResponse();
    response.set("campaign", name);
    response.set("state", tenant->stateDir);
    response.set("leg", leg);
    response.set("shards", tenant->scheduler->state().shardCount);
    tenants_.push_back(std::move(tenant));
    return response;
}

Json
Daemon::opStatus(const Json &body)
{
    const Json *campaignField = body.find("campaign");
    if (campaignField == nullptr)
        return opList();
    const std::string name = campaignField->asString();
    const Tenant *tenant = findTenant(name);
    Json response = okResponse();
    response.set("campaign", name);
    response.set("active", tenant != nullptr);
    QueueState state;
    if (tenant != nullptr) {
        state = tenant->scheduler->state();
        response.set("running",
                     static_cast<std::int64_t>(
                         tenant->scheduler->runningCount()));
    } else {
        const std::string queueFile = service::queuePathFor(
            campaignDir(options_.root, name));
        LSQCA_REQUIRE(fsutil::exists(queueFile),
                      "no campaign \"" + name + "\" under " +
                          options_.root);
        state = QueueState::load(queueFile);
    }
    response.set("queue", state.toJson());
    return response;
}

Json
Daemon::opList()
{
    Json campaigns = Json::array();
    const std::string campaignsRoot = options_.root + "/campaigns";
    std::vector<std::string> names;
    std::error_code ec;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(campaignsRoot, ec))
        if (entry.is_directory() &&
            fsutil::exists(
                service::queuePathFor(entry.path().string())))
            names.push_back(entry.path().filename().string());
    std::sort(names.begin(), names.end());
    for (const std::string &name : names) {
        const QueueState state = QueueState::load(
            service::queuePathFor(campaignDir(options_.root, name)));
        Json row = Json::object();
        row.set("campaign", name);
        row.set("active", findTenant(name) != nullptr);
        row.set("shards", state.shardCount);
        row.set("done", static_cast<std::int64_t>(
                            state.countWithStatus(TaskStatus::Done)));
        row.set("running",
                static_cast<std::int64_t>(
                    state.countWithStatus(TaskStatus::Running)));
        row.set("pending",
                static_cast<std::int64_t>(
                    state.countWithStatus(TaskStatus::Pending)));
        row.set("failed",
                static_cast<std::int64_t>(
                    state.countWithStatus(TaskStatus::Failed)));
        campaigns.push(std::move(row));
    }
    Json response = okResponse();
    response.set("campaigns", std::move(campaigns));
    response.set("draining", draining_);
    return response;
}

Json
Daemon::opWatch(Peer &peer, const Json &body)
{
    const Json *campaignField = body.find("campaign");
    LSQCA_REQUIRE(campaignField != nullptr && campaignField->isString(),
                  "watch needs a string \"campaign\"");
    const std::string name = campaignField->asString();
    const std::string path = service::Journal::pathFor(
        campaignDir(options_.root, name));
    LSQCA_REQUIRE(findTenant(name) != nullptr || fsutil::exists(path),
                  "no campaign \"" + name + "\" under " +
                      options_.root);
    peer.watching = true;
    peer.watchCampaign = name;
    peer.watchPath = path;
    peer.watchOffset = 0;
    Json response = okResponse();
    response.set("campaign", name);
    response.set("events", service::kEventsSchema);
    return response;
}

Json
Daemon::opCancel(const Json &body)
{
    const Json *campaignField = body.find("campaign");
    LSQCA_REQUIRE(campaignField != nullptr && campaignField->isString(),
                  "cancel needs a string \"campaign\"");
    const std::string name = campaignField->asString();
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        Tenant &tenant = *tenants_[i];
        if (tenant.name != name)
            continue;
        // Cancellation is the signal-free shutdown: workers killed,
        // queue left resumable, journal closed with shutdown + done
        // (signal 0 marks "by request", docs/DAEMON.md).
        tenant.scheduler->killWorkers();
        tenant.scheduler->recordShutdown(0);
        const service::CampaignReport report =
            tenant.scheduler->finish(true);
        Json fields = Json::object();
        fields.set("campaign", name);
        fields.set("cancelled", true);
        fields.set("spawned", report.spawned);
        journal_.record("campaign_done", fields);
        tenants_.erase(tenants_.begin() +
                       static_cast<std::ptrdiff_t>(i));
        if (cursor_ >= tenants_.size())
            cursor_ = 0;
        Json response = okResponse();
        response.set("campaign", name);
        response.set("cancelled", true);
        return response;
    }
    throw ConfigError("campaign \"" + name +
                      "\" is not active in this daemon");
}

Json
Daemon::opDrain()
{
    draining_ = true;
    Json response = okResponse();
    response.set("draining", true);
    response.set("active", static_cast<std::int64_t>(tenants_.size()));
    return response;
}

void
Daemon::handleLine(Peer &peer, const std::string &line)
{
    Json response;
    try {
        const Request request = parseRequest(line);
        if (request.op == "ping")
            response = opPing();
        else if (request.op == "submit")
            response = opSubmit(request.body);
        else if (request.op == "status")
            response = opStatus(request.body);
        else if (request.op == "list")
            response = opList();
        else if (request.op == "watch")
            response = opWatch(peer, request.body);
        else if (request.op == "cancel")
            response = opCancel(request.body);
        else
            response = opDrain();
    } catch (const std::exception &error) {
        response = errorResponse(error.what());
    }
    if (!net::sendLine(peer.fd, response.dump(0)))
        peer.closed = true;
}

void
Daemon::pollSockets(double timeoutSeconds)
{
    std::vector<pollfd> fds;
    fds.reserve(peers_.size() + 1);
    pollfd listenPoll = {};
    listenPoll.fd = listenFd_;
    listenPoll.events = POLLIN;
    fds.push_back(listenPoll);
    for (const std::unique_ptr<Peer> &peer : peers_) {
        pollfd entry = {};
        entry.fd = peer->fd;
        entry.events = POLLIN;
        fds.push_back(entry);
    }
    const int timeoutMs =
        static_cast<int>(timeoutSeconds * 1000.0 + 0.5);
    const int ready = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()),
                             timeoutMs);
    if (ready <= 0)
        return;

    if ((fds[0].revents & POLLIN) != 0) {
        for (;;) {
            const int fd = net::acceptClient(listenFd_);
            if (fd < 0)
                break;
            net::setNonBlocking(fd);
            peers_.push_back(std::make_unique<Peer>(fd));
        }
    }

    for (std::size_t p = 0; p < peers_.size() && p + 1 < fds.size();
         ++p) {
        Peer &peer = *peers_[p];
        if ((fds[p + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
            continue;
        for (;;) {
            std::string line;
            const net::LineReader::Status status =
                peer.reader.poll(line);
            if (status == net::LineReader::Status::Line) {
                if (peer.watching)
                    // Watchers are write-only from our side; drain
                    // and ignore anything else they send.
                    continue;
                handleLine(peer, line);
                continue;
            }
            if (status == net::LineReader::Status::Overflow) {
                // The line boundary is lost; the connection cannot
                // recover.
                net::sendLine(peer.fd,
                              errorResponse(
                                  "frame exceeds " +
                                  std::to_string(net::kMaxLineBytes) +
                                  " bytes")
                                  .dump(0));
                peer.closed = true;
                break;
            }
            if (status == net::LineReader::Status::Eof)
                peer.closed = true;
            break;
        }
    }
}

void
Daemon::shutdownAll(int signal)
{
    for (const std::unique_ptr<Tenant> &tenant : tenants_) {
        tenant->scheduler->killWorkers();
        tenant->scheduler->recordShutdown(signal);
        tenant->scheduler->finish(true);
    }
    tenants_.clear();
    Json fields = Json::object();
    fields.set("signal", signal);
    journal_.record("shutdown", fields);
}

int
Daemon::run()
{
    if (options_.handleSignals)
        shutdown::install();
    fsutil::makeDirs(options_.root);
    fsutil::makeDirs(cacheDir_);
    fsutil::makeDirs(options_.root + "/campaigns");
    // One daemon per root: the lock also makes unlinking a stale
    // socket file safe in listenUnix.
    rootLock_ = StateLock::acquire(options_.root);
    journal_ = service::Journal::open(
        options_.root + "/daemon.events.jsonl", options_.clock);
    {
        Json fields = Json::object();
        fields.set("workers", options_.workers);
        fields.set("socket", "daemon.sock");
        journal_.record("daemon_start", fields);
    }
    listenFd_ = net::listenUnix(socketPath_);

    int exitCode = 0;
    for (;;) {
        // A real OS signal exits 128+N like the one-shot path; a
        // programmatic requestStop() (tests, embedding) exits 0.
        int signal = options_.handleSignals ? shutdown::pending() : 0;
        if (signal != 0)
            exitCode = 128 + signal;
        else if (stopRequested_.load())
            signal = SIGTERM;
        if (signal != 0) {
            shutdownAll(signal);
            break;
        }

        for (const std::unique_ptr<Tenant> &tenant : tenants_)
            tenant->scheduler->pollWorkers();
        finishDrained();
        dispatchSlots();
        pumpWatchers();

        // Dropped peers leave the set only after their last writes.
        peers_.erase(std::remove_if(
                         peers_.begin(), peers_.end(),
                         [](const std::unique_ptr<Peer> &peer) {
                             if (!peer->closed)
                                 return false;
                             net::closeFd(peer->fd);
                             return true;
                         }),
                     peers_.end());

        if (draining_ && tenants_.empty()) {
            Json fields = Json::object();
            fields.set("signal", 0);
            journal_.record("shutdown", fields);
            break;
        }

        const bool busy = runningTotal() > 0;
        pollSockets(busy ? options_.pollSeconds : 0.05);
    }

    net::closeFd(listenFd_);
    listenFd_ = -1;
    ::unlink(socketPath_.c_str());
    for (const std::unique_ptr<Peer> &peer : peers_)
        net::closeFd(peer->fd);
    peers_.clear();
    return exitCode;
}

} // namespace lsqca::daemon
