#include "daemon/client.h"

#include "common/error.h"

namespace lsqca::daemon {

Client::Client(const std::string &socketPath)
    : fd_(net::connectUnix(socketPath)), reader_(fd_)
{
}

Client::~Client()
{
    net::closeFd(fd_);
}

Json
Client::call(const Json &request)
{
    LSQCA_REQUIRE(net::sendLine(fd_, request.dump(0)),
                  "daemon connection lost while sending");
    std::string line;
    const net::LineReader::Status status = reader_.read(line);
    LSQCA_REQUIRE(status == net::LineReader::Status::Line,
                  "daemon hung up without responding");
    try {
        return Json::parse(line);
    } catch (const std::exception &error) {
        throw ConfigError(std::string("unparseable daemon response: ") +
                          error.what());
    }
}

bool
Client::readLine(std::string &line)
{
    return reader_.read(line) == net::LineReader::Status::Line;
}

} // namespace lsqca::daemon
