#ifndef LSQCA_DAEMON_DAEMON_H
#define LSQCA_DAEMON_DAEMON_H

/**
 * @file
 * The multi-tenant sweep daemon behind `lsqca serve <root>`: a
 * single-threaded poll(2) loop that listens on `<root>/daemon.sock`
 * (protocol: daemon/protocol.h), admits any number of concurrent
 * campaigns, and schedules their shard tasks across ONE global
 * worker-process pool. Each admitted campaign keeps exactly the
 * state dir a one-shot orchestrator would have used —
 * `<root>/campaigns/<name>/` with its own `queue.json`,
 * `events.jsonl`, and `metrics.json` — driven by the same
 * service/Scheduler engine, so `lsqca status|report|resume` work on
 * it unchanged and the merged artifact stays byte-identical to a
 * direct unsharded run under --no-timing.
 *
 * Scheduling is weighted round-robin across active campaigns: a
 * free worker slot goes to the next campaign in admission order with
 * pending work, each visit dispatching up to `weight` shards (weight
 * 1 everywhere = strict alternation). All campaigns share one
 * shard/job result cache under `<root>/cache`, so tenant B's sweep
 * reuses every job tenant A already computed.
 *
 * Root layout:
 *
 *     <root>/daemon.sock           control socket
 *     <root>/lock                  flock: one daemon per root
 *     <root>/daemon.events.jsonl   daemon journal (admit/dispatch/
 *                                  campaign_done/shutdown — the
 *                                  fairness record)
 *     <root>/cache/                shared result cache
 *     <root>/campaigns/<name>/     per-campaign state dirs
 *
 * Shutdown: SIGTERM/SIGINT (or a `drain` once the queues empty)
 * kills and reaps every live worker, leaves every queue.json
 * resumable (killed attempts stay marked running), appends a
 * `shutdown` event to every active campaign journal and to the
 * daemon journal, and unlinks the socket. Restarting the daemon and
 * re-submitting the same specs resumes each campaign with no
 * completed work lost.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/socket.h"
#include "daemon/protocol.h"
#include "service/journal.h"
#include "service/lock.h"
#include "service/scheduler.h"

namespace lsqca::daemon {

struct DaemonOptions
{
    /** Daemon root directory (required; created as needed). */
    std::string root;
    /** Control socket ("" = <root>/daemon.sock). */
    std::string socketPath;
    /** Shared result cache ("" = <root>/cache). */
    std::string cacheDir;
    /** Global worker-process pool shared by every campaign. */
    std::int32_t workers = 2;
    /** Worker binary (required; the CLI passes itself). */
    std::string workerExe;
    /** `--threads` per worker. */
    std::int32_t threadsPerWorker = 1;
    /** Per-attempt hard wall limit for workers. */
    double timeoutSeconds = 0.0;
    double stragglerFactor = 4.0;
    double minStragglerSeconds = 10.0;
    /** Default spawn budget per shard for admitted campaigns. */
    std::int32_t maxAttempts = 0;
    /** Poll cadence while workers run. */
    double pollSeconds = 0.02;
    /** Campaign + daemon journal clock. */
    service::JournalClock clock = service::JournalClock::Monotonic;
    /**
     * Install SIGINT/SIGTERM handlers (common/shutdown.h). The CLI
     * sets this; embedded daemons (tests, the micro kernel) leave it
     * off and stop via requestStop().
     */
    bool handleSignals = true;
};

/** One admitted campaign and its driving state. */
struct Tenant
{
    std::string name;
    std::string stateDir;
    std::int32_t weight = 1;
    /** Dispatches left in the current round-robin visit. */
    std::int32_t credits = 0;
    service::StateLock lock;
    std::unique_ptr<service::Scheduler> scheduler;
};

class Daemon
{
  public:
    explicit Daemon(DaemonOptions options);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Serve until a shutdown signal, requestStop(), or a completed
     * drain. Returns the process exit code (0 on orderly shutdown).
     * @throws ConfigError when the root is already served by a live
     * daemon or the socket cannot be created.
     */
    int run();

    /** Ask a run() on another thread to shut down (thread-safe). */
    void requestStop() { stopRequested_.store(true); }

    const std::string &socketPath() const { return socketPath_; }

    static std::string defaultSocketPath(const std::string &root);
    /** `<root>/campaigns/<name>` — a tenant's state dir. */
    static std::string campaignDir(const std::string &root,
                                   const std::string &name);

  private:
    /** One connected control client. */
    struct Peer
    {
        int fd = -1;
        net::LineReader reader;
        /** Streaming a campaign journal (no further requests). */
        bool watching = false;
        std::string watchCampaign;
        std::string watchPath;
        std::size_t watchOffset = 0;
        bool closed = false;

        explicit Peer(int descriptor)
            : fd(descriptor), reader(descriptor)
        {
        }
    };

    void pollSockets(double timeoutSeconds);
    void handleLine(Peer &peer, const std::string &line);

    service::SchedulerOptions schedulerOptions(
        const std::vector<std::string> &extraWorkerArgs) const;
    Tenant *findTenant(const std::string &name);
    std::size_t runningTotal() const;
    void dispatchSlots();
    void finishDrained();
    void pumpWatchers();
    void shutdownAll(int signal);

    Json opPing();
    Json opSubmit(const Json &body);
    Json opStatus(const Json &body);
    Json opList();
    Json opWatch(Peer &peer, const Json &body);
    Json opCancel(const Json &body);
    Json opDrain();

    DaemonOptions options_;
    std::string socketPath_;
    std::string cacheDir_;
    service::StateLock rootLock_;
    service::Journal journal_;
    int listenFd_ = -1;
    std::vector<std::unique_ptr<Peer>> peers_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
    /** Round-robin cursor into tenants_ (admission order). */
    std::size_t cursor_ = 0;
    bool draining_ = false;
    std::atomic<bool> stopRequested_{false};
};

} // namespace lsqca::daemon

#endif // LSQCA_DAEMON_DAEMON_H
