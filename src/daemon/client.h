#ifndef LSQCA_DAEMON_CLIENT_H
#define LSQCA_DAEMON_CLIENT_H

/**
 * @file
 * Client half of the daemon protocol: connect to a serving
 * `lsqca serve` socket, exchange one request frame for one response
 * frame, and (after a `watch`) read the streamed journal lines. Used
 * by the CLI's `--daemon` paths and the daemon test suite.
 */

#include <string>

#include "common/json.h"
#include "common/socket.h"

namespace lsqca::daemon {

class Client
{
  public:
    /** Connect to the daemon at @p socketPath. @throws ConfigError. */
    explicit Client(const std::string &socketPath);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Send one request frame and block for its response frame.
     * @throws ConfigError when the daemon hangs up or responds with
     * something that is not JSON. An `"ok": false` response is
     * returned, not thrown — the caller owns the error surface.
     */
    Json call(const Json &request);

    /**
     * Read one streamed line (after a watch call). Returns false on
     * end of stream.
     */
    bool readLine(std::string &line);

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    net::LineReader reader_;
};

} // namespace lsqca::daemon

#endif // LSQCA_DAEMON_CLIENT_H
