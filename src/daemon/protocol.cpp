#include "daemon/protocol.h"

#include "common/error.h"

namespace lsqca::daemon {
namespace {

constexpr const char *kOps[] = {"ping", "submit", "status", "list",
                                "watch", "cancel", "drain"};

bool
knownOp(const std::string &op)
{
    for (const char *candidate : kOps)
        if (op == candidate)
            return true;
    return false;
}

} // namespace

Request
parseRequest(const std::string &line)
{
    Json body;
    try {
        body = Json::parse(line);
    } catch (const std::exception &error) {
        throw ConfigError(std::string("malformed frame (not JSON): ") +
                          error.what());
    }
    LSQCA_REQUIRE(body.isObject(),
                  "malformed frame: expected a JSON object");
    const Json *op = body.find("op");
    LSQCA_REQUIRE(op != nullptr && op->isString(),
                  "malformed frame: missing string \"op\"");
    LSQCA_REQUIRE(knownOp(op->asString()),
                  "unknown op \"" + op->asString() +
                      "\" (lsqca-daemon-v1 speaks ping|submit|status|"
                      "list|watch|cancel|drain)");
    const Json *proto = body.find("proto");
    if (proto != nullptr)
        LSQCA_REQUIRE(proto->isString() &&
                          proto->asString() == kProtocol,
                      "protocol mismatch: this daemon speaks " +
                          std::string(kProtocol));
    Request request;
    request.op = op->asString();
    request.body = std::move(body);
    return request;
}

Json
okResponse()
{
    Json response = Json::object();
    response.set("ok", true);
    response.set("proto", kProtocol);
    return response;
}

Json
errorResponse(const std::string &reason)
{
    Json response = Json::object();
    response.set("ok", false);
    response.set("proto", kProtocol);
    response.set("error", reason);
    return response;
}

} // namespace lsqca::daemon
