#ifndef LSQCA_DAEMON_PROTOCOL_H
#define LSQCA_DAEMON_PROTOCOL_H

/**
 * @file
 * The `lsqca-daemon-v1` control protocol (docs/DAEMON.md): one JSON
 * object per newline-terminated frame, one response frame per
 * request, over the daemon's Unix-domain socket. Seven operations:
 *
 *     ping | submit | status | list | watch | cancel | drain
 *
 * Every response carries `"ok"`; failures carry `"error"` with a
 * human-readable reason. `watch` is the one streaming exception: its
 * `ok` response is followed by raw `lsqca-events-v1` journal lines,
 * verbatim, until the campaign's journal is fully forwarded and the
 * campaign is no longer active — the stream IS the campaign journal,
 * so anything that validates events.jsonl validates a watch.
 *
 * Framing errors are protocol-level, not transport-level: a frame
 * that is not a JSON object, lacks `op`, or names an unknown op gets
 * an error response and the connection stays usable; only an
 * oversized frame (net::kMaxLineBytes) costs the peer its
 * connection, since the line boundary itself is lost.
 */

#include <string>

#include "common/json.h"

namespace lsqca::daemon {

/** Protocol identifier: requests may assert it, responses carry it. */
inline constexpr const char *kProtocol = "lsqca-daemon-v1";

/** A parsed, op-validated request frame. */
struct Request
{
    /** One of ping|submit|status|list|watch|cancel|drain. */
    std::string op;
    /** The full frame (per-op fields are read from here). */
    Json body;
};

/**
 * Parse and validate one request line: must be a JSON object with a
 * string `op` naming a known operation; a `proto` member, when
 * present, must equal kProtocol. @throws ConfigError otherwise (the
 * daemon turns that into an error response).
 */
Request parseRequest(const std::string &line);

/** `{"ok":true,"proto":...}` — extend with op-specific fields. */
Json okResponse();

/** `{"ok":false,"proto":...,"error":reason}`. */
Json errorResponse(const std::string &reason);

} // namespace lsqca::daemon

#endif // LSQCA_DAEMON_PROTOCOL_H
