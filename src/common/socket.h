#ifndef LSQCA_COMMON_SOCKET_H
#define LSQCA_COMMON_SOCKET_H

/**
 * @file
 * Minimal Unix-domain stream sockets for the sweep daemon: listen on
 * a filesystem path, accept clients without blocking, exchange
 * newline-delimited frames. In the spirit of common/subprocess.h,
 * only what the daemon protocol needs — no address families beyond
 * AF_UNIX, no timeouts beyond poll(2) readiness — so `lsqca serve`
 * stays a single-threaded poll loop that is easy to reason about.
 *
 * Frame discipline: one protocol message is one `\n`-terminated line
 * (docs/DAEMON.md). `LineReader` buffers partial reads per client and
 * enforces `kMaxLineBytes` so one hostile or broken peer cannot grow
 * a frame without bound; `sendLine` writes with MSG_NOSIGNAL so a
 * vanished peer surfaces as `false`, never as SIGPIPE.
 */

#include <cstddef>
#include <string>

namespace lsqca::net {

/** Longest accepted protocol line, terminator included (1 MiB). */
inline constexpr std::size_t kMaxLineBytes = 1 << 20;

/**
 * Create, bind, and listen on a Unix-domain stream socket at @p path
 * (an existing socket file is unlinked first — the daemon's root
 * lockfile guarantees no live owner). The returned descriptor is
 * non-blocking and close-on-exec. @throws ConfigError on a path too
 * long for sockaddr_un or any socket/bind/listen failure.
 */
int listenUnix(const std::string &path, int backlog = 16);

/**
 * Connect to the daemon at @p path. The returned descriptor is
 * blocking (clients wait for their response) and close-on-exec.
 * @throws ConfigError when the socket cannot be reached.
 */
int connectUnix(const std::string &path);

/**
 * Accept one pending client from a non-blocking listen descriptor:
 * the new descriptor (close-on-exec, still blocking), or -1 when no
 * connection is pending. @throws ConfigError on real accept errors.
 */
int acceptClient(int listenFd);

/** O_NONBLOCK (daemon-side client descriptors). */
void setNonBlocking(int fd);

/** close(2), EINTR-safe, tolerant of fd < 0. */
void closeFd(int fd);

/**
 * Write @p line plus a trailing newline, whole, with MSG_NOSIGNAL.
 * Returns false when the peer is gone (EPIPE/ECONNRESET) or any
 * write fails — the caller drops the connection.
 */
bool sendLine(int fd, const std::string &line);

/** Block until @p fd is readable or @p timeoutSeconds passes. */
bool waitReadable(int fd, double timeoutSeconds);

/**
 * Per-connection line assembler over a stream descriptor. Partial
 * frames accumulate in an internal buffer across reads; a frame that
 * exceeds @p maxLine bytes trips the sticky Overflow state (the
 * protocol's oversized-line guard).
 */
class LineReader
{
  public:
    enum class Status
    {
        /** A complete line was extracted (terminator stripped). */
        Line,
        /** No complete line buffered and the descriptor has no data. */
        NoData,
        /** Peer closed; no complete line remains. */
        Eof,
        /** A frame outgrew maxLine — protocol violation, drop peer. */
        Overflow,
    };

    explicit LineReader(int fd, std::size_t maxLine = kMaxLineBytes)
        : fd_(fd), maxLine_(maxLine)
    {
    }

    /**
     * Non-blocking pump for the daemon loop: drain whatever the
     * descriptor has (requires O_NONBLOCK), then extract the next
     * buffered line. Call until it stops returning Line.
     */
    Status poll(std::string &line);

    /** Blocking read for clients: wait for a full line or EOF. */
    Status read(std::string &line);

  private:
    Status extract(std::string &line);
    /** One read(2) sweep into the buffer; false when nothing came. */
    bool fill(bool blocking);

    int fd_ = -1;
    std::size_t maxLine_ = kMaxLineBytes;
    std::string buffer_;
    bool eof_ = false;
    bool overflow_ = false;
};

} // namespace lsqca::net

#endif // LSQCA_COMMON_SOCKET_H
