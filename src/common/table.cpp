#include "common/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace lsqca {
namespace {

bool
needsQuoting(const std::string &cell)
{
    return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string
csvEscape(const std::string &cell)
{
    if (!needsQuoting(cell))
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    LSQCA_REQUIRE(!headers_.empty(), "TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    LSQCA_REQUIRE(cells.size() == headers_.size(),
                  "TextTable row arity mismatch");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
TextTable::render(const std::string &title) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    if (!title.empty())
        oss << "== " << title << " ==\n";
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            oss << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emitRow(headers_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 == widths.size() ? 0 : 2);
    oss << std::string(rule, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(row);
    return oss.str();
}

std::string
TextTable::csv() const
{
    std::ostringstream oss;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << csvEscape(row[c]);
            oss << (c + 1 == row.size() ? "\n" : ",");
        }
    };
    emitRow(headers_);
    for (const auto &row : rows_)
        emitRow(row);
    return oss.str();
}

void
TextTable::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    LSQCA_REQUIRE(out.good(), "cannot open CSV output file: " + path);
    out << csv();
}

} // namespace lsqca
