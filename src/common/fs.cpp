#include "common/fs.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/error.h"

namespace lsqca::fsutil {

namespace stdfs = std::filesystem;

namespace {

std::atomic<std::uint64_t> gAtomicWrites{0};
std::atomic<std::uint64_t> gAtomicFsyncs{0};
std::atomic<std::uint64_t> gStagingCounter{0};

/**
 * After the rename, fsync the parent directory so the new name itself
 * survives a crash. Best effort: some filesystems refuse directory
 * fsync, and losing the *name* (while keeping both old and new
 * content intact) is strictly less harmful than the torn data the
 * mandatory file fsync prevents.
 */
void
syncParentDir(const stdfs::path &target)
{
    const stdfs::path parent =
        target.has_parent_path() ? target.parent_path() : stdfs::path(".");
    const int fd =
        ::open(parent.string().c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

} // namespace

bool
exists(const std::string &path)
{
    std::error_code ec;
    return stdfs::exists(stdfs::path(path), ec);
}

bool
isDirectory(const std::string &path)
{
    std::error_code ec;
    return stdfs::is_directory(stdfs::path(path), ec);
}

void
makeDirs(const std::string &path)
{
    if (path.empty())
        return;
    std::error_code ec;
    stdfs::create_directories(stdfs::path(path), ec);
    LSQCA_REQUIRE(!ec, "cannot create directory " + path + ": " +
                           ec.message());
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    LSQCA_REQUIRE(in.good(), "cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    LSQCA_REQUIRE(!in.bad(), "error while reading " + path);
    return buffer.str();
}

void
writeFileAtomic(const std::string &path, const std::string &content)
{
    const stdfs::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        stdfs::create_directories(target.parent_path(), ec);
    }
    // Temp sibling in the same directory so rename() stays atomic
    // (same filesystem). pid alone is not unique enough — two threads
    // (or two campaigns in one process) staging the same path would
    // clobber each other — so every call gets its own counter suffix.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(gStagingCounter.fetch_add(1,
                                                 std::memory_order_relaxed));
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    LSQCA_REQUIRE(fd >= 0, "cannot write " + tmp);
    std::size_t written = 0;
    while (written < content.size()) {
        const ::ssize_t n =
            ::write(fd, content.data() + written, content.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            removeFile(tmp);
            LSQCA_REQUIRE(false, "error while writing " + tmp);
        }
        written += static_cast<std::size_t>(n);
    }
    // Durability half of "atomic": the bytes must be on stable storage
    // BEFORE rename() publishes the name, or a crash shortly after the
    // rename can leave an *empty* file at the final path — exactly the
    // torn queue.json/cache entry this function exists to prevent.
    if (::fsync(fd) != 0) {
        ::close(fd);
        removeFile(tmp);
        LSQCA_REQUIRE(false, "cannot fsync " + tmp);
    }
    gAtomicFsyncs.fetch_add(1, std::memory_order_relaxed);
    if (::close(fd) != 0) {
        removeFile(tmp);
        LSQCA_REQUIRE(false, "error while writing " + tmp);
    }
    std::error_code ec;
    stdfs::rename(stdfs::path(tmp), target, ec);
    if (ec) {
        removeFile(tmp);
        LSQCA_REQUIRE(false, "cannot rename " + tmp + " -> " + path +
                                 ": " + ec.message());
    }
    syncParentDir(target);
    gAtomicWrites.fetch_add(1, std::memory_order_relaxed);
}

AtomicWriteStats
atomicWriteStats()
{
    AtomicWriteStats stats;
    stats.writes = gAtomicWrites.load(std::memory_order_relaxed);
    stats.fsyncs = gAtomicFsyncs.load(std::memory_order_relaxed);
    return stats;
}

void
copyFileAtomic(const std::string &src, const std::string &dst)
{
    writeFileAtomic(dst, readFile(src));
}

void
removeFile(const std::string &path)
{
    std::error_code ec;
    stdfs::remove(stdfs::path(path), ec);
}

std::vector<std::string>
listFiles(const std::string &dir, const std::string &prefix,
          const std::string &suffix)
{
    LSQCA_REQUIRE(isDirectory(dir), dir + " is not a directory");
    struct Entry
    {
        std::string name;
        std::string path;
    };
    std::vector<Entry> entries;
    std::error_code ec;
    for (const auto &item : stdfs::directory_iterator(dir, ec)) {
        // Non-throwing overload: an entry vanishing mid-iteration
        // (e.g. a sibling writer's staging file being renamed away) is
        // a skip, not a filesystem_error.
        std::error_code entryEc;
        if (!item.is_regular_file(entryEc) || entryEc)
            continue;
        const std::string name = item.path().filename().string();
        if (name.size() < prefix.size() + suffix.size())
            continue;
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (suffix.size() > 0 &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        entries.push_back({name, item.path().string()});
    }
    LSQCA_REQUIRE(!ec, "cannot list " + dir + ": " + ec.message());
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.name < b.name;
              });
    std::vector<std::string> paths;
    paths.reserve(entries.size());
    for (Entry &entry : entries)
        paths.push_back(std::move(entry.path));
    return paths;
}

} // namespace lsqca::fsutil
