#include "common/fs.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/error.h"

namespace lsqca::fsutil {

namespace stdfs = std::filesystem;

bool
exists(const std::string &path)
{
    std::error_code ec;
    return stdfs::exists(stdfs::path(path), ec);
}

bool
isDirectory(const std::string &path)
{
    std::error_code ec;
    return stdfs::is_directory(stdfs::path(path), ec);
}

void
makeDirs(const std::string &path)
{
    if (path.empty())
        return;
    std::error_code ec;
    stdfs::create_directories(stdfs::path(path), ec);
    LSQCA_REQUIRE(!ec, "cannot create directory " + path + ": " +
                           ec.message());
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    LSQCA_REQUIRE(in.good(), "cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    LSQCA_REQUIRE(!in.bad(), "error while reading " + path);
    return buffer.str();
}

void
writeFileAtomic(const std::string &path, const std::string &content)
{
    const stdfs::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        stdfs::create_directories(target.parent_path(), ec);
    }
    // Temp sibling in the same directory so rename() stays atomic
    // (same filesystem); the pid suffix keeps concurrent writers from
    // clobbering each other's staging file.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        LSQCA_REQUIRE(out.good(), "cannot write " + tmp);
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.flush();
        LSQCA_REQUIRE(out.good(), "error while writing " + tmp);
    }
    std::error_code ec;
    stdfs::rename(stdfs::path(tmp), target, ec);
    if (ec) {
        removeFile(tmp);
        LSQCA_REQUIRE(false, "cannot rename " + tmp + " -> " + path +
                                 ": " + ec.message());
    }
}

void
copyFileAtomic(const std::string &src, const std::string &dst)
{
    writeFileAtomic(dst, readFile(src));
}

void
removeFile(const std::string &path)
{
    std::error_code ec;
    stdfs::remove(stdfs::path(path), ec);
}

std::vector<std::string>
listFiles(const std::string &dir, const std::string &prefix,
          const std::string &suffix)
{
    LSQCA_REQUIRE(isDirectory(dir), dir + " is not a directory");
    struct Entry
    {
        std::string name;
        std::string path;
    };
    std::vector<Entry> entries;
    std::error_code ec;
    for (const auto &item : stdfs::directory_iterator(dir, ec)) {
        if (!item.is_regular_file())
            continue;
        const std::string name = item.path().filename().string();
        if (name.size() < prefix.size() + suffix.size())
            continue;
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (suffix.size() > 0 &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        entries.push_back({name, item.path().string()});
    }
    LSQCA_REQUIRE(!ec, "cannot list " + dir + ": " + ec.message());
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.name < b.name;
              });
    std::vector<std::string> paths;
    paths.reserve(entries.size());
    for (Entry &entry : entries)
        paths.push_back(std::move(entry.path));
    return paths;
}

} // namespace lsqca::fsutil
