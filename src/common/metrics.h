#ifndef LSQCA_COMMON_METRICS_H
#define LSQCA_COMMON_METRICS_H

/**
 * @file
 * A lock-cheap registry of named counters, gauges, and histograms —
 * the in-process half of the campaign observability layer
 * (docs/METRICS.md). The service orchestrator counts spawns, retries
 * by cause, cache traffic, and escalations here; the sweep thread
 * pool (when a registry is attached) accounts queue-wait, per-job
 * wall, and per-worker busy time.
 *
 * Cost model: instrument lookup (`counter("name")`) takes a mutex and
 * is meant to run once, at setup; the returned reference is stable
 * for the registry's lifetime, and every update on it is a relaxed
 * atomic — no locks, no allocation — so instruments can sit on warm
 * paths. With no registry attached (the default everywhere), the
 * instrumented code compiles to a null-pointer test and the sweep hot
 * path stays byte-identical (pinned by the micro-kernel gate).
 *
 * Snapshots (`toJson()`) render name-sorted, so two registries that
 * saw the same updates serialize byte-identically regardless of
 * registration order — the determinism the `--clock logical` tests
 * lean on.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/json.h"

namespace lsqca::metrics {

/** Monotonically increasing integer (events, bytes, cache hits). */
class Counter
{
  public:
    void add(std::int64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/** Last-write-wins level (queue depth, live workers). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Streaming summary of an observed distribution: count, sum, min,
 * max (mean derives). No buckets — the journal keeps the raw events
 * when a full distribution matters; this is the cheap always-on
 * aggregate.
 */
class Histogram
{
  public:
    void observe(double v);

    std::int64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double min() const { return min_.load(std::memory_order_relaxed); }
    double max() const { return max_.load(std::memory_order_relaxed); }
    double mean() const;

  private:
    std::atomic<std::int64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

/**
 * Named instruments, created on first use. References returned by
 * counter()/gauge()/histogram() stay valid for the registry's
 * lifetime; a name maps to one instrument kind (re-requesting it as
 * another kind throws InternalError).
 */
class Registry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Name-sorted snapshot: counters as integers, gauges as numbers,
     * histograms as {count, sum, mean, min, max} objects.
     */
    Json toJson() const;

  private:
    struct Instrument
    {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Instrument &slot(const std::string &name);

    mutable std::mutex mutex_;
    std::map<std::string, Instrument> instruments_;
};

} // namespace lsqca::metrics

#endif // LSQCA_COMMON_METRICS_H
