#include "common/socket.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"

namespace lsqca::net {
namespace {

sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un address = {};
    address.sun_family = AF_UNIX;
    LSQCA_REQUIRE(path.size() < sizeof(address.sun_path),
                  "socket path too long (" + std::to_string(path.size()) +
                      " bytes; sockaddr_un holds " +
                      std::to_string(sizeof(address.sun_path) - 1) +
                      "): " + path);
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    return address;
}

void
setCloseOnExec(int fd)
{
    const int flags = ::fcntl(fd, F_GETFD);
    if (flags >= 0)
        ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

} // namespace

int
listenUnix(const std::string &path, int backlog)
{
    const sockaddr_un address = unixAddress(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    LSQCA_REQUIRE(fd >= 0, std::string("socket() failed: ") +
                               std::strerror(errno));
    setCloseOnExec(fd);
    setNonBlocking(fd);
    // A leftover socket file from a dead daemon would make bind()
    // fail with EADDRINUSE; the caller's root lockfile is what rules
    // out a *live* owner, so unlinking here is safe.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&address),
               sizeof(address)) != 0) {
        const std::string reason = std::strerror(errno);
        closeFd(fd);
        throw ConfigError("cannot bind " + path + ": " + reason);
    }
    if (::listen(fd, backlog) != 0) {
        const std::string reason = std::strerror(errno);
        closeFd(fd);
        throw ConfigError("cannot listen on " + path + ": " + reason);
    }
    return fd;
}

int
connectUnix(const std::string &path)
{
    const sockaddr_un address = unixAddress(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    LSQCA_REQUIRE(fd >= 0, std::string("socket() failed: ") +
                               std::strerror(errno));
    setCloseOnExec(fd);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&address),
                  sizeof(address)) != 0) {
        const std::string reason = std::strerror(errno);
        closeFd(fd);
        throw ConfigError("cannot connect to daemon at " + path + ": " +
                          reason + " (is `lsqca serve` running?)");
    }
    return fd;
}

int
acceptClient(int listenFd)
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd >= 0) {
            setCloseOnExec(fd);
            return fd;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED)
            return -1;
        throw ConfigError(std::string("accept() failed: ") +
                          std::strerror(errno));
    }
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
closeFd(int fd)
{
    if (fd < 0)
        return;
    int rc;
    do {
        rc = ::close(fd);
    } while (rc != 0 && errno == EINTR);
}

bool
sendLine(int fd, const std::string &line)
{
    std::string frame = line;
    frame.push_back('\n');
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n =
            ::send(fd, frame.data() + sent, frame.size() - sent,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Daemon-side descriptors are non-blocking; give the
                // peer a bounded window to drain rather than tearing
                // the frame, then drop it as unresponsive.
                pollfd pfd = {};
                pfd.fd = fd;
                pfd.events = POLLOUT;
                if (::poll(&pfd, 1, 1000) > 0)
                    continue;
                return false;
            }
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
waitReadable(int fd, double timeoutSeconds)
{
    if (fd < 0)
        return false;
    pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int timeoutMs =
        timeoutSeconds < 0.0
            ? -1
            : static_cast<int>(timeoutSeconds * 1000.0 + 0.5);
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeoutMs);
        if (rc > 0)
            return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
        if (rc == 0)
            return false;
        if (errno != EINTR)
            return false;
    }
}

LineReader::Status
LineReader::extract(std::string &line)
{
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
        line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return Status::Line;
    }
    if (overflow_ || buffer_.size() >= maxLine_) {
        overflow_ = true;
        return Status::Overflow;
    }
    if (eof_)
        return Status::Eof;
    return Status::NoData;
}

bool
LineReader::fill(bool blocking)
{
    char chunk[4096];
    bool got = false;
    for (;;) {
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            got = true;
            if (blocking)
                return true;
            if (buffer_.size() >= maxLine_ &&
                buffer_.find('\n') == std::string::npos) {
                overflow_ = true;
                return true;
            }
            continue;
        }
        if (n == 0) {
            eof_ = true;
            return got;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return got;
        // Treat hard errors (ECONNRESET) like a closed peer.
        eof_ = true;
        return got;
    }
}

LineReader::Status
LineReader::poll(std::string &line)
{
    Status status = extract(line);
    if (status != Status::NoData)
        return status;
    fill(/*blocking=*/false);
    return extract(line);
}

LineReader::Status
LineReader::read(std::string &line)
{
    for (;;) {
        const Status status = extract(line);
        if (status != Status::NoData)
            return status;
        // A blocking descriptor parks in read(2); a non-blocking one
        // (EAGAIN with no progress) parks in poll(2) instead.
        if (!fill(/*blocking=*/true) && !eof_)
            waitReadable(fd_, -1.0);
    }
}

} // namespace lsqca::net
