#include "common/subprocess.h"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.h"

namespace lsqca::proc {

std::string
Status::describe() const
{
    if (running)
        return "running";
    if (signaled)
        return "signal " + std::to_string(signal);
    return "exit " + std::to_string(exitCode);
}

Pid
spawn(const Command &command)
{
    LSQCA_REQUIRE(!command.argv.empty(), "spawn needs an argv");
    if (!command.logPath.empty()) {
        const std::filesystem::path log(command.logPath);
        if (log.has_parent_path()) {
            std::error_code ec;
            std::filesystem::create_directories(log.parent_path(), ec);
        }
    }

    std::vector<char *> argv;
    argv.reserve(command.argv.size() + 1);
    for (const std::string &arg : command.argv)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    LSQCA_REQUIRE(pid >= 0, std::string("fork failed: ") +
                                std::strerror(errno));
    if (pid == 0) {
        // Child: capture output, then exec. Failures must not return
        // into the parent's code, so they _exit with the conventional
        // "command not found" code.
        if (!command.logPath.empty()) {
            const int fd =
                ::open(command.logPath.c_str(),
                       O_CREAT | O_WRONLY | O_APPEND, 0644);
            if (fd >= 0) {
                ::dup2(fd, STDOUT_FILENO);
                ::dup2(fd, STDERR_FILENO);
                if (fd > STDERR_FILENO)
                    ::close(fd);
            }
        }
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }
    return static_cast<Pid>(pid);
}

namespace {

Status
decode(int raw)
{
    Status status;
    if (WIFEXITED(raw)) {
        status.exited = true;
        status.exitCode = WEXITSTATUS(raw);
    } else if (WIFSIGNALED(raw)) {
        status.signaled = true;
        status.signal = WTERMSIG(raw);
    }
    return status;
}

} // namespace

Status
poll(Pid pid)
{
    int raw = 0;
    const pid_t reaped = ::waitpid(static_cast<pid_t>(pid), &raw,
                                   WNOHANG);
    if (reaped == 0) {
        Status status;
        status.running = true;
        return status;
    }
    LSQCA_REQUIRE(reaped == static_cast<pid_t>(pid),
                  std::string("waitpid failed: ") +
                      std::strerror(errno));
    return decode(raw);
}

Status
wait(Pid pid)
{
    int raw = 0;
    pid_t reaped;
    do {
        reaped = ::waitpid(static_cast<pid_t>(pid), &raw, 0);
    } while (reaped < 0 && errno == EINTR);
    LSQCA_REQUIRE(reaped == static_cast<pid_t>(pid),
                  std::string("waitpid failed: ") +
                      std::strerror(errno));
    return decode(raw);
}

void
terminate(Pid pid)
{
    ::kill(static_cast<pid_t>(pid), SIGKILL);
}

std::string
selfExecutable(const std::string &fallback)
{
    std::error_code ec;
    const auto self =
        std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec)
        return self.string();
    return fallback;
}

} // namespace lsqca::proc
