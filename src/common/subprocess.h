#ifndef LSQCA_COMMON_SUBPROCESS_H
#define LSQCA_COMMON_SUBPROCESS_H

/**
 * @file
 * Minimal POSIX child-process control for the sweep orchestrator:
 * spawn a worker with its stdout/stderr captured to a log file, poll
 * it without blocking, and kill stragglers. Only what the service
 * layer needs — no shells, no pipes, no environment surgery — so the
 * orchestrator's behavior stays easy to reason about.
 */

#include <string>
#include <vector>

namespace lsqca::proc {

/** Child process handle (the pid). */
using Pid = int;

/** One worker invocation. */
struct Command
{
    /** argv[0] is the executable path (execv, no PATH search). */
    std::vector<std::string> argv;
    /** Append stdout+stderr here ("" = inherit the parent's). */
    std::string logPath;
};

/** Outcome of poll()/wait(). */
struct Status
{
    /** Still alive (everything below is meaningless then). */
    bool running = false;
    /** Exited normally; exitCode holds the code. */
    bool exited = false;
    int exitCode = 0;
    /** Killed by a signal; signal holds which. */
    bool signaled = false;
    int signal = 0;

    bool ok() const { return exited && exitCode == 0; }

    /** "exit 3" / "signal 9" — for queue.json failure records. */
    std::string describe() const;
};

/**
 * fork + execv. The child's stdout/stderr are appended to
 * command.logPath (created along with parent directories).
 * @throws ConfigError when the fork fails or argv is empty; an
 * unexecutable binary surfaces as exit code 127 from poll()/wait().
 */
Pid spawn(const Command &command);

/** Non-blocking status check (waitpid WNOHANG). */
Status poll(Pid pid);

/** Blocking reap. */
Status wait(Pid pid);

/** SIGKILL (best effort; reap with wait() afterwards). */
void terminate(Pid pid);

/**
 * Absolute path of the running executable (/proc/self/exe), used by
 * the CLI to re-invoke itself as a worker; falls back to @p fallback
 * (argv[0]) when the proc filesystem is unavailable.
 */
std::string selfExecutable(const std::string &fallback);

} // namespace lsqca::proc

#endif // LSQCA_COMMON_SUBPROCESS_H
