#ifndef LSQCA_COMMON_SHUTDOWN_H
#define LSQCA_COMMON_SHUTDOWN_H

/**
 * @file
 * Cooperative SIGINT/SIGTERM handling for the long-running entry
 * points (`lsqca submit|resume|serve`). The handler only raises an
 * async-signal-safe flag; the orchestrator/daemon drive loops poll it
 * between dispatches and run the *orderly* path themselves — reap the
 * children, save every queue, append a journal `shutdown` event —
 * instead of dying mid-write and leaning on torn-tail repair.
 */

namespace lsqca::shutdown {

/**
 * Install SIGINT+SIGTERM handlers that record the signal in a
 * `volatile sig_atomic_t` flag (and ignore SIGPIPE, so a vanished
 * socket peer surfaces as EPIPE instead of killing the process).
 * Idempotent; no-op on repeat calls.
 */
void install();

/** The pending shutdown signal (SIGINT/SIGTERM), or 0 when none. */
int pending();

/** Reset the flag (tests; a daemon restarting its accept loop). */
void clear();

} // namespace lsqca::shutdown

#endif // LSQCA_COMMON_SHUTDOWN_H
