#ifndef LSQCA_COMMON_JSONL_H
#define LSQCA_COMMON_JSONL_H

/**
 * @file
 * JSON-Lines plumbing shared by every JSONL producer and consumer in
 * the tree: the simulation trace collector
 * (sim/collectors/jsonl_writer.h is now a thin adapter over
 * jsonl::Writer), the campaign journal (service/journal.h), and the
 * `lsqca trace` / `lsqca report --chrome-trace` exports.
 *
 *  - Writer: one compact JSON document per line on a borrowed stream,
 *    with a line count.
 *  - Export: the tmp-file + rename publish cycle for whole-file JSONL
 *    (or JSON) exports — a crash never leaves a torn file at the
 *    final path, and "-" streams to stdout. Previously copy-pasted
 *    between `lsqca trace` and the collectors.
 *  - readLines: tolerant JSONL reader — a torn final line (no
 *    trailing newline, as left by a killed writer) is dropped and
 *    flagged instead of failing the parse.
 */

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace lsqca::jsonl {

/** Streams compact JSON documents, one per line. */
class Writer
{
  public:
    /** Borrowed stream; must outlive the writer. */
    explicit Writer(std::ostream &out) : out_(&out) {}

    void
    emit(const Json &line)
    {
        *out_ << line.dump(0) << '\n';
        ++lines_;
    }

    /** Lines written so far. */
    std::int64_t lines() const { return lines_; }

  private:
    std::ostream *out_;
    std::int64_t lines_ = 0;
};

/**
 * Whole-file export target with atomic publication: bytes stream to
 * `<path>.tmp` and publish() renames them into place, so readers see
 * either nothing or the complete document. `path == "-"` streams to
 * stdout (publish() is then a no-op). A destroyed-but-unpublished
 * export removes its temp file.
 */
class Export
{
  public:
    explicit Export(const std::string &path);
    ~Export();

    Export(const Export &) = delete;
    Export &operator=(const Export &) = delete;

    std::ostream &stream();

    bool toStdout() const { return toStdout_; }

    /** Final path ("-" for stdout). */
    const std::string &path() const { return path_; }

    /** Close and rename into place. @throws ConfigError on IO errors. */
    void publish();

  private:
    std::string path_;
    std::string tmpPath_;
    std::ofstream file_;
    bool toStdout_ = false;
    bool published_ = false;
};

/** Outcome of readLines(). */
struct ReadResult
{
    std::vector<Json> lines;
    /**
     * The file ended mid-line (a writer died mid-append); the torn
     * tail is not in `lines`.
     */
    bool truncatedTail = false;
};

/**
 * Parse @p path as JSONL. Complete lines must parse (@throws
 * ConfigError naming the path and line number otherwise); an
 * unterminated final line is tolerated and reported via
 * `truncatedTail`.
 */
ReadResult readLines(const std::string &path);

} // namespace lsqca::jsonl

#endif // LSQCA_COMMON_JSONL_H
