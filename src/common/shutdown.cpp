#include "common/shutdown.h"

#include <csignal>

namespace lsqca::shutdown {
namespace {

volatile std::sig_atomic_t gSignal = 0;
bool gInstalled = false;

extern "C" void
handleShutdownSignal(int signal)
{
    gSignal = signal;
}

} // namespace

void
install()
{
    if (gInstalled)
        return;
    gInstalled = true;
    struct sigaction action = {};
    action.sa_handler = handleShutdownSignal;
    sigemptyset(&action.sa_mask);
    // No SA_RESTART: a signal must interrupt the drive loop's sleeps
    // and the daemon's poll(2) promptly, not after the next timeout.
    action.sa_flags = 0;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
    std::signal(SIGPIPE, SIG_IGN);
}

int
pending()
{
    return static_cast<int>(gSignal);
}

void
clear()
{
    gSignal = 0;
}

} // namespace lsqca::shutdown
