#ifndef LSQCA_COMMON_ERROR_H
#define LSQCA_COMMON_ERROR_H

/**
 * @file
 * Error-reporting primitives for the LSQCA library.
 *
 * Follows the gem5 fatal/panic distinction:
 *  - ConfigError (LSQCA_REQUIRE) — the caller supplied an invalid
 *    configuration or argument; recoverable by fixing the input.
 *  - InternalError (LSQCA_ASSERT) — an invariant of the library itself was
 *    violated; indicates a bug in this codebase.
 */

#include <stdexcept>
#include <string>

namespace lsqca {

/** Raised when user-supplied configuration or arguments are invalid. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &msg)
        : std::runtime_error("lsqca: config error: " + msg)
    {}
};

/** Raised when a library invariant is violated (a bug in lsqca itself). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &msg)
        : std::logic_error("lsqca: internal error: " + msg)
    {}
};

namespace detail {

/** Throw ConfigError with source location context. */
[[noreturn]] void throwConfigError(const char *file, int line,
                                   const std::string &msg);

/** Throw InternalError with source location context. */
[[noreturn]] void throwInternalError(const char *file, int line,
                                     const char *expr,
                                     const std::string &msg);

} // namespace detail
} // namespace lsqca

/**
 * Validate a user-facing precondition; throws lsqca::ConfigError on
 * failure. Use for argument/configuration validation on public APIs.
 */
#define LSQCA_REQUIRE(cond, msg)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::lsqca::detail::throwConfigError(__FILE__, __LINE__, (msg));   \
        }                                                                   \
    } while (0)

/**
 * Check an internal invariant; throws lsqca::InternalError on failure.
 * Active in all build types — simulator correctness depends on these.
 */
#define LSQCA_ASSERT(cond, msg)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::lsqca::detail::throwInternalError(__FILE__, __LINE__, #cond,  \
                                                (msg));                     \
        }                                                                   \
    } while (0)

#endif // LSQCA_COMMON_ERROR_H
