#ifndef LSQCA_COMMON_STATS_H
#define LSQCA_COMMON_STATS_H

/**
 * @file
 * Summary statistics and empirical distributions used by the trace
 * analyzer (Fig. 8) and the bench harness (GEOMEAN rows of Fig. 14).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsqca {

/**
 * Streaming summary of a sequence of doubles: count/min/max/mean/stddev.
 * Uses Welford's algorithm for numerically stable variance.
 */
class SummaryStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another summary into this one. */
    void merge(const SummaryStats &other);

    std::size_t count() const { return count_; }
    double min() const;
    double max() const;
    double mean() const;
    /** Population variance; 0 for fewer than two samples. */
    double variance() const;
    double stddev() const;
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Empirical cumulative distribution over recorded samples.
 *
 * Mirrors the reference-period CDFs of Fig. 8b/8d: samples are collected,
 * then queried at arbitrary points or exported as sorted (x, F(x)) pairs.
 */
class EmpiricalCdf
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Record many samples. */
    void add(const std::vector<double> &xs);

    std::size_t count() const { return samples_.size(); }

    /** Fraction of samples <= x. Returns 0 for an empty distribution. */
    double at(double x) const;

    /** p-quantile via nearest-rank, p in [0, 1]. @pre non-empty. */
    double quantile(double p) const;

    /**
     * Export the CDF as sorted sample points with cumulative fractions,
     * de-duplicated on x (last fraction wins), ready for plotting.
     */
    std::vector<std::pair<double, double>> curve() const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Geometric mean of positive values. @pre all values > 0 and non-empty. */
double geomean(const std::vector<double> &values);

/**
 * Integer histogram with fixed-width bins over [lo, hi); out-of-range
 * samples clamp into the first/last bin.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    std::size_t bins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const;
    /** Inclusive lower edge of bin i. */
    double binLow(std::size_t i) const;
    std::uint64_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace lsqca

#endif // LSQCA_COMMON_STATS_H
