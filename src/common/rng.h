#ifndef LSQCA_COMMON_RNG_H
#define LSQCA_COMMON_RNG_H

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A self-contained xoshiro256** implementation so simulator runs are
 * reproducible across platforms and standard-library versions (std::mt19937
 * distributions are not bit-stable across implementations).
 */

#include <cstdint>

#include "common/error.h"

namespace lsqca {

/**
 * Deterministic 64-bit PRNG (xoshiro256**), seeded via splitmix64.
 *
 * Satisfies the UniformRandomBitGenerator concept, but prefer the member
 * helpers so results stay platform-stable.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; every seed gives a distinct stream. */
    explicit Rng(std::uint64_t seed = 0x1234'5678'9abc'def0ULL)
    {
        // splitmix64 seed expansion, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    std::uint64_t
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        LSQCA_REQUIRE(bound > 0, "Rng::below requires bound > 0");
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t limit = max() - max() % bound;
        std::uint64_t draw;
        do {
            draw = (*this)();
        } while (draw >= limit);
        return draw % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        LSQCA_REQUIRE(lo <= hi, "Rng::between requires lo <= hi");
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(span == 0 ? (*this)()
                                                        : below(span));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53 high bits -> mantissa, the standard conversion.
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace lsqca

#endif // LSQCA_COMMON_RNG_H
