#ifndef LSQCA_COMMON_HASH_H
#define LSQCA_COMMON_HASH_H

/**
 * @file
 * Stable content hashing for cache keys and fingerprints.
 *
 * FNV-1a (64-bit) over a canonical byte string: fast, dependency-free,
 * and — crucially for the on-disk result cache — identical on every
 * platform and in every process, unlike std::hash. Fingerprints render
 * as 16 lowercase hex digits so they double as safe file names.
 */

#include <cstdint>
#include <string>
#include <string_view>

namespace lsqca {

inline constexpr std::uint64_t kFnv1a64Offset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ULL;

/** FNV-1a over @p data, optionally chained from a previous hash. */
inline std::uint64_t
fnv1a64(std::string_view data, std::uint64_t seed = kFnv1a64Offset)
{
    std::uint64_t hash = seed;
    for (const char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= kFnv1a64Prime;
    }
    return hash;
}

/** 16 lowercase hex digits, zero-padded. */
inline std::string
hashToHex(std::uint64_t hash)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[hash & 0xf];
        hash >>= 4;
    }
    return out;
}

/** The canonical fingerprint of a byte string (hex fnv1a64). */
inline std::string
contentFingerprint(std::string_view data)
{
    return hashToHex(fnv1a64(data));
}

/** True iff @p text looks like a contentFingerprint() result. */
inline bool
isFingerprint(std::string_view text)
{
    if (text.size() != 16)
        return false;
    for (const char c : text)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

} // namespace lsqca

#endif // LSQCA_COMMON_HASH_H
