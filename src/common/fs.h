#ifndef LSQCA_COMMON_FS_H
#define LSQCA_COMMON_FS_H

/**
 * @file
 * Filesystem helpers for the service layer: atomic writes (tmp +
 * rename, so a crashed orchestrator never leaves a half-written
 * queue.json or cache entry behind), byte-exact copies, and
 * deterministic (sorted) directory listings for `lsqca merge <dir>`.
 * All errors surface as ConfigError with the offending path.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace lsqca::fsutil {

bool exists(const std::string &path);

bool isDirectory(const std::string &path);

/** mkdir -p. @throws ConfigError on failure. */
void makeDirs(const std::string &path);

/** Whole-file read. @throws ConfigError when unreadable. */
std::string readFile(const std::string &path);

/**
 * Write @p content to @p path atomically AND durably: parent dirs are
 * created, bytes land in a sibling temp file, the file descriptor is
 * fsync()ed, and only then does rename() publish the name (followed by
 * a best-effort fsync of the parent directory). Concurrent readers see
 * either the old or the new document — never a torn one — and a crash
 * at any point cannot materialize an empty or truncated file at the
 * final path. The temp name carries a per-call unique suffix, so
 * concurrent writers of the same path (threads or campaigns sharing a
 * cache directory) never clobber each other's staging file.
 * @throws ConfigError.
 */
void writeFileAtomic(const std::string &path, const std::string &content);

/**
 * Process-wide counters for the atomic write path, for tests that
 * assert durability behaviour (each successful writeFileAtomic must
 * issue at least one data fsync before its rename).
 */
struct AtomicWriteStats
{
    std::uint64_t writes = 0; ///< successful writeFileAtomic calls
    std::uint64_t fsyncs = 0; ///< data fsyncs issued before rename
};

AtomicWriteStats atomicWriteStats();

/** Byte-exact atomic copy (readFile + writeFileAtomic). */
void copyFileAtomic(const std::string &src, const std::string &dst);

/** Best-effort unlink; absent files are not an error. */
void removeFile(const std::string &path);

/**
 * Regular files in @p dir whose names start with @p prefix and end
 * with @p suffix, as full paths sorted by file name (deterministic
 * merge order). @throws ConfigError when @p dir is not a directory.
 */
std::vector<std::string> listFiles(const std::string &dir,
                                   const std::string &prefix = "",
                                   const std::string &suffix = "");

} // namespace lsqca::fsutil

#endif // LSQCA_COMMON_FS_H
