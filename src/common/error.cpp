#include "common/error.h"

#include <sstream>

namespace lsqca {
namespace detail {

void
throwConfigError(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << msg << " [" << file << ":" << line << "]";
    throw ConfigError(oss.str());
}

void
throwInternalError(const char *file, int line, const char *expr,
                   const std::string &msg)
{
    std::ostringstream oss;
    oss << msg << " (assertion `" << expr << "` failed) [" << file << ":"
        << line << "]";
    throw InternalError(oss.str());
}

} // namespace detail
} // namespace lsqca
