#include "common/metrics.h"

#include "common/error.h"

namespace lsqca::metrics {

void
Histogram::observe(double v)
{
    // First observation seeds min/max; later ones fold in with CAS
    // loops. count_ goes last so a reader that sees count >= 1 also
    // sees a seeded min/max.
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + v,
                                       std::memory_order_relaxed)) {
    }
    if (count_.load(std::memory_order_relaxed) == 0) {
        min_.store(v, std::memory_order_relaxed);
        max_.store(v, std::memory_order_relaxed);
    } else {
        double lo = min_.load(std::memory_order_relaxed);
        while (v < lo && !min_.compare_exchange_weak(
                             lo, v, std::memory_order_relaxed)) {
        }
        double hi = max_.load(std::memory_order_relaxed);
        while (v > hi && !max_.compare_exchange_weak(
                             hi, v, std::memory_order_relaxed)) {
        }
    }
    count_.fetch_add(1, std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    const std::int64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

Registry::Instrument &
Registry::slot(const std::string &name)
{
    LSQCA_ASSERT(!name.empty(), "metric names must be non-empty");
    return instruments_[name];
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Instrument &inst = slot(name);
    LSQCA_ASSERT(!inst.gauge && !inst.histogram,
                 "metric \"" + name + "\" already registered with "
                 "another kind");
    if (!inst.counter)
        inst.counter = std::make_unique<Counter>();
    return *inst.counter;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Instrument &inst = slot(name);
    LSQCA_ASSERT(!inst.counter && !inst.histogram,
                 "metric \"" + name + "\" already registered with "
                 "another kind");
    if (!inst.gauge)
        inst.gauge = std::make_unique<Gauge>();
    return *inst.gauge;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Instrument &inst = slot(name);
    LSQCA_ASSERT(!inst.counter && !inst.gauge,
                 "metric \"" + name + "\" already registered with "
                 "another kind");
    if (!inst.histogram)
        inst.histogram = std::make_unique<Histogram>();
    return *inst.histogram;
}

Json
Registry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Json doc = Json::object();
    // std::map iterates name-sorted: snapshots are order-independent.
    for (const auto &[name, inst] : instruments_) {
        if (inst.counter) {
            doc.set(name, inst.counter->value());
        } else if (inst.gauge) {
            doc.set(name, inst.gauge->value());
        } else if (inst.histogram) {
            Json h = Json::object();
            h.set("count", inst.histogram->count());
            h.set("sum", inst.histogram->sum());
            h.set("mean", inst.histogram->mean());
            h.set("min", inst.histogram->min());
            h.set("max", inst.histogram->max());
            doc.set(name, std::move(h));
        }
    }
    return doc;
}

} // namespace lsqca::metrics
