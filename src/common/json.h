#ifndef LSQCA_COMMON_JSON_H
#define LSQCA_COMMON_JSON_H

/**
 * @file
 * Minimal ordered JSON document type for machine-readable bench output
 * (`bench/out/BENCH_<name>.json`) and declarative experiment specs
 * (the `specs/` directory). Insertion order of object keys is preserved so
 * diffs between runs stay line-stable; numbers are emitted with enough
 * precision to round-trip doubles. parse(dump(x)) == x for any x the
 * parser produced; for built documents the value round-trips but the
 * numeric kind may not (a whole-valued Double dumps as "5" and
 * reparses as Int, and non-finite doubles dump as null).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace lsqca {

/** An ordered JSON value (object, array, string, number, bool, null). */
class Json
{
  public:
    /** Null by default. */
    Json() = default;

    static Json object();
    static Json array();

    Json(const char *s);
    Json(std::string s);
    Json(double v);
    Json(std::int64_t v);
    Json(std::int32_t v);
    Json(bool v);

    /**
     * Parse a JSON document (strict RFC-8259 subset: no comments, no
     * trailing commas). @throws ConfigError with a line:column position
     * on malformed input. Integers without fraction/exponent that fit
     * an int64 parse as Int; everything else numeric parses as Double.
     */
    static Json parse(const std::string &text);

    /** parse() the contents of @p path. @throws ConfigError. */
    static Json load(const std::string &path);

    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isString() const { return kind_ == Kind::String; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isInt() const { return kind_ == Kind::Int; }
    /** Int or Double. */
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }

    /** String payload. @throws ConfigError when not a string. */
    const std::string &asString() const;
    /** Bool payload. @throws ConfigError when not a bool. */
    bool asBool() const;
    /** Integer payload; exact doubles allowed. @throws ConfigError. */
    std::int64_t asInt() const;
    /** Numeric payload widened to double. @throws ConfigError. */
    double asDouble() const;

    /** Object members in insertion order. @throws on non-objects. */
    const std::vector<std::pair<std::string, Json>> &members() const;
    /** Array items. @throws ConfigError on non-arrays. */
    const std::vector<Json> &items() const;

    /** Member lookup; nullptr when absent. @throws on non-objects. */
    const Json *find(const std::string &key) const;
    /** True when the object has @p key. @throws on non-objects. */
    bool contains(const std::string &key) const
    {
        return find(key) != nullptr;
    }
    /** Member access. @throws ConfigError when absent. */
    const Json &at(const std::string &key) const;

    /** Object member count / array length / 0 for scalars. */
    std::size_t size() const;

    /** Structural equality (key order significant for objects). */
    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const { return !(*this == other); }

    /** Set @p key on an object (insertion order preserved). */
    Json &set(const std::string &key, Json value);

    /** Append to an array. */
    Json &push(Json value);

    /** Serialized document; @p indent = 0 gives compact output. */
    std::string dump(int indent = 2) const;

    /** dump() to @p path, creating parent directories as needed. */
    void write(const std::string &path, int indent = 2) const;

  private:
    enum class Kind : std::uint8_t
    {
        Null,
        Object,
        Array,
        String,
        Double,
        Int,
        Bool,
    };

    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    std::string str_;
    double dbl_ = 0.0;
    std::int64_t int_ = 0;
    bool bool_ = false;
    std::vector<std::pair<std::string, Json>> members_;
    std::vector<Json> items_;
};

} // namespace lsqca

#endif // LSQCA_COMMON_JSON_H
