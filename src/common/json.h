#ifndef LSQCA_COMMON_JSON_H
#define LSQCA_COMMON_JSON_H

/**
 * @file
 * Minimal ordered JSON document builder for machine-readable bench
 * output (`bench/out/BENCH_*.json`). Insertion order of object keys is
 * preserved so diffs between runs stay line-stable; numbers are emitted
 * with enough precision to round-trip doubles.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace lsqca {

/** An ordered JSON value (object, array, string, number, bool, null). */
class Json
{
  public:
    /** Null by default. */
    Json() = default;

    static Json object();
    static Json array();

    Json(const char *s);
    Json(std::string s);
    Json(double v);
    Json(std::int64_t v);
    Json(std::int32_t v);
    Json(bool v);

    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Set @p key on an object (insertion order preserved). */
    Json &set(const std::string &key, Json value);

    /** Append to an array. */
    Json &push(Json value);

    /** Serialized document; @p indent = 0 gives compact output. */
    std::string dump(int indent = 2) const;

    /** dump() to @p path, creating parent directories as needed. */
    void write(const std::string &path, int indent = 2) const;

  private:
    enum class Kind : std::uint8_t
    {
        Null,
        Object,
        Array,
        String,
        Double,
        Int,
        Bool,
    };

    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    std::string str_;
    double dbl_ = 0.0;
    std::int64_t int_ = 0;
    bool bool_ = false;
    std::vector<std::pair<std::string, Json>> members_;
    std::vector<Json> items_;
};

} // namespace lsqca

#endif // LSQCA_COMMON_JSON_H
