#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace lsqca {
namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null"; // JSON has no Inf/NaN
        return;
    }
    char buf[32];
    const auto res =
        std::to_chars(buf, buf + sizeof buf, v,
                      std::chars_format::general, 17);
    out.append(buf, res.ptr);
}

} // namespace

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json::Json(const char *s) : kind_(Kind::String), str_(s) {}
Json::Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
Json::Json(double v) : kind_(Kind::Double), dbl_(v) {}
Json::Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
Json::Json(std::int32_t v) : kind_(Kind::Int), int_(v) {}
Json::Json(bool v) : kind_(Kind::Bool), bool_(v) {}

Json &
Json::set(const std::string &key, Json value)
{
    LSQCA_REQUIRE(kind_ == Kind::Object, "Json::set on a non-object");
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    LSQCA_REQUIRE(kind_ == Kind::Array, "Json::push on a non-array");
    items_.push_back(std::move(value));
    return *this;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (kind_) {
      case Kind::Null: out += "null"; break;
      case Kind::String: appendEscaped(out, str_); break;
      case Kind::Double: appendDouble(out, dbl_); break;
      case Kind::Int: out += std::to_string(int_); break;
      case Kind::Bool: out += bool_ ? "true" : "false"; break;
      case Kind::Object: {
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            newline(depth + 1);
            appendEscaped(out, members_[i].first);
            out += indent > 0 ? ": " : ":";
            members_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < members_.size())
                out += ',';
        }
        newline(depth);
        out += '}';
        break;
      }
      case Kind::Array: {
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            newline(depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < items_.size())
                out += ',';
        }
        newline(depth);
        out += ']';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

void
Json::write(const std::string &path, int indent) const
{
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream file(path);
    LSQCA_REQUIRE(file.good(), "cannot open for writing: " + path);
    file << dump(indent);
    LSQCA_REQUIRE(file.good(), "write failed: " + path);
}

} // namespace lsqca
