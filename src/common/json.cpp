#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace lsqca {
namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null"; // JSON has no Inf/NaN
        return;
    }
    char buf[32];
    const auto res =
        std::to_chars(buf, buf + sizeof buf, v,
                      std::chars_format::general, 17);
    out.append(buf, res.ptr);
}

/** Recursive-descent parser over a string with line:column errors. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    document()
    {
        skipWs();
        Json value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw ConfigError("JSON parse error at " + std::to_string(line) +
                          ":" + std::to_string(col) + ": " + msg);
    }

    bool
    atEnd() const
    {
        return pos_ >= text_.size();
    }

    char
    peek() const
    {
        if (atEnd())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    next()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos_;
    }

    bool
    consumeWord(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json(parseString());
          case 't':
            if (consumeWord("true"))
                return Json(true);
            fail("invalid literal");
          case 'f':
            if (consumeWord("false"))
                return Json(false);
            fail("invalid literal");
          case 'n':
            if (consumeWord("null"))
                return Json();
            fail("invalid literal");
          default: return parseNumber();
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skipWs();
            if (peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            if (obj.contains(key))
                fail("duplicate object key \"" + key + "\"");
            skipWs();
            expect(':');
            skipWs();
            obj.set(key, parseValue());
            skipWs();
            const char c = next();
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            skipWs();
            arr.push(parseValue());
            skipWs();
            const char c = next();
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            const char c = next();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = next();
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                std::uint32_t code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = next();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<std::uint32_t>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<std::uint32_t>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<std::uint32_t>(h - 'A' + 10);
                    else
                        fail("invalid \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // passed through as two 3-byte sequences; the writer
                // only ever emits \u00xx control escapes).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: fail("invalid escape sequence");
            }
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        bool integral = true;
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
            fail("invalid number");
        // RFC 8259: no leading zeros ("01" is invalid JSON).
        const std::size_t digits =
            text_[start] == '-' ? start + 1 : start;
        if (digits + 1 < pos_ && text_[digits] == '0' &&
            text_[digits + 1] >= '0' && text_[digits + 1] <= '9') {
            pos_ = start;
            fail("leading zeros are not allowed");
        }
        const char *first = text_.data() + start;
        const char *last = text_.data() + pos_;
        if (integral) {
            std::int64_t value = 0;
            const auto res = std::from_chars(first, last, value);
            if (res.ec == std::errc() && res.ptr == last)
                return Json(value);
            // Fall through: out-of-range integers parse as doubles.
        }
        double value = 0.0;
        const auto res = std::from_chars(first, last, value);
        if (res.ec != std::errc() || res.ptr != last) {
            pos_ = start;
            fail("invalid number");
        }
        return Json(value);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json::Json(const char *s) : kind_(Kind::String), str_(s) {}
Json::Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
Json::Json(double v) : kind_(Kind::Double), dbl_(v) {}
Json::Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
Json::Json(std::int32_t v) : kind_(Kind::Int), int_(v) {}
Json::Json(bool v) : kind_(Kind::Bool), bool_(v) {}

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

Json
Json::load(const std::string &path)
{
    std::ifstream file(path);
    LSQCA_REQUIRE(file.good(), "cannot open for reading: " + path);
    std::ostringstream text;
    text << file.rdbuf();
    try {
        return parse(text.str());
    } catch (const ConfigError &e) {
        throw ConfigError(path + ": " + e.what());
    }
}

const std::string &
Json::asString() const
{
    LSQCA_REQUIRE(kind_ == Kind::String, "JSON value is not a string");
    return str_;
}

bool
Json::asBool() const
{
    LSQCA_REQUIRE(kind_ == Kind::Bool, "JSON value is not a bool");
    return bool_;
}

std::int64_t
Json::asInt() const
{
    if (kind_ == Kind::Int)
        return int_;
    if (kind_ == Kind::Double) {
        // Range-check before the cast: int64 conversion of an
        // out-of-range double is undefined behavior.
        LSQCA_REQUIRE(dbl_ >= -9223372036854775808.0 &&
                          dbl_ < 9223372036854775808.0,
                      "JSON number is out of integer range");
        const auto as_int = static_cast<std::int64_t>(dbl_);
        LSQCA_REQUIRE(static_cast<double>(as_int) == dbl_,
                      "JSON number is not an integer");
        return as_int;
    }
    throw ConfigError("JSON value is not an integer");
}

double
Json::asDouble() const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    LSQCA_REQUIRE(kind_ == Kind::Double, "JSON value is not a number");
    return dbl_;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    LSQCA_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
    return members_;
}

const std::vector<Json> &
Json::items() const
{
    LSQCA_REQUIRE(kind_ == Kind::Array, "JSON value is not an array");
    return items_;
}

const Json *
Json::find(const std::string &key) const
{
    LSQCA_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
    for (const auto &member : members_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *value = find(key);
    LSQCA_REQUIRE(value != nullptr, "missing JSON key \"" + key + "\"");
    return *value;
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Object)
        return members_.size();
    if (kind_ == Kind::Array)
        return items_.size();
    return 0;
}

bool
Json::operator==(const Json &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::String: return str_ == other.str_;
      case Kind::Double: return dbl_ == other.dbl_;
      case Kind::Int: return int_ == other.int_;
      case Kind::Bool: return bool_ == other.bool_;
      case Kind::Object: return members_ == other.members_;
      case Kind::Array: return items_ == other.items_;
    }
    return false;
}

Json &
Json::set(const std::string &key, Json value)
{
    LSQCA_REQUIRE(kind_ == Kind::Object, "Json::set on a non-object");
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    LSQCA_REQUIRE(kind_ == Kind::Array, "Json::push on a non-array");
    items_.push_back(std::move(value));
    return *this;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (kind_) {
      case Kind::Null: out += "null"; break;
      case Kind::String: appendEscaped(out, str_); break;
      case Kind::Double: appendDouble(out, dbl_); break;
      case Kind::Int: out += std::to_string(int_); break;
      case Kind::Bool: out += bool_ ? "true" : "false"; break;
      case Kind::Object: {
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            newline(depth + 1);
            appendEscaped(out, members_[i].first);
            out += indent > 0 ? ": " : ":";
            members_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < members_.size())
                out += ',';
        }
        newline(depth);
        out += '}';
        break;
      }
      case Kind::Array: {
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            newline(depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < items_.size())
                out += ',';
        }
        newline(depth);
        out += ']';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

void
Json::write(const std::string &path, int indent) const
{
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream file(path);
    LSQCA_REQUIRE(file.good(), "cannot open for writing: " + path);
    file << dump(indent);
    LSQCA_REQUIRE(file.good(), "write failed: " + path);
}

} // namespace lsqca
