#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace lsqca {

void
SummaryStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
SummaryStats::merge(const SummaryStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
SummaryStats::min() const
{
    LSQCA_REQUIRE(count_ > 0, "SummaryStats::min on empty summary");
    return min_;
}

double
SummaryStats::max() const
{
    LSQCA_REQUIRE(count_ > 0, "SummaryStats::max on empty summary");
    return max_;
}

double
SummaryStats::mean() const
{
    LSQCA_REQUIRE(count_ > 0, "SummaryStats::mean on empty summary");
    return mean_;
}

double
SummaryStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
SummaryStats::stddev() const
{
    return std::sqrt(variance());
}

void
EmpiricalCdf::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
EmpiricalCdf::add(const std::vector<double> &xs)
{
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_ = false;
}

void
EmpiricalCdf::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
EmpiricalCdf::at(double x) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

double
EmpiricalCdf::quantile(double p) const
{
    LSQCA_REQUIRE(!samples_.empty(), "EmpiricalCdf::quantile on empty CDF");
    LSQCA_REQUIRE(p >= 0.0 && p <= 1.0, "quantile p must be in [0, 1]");
    ensureSorted();
    if (p <= 0.0)
        return samples_.front();
    const auto n = samples_.size();
    const auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(n)));
    return samples_[std::min(n - 1, rank == 0 ? 0 : rank - 1)];
}

std::vector<std::pair<double, double>>
EmpiricalCdf::curve() const
{
    ensureSorted();
    std::vector<std::pair<double, double>> points;
    const auto n = samples_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double frac =
            static_cast<double>(i + 1) / static_cast<double>(n);
        if (!points.empty() && points.back().first == samples_[i])
            points.back().second = frac;
        else
            points.emplace_back(samples_[i], frac);
    }
    return points;
}

double
geomean(const std::vector<double> &values)
{
    LSQCA_REQUIRE(!values.empty(), "geomean of empty vector");
    double log_sum = 0.0;
    for (double v : values) {
        LSQCA_REQUIRE(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    LSQCA_REQUIRE(bins > 0, "Histogram needs at least one bin");
    LSQCA_REQUIRE(hi > lo, "Histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width));
    idx = std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

std::uint64_t
Histogram::binCount(std::size_t i) const
{
    LSQCA_REQUIRE(i < counts_.size(), "Histogram bin out of range");
    return counts_[i];
}

double
Histogram::binLow(std::size_t i) const
{
    LSQCA_REQUIRE(i < counts_.size(), "Histogram bin out of range");
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

} // namespace lsqca
