#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace lsqca {
namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Warn};
std::mutex emitMutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO ";
      case LogLevel::Warn:  return "WARN ";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off:   return "OFF  ";
    }
    return "?????";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

namespace detail {

void
logEmit(LogLevel level, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(emitMutex);
    std::cerr << "[lsqca:" << levelName(level) << "] " << msg << '\n';
}

} // namespace detail
} // namespace lsqca
