#ifndef LSQCA_COMMON_TABLE_H
#define LSQCA_COMMON_TABLE_H

/**
 * @file
 * Text table and CSV emission for the bench harness.
 *
 * Every figure/table bench prints a human-readable aligned table to stdout
 * and can optionally mirror the same rows to a CSV file for plotting.
 */

#include <string>
#include <vector>

namespace lsqca {

/** Row-oriented table with aligned console rendering and CSV export. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with fixed precision. */
    static std::string num(double v, int precision = 3);

    /** Render with padded columns, a header rule, and optional title. */
    std::string render(const std::string &title = "") const;

    /** Render as RFC-4180-ish CSV (quotes only when needed). */
    std::string csv() const;

    /** Write csv() to a file; throws ConfigError when unwritable. */
    void writeCsv(const std::string &path) const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace lsqca

#endif // LSQCA_COMMON_TABLE_H
