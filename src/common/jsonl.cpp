#include "common/jsonl.h"

#include <cstdio>
#include <iostream>

#include "common/error.h"
#include "common/fs.h"

namespace lsqca::jsonl {

Export::Export(const std::string &path)
    : path_(path), toStdout_(path == "-")
{
    if (toStdout_)
        return;
    LSQCA_REQUIRE(!path_.empty(), "export needs a target path");
    const std::size_t slash = path_.rfind('/');
    if (slash != std::string::npos)
        fsutil::makeDirs(path_.substr(0, slash));
    tmpPath_ = path_ + ".tmp";
    file_.open(tmpPath_, std::ios::binary | std::ios::trunc);
    LSQCA_REQUIRE(file_.good(),
                  "cannot open " + tmpPath_ + " for writing");
}

Export::~Export()
{
    if (!toStdout_ && !published_) {
        file_.close();
        fsutil::removeFile(tmpPath_);
    }
}

std::ostream &
Export::stream()
{
    return toStdout_ ? static_cast<std::ostream &>(std::cout)
                     : static_cast<std::ostream &>(file_);
}

void
Export::publish()
{
    if (toStdout_ || published_)
        return;
    file_.close();
    LSQCA_REQUIRE(file_.good(), "failed writing " + tmpPath_);
    LSQCA_REQUIRE(std::rename(tmpPath_.c_str(), path_.c_str()) == 0,
                  "cannot publish " + path_);
    published_ = true;
}

ReadResult
readLines(const std::string &path)
{
    const std::string text = fsutil::readFile(path);
    ReadResult result;
    std::size_t start = 0;
    std::int64_t lineNo = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            // A writer died between write() and the trailing newline
            // (or mid-buffer): the torn tail carries no complete
            // record, so it is dropped rather than failing the whole
            // reload.
            result.truncatedTail = true;
            break;
        }
        ++lineNo;
        const std::string line = text.substr(start, nl - start);
        start = nl + 1;
        if (line.empty())
            continue;
        try {
            result.lines.push_back(Json::parse(line));
        } catch (const ConfigError &e) {
            throw ConfigError(path + " line " + std::to_string(lineNo) +
                              ": " + e.what());
        }
    }
    return result;
}

} // namespace lsqca::jsonl
