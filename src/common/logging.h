#ifndef LSQCA_COMMON_LOGGING_H
#define LSQCA_COMMON_LOGGING_H

/**
 * @file
 * Minimal leveled logging for library diagnostics.
 *
 * Messages go to stderr; the global level defaults to Warn so library code
 * is silent in normal operation. Benches and examples raise it to Info.
 */

#include <sstream>
#include <string>

namespace lsqca {

/** Severity levels, ordered; messages below the global level are dropped. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Set the process-wide log level. Thread-safe. */
void setLogLevel(LogLevel level);

/** Current process-wide log level. */
LogLevel logLevel();

namespace detail {

/** Emit one formatted record to stderr if @p level passes the filter. */
void logEmit(LogLevel level, const std::string &msg);

} // namespace detail

/** Log a message at the given level using stream syntax internally. */
template <typename... Args>
void
logMessage(LogLevel level, Args &&...args)
{
    if (level < logLevel())
        return;
    std::ostringstream oss;
    (oss << ... << args);
    detail::logEmit(level, oss.str());
}

template <typename... Args>
void
logDebug(Args &&...args)
{
    logMessage(LogLevel::Debug, std::forward<Args>(args)...);
}

template <typename... Args>
void
logInfo(Args &&...args)
{
    logMessage(LogLevel::Info, std::forward<Args>(args)...);
}

template <typename... Args>
void
logWarn(Args &&...args)
{
    logMessage(LogLevel::Warn, std::forward<Args>(args)...);
}

template <typename... Args>
void
logError(Args &&...args)
{
    logMessage(LogLevel::Error, std::forward<Args>(args)...);
}

} // namespace lsqca

#endif // LSQCA_COMMON_LOGGING_H
