#ifndef LSQCA_SYNTH_BENCHMARKS_H
#define LSQCA_SYNTH_BENCHMARKS_H

/**
 * @file
 * Generators for every benchmark program evaluated in the paper
 * (Sec. III-B and Sec. VI-B): adder, bv, cat, ghz, multiplier,
 * square_root, and SELECT for 2-D Heisenberg models.
 *
 * Default parameters reproduce the paper's logical-qubit counts exactly:
 * adder 433, bv 280, cat 260, ghz 127, multiplier 400, square_root 60,
 * SELECT(11) 143, and SELECT(21..101) with 467/1,711/3,753/6,595/10,235
 * data qubits (asserted in tests/synth/benchmarks_test.cpp).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"

namespace lsqca {

/**
 * VBE ripple-carry adder b := a + b (QASMBench adder family).
 *
 * Registers: a(w), b(w+1) (sum + carry-out), carry(w). Total 3w+1 qubits;
 * the paper's adder_n433 corresponds to w = 144.
 */
Circuit makeAdder(std::int32_t width = 144);

/**
 * Bernstein-Vazirani with an n-1-bit secret and one |-> ancilla.
 *
 * @param num_qubits total qubits (paper: 280).
 * @param secret     bitmask of the hidden string; ~0 means all-ones.
 */
Circuit makeBernsteinVazirani(std::int32_t num_qubits = 280,
                              std::uint64_t secret = ~0ULL);

/** Cat-state preparation via a linear CX chain (paper: 260 qubits). */
Circuit makeCat(std::int32_t num_qubits = 260);

/**
 * GHZ-state preparation via a linear CX chain, as in QASMBench
 * (paper: 127 qubits); differs from cat only in size.
 */
Circuit makeGhz(std::int32_t num_qubits = 127);

/** Parameters for the shift-add multiplier. */
struct MultiplierParams
{
    std::int32_t widthA = 81; ///< multiplicand bits
    std::int32_t widthB = 78; ///< multiplier bits
};

/**
 * Shift-add multiplier: product := a * b via controlled VBE additions.
 *
 * Registers: a(wa), b(wb), product(wa+wb), carry(wa+1). The defaults
 * (81 x 78) make the register file exactly the paper's 400 qubits.
 */
Circuit makeMultiplier(const MultiplierParams &params = {});

/** Parameters for the Grover square-root benchmark. */
struct SquareRootParams
{
    std::int32_t width = 10;      ///< bits of the searched value x
    std::uint64_t target = 49;    ///< N; the oracle marks x*x == N
    std::int32_t iterations = 2;  ///< Grover iterations
};

/**
 * Amplitude-amplification search for x with x^2 == N (QASMBench
 * square_root family). Registers: x(k), square(2k), carry(k+1),
 * ladder(2k-1); k = 10 gives the paper's 60 qubits.
 */
Circuit makeSquareRoot(const SquareRootParams &params = {});

/** One Pauli term of a Hamiltonian: a type acting on two sites. */
struct PauliTerm
{
    enum class Kind : std::uint8_t { XX, YY, ZZ };
    Kind kind;
    QubitId site0;
    QubitId site1;
};

/**
 * Pauli terms of the 2-D Heisenberg model on a width x width square
 * lattice: XX+YY+ZZ on every nearest-neighbor edge, row-major edge order
 * (the spatial-locality structure Sec. III-B observes). L = 6*W*(W-1).
 */
std::vector<PauliTerm> heisenbergTerms(std::int32_t width);

/** Qubit-count bookkeeping for a SELECT instance. */
struct SelectLayout
{
    std::int32_t width = 0;        ///< Heisenberg lattice width W
    std::int64_t numTerms = 0;     ///< L = 6*W*(W-1)
    std::int32_t controlBits = 0;  ///< ceil(log2 L) + 1
    std::int32_t temporalBits = 0; ///< == controlBits
    std::int32_t systemBits = 0;   ///< W*W
    std::int32_t totalQubits = 0;
};

/** Compute the SELECT register layout for lattice width @p width. */
SelectLayout selectLayout(std::int32_t width);

/**
 * Fraction of a SELECT instance's qubits that are control+temporal
 * registers — the "hot" working set the Fig. 15 hybrid layouts pin
 * into the conventional region.
 */
double selectHotFraction(std::int32_t width);

/** Options for SELECT synthesis. */
struct SelectParams
{
    std::int32_t width = 11;  ///< paper Sec. VI-B instance: 143 qubits
    /**
     * Emit only the first @p maxTerms unary-iteration steps (0 = all).
     * Large Fig. 15 instances use a prefix; the iteration is periodic so
     * steady-state CPI converges (DESIGN.md §4.13).
     */
    std::int64_t maxTerms = 0;
    /**
     * Fig. 5d parallelization: fan the control register out into
     * @p controlCopies CX-copies, each walking every controlCopies-th
     * term with its own temporal ladder, exposing Toffoli-depth
     * parallelism at the cost of (copies-1) extra control+temporal
     * registers. 1 = the paper's default serial iteration.
     */
    std::int32_t controlCopies = 1;
};

/**
 * SELECT = sum_i |i><i| (x) P_i over the Heisenberg terms, implemented as
 * sawtooth unary iteration with temporary-AND ladders (Fig. 5): only the
 * trailing AND links are rebuilt between consecutive indices (amortized
 * ~2 Toffolis per term, matching the duplication-removal optimization).
 * Registers: control, temporal, system.
 */
Circuit makeSelect(const SelectParams &params = {});

/** A named benchmark with its circuit. */
struct Benchmark
{
    std::string name;
    Circuit circuit;
};

/**
 * The paper's seven-program evaluation suite at full size (Sec. VI-B).
 * @param select_max_terms optional truncation for SELECT (0 = full).
 */
std::vector<Benchmark> paperSuite(std::int64_t select_max_terms = 0);

} // namespace lsqca

#endif // LSQCA_SYNTH_BENCHMARKS_H
