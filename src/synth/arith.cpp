#include "synth/arith.h"

#include <algorithm>

#include "common/error.h"

namespace lsqca {
namespace {

/**
 * CX targeting b, optionally controlled: plain cx when ctrl is absent,
 * ccx(ctrl, x, b) otherwise (the "promote only sum writes" rule).
 */
void
sumWrite(Circuit &circ, QubitId ctrl, QubitId x, QubitId b)
{
    if (ctrl == kNoQubit)
        circ.cx(x, b);
    else
        circ.ccx(ctrl, x, b);
}

/**
 * Shared ripple structure. Forward pass per bit i:
 *   a_i ^= c_i;  b_i ^= c_i (sum write);  c_{i+1} = AND(a_i, b_i);
 *   c_{i+1} ^= c_i
 * which leaves c_{i+1} = MAJ(a, b, c). The backward pass uncomputes the
 * AND for free and rewires b_i to the sum a ^ b ^ c.
 *
 * @p carry_out receives the final carry. When @p ctrl is valid, b-writes
 * are Toffolis and the carry-out goes through AND(ctrl, c_w) so a zero
 * control leaves b untouched while the garbage carries uncompute.
 */
void
rippleCore(Circuit &circ, QubitId ctrl, const QubitSpan &a,
           const QubitSpan &b, const QubitSpan &carry, QubitId carry_out)
{
    const auto w = a.size();
    // Forward carry chain: targets carry[1..w-1] then the carry sink.
    for (std::size_t i = 0; i < w; ++i) {
        const QubitId sink =
            (i + 1 < w) ? carry[i + 1]
                        : (ctrl == kNoQubit ? carry_out : carry[w]);
        circ.cx(carry[i], a[i]);
        sumWrite(circ, ctrl, carry[i], b[i]);
        circ.andInit(a[i], b[i], sink);
        circ.cx(carry[i], sink);
    }
    if (ctrl != kNoQubit) {
        // Controlled carry-out: one more temporary AND into the (|0>)
        // target bit; c_w is then uncomputed on the way down.
        circ.andInit(ctrl, carry[w], carry_out);
    }
    // Backward: clear carries, produce sums.
    for (std::size_t i = w; i-- > 0;) {
        const bool top_uncontrolled = ctrl == kNoQubit && i + 1 == w;
        if (!top_uncontrolled) {
            const QubitId sink = (i + 1 < w) ? carry[i + 1] : carry[w];
            circ.cx(carry[i], sink);
            circ.andUncompute(a[i], b[i], sink);
        }
        sumWrite(circ, ctrl, a[i], b[i]);
        sumWrite(circ, ctrl, carry[i], b[i]);
        circ.cx(carry[i], a[i]);
    }
}

void
validateSpans(const QubitSpan &a, const QubitSpan &b,
              const QubitSpan &carry, std::size_t carry_needed)
{
    LSQCA_REQUIRE(a.size() >= 1, "adder needs at least one addend bit");
    LSQCA_REQUIRE(b.size() == a.size() + 1,
                  "adder target must have w+1 bits");
    LSQCA_REQUIRE(carry.size() >= carry_needed,
                  "adder carry scratch too small");
}

} // namespace

QubitSpan
spanOf(QubitId first, std::int32_t size)
{
    QubitSpan span;
    span.reserve(static_cast<std::size_t>(size));
    for (std::int32_t i = 0; i < size; ++i)
        span.push_back(first + i);
    return span;
}

void
rippleAdd(Circuit &circ, const QubitSpan &a, const QubitSpan &b,
          const QubitSpan &carry)
{
    validateSpans(a, b, carry, a.size());
    rippleCore(circ, kNoQubit, a, b, carry, b[a.size()]);
}

void
rippleAddControlled(Circuit &circ, QubitId ctrl, const QubitSpan &a,
                    const QubitSpan &b, const QubitSpan &carry)
{
    validateSpans(a, b, carry, a.size() + 1);
    LSQCA_REQUIRE(std::find(a.begin(), a.end(), ctrl) == a.end() &&
                      std::find(b.begin(), b.end(), ctrl) == b.end() &&
                      std::find(carry.begin(), carry.end(), ctrl) ==
                          carry.end(),
                  "control qubit must not overlap adder operands");
    rippleCore(circ, ctrl, a, b, carry, b[a.size()]);
}

void
phaseOnAllOnes(Circuit &circ, const QubitSpan &literals,
               const QubitSpan &scratch)
{
    const auto k = literals.size();
    LSQCA_REQUIRE(k >= 1, "phaseOnAllOnes needs at least one literal");
    if (k == 1) {
        circ.z(literals[0]);
        return;
    }
    if (k == 2) {
        circ.cz(literals[0], literals[1]);
        return;
    }
    LSQCA_REQUIRE(scratch.size() >= k - 2,
                  "phaseOnAllOnes needs k-2 scratch cells");
    // AND-ladder over the first k-1 literals, phase against the last.
    circ.andInit(literals[0], literals[1], scratch[0]);
    for (std::size_t j = 2; j + 1 < k; ++j)
        circ.andInit(scratch[j - 2], literals[j], scratch[j - 1]);
    circ.cz(scratch[k - 3], literals[k - 1]);
    for (std::size_t j = k - 1; j-- > 2;)
        circ.andUncompute(scratch[j - 2], literals[j], scratch[j - 1]);
    circ.andUncompute(literals[0], literals[1], scratch[0]);
}

} // namespace lsqca
