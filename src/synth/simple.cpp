#include "synth/benchmarks.h"

#include "common/error.h"

namespace lsqca {

Circuit
makeBernsteinVazirani(std::int32_t num_qubits, std::uint64_t secret)
{
    LSQCA_REQUIRE(num_qubits >= 2, "bv needs a data qubit and an ancilla");
    Circuit circ;
    const std::int32_t data = num_qubits - 1;
    const QubitId d0 = circ.addRegister("data", data);
    const QubitId anc = circ.addRegister("ancilla", 1);

    // Ancilla in |->, data in uniform superposition.
    circ.x(anc);
    circ.h(anc);
    for (std::int32_t i = 0; i < data; ++i)
        circ.h(d0 + i);
    // Oracle: kickback per secret bit. Bits beyond 64 reuse the mask
    // cyclically so large instances still have dense oracles.
    for (std::int32_t i = 0; i < data; ++i)
        if (secret & (std::uint64_t{1} << (i % 64)))
            circ.cx(d0 + i, anc);
    for (std::int32_t i = 0; i < data; ++i)
        circ.h(d0 + i);
    for (std::int32_t i = 0; i < data; ++i)
        circ.measZ(d0 + i);
    return circ;
}

Circuit
makeCat(std::int32_t num_qubits)
{
    LSQCA_REQUIRE(num_qubits >= 2, "cat needs at least two qubits");
    Circuit circ;
    const QubitId q0 = circ.addRegister("q", num_qubits);
    circ.h(q0);
    // Linear entangling chain: fully serial dependency structure.
    for (std::int32_t i = 0; i + 1 < num_qubits; ++i)
        circ.cx(q0 + i, q0 + i + 1);
    return circ;
}

Circuit
makeGhz(std::int32_t num_qubits)
{
    LSQCA_REQUIRE(num_qubits >= 2, "ghz needs at least two qubits");
    Circuit circ;
    const QubitId q0 = circ.addRegister("q", num_qubits);
    circ.h(q0);
    // QASMBench's ghz is a linear CX chain like cat; the two benchmarks
    // differ in size (127 vs 260 qubits), which is what Fig. 13 varies.
    for (std::int32_t i = 0; i + 1 < num_qubits; ++i)
        circ.cx(q0 + i, q0 + i + 1);
    return circ;
}

} // namespace lsqca
