#ifndef LSQCA_SYNTH_ARITH_H
#define LSQCA_SYNTH_ARITH_H

/**
 * @file
 * Reversible-arithmetic building blocks.
 *
 * The in-place ripple-carry adder is the temporary-AND construction
 * (Gidney-style): each carry is computed by one 4-T AndInit into a fresh
 * |0> cell and uncomputed by a free measurement-based AndUncompute, so a
 * w-bit add costs ~4w T states instead of ~14w for textbook Toffolis —
 * the low-T compilation the paper assumes for its arithmetic benchmarks.
 * The controlled variant promotes only sum-register writes to Toffolis
 * (carry chains compute garbage under a 0 control but uncompute
 * symmetrically) and writes the carry-out through one extra AND, so no
 * multi-controlled gate is ever needed.
 *
 * Correctness is established exhaustively in tests/synth/arith_test.cpp
 * via the state-vector oracle.
 */

#include <vector>

#include "circuit/circuit.h"

namespace lsqca {

/** A little-endian run of qubits forming an integer register. */
using QubitSpan = std::vector<QubitId>;

/** Contiguous span helper: first, first+1, ..., first+size-1. */
QubitSpan spanOf(QubitId first, std::int32_t size);

/**
 * In-place addition: b := a + b.
 *
 * @param a     addend, w qubits (unchanged).
 * @param b     target, w+1 qubits little-endian; b[w] receives carry-out
 *              (must be |0> on entry for a correct w+1-bit sum).
 * @param carry w scratch qubits, |0> on entry and exit.
 */
void rippleAdd(Circuit &circ, const QubitSpan &a, const QubitSpan &b,
               const QubitSpan &carry);

/**
 * Controlled in-place addition: if (ctrl) b := a + b.
 *
 * @param ctrl  control qubit; must not appear in @p a, @p b or @p carry.
 * @param a     addend, w qubits (unchanged).
 * @param b     target, w+1 qubits; b[w] receives the carry-out (must be
 *              |0> on entry).
 * @param carry w+1 scratch qubits, |0> on entry and exit (one more than
 *              the uncontrolled form: the full chain is computed so the
 *              controlled carry-out is a single AND into b[w]).
 */
void rippleAddControlled(Circuit &circ, QubitId ctrl, const QubitSpan &a,
                         const QubitSpan &b, const QubitSpan &carry);

/**
 * Phase-flip the amplitude where all @p literals are 1, using an AND
 * ladder over @p scratch (literals.size()-2 cells, |0> in/out). Used by
 * the square_root oracle and the Grover diffusion operator.
 */
void phaseOnAllOnes(Circuit &circ, const QubitSpan &literals,
                    const QubitSpan &scratch);

} // namespace lsqca

#endif // LSQCA_SYNTH_ARITH_H
