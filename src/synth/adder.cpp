#include "synth/benchmarks.h"

#include "common/error.h"
#include "synth/arith.h"

namespace lsqca {

Circuit
makeAdder(std::int32_t width)
{
    LSQCA_REQUIRE(width >= 1, "adder width must be positive");
    Circuit circ;
    const QubitId a0 = circ.addRegister("a", width);
    const QubitId b0 = circ.addRegister("b", width + 1);
    const QubitId c0 = circ.addRegister("carry", width);
    rippleAdd(circ, spanOf(a0, width), spanOf(b0, width + 1),
              spanOf(c0, width));
    return circ;
}

} // namespace lsqca
