#include "synth/benchmarks.h"

#include "common/error.h"

namespace lsqca {
namespace {

/**
 * Sawtooth unary-iteration walker.
 *
 * Maintains an AND ladder over the control literals (MSB at chain
 * position 0). Between consecutive indices only the trailing links —
 * those downstream of the lowest carried bit — are torn down and
 * rebuilt, which is what keeps the amortized Toffoli count ~2 per term
 * (the Fig. 5c duplication-removal effect).
 */
class UnaryWalker
{
  public:
    UnaryWalker(Circuit &circ, QubitId control0, QubitId temporal0,
                std::int32_t bits)
        : circ_(circ), control0_(control0), temporal0_(temporal0),
          bits_(bits)
    {
        LSQCA_REQUIRE(bits >= 2, "unary iteration needs >= 2 index bits");
    }

    /** Literal qubit at chain position j (0 = MSB). */
    QubitId lit(std::int32_t j) const { return control0_ + j; }

    /** Ladder link target for chain position j (1..bits-1). */
    QubitId link(std::int32_t j) const { return temporal0_ + j; }

    /** Leaf qubit: one exactly when control == current index. */
    QubitId leaf() const { return link(bits_ - 1); }

    /** Build the full ladder for index 0 (X-conjugate all zero bits). */
    void
    buildForZero()
    {
        LSQCA_ASSERT(!built_, "walker already built");
        index_ = 0;
        for (std::int32_t j = 0; j < bits_; ++j)
            circ_.x(lit(j)); // all bits of index 0 are zero
        circ_.andInit(lit(0), lit(1), link(1));
        for (std::int32_t j = 2; j < bits_; ++j)
            circ_.andInit(link(j - 1), lit(j), link(j));
        built_ = true;
    }

    /** Advance from index i to i+1, rebuilding only trailing links. */
    void
    advance()
    {
        LSQCA_ASSERT(built_, "walker not built");
        const std::int64_t next = index_ + 1;
        LSQCA_REQUIRE(next < (std::int64_t{1} << bits_),
                      "unary iteration overflow");
        // Integer-bit positions that differ between index_ and next are
        // exactly 0..h (the carry ripple). Chain position of integer
        // bit p is bits_-1-p, so links jmin..bits_-1 change.
        std::int32_t h = 0;
        while ((index_ >> h) & 1)
            ++h;
        const std::int32_t jmin = bits_ - 1 - h;
        // Tear down affected links (deepest first).
        for (std::int32_t j = bits_ - 1; j >= std::max(jmin, 1); --j)
            circ_.andUncompute(j == 1 ? lit(0) : link(j - 1), lit(j),
                               link(j));
        // Flip the X conjugation on every changed literal.
        for (std::int32_t j = jmin; j < bits_; ++j)
            circ_.x(lit(j));
        // Rebuild.
        for (std::int32_t j = std::max(jmin, 1); j < bits_; ++j)
            circ_.andInit(j == 1 ? lit(0) : link(j - 1), lit(j), link(j));
        index_ = next;
    }

    /** Tear the ladder down and restore the control register. */
    void
    teardown()
    {
        LSQCA_ASSERT(built_, "walker not built");
        for (std::int32_t j = bits_ - 1; j >= 1; --j)
            circ_.andUncompute(j == 1 ? lit(0) : link(j - 1), lit(j),
                               link(j));
        for (std::int32_t j = 0; j < bits_; ++j)
            if (!((index_ >> (bits_ - 1 - j)) & 1))
                circ_.x(lit(j));
        built_ = false;
    }

  private:
    Circuit &circ_;
    QubitId control0_;
    QubitId temporal0_;
    std::int32_t bits_;
    std::int64_t index_ = 0;
    bool built_ = false;
};

/** Controlled Pauli-P on @p target: P in {X, Y, Z}. */
void
controlledPauli(Circuit &circ, QubitId control, QubitId target, char pauli)
{
    switch (pauli) {
      case 'X':
        circ.cx(control, target);
        break;
      case 'Y':
        circ.sdg(target);
        circ.cx(control, target);
        circ.s(target);
        break;
      case 'Z':
        circ.cz(control, target);
        break;
      default:
        throw InternalError("unknown Pauli label");
    }
}

char
pauliChar(PauliTerm::Kind kind)
{
    switch (kind) {
      case PauliTerm::Kind::XX: return 'X';
      case PauliTerm::Kind::YY: return 'Y';
      case PauliTerm::Kind::ZZ: return 'Z';
    }
    return '?';
}

} // namespace

namespace {

/** Emit one term's controlled Paulis at @p leaf. */
void
applyTerm(Circuit &circ, QubitId leaf, QubitId sys0,
          const PauliTerm &term)
{
    const char p = pauliChar(term.kind);
    controlledPauli(circ, leaf, sys0 + term.site0, p);
    controlledPauli(circ, leaf, sys0 + term.site1, p);
}

} // namespace

Circuit
makeSelect(const SelectParams &params)
{
    LSQCA_REQUIRE(params.controlCopies >= 1,
                  "SELECT needs at least one control copy");
    const SelectLayout layout = selectLayout(params.width);
    const auto terms = heisenbergTerms(params.width);
    std::int64_t count = static_cast<std::int64_t>(terms.size());
    if (params.maxTerms > 0)
        count = std::min<std::int64_t>(count, params.maxTerms);
    const std::int32_t copies = params.controlCopies;

    Circuit circ;
    std::vector<QubitId> ctl(static_cast<std::size_t>(copies));
    std::vector<QubitId> tmp(static_cast<std::size_t>(copies));
    for (std::int32_t k = 0; k < copies; ++k) {
        const std::string suffix =
            copies == 1 ? "" : "_" + std::to_string(k);
        ctl[static_cast<std::size_t>(k)] =
            circ.addRegister("control" + suffix, layout.controlBits);
        tmp[static_cast<std::size_t>(k)] =
            circ.addRegister("temporal" + suffix, layout.temporalBits);
    }
    const QubitId sys0 = circ.addRegister("system", layout.systemBits);

    // Fig. 5d: CX fan-out of the control value onto every copy.
    for (std::int32_t k = 1; k < copies; ++k)
        for (std::int32_t b = 0; b < layout.controlBits; ++b)
            circ.cx(ctl[0] + b, ctl[static_cast<std::size_t>(k)] + b);

    // temporal[0] is the spare cell of the paper's register sizing; the
    // ladder proper lives in temporal[1..bits-1]. Copy k walks terms
    // k, k+copies, k+2*copies, ... with its own ladder; emission
    // interleaves round-robin so the copies' Toffolis parallelize.
    std::vector<UnaryWalker> walkers;
    walkers.reserve(static_cast<std::size_t>(copies));
    for (std::int32_t k = 0; k < copies; ++k)
        walkers.emplace_back(circ, ctl[static_cast<std::size_t>(k)],
                             tmp[static_cast<std::size_t>(k)],
                             layout.controlBits);
    std::vector<std::int64_t> position(
        static_cast<std::size_t>(copies), -1);
    for (std::int32_t k = 0; k < copies; ++k) {
        if (k < count) {
            walkers[static_cast<std::size_t>(k)].buildForZero();
            // Advance copy k from index 0 to its first term k.
            for (std::int64_t step = 0; step < k; ++step)
                walkers[static_cast<std::size_t>(k)].advance();
            position[static_cast<std::size_t>(k)] = k;
        }
    }
    bool any = true;
    while (any) {
        any = false;
        for (std::int32_t k = 0; k < copies; ++k) {
            auto &pos = position[static_cast<std::size_t>(k)];
            if (pos < 0 || pos >= count)
                continue;
            any = true;
            auto &walker = walkers[static_cast<std::size_t>(k)];
            applyTerm(circ, walker.leaf(), sys0,
                      terms[static_cast<std::size_t>(pos)]);
            const std::int64_t next = pos + copies;
            if (next < count) {
                for (std::int64_t step = 0; step < copies; ++step)
                    walker.advance();
            }
            pos = next;
        }
    }
    for (std::int32_t k = 0; k < copies; ++k)
        if (k < count)
            walkers[static_cast<std::size_t>(k)].teardown();
    for (std::int32_t k = copies - 1; k >= 1; --k)
        for (std::int32_t b = 0; b < layout.controlBits; ++b)
            circ.cx(ctl[0] + b, ctl[static_cast<std::size_t>(k)] + b);
    return circ;
}

} // namespace lsqca
