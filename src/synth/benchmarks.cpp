#include "synth/benchmarks.h"

namespace lsqca {

std::vector<Benchmark>
paperSuite(std::int64_t select_max_terms)
{
    std::vector<Benchmark> suite;
    suite.push_back({"adder", makeAdder()});
    suite.push_back({"bv", makeBernsteinVazirani()});
    suite.push_back({"cat", makeCat()});
    suite.push_back({"ghz", makeGhz()});
    suite.push_back({"multiplier", makeMultiplier()});
    suite.push_back({"square_root", makeSquareRoot()});
    SelectParams select;
    select.maxTerms = select_max_terms;
    suite.push_back({"SELECT", makeSelect(select)});
    return suite;
}

} // namespace lsqca
