#include "synth/benchmarks.h"

#include "common/error.h"

namespace lsqca {

std::vector<PauliTerm>
heisenbergTerms(std::int32_t width)
{
    LSQCA_REQUIRE(width >= 2, "Heisenberg lattice width must be >= 2");
    std::vector<PauliTerm> terms;
    terms.reserve(static_cast<std::size_t>(6) * width * (width - 1));
    const auto site = [width](std::int32_t r, std::int32_t c) {
        return static_cast<QubitId>(r * width + c);
    };
    // Row-major edge enumeration; consecutive terms act on overlapping or
    // adjacent sites, which is the access locality Sec. III-B measures.
    for (std::int32_t r = 0; r < width; ++r) {
        for (std::int32_t c = 0; c < width; ++c) {
            const auto addEdge = [&](QubitId u, QubitId v) {
                terms.push_back({PauliTerm::Kind::XX, u, v});
                terms.push_back({PauliTerm::Kind::YY, u, v});
                terms.push_back({PauliTerm::Kind::ZZ, u, v});
            };
            if (c + 1 < width)
                addEdge(site(r, c), site(r, c + 1));
            if (r + 1 < width)
                addEdge(site(r, c), site(r + 1, c));
        }
    }
    LSQCA_ASSERT(terms.size() ==
                     static_cast<std::size_t>(6) * width * (width - 1),
                 "Heisenberg term count mismatch");
    return terms;
}

SelectLayout
selectLayout(std::int32_t width)
{
    LSQCA_REQUIRE(width >= 2, "SELECT lattice width must be >= 2");
    SelectLayout layout;
    layout.width = width;
    layout.numTerms = std::int64_t{6} * width * (width - 1);
    std::int32_t bits = 0;
    while ((std::int64_t{1} << bits) < layout.numTerms)
        ++bits;
    layout.controlBits = bits + 1; // +1 spare index bit (paper sizing)
    layout.temporalBits = layout.controlBits;
    layout.systemBits = width * width;
    layout.totalQubits =
        layout.controlBits + layout.temporalBits + layout.systemBits;
    return layout;
}

double
selectHotFraction(std::int32_t width)
{
    const SelectLayout layout = selectLayout(width);
    return static_cast<double>(layout.controlBits +
                               layout.temporalBits) /
           static_cast<double>(layout.totalQubits);
}

} // namespace lsqca
