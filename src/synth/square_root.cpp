#include "synth/benchmarks.h"

#include "common/error.h"
#include "synth/arith.h"

namespace lsqca {
namespace {

/**
 * Append the gates [start, end) of @p circ again, in reverse order,
 * inverting each (AndInit <-> AndUncompute; the rest of the slice must
 * be self-inverse).
 */
void
appendReversed(Circuit &circ, std::size_t start, std::size_t end)
{
    const std::vector<Gate> slice(circ.gates().begin() +
                                      static_cast<std::ptrdiff_t>(start),
                                  circ.gates().begin() +
                                      static_cast<std::ptrdiff_t>(end));
    for (auto it = slice.rbegin(); it != slice.rend(); ++it) {
        Gate g = *it;
        switch (g.kind) {
          case GateKind::X: case GateKind::Z: case GateKind::H:
          case GateKind::CX: case GateKind::CZ: case GateKind::CCX:
            break;
          case GateKind::AndInit:
            g.kind = GateKind::AndUncompute;
            break;
          case GateKind::AndUncompute:
            g.kind = GateKind::AndInit;
            break;
          default:
            throw InternalError("appendReversed: gate not invertible");
        }
        circ.append(g);
    }
}

} // namespace

Circuit
makeSquareRoot(const SquareRootParams &params)
{
    const std::int32_t k = params.width;
    LSQCA_REQUIRE(k >= 2, "square_root needs at least two value bits");
    LSQCA_REQUIRE(params.iterations >= 1,
                  "square_root needs at least one Grover iteration");
    LSQCA_REQUIRE(params.target < (std::uint64_t{1} << (2 * k)),
                  "square_root target exceeds the square register");

    Circuit circ;
    const QubitId x0 = circ.addRegister("x", k);
    const QubitId sq0 = circ.addRegister("square", 2 * k);
    const QubitId c0 = circ.addRegister("carry", k + 1);
    const QubitId l0 = circ.addRegister("ladder", 2 * k - 1);

    const QubitSpan carry = spanOf(c0, k + 1);
    const QubitSpan ladder = spanOf(l0, 2 * k - 1);

    // Uniform superposition over x.
    for (std::int32_t i = 0; i < k; ++i)
        circ.h(x0 + i);

    // square := x * x by controlled shift-adds. The diagonal term
    // (control x_i inside the addend) is handled by lending the addend
    // a CX-copy of x_i in a borrowed ladder cell, which reads the same
    // computational value without aliasing the control.
    auto emitSquare = [&]() {
        const QubitId copy = ladder.back(); // |0> outside the oracle
        for (std::int32_t i = 0; i < k; ++i) {
            QubitSpan addend = spanOf(x0, k);
            addend[static_cast<std::size_t>(i)] = copy;
            circ.cx(x0 + i, copy);
            rippleAddControlled(circ, x0 + i, addend,
                                spanOf(sq0 + i, k + 1), carry);
            circ.cx(x0 + i, copy);
        }
    };

    for (std::int32_t iter = 0; iter < params.iterations; ++iter) {
        // Oracle: phase-flip amplitudes with square == target.
        const std::size_t sq_begin = circ.gates().size();
        emitSquare();
        const std::size_t sq_end = circ.gates().size();

        QubitSpan literals;
        for (std::int32_t j = 0; j < 2 * k; ++j) {
            if (!(params.target & (std::uint64_t{1} << j)))
                circ.x(sq0 + j);
            literals.push_back(sq0 + j);
        }
        phaseOnAllOnes(circ, literals, ladder);
        for (std::int32_t j = 0; j < 2 * k; ++j)
            if (!(params.target & (std::uint64_t{1} << j)))
                circ.x(sq0 + j);

        appendReversed(circ, sq_begin, sq_end); // unsquare

        // Diffusion over x: reflect about the uniform superposition.
        for (std::int32_t i = 0; i < k; ++i)
            circ.h(x0 + i);
        for (std::int32_t i = 0; i < k; ++i)
            circ.x(x0 + i);
        phaseOnAllOnes(circ, spanOf(x0, k), ladder);
        for (std::int32_t i = 0; i < k; ++i)
            circ.x(x0 + i);
        for (std::int32_t i = 0; i < k; ++i)
            circ.h(x0 + i);
    }

    for (std::int32_t i = 0; i < k; ++i)
        circ.measZ(x0 + i);
    return circ;
}

} // namespace lsqca
