#include "synth/benchmarks.h"

#include "common/error.h"
#include "synth/arith.h"

namespace lsqca {

Circuit
makeMultiplier(const MultiplierParams &params)
{
    const std::int32_t wa = params.widthA;
    const std::int32_t wb = params.widthB;
    LSQCA_REQUIRE(wa >= 1 && wb >= 1, "multiplier widths must be positive");
    Circuit circ;
    const QubitId a0 = circ.addRegister("a", wa);
    const QubitId b0 = circ.addRegister("b", wb);
    const QubitId p0 = circ.addRegister("product", wa + wb);
    const QubitId c0 = circ.addRegister("carry", wa + 1);

    const QubitSpan a = spanOf(a0, wa);
    const QubitSpan carry = spanOf(c0, wa + 1);
    // Schoolbook shift-add: product += (a << i) when b_i is set. The
    // lowest-bit-first iteration produces the sequential reference
    // pattern Sec. III-B observes for integer arithmetic.
    for (std::int32_t i = 0; i < wb; ++i)
        rippleAddControlled(circ, b0 + i, a, spanOf(p0 + i, wa + 1),
                            carry);
    return circ;
}

} // namespace lsqca
