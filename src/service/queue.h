#ifndef LSQCA_SERVICE_QUEUE_H
#define LSQCA_SERVICE_QUEUE_H

/**
 * @file
 * Persistent campaign state for the sweep orchestration service.
 *
 * A campaign is one sweep spec fanned across `N` shard tasks; its
 * whole lifecycle lives in a single on-disk document, `queue.json`
 * (schema `lsqca-queue-v1`), written atomically after every state
 * transition. That file is the source of truth: an orchestrator that
 * crashes — or is killed mid-dispatch — resumes exactly where it
 * stopped (`lsqca resume`), with attempt counts intact, because every
 * spawn is recorded *before* the worker starts.
 *
 * Task life cycle:
 *
 *     pending -> running -> done
 *        ^          |
 *        +----------+  (crash / timeout / straggler kill,
 *                       while attempts < max_attempts)
 *        |
 *      failed          (attempt budget exhausted)
 *
 * `attempts` counts spawns, so "attempt counts persist across
 * orchestrator restart" falls out of the write-before-spawn rule
 * rather than any recovery logic.
 *
 * Campaigns over a sampled spec (docs/SAMPLING.md) may append
 * *derived* escalation tasks after the base shards: when a finished
 * shard's BENCH entries breach the spec's `target_ci`, the
 * orchestrator queues an exact rerun of the same slice (`escalated:
 * true`, the exact slice's fingerprint, worker flag `--force-exact`).
 * Derived tasks live past `shard_count` in the task array, reuse the
 * base shard's index, and survive resume like any other task; the
 * merge prefers their output over the sampled shard's.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace lsqca::service {

/** Queue document schema identifier. */
inline constexpr const char *kQueueSchema = "lsqca-queue-v1";

enum class TaskStatus : std::uint8_t
{
    Pending,
    Running,
    Done,
    Failed,
};

/** "pending" / "running" / "done" / "failed". */
const char *taskStatusName(TaskStatus status);

/** Inverse of taskStatusName. @throws ConfigError. */
TaskStatus taskStatusFromName(const std::string &name);

/** One shard of the campaign's sweep. */
struct ShardTask
{
    /** Shard index in [0, shard_count). */
    std::int32_t index = 0;
    /** Content fingerprint of the slice (the result-cache key). */
    std::string fingerprint;
    TaskStatus status = TaskStatus::Pending;
    /** Worker spawns so far (recorded before each spawn). */
    std::int32_t attempts = 0;
    /** Wall seconds of the successful attempt (0 until done). */
    double wallSeconds = 0.0;
    /** Satisfied from the result cache, no worker spawned. */
    bool cached = false;
    /** Shard BENCH path relative to the state dir ("" until done). */
    std::string output;
    /** Last failure, e.g. "signal 9 (straggler)" ("" when none). */
    std::string lastError;
    /**
     * Estimator mode the task's worker runs under ("" = exact, kept
     * implicit so pre-estimator queue documents round-trip
     * byte-identically). Base tasks of a sampled campaign carry
     * "sampled"; escalated reruns leave it "" (they force exact).
     */
    std::string mode;
    /**
     * A derived CI-escalation task: an exact rerun of base shard
     * `index`, appended past shard_count (docs/SAMPLING.md).
     */
    bool escalated = false;
    /**
     * Job-granularity cache split the last cache pass predicted for
     * this slice: jobs served from the job cache vs jobs its worker
     * must simulate (docs/SERVICE.md). Both 0 for shard-level hits
     * and cache-off campaigns — and omitted from the JSON then, so
     * older queue documents round-trip byte-identically.
     */
    std::int32_t jobsCached = 0;
    std::int32_t jobsComputed = 0;
};

/** The whole campaign: identity, policy that affects bytes, tasks. */
struct QueueState
{
    /** Sweep name; the merged artifact is BENCH_<campaign>.json. */
    std::string campaign;
    /** Spec file the workers re-load (resume re-fingerprints it). */
    std::string specPath;
    std::int32_t shardCount = 1;
    /** Workers run --no-timing (part of the cache key). */
    bool noTiming = false;
    /** Spawn budget per shard before it is marked failed. */
    std::int32_t maxAttempts = 3;
    /**
     * One task per shard in index order, then any derived escalation
     * tasks (escalated == true) appended in the order they were
     * queued.
     */
    std::vector<ShardTask> tasks;

    /** Strict lsqca-queue-v1 parse. @throws ConfigError. */
    static QueueState fromJson(const Json &doc);

    Json toJson() const;

    /** fromJson(Json::load(path)) with the path in errors. */
    static QueueState load(const std::string &path);

    /** Atomic write (tmp + rename) — crash-safe persistence. */
    void save(const std::string &path) const;

    std::size_t countWithStatus(TaskStatus status) const;

    /** Derived escalation tasks appended so far. */
    std::size_t escalationCount() const
    {
        return tasks.size() - static_cast<std::size_t>(shardCount);
    }

    /**
     * The derived escalation task rerunning base shard @p index
     * (nullptr when that shard was never escalated).
     */
    const ShardTask *escalationFor(std::int32_t index) const;

    bool allDone() const
    {
        return countWithStatus(TaskStatus::Done) == tasks.size();
    }

    /**
     * Recovery after an orchestrator death: tasks left "running" had
     * their worker orphaned or killed, so they go back to pending —
     * attempts stay, because the spawn already happened. Returns how
     * many tasks were reset.
     */
    std::size_t resetRunning();
};

} // namespace lsqca::service

#endif // LSQCA_SERVICE_QUEUE_H
