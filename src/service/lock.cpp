#include "service/lock.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/error.h"
#include "common/fs.h"

namespace lsqca::service {

StateLock::~StateLock()
{
    release();
}

StateLock::StateLock(StateLock &&other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_))
{
    other.fd_ = -1;
    other.path_.clear();
}

StateLock &
StateLock::operator=(StateLock &&other) noexcept
{
    if (this != &other) {
        release();
        fd_ = other.fd_;
        path_ = std::move(other.path_);
        other.fd_ = -1;
        other.path_.clear();
    }
    return *this;
}

std::string
StateLock::pathFor(const std::string &dir)
{
    return dir + "/lock";
}

StateLock
StateLock::acquire(const std::string &dir)
{
    fsutil::makeDirs(dir);
    const std::string path = pathFor(dir);
    const int fd =
        ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    LSQCA_REQUIRE(fd >= 0, "cannot open lockfile " + path + ": " +
                               std::strerror(errno));
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        const bool busy = errno == EWOULDBLOCK;
        const std::string reason = std::strerror(errno);
        // The holder wrote its pid after locking; best effort only —
        // the flock itself is what keeps us out.
        std::string owner;
        char buffer[32] = {};
        const ssize_t n = ::read(fd, buffer, sizeof(buffer) - 1);
        if (n > 0) {
            owner.assign(buffer, static_cast<std::size_t>(n));
            while (!owner.empty() &&
                   (owner.back() == '\n' || owner.back() == ' '))
                owner.pop_back();
        }
        ::close(fd);
        if (busy)
            throw ConfigError(
                dir + " is locked by a live orchestrator or daemon" +
                (owner.empty() ? std::string()
                               : " (pid " + owner + ")") +
                "; stop it first, or pick another state dir");
        throw ConfigError("cannot lock " + path + ": " + reason);
    }
    // Ours now. Stale pids from dead holders are harmless: their
    // flock evaporated with the process, which is why we got here.
    const std::string pid = std::to_string(::getpid()) + "\n";
    if (::ftruncate(fd, 0) == 0) {
        ssize_t written = 0;
        while (written < static_cast<ssize_t>(pid.size())) {
            const ssize_t n =
                ::write(fd, pid.data() + written,
                        pid.size() - static_cast<std::size_t>(written));
            if (n <= 0)
                break;
            written += n;
        }
    }
    StateLock lock;
    lock.fd_ = fd;
    lock.path_ = path;
    return lock;
}

void
StateLock::release()
{
    if (fd_ < 0)
        return;
    // flock releases on close; the file itself stays (a later
    // acquire reuses it), so release order can never unlink a path
    // a new holder just locked.
    ::close(fd_);
    fd_ = -1;
    path_.clear();
}

} // namespace lsqca::service
