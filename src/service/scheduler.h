#ifndef LSQCA_SERVICE_SCHEDULER_H
#define LSQCA_SERVICE_SCHEDULER_H

/**
 * @file
 * The reusable campaign engine underneath both drivers of a sweep:
 * the one-shot `Orchestrator` (one campaign, drive until drained) and
 * the multi-tenant daemon (`lsqca serve`, many campaigns sharing one
 * worker pool). A `Scheduler` owns exactly one campaign — its queue,
 * journal, metrics, result cache, and live worker processes — and
 * exposes the orchestrator's former inner loop as separate steps so a
 * caller can interleave several campaigns' steps on its own cadence:
 *
 *     cachePass();                 // satisfy shards from the cache
 *     while (!drained()) {
 *         dispatchOne();           // spawn one pending shard
 *         pollWorkers();           // reap exits, kill stragglers
 *     }
 *     if (maybeEscalate())         // sampled CI breaches -> exact
 *         ... drain again ...
 *     finish(false);               // merge + `done` event + metrics
 *
 * Policy (retry funnel, straggler deadlines, layered shard/job cache,
 * CI escalation, byte-identical merge) is unchanged from the
 * pre-extraction Orchestrator and stays pinned by tests/service: the
 * one-shot path must journal, count, and merge byte-for-byte exactly
 * as before. docs/SERVICE.md describes the policy; docs/DAEMON.md
 * describes the multi-tenant caller.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "api/spec.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/subprocess.h"
#include "service/cache.h"
#include "service/journal.h"
#include "service/queue.h"

namespace lsqca::service {

/** What one submit()/resume() call (or daemon tenancy) did. */
struct CampaignReport
{
    /** Every shard done and the merged artifact written. */
    bool complete = false;
    /** Stopped early (stopAfterDispatches hook or a shutdown). */
    bool interrupted = false;
    /** Shutdown signal that stopped the drive (0 = none). */
    int shutdownSignal = 0;
    std::int32_t spawned = 0;
    std::int32_t cacheHits = 0;
    /** Crash/timeout/straggler attempts that were re-queued. */
    std::int32_t retries = 0;
    std::int32_t stragglersKilled = 0;
    /** Derived exact reruns queued by CI escalation this call. */
    std::int32_t escalations = 0;
    /**
     * Jobs served from the job-granularity cache at queue time (both
     * fully assembled shards and partial splices a worker completed).
     */
    std::int64_t jobCacheHits = 0;
    /** Jobs this call's workers actually simulated. */
    std::int64_t jobsComputed = 0;
    /** Merged BENCH path ("" unless complete). */
    std::string mergedPath;
    std::string queuePath;
    /** Campaign journal path ("" when journaling is disabled). */
    std::string journalPath;
    /** Metrics snapshot path ("" when journaling is disabled). */
    std::string metricsPath;
    /** The drive's final metrics snapshot (same doc as metricsPath). */
    Json metrics;
    /** Final queue snapshot (matches the file on disk). */
    QueueState queue;
};

/** max(factor * median, floor) — exposed for unit tests. */
double stragglerDeadline(double medianSeconds, double factor,
                         double minSeconds);

/** `<stateDir>/queue.json`. */
std::string queuePathFor(const std::string &stateDir);

/** `BENCH_<campaign>[.shard<i>of<N>].json` — worker output name. */
std::string shardFileName(const std::string &campaign,
                          std::int32_t index, std::int32_t count);

/** A campaign admitted for driving: queue plus its expanded spec. */
struct CampaignAdmission
{
    QueueState state;
    api::SweepSpec spec;
    std::vector<api::ExpandedJob> jobs;
    /** Journal leg this admission opens: "submit" or "resume". */
    const char *leg = "submit";
};

/**
 * Create a fresh campaign in @p stateDir from @p specPath and save
 * its queue.json. @p shards <= 0 means min(jobs, max(4*workers, 1)).
 * @throws ConfigError when the dir already holds a campaign.
 */
CampaignAdmission admitCampaign(const std::string &specPath,
                                const std::string &stateDir,
                                std::int32_t shards,
                                std::int32_t workers, bool noTiming,
                                std::int32_t maxAttempts);

/**
 * Reopen @p stateDir's campaign: re-verify every queued fingerprint
 * against the spec file as it exists now (refusing drift), requeue
 * tasks stranded running by a dead driver, and — when @p maxAttempts
 * exceeds the queue's — reopen failed shards under the raised cap.
 * @throws ConfigError when no campaign exists or the spec drifted.
 */
CampaignAdmission reopenCampaign(const std::string &stateDir,
                                 std::int32_t maxAttempts);

/** Per-campaign knobs the engine needs (OrchestratorOptions minus
 *  the one-shot pacing: workers cap, poll interval, stop hook). */
struct SchedulerOptions
{
    /** Campaign directory (required). */
    std::string stateDir;
    /** Result cache dir; "" disables caching entirely. */
    std::string cacheDir;
    /** Where the merged BENCH document lands ("" = stateDir). */
    std::string outDir;
    /** `--threads` per worker (processes are the parallelism unit). */
    std::int32_t threadsPerWorker = 1;
    /** Worker-pool size — journal leg metadata and gauge only; the
     *  caller enforces the actual cap across its schedulers. */
    std::int32_t workers = 2;
    /** Per-attempt hard wall limit, passed as --timeout-seconds. */
    double timeoutSeconds = 0.0;
    /** Straggler deadline as a multiple of the median done wall. */
    double stragglerFactor = 4.0;
    /** Straggler deadline floor (protects millisecond shards). */
    double minStragglerSeconds = 10.0;
    /** Pass --seed-check <fingerprint> to every worker. */
    bool seedCheck = true;
    /** Worker binary (required; drivers pass the CLI itself). */
    std::string workerExe;
    /** Append the campaign journal (events.jsonl) while driving. */
    bool journal = true;
    /** Journal time base (see OrchestratorOptions::clock). */
    JournalClock clock = JournalClock::Monotonic;
    /** Extra argv appended to every worker invocation (test hook). */
    std::vector<std::string> extraWorkerArgs;
    /** Extra argv appended only to a shard's first attempt. */
    std::vector<std::string> firstAttemptExtraArgs;
};

/**
 * Drives one admitted campaign, one step at a time. Owns the live
 * worker processes it spawned; destroying a Scheduler with workers
 * still running kills and reaps them (the queue keeps those tasks
 * marked running, so a resume leg re-queues them — same contract as
 * a dead orchestrator).
 */
class Scheduler
{
  public:
    /**
     * Take ownership of an admitted campaign, open its journal
     * (recording the admission's submit/resume leg event), and start
     * the metrics registry. Does not touch the cache yet — callers
     * run cachePass() first, as the orchestrator always has.
     */
    Scheduler(SchedulerOptions options, CampaignAdmission admission);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Satisfy pending shards from the layered cache: whole-shard
     * fingerprint hits first, then in-process assembly of slices
     * whose jobs are all individually cached. Saves the queue.
     */
    void cachePass();

    /**
     * Spawn the next pending shard (attempt recorded in queue.json
     * *before* the spawn, so a dead driver can never under-count).
     * Returns the dispatched shard index, or -1 when nothing is
     * pending. The caller owns the pool cap: never call with
     * runningCount() at its worker budget.
     */
    std::int32_t dispatchOne();

    /** Reap finished workers; kill stragglers past their deadline. */
    void pollWorkers();

    /**
     * With the queue drained: inspect sampled shards for target_ci
     * breaches and queue derived exact reruns. True when new tasks
     * were added (run cachePass() and keep dispatching).
     */
    bool maybeEscalate();

    /** SIGKILL and reap every live worker; their tasks stay marked
     *  running in the saved queue (a resume leg re-queues them). */
    void killWorkers();

    /**
     * Append the journal `shutdown` event (signal number, live-task
     * count) after killWorkers() — the orderly-interruption marker
     * `lsqca status` and the daemon protocol surface.
     */
    void recordShutdown(int signal);

    /**
     * Close out the drive: merge in shard order when every task is
     * done (byte-identical to a direct unsharded run under
     * --no-timing), append the terminal `done` event, snapshot
     * metrics, and return the final report.
     */
    CampaignReport finish(bool interrupted);

    /** Pending tasks (dispatchOne would find work). */
    std::size_t pendingCount() const;
    std::size_t runningCount() const { return running_.size(); }
    /** No pending and no running tasks (failed ones may remain). */
    bool drained() const;

    const QueueState &state() const { return state_; }
    const CampaignReport &progress() const { return report_; }
    const SchedulerOptions &options() const { return options_; }

  private:
    struct RunningWorker
    {
        std::size_t task = 0;
        proc::Pid pid = 0;
        double startSeconds = 0.0;
        std::string logPath;
        /** Worker slot (1..workers) — the journal/trace track. */
        std::int32_t slot = 0;
    };

    const std::string &taskDir(const ShardTask &task) const;
    std::string taskOutput(const ShardTask &task,
                           const std::string &name) const;
    const std::vector<std::string> &exactPrints();
    void fail(ShardTask &task, const std::string &reason,
              const std::string &cause);
    void reapWorker(const RunningWorker &worker);
    std::int32_t freeSlot() const;
    void saveQueue();

    SchedulerOptions options_;
    QueueState state_;
    api::SweepSpec spec_;
    std::vector<api::ExpandedJob> jobs_;
    Journal journal_;
    metrics::Registry metrics_;
    CampaignReport report_;

    std::string shardsDir_;
    std::string exactDir_;
    std::string logsDir_;
    ResultCache cache_;

    std::vector<std::string> jobPrints_;
    std::vector<std::string> exactJobPrints_;
    /** Stale job indices the cache pass predicted per task slot. */
    std::map<std::size_t, std::vector<std::size_t>> staleByTask_;

    std::vector<RunningWorker> running_;
    std::vector<double> doneWalls_;
};

} // namespace lsqca::service

#endif // LSQCA_SERVICE_SCHEDULER_H
