#include "service/queue.h"

#include "api/json_reader.h"
#include "common/error.h"
#include "common/fs.h"
#include "common/hash.h"
#include "estimate/options.h"

namespace lsqca::service {

const char *
taskStatusName(TaskStatus status)
{
    switch (status) {
    case TaskStatus::Pending:
        return "pending";
    case TaskStatus::Running:
        return "running";
    case TaskStatus::Done:
        return "done";
    case TaskStatus::Failed:
        return "failed";
    }
    throw InternalError("unhandled TaskStatus");
}

TaskStatus
taskStatusFromName(const std::string &name)
{
    for (const TaskStatus status :
         {TaskStatus::Pending, TaskStatus::Running, TaskStatus::Done,
          TaskStatus::Failed}) {
        if (name == taskStatusName(status))
            return status;
    }
    throw ConfigError("unknown task status \"" + name +
                      "\" (pending|running|done|failed)");
}

QueueState
QueueState::fromJson(const Json &doc)
{
    QueueState state;
    api::ObjectReader reader(doc, "queue");
    const Json &schema = reader.require("schema");
    LSQCA_REQUIRE(schema.isString() &&
                      schema.asString() == kQueueSchema,
                  std::string("queue.schema must be \"") + kQueueSchema +
                      "\"");
    reader.readString("campaign", state.campaign);
    LSQCA_REQUIRE(!state.campaign.empty(),
                  "queue.campaign must be set");
    reader.readString("spec_path", state.specPath);
    LSQCA_REQUIRE(!state.specPath.empty(),
                  "queue.spec_path must be set");
    reader.readInt32("shard_count", state.shardCount, 1, 1 << 20);
    reader.readBool("no_timing", state.noTiming);
    reader.readInt32("max_attempts", state.maxAttempts, 1, 1000);
    const Json &tasks = reader.require("tasks");
    LSQCA_REQUIRE(tasks.isArray(), "queue.tasks must be an array");
    LSQCA_REQUIRE(tasks.size() >=
                      static_cast<std::size_t>(state.shardCount),
                  "queue.tasks must hold at least one task per shard");
    for (const Json &taskDoc : tasks.items()) {
        api::ObjectReader taskReader(taskDoc, "queue task");
        ShardTask task;
        taskReader.readInt32("index", task.index, 0,
                             state.shardCount - 1);
        taskReader.readString("fingerprint", task.fingerprint);
        LSQCA_REQUIRE(isFingerprint(task.fingerprint),
                      "queue task fingerprint must be 16 hex digits");
        std::string status;
        taskReader.readString("status", status);
        task.status = taskStatusFromName(status);
        taskReader.readInt32("attempts", task.attempts, 0, 1000000);
        taskReader.readDouble("wall_seconds", task.wallSeconds, 0.0,
                              1e12);
        taskReader.readBool("cached", task.cached);
        taskReader.readString("output", task.output);
        taskReader.readString("last_error", task.lastError);
        taskReader.readString("mode", task.mode);
        if (!task.mode.empty())
            estimate::estimatorModeFromName(task.mode);
        taskReader.readBool("escalated", task.escalated);
        taskReader.readInt32("jobs_cached", task.jobsCached, 0,
                             1 << 30);
        taskReader.readInt32("jobs_computed", task.jobsComputed, 0,
                             1 << 30);
        taskReader.finish();
        const auto position =
            static_cast<std::int32_t>(state.tasks.size());
        if (position < state.shardCount) {
            LSQCA_REQUIRE(!task.escalated && task.index == position,
                          "queue tasks must be ordered by shard index "
                          "(derived escalation tasks come after the "
                          "base shards)");
        } else {
            LSQCA_REQUIRE(task.escalated,
                          "queue tasks past shard_count must be "
                          "derived escalation tasks");
            LSQCA_REQUIRE(state.escalationFor(task.index) == nullptr,
                          "duplicate escalation task for shard " +
                              std::to_string(task.index));
        }
        state.tasks.push_back(std::move(task));
    }
    reader.finish();
    return state;
}

Json
QueueState::toJson() const
{
    Json doc = Json::object();
    doc.set("schema", kQueueSchema);
    doc.set("campaign", campaign);
    doc.set("spec_path", specPath);
    doc.set("shard_count", shardCount);
    doc.set("no_timing", noTiming);
    doc.set("max_attempts", maxAttempts);
    Json tasksDoc = Json::array();
    for (const ShardTask &task : tasks) {
        Json taskDoc = Json::object();
        taskDoc.set("index", task.index);
        taskDoc.set("fingerprint", task.fingerprint);
        taskDoc.set("status", taskStatusName(task.status));
        taskDoc.set("attempts", task.attempts);
        taskDoc.set("wall_seconds", task.wallSeconds);
        taskDoc.set("cached", task.cached);
        taskDoc.set("output", task.output);
        taskDoc.set("last_error", task.lastError);
        // Emitted only when set, so pre-estimator queue documents
        // round-trip byte-identically.
        if (!task.mode.empty())
            taskDoc.set("mode", task.mode);
        if (task.escalated)
            taskDoc.set("escalated", true);
        // Same omit-when-default rule: queue documents from before the
        // job-granularity cache round-trip byte-identically.
        if (task.jobsCached > 0)
            taskDoc.set("jobs_cached", task.jobsCached);
        if (task.jobsComputed > 0)
            taskDoc.set("jobs_computed", task.jobsComputed);
        tasksDoc.push(std::move(taskDoc));
    }
    doc.set("tasks", std::move(tasksDoc));
    return doc;
}

QueueState
QueueState::load(const std::string &path)
{
    const Json doc = Json::load(path);
    try {
        return fromJson(doc);
    } catch (const ConfigError &e) {
        throw ConfigError(path + ": " + e.what());
    }
}

void
QueueState::save(const std::string &path) const
{
    fsutil::writeFileAtomic(path, toJson().dump());
}

std::size_t
QueueState::countWithStatus(TaskStatus status) const
{
    std::size_t count = 0;
    for (const ShardTask &task : tasks)
        if (task.status == status)
            ++count;
    return count;
}

const ShardTask *
QueueState::escalationFor(std::int32_t index) const
{
    for (std::size_t t = static_cast<std::size_t>(shardCount);
         t < tasks.size(); ++t)
        if (tasks[t].index == index)
            return &tasks[t];
    return nullptr;
}

std::size_t
QueueState::resetRunning()
{
    std::size_t reset = 0;
    for (ShardTask &task : tasks) {
        if (task.status != TaskStatus::Running)
            continue;
        task.status = TaskStatus::Pending;
        task.lastError = "orchestrator stopped mid-attempt";
        ++reset;
    }
    return reset;
}

} // namespace lsqca::service
