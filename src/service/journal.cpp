#include "service/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "common/fs.h"

namespace lsqca::service {
namespace {

/** Unix-epoch seconds, rounded to whole microseconds. */
double
wallNow()
{
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(now);
    return static_cast<double>(us.count()) / 1e6;
}

/** Round to whole microseconds so dumps are short and stable. */
double
roundMicros(double seconds)
{
    return std::round(seconds * 1e6) / 1e6;
}

} // namespace

const char *
journalClockName(JournalClock clock)
{
    return clock == JournalClock::Logical ? "logical" : "monotonic";
}

JournalClock
journalClockFromName(const std::string &name)
{
    if (name == "monotonic")
        return JournalClock::Monotonic;
    if (name == "logical")
        return JournalClock::Logical;
    throw ConfigError("unknown journal clock '" + name +
                      "' (expected monotonic or logical)");
}

std::string
Journal::pathFor(const std::string &stateDir)
{
    return stateDir + "/events.jsonl";
}

Journal::~Journal() { close(); }

Journal::Journal(Journal &&other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      clock_(other.clock_),
      seq_(other.seq_),
      wall0_(other.wall0_)
{
}

Journal &
Journal::operator=(Journal &&other) noexcept
{
    if (this != &other) {
        close();
        path_ = std::move(other.path_);
        fd_ = std::exchange(other.fd_, -1);
        clock_ = other.clock_;
        seq_ = other.seq_;
        wall0_ = other.wall0_;
    }
    return *this;
}

void
Journal::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Journal
Journal::open(const std::string &path, JournalClock clock)
{
    const std::size_t slash = path.rfind('/');
    if (slash != std::string::npos)
        fsutil::makeDirs(path.substr(0, slash));

    Journal journal;
    journal.path_ = path;
    journal.clock_ = clock;

    bool torn = false;
    bool fresh = true;

    struct ::stat st = {};
    const bool exists = ::stat(path.c_str(), &st) == 0 && st.st_size > 0;
    if (exists) {
        // Recover the tail state of the existing journal: the last
        // complete line fixes the next sequence number, the header
        // fixes the campaign's time base. A torn final line (killed
        // writer) is cut away before appending resumes.
        const std::string text = fsutil::readFile(path);
        std::size_t keep = text.size();
        if (text.back() != '\n') {
            torn = true;
            const std::size_t nl = text.rfind('\n');
            keep = nl == std::string::npos ? 0 : nl + 1;
        }
        std::size_t lastStart = std::string::npos;
        if (keep > 0) {
            const std::size_t nl = text.rfind('\n', keep - 2);
            lastStart = nl == std::string::npos ? 0 : nl + 1;
        }
        if (lastStart != std::string::npos) {
            fresh = false;
            const std::size_t firstNl = text.find('\n');
            Json header, last;
            try {
                header = Json::parse(text.substr(0, firstNl));
                last = Json::parse(
                    text.substr(lastStart, keep - 1 - lastStart));
            } catch (const ConfigError &e) {
                throw ConfigError("unreadable journal " + path + ": " +
                                  e.what());
            }
            LSQCA_REQUIRE(header.isObject() && header.contains("event") &&
                              header.at("event").asString() == "journal",
                          path + " does not start with a journal header");
            const std::string schema = header.at("schema").asString();
            LSQCA_REQUIRE(schema == kEventsSchema,
                          path + " has unsupported schema " + schema);
            const JournalClock recorded =
                journalClockFromName(header.at("clock").asString());
            LSQCA_REQUIRE(recorded == clock,
                          path + " was written with --clock " +
                              journalClockName(recorded) +
                              "; resume with the same clock");
            journal.seq_ = last.at("seq").asInt();
            if (const Json *wall0 = header.find("wall0"))
                journal.wall0_ = wall0->asDouble();
        }
        if (torn && keep < text.size()) {
            LSQCA_REQUIRE(
                ::truncate(path.c_str(),
                           static_cast<::off_t>(keep)) == 0,
                "cannot repair torn journal " + path + ": " +
                    std::strerror(errno));
        }
    }

    // O_APPEND makes every record() a single atomic append, so
    // concurrent `lsqca status` readers never observe an interleaved
    // line and a crash can only tear the final one.
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    LSQCA_REQUIRE(fd >= 0, "cannot open journal " + path + ": " +
                               std::strerror(errno));
    journal.fd_ = fd;

    if (fresh) {
        Json header = Json::object();
        header.set("schema", kEventsSchema);
        header.set("clock", journalClockName(clock));
        if (clock == JournalClock::Monotonic) {
            journal.wall0_ = wallNow();
            header.set("wall0", journal.wall0_);
        }
        journal.record("journal", header);
    }
    if (torn)
        journal.record("truncated", Json::object());
    return journal;
}

void
Journal::record(const std::string &kind, const Json &fields)
{
    if (fd_ < 0)
        return;
    ++seq_;
    Json line = Json::object();
    line.set("event", kind);
    line.set("seq", seq_);
    if (clock_ == JournalClock::Logical) {
        line.set("t", seq_);
    } else {
        const double wall = wallNow();
        line.set("t", roundMicros(wall - wall0_));
        line.set("wall", wall);
    }
    if (fields.isObject())
        for (const auto &[key, value] : fields.members())
            line.set(key, value);
    const std::string text = line.dump(0) + '\n';
    std::size_t done = 0;
    while (done < text.size()) {
        const ::ssize_t n =
            ::write(fd_, text.data() + done, text.size() - done);
        if (n < 0 && errno == EINTR)
            continue;
        LSQCA_REQUIRE(n > 0, "cannot append to journal " + path_ + ": " +
                                 std::strerror(errno));
        done += static_cast<std::size_t>(n);
    }
}

} // namespace lsqca::service
