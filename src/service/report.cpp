#include "service/report.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/jsonl.h"
#include "common/table.h"
#include "service/journal.h"

namespace lsqca::service {
namespace {

std::int32_t
asInt32(const Json &value)
{
    return static_cast<std::int32_t>(value.asInt());
}

/** Exit outcome tag for a closed span awaiting its verdict event. */
std::string
exitOutcome(const Json &event)
{
    if (const Json *ok = event.find("ok"); ok && ok->asBool())
        return "exit:ok";
    if (const Json *killed = event.find("killed");
        killed && killed->asBool())
        return "killed";
    if (const Json *code = event.find("code"))
        return "exit:" + std::to_string(code->asInt());
    if (const Json *sig = event.find("signal"))
        return "signal:" + std::to_string(sig->asInt());
    return "exit";
}

} // namespace

double
CampaignStats::busySeconds(std::int32_t worker) const
{
    double busy = 0.0;
    for (const AttemptSpan &span : spans)
        if (span.worker == worker)
            busy += span.end - span.start;
    return busy;
}

std::vector<std::int32_t>
CampaignStats::workers() const
{
    std::set<std::int32_t> slots;
    for (const AttemptSpan &span : spans)
        slots.insert(span.worker);
    return {slots.begin(), slots.end()};
}

CampaignStats
CampaignStats::fromEvents(const std::vector<Json> &lines)
{
    CampaignStats stats;
    stats.events = static_cast<std::int64_t>(lines.size());
    LSQCA_REQUIRE(!lines.empty(), "empty campaign journal");
    {
        const Json &header = lines.front();
        LSQCA_REQUIRE(header.isObject() && header.contains("event") &&
                          header.at("event").asString() == "journal",
                      "campaign journal does not start with a header "
                      "event");
        const std::string schema = header.at("schema").asString();
        LSQCA_REQUIRE(schema == kEventsSchema,
                      "unsupported journal schema " + schema);
        stats.clock = header.at("clock").asString();
        if (const Json *wall0 = header.find("wall0"))
            stats.wall0 = wall0->asDouble();
    }
    stats.firstT = lines.front().at("t").asDouble();

    // Worker slot -> index of its open span; shard -> index of the
    // last span closed by an exit, so the verdict event that follows
    // (task_done / retry / task_failed) can label its outcome.
    std::map<std::int32_t, std::size_t> openByWorker;
    std::map<std::int32_t, std::size_t> lastClosedByShard;
    // Distinct (shard, escalated) tasks that needed a spawn.
    std::set<std::pair<std::int32_t, bool>> spawnedTasks;

    for (const Json &event : lines) {
        LSQCA_REQUIRE(event.isObject() && event.contains("event") &&
                          event.contains("seq") && event.contains("t"),
                      "malformed journal event (missing event/seq/t)");
        const std::string kind = event.at("event").asString();
        const double t = event.at("t").asDouble();
        stats.lastT = t;
        if (const Json *shard = event.find("shard")) {
            const std::int32_t index = asInt32(*shard);
            stats.lastTByShard[index] = t;
            if (const Json *wall = event.find("wall"))
                stats.lastWallByShard[index] = wall->asDouble();
        }

        if (kind == "journal")
            continue;
        if (kind == "truncated") {
            ++stats.truncatedRepairs;
            continue;
        }
        if (kind == "submit" || kind == "resume") {
            ++stats.legs;
            stats.campaign = event.at("campaign").asString();
            if (const Json *spec = event.find("spec"))
                stats.specPath = spec->asString();
            if (const Json *shards = event.find("shards"))
                stats.shardCount = asInt32(*shards);
            if (const Json *attempts = event.find("max_attempts"))
                stats.maxAttempts = asInt32(*attempts);
            // A new leg means the previous one died without a `done`
            // event: close its orphaned spans at the leg boundary.
            for (const auto &[worker, index] : openByWorker)
                stats.spans[index].end =
                    std::max(stats.spans[index].end, t);
            openByWorker.clear();
            continue;
        }
        if (kind == "cache_hit") {
            ++stats.cacheHits;
            stats.instants.emplace_back(
                t, "cache hit shard " +
                       std::to_string(asInt32(event.at("shard"))));
            continue;
        }
        if (kind == "job_cache_hit") {
            ++stats.jobCacheHits;
            continue;
        }
        if (kind == "job_computed") {
            ++stats.jobsComputed;
            continue;
        }
        if (kind == "spawn") {
            AttemptSpan span;
            span.worker = asInt32(event.at("worker"));
            span.shard = asInt32(event.at("shard"));
            span.attempt = asInt32(event.at("attempt"));
            if (const Json *esc = event.find("escalated"))
                span.escalated = esc->asBool();
            span.start = span.end = t;
            span.outcome = "interrupted";
            ++stats.spawned;
            spawnedTasks.insert({span.shard, span.escalated});
            openByWorker[span.worker] = stats.spans.size();
            stats.spans.push_back(std::move(span));
            continue;
        }
        if (kind == "exit") {
            const std::int32_t worker = asInt32(event.at("worker"));
            const auto open = openByWorker.find(worker);
            if (open != openByWorker.end()) {
                AttemptSpan &span = stats.spans[open->second];
                span.end = t;
                span.outcome = exitOutcome(event);
                lastClosedByShard[span.shard] = open->second;
                openByWorker.erase(open);
            }
            continue;
        }
        if (kind == "task_done" || kind == "retry" ||
            kind == "task_failed") {
            const std::int32_t shard = asInt32(event.at("shard"));
            std::string outcome = "done";
            if (kind == "task_done") {
                ++stats.tasksDone;
            } else {
                const std::string cause =
                    event.at("cause").asString();
                if (kind == "retry") {
                    ++stats.retries;
                    ++stats.retriesByCause[cause];
                    outcome = "retry:" + cause;
                    stats.instants.emplace_back(
                        t, "retry shard " + std::to_string(shard) +
                               " (" + cause + ")");
                } else {
                    ++stats.tasksFailed;
                    ++stats.retriesByCause[cause];
                    outcome = "failed:" + cause;
                }
                if (cause == "straggler")
                    ++stats.stragglersKilled;
            }
            const auto closed = lastClosedByShard.find(shard);
            if (closed != lastClosedByShard.end())
                stats.spans[closed->second].outcome = outcome;
            continue;
        }
        if (kind == "escalation") {
            EscalationRecord record;
            record.shard = asInt32(event.at("shard"));
            record.entry = event.at("entry").asString();
            record.ci = event.at("ci").asDouble();
            record.targetCi = event.at("target_ci").asDouble();
            stats.instants.emplace_back(
                t, "escalate shard " + std::to_string(record.shard));
            stats.escalations.push_back(std::move(record));
            continue;
        }
        if (kind == "merge") {
            stats.mergedPath = event.at("path").asString();
            stats.bytesMerged = event.at("bytes").asInt();
            stats.instants.emplace_back(t, "merge");
            continue;
        }
        if (kind == "done") {
            stats.complete = event.at("complete").asBool();
            stats.interrupted = event.at("interrupted").asBool();
            continue;
        }
        // Unknown kinds are tolerated (forward compatibility within
        // the schema major version).
    }

    // Spans still open at the end of the stream (interrupted final
    // leg, or a live campaign) extend to the last event.
    for (const auto &[worker, index] : openByWorker)
        stats.spans[index].end =
            std::max(stats.spans[index].end, stats.lastT);
    stats.cacheMisses = static_cast<std::int64_t>(spawnedTasks.size());
    return stats;
}

CampaignStats
CampaignStats::fromFile(const std::string &path)
{
    const jsonl::ReadResult read = jsonl::readLines(path);
    CampaignStats stats = fromEvents(read.lines);
    stats.journalPath = path;
    stats.truncatedTail = read.truncatedTail;
    return stats;
}

void
renderReport(const CampaignStats &stats, std::ostream &out)
{
    const bool logical = stats.clock == "logical";
    // Under the logical clock, "time" is the event sequence number —
    // still a faithful ordering, just not seconds.
    const std::string unit = logical ? "ev" : "s";

    out << "campaign " << stats.campaign << " — " << stats.shardCount
        << " shards, clock " << stats.clock << "\n";
    out << "status: "
        << (stats.complete
                ? "complete"
                : (stats.interrupted ? "interrupted" : "in progress"))
        << "\n";
    out << "journal: " << stats.events << " events, " << stats.legs
        << (stats.legs == 1 ? " leg" : " legs");
    if (stats.truncatedRepairs > 0)
        out << ", " << stats.truncatedRepairs << " torn tail"
            << (stats.truncatedRepairs == 1 ? "" : "s") << " repaired";
    out << "\n";
    if (stats.truncatedTail)
        out << "warning: journal ends mid-line (a writer died "
               "mid-append or is still running)\n";

    const double span = stats.span();
    double busy = 0.0;
    for (const AttemptSpan &attempt : stats.spans)
        busy += attempt.end - attempt.start;
    const std::vector<std::int32_t> workers = stats.workers();
    const std::int64_t done = stats.tasksDone + stats.cacheHits;

    TextTable breakdown({"measure", "value"});
    breakdown.addRow({"span_" + unit, TextTable::num(span, 3)});
    breakdown.addRow(
        {"worker_busy_" + unit, TextTable::num(busy, 3)});
    if (span > 0.0 && !workers.empty())
        breakdown.addRow(
            {"utilization_pct",
             TextTable::num(100.0 * busy /
                                (span * static_cast<double>(
                                            workers.size())),
                            1)});
    if (span > 0.0)
        breakdown.addRow(
            {"throughput_per_" + unit,
             TextTable::num(static_cast<double>(done) / span, 3)});
    breakdown.addRow({"tasks_done", std::to_string(done)});
    breakdown.addRow(
        {"tasks_failed", std::to_string(stats.tasksFailed)});
    breakdown.addRow({"spawned", std::to_string(stats.spawned)});
    breakdown.addRow({"retries", std::to_string(stats.retries)});
    breakdown.addRow({"stragglers_killed",
                      std::to_string(stats.stragglersKilled)});
    breakdown.addRow(
        {"escalations",
         std::to_string(static_cast<std::int64_t>(
             stats.escalations.size()))});
    out << "\n" << breakdown.render("wall-clock breakdown");

    out << "\ncache: " << stats.cacheHits << " hit"
        << (stats.cacheHits == 1 ? "" : "s") << ", "
        << stats.cacheMisses << " miss"
        << (stats.cacheMisses == 1 ? "" : "es");
    if (stats.cacheHits + stats.cacheMisses > 0)
        out << " (hit rate "
            << TextTable::num(
                   100.0 * static_cast<double>(stats.cacheHits) /
                       static_cast<double>(stats.cacheHits +
                                           stats.cacheMisses),
                   1)
            << "%)";
    out << "\n";

    // Job-granularity line only when the campaign ever touched the
    // job cache, so reports over pre-jobcache journals (and shard-hit
    // campaigns) render byte-identically to before.
    if (stats.jobCacheHits + stats.jobsComputed > 0) {
        out << "jobs: " << stats.jobCacheHits << " from cache, "
            << stats.jobsComputed << " computed (hit rate "
            << TextTable::num(
                   100.0 * static_cast<double>(stats.jobCacheHits) /
                       static_cast<double>(stats.jobCacheHits +
                                           stats.jobsComputed),
                   1)
            << "%)\n";
    }

    if (!stats.retriesByCause.empty()) {
        TextTable causes({"cause", "count"});
        for (const auto &[cause, count] : stats.retriesByCause)
            causes.addRow({cause, std::to_string(count)});
        out << "\n" << causes.render("retry causes");
    }

    if (!stats.escalations.empty()) {
        TextTable table({"shard", "entry", "ci", "target_ci"});
        for (const EscalationRecord &record : stats.escalations)
            table.addRow({std::to_string(record.shard), record.entry,
                          TextTable::num(record.ci, 6),
                          TextTable::num(record.targetCi, 6)});
        out << "\n" << table.render("ci escalations");
    }

    if (!workers.empty()) {
        TextTable table(
            {"worker", "attempts", "busy_" + unit, "util_pct"});
        for (const std::int32_t worker : workers) {
            std::int64_t attempts = 0;
            for (const AttemptSpan &attempt : stats.spans)
                if (attempt.worker == worker)
                    ++attempts;
            const double workerBusy = stats.busySeconds(worker);
            table.addRow(
                {std::to_string(worker), std::to_string(attempts),
                 TextTable::num(workerBusy, 3),
                 span > 0.0
                     ? TextTable::num(100.0 * workerBusy / span, 1)
                     : "-"});
        }
        out << "\n" << table.render("worker utilization");
    }

    if (!stats.mergedPath.empty())
        out << "\nmerged: " << stats.mergedPath << " ("
            << stats.bytesMerged << " bytes)\n";
}

void
writeChromeTrace(const CampaignStats &stats, std::ostream &out)
{
    // chrome://tracing / Perfetto "JSON object format": ts and dur in
    // microseconds; "X" = complete span, "i" = instant, "M" =
    // metadata. tid 0 is the orchestrator, tid w a worker slot.
    const auto us = [](double t) { return t * 1e6; };
    Json events = Json::array();

    const auto meta = [&](std::int32_t tid, const std::string &name) {
        Json event = Json::object();
        event.set("name", "thread_name");
        event.set("ph", "M");
        event.set("pid", 1);
        event.set("tid", tid);
        Json args = Json::object();
        args.set("name", name);
        event.set("args", std::move(args));
        events.push(std::move(event));
    };
    {
        Json event = Json::object();
        event.set("name", "process_name");
        event.set("ph", "M");
        event.set("pid", 1);
        event.set("tid", 0);
        Json args = Json::object();
        args.set("name", "lsqca campaign " + stats.campaign);
        event.set("args", std::move(args));
        events.push(std::move(event));
    }
    meta(0, "orchestrator");
    for (const std::int32_t worker : stats.workers())
        meta(worker, "worker " + std::to_string(worker));

    for (const AttemptSpan &span : stats.spans) {
        Json event = Json::object();
        event.set("name", "shard " + std::to_string(span.shard) +
                              " attempt " +
                              std::to_string(span.attempt));
        event.set("ph", "X");
        event.set("pid", 1);
        event.set("tid", span.worker);
        event.set("ts", us(span.start));
        event.set("dur", us(span.end - span.start));
        Json args = Json::object();
        args.set("shard", span.shard);
        args.set("attempt", span.attempt);
        if (span.escalated)
            args.set("escalated", true);
        args.set("outcome", span.outcome);
        event.set("args", std::move(args));
        events.push(std::move(event));
    }

    const auto instant = [&](double t, const std::string &name) {
        Json event = Json::object();
        event.set("name", name);
        event.set("ph", "i");
        event.set("pid", 1);
        event.set("tid", 0);
        event.set("ts", us(t));
        event.set("s", "p");
        events.push(std::move(event));
    };
    for (const auto &[t, label] : stats.instants)
        instant(t, label);

    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    out << doc.dump(0) << "\n";
}

} // namespace lsqca::service
