#ifndef LSQCA_SERVICE_ORCHESTRATOR_H
#define LSQCA_SERVICE_ORCHESTRATOR_H

/**
 * @file
 * The one-shot sweep orchestration service: turns one `SweepSpec`
 * into a campaign of shard tasks, dispatches them as child `lsqca run
 * --shard i/N` worker processes (up to `workers` at a time), and
 * drives the persistent queue (service/queue.h) until every shard is
 * done — re-queuing crashed, timed-out, and straggling workers with
 * an attempt cap, satisfying shards from the content-addressed result
 * cache (service/cache.h) when their fingerprints are already known,
 * and finishing with the same `mergeBenchReports` the CLI's `merge`
 * uses, so the final `BENCH_<campaign>.json` is byte-identical to a
 * direct unsharded `lsqca run` under --no-timing.
 *
 * The engine itself — dispatch, retry funnel, straggler policy,
 * layered cache, CI escalation, merge — lives in service/scheduler.h
 * and is shared with the multi-tenant daemon (`lsqca serve`,
 * src/daemon/). The Orchestrator contributes what is specific to the
 * one-shot shape: admission from the CLI's flags, the drive loop's
 * pacing (fill the worker pool, poll, sleep), the state-dir lockfile
 * that keeps a second driver out (service/lock.h), and cooperative
 * SIGINT/SIGTERM shutdown (common/shutdown.h) that reaps children,
 * saves the queue, and journals a `shutdown` event so `lsqca resume`
 * continues exactly where the signal struck.
 *
 * State-dir layout:
 *
 *     <state>/queue.json       lsqca-queue-v1 (source of truth)
 *     <state>/lock             flock(2) held while a driver runs
 *     <state>/events.jsonl     lsqca-events-v1 campaign journal
 *                              (service/journal.h; read by `lsqca
 *                              report` and `lsqca status`)
 *     <state>/metrics.json     registry snapshot of the last drive
 *     <state>/shards/BENCH_*   per-shard worker output
 *     <state>/shards/exact/BENCH_*  escalated exact reruns
 *     <state>/logs/shard<i>.attempt<a>.log
 *     <state>/cache/<fp>.json  result cache (override via cacheDir)
 *     <state>/BENCH_<campaign>.json   merged artifact (see outDir)
 */

#include <cstdint>
#include <string>
#include <vector>

#include "api/spec.h"
#include "common/json.h"
#include "service/journal.h"
#include "service/lock.h"
#include "service/queue.h"
#include "service/scheduler.h"

namespace lsqca::service {

struct OrchestratorOptions
{
    /** Campaign directory (required). */
    std::string stateDir;
    /** Result cache dir ("" = <stateDir>/cache). */
    std::string cacheDir;
    /** Disable the result cache entirely. */
    bool useCache = true;
    /** Where the merged BENCH document lands ("" = stateDir). */
    std::string outDir;
    /** Concurrent worker processes. */
    std::int32_t workers = 2;
    /** Shard count; 0 = min(jobs, 4 * workers). */
    std::int32_t shards = 0;
    /** `--threads` per worker (processes are the parallelism unit). */
    std::int32_t threadsPerWorker = 1;
    /** Pass --no-timing to workers (deterministic artifact bytes). */
    bool noTiming = false;
    /** Per-attempt hard wall limit, passed as --timeout-seconds. */
    double timeoutSeconds = 0.0;
    /** Straggler deadline as a multiple of the median done wall. */
    double stragglerFactor = 4.0;
    /** Straggler deadline floor (protects millisecond shards). */
    double minStragglerSeconds = 10.0;
    /** Spawn budget per shard (submit only; 0 = default 3). */
    std::int32_t maxAttempts = 0;
    /** Pass --seed-check <fingerprint> to every worker. */
    bool seedCheck = true;
    /** Worker binary (required; the CLI passes itself). */
    std::string workerExe;
    /** Poll interval while workers run. */
    double pollSeconds = 0.02;
    /** Append the campaign journal (events.jsonl) while driving. */
    bool journal = true;
    /**
     * Journal time base: Monotonic stamps real times; Logical stamps
     * deterministic counters (and drops wall-time payload fields), so
     * reruns of a deterministic campaign journal byte-identically.
     */
    JournalClock clock = JournalClock::Monotonic;
    /**
     * Honor a pending shutdown signal (common/shutdown.h) between
     * dispatches: kill workers, save the queue, journal `shutdown`,
     * and return an interrupted report. The CLI turns this on after
     * installing its handlers; embedded/test drives leave it off.
     */
    bool handleShutdown = false;

    // Test hooks (exercised by tests/service and the CI smoke gate).
    /** Extra argv appended to every worker invocation. */
    std::vector<std::string> extraWorkerArgs;
    /** Extra argv appended only to a shard's first attempt. */
    std::vector<std::string> firstAttemptExtraArgs;
    /**
     * > 0: after this many spawns, kill the live workers and return
     * with tasks still marked running — a deterministic stand-in for
     * "the orchestrator machine died mid-campaign".
     */
    std::int32_t stopAfterDispatches = 0;
};

/** Drives one campaign in one state dir. */
class Orchestrator
{
  public:
    explicit Orchestrator(OrchestratorOptions options);

    /**
     * Create a fresh campaign from @p specPath (the state dir must
     * not already hold one) and drive it to completion. @throws
     * ConfigError on an existing queue.json, a bad spec, a
     * fingerprint mismatch, or a state dir another driver has locked.
     */
    CampaignReport submit(const std::string &specPath);

    /**
     * Continue the state dir's campaign: running tasks (an earlier
     * orchestrator died mid-attempt) go back to pending with their
     * attempt counts kept, then the queue drains as usual. A larger
     * `maxAttempts` than the queue's re-opens failed shards.
     */
    CampaignReport resume();

    /** Read queue.json without driving anything. */
    static QueueState inspect(const std::string &stateDir);

    static std::string queuePath(const std::string &stateDir);

    /** `BENCH_<campaign>[.shard<i>of<N>].json` — worker output name. */
    static std::string shardFileName(const std::string &campaign,
                                     std::int32_t index,
                                     std::int32_t count);

  private:
    CampaignReport drive(CampaignAdmission admission);
    SchedulerOptions schedulerOptions() const;

    OrchestratorOptions options_;
    StateLock lock_;
};

} // namespace lsqca::service

#endif // LSQCA_SERVICE_ORCHESTRATOR_H
