#ifndef LSQCA_SERVICE_ORCHESTRATOR_H
#define LSQCA_SERVICE_ORCHESTRATOR_H

/**
 * @file
 * The sweep orchestration service: turns one `SweepSpec` into a
 * campaign of shard tasks, dispatches them as child `lsqca run
 * --shard i/N` worker processes (up to `workers` at a time), and
 * drives the persistent queue (service/queue.h) until every shard is
 * done — re-queuing crashed, timed-out, and straggling workers with
 * an attempt cap, satisfying shards from the content-addressed result
 * cache (service/cache.h) when their fingerprints are already known,
 * and finishing with the same `mergeBenchReports` the CLI's `merge`
 * uses, so the final `BENCH_<campaign>.json` is byte-identical to a
 * direct unsharded `lsqca run` under --no-timing.
 *
 * The cache is layered: a whole-shard hit (api::shardFingerprint) is
 * the fast path; on a shard miss the orchestrator partitions the
 * slice into cached-vs-stale *jobs* (api::jobFingerprint). A slice
 * whose jobs are all cached is assembled in-process with zero spawns;
 * otherwise the worker is handed `--job-cache` and splices the cached
 * entries itself, simulating only the stale jobs — so a resubmit
 * after adding one grid point computes one job, not a campaign.
 *
 * Straggler policy: once at least one shard has completed in this
 * process, a worker older than
 * `max(stragglerFactor * median(done walls), minStragglerSeconds)`
 * is killed and its shard re-queued — the defense against one wedged
 * worker serializing the campaign. The deadline doubles with each of
 * the shard's attempts, and the final attempt is never straggler-
 * killed, so a shard that is legitimately much slower than its peers
 * converges instead of being killed into a failed campaign (a truly
 * wedged worker is still bounded by the hard `timeoutSeconds`).
 *
 * CI escalation (docs/SAMPLING.md): when the campaign's spec carries
 * a sampled estimator with `target_ci > 0`, every base shard's BENCH
 * output is inspected after the queue drains; a shard with any entry
 * whose `sampling_error` exceeds the target is re-queued as a derived
 * task that reruns the same slice exactly (`lsqca run --force-exact`,
 * output under shards/exact/). The merge then prefers the escalated
 * document, so the final artifact meets the CI contract everywhere.
 *
 * State-dir layout:
 *
 *     <state>/queue.json       lsqca-queue-v1 (source of truth)
 *     <state>/events.jsonl     lsqca-events-v1 campaign journal
 *                              (service/journal.h; read by `lsqca
 *                              report` and `lsqca status`)
 *     <state>/metrics.json     registry snapshot of the last drive
 *     <state>/shards/BENCH_*   per-shard worker output
 *     <state>/shards/exact/BENCH_*  escalated exact reruns
 *     <state>/logs/shard<i>.attempt<a>.log
 *     <state>/cache/<fp>.json  result cache (override via cacheDir)
 *     <state>/BENCH_<campaign>.json   merged artifact (see outDir)
 */

#include <cstdint>
#include <string>
#include <vector>

#include "api/spec.h"
#include "common/json.h"
#include "service/journal.h"
#include "service/queue.h"

namespace lsqca::service {

struct OrchestratorOptions
{
    /** Campaign directory (required). */
    std::string stateDir;
    /** Result cache dir ("" = <stateDir>/cache). */
    std::string cacheDir;
    /** Disable the result cache entirely. */
    bool useCache = true;
    /** Where the merged BENCH document lands ("" = stateDir). */
    std::string outDir;
    /** Concurrent worker processes. */
    std::int32_t workers = 2;
    /** Shard count; 0 = min(jobs, 4 * workers). */
    std::int32_t shards = 0;
    /** `--threads` per worker (processes are the parallelism unit). */
    std::int32_t threadsPerWorker = 1;
    /** Pass --no-timing to workers (deterministic artifact bytes). */
    bool noTiming = false;
    /** Per-attempt hard wall limit, passed as --timeout-seconds. */
    double timeoutSeconds = 0.0;
    /** Straggler deadline as a multiple of the median done wall. */
    double stragglerFactor = 4.0;
    /** Straggler deadline floor (protects millisecond shards). */
    double minStragglerSeconds = 10.0;
    /** Spawn budget per shard (submit only; 0 = default 3). */
    std::int32_t maxAttempts = 0;
    /** Pass --seed-check <fingerprint> to every worker. */
    bool seedCheck = true;
    /** Worker binary (required; the CLI passes itself). */
    std::string workerExe;
    /** Poll interval while workers run. */
    double pollSeconds = 0.02;
    /** Append the campaign journal (events.jsonl) while driving. */
    bool journal = true;
    /**
     * Journal time base: Monotonic stamps real times; Logical stamps
     * deterministic counters (and drops wall-time payload fields), so
     * reruns of a deterministic campaign journal byte-identically.
     */
    JournalClock clock = JournalClock::Monotonic;

    // Test hooks (exercised by tests/service and the CI smoke gate).
    /** Extra argv appended to every worker invocation. */
    std::vector<std::string> extraWorkerArgs;
    /** Extra argv appended only to a shard's first attempt. */
    std::vector<std::string> firstAttemptExtraArgs;
    /**
     * > 0: after this many spawns, kill the live workers and return
     * with tasks still marked running — a deterministic stand-in for
     * "the orchestrator machine died mid-campaign".
     */
    std::int32_t stopAfterDispatches = 0;
};

/** What one submit()/resume() call did. */
struct CampaignReport
{
    /** Every shard done and the merged artifact written. */
    bool complete = false;
    /** Stopped by the stopAfterDispatches hook. */
    bool interrupted = false;
    std::int32_t spawned = 0;
    std::int32_t cacheHits = 0;
    /** Crash/timeout/straggler attempts that were re-queued. */
    std::int32_t retries = 0;
    std::int32_t stragglersKilled = 0;
    /** Derived exact reruns queued by CI escalation this call. */
    std::int32_t escalations = 0;
    /**
     * Jobs served from the job-granularity cache at queue time (both
     * fully assembled shards and partial splices a worker completed).
     */
    std::int64_t jobCacheHits = 0;
    /** Jobs this call's workers actually simulated. */
    std::int64_t jobsComputed = 0;
    /** Merged BENCH path ("" unless complete). */
    std::string mergedPath;
    std::string queuePath;
    /** Campaign journal path ("" when journaling is disabled). */
    std::string journalPath;
    /** Metrics snapshot path ("" when journaling is disabled). */
    std::string metricsPath;
    /** The drive's final metrics snapshot (same doc as metricsPath). */
    Json metrics;
    /** Final queue snapshot (matches the file on disk). */
    QueueState queue;
};

/** max(factor * median, floor) — exposed for unit tests. */
double stragglerDeadline(double medianSeconds, double factor,
                         double minSeconds);

/** Drives one campaign in one state dir. */
class Orchestrator
{
  public:
    explicit Orchestrator(OrchestratorOptions options);

    /**
     * Create a fresh campaign from @p specPath (the state dir must
     * not already hold one) and drive it to completion. @throws
     * ConfigError on an existing queue.json, a bad spec, or a
     * fingerprint mismatch.
     */
    CampaignReport submit(const std::string &specPath);

    /**
     * Continue the state dir's campaign: running tasks (an earlier
     * orchestrator died mid-attempt) go back to pending with their
     * attempt counts kept, then the queue drains as usual. A larger
     * `maxAttempts` than the queue's re-opens failed shards.
     */
    CampaignReport resume();

    /** Read queue.json without driving anything. */
    static QueueState inspect(const std::string &stateDir);

    static std::string queuePath(const std::string &stateDir);

    /** `BENCH_<campaign>[.shard<i>of<N>].json` — worker output name. */
    static std::string shardFileName(const std::string &campaign,
                                     std::int32_t index,
                                     std::int32_t count);

  private:
    CampaignReport drive(QueueState state, const api::SweepSpec &spec,
                         const std::vector<api::ExpandedJob> &jobs);
    /** Open events.jsonl and record the @p leg event (no-op if off). */
    void openJournal(const char *leg, const QueueState &state);

    OrchestratorOptions options_;
    Journal journal_;
};

} // namespace lsqca::service

#endif // LSQCA_SERVICE_ORCHESTRATOR_H
