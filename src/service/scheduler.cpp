#include "service/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "api/registry.h"
#include "common/error.h"
#include "common/fs.h"
#include "common/table.h"
#include "estimate/options.h"
#include "sweep/sweep.h"

namespace lsqca::service {
namespace {

using Clock = std::chrono::steady_clock;

double
nowSeconds()
{
    return std::chrono::duration<double>(
               Clock::now().time_since_epoch())
        .count();
}

/** Upper-biased median of a non-empty sample (heuristic use only). */
double
medianOf(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return values[mid];
    return 0.5 * (values[mid - 1] + values[mid]);
}

/**
 * Full-precision rendering for values that are re-parsed by workers
 * (a policy knob must survive the argv round trip exactly; "%.3f"
 * would truncate sub-millisecond timeouts to an invalid "0.000").
 */
std::string
formatArgDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

/**
 * Fingerprints of the campaign's shards rerun with the exact
 * estimator: what a `--force-exact` worker expands to, and therefore
 * the content address of a derived escalation task (the same key an
 * exact campaign over the same spec would use, so escalations share
 * its cache entries).
 */
std::vector<std::string>
exactShardFingerprints(const api::SweepSpec &spec,
                       std::vector<api::ExpandedJob> jobs,
                       std::int32_t shardCount, bool noTiming)
{
    for (api::ExpandedJob &job : jobs)
        job.options.estimator = estimate::EstimatorOptions{};
    return api::shardFingerprints(spec, jobs, shardCount, noTiming);
}

} // namespace

double
stragglerDeadline(double medianSeconds, double factor,
                  double minSeconds)
{
    return std::max(factor * medianSeconds, minSeconds);
}

std::string
queuePathFor(const std::string &stateDir)
{
    return stateDir + "/queue.json";
}

std::string
shardFileName(const std::string &campaign, std::int32_t index,
              std::int32_t count)
{
    // Mirrors runSpec's output naming: a whole-sweep shard (0/1)
    // carries no marker and no suffix.
    if (count <= 1)
        return "BENCH_" + campaign + ".json";
    return "BENCH_" + campaign + ".shard" + std::to_string(index) +
           "of" + std::to_string(count) + ".json";
}

CampaignAdmission
admitCampaign(const std::string &specPath, const std::string &stateDir,
              std::int32_t shards, std::int32_t workers, bool noTiming,
              std::int32_t maxAttempts)
{
    const std::string queueFile = queuePathFor(stateDir);
    LSQCA_REQUIRE(!fsutil::exists(queueFile),
                  stateDir +
                      " already holds a campaign; continue it with "
                      "`lsqca resume` or remove the directory");

    // Absolute so `lsqca resume` works from any working directory.
    const std::string absSpec =
        std::filesystem::absolute(specPath).lexically_normal().string();
    CampaignAdmission admission;
    admission.leg = "submit";
    admission.spec = api::SweepSpec::load(absSpec);
    const api::BenchmarkRegistry registry =
        api::BenchmarkRegistry::paper();
    admission.jobs = api::expandSpec(admission.spec, registry);

    if (shards <= 0)
        shards = static_cast<std::int32_t>(std::min<std::int64_t>(
            static_cast<std::int64_t>(admission.jobs.size()),
            std::max(4 * workers, 1)));

    QueueState &state = admission.state;
    state.campaign = admission.spec.name;
    state.specPath = absSpec;
    state.shardCount = shards;
    state.noTiming = noTiming;
    state.maxAttempts = maxAttempts > 0 ? maxAttempts : 3;
    const std::vector<std::string> fingerprints = api::shardFingerprints(
        admission.spec, admission.jobs, shards, state.noTiming);
    for (std::int32_t i = 0; i < shards; ++i) {
        ShardTask task;
        task.index = i;
        task.fingerprint = fingerprints[static_cast<std::size_t>(i)];
        if (admission.spec.estimator.sampled())
            task.mode =
                estimate::estimatorModeName(admission.spec.estimator.mode);
        state.tasks.push_back(std::move(task));
    }
    fsutil::makeDirs(stateDir);
    state.save(queueFile);
    return admission;
}

CampaignAdmission
reopenCampaign(const std::string &stateDir, std::int32_t maxAttempts)
{
    const std::string queueFile = queuePathFor(stateDir);
    LSQCA_REQUIRE(fsutil::exists(queueFile),
                  stateDir +
                      " holds no campaign (no queue.json); start one "
                      "with `lsqca submit`");
    CampaignAdmission admission;
    admission.leg = "resume";
    QueueState &state = admission.state;
    state = QueueState::load(queueFile);

    // Re-derive the campaign's fingerprints from the spec file as it
    // exists *now*: if it (or the registry) changed since the queue
    // was created, completed shards and queued ones would disagree on
    // content, so refuse to continue rather than poison the merge.
    // (admitCampaign skips this — it computed the fingerprints from
    // the same file milliseconds ago.)
    admission.spec = api::SweepSpec::load(state.specPath);
    LSQCA_REQUIRE(admission.spec.name == state.campaign,
                  state.specPath + ": spec name \"" +
                      admission.spec.name +
                      "\" does not match campaign \"" + state.campaign +
                      "\"");
    const api::BenchmarkRegistry registry =
        api::BenchmarkRegistry::paper();
    admission.jobs = api::expandSpec(admission.spec, registry);
    const std::vector<std::string> fingerprints =
        api::shardFingerprints(admission.spec, admission.jobs,
                               state.shardCount, state.noTiming);
    // Derived escalation tasks were queued with the *exact* slice's
    // fingerprint (their workers run --force-exact).
    std::vector<std::string> exactFingerprints;
    if (state.escalationCount() > 0)
        exactFingerprints =
            exactShardFingerprints(admission.spec, admission.jobs,
                                   state.shardCount, state.noTiming);
    for (std::size_t i = 0; i < state.tasks.size(); ++i) {
        const ShardTask &task = state.tasks[i];
        const std::string &expanded =
            task.escalated
                ? exactFingerprints[static_cast<std::size_t>(task.index)]
                : fingerprints[static_cast<std::size_t>(task.index)];
        LSQCA_REQUIRE(
            expanded == task.fingerprint,
            "shard " + std::to_string(task.index) + " of campaign \"" +
                state.campaign + "\" now expands to fingerprint " +
                expanded + " but was queued as " + task.fingerprint +
                " — the spec file changed under the campaign; submit "
                "it as a new campaign instead");
    }

    state.resetRunning();
    if (maxAttempts > state.maxAttempts) {
        // A raised cap re-opens shards that exhausted the old one.
        state.maxAttempts = maxAttempts;
        for (ShardTask &task : state.tasks)
            if (task.status == TaskStatus::Failed &&
                task.attempts < state.maxAttempts)
                task.status = TaskStatus::Pending;
    }
    state.save(queueFile);
    return admission;
}

Scheduler::Scheduler(SchedulerOptions options,
                     CampaignAdmission admission)
    : options_(std::move(options)), state_(std::move(admission.state)),
      spec_(std::move(admission.spec)),
      jobs_(std::move(admission.jobs)),
      cache_(options_.cacheDir)
{
    LSQCA_REQUIRE(!options_.stateDir.empty(),
                  "the scheduler needs a state dir");
    LSQCA_REQUIRE(!options_.workerExe.empty(),
                  "the scheduler needs a worker executable");
    LSQCA_REQUIRE(options_.stragglerFactor >= 1.0,
                  "--straggler-factor must be >= 1");

    report_.queuePath = queuePathFor(options_.stateDir);
    if (options_.journal) {
        journal_ = Journal::open(Journal::pathFor(options_.stateDir),
                                 options_.clock);
        report_.journalPath = journal_.path();
        Json fields = Json::object();
        fields.set("campaign", state_.campaign);
        fields.set("spec", state_.specPath);
        fields.set("shards", state_.shardCount);
        fields.set("workers", options_.workers);
        fields.set("max_attempts", state_.maxAttempts);
        fields.set("no_timing", state_.noTiming);
        journal_.record(admission.leg, fields);
    }

    // One registry per drive: the same counters the CampaignReport
    // carries, plus distributions the report's integers flatten. The
    // snapshot lands in <state>/metrics.json from finish(); tests
    // cross-check it against the journal-derived numbers. Registered
    // up front so an idle instrument still appears (as zero) in the
    // snapshot, exactly as the pre-extraction orchestrator's did.
    metrics_.counter("service.spawns");
    metrics_.counter("service.cache.hits");
    metrics_.counter("service.cache.misses");
    metrics_.counter("service.job_cache.hits");
    metrics_.counter("service.job_cache.computed");
    metrics_.counter("service.retries");
    metrics_.counter("service.stragglers_killed");
    metrics_.counter("service.escalations");
    metrics_.counter("service.tasks.done");
    metrics_.counter("service.tasks.failed");
    metrics_.counter("service.bytes_merged");
    metrics_.histogram("service.shard_wall_seconds");
    metrics_.gauge("service.workers")
        .set(static_cast<double>(options_.workers));

    shardsDir_ = options_.stateDir + "/shards";
    // Escalated exact reruns land in a subdirectory: their worker
    // writes the same BENCH_<campaign>.shard<i>of<N>.json name the
    // sampled shard already used.
    exactDir_ = shardsDir_ + "/exact";
    logsDir_ = options_.stateDir + "/logs";
    fsutil::makeDirs(shardsDir_);

    // Job-granularity fingerprints (docs/SERVICE.md): computed once
    // per drive, shared by the cache pass (splice prediction) and the
    // reap path (job_computed events). Escalated tasks address the
    // exact-estimator variants, lazily since most campaigns have none.
    if (cache_.enabled())
        jobPrints_ =
            api::jobFingerprints(spec_, jobs_, state_.noTiming);
}

Scheduler::~Scheduler()
{
    killWorkers();
}

const std::string &
Scheduler::taskDir(const ShardTask &task) const
{
    return task.escalated ? exactDir_ : shardsDir_;
}

std::string
Scheduler::taskOutput(const ShardTask &task,
                      const std::string &name) const
{
    return (task.escalated ? "shards/exact/" : "shards/") + name;
}

const std::vector<std::string> &
Scheduler::exactPrints()
{
    if (exactJobPrints_.empty() && !jobs_.empty()) {
        std::vector<api::ExpandedJob> exactJobs = jobs_;
        for (api::ExpandedJob &job : exactJobs)
            job.options.estimator = estimate::EstimatorOptions{};
        exactJobPrints_ =
            api::jobFingerprints(spec_, exactJobs, state_.noTiming);
    }
    return exactJobPrints_;
}

void
Scheduler::saveQueue()
{
    state_.save(report_.queuePath);
}

std::int32_t
Scheduler::freeSlot() const
{
    // Lowest slot >= 1 not held by a live worker.
    for (std::int32_t slot = 1;; ++slot) {
        bool taken = false;
        for (const RunningWorker &worker : running_)
            if (worker.slot == slot)
                taken = true;
        if (!taken)
            return slot;
    }
}

void
Scheduler::cachePass()
{
    for (std::size_t t = 0; t < state_.tasks.size(); ++t) {
        ShardTask &task = state_.tasks[t];
        if (task.status != TaskStatus::Pending)
            continue;
        const std::string name =
            shardFileName(state_.campaign, task.index, state_.shardCount);
        if (task.escalated)
            fsutil::makeDirs(exactDir_);
        const std::string outPath = taskDir(task) + "/" + name;
        const auto markCached = [&](const char *level,
                                    std::int64_t splicedJobs) {
            task.status = TaskStatus::Done;
            task.cached = true;
            task.wallSeconds = 0.0;
            task.output = taskOutput(task, name);
            task.lastError = "";
            ++report_.cacheHits;
            metrics_.counter("service.cache.hits").add();
            Json fields = Json::object();
            fields.set("shard", task.index);
            if (task.escalated)
                fields.set("escalated", true);
            fields.set("fingerprint", task.fingerprint);
            if (splicedJobs > 0) {
                fields.set("level", level);
                fields.set("jobs", splicedJobs);
            }
            journal_.record("cache_hit", fields);
        };
        if (cache_.fetch(task.fingerprint, outPath)) {
            markCached("shard", 0);
            continue;
        }
        if (!cache_.enabled()) {
            metrics_.counter("service.cache.misses").add();
            continue;
        }

        // Job-granularity pass: the shard document is gone (the
        // partition moved, or the spec gained grid points), but
        // most of its jobs may still be cached individually.
        api::ShardRange range;
        range.index = task.index;
        range.count = state_.shardCount;
        const auto [begin, end] = range.bounds(jobs_.size());
        const std::vector<std::string> &prints =
            task.escalated ? exactPrints() : jobPrints_;
        Json entries = Json::array();
        bool v2 = spec_.recordBreakdown;
        std::vector<std::size_t> stale;
        for (std::size_t j = begin; j < end; ++j) {
            Json entry = cache_.fetchJob(prints[j]);
            if (entry.isNull()) {
                stale.push_back(j);
                continue;
            }
            ++report_.jobCacheHits;
            metrics_.counter("service.job_cache.hits").add();
            Json fields = Json::object();
            fields.set("shard", task.index);
            if (task.escalated)
                fields.set("escalated", true);
            fields.set("job", static_cast<std::int64_t>(j));
            fields.set("fingerprint", prints[j]);
            journal_.record("job_cache_hit", fields);
            v2 = v2 || entry.contains("breakdown");
            entries.push(std::move(entry));
        }
        task.jobsCached =
            static_cast<std::int32_t>(end - begin - stale.size());
        task.jobsComputed = static_cast<std::int32_t>(stale.size());
        if (!stale.empty() || begin == end) {
            staleByTask_[t] = std::move(stale);
            metrics_.counter("service.cache.misses").add();
            continue;
        }

        // Every job in the slice is cached: assemble the shard
        // document in-process through the same benchDocument the
        // workers use (byte-identical under --no-timing), warm the
        // shard-level fast path, and mark the task cached — the
        // report invariant `tasks_done + cache_hits == shards`
        // holds whichever cache level satisfied it.
        Json doc = benchDocument(state_.campaign, std::move(entries), 0,
                                 0.0, v2);
        if (state_.shardCount > 1) {
            Json marker = Json::object();
            marker.set("index", task.index);
            marker.set("count", state_.shardCount);
            marker.set("offset", static_cast<std::int64_t>(begin));
            marker.set("total",
                       static_cast<std::int64_t>(jobs_.size()));
            doc.set("shard", std::move(marker));
        }
        doc.write(outPath);
        cache_.store(task.fingerprint, outPath);
        markCached("job", static_cast<std::int64_t>(end - begin));
    }
    saveQueue();
}

void
Scheduler::fail(ShardTask &task, const std::string &reason,
                const std::string &cause)
{
    // Crash/timeout/straggler funnel: back to pending while the
    // attempt budget lasts, failed once it is exhausted. @p cause is
    // the journal/metrics taxonomy: crash | timeout | straggler |
    // no_output.
    task.lastError = reason;
    Json fields = Json::object();
    fields.set("shard", task.index);
    if (task.attempts >= state_.maxAttempts) {
        task.status = TaskStatus::Failed;
        metrics_.counter("service.tasks.failed").add();
        fields.set("attempts", task.attempts);
        fields.set("cause", cause);
        // The free-text reason embeds wall times and log paths;
        // the logical clock keeps only the deterministic cause
        // (queue.json still holds the full string).
        if (!journal_.logical())
            fields.set("detail", reason);
        journal_.record("task_failed", fields);
    } else {
        task.status = TaskStatus::Pending;
        ++report_.retries;
        metrics_.counter("service.retries").add();
        metrics_.counter("service.retries." + cause).add();
        fields.set("attempt", task.attempts);
        fields.set("cause", cause);
        if (!journal_.logical())
            fields.set("detail", reason);
        journal_.record("retry", fields);
    }
}

void
Scheduler::reapWorker(const RunningWorker &worker)
{
    proc::terminate(worker.pid);
    proc::wait(worker.pid);
}

std::int32_t
Scheduler::dispatchOne()
{
    for (std::size_t t = 0; t < state_.tasks.size(); ++t) {
        ShardTask &task = state_.tasks[t];
        if (task.status != TaskStatus::Pending)
            continue;
        // Record the attempt in queue.json *before* the spawn so a
        // dead driver can never under-count attempts.
        ++task.attempts;
        task.status = TaskStatus::Running;
        saveQueue();

        if (task.escalated)
            fsutil::makeDirs(exactDir_);
        proc::Command command;
        command.argv = {options_.workerExe,
                        "run",
                        state_.specPath,
                        "--shard",
                        std::to_string(task.index) + "/" +
                            std::to_string(state_.shardCount),
                        "--threads",
                        std::to_string(options_.threadsPerWorker),
                        "--out",
                        taskDir(task)};
        if (task.escalated)
            command.argv.push_back("--force-exact");
        if (cache_.enabled()) {
            // The worker splices cached entries itself and simulates
            // only the stale jobs (runSpec's job-cache seam) — the
            // incremental half of the layered cache.
            command.argv.push_back("--job-cache");
            command.argv.push_back(cache_.dir());
        }
        if (state_.noTiming)
            command.argv.push_back("--no-timing");
        if (options_.timeoutSeconds > 0.0) {
            command.argv.push_back("--timeout-seconds");
            command.argv.push_back(
                formatArgDouble(options_.timeoutSeconds));
        }
        if (options_.seedCheck) {
            command.argv.push_back("--seed-check");
            command.argv.push_back(task.fingerprint);
        }
        command.argv.insert(command.argv.end(),
                            options_.extraWorkerArgs.begin(),
                            options_.extraWorkerArgs.end());
        if (task.attempts == 1)
            command.argv.insert(command.argv.end(),
                                options_.firstAttemptExtraArgs.begin(),
                                options_.firstAttemptExtraArgs.end());
        command.logPath = logsDir_ + "/shard" +
                          std::to_string(task.index) + ".attempt" +
                          std::to_string(task.attempts) + ".log";

        RunningWorker worker;
        worker.task = t;
        worker.slot = freeSlot();
        worker.pid = proc::spawn(command);
        worker.startSeconds = nowSeconds();
        worker.logPath = command.logPath;
        ++report_.spawned;
        metrics_.counter("service.spawns").add();
        Json fields = Json::object();
        fields.set("shard", task.index);
        fields.set("attempt", task.attempts);
        fields.set("worker", worker.slot);
        if (task.escalated)
            fields.set("escalated", true);
        if (!journal_.logical())
            fields.set("pid", worker.pid);
        journal_.record("spawn", fields);
        running_.push_back(std::move(worker));
        return task.index;
    }
    return -1;
}

void
Scheduler::pollWorkers()
{
    // Reap finished workers; kill stragglers.
    const double deadline =
        doneWalls_.empty()
            ? 0.0
            : stragglerDeadline(medianOf(doneWalls_),
                                options_.stragglerFactor,
                                options_.minStragglerSeconds);
    for (std::size_t w = 0; w < running_.size();) {
        const RunningWorker &worker = running_[w];
        ShardTask &task = state_.tasks[worker.task];
        proc::Status status = proc::poll(worker.pid);
        const double elapsed = nowSeconds() - worker.startSeconds;

        // The deadline doubles with every attempt, and a shard's
        // final attempt is immune: killing the only copy of a
        // legitimately slow shard into a failed campaign would be
        // worse than waiting (the hard --timeout-seconds still
        // bounds a truly wedged worker).
        const double taskDeadline =
            deadline *
            static_cast<double>(1 << std::min(task.attempts - 1, 16));
        if (status.running && deadline > 0.0 &&
            task.attempts < state_.maxAttempts &&
            elapsed > taskDeadline) {
            reapWorker(worker);
            ++report_.stragglersKilled;
            metrics_.counter("service.stragglers_killed").add();
            {
                Json fields = Json::object();
                fields.set("shard", task.index);
                fields.set("attempt", task.attempts);
                fields.set("worker", worker.slot);
                fields.set("killed", true);
                if (!journal_.logical())
                    fields.set("wall_s", elapsed);
                journal_.record("exit", fields);
            }
            fail(task,
                 "straggler killed after " + TextTable::num(elapsed, 3) +
                     " s (deadline " + TextTable::num(taskDeadline, 3) +
                     " s, attempt " + std::to_string(task.attempts) +
                     ", base = " +
                     TextTable::num(options_.stragglerFactor, 3) +
                     " x median done wall)",
                 "straggler");
            saveQueue();
            running_.erase(running_.begin() +
                           static_cast<std::ptrdiff_t>(w));
            continue;
        }
        if (status.running) {
            ++w;
            continue;
        }

        const std::string name =
            shardFileName(state_.campaign, task.index, state_.shardCount);
        const std::string outPath = taskDir(task) + "/" + name;
        {
            Json fields = Json::object();
            fields.set("shard", task.index);
            fields.set("attempt", task.attempts);
            fields.set("worker", worker.slot);
            if (status.ok())
                fields.set("ok", true);
            else if (status.exited)
                fields.set("code", status.exitCode);
            else
                fields.set("signal", status.signal);
            if (!journal_.logical())
                fields.set("wall_s", elapsed);
            journal_.record("exit", fields);
        }
        if (status.ok() && fsutil::exists(outPath)) {
            task.status = TaskStatus::Done;
            task.cached = false;
            task.wallSeconds = elapsed;
            task.output = taskOutput(task, name);
            task.lastError = "";
            doneWalls_.push_back(elapsed);
            cache_.store(task.fingerprint, outPath);
            metrics_.counter("service.tasks.done").add();
            metrics_.histogram("service.shard_wall_seconds")
                .observe(elapsed);
            // The jobs the cache pass predicted this task had to
            // simulate are now on record (the worker stored their
            // entries under these fingerprints).
            const auto staleIt = staleByTask_.find(worker.task);
            if (staleIt != staleByTask_.end()) {
                const std::vector<std::string> &prints =
                    task.escalated ? exactPrints() : jobPrints_;
                for (const std::size_t j : staleIt->second) {
                    ++report_.jobsComputed;
                    metrics_.counter("service.job_cache.computed").add();
                    Json computed = Json::object();
                    computed.set("shard", task.index);
                    if (task.escalated)
                        computed.set("escalated", true);
                    computed.set("job", static_cast<std::int64_t>(j));
                    computed.set("fingerprint", prints[j]);
                    journal_.record("job_computed", computed);
                }
                staleByTask_.erase(staleIt);
            }
            Json fields = Json::object();
            fields.set("shard", task.index);
            if (task.escalated)
                fields.set("escalated", true);
            fields.set("output", task.output);
            journal_.record("task_done", fields);
        } else if (status.ok()) {
            fail(task, "worker exited 0 without writing " + name,
                 "no_output");
        } else {
            std::string reason = "worker " + status.describe();
            std::string cause = "crash";
            if (status.exited &&
                status.exitCode == api::kTimeoutExitCode) {
                reason += " (timed out)";
                cause = "timeout";
            } else if (status.exited &&
                       status.exitCode == api::kDieAfterExitCode) {
                reason += " (died mid-shard)";
            }
            fail(task, reason + "; see " + worker.logPath, cause);
        }
        saveQueue();
        running_.erase(running_.begin() +
                       static_cast<std::ptrdiff_t>(w));
    }
}

bool
Scheduler::maybeEscalate()
{
    // CI escalation (docs/SAMPLING.md): with the queue drained, each
    // sampled base shard's BENCH output is inspected; any entry whose
    // sampling_error breaches the spec's target_ci queues a derived
    // exact rerun of the slice. Returns true when new tasks were
    // appended, restarting the drain.
    if (!state_.allDone())
        return false;
    if (!spec_.estimator.sampled() || spec_.estimator.targetCi <= 0.0)
        return false;
    struct Breach
    {
        std::int32_t shard;
        std::string entry;
        double ci;
    };
    std::vector<Breach> breached;
    for (std::int32_t i = 0; i < state_.shardCount; ++i) {
        const ShardTask &task = state_.tasks[static_cast<std::size_t>(i)];
        if (state_.escalationFor(i) != nullptr)
            continue;
        const Json doc =
            Json::load(options_.stateDir + "/" + task.output);
        for (const Json &entry : doc.at("entries").items()) {
            const Json *error =
                entry.at("metrics").find("sampling_error");
            if (error != nullptr &&
                error->asDouble() > spec_.estimator.targetCi) {
                breached.push_back(
                    {i, entry.at("name").asString(), error->asDouble()});
                break;
            }
        }
    }
    if (breached.empty())
        return false;
    const std::vector<std::string> exact = exactShardFingerprints(
        spec_, jobs_, state_.shardCount, state_.noTiming);
    for (const Breach &breach : breached) {
        ShardTask task;
        task.index = breach.shard;
        task.fingerprint = exact[static_cast<std::size_t>(breach.shard)];
        task.escalated = true;
        state_.tasks.push_back(std::move(task));
        ++report_.escalations;
        metrics_.counter("service.escalations").add();
        Json fields = Json::object();
        fields.set("shard", breach.shard);
        fields.set("entry", breach.entry);
        fields.set("ci", breach.ci);
        fields.set("target_ci", spec_.estimator.targetCi);
        journal_.record("escalation", fields);
    }
    saveQueue();
    return true;
}

void
Scheduler::killWorkers()
{
    // Simulated (or real) driver death/shutdown: the queue keeps the
    // tasks marked running; a resume leg re-queues them. The live
    // attempts get no exit events — exactly what a dead driver leaves
    // behind — so the report's open-span closure path is what readers
    // see.
    for (const RunningWorker &live : running_)
        reapWorker(live);
    running_.clear();
}

void
Scheduler::recordShutdown(int signal)
{
    Json fields = Json::object();
    fields.set("signal", signal);
    journal_.record("shutdown", fields);
}

CampaignReport
Scheduler::finish(bool interrupted)
{
    report_.interrupted = interrupted;
    report_.queue = state_;
    if (state_.allDone()) {
        // Merge in shard order through the same path `lsqca merge`
        // uses; under --no-timing the artifact is byte-identical to a
        // direct unsharded run (pinned by tests/service and CI).
        std::vector<Json> docs;
        std::vector<std::string> labels;
        docs.reserve(static_cast<std::size_t>(state_.shardCount));
        for (std::int32_t i = 0; i < state_.shardCount; ++i) {
            // An escalated shard merges its exact rerun; the sampled
            // document stays on disk beside it for inspection.
            const ShardTask *chosen = state_.escalationFor(i);
            if (chosen == nullptr)
                chosen = &state_.tasks[static_cast<std::size_t>(i)];
            const std::string path =
                options_.stateDir + "/" + chosen->output;
            docs.push_back(Json::load(path));
            labels.push_back(path);
        }
        const Json merged = api::mergeBenchReports(docs, labels);
        report_.mergedPath = writeBenchJson(
            state_.campaign, merged,
            options_.outDir.empty() ? options_.stateDir
                                    : options_.outDir);
        report_.complete = true;
        Json fields = Json::object();
        // Journal fields must not depend on where the campaign
        // directory happens to live (byte-stable logical reruns).
        std::string relative = report_.mergedPath;
        const std::string prefix = options_.stateDir + "/";
        if (relative.rfind(prefix, 0) == 0)
            relative = relative.substr(prefix.size());
        fields.set("path", relative);
        fields.set("shards", state_.shardCount);
        const std::int64_t bytes = static_cast<std::int64_t>(
            std::filesystem::file_size(report_.mergedPath));
        fields.set("bytes", bytes);
        metrics_.counter("service.bytes_merged").add(bytes);
        journal_.record("merge", fields);
        report_.queue = state_;
    }

    // Every exit from a drive: the terminal `done` event (the journal
    // cross-check anchor) and the metrics snapshot.
    Json fields = Json::object();
    fields.set("complete", report_.complete);
    fields.set("interrupted", report_.interrupted);
    fields.set("spawned", report_.spawned);
    fields.set("cache_hits", report_.cacheHits);
    fields.set("retries", report_.retries);
    fields.set("stragglers_killed", report_.stragglersKilled);
    fields.set("escalations", report_.escalations);
    fields.set("job_cache_hits", report_.jobCacheHits);
    fields.set("jobs_computed", report_.jobsComputed);
    journal_.record("done", fields);
    report_.metrics = metrics_.toJson();
    if (journal_.enabled()) {
        report_.metricsPath = options_.stateDir + "/metrics.json";
        fsutil::writeFileAtomic(report_.metricsPath,
                                report_.metrics.dump(2) + "\n");
    }
    return report_;
}

std::size_t
Scheduler::pendingCount() const
{
    return state_.countWithStatus(TaskStatus::Pending);
}

bool
Scheduler::drained() const
{
    return running_.empty() &&
           state_.countWithStatus(TaskStatus::Pending) == 0;
}

} // namespace lsqca::service
