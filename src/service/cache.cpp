#include "service/cache.h"

#include "common/error.h"
#include "common/fs.h"
#include "common/hash.h"

namespace lsqca::service {

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::pathFor(const std::string &fingerprint) const
{
    LSQCA_REQUIRE(enabled(), "result cache is disabled");
    // The fingerprint becomes a file name; insist on the 16-hex shape
    // so a corrupted queue entry can never escape the cache dir.
    LSQCA_REQUIRE(isFingerprint(fingerprint),
                  "bad cache fingerprint \"" + fingerprint + "\"");
    return dir_ + "/" + fingerprint + ".json";
}

bool
ResultCache::contains(const std::string &fingerprint) const
{
    return enabled() && fsutil::exists(pathFor(fingerprint));
}

bool
ResultCache::fetch(const std::string &fingerprint,
                   const std::string &destPath) const
{
    if (!contains(fingerprint))
        return false;
    fsutil::copyFileAtomic(pathFor(fingerprint), destPath);
    return true;
}

void
ResultCache::store(const std::string &fingerprint,
                   const std::string &srcPath) const
{
    if (!enabled())
        return;
    fsutil::copyFileAtomic(srcPath, pathFor(fingerprint));
}

std::size_t
ResultCache::size() const
{
    if (!enabled() || !fsutil::isDirectory(dir_))
        return 0;
    return fsutil::listFiles(dir_, "", ".json").size();
}

std::string
ResultCache::jobPathFor(const std::string &fingerprint) const
{
    LSQCA_REQUIRE(enabled(), "result cache is disabled");
    LSQCA_REQUIRE(isFingerprint(fingerprint),
                  "bad cache fingerprint \"" + fingerprint + "\"");
    return dir_ + "/jobs/" + fingerprint + ".json";
}

bool
ResultCache::containsJob(const std::string &fingerprint) const
{
    return enabled() && fsutil::exists(jobPathFor(fingerprint));
}

Json
ResultCache::fetchJob(const std::string &fingerprint) const
{
    if (!containsJob(fingerprint))
        return Json();
    // Validation doubles as corruption tolerance: with fsync'd atomic
    // publishes a torn file should be impossible, but a shared cache
    // directory can hold foreign bytes — treat anything that is not a
    // well-formed lsqca-jobcache-v1 wrapper as a miss rather than
    // failing the campaign.
    try {
        const Json doc = Json::load(jobPathFor(fingerprint));
        if (!doc.isObject() || !doc.contains("schema") ||
            !doc.contains("fingerprint") || !doc.contains("entry"))
            return Json();
        if (doc.at("schema").asString() != "lsqca-jobcache-v1" ||
            doc.at("fingerprint").asString() != fingerprint)
            return Json();
        return doc.at("entry");
    } catch (...) {
        return Json();
    }
}

void
ResultCache::storeJob(const std::string &fingerprint, const Json &entry,
                      const Json &provenance) const
{
    if (!enabled())
        return;
    Json doc = Json::object();
    doc.set("schema", "lsqca-jobcache-v1");
    doc.set("fingerprint", fingerprint);
    doc.set("provenance", provenance);
    doc.set("entry", entry);
    fsutil::writeFileAtomic(jobPathFor(fingerprint), doc.dump(2) + "\n");
}

std::size_t
ResultCache::jobCount() const
{
    if (!enabled() || !fsutil::isDirectory(dir_ + "/jobs"))
        return 0;
    return fsutil::listFiles(dir_ + "/jobs", "", ".json").size();
}

} // namespace lsqca::service
