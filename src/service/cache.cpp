#include "service/cache.h"

#include "common/error.h"
#include "common/fs.h"
#include "common/hash.h"

namespace lsqca::service {

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::pathFor(const std::string &fingerprint) const
{
    LSQCA_REQUIRE(enabled(), "result cache is disabled");
    // The fingerprint becomes a file name; insist on the 16-hex shape
    // so a corrupted queue entry can never escape the cache dir.
    LSQCA_REQUIRE(isFingerprint(fingerprint),
                  "bad cache fingerprint \"" + fingerprint + "\"");
    return dir_ + "/" + fingerprint + ".json";
}

bool
ResultCache::contains(const std::string &fingerprint) const
{
    return enabled() && fsutil::exists(pathFor(fingerprint));
}

bool
ResultCache::fetch(const std::string &fingerprint,
                   const std::string &destPath) const
{
    if (!contains(fingerprint))
        return false;
    fsutil::copyFileAtomic(pathFor(fingerprint), destPath);
    return true;
}

void
ResultCache::store(const std::string &fingerprint,
                   const std::string &srcPath) const
{
    if (!enabled())
        return;
    fsutil::copyFileAtomic(srcPath, pathFor(fingerprint));
}

std::size_t
ResultCache::size() const
{
    if (!enabled() || !fsutil::isDirectory(dir_))
        return 0;
    return fsutil::listFiles(dir_, "", ".json").size();
}

} // namespace lsqca::service
