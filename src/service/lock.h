#ifndef LSQCA_SERVICE_LOCK_H
#define LSQCA_SERVICE_LOCK_H

/**
 * @file
 * Campaign state-dir ownership: an advisory `flock(2)` on
 * `<state>/lock` held for as long as an orchestrator (or the daemon,
 * per tenant) is driving the directory. A second driver opening the
 * same campaign fails fast with the owner's pid instead of racing on
 * `queue.json`; because flock locks die with their process, a lock
 * left behind by a killed orchestrator is reclaimed automatically —
 * the pid in the file is informative, never authoritative.
 */

#include <string>

namespace lsqca::service {

/**
 * A held state-dir lock. Move-only; the destructor releases it. The
 * descriptor is close-on-exec, so worker children never inherit (and
 * never prolong) their orchestrator's claim.
 */
class StateLock
{
  public:
    StateLock() = default;
    ~StateLock();

    StateLock(StateLock &&other) noexcept;
    StateLock &operator=(StateLock &&other) noexcept;
    StateLock(const StateLock &) = delete;
    StateLock &operator=(const StateLock &) = delete;

    /**
     * Take `<dir>/lock` (creating @p dir as needed) with
     * LOCK_EX|LOCK_NB and record our pid in it. @throws ConfigError
     * when another live process holds it, naming that pid.
     */
    static StateLock acquire(const std::string &dir);

    bool held() const { return fd_ >= 0; }

    /** Release early (destructor-equivalent). */
    void release();

    /** `<dir>/lock`. */
    static std::string pathFor(const std::string &dir);

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace lsqca::service

#endif // LSQCA_SERVICE_LOCK_H
