#ifndef LSQCA_SERVICE_JOURNAL_H
#define LSQCA_SERVICE_JOURNAL_H

/**
 * @file
 * The persistent campaign event journal: an append-only
 * `events.jsonl` (schema `lsqca-events-v1`, docs/METRICS.md) written
 * beside `queue.json`. Where the queue holds the campaign's *current*
 * state, the journal holds its *history* — every spawn, exit, retry,
 * cache hit, and escalation, across every submit/resume leg — so
 * `lsqca report` and `lsqca status` can reconstruct where campaign
 * time and work went without having watched it happen.
 *
 * Crash safety: every record is one `write(2)` of one complete line
 * on an O_APPEND descriptor, so concurrent readers never see a line
 * interleaved and a killed writer can only leave a *torn final
 * line*. On reopen, that torn tail is truncated away and a
 * `truncated` warning event is appended — the journal is always
 * reloadable (jsonl::readLines tolerates a torn tail for readers of
 * a *live* journal the same way).
 *
 * Every line carries:
 *   - `event`: the record kind (see docs/METRICS.md for the schema),
 *   - `seq`: strictly increasing from 1, continuous across resumes,
 *   - `t`: seconds since the campaign was created — or, under the
 *     logical clock, the sequence number itself,
 *   - `wall`: unix-epoch seconds (monotonic clock only).
 *
 * The clock seam: `JournalClock::Monotonic` stamps real timestamps;
 * `JournalClock::Logical` stamps deterministic counters and makes
 * writers suppress wall-time payload fields, so two identical
 * campaign runs produce byte-identical journals (and byte-identical
 * `lsqca report` output) — the substrate for tests and CI.
 */

#include <cstdint>
#include <string>

#include "common/json.h"

namespace lsqca::service {

/** Journal schema identifier (the header line's "schema"). */
inline constexpr const char *kEventsSchema = "lsqca-events-v1";

enum class JournalClock : std::uint8_t
{
    /** Real time: `t` = seconds since campaign creation, plus `wall`. */
    Monotonic,
    /** Deterministic: `t` = `seq`, no wall fields anywhere. */
    Logical,
};

/** "monotonic" / "logical". */
const char *journalClockName(JournalClock clock);

/** Inverse of journalClockName. @throws ConfigError. */
JournalClock journalClockFromName(const std::string &name);

/**
 * Appender for one campaign's `events.jsonl`. Default-constructed
 * journals are disabled (every record() is a no-op) — the null
 * object behind `--no-journal`.
 */
class Journal
{
  public:
    Journal() = default;
    ~Journal();

    Journal(Journal &&other) noexcept;
    Journal &operator=(Journal &&other) noexcept;
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Create @p path (with a `journal` header event) or reopen it for
     * appending: the sequence continues from the last record, a torn
     * final line is truncated away and logged as a `truncated` event.
     * @throws ConfigError when the file cannot be opened or an
     * existing journal is unreadable.
     */
    static Journal open(const std::string &path, JournalClock clock);

    /** `<stateDir>/events.jsonl` — where a campaign's journal lives. */
    static std::string pathFor(const std::string &stateDir);

    bool enabled() const { return fd_ >= 0; }

    /** Writers suppress nondeterministic payload fields under this. */
    bool logical() const { return clock_ == JournalClock::Logical; }

    /**
     * Append one event: `{"event":kind,"seq":n,"t":...,["wall":...]}`
     * followed by @p fields' members in their insertion order, as one
     * atomic line. No-op when disabled.
     */
    void record(const std::string &kind, const Json &fields = Json());

    /** Sequence number of the last record (0 when none yet). */
    std::int64_t seq() const { return seq_; }

    const std::string &path() const { return path_; }

  private:
    void close();

    std::string path_;
    int fd_ = -1;
    JournalClock clock_ = JournalClock::Monotonic;
    std::int64_t seq_ = 0;
    /** Unix-epoch seconds of the campaign's first event. */
    double wall0_ = 0.0;
};

} // namespace lsqca::service

#endif // LSQCA_SERVICE_JOURNAL_H
