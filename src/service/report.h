#ifndef LSQCA_SERVICE_REPORT_H
#define LSQCA_SERVICE_REPORT_H

/**
 * @file
 * Campaign observability readers: everything `lsqca report` (and the
 * `lsqca status` age column) derives from a campaign's `events.jsonl`
 * journal — and *only* from the journal, so a report reconstructs an
 * interrupted-and-resumed campaign's full history without queue.json
 * or the orchestrator's in-memory counters (the acceptance contract;
 * tests cross-check these numbers against both).
 *
 *  - CampaignStats::fromFile / fromEvents: one pass over the event
 *    stream folding it into counters (spawns, retries by cause, cache
 *    hits, stragglers, escalations), per-worker attempt spans, and
 *    per-shard last-activity times.
 *  - renderReport: the human tables (wall-clock breakdown, throughput,
 *    retry causes, cache hit rate, escalations, per-worker
 *    utilization). Deterministic given the journal bytes, so a
 *    `--clock logical` campaign reports byte-identically across runs.
 *  - writeChromeTrace: the same spans as a Chrome/Perfetto trace
 *    (`chrome://tracing` JSON array format): one track per worker
 *    slot, one "X" complete span per shard attempt, instant events
 *    for cache hits, retries, and escalations on the orchestrator
 *    track (tid 0). See docs/METRICS.md for the exact mapping.
 */

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.h"

namespace lsqca::service {

/** One worker-slot attempt span reconstructed from spawn/exit. */
struct AttemptSpan
{
    std::int32_t worker = 0;
    std::int32_t shard = 0;
    std::int32_t attempt = 0;
    bool escalated = false;
    /** Journal time units (seconds, or sequence under --clock logical). */
    double start = 0.0;
    double end = 0.0;
    /**
     * done / retry:<cause> / failed:<cause> / interrupted (no exit
     * event before its leg ended).
     */
    std::string outcome;
};

/** One CI escalation decision. */
struct EscalationRecord
{
    std::int32_t shard = 0;
    /** BENCH entry whose confidence interval breached the target. */
    std::string entry;
    double ci = 0.0;
    double targetCi = 0.0;
};

/** Everything `lsqca report` knows, folded from events.jsonl alone. */
struct CampaignStats
{
    std::string journalPath;
    std::string clock = "monotonic";
    std::string campaign;
    std::string specPath;
    std::int32_t shardCount = 0;
    std::int32_t maxAttempts = 0;

    /** Total journal records (including headers and warnings). */
    std::int64_t events = 0;
    /** submit + resume legs recorded. */
    std::int32_t legs = 0;
    /** `truncated` repair warnings (torn tails cut on reopen). */
    std::int32_t truncatedRepairs = 0;
    /** The journal itself currently ends mid-line (live writer). */
    bool truncatedTail = false;

    std::int64_t spawned = 0;
    std::int64_t cacheHits = 0;
    /** Distinct tasks that needed at least one spawn (cache misses). */
    std::int64_t cacheMisses = 0;
    /** Jobs spliced from the job-granularity cache (job_cache_hit). */
    std::int64_t jobCacheHits = 0;
    /** Jobs workers actually simulated (job_computed). */
    std::int64_t jobsComputed = 0;
    std::int64_t retries = 0;
    std::map<std::string, std::int64_t> retriesByCause;
    std::int64_t stragglersKilled = 0;
    std::int64_t tasksDone = 0;
    std::int64_t tasksFailed = 0;

    std::vector<AttemptSpan> spans;
    std::vector<EscalationRecord> escalations;
    /** (t, label) orchestrator-track instants for the Chrome trace. */
    std::vector<std::pair<double, std::string>> instants;

    /** First/last event times (journal time units). */
    double firstT = 0.0;
    double lastT = 0.0;
    /** Campaign epoch (unix seconds; 0 under the logical clock). */
    double wall0 = 0.0;

    /** shard -> wall of its latest event (absent under logical clock). */
    std::map<std::int32_t, double> lastWallByShard;
    /** shard -> t of its latest event. */
    std::map<std::int32_t, double> lastTByShard;

    bool complete = false;
    bool interrupted = false;
    std::string mergedPath;
    std::int64_t bytesMerged = 0;

    /** Total time covered by the journal (lastT - firstT). */
    double span() const { return lastT - firstT; }

    /** Sum of attempt span durations for @p worker. */
    double busySeconds(std::int32_t worker) const;

    /** Worker slots that ever ran an attempt, ascending. */
    std::vector<std::int32_t> workers() const;

    /** Fold a parsed event stream. @throws ConfigError on bad events. */
    static CampaignStats fromEvents(const std::vector<Json> &lines);

    /**
     * readLines(@p path) + fromEvents. A torn final line (live or
     * killed writer) is tolerated and flagged via `truncatedTail`.
     */
    static CampaignStats fromFile(const std::string &path);
};

/** The human `lsqca report` tables. */
void renderReport(const CampaignStats &stats, std::ostream &out);

/** Perfetto-loadable trace of the campaign's worker activity. */
void writeChromeTrace(const CampaignStats &stats, std::ostream &out);

} // namespace lsqca::service

#endif // LSQCA_SERVICE_REPORT_H
