#ifndef LSQCA_SERVICE_CACHE_H
#define LSQCA_SERVICE_CACHE_H

/**
 * @file
 * Content-addressed shard result cache.
 *
 * Every finished shard's BENCH document is stored under
 * `<dir>/<fingerprint>.json`, where the fingerprint is the canonical
 * hash of the shard's content manifest — the job slice's fully
 * canonicalized parameters and options, the shard geometry, and the
 * BENCH schema version (api::shardFingerprint). Two invocations with
 * equal fingerprints are guaranteed to produce byte-identical
 * documents under --no-timing, so fetches are byte-exact copies:
 * re-submitting an overlapping spec skips every shard the cache
 * already holds, and the merged artifact is still bit-for-bit what a
 * direct run would have written.
 *
 * The cache is shared-safe between concurrent campaigns: stores go
 * through atomic tmp+rename publishes, and any later writer of the
 * same key writes the same bytes by construction.
 */

#include <cstddef>
#include <string>

namespace lsqca::service {

/** File-per-fingerprint BENCH document cache. */
class ResultCache
{
  public:
    /** An empty @p dir disables the cache (every lookup misses). */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }

    const std::string &dir() const { return dir_; }

    /** Where @p fingerprint lives/would live. @throws when disabled. */
    std::string pathFor(const std::string &fingerprint) const;

    bool contains(const std::string &fingerprint) const;

    /**
     * Byte-exact copy of the cached document to @p destPath.
     * @return false on a miss (or when disabled).
     */
    bool fetch(const std::string &fingerprint,
               const std::string &destPath) const;

    /**
     * Publish @p srcPath under @p fingerprint (atomic; a concurrent
     * writer of the same key writes identical bytes). No-op when
     * disabled.
     */
    void store(const std::string &fingerprint,
               const std::string &srcPath) const;

    /** Cached documents currently on disk (0 when disabled). */
    std::size_t size() const;

  private:
    std::string dir_;
};

} // namespace lsqca::service

#endif // LSQCA_SERVICE_CACHE_H
