#ifndef LSQCA_SERVICE_CACHE_H
#define LSQCA_SERVICE_CACHE_H

/**
 * @file
 * Content-addressed result cache, at two granularities.
 *
 * Shard level (the fast path): every finished shard's BENCH document
 * is stored under `<dir>/<fingerprint>.json`, where the fingerprint is
 * the canonical hash of the shard's content manifest — the job slice's
 * fully canonicalized parameters and options, the shard geometry, and
 * the BENCH schema version (api::shardFingerprint). Two invocations
 * with equal fingerprints are guaranteed to produce byte-identical
 * documents under --no-timing, so fetches are byte-exact copies:
 * re-submitting an overlapping spec skips every shard the cache
 * already holds, and the merged artifact is still bit-for-bit what a
 * direct run would have written.
 *
 * Job level (the incremental layer underneath): each simulated job's
 * BENCH *entry* is stored under `<dir>/jobs/<fingerprint>.json`, keyed
 * by api::jobFingerprint — no sweep name, no shard geometry — wrapped
 * in a `lsqca-jobcache-v1` document that also carries the job's
 * provenance manifest. A spec edit that shifts the shard partition
 * (e.g. one added grid point) invalidates every shard fingerprint but
 * almost no job fingerprints, so a resubmit recomputes exactly the new
 * jobs and splices the rest.
 *
 * The cache is shared-safe between concurrent campaigns: stores go
 * through atomic fsync+rename publishes, and any later writer of the
 * same key writes the same bytes by construction.
 */

#include <cstddef>
#include <string>

#include "api/job_cache.h"
#include "common/json.h"

namespace lsqca::service {

/** File-per-fingerprint BENCH document cache. */
class ResultCache
{
  public:
    /** An empty @p dir disables the cache (every lookup misses). */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }

    const std::string &dir() const { return dir_; }

    /** Where @p fingerprint lives/would live. @throws when disabled. */
    std::string pathFor(const std::string &fingerprint) const;

    bool contains(const std::string &fingerprint) const;

    /**
     * Byte-exact copy of the cached document to @p destPath.
     * @return false on a miss (or when disabled).
     */
    bool fetch(const std::string &fingerprint,
               const std::string &destPath) const;

    /**
     * Publish @p srcPath under @p fingerprint (atomic; a concurrent
     * writer of the same key writes identical bytes). No-op when
     * disabled.
     */
    void store(const std::string &fingerprint,
               const std::string &srcPath) const;

    /** Cached documents currently on disk (0 when disabled). */
    std::size_t size() const;

    /** Where job @p fingerprint lives/would live. @throws disabled. */
    std::string jobPathFor(const std::string &fingerprint) const;

    bool containsJob(const std::string &fingerprint) const;

    /**
     * The cached BENCH entry for @p fingerprint, or a null Json on a
     * miss. A file that is unreadable or fails `lsqca-jobcache-v1`
     * validation (foreign bytes in a shared directory) is treated as a
     * miss — the cache must never block progress, and the next store
     * heals the entry.
     */
    Json fetchJob(const std::string &fingerprint) const;

    /**
     * Publish @p entry (plus its @p provenance manifest) under job
     * @p fingerprint, wrapped as `lsqca-jobcache-v1`. Atomic and
     * durable; no-op when disabled.
     */
    void storeJob(const std::string &fingerprint, const Json &entry,
                  const Json &provenance) const;

    /** Cached job entries currently on disk (0 when disabled). */
    std::size_t jobCount() const;

  private:
    std::string dir_;
};

/**
 * api::JobCacheClient over a ResultCache, so runSpec (which may not
 * depend on the service layer) can consume the job cache through the
 * seam declared in src/api/job_cache.h.
 */
class JobCacheAdapter final : public api::JobCacheClient
{
  public:
    explicit JobCacheAdapter(const ResultCache &cache) : cache_(cache) {}

    Json fetchEntry(const std::string &fingerprint) override
    {
        return cache_.fetchJob(fingerprint);
    }

    void storeEntry(const std::string &fingerprint, const Json &entry,
                    const Json &provenance) override
    {
        cache_.storeJob(fingerprint, entry, provenance);
    }

  private:
    const ResultCache &cache_;
};

} // namespace lsqca::service

#endif // LSQCA_SERVICE_CACHE_H
