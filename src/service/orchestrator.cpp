#include "service/orchestrator.h"

#include <chrono>
#include <thread>

#include "common/error.h"
#include "common/shutdown.h"

namespace lsqca::service {

Orchestrator::Orchestrator(OrchestratorOptions options)
    : options_(std::move(options))
{
    LSQCA_REQUIRE(!options_.stateDir.empty(),
                  "the orchestrator needs a state dir");
    LSQCA_REQUIRE(!options_.workerExe.empty(),
                  "the orchestrator needs a worker executable");
    LSQCA_REQUIRE(options_.workers >= 1 && options_.workers <= 1024,
                  "--workers must lie in [1, 1024]");
    LSQCA_REQUIRE(options_.shards >= 0 && options_.shards <= (1 << 20),
                  "--shards must lie in [0, 2^20]");
    LSQCA_REQUIRE(options_.stragglerFactor >= 1.0,
                  "--straggler-factor must be >= 1");
}

std::string
Orchestrator::queuePath(const std::string &stateDir)
{
    return queuePathFor(stateDir);
}

std::string
Orchestrator::shardFileName(const std::string &campaign,
                            std::int32_t index, std::int32_t count)
{
    return service::shardFileName(campaign, index, count);
}

QueueState
Orchestrator::inspect(const std::string &stateDir)
{
    return QueueState::load(queuePath(stateDir));
}

SchedulerOptions
Orchestrator::schedulerOptions() const
{
    SchedulerOptions sched;
    sched.stateDir = options_.stateDir;
    sched.cacheDir = !options_.useCache
                         ? std::string()
                         : (options_.cacheDir.empty()
                                ? options_.stateDir + "/cache"
                                : options_.cacheDir);
    sched.outDir = options_.outDir;
    sched.threadsPerWorker = options_.threadsPerWorker;
    sched.workers = options_.workers;
    sched.timeoutSeconds = options_.timeoutSeconds;
    sched.stragglerFactor = options_.stragglerFactor;
    sched.minStragglerSeconds = options_.minStragglerSeconds;
    sched.seedCheck = options_.seedCheck;
    sched.workerExe = options_.workerExe;
    sched.journal = options_.journal;
    sched.clock = options_.clock;
    sched.extraWorkerArgs = options_.extraWorkerArgs;
    sched.firstAttemptExtraArgs = options_.firstAttemptExtraArgs;
    return sched;
}

CampaignReport
Orchestrator::submit(const std::string &specPath)
{
    // The lock covers the whole drive: admission races (two submits
    // creating queue.json) and drive races (a resume on a live
    // campaign) both fail fast at acquire instead of corrupting
    // state. Released by ~Orchestrator / the next acquire.
    lock_ = StateLock::acquire(options_.stateDir);
    return drive(admitCampaign(specPath, options_.stateDir,
                               options_.shards, options_.workers,
                               options_.noTiming, options_.maxAttempts));
}

CampaignReport
Orchestrator::resume()
{
    lock_ = StateLock::acquire(options_.stateDir);
    return drive(reopenCampaign(options_.stateDir, options_.maxAttempts));
}

CampaignReport
Orchestrator::drive(CampaignAdmission admission)
{
    Scheduler scheduler(schedulerOptions(), std::move(admission));
    scheduler.cachePass();

    const auto interruptedBySignal = [&]() -> int {
        return options_.handleShutdown ? shutdown::pending() : 0;
    };

    for (;;) {
        // Dispatch pending shards into free worker slots.
        while (scheduler.runningCount() <
               static_cast<std::size_t>(options_.workers)) {
            if (scheduler.dispatchOne() < 0)
                break;
            if (options_.stopAfterDispatches > 0 &&
                scheduler.progress().spawned >=
                    options_.stopAfterDispatches) {
                scheduler.killWorkers();
                return scheduler.finish(true);
            }
        }

        if (const int signal = interruptedBySignal()) {
            // Orderly Ctrl-C/SIGTERM: no orphaned workers, the queue
            // on disk keeps the killed attempts marked running (a
            // resume leg re-queues them), and the journal records
            // why this leg ended instead of leaning on torn-tail
            // repair.
            scheduler.killWorkers();
            scheduler.recordShutdown(signal);
            CampaignReport report = scheduler.finish(true);
            report.shutdownSignal = signal;
            return report;
        }

        if (scheduler.runningCount() == 0) {
            if (!scheduler.maybeEscalate())
                break;
            // New derived tasks: give the cache a chance first, then
            // fall through to dispatch whatever it missed.
            scheduler.cachePass();
            continue;
        }

        scheduler.pollWorkers();
        if (scheduler.runningCount() > 0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(options_.pollSeconds));
    }

    return scheduler.finish(false);
}

} // namespace lsqca::service
