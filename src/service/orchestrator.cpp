#include "service/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>
#include <thread>

#include "api/registry.h"
#include "api/spec.h"
#include "common/error.h"
#include "common/fs.h"
#include "common/metrics.h"
#include "common/subprocess.h"
#include "common/table.h"
#include "estimate/options.h"
#include "service/cache.h"
#include "sweep/sweep.h"

namespace lsqca::service {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Upper-biased median of a non-empty sample (heuristic use only). */
double
medianOf(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return values[mid];
    return 0.5 * (values[mid - 1] + values[mid]);
}

/** A live worker attempt. */
struct RunningWorker
{
    std::size_t task = 0;
    proc::Pid pid = 0;
    Clock::time_point start;
    std::string logPath;
    /** Worker slot (1..workers) — the journal/Chrome-trace track. */
    std::int32_t slot = 0;
};

/** Lowest slot >= 1 not held by a live worker. */
std::int32_t
freeSlot(const std::vector<RunningWorker> &running)
{
    for (std::int32_t slot = 1;; ++slot) {
        bool taken = false;
        for (const RunningWorker &worker : running)
            if (worker.slot == slot)
                taken = true;
        if (!taken)
            return slot;
    }
}

/**
 * Full-precision rendering for values that are re-parsed by workers
 * (a policy knob must survive the argv round trip exactly; "%.3f"
 * would truncate sub-millisecond timeouts to an invalid "0.000").
 */
std::string
formatArgDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

/**
 * Fingerprints of the campaign's shards rerun with the exact
 * estimator: what a `--force-exact` worker expands to, and therefore
 * the content address of a derived escalation task (the same key an
 * exact campaign over the same spec would use, so escalations share
 * its cache entries).
 */
std::vector<std::string>
exactShardFingerprints(const api::SweepSpec &spec,
                       std::vector<api::ExpandedJob> jobs,
                       std::int32_t shardCount, bool noTiming)
{
    for (api::ExpandedJob &job : jobs)
        job.options.estimator = estimate::EstimatorOptions{};
    return api::shardFingerprints(spec, jobs, shardCount, noTiming);
}

} // namespace

double
stragglerDeadline(double medianSeconds, double factor,
                  double minSeconds)
{
    return std::max(factor * medianSeconds, minSeconds);
}

Orchestrator::Orchestrator(OrchestratorOptions options)
    : options_(std::move(options))
{
    LSQCA_REQUIRE(!options_.stateDir.empty(),
                  "the orchestrator needs a state dir");
    LSQCA_REQUIRE(!options_.workerExe.empty(),
                  "the orchestrator needs a worker executable");
    LSQCA_REQUIRE(options_.workers >= 1 && options_.workers <= 1024,
                  "--workers must lie in [1, 1024]");
    LSQCA_REQUIRE(options_.shards >= 0 && options_.shards <= (1 << 20),
                  "--shards must lie in [0, 2^20]");
    LSQCA_REQUIRE(options_.stragglerFactor >= 1.0,
                  "--straggler-factor must be >= 1");
}

std::string
Orchestrator::queuePath(const std::string &stateDir)
{
    return stateDir + "/queue.json";
}

std::string
Orchestrator::shardFileName(const std::string &campaign,
                            std::int32_t index, std::int32_t count)
{
    // Mirrors runSpec's output naming: a whole-sweep shard (0/1)
    // carries no marker and no suffix.
    if (count <= 1)
        return "BENCH_" + campaign + ".json";
    return "BENCH_" + campaign + ".shard" + std::to_string(index) +
           "of" + std::to_string(count) + ".json";
}

QueueState
Orchestrator::inspect(const std::string &stateDir)
{
    return QueueState::load(queuePath(stateDir));
}

void
Orchestrator::openJournal(const char *leg, const QueueState &state)
{
    if (!options_.journal) {
        journal_ = Journal();
        return;
    }
    journal_ =
        Journal::open(Journal::pathFor(options_.stateDir), options_.clock);
    Json fields = Json::object();
    fields.set("campaign", state.campaign);
    fields.set("spec", state.specPath);
    fields.set("shards", state.shardCount);
    fields.set("workers", options_.workers);
    fields.set("max_attempts", state.maxAttempts);
    fields.set("no_timing", state.noTiming);
    journal_.record(leg, fields);
}

CampaignReport
Orchestrator::submit(const std::string &specPath)
{
    const std::string queueFile = queuePath(options_.stateDir);
    LSQCA_REQUIRE(!fsutil::exists(queueFile),
                  options_.stateDir +
                      " already holds a campaign; continue it with "
                      "`lsqca resume` or remove the directory");

    // Absolute so `lsqca resume` works from any working directory.
    const std::string absSpec =
        std::filesystem::absolute(specPath).lexically_normal().string();
    const api::SweepSpec spec = api::SweepSpec::load(absSpec);
    const api::BenchmarkRegistry registry =
        api::BenchmarkRegistry::paper();
    const std::vector<api::ExpandedJob> jobs =
        api::expandSpec(spec, registry);

    std::int32_t shards = options_.shards;
    if (shards <= 0)
        shards = static_cast<std::int32_t>(
            std::min<std::int64_t>(static_cast<std::int64_t>(jobs.size()),
                                   std::max(4 * options_.workers, 1)));

    QueueState state;
    state.campaign = spec.name;
    state.specPath = absSpec;
    state.shardCount = shards;
    state.noTiming = options_.noTiming;
    state.maxAttempts =
        options_.maxAttempts > 0 ? options_.maxAttempts : 3;
    const std::vector<std::string> fingerprints =
        api::shardFingerprints(spec, jobs, shards, state.noTiming);
    for (std::int32_t i = 0; i < shards; ++i) {
        ShardTask task;
        task.index = i;
        task.fingerprint = fingerprints[static_cast<std::size_t>(i)];
        if (spec.estimator.sampled())
            task.mode = estimate::estimatorModeName(spec.estimator.mode);
        state.tasks.push_back(std::move(task));
    }
    fsutil::makeDirs(options_.stateDir);
    state.save(queueFile);
    openJournal("submit", state);
    return drive(std::move(state), spec, jobs);
}

CampaignReport
Orchestrator::resume()
{
    const std::string queueFile = queuePath(options_.stateDir);
    LSQCA_REQUIRE(fsutil::exists(queueFile),
                  options_.stateDir +
                      " holds no campaign (no queue.json); start one "
                      "with `lsqca submit`");
    QueueState state = QueueState::load(queueFile);

    // Re-derive the campaign's fingerprints from the spec file as it
    // exists *now*: if it (or the registry) changed since the queue
    // was created, completed shards and queued ones would disagree on
    // content, so refuse to continue rather than poison the merge.
    // (submit() skips this — it computed the fingerprints from the
    // same file milliseconds ago.)
    const api::SweepSpec spec = api::SweepSpec::load(state.specPath);
    LSQCA_REQUIRE(spec.name == state.campaign,
                  state.specPath + ": spec name \"" + spec.name +
                      "\" does not match campaign \"" + state.campaign +
                      "\"");
    const api::BenchmarkRegistry registry =
        api::BenchmarkRegistry::paper();
    const std::vector<api::ExpandedJob> jobs =
        api::expandSpec(spec, registry);
    const std::vector<std::string> fingerprints = api::shardFingerprints(
        spec, jobs, state.shardCount, state.noTiming);
    // Derived escalation tasks were queued with the *exact* slice's
    // fingerprint (their workers run --force-exact).
    std::vector<std::string> exactFingerprints;
    if (state.escalationCount() > 0)
        exactFingerprints = exactShardFingerprints(
            spec, jobs, state.shardCount, state.noTiming);
    for (std::size_t i = 0; i < state.tasks.size(); ++i) {
        const ShardTask &task = state.tasks[i];
        const std::string &expanded =
            task.escalated
                ? exactFingerprints[static_cast<std::size_t>(task.index)]
                : fingerprints[static_cast<std::size_t>(task.index)];
        LSQCA_REQUIRE(
            expanded == task.fingerprint,
            "shard " + std::to_string(task.index) + " of campaign \"" +
                state.campaign + "\" now expands to fingerprint " +
                expanded + " but was queued as " + task.fingerprint +
                " — the spec file changed under the campaign; submit "
                "it as a new campaign instead");
    }

    state.resetRunning();
    if (options_.maxAttempts > state.maxAttempts) {
        // A raised cap re-opens shards that exhausted the old one.
        state.maxAttempts = options_.maxAttempts;
        for (ShardTask &task : state.tasks)
            if (task.status == TaskStatus::Failed &&
                task.attempts < state.maxAttempts)
                task.status = TaskStatus::Pending;
    }
    state.save(queueFile);
    openJournal("resume", state);
    return drive(std::move(state), spec, jobs);
}

CampaignReport
Orchestrator::drive(QueueState state, const api::SweepSpec &spec,
                    const std::vector<api::ExpandedJob> &jobs)
{
    CampaignReport report;
    report.queuePath = queuePath(options_.stateDir);
    if (journal_.enabled())
        report.journalPath = journal_.path();

    // One registry per drive: the same counters the CampaignReport
    // carries, plus distributions the report's integers flatten. The
    // snapshot lands in <state>/metrics.json at the end of the drive;
    // tests cross-check it against the journal-derived numbers.
    metrics::Registry metrics;
    metrics::Counter &mSpawns = metrics.counter("service.spawns");
    metrics::Counter &mCacheHits =
        metrics.counter("service.cache.hits");
    metrics::Counter &mCacheMisses =
        metrics.counter("service.cache.misses");
    metrics::Counter &mJobHits =
        metrics.counter("service.job_cache.hits");
    metrics::Counter &mJobsComputed =
        metrics.counter("service.job_cache.computed");
    metrics::Counter &mRetries = metrics.counter("service.retries");
    metrics::Counter &mStragglers =
        metrics.counter("service.stragglers_killed");
    metrics::Counter &mEscalations =
        metrics.counter("service.escalations");
    metrics::Counter &mTasksDone = metrics.counter("service.tasks.done");
    metrics::Counter &mTasksFailed =
        metrics.counter("service.tasks.failed");
    metrics::Counter &mBytesMerged =
        metrics.counter("service.bytes_merged");
    metrics::Histogram &mShardWall =
        metrics.histogram("service.shard_wall_seconds");
    metrics.gauge("service.workers")
        .set(static_cast<double>(options_.workers));

    // Journal fields must not depend on where the campaign directory
    // happens to live (byte-stable --clock logical reruns).
    const auto relativePath = [&](const std::string &path) {
        const std::string prefix = options_.stateDir + "/";
        if (path.rfind(prefix, 0) == 0)
            return path.substr(prefix.size());
        return path;
    };

    // Every exit from drive(): the terminal `done` event (the journal
    // cross-check anchor) and the metrics snapshot.
    const auto finish = [&]() -> CampaignReport {
        Json fields = Json::object();
        fields.set("complete", report.complete);
        fields.set("interrupted", report.interrupted);
        fields.set("spawned", report.spawned);
        fields.set("cache_hits", report.cacheHits);
        fields.set("retries", report.retries);
        fields.set("stragglers_killed", report.stragglersKilled);
        fields.set("escalations", report.escalations);
        fields.set("job_cache_hits", report.jobCacheHits);
        fields.set("jobs_computed", report.jobsComputed);
        journal_.record("done", fields);
        report.metrics = metrics.toJson();
        if (journal_.enabled()) {
            report.metricsPath = options_.stateDir + "/metrics.json";
            fsutil::writeFileAtomic(report.metricsPath,
                                    report.metrics.dump(2) + "\n");
        }
        return report;
    };

    const std::string shardsDir = options_.stateDir + "/shards";
    // Escalated exact reruns land in a subdirectory: their worker
    // writes the same BENCH_<campaign>.shard<i>of<N>.json name the
    // sampled shard already used.
    const std::string exactDir = shardsDir + "/exact";
    const std::string logsDir = options_.stateDir + "/logs";
    fsutil::makeDirs(shardsDir);
    const ResultCache cache(
        !options_.useCache
            ? std::string()
            : (options_.cacheDir.empty() ? options_.stateDir + "/cache"
                                         : options_.cacheDir));

    const auto taskDir = [&](const ShardTask &task) -> const std::string & {
        return task.escalated ? exactDir : shardsDir;
    };
    const auto taskOutput = [&](const ShardTask &task,
                                const std::string &name) {
        return (task.escalated ? "shards/exact/" : "shards/") + name;
    };

    // Job-granularity fingerprints (docs/SERVICE.md): computed once
    // per drive, shared by the cache pass (splice prediction) and the
    // reap path (job_computed events). Escalated tasks address the
    // exact-estimator variants, lazily since most campaigns have none.
    const std::vector<std::string> jobPrints =
        cache.enabled() ? api::jobFingerprints(spec, jobs, state.noTiming)
                        : std::vector<std::string>();
    std::vector<std::string> exactJobPrints;
    const auto exactPrints = [&]() -> const std::vector<std::string> & {
        if (exactJobPrints.empty() && !jobs.empty()) {
            std::vector<api::ExpandedJob> exactJobs = jobs;
            for (api::ExpandedJob &job : exactJobs)
                job.options.estimator = estimate::EstimatorOptions{};
            exactJobPrints =
                api::jobFingerprints(spec, exactJobs, state.noTiming);
        }
        return exactJobPrints;
    };
    // Global job indices the cache pass predicted each dispatched task
    // must simulate (keyed by task position; consumed on task_done).
    std::map<std::size_t, std::vector<std::size_t>> staleByTask;

    // Cache pass: shards whose content-address is already on disk are
    // done without spawning anything — and on a shard-level miss, a
    // slice whose *jobs* are all individually cached is assembled
    // in-process, still with zero spawns. Runs again after escalation
    // so a derived exact rerun can be served from an earlier exact
    // campaign's cache entries.
    const auto cachePass = [&] {
        for (std::size_t t = 0; t < state.tasks.size(); ++t) {
            ShardTask &task = state.tasks[t];
            if (task.status != TaskStatus::Pending)
                continue;
            const std::string name = shardFileName(
                state.campaign, task.index, state.shardCount);
            if (task.escalated)
                fsutil::makeDirs(exactDir);
            const std::string outPath = taskDir(task) + "/" + name;
            const auto markCached = [&](const char *level,
                                        std::int64_t splicedJobs) {
                task.status = TaskStatus::Done;
                task.cached = true;
                task.wallSeconds = 0.0;
                task.output = taskOutput(task, name);
                task.lastError = "";
                ++report.cacheHits;
                mCacheHits.add();
                Json fields = Json::object();
                fields.set("shard", task.index);
                if (task.escalated)
                    fields.set("escalated", true);
                fields.set("fingerprint", task.fingerprint);
                if (splicedJobs > 0) {
                    fields.set("level", level);
                    fields.set("jobs", splicedJobs);
                }
                journal_.record("cache_hit", fields);
            };
            if (cache.fetch(task.fingerprint, outPath)) {
                markCached("shard", 0);
                continue;
            }
            if (!cache.enabled()) {
                mCacheMisses.add();
                continue;
            }

            // Job-granularity pass: the shard document is gone (the
            // partition moved, or the spec gained grid points), but
            // most of its jobs may still be cached individually.
            api::ShardRange range;
            range.index = task.index;
            range.count = state.shardCount;
            const auto [begin, end] = range.bounds(jobs.size());
            const std::vector<std::string> &prints =
                task.escalated ? exactPrints() : jobPrints;
            Json entries = Json::array();
            bool v2 = spec.recordBreakdown;
            std::vector<std::size_t> stale;
            for (std::size_t j = begin; j < end; ++j) {
                Json entry = cache.fetchJob(prints[j]);
                if (entry.isNull()) {
                    stale.push_back(j);
                    continue;
                }
                ++report.jobCacheHits;
                mJobHits.add();
                Json fields = Json::object();
                fields.set("shard", task.index);
                if (task.escalated)
                    fields.set("escalated", true);
                fields.set("job", static_cast<std::int64_t>(j));
                fields.set("fingerprint", prints[j]);
                journal_.record("job_cache_hit", fields);
                v2 = v2 || entry.contains("breakdown");
                entries.push(std::move(entry));
            }
            task.jobsCached =
                static_cast<std::int32_t>(end - begin - stale.size());
            task.jobsComputed = static_cast<std::int32_t>(stale.size());
            if (!stale.empty() || begin == end) {
                staleByTask[t] = std::move(stale);
                mCacheMisses.add();
                continue;
            }

            // Every job in the slice is cached: assemble the shard
            // document in-process through the same benchDocument the
            // workers use (byte-identical under --no-timing), warm the
            // shard-level fast path, and mark the task cached — the
            // report invariant `tasks_done + cache_hits == shards`
            // holds whichever cache level satisfied it.
            Json doc = benchDocument(state.campaign, std::move(entries),
                                     0, 0.0, v2);
            if (state.shardCount > 1) {
                Json marker = Json::object();
                marker.set("index", task.index);
                marker.set("count", state.shardCount);
                marker.set("offset", static_cast<std::int64_t>(begin));
                marker.set("total",
                           static_cast<std::int64_t>(jobs.size()));
                doc.set("shard", std::move(marker));
            }
            doc.write(outPath);
            cache.store(task.fingerprint, outPath);
            markCached("job", static_cast<std::int64_t>(end - begin));
        }
        state.save(report.queuePath);
    };
    cachePass();

    std::vector<RunningWorker> running;
    std::vector<double> doneWalls;

    // Crash/timeout/straggler funnel: back to pending while the
    // attempt budget lasts, failed once it is exhausted. @p cause is
    // the journal/metrics taxonomy: crash | timeout | straggler |
    // no_output.
    const auto fail = [&](ShardTask &task, const std::string &reason,
                          const std::string &cause) {
        task.lastError = reason;
        Json fields = Json::object();
        fields.set("shard", task.index);
        if (task.attempts >= state.maxAttempts) {
            task.status = TaskStatus::Failed;
            mTasksFailed.add();
            fields.set("attempts", task.attempts);
            fields.set("cause", cause);
            // The free-text reason embeds wall times and log paths;
            // the logical clock keeps only the deterministic cause
            // (queue.json still holds the full string).
            if (!journal_.logical())
                fields.set("detail", reason);
            journal_.record("task_failed", fields);
        } else {
            task.status = TaskStatus::Pending;
            ++report.retries;
            mRetries.add();
            metrics.counter("service.retries." + cause).add();
            fields.set("attempt", task.attempts);
            fields.set("cause", cause);
            if (!journal_.logical())
                fields.set("detail", reason);
            journal_.record("retry", fields);
        }
    };

    const auto reap = [&](const RunningWorker &worker) {
        proc::terminate(worker.pid);
        proc::wait(worker.pid);
    };

    // CI escalation (docs/SAMPLING.md): with the queue drained, each
    // sampled base shard's BENCH output is inspected; any entry whose
    // sampling_error breaches the spec's target_ci queues a derived
    // exact rerun of the slice. Returns true when new tasks were
    // appended, restarting the drain.
    const auto escalate = [&]() -> bool {
        if (!state.allDone())
            return false;
        if (!spec.estimator.sampled() ||
            spec.estimator.targetCi <= 0.0)
            return false;
        struct Breach
        {
            std::int32_t shard;
            std::string entry;
            double ci;
        };
        std::vector<Breach> breached;
        for (std::int32_t i = 0; i < state.shardCount; ++i) {
            const ShardTask &task =
                state.tasks[static_cast<std::size_t>(i)];
            if (state.escalationFor(i) != nullptr)
                continue;
            const Json doc =
                Json::load(options_.stateDir + "/" + task.output);
            for (const Json &entry : doc.at("entries").items()) {
                const Json *error =
                    entry.at("metrics").find("sampling_error");
                if (error != nullptr &&
                    error->asDouble() > spec.estimator.targetCi) {
                    breached.push_back({i,
                                        entry.at("name").asString(),
                                        error->asDouble()});
                    break;
                }
            }
        }
        if (breached.empty())
            return false;
        const std::vector<std::string> exact = exactShardFingerprints(
            spec, jobs, state.shardCount, state.noTiming);
        for (const Breach &breach : breached) {
            ShardTask task;
            task.index = breach.shard;
            task.fingerprint =
                exact[static_cast<std::size_t>(breach.shard)];
            task.escalated = true;
            state.tasks.push_back(std::move(task));
            ++report.escalations;
            mEscalations.add();
            Json fields = Json::object();
            fields.set("shard", breach.shard);
            fields.set("entry", breach.entry);
            fields.set("ci", breach.ci);
            fields.set("target_ci", spec.estimator.targetCi);
            journal_.record("escalation", fields);
        }
        state.save(report.queuePath);
        return true;
    };

    for (;;) {
        // Dispatch pending shards into free worker slots, recording
        // the attempt in queue.json *before* the spawn so a dead
        // orchestrator can never under-count attempts.
        for (std::size_t t = 0;
             t < state.tasks.size() &&
             running.size() < static_cast<std::size_t>(options_.workers);
             ++t) {
            ShardTask &task = state.tasks[t];
            if (task.status != TaskStatus::Pending)
                continue;
            ++task.attempts;
            task.status = TaskStatus::Running;
            state.save(report.queuePath);

            if (task.escalated)
                fsutil::makeDirs(exactDir);
            proc::Command command;
            command.argv = {options_.workerExe,
                            "run",
                            state.specPath,
                            "--shard",
                            std::to_string(task.index) + "/" +
                                std::to_string(state.shardCount),
                            "--threads",
                            std::to_string(options_.threadsPerWorker),
                            "--out",
                            taskDir(task)};
            if (task.escalated)
                command.argv.push_back("--force-exact");
            if (cache.enabled()) {
                // The worker splices cached entries itself and
                // simulates only the stale jobs (runSpec's job-cache
                // seam) — the incremental half of the layered cache.
                command.argv.push_back("--job-cache");
                command.argv.push_back(cache.dir());
            }
            if (state.noTiming)
                command.argv.push_back("--no-timing");
            if (options_.timeoutSeconds > 0.0) {
                command.argv.push_back("--timeout-seconds");
                command.argv.push_back(
                    formatArgDouble(options_.timeoutSeconds));
            }
            if (options_.seedCheck) {
                command.argv.push_back("--seed-check");
                command.argv.push_back(task.fingerprint);
            }
            command.argv.insert(command.argv.end(),
                                options_.extraWorkerArgs.begin(),
                                options_.extraWorkerArgs.end());
            if (task.attempts == 1)
                command.argv.insert(
                    command.argv.end(),
                    options_.firstAttemptExtraArgs.begin(),
                    options_.firstAttemptExtraArgs.end());
            command.logPath = logsDir + "/shard" +
                              std::to_string(task.index) + ".attempt" +
                              std::to_string(task.attempts) + ".log";

            RunningWorker worker;
            worker.task = t;
            worker.slot = freeSlot(running);
            worker.pid = proc::spawn(command);
            worker.start = Clock::now();
            worker.logPath = command.logPath;
            ++report.spawned;
            mSpawns.add();
            {
                Json fields = Json::object();
                fields.set("shard", task.index);
                fields.set("attempt", task.attempts);
                fields.set("worker", worker.slot);
                if (task.escalated)
                    fields.set("escalated", true);
                if (!journal_.logical())
                    fields.set("pid", worker.pid);
                journal_.record("spawn", fields);
            }
            running.push_back(std::move(worker));

            if (options_.stopAfterDispatches > 0 &&
                report.spawned >= options_.stopAfterDispatches) {
                // Simulated orchestrator death: the queue keeps the
                // tasks marked running; resume() re-queues them. The
                // live attempts get no exit events — exactly what a
                // real dead orchestrator leaves behind — so the
                // report's open-span closure path is what tests see.
                for (const RunningWorker &live : running)
                    reap(live);
                report.interrupted = true;
                report.queue = state;
                return finish();
            }
        }

        if (running.empty()) {
            if (!escalate())
                break;
            // New derived tasks: give the cache a chance first, then
            // fall through to dispatch whatever it missed.
            cachePass();
            continue;
        }

        // Reap finished workers; kill stragglers.
        const double deadline =
            doneWalls.empty()
                ? 0.0
                : stragglerDeadline(medianOf(doneWalls),
                                    options_.stragglerFactor,
                                    options_.minStragglerSeconds);
        for (std::size_t w = 0; w < running.size();) {
            const RunningWorker &worker = running[w];
            ShardTask &task = state.tasks[worker.task];
            proc::Status status = proc::poll(worker.pid);
            const double elapsed = secondsSince(worker.start);

            // The deadline doubles with every attempt, and a shard's
            // final attempt is immune: killing the only copy of a
            // legitimately slow shard into a failed campaign would be
            // worse than waiting (the hard --timeout-seconds still
            // bounds a truly wedged worker).
            const double taskDeadline =
                deadline * static_cast<double>(1 << std::min(
                                                   task.attempts - 1,
                                                   16));
            if (status.running && deadline > 0.0 &&
                task.attempts < state.maxAttempts &&
                elapsed > taskDeadline) {
                reap(worker);
                ++report.stragglersKilled;
                mStragglers.add();
                {
                    Json fields = Json::object();
                    fields.set("shard", task.index);
                    fields.set("attempt", task.attempts);
                    fields.set("worker", worker.slot);
                    fields.set("killed", true);
                    if (!journal_.logical())
                        fields.set("wall_s", elapsed);
                    journal_.record("exit", fields);
                }
                fail(task,
                     "straggler killed after " +
                         TextTable::num(elapsed, 3) + " s (deadline " +
                         TextTable::num(taskDeadline, 3) +
                         " s, attempt " + std::to_string(task.attempts) +
                         ", base = " +
                         TextTable::num(options_.stragglerFactor, 3) +
                         " x median done wall)",
                     "straggler");
                state.save(report.queuePath);
                running.erase(running.begin() +
                              static_cast<std::ptrdiff_t>(w));
                continue;
            }
            if (status.running) {
                ++w;
                continue;
            }

            const std::string name = shardFileName(
                state.campaign, task.index, state.shardCount);
            const std::string outPath = taskDir(task) + "/" + name;
            {
                Json fields = Json::object();
                fields.set("shard", task.index);
                fields.set("attempt", task.attempts);
                fields.set("worker", worker.slot);
                if (status.ok())
                    fields.set("ok", true);
                else if (status.exited)
                    fields.set("code", status.exitCode);
                else
                    fields.set("signal", status.signal);
                if (!journal_.logical())
                    fields.set("wall_s", elapsed);
                journal_.record("exit", fields);
            }
            if (status.ok() && fsutil::exists(outPath)) {
                task.status = TaskStatus::Done;
                task.cached = false;
                task.wallSeconds = elapsed;
                task.output = taskOutput(task, name);
                task.lastError = "";
                doneWalls.push_back(elapsed);
                cache.store(task.fingerprint, outPath);
                mTasksDone.add();
                mShardWall.observe(elapsed);
                // The jobs the cache pass predicted this task had to
                // simulate are now on record (the worker stored their
                // entries under these fingerprints).
                const auto staleIt = staleByTask.find(worker.task);
                if (staleIt != staleByTask.end()) {
                    const std::vector<std::string> &prints =
                        task.escalated ? exactPrints() : jobPrints;
                    for (const std::size_t j : staleIt->second) {
                        ++report.jobsComputed;
                        mJobsComputed.add();
                        Json computed = Json::object();
                        computed.set("shard", task.index);
                        if (task.escalated)
                            computed.set("escalated", true);
                        computed.set("job", static_cast<std::int64_t>(j));
                        computed.set("fingerprint", prints[j]);
                        journal_.record("job_computed", computed);
                    }
                    staleByTask.erase(staleIt);
                }
                Json fields = Json::object();
                fields.set("shard", task.index);
                if (task.escalated)
                    fields.set("escalated", true);
                fields.set("output", task.output);
                journal_.record("task_done", fields);
            } else if (status.ok()) {
                fail(task, "worker exited 0 without writing " + name,
                     "no_output");
            } else {
                std::string reason = "worker " + status.describe();
                std::string cause = "crash";
                if (status.exited &&
                    status.exitCode == api::kTimeoutExitCode) {
                    reason += " (timed out)";
                    cause = "timeout";
                } else if (status.exited &&
                           status.exitCode == api::kDieAfterExitCode) {
                    reason += " (died mid-shard)";
                }
                fail(task, reason + "; see " + worker.logPath, cause);
            }
            state.save(report.queuePath);
            running.erase(running.begin() +
                          static_cast<std::ptrdiff_t>(w));
        }

        if (!running.empty())
            std::this_thread::sleep_for(
                std::chrono::duration<double>(options_.pollSeconds));
    }

    report.queue = state;
    if (!state.allDone())
        return finish();

    // Merge in shard order through the same path `lsqca merge` uses;
    // under --no-timing the artifact is byte-identical to a direct
    // unsharded run (pinned by tests/service and the CI gate).
    std::vector<Json> docs;
    std::vector<std::string> labels;
    docs.reserve(static_cast<std::size_t>(state.shardCount));
    for (std::int32_t i = 0; i < state.shardCount; ++i) {
        // An escalated shard merges its exact rerun; the sampled
        // document stays on disk beside it for inspection.
        const ShardTask *chosen = state.escalationFor(i);
        if (chosen == nullptr)
            chosen = &state.tasks[static_cast<std::size_t>(i)];
        const std::string path =
            options_.stateDir + "/" + chosen->output;
        docs.push_back(Json::load(path));
        labels.push_back(path);
    }
    const Json merged = api::mergeBenchReports(docs, labels);
    report.mergedPath = writeBenchJson(
        state.campaign, merged,
        options_.outDir.empty() ? options_.stateDir : options_.outDir);
    report.complete = true;
    {
        Json fields = Json::object();
        fields.set("path", relativePath(report.mergedPath));
        fields.set("shards", state.shardCount);
        const std::int64_t bytes = static_cast<std::int64_t>(
            std::filesystem::file_size(report.mergedPath));
        fields.set("bytes", bytes);
        mBytesMerged.add(bytes);
        journal_.record("merge", fields);
    }
    report.queue = state;
    return finish();
}

} // namespace lsqca::service
