#ifndef LSQCA_ESTIMATE_STATS_H
#define LSQCA_ESTIMATE_STATS_H

/**
 * @file
 * Sample statistics for the sampled estimator: mean, unbiased sample
 * variance, and a two-sided 95% confidence half-width using Student's
 * t critical values for small samples (z = 1.96 beyond 30 degrees of
 * freedom). Pure functions, unit-tested against hand-computed
 * fixtures in tests/estimate/stats_test.cpp.
 */

#include <cstdint>
#include <vector>

namespace lsqca::estimate {

/** Summary of one sample set. */
struct SampleStats
{
    /** Sample count. */
    std::int64_t n = 0;
    double mean = 0.0;
    /** Unbiased sample variance (n-1 denominator; 0 when n < 2). */
    double variance = 0.0;
    double stddev = 0.0;
    /** Two-sided 95% CI half-width, t * s / sqrt(n) (0 when n < 2). */
    double ci95 = 0.0;
};

/**
 * Two-sided 95% Student-t critical value for @p df degrees of
 * freedom (t_{0.975, df}); 1.96 for df > 30, 0 for df < 1.
 */
double tCritical95(std::int64_t df);

/** Compute SampleStats over @p xs (all zeros when xs is empty). */
SampleStats sampleStats(const std::vector<double> &xs);

} // namespace lsqca::estimate

#endif // LSQCA_ESTIMATE_STATS_H
