#include "estimate/sampled.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "estimate/stats.h"
#include "sim/machine.h"

namespace lsqca::estimate {
namespace {

/**
 * The estimator's accounting, independent of the machine kind.
 *
 * Coverage layout for unit size U, warm-up W, period P over `limit`
 * instructions (units are [kU, (k+1)U), the first unit of every
 * period is measured):
 *
 *     |==measure==|--ff--|~warm~|==measure==|--ff--| ... |  tail  |
 *      unit 0                    unit P                    skipped
 *
 * Fast-forwarded spans advance functional state only (skip-list of
 * ffRelevant instructions); each is followed by resetTimingEpoch()
 * so the warm-up rebuilds timing state from a clean baseline. The
 * tail after the last measured unit is not executed at all — nothing
 * downstream observes it.
 *
 * Estimates use the ratio estimator: cpi = sum(beats) / sum(counted)
 * over measured units, extrapolated to the whole stream by the
 * counted-instruction ratio. When the measured units cover the whole
 * stream contiguously (period=1, or limit <= U), every sum telescopes
 * to its exact-run value and the result is bit-identical to exact —
 * `estimated` stays false.
 */
template <SamKind KIND>
SimResult
runSampled(const Program &prog, const SimOptions &opts)
{
    detail::Machine<KIND, false> machine(prog, opts);
    const EstimatorOptions &est = opts.estimator;

    SimResult result;
    result.floorplan = machine.floorplan();
    std::int64_t limit = prog.size();
    if (opts.maxInstructions > 0)
        limit = std::min(limit, opts.maxInstructions);
    const Instruction *code = prog.instructions().data();

    const std::int64_t unit = est.unitInstrs;
    const std::int64_t warm = est.warmupInstrs;

    // All per-stream accounting comes from the program's memoized
    // StreamIndex, shared by every job over the same program: the
    // counted-instruction prefix (CPI denominators without re-walking
    // skipped spans), the PM prefix (magic consumption is functional,
    // not sampled), and the memory-op skip-list the fast-forward path
    // walks — everything else is a functional no-op, so per-job
    // sampled cost scales with memory traffic, not stream length.
    const auto index = prog.streamIndex();
    const auto &countedPrefix = index->countedPrefix;
    const auto &ffOps = index->memOps;
    const std::int64_t totalPm =
        index->pmPrefix[static_cast<std::size_t>(limit)];
    const std::int64_t totalCounted =
        countedPrefix[static_cast<std::size_t>(limit)];

    std::vector<double> unitCpi;
    std::int64_t beatsSum = 0;
    std::int64_t countedSum = 0;
    std::int64_t memSum = 0;
    std::int64_t measuredInstrs = 0;
    std::int64_t detailed = 0;
    std::int64_t epochMaxEnd = 0;
    std::int64_t pos = 0;
    std::size_t ffCursor = 0;

    const std::int64_t numUnits =
        limit == 0 ? 0 : (limit + unit - 1) / unit;
    // Short streams shrink the period (down to exact coverage) so the
    // variance estimate always has a real sample behind it; see
    // EstimatorOptions::effectivePeriod().
    const std::int64_t period = est.effectivePeriod(numUnits);
    for (std::int64_t u = 0; u < numUnits; u += period) {
        const std::int64_t begin = u * unit;
        const std::int64_t end = std::min(begin + unit, limit);
        const std::int64_t warmStart =
            std::max(pos, begin - warm);

        if (warmStart > pos) {
            // Functional fast-forward over [pos, warmStart).
            while (ffCursor < ffOps.size() &&
                   ffOps[ffCursor] < pos)
                ++ffCursor;
            while (ffCursor < ffOps.size() &&
                   ffOps[ffCursor] < warmStart) {
                machine.fastForwardOne(code[ffOps[ffCursor]]);
                ++ffCursor;
            }
            pos = warmStart;
            machine.resetTimingEpoch();
            epochMaxEnd = 0;
        }

        // Detailed warm-up [warmStart, begin): executed, not measured.
        for (; pos < begin; ++pos) {
            const auto step = machine.executeOne(code[pos]);
            epochMaxEnd = std::max(epochMaxEnd, step.end);
            ++detailed;
        }

        // The measured unit [begin, end).
        const std::int64_t unitStartBeats = epochMaxEnd;
        for (; pos < end; ++pos) {
            const Instruction &inst = code[pos];
            const auto step = machine.executeOne(inst);
            const auto op_idx = static_cast<std::size_t>(inst.op);
            ++result.opcodeCount[op_idx];
            result.opcodeBeats[op_idx] += step.end - step.start;
            memSum += step.memoryBeats;
            epochMaxEnd = std::max(epochMaxEnd, step.end);
            ++detailed;
        }
        const std::int64_t beats = epochMaxEnd - unitStartBeats;
        const std::int64_t counted =
            countedPrefix[static_cast<std::size_t>(end)] -
            countedPrefix[static_cast<std::size_t>(begin)];
        beatsSum += beats;
        countedSum += counted;
        measuredInstrs += end - begin;
        ++result.sampledUnits;
        if (counted > 0)
            unitCpi.push_back(static_cast<double>(beats) /
                              static_cast<double>(counted));
    }
    // The tail after the last measured unit is skipped outright (it
    // is accounted as fast-forwarded below).

    result.instructionsSimulated = limit;
    result.countedInstructions = totalCounted;
    result.detailedInstructions = detailed;
    result.ffInstructions = limit - detailed;
    result.estimated = measuredInstrs != limit;

    // Ratio estimates. When measured coverage is total, ratio == 1.0
    // exactly and every llround() below returns the exact integer —
    // this is what makes period=1 bit-identical to exact mode.
    const double ratio =
        countedSum > 0 ? static_cast<double>(totalCounted) /
                             static_cast<double>(countedSum)
                       : 0.0;
    result.cpi = countedSum == 0
                     ? 0.0
                     : static_cast<double>(beatsSum) /
                           static_cast<double>(countedSum);
    result.execBeats =
        std::llround(static_cast<double>(beatsSum) * ratio);
    result.memoryBeats =
        std::llround(static_cast<double>(memSum) * ratio);
    result.magicStallBeats = std::llround(
        static_cast<double>(machine.magicStallTotal()) * ratio);
    // Magic consumption is a property of the stream, not the sample:
    // every PM consumes exactly one state (instant sources report 0,
    // matching MagicSource::consumed()).
    result.magicConsumed = opts.arch.instantMagic ? 0 : totalPm;

    if (!result.estimated) {
        result.cpiCi95 = 0.0;
        result.samplingError = 0.0;
    } else if (unitCpi.size() < 2) {
        // Not enough units for a variance estimate: report maximal
        // relative error so a target_ci policy escalates to exact.
        result.cpiCi95 = result.cpi;
        result.samplingError = 1.0;
    } else {
        const SampleStats stats = sampleStats(unitCpi);
        result.cpiCi95 = stats.ci95;
        result.samplingError =
            result.cpi > 0.0 ? stats.ci95 / result.cpi : 0.0;
    }
    return result;
}

} // namespace

SimResult
simulateSampled(const Program &program, const SimOptions &options)
{
    options.estimator.validate();
    LSQCA_REQUIRE(options.estimator.sampled(),
                  "simulateSampled requires estimator mode sampled");
    switch (options.arch.sam) {
      case SamKind::Point:
        return runSampled<SamKind::Point>(program, options);
      case SamKind::Line:
        return runSampled<SamKind::Line>(program, options);
      case SamKind::Conventional:
        return runSampled<SamKind::Conventional>(program, options);
    }
    throw InternalError("unhandled SAM kind");
}

} // namespace lsqca::estimate
