#ifndef LSQCA_ESTIMATE_SAMPLED_H
#define LSQCA_ESTIMATE_SAMPLED_H

/**
 * @file
 * SMARTS-style sampled simulation (docs/SAMPLING.md).
 *
 * Called by simulate() when SimOptions::estimator selects sampled
 * mode; not part of the public surface (use simulate()).
 */

#include "sim/simulator.h"

namespace lsqca::estimate {

/**
 * Run the systematic-sampling estimator over @p program: detailed
 * simulation of every period-th unit (with functional fast-forward
 * and detailed warm-up between them) and a cpi estimate with 95% CI
 * from the per-unit variance. Deterministic — no randomness anywhere.
 *
 * @pre options.estimator.sampled(), no observers / trace / breakdown.
 */
SimResult simulateSampled(const Program &program,
                          const SimOptions &options);

} // namespace lsqca::estimate

#endif // LSQCA_ESTIMATE_SAMPLED_H
