#ifndef LSQCA_ESTIMATE_OPTIONS_H
#define LSQCA_ESTIMATE_OPTIONS_H

/**
 * @file
 * Configuration for the sampled-simulation estimator (docs/SAMPLING.md).
 *
 * The estimator block rides inside SimOptions and the sweep spec
 * schema: exact mode is the default and serializes to nothing, so
 * every pre-estimator document and artifact is unchanged byte for
 * byte. `lsqca-spec-v2` documents may carry an `"estimator"` object
 * (api/spec.cpp); api/serialize.cpp round-trips it strictly.
 */

#include <cstdint>
#include <string>

namespace lsqca::estimate {

enum class EstimatorMode : std::uint8_t
{
    /** Simulate every instruction in full detail (the default). */
    Exact,
    /** SMARTS-style systematic sampling with functional warming. */
    Sampled,
};

/** "exact" / "sampled". */
const char *estimatorModeName(EstimatorMode mode);

/** Inverse of estimatorModeName. @throws ConfigError. */
EstimatorMode estimatorModeFromName(const std::string &name);

/**
 * Systematic-sampling parameters. The instruction stream is cut into
 * units of `unitInstrs`; every `period`-th unit (the first of each
 * period) is simulated in full detail and measured. Instructions
 * between detailed regions advance machine state functionally (bank
 * grids, gap/scan positions, PM counts — no per-beat timing), and up
 * to `warmupInstrs` instructions of detailed-but-unmeasured execution
 * warm the timing state back up before each measured unit.
 */
struct EstimatorOptions
{
    EstimatorMode mode = EstimatorMode::Exact;

    /** Instructions per sampling unit. */
    std::int64_t unitInstrs = 1000;

    /** Detailed warm-up instructions before each measured unit. */
    std::int64_t warmupInstrs = 1000;

    /** Measure every period-th unit (1 = measure everything). */
    std::int64_t period = 10;

    /**
     * Streams too short for `period` to yield a usable sample degrade
     * gracefully: the effective period shrinks so at least
     * kMinMeasuredUnits units are measured, and a stream of fewer
     * units than that is measured wholesale — which makes the result
     * exact (`estimated` false), the right answer for programs cheap
     * enough to not need sampling. See effectivePeriod().
     */
    static constexpr std::int64_t kMinMeasuredUnits = 8;

    /**
     * The period actually used for a stream of @p num_units units:
     * `period` clamped to measure at least kMinMeasuredUnits units
     * (never larger than `period`, so period=1 stays exact coverage).
     */
    std::int64_t
    effectivePeriod(std::int64_t num_units) const
    {
        const std::int64_t cap = num_units / kMinMeasuredUnits;
        return cap < 1 ? 1 : (period < cap ? period : cap);
    }

    /**
     * Relative 95% CI the estimate should meet (ci95 / cpi); 0 means
     * no target. The orchestration service escalates a sampled shard
     * whose reported `sampling_error` exceeds this to an exact rerun
     * (docs/SAMPLING.md, "Escalation").
     */
    double targetCi = 0.0;

    bool
    sampled() const
    {
        return mode == EstimatorMode::Sampled;
    }

    /** Parameter sanity for sampled mode. @throws ConfigError. */
    void validate() const;

    bool operator==(const EstimatorOptions &) const = default;
};

} // namespace lsqca::estimate

#endif // LSQCA_ESTIMATE_OPTIONS_H
