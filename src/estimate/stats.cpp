#include "estimate/stats.h"

#include <cmath>
#include <cstddef>

namespace lsqca::estimate {

double
tCritical95(std::int64_t df)
{
    // Two-sided 95% (t_{0.975, df}) for df = 1..30; the normal
    // quantile beyond that. Values from the standard t table.
    static constexpr double kTable[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df < 1)
        return 0.0;
    if (df <= 30)
        return kTable[df - 1];
    return 1.96;
}

SampleStats
sampleStats(const std::vector<double> &xs)
{
    SampleStats stats;
    stats.n = static_cast<std::int64_t>(xs.size());
    if (stats.n == 0)
        return stats;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    stats.mean = sum / static_cast<double>(stats.n);
    if (stats.n < 2)
        return stats;
    double ss = 0.0;
    for (double x : xs) {
        const double d = x - stats.mean;
        ss += d * d;
    }
    stats.variance = ss / static_cast<double>(stats.n - 1);
    stats.stddev = std::sqrt(stats.variance);
    stats.ci95 = tCritical95(stats.n - 1) * stats.stddev /
                 std::sqrt(static_cast<double>(stats.n));
    return stats;
}

} // namespace lsqca::estimate
