#include "estimate/options.h"

#include "common/error.h"

namespace lsqca::estimate {

const char *
estimatorModeName(EstimatorMode mode)
{
    switch (mode) {
      case EstimatorMode::Exact: return "exact";
      case EstimatorMode::Sampled: return "sampled";
    }
    throw InternalError("unhandled estimator mode");
}

EstimatorMode
estimatorModeFromName(const std::string &name)
{
    if (name == "exact")
        return EstimatorMode::Exact;
    if (name == "sampled")
        return EstimatorMode::Sampled;
    throw ConfigError("unknown estimator mode \"" + name +
                      "\" (exact|sampled)");
}

void
EstimatorOptions::validate() const
{
    if (!sampled())
        return;
    LSQCA_REQUIRE(unitInstrs >= 1,
                  "estimator.unit_instrs must be >= 1");
    LSQCA_REQUIRE(warmupInstrs >= 0,
                  "estimator.warmup_instrs must be >= 0");
    LSQCA_REQUIRE(period >= 1, "estimator.period must be >= 1");
    LSQCA_REQUIRE(targetCi >= 0.0,
                  "estimator.target_ci must be >= 0");
}

} // namespace lsqca::estimate
