#ifndef LSQCA_SIM_SIMULATOR_H
#define LSQCA_SIM_SIMULATOR_H

/**
 * @file
 * Code-beat-accurate LSQCA simulator (Sec. VI-A).
 *
 * Execution model: instructions issue in program order with dataflow
 * timing — each starts at the latest of its operand ready times and
 * resource availabilities, so independent instructions overlap freely
 * (the paper's "executed in parallel if their instruction targets do not
 * overlap") while CR register slots, per-bank scan cells, the bounded
 * magic-state buffer, and SK control dependencies serialize exactly
 * where the architecture says they must.
 *
 * Variable-latency instructions (LD/ST/in-memory forms/CX/CZ) are costed
 * by the bank models from live grid state, so locality-aware stores and
 * the access locality of programs shape the latencies organically.
 *
 * Telemetry is pluggable (sim/observer.h, docs/OBSERVERS.md): the hot
 * loop emits typed events to the observers listed in SimOptions, and
 * compiles to the event-free fast path when none are attached.
 */

#include <vector>

#include "arch/config.h"
#include "estimate/options.h"
#include "isa/program.h"
#include "sim/observer.h"
#include "sim/result.h"

namespace lsqca {

/** Per-run simulation options. */
struct SimOptions
{
    ArchConfig arch;

    /** Simulate only the first N instructions (0 = whole program). */
    std::int64_t maxInstructions = 0;

    /**
     * Record memory-reference and magic-demand traces (Fig. 8) into
     * SimResult::trace / magicTimes / motionSamples. A thin shim over
     * collectors::TraceCollector: simulate() attaches one internally
     * and moves its vectors into the result.
     */
    bool recordTrace = false;

    /**
     * Collect the per-opcode latency breakdown (SimResult::breakdown)
     * via an internal collectors::StallAttribution. Sweeps with this
     * set emit `lsqca-bench-v2` BENCH documents.
     */
    bool recordBreakdown = false;

    /**
     * Telemetry sinks for this run (borrowed; must outlive the
     * simulate() call). Runtime-only: never serialized, ignored by
     * api::toJson(SimOptions). Events arrive in deterministic program
     * order regardless of sweep worker count.
     */
    std::vector<SimObserver *> observers;

    /**
     * Estimation strategy (docs/SAMPLING.md). Exact by default;
     * sampled mode runs the SMARTS-style systematic-sampling
     * estimator (src/estimate/) and is incompatible with observers,
     * recordTrace, and recordBreakdown. Serialized as the
     * `"estimator"` block (omitted entirely when exact).
     */
    estimate::EstimatorOptions estimator;
};

/**
 * Run @p program on the configured machine and return timing, CPI,
 * density, and breakdowns. Deterministic: identical inputs give
 * identical results (and identical observer event streams).
 */
SimResult simulate(const Program &program, const SimOptions &options);

/**
 * Options for the conventional 1/2-density baseline of Sec. VI-A
 * (unit-time access, no path conflicts, unlimited ILP).
 */
struct ConventionalOptions
{
    /** MSF count. */
    std::int32_t factories = 1;

    /** Simulate only the first N instructions (0 = whole program). */
    std::int64_t maxInstructions = 0;

    /** As SimOptions::recordTrace. */
    bool recordTrace = false;

    /** As SimOptions::recordBreakdown. */
    bool recordBreakdown = false;

    /** As SimOptions::observers. */
    std::vector<SimObserver *> observers;
};

/** Convenience wrapper: simulate() on the conventional baseline. */
SimResult simulateConventional(const Program &program,
                               const ConventionalOptions &options = {});

} // namespace lsqca

#endif // LSQCA_SIM_SIMULATOR_H
