#ifndef LSQCA_SIM_SIMULATOR_H
#define LSQCA_SIM_SIMULATOR_H

/**
 * @file
 * Code-beat-accurate LSQCA simulator (Sec. VI-A).
 *
 * Execution model: instructions issue in program order with dataflow
 * timing — each starts at the latest of its operand ready times and
 * resource availabilities, so independent instructions overlap freely
 * (the paper's "executed in parallel if their instruction targets do not
 * overlap") while CR register slots, per-bank scan cells, the bounded
 * magic-state buffer, and SK control dependencies serialize exactly
 * where the architecture says they must.
 *
 * Variable-latency instructions (LD/ST/in-memory forms/CX/CZ) are costed
 * by the bank models from live grid state, so locality-aware stores and
 * the access locality of programs shape the latencies organically.
 */

#include "arch/config.h"
#include "isa/program.h"
#include "sim/result.h"

namespace lsqca {

/** Per-run simulation options. */
struct SimOptions
{
    ArchConfig arch;

    /** Simulate only the first N instructions (0 = whole program). */
    std::int64_t maxInstructions = 0;

    /** Record memory-reference and magic-demand traces (Fig. 8). */
    bool recordTrace = false;
};

/**
 * Run @p program on the configured machine and return timing, CPI,
 * density, and breakdowns. Deterministic: identical inputs give
 * identical results.
 */
SimResult simulate(const Program &program, const SimOptions &options);

/**
 * Convenience wrapper: the conventional 1/2-density baseline of
 * Sec. VI-A (unit-time access, no path conflicts, unlimited ILP) with
 * @p factories MSFs.
 */
SimResult simulateConventional(const Program &program,
                               std::int32_t factories,
                               std::int64_t max_instructions = 0,
                               bool record_trace = false);

} // namespace lsqca

#endif // LSQCA_SIM_SIMULATOR_H
