#ifndef LSQCA_SIM_OBSERVER_H
#define LSQCA_SIM_OBSERVER_H

/**
 * @file
 * Pluggable simulation telemetry: the `SimObserver` event-stream API.
 *
 * The simulator's hot loop emits typed events — instruction
 * issue/retire with a per-component latency split, magic-state
 * grants, and bank cell occupy/vacate — to zero or more observers
 * attached via SimOptions::observers. With no observer attached the
 * loop compiles to the event-free fast path (templated on an OBSERVE
 * flag), so telemetry costs nothing unless asked for; the
 * `ns_per_instr_null_observer` micro kernel pins the attached-observer
 * overhead.
 *
 * Event stream contract (docs/OBSERVERS.md):
 *  - Events arrive in program order, exactly once, single-threaded
 *    within one simulate() call. Parallel sweeps attach per-job
 *    observers, so streams stay deterministic for any worker count.
 *  - Per instruction: onInstruction first, then that instruction's
 *    onMagic (PM only) and onBankCell events (commit order).
 *  - onSimBegin precedes everything; initial bank placement arrives as
 *    onBankCell events with index -1 / time 0; onSimEnd sees the
 *    finished SimResult.
 *
 * Built-in collectors live in src/sim/collectors/: TraceCollector
 * (the Fig. 8 vectors; SimOptions::recordTrace is a shim over it),
 * StallAttribution, BankHeatmap, Timeline, and JsonlWriter (the
 * `lsqca trace` exporter).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "geom/coord.h"
#include "geom/grid.h"
#include "isa/instruction.h"

namespace lsqca {

struct SimResult;
class Program;
struct ArchConfig;

/**
 * Per-instruction latency decomposition, in code beats. Components are
 * attributed at the bank-call granularity the machine schedules with:
 *
 *  - load / store:  LD/ST-style bank exits and entries (also the
 *                   round-trip halves of the !inMemoryOps ablation),
 *  - seek:          point-SAM scan travel for in-memory 1q ops,
 *  - pick:          point-SAM drag-to-port for in-memory 2q ops,
 *  - align:         line-SAM gap alignment (1q, 2q, direct surgery),
 *  - surgery:       lattice-surgery merge windows,
 *  - compute:       fixed unitary beats (HD/PH),
 *  - magicStall:    waiting on an empty magic buffer (precedes the PM
 *                   transfer window, i.e. lies before `start`),
 *  - skWait:        SK decoder wait.
 *
 * Components may overlap the [start, end) window boundaries (magic
 * stall) or each other across instructions (dataflow overlap), so they
 * are occupancy sums, not a partition of the critical path.
 */
struct LatencySplit
{
    std::int64_t load = 0;
    std::int64_t store = 0;
    std::int64_t seek = 0;
    std::int64_t pick = 0;
    std::int64_t align = 0;
    std::int64_t surgery = 0;
    std::int64_t compute = 0;
    std::int64_t magicStall = 0;
    std::int64_t skWait = 0;

    /** Memory-motion beats: equals the SimResult::memoryBeats share. */
    std::int64_t
    motionBeats() const
    {
        return load + store + seek + pick + align;
    }

    std::int64_t
    total() const
    {
        return motionBeats() + surgery + compute + magicStall + skWait;
    }

    LatencySplit &
    operator+=(const LatencySplit &other)
    {
        load += other.load;
        store += other.store;
        seek += other.seek;
        pick += other.pick;
        align += other.align;
        surgery += other.surgery;
        compute += other.compute;
        magicStall += other.magicStall;
        skWait += other.skWait;
        return *this;
    }

    bool
    operator==(const LatencySplit &other) const
    {
        return load == other.load && store == other.store &&
               seek == other.seek && pick == other.pick &&
               align == other.align && surgery == other.surgery &&
               compute == other.compute &&
               magicStall == other.magicStall &&
               skWait == other.skWait;
    }
    bool
    operator!=(const LatencySplit &other) const
    {
        return !(*this == other);
    }
};

/** Geometry of one SAM bank, reported at simulation begin. */
struct BankLayout
{
    std::int32_t rows = 0;
    std::int32_t cols = 0;
    /** Qubits dealt to this bank at t = 0. */
    std::int32_t occupancy = 0;
};

/** Start-of-simulation context (borrowed pointers, simulate()-scoped). */
struct SimBeginEvent
{
    const Program *program = nullptr;
    const ArchConfig *arch = nullptr;
    /** Instructions that will be simulated (prefix-truncated size). */
    std::int64_t instructions = 0;
    /** One entry per SAM bank (empty on the conventional machine). */
    std::vector<BankLayout> banks;
};

/** One instruction issued and retired. */
struct InstructionEvent
{
    /** Program-order index. */
    std::int64_t index = 0;
    Instruction inst;
    /** Issue beat (after operand/resource waits resolved). */
    std::int64_t start = 0;
    /** Retire beat. */
    std::int64_t end = 0;
    LatencySplit split;
};

/** One magic state granted to a PM instruction. */
struct MagicEvent
{
    /** The PM instruction's program-order index. */
    std::int64_t index = 0;
    /** Earliest beat the PM could have consumed a state. */
    std::int64_t request = 0;
    /** Beat the state was actually available (request + stall). */
    std::int64_t available = 0;
    /** Beat the state finished transferring into the CR. */
    std::int64_t end = 0;
};

/** A bank cell changing occupancy. */
enum class CellEventKind : std::uint8_t
{
    Occupy,
    Vacate,
};

/** Human-readable cell-event kind ("occupy" / "vacate"). */
const char *cellEventKindName(CellEventKind kind);

struct BankCellEvent
{
    /** Committing instruction's index; -1 for the initial placement. */
    std::int64_t index = -1;
    /** Beat charged: the committing instruction's start (0 initially). */
    std::int64_t time = 0;
    std::int32_t bank = 0;
    QubitId qubit = kNoQubit;
    Coord cell;
    CellEventKind kind = CellEventKind::Occupy;
};

/** End-of-simulation: the finished result (borrowed pointer). */
struct SimEndEvent
{
    const SimResult *result = nullptr;
};

/**
 * Observer interface. Every handler defaults to a no-op, so a plain
 * `SimObserver` instance is the null observer (the micro-kernel
 * overhead probe) and collectors override only what they consume.
 */
class SimObserver
{
  public:
    virtual ~SimObserver() = default;

    virtual void
    onSimBegin(const SimBeginEvent &)
    {
    }

    virtual void
    onInstruction(const InstructionEvent &)
    {
    }

    virtual void
    onMagic(const MagicEvent &)
    {
    }

    virtual void
    onBankCell(const BankCellEvent &)
    {
    }

    virtual void
    onSimEnd(const SimEndEvent &)
    {
    }
};

/**
 * Per-opcode aggregate of the latency splits: the structured breakdown
 * SimResult carries when SimOptions::recordBreakdown is set (collected
 * by the internal StallAttribution shim; serialized by api/serialize).
 */
struct OpcodeSplit
{
    Opcode op = Opcode::LD;
    /** Instructions of this opcode simulated. */
    std::int64_t count = 0;
    /** Occupied beats (duration sums, equals SimResult::opcodeBeats). */
    std::int64_t beats = 0;
    LatencySplit split;

    bool
    operator==(const OpcodeSplit &other) const
    {
        return op == other.op && count == other.count &&
               beats == other.beats && split == other.split;
    }
    bool
    operator!=(const OpcodeSplit &other) const
    {
        return !(*this == other);
    }
};

} // namespace lsqca

#endif // LSQCA_SIM_OBSERVER_H
