#include "sim/simulator.h"

#include <vector>

#include "common/error.h"
#include "estimate/sampled.h"
#include "sim/collectors/stall_attribution.h"
#include "sim/collectors/trace_collector.h"
#include "sim/machine.h"

namespace lsqca {
namespace {

template <SamKind KIND>
SimResult
runKind(const Program &program, const SimOptions &options,
        const std::vector<SimObserver *> &observers)
{
    if (observers.empty())
        return detail::Machine<KIND, false>(program, options)
            .run(observers);
    return detail::Machine<KIND, true>(program, options).run(observers);
}

SimResult
dispatch(const Program &program, const SimOptions &options,
         const std::vector<SimObserver *> &observers)
{
    switch (options.arch.sam) {
      case SamKind::Point:
        return runKind<SamKind::Point>(program, options, observers);
      case SamKind::Line:
        return runKind<SamKind::Line>(program, options, observers);
      case SamKind::Conventional:
        return runKind<SamKind::Conventional>(program, options,
                                              observers);
    }
    throw InternalError("unhandled SAM kind");
}

/** Deliver the SimEndEvent: always last, on the finished result. */
void
emitSimEnd(const std::vector<SimObserver *> &observers,
           const SimResult &result)
{
    SimEndEvent end;
    end.result = &result;
    for (SimObserver *observer : observers)
        observer->onSimEnd(end);
}

} // namespace

SimResult
simulate(const Program &program, const SimOptions &options)
{
    for (const SimObserver *observer : options.observers)
        LSQCA_REQUIRE(observer != nullptr,
                      "SimOptions::observers must not contain nullptr");
    if (options.estimator.sampled()) {
        options.estimator.validate();
        LSQCA_REQUIRE(options.observers.empty() &&
                          !options.recordTrace &&
                          !options.recordBreakdown,
                      "sampled estimation is incompatible with "
                      "observers, recordTrace, and recordBreakdown "
                      "(detailed coverage is partial)");
        return estimate::simulateSampled(program, options);
    }
    if (!options.recordTrace && !options.recordBreakdown) {
        if (options.observers.empty())
            return dispatch(program, options, options.observers);
        SimResult result =
            dispatch(program, options, options.observers);
        emitSimEnd(options.observers, result);
        return result;
    }

    // The recordTrace / recordBreakdown flags are thin shims over the
    // built-in collectors: attach one internally, then move its output
    // into the result, so the legacy surface and the observer API can
    // never drift. Constructed only on this branch — the plain path
    // must not pay for zero-initializing the collectors' tables. The
    // SimEndEvent fires only after the shims have landed, so every
    // observer's onSimEnd sees the complete result (trace vectors and
    // breakdown included).
    collectors::TraceCollector trace_shim;
    collectors::StallAttribution breakdown_shim;
    std::vector<SimObserver *> observers = options.observers;
    if (options.recordTrace)
        observers.push_back(&trace_shim);
    if (options.recordBreakdown)
        observers.push_back(&breakdown_shim);

    SimResult result = dispatch(program, options, observers);
    if (options.recordTrace)
        trace_shim.moveInto(result);
    if (options.recordBreakdown)
        result.breakdown = breakdown_shim.rows();
    emitSimEnd(observers, result);
    return result;
}

SimResult
simulateConventional(const Program &program,
                     const ConventionalOptions &options)
{
    SimOptions opts;
    opts.arch.sam = SamKind::Conventional;
    opts.arch.factories = options.factories;
    opts.maxInstructions = options.maxInstructions;
    opts.recordTrace = options.recordTrace;
    opts.recordBreakdown = options.recordBreakdown;
    opts.observers = options.observers;
    return simulate(program, opts);
}

} // namespace lsqca
