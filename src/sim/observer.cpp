#include "sim/observer.h"

#include "common/error.h"

namespace lsqca {

const char *
cellEventKindName(CellEventKind kind)
{
    switch (kind) {
      case CellEventKind::Occupy: return "occupy";
      case CellEventKind::Vacate: return "vacate";
    }
    throw InternalError("unhandled cell-event kind");
}

} // namespace lsqca
