#ifndef LSQCA_SIM_COLLECTORS_TIMELINE_H
#define LSQCA_SIM_COLLECTORS_TIMELINE_H

/**
 * @file
 * Timeline: a bounded ring of instruction issue records for JSONL
 * export. Keeps the last `capacity` InstructionEvents (default 4096),
 * so tracing a multi-million-instruction run costs constant memory;
 * records() returns them oldest-first.
 */

#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/observer.h"

namespace lsqca::collectors {

class Timeline : public SimObserver
{
  public:
    explicit Timeline(std::size_t capacity = 4096) : capacity_(capacity)
    {
    }

    void
    onInstruction(const InstructionEvent &event) override
    {
        ++seen_;
        if (ring_.size() < capacity_) {
            ring_.push_back(event);
            return;
        }
        if (capacity_ == 0)
            return;
        ring_[next_] = event;
        next_ = (next_ + 1) % capacity_;
    }

    /** Total instruction events observed (may exceed capacity). */
    std::int64_t seen() const { return seen_; }

    /** Retained records, oldest first. */
    std::vector<InstructionEvent>
    records() const
    {
        std::vector<InstructionEvent> ordered;
        ordered.reserve(ring_.size());
        for (std::size_t i = 0; i < ring_.size(); ++i)
            ordered.push_back(ring_[(next_ + i) % ring_.size()]);
        return ordered;
    }

    /**
     * Write the retained records as JSONL issue records (the same
     * "instr" line schema JsonlWriter streams live).
     */
    void writeJsonl(std::ostream &out) const;

  private:
    std::size_t capacity_;
    std::size_t next_ = 0;
    std::int64_t seen_ = 0;
    std::vector<InstructionEvent> ring_;
};

} // namespace lsqca::collectors

#endif // LSQCA_SIM_COLLECTORS_TIMELINE_H
