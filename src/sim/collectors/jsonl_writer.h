#ifndef LSQCA_SIM_COLLECTORS_JSONL_WRITER_H
#define LSQCA_SIM_COLLECTORS_JSONL_WRITER_H

/**
 * @file
 * JsonlWriter: streams every simulation event as one compact JSON
 * object per line — the `lsqca trace` export format.
 *
 * This header is now a thin adapter: the generic JSON-Lines
 * machinery (line emission, line counting, the tmp-file + rename
 * export cycle) moved to common/jsonl.h, shared with the campaign
 * journal (service/journal.h) and the CLI exports. What stays here is
 * only the simulation-event -> line mapping.
 *
 * Line schema (docs/OBSERVERS.md; every line has an "event" tag):
 *
 *   {"event":"begin","arch":...,"instructions":N,"banks":[...]}
 *   {"event":"instr","i":k,"op":"HD.M","m0":3,"start":s,"end":e,
 *    "split":{"seek":2,"compute":3}}
 *   {"event":"magic","i":k,"request":r,"available":a,"end":e}
 *   {"event":"cell","i":k,"t":b,"bank":0,"q":3,"row":1,"col":2,
 *    "kind":"occupy"}
 *   {"event":"end","exec_beats":...,...}
 *
 * Operand fields and zero split components are omitted, keeping lines
 * short; key order is fixed, so output is byte-deterministic for a
 * given program and configuration (pinned by a golden test and the CI
 * trace gate's byte-stable rerun).
 */

#include <ostream>

#include "common/json.h"
#include "common/jsonl.h"
#include "sim/observer.h"

namespace lsqca::collectors {

/** One "instr" line document for @p event (shared with Timeline). */
Json instructionLine(const InstructionEvent &event);

class JsonlWriter : public SimObserver
{
  public:
    /** Borrowed stream; must outlive the writer. */
    explicit JsonlWriter(std::ostream &out) : writer_(out) {}

    void onSimBegin(const SimBeginEvent &event) override;
    void onInstruction(const InstructionEvent &event) override;
    void onMagic(const MagicEvent &event) override;
    void onBankCell(const BankCellEvent &event) override;
    void onSimEnd(const SimEndEvent &event) override;

    /** Lines written so far. */
    std::int64_t lines() const { return writer_.lines(); }

  private:
    void emit(const Json &line) { writer_.emit(line); }

    jsonl::Writer writer_;
};

} // namespace lsqca::collectors

#endif // LSQCA_SIM_COLLECTORS_JSONL_WRITER_H
