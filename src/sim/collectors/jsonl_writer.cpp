#include "sim/collectors/jsonl_writer.h"

#include "arch/config.h"
#include "sim/collectors/timeline.h"
#include "sim/result.h"

namespace lsqca::collectors {
namespace {

/** Append only the nonzero components (short, stable-order lines). */
Json
splitToJson(const LatencySplit &split)
{
    Json doc = Json::object();
    if (split.load)
        doc.set("load", split.load);
    if (split.store)
        doc.set("store", split.store);
    if (split.seek)
        doc.set("seek", split.seek);
    if (split.pick)
        doc.set("pick", split.pick);
    if (split.align)
        doc.set("align", split.align);
    if (split.surgery)
        doc.set("surgery", split.surgery);
    if (split.compute)
        doc.set("compute", split.compute);
    if (split.magicStall)
        doc.set("magic_stall", split.magicStall);
    if (split.skWait)
        doc.set("sk_wait", split.skWait);
    return doc;
}

} // namespace

Json
instructionLine(const InstructionEvent &event)
{
    Json line = Json::object();
    line.set("event", "instr");
    line.set("i", event.index);
    line.set("op", mnemonic(event.inst.op));
    if (event.inst.m0 >= 0)
        line.set("m0", event.inst.m0);
    if (event.inst.m1 >= 0)
        line.set("m1", event.inst.m1);
    if (event.inst.c0 >= 0)
        line.set("c0", event.inst.c0);
    if (event.inst.c1 >= 0)
        line.set("c1", event.inst.c1);
    if (event.inst.v0 >= 0)
        line.set("v0", event.inst.v0);
    line.set("start", event.start);
    line.set("end", event.end);
    const Json split = splitToJson(event.split);
    if (split.size() > 0)
        line.set("split", split);
    return line;
}

void
Timeline::writeJsonl(std::ostream &out) const
{
    for (const InstructionEvent &event : records())
        out << instructionLine(event).dump(0) << '\n';
}

void
JsonlWriter::onSimBegin(const SimBeginEvent &event)
{
    Json line = Json::object();
    line.set("event", "begin");
    line.set("arch", event.arch->label());
    line.set("instructions", event.instructions);
    Json banks = Json::array();
    for (const BankLayout &shape : event.banks) {
        Json bank = Json::object();
        bank.set("rows", shape.rows);
        bank.set("cols", shape.cols);
        bank.set("occupancy", shape.occupancy);
        banks.push(std::move(bank));
    }
    line.set("banks", std::move(banks));
    emit(line);
}

void
JsonlWriter::onInstruction(const InstructionEvent &event)
{
    emit(instructionLine(event));
}

void
JsonlWriter::onMagic(const MagicEvent &event)
{
    Json line = Json::object();
    line.set("event", "magic");
    line.set("i", event.index);
    line.set("request", event.request);
    line.set("available", event.available);
    line.set("end", event.end);
    emit(line);
}

void
JsonlWriter::onBankCell(const BankCellEvent &event)
{
    Json line = Json::object();
    line.set("event", "cell");
    line.set("i", event.index);
    line.set("t", event.time);
    line.set("bank", event.bank);
    line.set("q", event.qubit);
    line.set("row", event.cell.row);
    line.set("col", event.cell.col);
    line.set("kind", cellEventKindName(event.kind));
    emit(line);
}

void
JsonlWriter::onSimEnd(const SimEndEvent &event)
{
    const SimResult &r = *event.result;
    Json line = Json::object();
    line.set("event", "end");
    line.set("exec_beats", r.execBeats);
    line.set("instructions", r.instructionsSimulated);
    line.set("counted_instructions", r.countedInstructions);
    line.set("memory_beats", r.memoryBeats);
    line.set("magic_consumed", r.magicConsumed);
    line.set("magic_stall_beats", r.magicStallBeats);
    emit(line);
}

} // namespace lsqca::collectors
