#ifndef LSQCA_SIM_COLLECTORS_TRACE_COLLECTOR_H
#define LSQCA_SIM_COLLECTORS_TRACE_COLLECTOR_H

/**
 * @file
 * TraceCollector: the Fig. 8 trace vectors as an observer.
 *
 * Reproduces exactly what the pre-observer simulator recorded inline
 * under SimOptions::recordTrace — one TraceSample per memory operand at
 * instruction start, PM retire times, and per-instruction memory-motion
 * samples. recordTrace is now a thin shim: simulate() attaches one of
 * these internally and moves its vectors into the SimResult, so the two
 * surfaces can never drift (pinned by tests/sim/observer_test.cpp).
 */

#include <vector>

#include "sim/observer.h"
#include "sim/result.h"

namespace lsqca::collectors {

class TraceCollector : public SimObserver
{
  public:
    void
    onInstruction(const InstructionEvent &event) override
    {
        const OpcodeInfo &info = opcodeInfo(event.inst.op);
        if (info.numMem >= 1)
            trace_.push_back({event.start, event.inst.m0});
        if (info.numMem >= 2)
            trace_.push_back({event.start, event.inst.m1});
        if (event.inst.op == Opcode::PM)
            magicTimes_.push_back(event.end);
        const std::int64_t motion = event.split.motionBeats();
        if (motion > 0)
            motionSamples_.push_back(motion);
    }

    const std::vector<TraceSample> &trace() const { return trace_; }
    const std::vector<std::int64_t> &magicTimes() const
    {
        return magicTimes_;
    }
    const std::vector<std::int64_t> &motionSamples() const
    {
        return motionSamples_;
    }

    /** Move the vectors into @p result (the recordTrace shim). */
    void
    moveInto(SimResult &result)
    {
        result.trace = std::move(trace_);
        result.magicTimes = std::move(magicTimes_);
        result.motionSamples = std::move(motionSamples_);
    }

  private:
    std::vector<TraceSample> trace_;
    std::vector<std::int64_t> magicTimes_;
    std::vector<std::int64_t> motionSamples_;
};

} // namespace lsqca::collectors

#endif // LSQCA_SIM_COLLECTORS_TRACE_COLLECTOR_H
