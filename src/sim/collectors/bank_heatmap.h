#ifndef LSQCA_SIM_COLLECTORS_BANK_HEATMAP_H
#define LSQCA_SIM_COLLECTORS_BANK_HEATMAP_H

/**
 * @file
 * BankHeatmap: per-cell occupancy-beats and touch counts on the SAM
 * grid, built from bank occupy/vacate events.
 *
 * A cell's occupancy-beats accumulate between its occupy event and the
 * matching vacate (both stamped with the committing instruction's start
 * beat; initial placement counts from beat 0); cells still occupied at
 * onSimEnd are closed at execBeats. Touches count occupy events, so the
 * makeRoomAt hole walk's churn is visible: every occupant it shifts
 * re-touches a cell.
 */

#include <cstdint>
#include <vector>

#include "common/table.h"
#include "sim/observer.h"
#include "sim/result.h"

namespace lsqca::collectors {

class BankHeatmap : public SimObserver
{
  public:
    /** One cell's accumulated statistics. */
    struct CellStats
    {
        std::int64_t occupancyBeats = 0;
        std::int64_t touches = 0;
        /** Open interval start (occupied_ set). */
        std::int64_t occupiedSince = 0;
        bool occupied = false;
    };

    /** One bank's grid of cell statistics. */
    struct BankStats
    {
        std::int32_t rows = 0;
        std::int32_t cols = 0;
        std::vector<CellStats> cells; ///< row-major

        const CellStats &
        at(std::int32_t row, std::int32_t col) const
        {
            return cells[static_cast<std::size_t>(row) *
                             static_cast<std::size_t>(cols) +
                         static_cast<std::size_t>(col)];
        }
    };

    void
    onSimBegin(const SimBeginEvent &event) override
    {
        banks_.clear();
        execBeats_ = 0;
        for (const BankLayout &shape : event.banks) {
            BankStats bank;
            bank.rows = shape.rows;
            bank.cols = shape.cols;
            bank.cells.assign(static_cast<std::size_t>(shape.rows) *
                                  static_cast<std::size_t>(shape.cols),
                              CellStats{});
            banks_.push_back(std::move(bank));
        }
    }

    void
    onBankCell(const BankCellEvent &event) override
    {
        CellStats &cell = cellAt(event);
        if (event.kind == CellEventKind::Occupy) {
            ++cell.touches;
            cell.occupied = true;
            cell.occupiedSince = event.time;
        } else {
            if (cell.occupied)
                cell.occupancyBeats += event.time - cell.occupiedSince;
            cell.occupied = false;
        }
    }

    void
    onSimEnd(const SimEndEvent &event) override
    {
        execBeats_ = event.result->execBeats;
        for (BankStats &bank : banks_) {
            for (CellStats &cell : bank.cells) {
                if (!cell.occupied)
                    continue;
                cell.occupancyBeats += execBeats_ - cell.occupiedSince;
                cell.occupied = false;
            }
        }
    }

    const std::vector<BankStats> &banks() const { return banks_; }

    /** Execution length the open intervals were closed at. */
    std::int64_t execBeats() const { return execBeats_; }

    /**
     * Rendered heat table for one bank: occupancy fraction
     * (occupancy-beats / execBeats) per cell, one table row per grid
     * row, with the touch count in parentheses.
     */
    TextTable
    table(std::size_t bank) const
    {
        const BankStats &stats = banks_[bank];
        std::vector<std::string> header{"row"};
        for (std::int32_t c = 0; c < stats.cols; ++c)
            header.push_back("c" + std::to_string(c));
        TextTable table(header);
        for (std::int32_t r = 0; r < stats.rows; ++r) {
            std::vector<std::string> row{std::to_string(r)};
            for (std::int32_t c = 0; c < stats.cols; ++c) {
                const CellStats &cell = stats.at(r, c);
                const double share =
                    execBeats_ > 0
                        ? static_cast<double>(cell.occupancyBeats) /
                              static_cast<double>(execBeats_)
                        : 0.0;
                row.push_back(TextTable::num(share, 2) + " (" +
                              std::to_string(cell.touches) + ")");
            }
            table.addRow(row);
        }
        return table;
    }

  private:
    CellStats &
    cellAt(const BankCellEvent &event)
    {
        // Banks are announced by onSimBegin; grow defensively anyway so
        // a collector attached to a hand-driven bank still works.
        const auto bank = static_cast<std::size_t>(event.bank);
        if (bank >= banks_.size())
            banks_.resize(bank + 1);
        BankStats &stats = banks_[bank];
        if (event.cell.row >= stats.rows || event.cell.col >= stats.cols) {
            BankStats grown;
            grown.rows = std::max(stats.rows, event.cell.row + 1);
            grown.cols = std::max(stats.cols, event.cell.col + 1);
            grown.cells.assign(static_cast<std::size_t>(grown.rows) *
                                   static_cast<std::size_t>(grown.cols),
                               CellStats{});
            for (std::int32_t r = 0; r < stats.rows; ++r)
                for (std::int32_t c = 0; c < stats.cols; ++c)
                    grown.cells[static_cast<std::size_t>(r) *
                                    static_cast<std::size_t>(grown.cols) +
                                static_cast<std::size_t>(c)] =
                        stats.at(r, c);
            stats = std::move(grown);
        }
        return stats.cells[static_cast<std::size_t>(event.cell.row) *
                               static_cast<std::size_t>(stats.cols) +
                           static_cast<std::size_t>(event.cell.col)];
    }

    std::vector<BankStats> banks_;
    std::int64_t execBeats_ = 0;
};

} // namespace lsqca::collectors

#endif // LSQCA_SIM_COLLECTORS_BANK_HEATMAP_H
