#ifndef LSQCA_SIM_COLLECTORS_STALL_ATTRIBUTION_H
#define LSQCA_SIM_COLLECTORS_STALL_ATTRIBUTION_H

/**
 * @file
 * StallAttribution: per-opcode beats split into compute vs. each
 * memory-motion component vs. magic stall — the Sec. VI "why does CPI
 * move" collector. Sums the per-instruction LatencySplits by opcode;
 * rows() returns only opcodes that actually executed, in opcode order,
 * which is also the SimResult::breakdown representation.
 */

#include <array>
#include <vector>

#include "common/table.h"
#include "sim/observer.h"

namespace lsqca::collectors {

class StallAttribution : public SimObserver
{
  public:
    void
    onInstruction(const InstructionEvent &event) override
    {
        const auto op = static_cast<std::size_t>(event.inst.op);
        ++count_[op];
        beats_[op] += event.end - event.start;
        split_[op] += event.split;
    }

    /** Executed opcodes only, in opcode order. */
    std::vector<OpcodeSplit>
    rows() const
    {
        std::vector<OpcodeSplit> rows;
        for (std::size_t op = 0; op < kNumOpcodes; ++op) {
            if (count_[op] == 0)
                continue;
            rows.push_back({static_cast<Opcode>(op), count_[op],
                            beats_[op], split_[op]});
        }
        return rows;
    }

    /** Sum of every per-opcode split. */
    LatencySplit
    totals() const
    {
        LatencySplit total;
        for (const LatencySplit &split : split_)
            total += split;
        return total;
    }

    /**
     * Rendered attribution table. Component columns are occupancy
     * sums, not a partition of [start, end) — see LatencySplit.
     */
    TextTable
    table() const
    {
        TextTable table({"opcode", "count", "beats", "load", "store",
                         "seek", "pick", "align", "surgery", "compute",
                         "magic_stall", "sk_wait"});
        for (const OpcodeSplit &row : rows()) {
            const LatencySplit &s = row.split;
            table.addRow({mnemonic(row.op), std::to_string(row.count),
                          std::to_string(row.beats),
                          std::to_string(s.load),
                          std::to_string(s.store),
                          std::to_string(s.seek),
                          std::to_string(s.pick),
                          std::to_string(s.align),
                          std::to_string(s.surgery),
                          std::to_string(s.compute),
                          std::to_string(s.magicStall),
                          std::to_string(s.skWait)});
        }
        return table;
    }

  private:
    std::array<std::int64_t, kNumOpcodes> count_{};
    std::array<std::int64_t, kNumOpcodes> beats_{};
    std::array<LatencySplit, kNumOpcodes> split_{};
};

} // namespace lsqca::collectors

#endif // LSQCA_SIM_COLLECTORS_STALL_ATTRIBUTION_H
