#ifndef LSQCA_SIM_RESULT_H
#define LSQCA_SIM_RESULT_H

/**
 * @file
 * Simulation outputs: execution time, CPI, density, per-opcode
 * breakdowns, and (optionally) the memory-reference trace that feeds the
 * Fig. 8 analysis.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "arch/floorplan.h"
#include "isa/instruction.h"
#include "sim/observer.h"

namespace lsqca {

/** One memory reference: instruction start time x variable. */
struct TraceSample
{
    std::int64_t time = 0;
    std::int32_t variable = -1;
};

/** Outcome of one code-beat-accurate simulation. */
struct SimResult
{
    /** Total execution time in code beats. */
    std::int64_t execBeats = 0;

    /** Instructions actually simulated (≤ program size if truncated). */
    std::int64_t instructionsSimulated = 0;

    /**
     * CPI denominator: simulated instructions excluding LD/ST traffic
     * (DESIGN.md §4.11), so CPI ratios equal execution-time ratios.
     */
    std::int64_t countedInstructions = 0;

    /** Code beats per (counted) instruction. */
    double cpi = 0.0;

    /** Magic states consumed / beats stalled waiting for them. */
    std::int64_t magicConsumed = 0;
    std::int64_t magicStallBeats = 0;

    /** Aggregate beats spent in memory motion (seek/pick/align/ld/st). */
    std::int64_t memoryBeats = 0;

    /** Cell accounting and density for the simulated configuration. */
    FloorplanStats floorplan;

    /** Per-opcode instruction counts. */
    std::array<std::int64_t, kNumOpcodes> opcodeCount{};

    /** Per-opcode occupied beats (duration sums, not critical path). */
    std::array<std::int64_t, kNumOpcodes> opcodeBeats{};

    /** Memory reference samples (only when SimOptions::recordTrace). */
    std::vector<TraceSample> trace;

    /** PM issue times (magic-state demand timeline; with recordTrace). */
    std::vector<std::int64_t> magicTimes;

    /**
     * Per-instruction memory-motion latencies (beats of seek / pick /
     * align / load / store work), one sample per instruction that moved
     * anything (with recordTrace). This is the empirical shape of the
     * "variable latency" the LSQCA ISA exposes.
     */
    std::vector<std::int64_t> motionSamples;

    /**
     * Structured per-opcode latency breakdown (only with
     * SimOptions::recordBreakdown): one entry per opcode that appears
     * in the simulated prefix, in opcode order, with its beats split
     * into compute vs. each memory-motion component vs. magic stall.
     * Serialized by api::toJson / api::breakdownFromJson and carried
     * by `lsqca-bench-v2` BENCH entries.
     */
    std::vector<OpcodeSplit> breakdown;

    // ---- sampled-estimator statistics (docs/SAMPLING.md) ------------

    /**
     * True iff this result is a sampling estimate rather than an
     * exact measurement. A sampled run that ends up covering every
     * instruction in measured units (period=1, or a program shorter
     * than one period) produces the exact result and leaves this
     * false — its BENCH entry stays byte-identical to exact mode.
     */
    bool estimated = false;

    /** Measured sampling units (0 for exact runs). */
    std::int64_t sampledUnits = 0;

    /** Instructions simulated in detail (warm-up + measured). */
    std::int64_t detailedInstructions = 0;

    /** Instructions fast-forwarded functionally (or tail-skipped). */
    std::int64_t ffInstructions = 0;

    /**
     * 95% confidence half-width on cpi from the per-unit sample
     * variance (Student-t below 31 units). 1x cpi when fewer than 2
     * usable units were measured (degenerate; triggers escalation).
     */
    double cpiCi95 = 0.0;

    /** Relative CI: cpiCi95 / cpi (0 when cpi is 0). */
    double samplingError = 0.0;

    double
    density() const
    {
        return floorplan.density();
    }
};

} // namespace lsqca

#endif // LSQCA_SIM_RESULT_H
