#ifndef LSQCA_SIM_MACHINE_H
#define LSQCA_SIM_MACHINE_H

/**
 * @file
 * The simulator's machine model, as an internal header.
 *
 * `detail::Machine` used to live in simulator.cpp's anonymous
 * namespace; it moved here so the sampled estimator (src/estimate/)
 * and the functional-warming differential harness (tests/estimate/)
 * can drive the *same* machine the exact simulator runs — same bank
 * models, same issue logic, same template specializations — instead
 * of a parallel implementation that could drift.
 *
 * Two execution modes share the instance:
 *
 *  - executeOne(): full detailed execution of one instruction —
 *    dataflow timing, bank cost+commit, magic acquisition. This is
 *    what run() calls in a loop; calling it yourself yields exactly
 *    the exact simulator, one step at a time.
 *
 *  - fastForwardOne(): functional execution only. Bank grids, gap /
 *    scan positions, and the PM counter advance exactly as the
 *    detailed path would move them; no timelines, no beat
 *    accounting, no magic-buffer interaction. O(commit) per
 *    instruction, and ffRelevant() identifies the (typically small)
 *    subset of instructions that have any functional effect at all.
 *
 * The single deliberate divergence is the line-SAM row-parallel
 * window (Sec. V-C): the detailed path may execute a second H/S in a
 * shared gap-row window *without* re-aligning the gap, a decision
 * that depends on issue timing, which the functional path does not
 * track. fastForwardOne() always commits the align (a no-op when the
 * gap is already adjacent). State can therefore diverge from exact
 * only under `row_parallel_ops` on line SAM; the differential
 * harness pins bit-identity for every other configuration, and the
 * sampled estimator covers this approximation statistically (see
 * docs/SAMPLING.md).
 *
 * This header is internal: nothing outside src/sim, src/estimate, the
 * test tree, and the micro-kernel bench should include it.
 */

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <tuple>
#include <type_traits>
#include <vector>

#include "arch/line_sam.h"
#include "arch/msf.h"
#include "arch/point_sam.h"
#include "common/error.h"
#include "sim/simulator.h"

namespace lsqca::detail {

/** Where a program variable lives. */
enum class Region : std::uint8_t { Sam, Conventional };

/**
 * max over issue-time operands. The exec paths used
 * std::max(initializer_list) here; once the OBSERVE axis doubled the
 * Machine instantiations, GCC's unit-growth budget stopped inlining
 * that overload and every handler paid an out-of-line call per
 * instruction (+50% on the conventional CX handler). A plain variadic
 * always inlines.
 */
inline std::int64_t
maxOf(std::int64_t a, std::int64_t b)
{
    return b > a ? b : a;
}

template <typename... Rest>
inline std::int64_t
maxOf(std::int64_t a, std::int64_t b, Rest... rest)
{
    return maxOf(maxOf(a, b), rest...);
}

/**
 * The machine: bank state + resource timelines + in-order dataflow
 * issue. One instance per simulate() call.
 *
 * Templated on the floorplan kind so the per-instruction bank dispatch
 * (point vs line vs conventional) resolves at compile time: the hot
 * loop runs with no `cfg_.sam` branches, one concrete bank type, and
 * the conventional machine compiles to the pure-timeline fast path.
 *
 * The telemetry layer follows the same discipline: the loop and every
 * exec path are additionally templated on an OBSERVE flag, so the
 * no-observer instantiation carries no event construction, no latency
 * split bookkeeping, and no bank hooks — it compiles to the plain
 * simulator (the `ns_per_instr_null_observer` micro kernel tracks the
 * observed path's cost).
 */
template <SamKind KIND, bool OBSERVE>
class Machine
{
    /** Concrete bank model for this specialization (unused for the
     *  conventional machine, where no variable is SAM-resident). */
    using Bank = std::conditional_t<KIND == SamKind::Line, LineSamBank,
                                    PointSamBank>;

  public:
    Machine(const Program &prog, const SimOptions &opts)
        : prog_(prog), opts_(opts), cfg_(opts.arch),
          magic_(cfg_.factories, cfg_.effectiveBufferCap(),
                 cfg_.lat.msfPeriod, cfg_.lat.magicTransfer,
                 cfg_.warmBuffer, cfg_.instantMagic)
    {
        cfg_.validate();
        LSQCA_ASSERT(cfg_.sam == KIND, "machine/config kind mismatch");
        setupRegions();
        setupBanks();
        // Size the ready timelines by the simulated prefix, not the
        // whole program: slots past the prefix maxima are never read
        // or written, and the memoized StreamIndex replaces what used
        // to be an O(program) scan per Machine — per-job construction
        // cost dominated the fig14 sweeps before this.
        std::int64_t limit = prog.size();
        if (opts.maxInstructions > 0)
            limit = std::min(limit, opts.maxInstructions);
        const auto index = prog.streamIndex();
        const std::size_t li = static_cast<std::size_t>(limit);
        varReady_.assign(static_cast<std::size_t>(prog.numVariables()), 0);
        valReady_.assign(
            static_cast<std::size_t>(index->maxValPrefix[li] + 1), 0);
        const std::int32_t max_slot =
            std::max<std::int32_t>(1, index->maxSlotPrefix[li]);
        slotReady_.assign(static_cast<std::size_t>(max_slot) + 1, 0);
        scanFree_.assign(static_cast<std::size_t>(cfg_.banks), 0);
    }

    // Deliberately not inlined into runKind(): letting GCC merge the
    // observed and unobserved loops into one stack frame measurably
    // hurt the unobserved loop's register allocation (+50% on the
    // conventional CX handler).
    __attribute__((noinline)) SimResult
    run(const std::vector<SimObserver *> &observers)
    {
        SimResult result;
        result.floorplan =
            floorplanStats(cfg_, prog_.numVariables(), numConventional_);
        std::int64_t limit = prog_.size();
        if (opts_.maxInstructions > 0)
            limit = std::min(limit, opts_.maxInstructions);
        if constexpr (OBSERVE)
            beginObservation(observers, limit);
        const Instruction *code = prog_.instructions().data();
        for (std::int64_t i = 0; i < limit; ++i) {
            const Instruction &inst = code[i];
            if constexpr (OBSERVE) {
                split_ = LatencySplit{};
                curIndex_ = i;
                pendingCells_.clear();
            }
            const Step step = execute(inst);
            const auto op_idx = static_cast<std::size_t>(inst.op);
            ++result.opcodeCount[op_idx];
            result.opcodeBeats[op_idx] += step.end - step.start;
            result.memoryBeats += step.memoryBeats;
            result.execBeats = std::max(result.execBeats, step.end);
            // Counted in the same pass (was a second sweep over the
            // program): every non-LD/ST instruction enters the CPI
            // denominator.
            result.countedInstructions +=
                inst.op != Opcode::LD && inst.op != Opcode::ST;
            if constexpr (OBSERVE) {
                InstructionEvent event;
                event.index = i;
                event.inst = inst;
                event.start = step.start;
                event.end = step.end;
                event.split = split_;
                for (SimObserver *observer : observers)
                    observer->onInstruction(event);
                if (inst.op == Opcode::PM) {
                    MagicEvent magic;
                    magic.index = i;
                    magic.request = step.start - split_.magicStall;
                    magic.available = step.start;
                    magic.end = step.end;
                    for (SimObserver *observer : observers)
                        observer->onMagic(magic);
                }
                for (BankCellEvent &cell : pendingCells_) {
                    cell.time = step.start;
                    for (SimObserver *observer : observers)
                        observer->onBankCell(cell);
                }
            }
        }
        result.instructionsSimulated = limit;
        result.cpi = result.countedInstructions == 0
                         ? 0.0
                         : static_cast<double>(result.execBeats) /
                               static_cast<double>(
                                   result.countedInstructions);
        result.magicConsumed = magic_.consumed();
        result.magicStallBeats = magic_.stallBeats();
        if constexpr (OBSERVE)
            endObservation();
        return result;
    }

    // ---- stepwise interface (sampled estimator / harness) ---------------

    /** Timing outcome of one instruction. */
    struct Step
    {
        std::int64_t start = 0;
        std::int64_t end = 0;
        std::int64_t memoryBeats = 0;
    };

    /** Detailed execution of one instruction (the run() body's core). */
    Step
    executeOne(const Instruction &inst)
    {
        return execute(inst);
    }

    /**
     * Does @p inst mutate functional state at all? Instructions for
     * which this is false are no-ops to fastForwardOne(), so a
     * fast-forward pass may skip them without touching the machine.
     */
    bool
    ffRelevant(const Instruction &inst) const
    {
        switch (inst.op) {
          case Opcode::PM:
            return true;
          case Opcode::LD:
          case Opcode::ST:
          case Opcode::HD_M:
          case Opcode::PH_M:
          case Opcode::MXX_M:
          case Opcode::MZZ_M:
            return !isConv(inst.m0);
          case Opcode::CX:
          case Opcode::CZ:
            return !isConv(inst.m0) || !isConv(inst.m1);
          default:
            return false;
        }
    }

    /**
     * Functional execution of one instruction: replay exactly the
     * bank commits the detailed path would perform — same operand
     * choices, same commit order — without timelines or beat costs.
     * See the file comment for the single row-parallel divergence.
     */
    void
    fastForwardOne(const Instruction &inst)
    {
        switch (inst.op) {
          case Opcode::PM:
            ++pmExecuted_;
            return;
          case Opcode::LD:
            if (!isConv(inst.m0))
                bank(inst.m0).commitLoad(inst.m0);
            return;
          case Opcode::ST:
            if (!isConv(inst.m0))
                bank(inst.m0).commitStore(inst.m0, cfg_.localityStore);
            return;
          case Opcode::HD_M:
          case Opcode::PH_M:
            if (!isConv(inst.m0)) {
                Bank &b = bank(inst.m0);
                if (cfg_.inMemoryOps)
                    ffInMem1q(b, inst.m0);
                else
                    ffRoundTrip(b, inst.m0);
            }
            return;
          case Opcode::MXX_M:
          case Opcode::MZZ_M:
            if (!isConv(inst.m0)) {
                Bank &b = bank(inst.m0);
                if (cfg_.inMemoryOps)
                    ffInMem2q(b, inst.m0);
                else
                    ffRoundTrip(b, inst.m0);
            }
            return;
          case Opcode::CX:
          case Opcode::CZ:
            ffCxCz(inst);
            return;
          default:
            return;
        }
    }

    /**
     * Re-baseline every timing resource after a fast-forward gap:
     * ready times, register slots, scan cells and the SK barrier
     * return to beat 0, the row-parallel window closes, and the
     * magic source is rebuilt in its configured warm state (stall
     * beats accrued so far are carried; see magicStallTotal()).
     * Functional state — grids, gap/scan positions, pmExecuted() —
     * is untouched.
     */
    void
    resetTimingEpoch()
    {
        std::fill(varReady_.begin(), varReady_.end(), 0);
        std::fill(valReady_.begin(), valReady_.end(), 0);
        std::fill(slotReady_.begin(), slotReady_.end(), 0);
        std::fill(scanFree_.begin(), scanFree_.end(), 0);
        barrier_ = 0;
        rowBatch_ = RowBatch{};
        magicStallCarry_ += magic_.stallBeats();
        magic_ = MagicSource(cfg_.factories, cfg_.effectiveBufferCap(),
                             cfg_.lat.msfPeriod, cfg_.lat.magicTransfer,
                             cfg_.warmBuffer, cfg_.instantMagic);
    }

    /**
     * Deterministic dump of the functional state: the PM counter and,
     * per bank, the gap / scan position plus the full cell map in
     * row-major order. Two machines that executed the same functional
     * history produce identical strings — the differential harness
     * compares (and on failure, prints) these.
     */
    std::string
    functionalDigest() const
    {
        std::string out = "pm=" + std::to_string(pmExecuted_) + "\n";
        if constexpr (KIND != SamKind::Conventional) {
            for (std::size_t bi = 0; bi < banks_.size(); ++bi) {
                out += "bank" + std::to_string(bi);
                if (!banks_[bi]) {
                    out += ": empty\n";
                    continue;
                }
                const Bank &b = *banks_[bi];
                if constexpr (KIND == SamKind::Line) {
                    out += " gap=" + std::to_string(b.gap());
                } else {
                    const Coord scan = b.scanPosition();
                    out += " scan=" + std::to_string(scan.row) + "," +
                           std::to_string(scan.col);
                }
                out += ":";
                const OccupancyGrid &grid = b.grid();
                for (std::int32_t r = 0; r < grid.rows(); ++r) {
                    out += " |";
                    for (std::int32_t c = 0; c < grid.cols(); ++c)
                        out += " " + std::to_string(grid.at({r, c}));
                }
                out += "\n";
            }
        }
        return out;
    }

    /** PM instructions executed (detailed + fast-forwarded). */
    std::int64_t
    pmExecuted() const
    {
        return pmExecuted_;
    }

    /** Magic stall beats across every timing epoch so far. */
    std::int64_t
    magicStallTotal() const
    {
        return magicStallCarry_ + magic_.stallBeats();
    }

    /** Floorplan accounting for this configuration (as run() reports). */
    FloorplanStats
    floorplan() const
    {
        return floorplanStats(cfg_, prog_.numVariables(),
                              numConventional_);
    }

  private:
    // ---- telemetry -----------------------------------------------------

    /** Forwards one bank's grid mutations into pendingCells_. */
    class CellRecorder final : public CellListener
    {
      public:
        CellRecorder(Machine *machine, std::int32_t bank)
            : machine_(machine), bank_(bank)
        {
        }

        void
        onCellOccupied(QubitId q, const Coord &c) override
        {
            machine_->pendingCells_.push_back(
                {machine_->curIndex_, 0, bank_, q, c,
                 CellEventKind::Occupy});
        }

        void
        onCellVacated(QubitId q, const Coord &c) override
        {
            machine_->pendingCells_.push_back(
                {machine_->curIndex_, 0, bank_, q, c,
                 CellEventKind::Vacate});
        }

      private:
        Machine *machine_;
        std::int32_t bank_;
    };

    void
    beginObservation(const std::vector<SimObserver *> &observers,
                     std::int64_t limit)
    {
        SimBeginEvent begin;
        begin.program = &prog_;
        begin.arch = &cfg_;
        begin.instructions = limit;
        if constexpr (KIND != SamKind::Conventional) {
            for (std::size_t b = 0; b < banks_.size(); ++b) {
                BankLayout shape;
                if (banks_[b]) {
                    shape.rows = banks_[b]->grid().rows();
                    shape.cols = banks_[b]->grid().cols();
                    shape.occupancy = banks_[b]->occupancy();
                }
                begin.banks.push_back(shape);
            }
        }
        for (SimObserver *observer : observers)
            observer->onSimBegin(begin);

        if constexpr (KIND != SamKind::Conventional) {
            // The initial layout as occupy events (index -1, beat 0),
            // bank-major then row-major — the state every later
            // occupy/vacate delta applies to.
            for (std::size_t b = 0; b < banks_.size(); ++b) {
                if (!banks_[b])
                    continue;
                const OccupancyGrid &grid = banks_[b]->grid();
                for (std::int32_t r = 0; r < grid.rows(); ++r) {
                    for (std::int32_t c = 0; c < grid.cols(); ++c) {
                        const QubitId q = grid.at({r, c});
                        if (q == kNoQubit)
                            continue;
                        const BankCellEvent event{
                            -1, 0, static_cast<std::int32_t>(b), q,
                            Coord{r, c}, CellEventKind::Occupy};
                        for (SimObserver *observer : observers)
                            observer->onBankCell(event);
                    }
                }
                recorders_.push_back(std::make_unique<CellRecorder>(
                    this, static_cast<std::int32_t>(b)));
                banks_[b]->setCellListener(recorders_.back().get());
            }
        }
    }

    /**
     * Detach the bank hooks. The SimEndEvent itself is emitted by
     * simulate(), after the recordTrace/recordBreakdown shims have
     * moved their output into the result — observers were promised
     * the *finished* SimResult, trace vectors and breakdown included.
     */
    void
    endObservation()
    {
        if constexpr (KIND != SamKind::Conventional) {
            for (auto &bank : banks_)
                if (bank)
                    bank->setCellListener(nullptr);
        }
    }

    // ---- setup --------------------------------------------------------

    void
    setupRegions()
    {
        const auto n = static_cast<std::size_t>(prog_.numVariables());
        region_.assign(n, Region::Sam);
        bankOf_.assign(n, -1);
        if constexpr (KIND == SamKind::Conventional) {
            region_.assign(n, Region::Conventional);
            numConventional_ = static_cast<std::int64_t>(n);
            return;
        }
        numConventional_ = static_cast<std::int64_t>(
            cfg_.hybridFraction * static_cast<double>(n) + 0.5);
        numConventional_ =
            std::min<std::int64_t>(numConventional_,
                                   static_cast<std::int64_t>(n));
        if (numConventional_ > 0) {
            // The hottest variables by static reference count move into
            // the conventional region (Sec. VI-C), ties toward lower id.
            const auto refs = prog_.referenceCounts();
            std::vector<std::int32_t> order(n);
            std::iota(order.begin(), order.end(), 0);
            std::stable_sort(order.begin(), order.end(),
                             [&refs](std::int32_t a, std::int32_t b) {
                                 return refs[static_cast<std::size_t>(a)] >
                                        refs[static_cast<std::size_t>(b)];
                             });
            for (std::int64_t i = 0; i < numConventional_; ++i)
                region_[static_cast<std::size_t>(
                    order[static_cast<std::size_t>(i)])] =
                    Region::Conventional;
        }
    }

    /**
     * Within-bank placement order. Interleaved places bit i of every
     * program register adjacently, so bit-sliced working sets start
     * co-located ("strategic data allocation").
     */
    std::vector<QubitId>
    placementOrder(std::vector<QubitId> vars) const
    {
        if (cfg_.placement == PlacementPolicy::RowMajor)
            return vars;
        std::stable_sort(
            vars.begin(), vars.end(),
            [this](QubitId a, QubitId b) {
                const std::int32_t ra = prog_.registerOf(a);
                const std::int32_t rb = prog_.registerOf(b);
                const std::int64_t oa =
                    ra < 0 ? a
                           : a - prog_.registers()[static_cast<
                                     std::size_t>(ra)].first;
                const std::int64_t ob =
                    rb < 0 ? b
                           : b - prog_.registers()[static_cast<
                                     std::size_t>(rb)].first;
                return std::tie(oa, ra) < std::tie(ob, rb);
            });
        return vars;
    }

    void
    setupBanks()
    {
        if constexpr (KIND == SamKind::Conventional)
            return;
        // Deal SAM-resident variables round-robin over the banks
        // ("distributed sequentially to all the banks in order").
        std::vector<std::vector<QubitId>> dealt(
            static_cast<std::size_t>(cfg_.banks));
        std::int64_t next = 0;
        for (std::int32_t v = 0; v < prog_.numVariables(); ++v) {
            if (region_[static_cast<std::size_t>(v)] !=
                Region::Sam)
                continue;
            const auto b = static_cast<std::size_t>(next % cfg_.banks);
            dealt[b].push_back(v);
            bankOf_[static_cast<std::size_t>(v)] =
                static_cast<std::int32_t>(b);
            ++next;
        }
        for (auto &vars : dealt)
            vars = placementOrder(std::move(vars));
        banks_.resize(static_cast<std::size_t>(cfg_.banks));
        for (std::size_t b = 0; b < dealt.size(); ++b) {
            if (dealt[b].empty())
                continue;
            const auto cap =
                static_cast<std::int32_t>(dealt[b].size());
            banks_[b] = std::make_unique<Bank>(cap, cfg_.lat);
            banks_[b]->placeInitial(dealt[b]);
        }
    }

    // ---- bank dispatch -------------------------------------------------

    bool
    isConv(std::int32_t m) const
    {
        if constexpr (KIND == SamKind::Conventional)
            return true;
        return region_[static_cast<std::size_t>(m)] ==
               Region::Conventional;
    }

    std::int32_t
    bankOf(std::int32_t m) const
    {
        const std::int32_t b = bankOf_[static_cast<std::size_t>(m)];
        LSQCA_ASSERT(b >= 0, "variable is not SAM-resident");
        return b;
    }

    Bank &
    bank(std::int32_t m) const
    {
        return *banks_[static_cast<std::size_t>(bankOf(m))];
    }

    // Cost-then-commit pairs against a caller-resolved bank reference:
    // each exec path looks its bank up once per instruction instead of
    // once per cost/commit call (the dispatch indirection showed up in
    // the point/line simulate() profiles next to the scans themselves).
    // Each helper also owns its latency-split attribution, so every
    // exec path charges the right component without repeating itself
    // (the `if constexpr` strips it from the unobserved instantiation).

    std::int64_t
    takeLoad(Bank &b, std::int32_t m)
    {
        const std::int64_t cost = b.loadCost(m);
        b.commitLoad(m);
        if constexpr (OBSERVE)
            split_.load += cost;
        return cost;
    }

    std::int64_t
    takeStore(Bank &b, std::int32_t m)
    {
        const std::int64_t cost = b.storeCost(m, cfg_.localityStore);
        b.commitStore(m, cfg_.localityStore);
        if constexpr (OBSERVE)
            split_.store += cost;
        return cost;
    }

    /** Ablation path: round-trip through the CR instead of in-memory. */
    std::int64_t
    takeRoundTrip(Bank &b, std::int32_t m)
    {
        // Sequenced explicitly: the store is only legal once the load
        // has removed m from the grid.
        const std::int64_t ld = takeLoad(b, m);
        return ld + takeStore(b, m);
    }

    /** Scan/gap travel for an in-memory single-qubit op. */
    std::int64_t
    takeInMem1q(Bank &b, std::int32_t m)
    {
        if constexpr (KIND == SamKind::Line) {
            const std::int64_t cost = b.alignCost(m);
            b.commitAlign(m);
            if constexpr (OBSERVE)
                split_.align += cost;
            return cost;
        } else {
            const std::int64_t cost = b.seekCost(m);
            b.commitSeek(m);
            if constexpr (OBSERVE)
                split_.seek += cost;
            return cost;
        }
    }

    /** Positioning for an in-memory two-qubit op against the CR/port. */
    std::int64_t
    takeInMem2q(Bank &b, std::int32_t m)
    {
        if constexpr (KIND == SamKind::Line) {
            const std::int64_t cost = b.alignCost(m);
            b.commitAlign(m);
            if constexpr (OBSERVE)
                split_.align += cost;
            return cost;
        } else {
            const std::int64_t cost = b.fetchToPortCost(m);
            b.commitFetchToPort(m);
            if constexpr (OBSERVE)
                split_.pick += cost;
            return cost;
        }
    }

    // ---- functional (commit-only) counterparts --------------------------

    void
    ffRoundTrip(Bank &b, std::int32_t m)
    {
        b.commitLoad(m);
        b.commitStore(m, cfg_.localityStore);
    }

    void
    ffInMem1q(Bank &b, std::int32_t m)
    {
        if constexpr (KIND == SamKind::Line)
            b.commitAlign(m);
        else
            b.commitSeek(m);
    }

    void
    ffInMem2q(Bank &b, std::int32_t m)
    {
        if constexpr (KIND == SamKind::Line)
            b.commitAlign(m);
        else
            b.commitFetchToPort(m);
    }

    /** Functional mirror of execCxCz: same branches, same commit order,
     *  same cheaper-operand choice (loadCost is a pure function of the
     *  grid, so the comparison is identical to the detailed path's). */
    void
    ffCxCz(const Instruction &inst)
    {
        const bool conv0 = isConv(inst.m0);
        const bool conv1 = isConv(inst.m1);
        if (conv0 && conv1)
            return;

        if (conv0 != conv1) {
            const std::int32_t q = conv0 ? inst.m1 : inst.m0;
            Bank &b = bank(q);
            if (cfg_.inMemoryOps)
                ffInMem2q(b, q);
            else
                ffRoundTrip(b, q);
            return;
        }

        Bank &bank0 = bank(inst.m0);
        Bank &bank1 = bank(inst.m1);
        if (!cfg_.inMemoryOps) {
            // Ablation order matters: ld0, ld1, st0, st1.
            bank0.commitLoad(inst.m0);
            bank1.commitLoad(inst.m1);
            bank0.commitStore(inst.m0, cfg_.localityStore);
            bank1.commitStore(inst.m1, cfg_.localityStore);
            return;
        }

        if (bankOf(inst.m0) == bankOf(inst.m1)) {
            if constexpr (KIND != SamKind::Line) {
                bank0.commitFetchToPort(inst.m0);
                bank0.commitFetchToPort(inst.m1);
            } else {
                Bank &b = bank0;
                if (cfg_.directSurgery &&
                    b.canDirectSurgery(inst.m0, inst.m1)) {
                    b.commitDirectSurgery(inst.m0, inst.m1);
                } else {
                    const std::int64_t ld0 = b.loadCost(inst.m0);
                    const std::int64_t ld1 = b.loadCost(inst.m1);
                    const bool load0 = ld0 <= ld1;
                    const std::int32_t loaded =
                        load0 ? inst.m0 : inst.m1;
                    const std::int32_t in_mem =
                        load0 ? inst.m1 : inst.m0;
                    b.commitLoad(loaded);
                    ffInMem2q(b, in_mem);
                    b.commitStore(loaded, cfg_.localityStore);
                }
            }
        } else {
            ffInMem2q(bank0, inst.m0);
            ffInMem2q(bank1, inst.m1);
        }
    }

    // ---- issue helpers --------------------------------------------------

    /** Consume the pending SK barrier (applies to one instruction). */
    std::int64_t
    takeBarrier()
    {
        const std::int64_t b = barrier_;
        barrier_ = 0;
        return b;
    }

    std::int64_t &
    scanFree(std::int32_t m)
    {
        return scanFree_[static_cast<std::size_t>(bankOf(m))];
    }

    // ---- per-opcode execution -------------------------------------------

    Step
    execute(const Instruction &inst)
    {
        switch (inst.op) {
          case Opcode::LD: return execLoad(inst);
          case Opcode::ST: return execStore(inst);
          case Opcode::PZ_C:
          case Opcode::PP_C: return execPrepC(inst);
          case Opcode::PM: return execMagic(inst);
          case Opcode::HD_C:
          case Opcode::PH_C: return execUnitaryC(inst);
          case Opcode::MX_C:
          case Opcode::MZ_C: return execMeasC(inst);
          case Opcode::MXX_C:
          case Opcode::MZZ_C: return execMeas2C(inst);
          case Opcode::SK: return execSkip(inst);
          case Opcode::PZ_M:
          case Opcode::PP_M:
          case Opcode::MX_M:
          case Opcode::MZ_M: return execZeroLatM(inst);
          case Opcode::HD_M:
          case Opcode::PH_M: return execUnitaryM(inst);
          case Opcode::MXX_M:
          case Opcode::MZZ_M: return execMeas2M(inst);
          case Opcode::CX:
          case Opcode::CZ: return execCxCz(inst);
        }
        throw InternalError("unhandled opcode");
    }

    Step
    execLoad(const Instruction &inst)
    {
        auto &slot = slotReady_[static_cast<std::size_t>(inst.c0)];
        auto &var = varReady_[static_cast<std::size_t>(inst.m0)];
        if (isConv(inst.m0)) {
            // Conventional-region qubits are always register-adjacent.
            const std::int64_t start =
                maxOf(var, slot, takeBarrier());
            var = slot = start;
            return {start, start, 0};
        }
        auto &scan = scanFree(inst.m0);
        const std::int64_t start =
            maxOf(var, slot, scan, takeBarrier());
        const std::int64_t cost =
            takeLoad(bank(inst.m0), inst.m0);
        const std::int64_t end = start + cost;
        var = slot = scan = end;
        return {start, end, cost};
    }

    Step
    execStore(const Instruction &inst)
    {
        auto &slot = slotReady_[static_cast<std::size_t>(inst.c0)];
        auto &var = varReady_[static_cast<std::size_t>(inst.m0)];
        if (isConv(inst.m0)) {
            const std::int64_t start =
                maxOf(var, slot, takeBarrier());
            var = slot = start;
            return {start, start, 0};
        }
        auto &scan = scanFree(inst.m0);
        const std::int64_t start =
            maxOf(var, slot, scan, takeBarrier());
        const std::int64_t cost =
            takeStore(bank(inst.m0), inst.m0);
        const std::int64_t end = start + cost;
        var = slot = scan = end;
        return {start, end, cost};
    }

    Step
    execPrepC(const Instruction &inst)
    {
        auto &slot = slotReady_[static_cast<std::size_t>(inst.c0)];
        const std::int64_t start = std::max(slot, takeBarrier());
        slot = start;
        return {start, start, 0};
    }

    Step
    execMagic(const Instruction &inst)
    {
        auto &slot = slotReady_[static_cast<std::size_t>(inst.c0)];
        const std::int64_t req = std::max(slot, takeBarrier());
        const MagicSource::Grant grant = magic_.acquire(req);
        slot = grant.end;
        ++pmExecuted_;
        if constexpr (OBSERVE)
            split_.magicStall += grant.start - req;
        return {grant.start, grant.end, 0};
    }

    Step
    execUnitaryC(const Instruction &inst)
    {
        auto &slot = slotReady_[static_cast<std::size_t>(inst.c0)];
        const std::int64_t start = std::max(slot, takeBarrier());
        const std::int64_t beats = inst.op == Opcode::HD_C
                                       ? cfg_.lat.hadamard
                                       : cfg_.lat.phase;
        const std::int64_t end = start + beats;
        slot = end;
        if constexpr (OBSERVE)
            split_.compute += beats;
        return {start, end, 0};
    }

    Step
    execMeasC(const Instruction &inst)
    {
        auto &slot = slotReady_[static_cast<std::size_t>(inst.c0)];
        const std::int64_t start = std::max(slot, takeBarrier());
        slot = start;
        valReady_[static_cast<std::size_t>(inst.v0)] = start;
        return {start, start, 0};
    }

    Step
    execMeas2C(const Instruction &inst)
    {
        auto &slot0 = slotReady_[static_cast<std::size_t>(inst.c0)];
        auto &slot1 = slotReady_[static_cast<std::size_t>(inst.c1)];
        const std::int64_t start =
            maxOf(slot0, slot1, takeBarrier());
        const std::int64_t end = start + cfg_.lat.surgery;
        slot0 = slot1 = end;
        valReady_[static_cast<std::size_t>(inst.v0)] = end;
        if constexpr (OBSERVE)
            split_.surgery += cfg_.lat.surgery;
        return {start, end, 0};
    }

    Step
    execSkip(const Instruction &inst)
    {
        const std::int64_t start =
            std::max(valReady_[static_cast<std::size_t>(inst.v0)],
                     takeBarrier());
        const std::int64_t end = start + cfg_.lat.skWait;
        barrier_ = end; // gates only the next instruction
        if constexpr (OBSERVE)
            split_.skWait += cfg_.lat.skWait;
        return {start, end, 0};
    }

    Step
    execZeroLatM(const Instruction &inst)
    {
        auto &var = varReady_[static_cast<std::size_t>(inst.m0)];
        const std::int64_t start = std::max(var, takeBarrier());
        var = start;
        if (inst.v0 >= 0)
            valReady_[static_cast<std::size_t>(inst.v0)] = start;
        return {start, start, 0};
    }

    Step
    execUnitaryM(const Instruction &inst)
    {
        const std::int64_t beats = inst.op == Opcode::HD_M
                                       ? cfg_.lat.hadamard
                                       : cfg_.lat.phase;
        auto &var = varReady_[static_cast<std::size_t>(inst.m0)];
        if (isConv(inst.m0)) {
            const std::int64_t start = std::max(var, takeBarrier());
            const std::int64_t end = start + beats;
            var = end;
            if constexpr (OBSERVE)
                split_.compute += beats;
            return {start, end, 0};
        }
        auto &scan = scanFree(inst.m0);
        Bank &b = bank(inst.m0);

        // Row-parallel unitaries (Sec. V-C): a second H/S whose target
        // shares the currently-open gap-row window executes in the same
        // window for free. Line SAM only — the branch vanishes from the
        // point/conventional instantiations.
        if constexpr (KIND == SamKind::Line) {
            if (cfg_.rowParallelOps && cfg_.inMemoryOps &&
                barrier_ == 0 && rowBatch_.valid &&
                rowBatch_.op == inst.op &&
                rowBatch_.bank == bankOf(inst.m0)) {
                const std::int32_t row = b.positionOf(inst.m0).row;
                if (row == rowBatch_.row && var <= rowBatch_.start) {
                    var = rowBatch_.end;
                    // A shared window: no split components — the
                    // motion and compute were charged to the opener.
                    return {rowBatch_.start, rowBatch_.end, 0};
                }
            }
        }

        const std::int64_t start = maxOf(var, scan, takeBarrier());
        const std::int64_t motion =
            cfg_.inMemoryOps ? takeInMem1q(b, inst.m0)
                             : takeRoundTrip(b, inst.m0);
        const std::int64_t end = start + motion + beats;
        var = scan = end;
        if constexpr (OBSERVE)
            split_.compute += beats;
        if constexpr (KIND == SamKind::Line) {
            if (cfg_.rowParallelOps && cfg_.inMemoryOps) {
                rowBatch_ = {true, inst.op, bankOf(inst.m0),
                             b.positionOf(inst.m0).row,
                             start + motion, end};
            }
        }
        return {start, end, motion};
    }

    Step
    execMeas2M(const Instruction &inst)
    {
        auto &slot = slotReady_[static_cast<std::size_t>(inst.c0)];
        auto &var = varReady_[static_cast<std::size_t>(inst.m0)];
        if (isConv(inst.m0)) {
            const std::int64_t start =
                maxOf(var, slot, takeBarrier());
            const std::int64_t end = start + cfg_.lat.surgery;
            var = slot = end;
            valReady_[static_cast<std::size_t>(inst.v0)] = end;
            if constexpr (OBSERVE)
                split_.surgery += cfg_.lat.surgery;
            return {start, end, 0};
        }
        // Concealment (Fig. 1): the scan motion starts as soon as the
        // operand and the scan cell are free; the lattice surgery then
        // begins once BOTH the positioned operand and the CR-side state
        // (e.g. the magic state PM is fetching) are ready. The memory
        // latency hides behind the magic-state wait.
        auto &scan = scanFree(inst.m0);
        Bank &b = bank(inst.m0);
        const std::int64_t motion_start =
            maxOf(var, scan, takeBarrier());
        std::int64_t motion;
        if constexpr (OBSERVE)
            split_.surgery += cfg_.lat.surgery;
        if (cfg_.inMemoryOps) {
            motion = takeInMem2q(b, inst.m0);
            const std::int64_t surgery_start =
                std::max(motion_start + motion, slot);
            const std::int64_t end = surgery_start + cfg_.lat.surgery;
            var = slot = end;
            // Point SAM: the operand is parked at the port, so the scan
            // is free to serve other requests during the magic wait;
            // line SAM must keep the gap row aligned (it is the merge
            // path) until the surgery completes.
            if constexpr (KIND == SamKind::Point)
                scan = motion_start + motion;
            else
                scan = end;
            valReady_[static_cast<std::size_t>(inst.v0)] = end;
            return {motion_start, end, motion};
        }
        motion = takeLoad(b, inst.m0);
        const std::int64_t st = takeStore(b, inst.m0);
        const std::int64_t surgery_start =
            std::max(motion_start + motion, slot);
        const std::int64_t end = surgery_start + cfg_.lat.surgery + st;
        var = slot = scan = end;
        valReady_[static_cast<std::size_t>(inst.v0)] = end;
        return {motion_start, end, motion + st};
    }

    /**
     * Optimized CX/CZ (Sec. VI-A): at run time the machine loads the
     * cheaper operand into the CR and touches the other in memory; a
     * lattice-surgery CNOT/CZ is two 1-beat merges via a free |+>
     * ancilla at the port.
     */
    Step
    execCxCz(const Instruction &inst)
    {
        auto &var0 = varReady_[static_cast<std::size_t>(inst.m0)];
        auto &var1 = varReady_[static_cast<std::size_t>(inst.m1)];
        const std::int64_t surgery2 = 2 * cfg_.lat.surgery;
        const bool conv0 = isConv(inst.m0);
        const bool conv1 = isConv(inst.m1);
        if constexpr (OBSERVE)
            split_.surgery += surgery2;

        if (conv0 && conv1) {
            const std::int64_t start =
                maxOf(var0, var1, takeBarrier());
            const std::int64_t end = start + surgery2;
            var0 = var1 = end;
            return {start, end, 0};
        }

        if (conv0 != conv1) {
            const std::int32_t q = conv0 ? inst.m1 : inst.m0;
            auto &scan = scanFree(q);
            Bank &b = bank(q);
            const std::int64_t start =
                maxOf(var0, var1, scan, takeBarrier());
            const std::int64_t motion =
                cfg_.inMemoryOps ? takeInMem2q(b, q)
                                 : takeRoundTrip(b, q);
            const std::int64_t end = start + motion + surgery2;
            var0 = var1 = scan = end;
            return {start, end, motion};
        }

        // Both operands live in SAM.
        auto &scan0 = scanFree(inst.m0);
        auto &scan1 = scanFree(inst.m1);
        Bank &bank0 = bank(inst.m0);
        Bank &bank1 = bank(inst.m1);
        const bool same_bank = bankOf(inst.m0) == bankOf(inst.m1);
        const std::int64_t start =
            maxOf(var0, var1, scan0, scan1, takeBarrier());

        std::int64_t motion;
        std::int64_t end;
        if (!cfg_.inMemoryOps) {
            // Ablation: round-trip both operands through the CR.
            const std::int64_t ld0 = takeLoad(bank0, inst.m0);
            const std::int64_t ld1 = takeLoad(bank1, inst.m1);
            const std::int64_t st0 = takeStore(bank0, inst.m0);
            const std::int64_t st1 = takeStore(bank1, inst.m1);
            motion = ld0 + ld1 + st0 + st1;
            if (same_bank) {
                end = start + motion + surgery2;
            } else {
                end = start + std::max(ld0, ld1) + surgery2 +
                      std::max(st0, st1);
                scan1 = end;
            }
            scan0 = end;
            var0 = var1 = end;
            return {start, end, motion};
        }

        if (same_bank) {
            if constexpr (KIND != SamKind::Line) {
                // Drag both operands to the port region (they stay in
                // memory; locality makes later touches cheap). The
                // port-side surgery itself does not occupy the scan.
                motion = takeInMem2q(bank0, inst.m0);
                motion += takeInMem2q(bank0, inst.m1);
                end = start + motion + surgery2;
                scan0 = start + motion;
                var0 = var1 = end;
                return {start, end, motion};
            } else {
                Bank &b = bank0;
                if (cfg_.directSurgery &&
                    b.canDirectSurgery(inst.m0, inst.m1)) {
                    // Extension: lattice surgery straight between two
                    // data cells sharing a line; only the gap
                    // repositions.
                    motion = b.directSurgeryCost(inst.m0, inst.m1);
                    b.commitDirectSurgery(inst.m0, inst.m1);
                    if constexpr (OBSERVE)
                        split_.align += motion;
                    end = start + motion + surgery2;
                } else {
                    // Sec. VI-A translation rule: load the cheaper
                    // operand into the CR, touch the other in memory,
                    // and store the loaded one back — the
                    // locality-aware store drops it into the partner's
                    // line (Sec. V-B pairing). Each operand's load cost
                    // is computed once and reused for both the
                    // comparison and the commit path.
                    const std::int64_t ld0 = b.loadCost(inst.m0);
                    const std::int64_t ld1 = b.loadCost(inst.m1);
                    const bool load0 = ld0 <= ld1;
                    const std::int32_t loaded =
                        load0 ? inst.m0 : inst.m1;
                    const std::int32_t in_mem =
                        load0 ? inst.m1 : inst.m0;
                    const std::int64_t ld = load0 ? ld0 : ld1;
                    b.commitLoad(loaded);
                    if constexpr (OBSERVE)
                        split_.load += ld;
                    const std::int64_t pos =
                        takeInMem2q(b, in_mem);
                    const std::int64_t st = takeStore(b, loaded);
                    motion = ld + pos + st;
                    end = start + motion + surgery2;
                }
            }
            scan0 = end;
        } else {
            // Cross-bank: each bank positions its operand concurrently;
            // the merge path runs through the CR ports. Point scans are
            // released after positioning; line gaps hold their rows.
            const std::int64_t pos0 = takeInMem2q(bank0, inst.m0);
            const std::int64_t pos1 = takeInMem2q(bank1, inst.m1);
            motion = pos0 + pos1;
            end = start + std::max(pos0, pos1) + surgery2;
            if constexpr (KIND == SamKind::Point) {
                scan0 = start + pos0;
                scan1 = start + pos1;
            } else {
                scan0 = end;
                scan1 = end;
            }
        }
        var0 = var1 = end;
        return {start, end, motion};
    }

    const Program &prog_;
    SimOptions opts_;
    ArchConfig cfg_;
    MagicSource magic_;

    std::vector<Region> region_;
    std::vector<std::int32_t> bankOf_;
    std::int64_t numConventional_ = 0;
    std::vector<std::unique_ptr<Bank>> banks_;

    /** An open row-parallel unitary window (line SAM, Sec. V-C). */
    struct RowBatch
    {
        bool valid = false;
        Opcode op = Opcode::HD_M;
        std::int32_t bank = -1;
        std::int32_t row = -1;
        std::int64_t start = 0;
        std::int64_t end = 0;
    };

    std::vector<std::int64_t> varReady_;
    std::vector<std::int64_t> valReady_;
    std::vector<std::int64_t> slotReady_;
    std::vector<std::int64_t> scanFree_;
    std::int64_t barrier_ = 0;
    RowBatch rowBatch_;

    /** PM instructions executed, detailed or fast-forwarded; unlike
     *  MagicSource::consumed() it survives resetTimingEpoch() and
     *  counts in instant-magic mode. */
    std::int64_t pmExecuted_ = 0;
    /** Stall beats from magic sources retired by resetTimingEpoch(). */
    std::int64_t magicStallCarry_ = 0;

    // Telemetry state, touched only by the OBSERVE instantiation.
    LatencySplit split_;
    std::int64_t curIndex_ = -1;
    std::vector<BankCellEvent> pendingCells_;
    std::vector<std::unique_ptr<CellRecorder>> recorders_;
};

} // namespace lsqca::detail

#endif // LSQCA_SIM_MACHINE_H
