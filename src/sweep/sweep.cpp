#include "sweep/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "api/serialize.h"
#include "common/error.h"
#include "sweep/thread_pool.h"

namespace lsqca {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

SweepEngine::SweepEngine(SweepOptions options)
    : threads_(options.threads > 0
                   ? options.threads
                   : static_cast<std::int32_t>(std::max(
                         1u, std::thread::hardware_concurrency()))),
      metrics_(options.metrics)
{
}

SweepReport
SweepEngine::run(const std::vector<SweepJob> &jobs) const
{
    const auto t0 = std::chrono::steady_clock::now();
    SweepReport report;
    report.threads = threads_;
    report.results.resize(jobs.size());
    report.jobSeconds.assign(jobs.size(), 0.0);
    for (const auto &job : jobs)
        LSQCA_REQUIRE(job.program != nullptr,
                      "sweep job '" + job.name + "' has no program");

    // Instrument lookups happen once, here; per-job updates are
    // relaxed atomics (common/metrics.h). All null when detached.
    metrics::Counter *jobsDone =
        metrics_ ? &metrics_->counter("sweep.jobs") : nullptr;
    metrics::Histogram *jobWall =
        metrics_ ? &metrics_->histogram("sweep.job_wall_seconds")
                 : nullptr;
    metrics::Histogram *queueWait =
        metrics_ ? &metrics_->histogram("sweep.queue_wait_seconds")
                 : nullptr;

    // Workers pull the next job index from a shared counter: cheap
    // dynamic load balancing (job costs vary by orders of magnitude)
    // while each result lands in its submission slot, keeping the
    // output order — and therefore every downstream table — identical
    // to the serial loop.
    auto runJob = [&](std::size_t index) {
        const auto j0 = std::chrono::steady_clock::now();
        report.results[index] =
            simulate(*jobs[index].program, jobs[index].options);
        report.jobSeconds[index] = secondsSince(j0);
        if (jobsDone != nullptr) {
            jobsDone->add();
            jobWall->observe(report.jobSeconds[index]);
        }
    };

    // A job's queue wait is the sweep time that passed before its
    // worker picked it up, net of that worker's own busy time — the
    // load-imbalance signal `lsqca report`-style tooling reads.
    const auto finishWorker = [&](std::size_t w, double busy) {
        if (metrics_ != nullptr)
            metrics_
                ->gauge("sweep.worker." + std::to_string(w + 1) +
                        ".busy_seconds")
                .set(busy);
    };

    if (threads_ <= 1 || jobs.size() <= 1) {
        double busy = 0.0;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (queueWait != nullptr)
                queueWait->observe(
                    std::max(0.0, secondsSince(t0) - busy));
            runJob(i);
            busy += report.jobSeconds[i];
        }
        finishWorker(0, busy);
        report.wallSeconds = secondsSince(t0);
        if (metrics_ != nullptr)
            metrics_->gauge("sweep.wall_seconds")
                .set(report.wallSeconds);
        return report;
    }

    ThreadPool pool(static_cast<std::size_t>(
        std::min<std::int64_t>(threads_,
                               static_cast<std::int64_t>(jobs.size()))));
    pool.attachMetrics(metrics_);
    std::atomic<std::size_t> next{0};
    std::vector<std::future<void>> drained;
    drained.reserve(pool.size());
    for (std::size_t w = 0; w < pool.size(); ++w) {
        drained.push_back(pool.submit([&, w] {
            double busy = 0.0;
            for (;;) {
                const std::size_t index =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (index >= jobs.size())
                    break;
                if (queueWait != nullptr)
                    queueWait->observe(
                        std::max(0.0, secondsSince(t0) - busy));
                runJob(index);
                busy += report.jobSeconds[index];
            }
            finishWorker(w, busy);
        }));
    }
    // get() rethrows the first worker exception after all settle.
    std::exception_ptr failure;
    for (auto &f : drained) {
        try {
            f.get();
        } catch (...) {
            if (!failure)
                failure = std::current_exception();
        }
    }
    if (failure)
        std::rethrow_exception(failure);
    report.wallSeconds = secondsSince(t0);
    if (metrics_ != nullptr)
        metrics_->gauge("sweep.wall_seconds").set(report.wallSeconds);
    return report;
}

Json
benchReport(const std::string &benchName,
            const std::vector<SweepJob> &jobs, const SweepReport &report,
            bool breakdownSchema)
{
    LSQCA_REQUIRE(jobs.size() == report.results.size(),
                  "job/result arity mismatch");
    // Jobs that collected structured breakdowns promote the document
    // to lsqca-bench-v2; plain sweeps keep emitting byte-identical v1.
    // The caller's flag wins over content sniffing so empty shards of
    // a breakdown sweep stamp v2 as well (see the header).
    bool v2 = breakdownSchema;
    for (const SimResult &r : report.results)
        v2 = v2 || !r.breakdown.empty();
    Json entries = Json::array();
    for (std::size_t i = 0; i < jobs.size(); ++i)
        entries.push(benchEntry(jobs[i].name, report.results[i],
                                report.jobSeconds[i]));
    return benchDocument(benchName, std::move(entries), report.threads,
                         report.wallSeconds, v2);
}

Json
benchEntry(const std::string &name, const SimResult &r, double jobSeconds)
{
    Json metrics = Json::object();
    metrics.set("cpi", r.cpi);
    metrics.set("exec_beats", r.execBeats);
    metrics.set("memory_beats", r.memoryBeats);
    metrics.set("magic_stall_beats", r.magicStallBeats);
    metrics.set("density", r.density());
    metrics.set("wall_seconds", jobSeconds);
    // Sampled-estimator statistics, only on entries that really
    // are estimates: a sampled run that degenerated to full
    // coverage (period=1, short program) stays byte-identical to
    // exact output. docs/SAMPLING.md documents the keys.
    if (r.estimated) {
        metrics.set("cpi_ci95", r.cpiCi95);
        metrics.set("sampling_error", r.samplingError);
        metrics.set("sampled_units", r.sampledUnits);
    }
    Json entry = Json::object();
    entry.set("name", name);
    entry.set("metrics", std::move(metrics));
    if (!r.breakdown.empty())
        entry.set("breakdown", api::toJson(r.breakdown));
    return entry;
}

Json
benchDocument(const std::string &benchName, Json entries,
              std::int32_t threads, double wallSeconds, bool v2)
{
    Json doc = Json::object();
    doc.set("bench", benchName);
    doc.set("schema", v2 ? "lsqca-bench-v2" : "lsqca-bench-v1");
    doc.set("threads", threads);
    doc.set("jobs", static_cast<std::int64_t>(entries.size()));
    doc.set("wall_seconds", wallSeconds);
    doc.set("entries", std::move(entries));
    return doc;
}

std::string
writeBenchJson(const std::string &benchName, const Json &doc,
               const std::string &outDir)
{
    const std::string path = outDir + "/BENCH_" + benchName + ".json";
    doc.write(path);
    return path;
}

} // namespace lsqca
