#ifndef LSQCA_SWEEP_SWEEP_H
#define LSQCA_SWEEP_SWEEP_H

/**
 * @file
 * Parallel configuration-sweep engine.
 *
 * The paper's headline figures sweep many (program, architecture)
 * points; each simulate() call is independent, so the engine fans a job
 * vector across a fixed thread pool and collects results *in
 * submission order* — a parallel sweep is bit-identical to the serial
 * loop it replaces, regardless of worker count. A JSON report
 * (`bench/out/BENCH_<name>.json`) records per-job metrics plus
 * wall-clock so regressions are machine-checkable (tools/bench_diff.py).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "isa/program.h"
#include "sim/simulator.h"

namespace lsqca {

/** One sweep point: a program run under one machine configuration. */
struct SweepJob
{
    /** Stable identifier, e.g. "adder/point#1/f2" (JSON entry key). */
    std::string name;
    /** Borrowed; must outlive the SweepEngine::run call. */
    const Program *program = nullptr;
    SimOptions options;
};

/** Outcome of a sweep: results aligned with the submitted job vector. */
struct SweepReport
{
    std::vector<SimResult> results;  ///< submission order
    std::vector<double> jobSeconds;  ///< per-job wall time
    double wallSeconds = 0.0;        ///< whole-sweep wall time
    std::int32_t threads = 1;        ///< workers actually used
};

/** Engine options. */
struct SweepOptions
{
    /** Worker threads; 0 = hardware_concurrency. */
    std::int32_t threads = 0;
    /**
     * Optional observability registry (must outlive the run call).
     * When attached, each run() accounts `sweep.jobs`,
     * `sweep.job_wall_seconds`, `sweep.queue_wait_seconds`,
     * per-worker `sweep.worker.<w>.busy_seconds` gauges, and the
     * pool's queue metrics (docs/METRICS.md). Detached (the default),
     * the engine takes no extra clock reads and results — and BENCH
     * bytes — are exactly those of an uninstrumented run.
     */
    metrics::Registry *metrics = nullptr;
};

/** Fans simulate() jobs across a fixed thread pool. */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions options = {});

    /**
     * Run every job and return results in submission order. Exceptions
     * from any job propagate to the caller after all workers settle.
     */
    SweepReport run(const std::vector<SweepJob> &jobs) const;

    std::int32_t threads() const { return threads_; }

  private:
    std::int32_t threads_;
    metrics::Registry *metrics_;
};

/**
 * Build the standard BENCH JSON document for a sweep: one entry per
 * job with cpi / exec_beats / memory_beats / magic_stall_beats /
 * density / wall_seconds metrics. Jobs that collected structured
 * breakdowns (SimOptions::recordBreakdown) add a per-entry
 * "breakdown" array and promote the schema to lsqca-bench-v2; plain
 * sweeps emit byte-identical lsqca-bench-v1 (docs/OBSERVERS.md).
 *
 * @p breakdownSchema forces the v2 schema even when no entry carries
 * a breakdown: a sharded breakdown sweep must stamp v2 on its *empty*
 * shards too, or the shard set would mix schemas and refuse to merge
 * (runSpec passes the spec's record_breakdown flag).
 */
Json benchReport(const std::string &benchName,
                 const std::vector<SweepJob> &jobs,
                 const SweepReport &report,
                 bool breakdownSchema = false);

/**
 * Build ONE BENCH entry — `{name, metrics{...}, [breakdown]}` — for a
 * simulated job. This is the unit the job-granularity result cache
 * stores and splices: benchReport() is defined as benchDocument() over
 * benchEntry() per job, so a document assembled from cached entries is
 * byte-identical to one built from a fresh simulation (the Json layer
 * guarantees dump(parse(dump(x))) == dump(x)).
 */
Json benchEntry(const std::string &name, const SimResult &result,
                double jobSeconds);

/**
 * Assemble the standard BENCH document from pre-built entries (fresh
 * from benchEntry() or spliced back out of the job cache). @p v2
 * stamps the lsqca-bench-v2 schema; callers sniff cached entries for
 * a "breakdown" key the same way benchReport() sniffs SimResults.
 */
Json benchDocument(const std::string &benchName, Json entries,
                   std::int32_t threads, double wallSeconds, bool v2);

/**
 * Write @p doc to `<outDir>/BENCH_<benchName>.json` and return the
 * path. @p outDir defaults to "bench/out" under the current directory.
 */
std::string writeBenchJson(const std::string &benchName, const Json &doc,
                           const std::string &outDir = "bench/out");

} // namespace lsqca

#endif // LSQCA_SWEEP_SWEEP_H
