#include "sweep/thread_pool.h"

#include <algorithm>

namespace lsqca {
namespace {

thread_local bool t_insideWorker = false;

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t count = std::max<std::size_t>(1, threads);
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    ready_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    t_insideWorker = true;
    for (;;) {
        Queued task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        if (task.stamped)
            if (metrics::Histogram *wait =
                    queueWait_.load(std::memory_order_relaxed))
                wait->observe(std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  task.enqueued)
                                  .count());
        task.run(); // packaged_task captures exceptions into the future
    }
}

void
ThreadPool::attachMetrics(metrics::Registry *registry)
{
    tasks_.store(registry ? &registry->counter("pool.tasks") : nullptr,
                 std::memory_order_relaxed);
    queueWait_.store(
        registry ? &registry->histogram("pool.queue_wait_seconds")
                 : nullptr,
        std::memory_order_relaxed);
}

bool
ThreadPool::insideWorker()
{
    return t_insideWorker;
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool(
        std::max(1u, std::thread::hardware_concurrency()));
    return pool;
}

void
parallelFor(ThreadPool &pool, std::int64_t begin, std::int64_t end,
            int chunks,
            const std::function<void(std::int64_t, std::int64_t)> &body)
{
    if (begin >= end)
        return;
    const std::int64_t span = end - begin;
    const std::int64_t parts =
        std::clamp<std::int64_t>(chunks, 1, span);
    if (parts == 1 || pool.size() <= 1 || ThreadPool::insideWorker()) {
        body(begin, end);
        return;
    }
    std::vector<std::future<void>> pending;
    pending.reserve(static_cast<std::size_t>(parts));
    for (std::int64_t c = 0; c < parts; ++c) {
        const std::int64_t lo = begin + span * c / parts;
        const std::int64_t hi = begin + span * (c + 1) / parts;
        pending.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
    }
    // Wait for EVERY chunk before letting an exception unwind: queued
    // tasks hold references to `body` (and the caller's data), so an
    // early rethrow would leave them running against destroyed state.
    std::exception_ptr failure;
    for (auto &f : pending) {
        try {
            f.get();
        } catch (...) {
            if (!failure)
                failure = std::current_exception();
        }
    }
    if (failure)
        std::rethrow_exception(failure);
}

double
parallelSum(ThreadPool &pool, std::int64_t begin, std::int64_t end,
            int chunks,
            const std::function<double(std::int64_t, std::int64_t)> &body)
{
    if (begin >= end)
        return 0.0;
    const std::int64_t span = end - begin;
    const std::int64_t parts =
        std::clamp<std::int64_t>(chunks, 1, span);
    // The per-chunk partials are combined in chunk-index order on BOTH
    // paths, so the floating-point result depends only on (begin, end,
    // chunks) — never on the worker count or pool availability.
    if (parts == 1 || pool.size() <= 1 || ThreadPool::insideWorker()) {
        double total = 0.0;
        for (std::int64_t c = 0; c < parts; ++c) {
            const std::int64_t lo = begin + span * c / parts;
            const std::int64_t hi = begin + span * (c + 1) / parts;
            total += body(lo, hi);
        }
        return total;
    }
    std::vector<std::future<double>> pending;
    pending.reserve(static_cast<std::size_t>(parts));
    for (std::int64_t c = 0; c < parts; ++c) {
        const std::int64_t lo = begin + span * c / parts;
        const std::int64_t hi = begin + span * (c + 1) / parts;
        pending.push_back(
            pool.submit([&body, lo, hi] { return body(lo, hi); }));
    }
    // As in parallelFor: settle every chunk before rethrowing so no
    // queued task outlives the referenced `body`.
    double total = 0.0;
    std::exception_ptr failure;
    for (auto &f : pending) { // chunk-index order: deterministic
        try {
            total += f.get();
        } catch (...) {
            if (!failure)
                failure = std::current_exception();
        }
    }
    if (failure)
        std::rethrow_exception(failure);
    return total;
}

} // namespace lsqca
