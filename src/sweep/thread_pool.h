#ifndef LSQCA_SWEEP_THREAD_POOL_H
#define LSQCA_SWEEP_THREAD_POOL_H

/**
 * @file
 * Fixed-size thread pool for the sweep engine and the parallel
 * statevector kernels.
 *
 * Design notes:
 *  - No work stealing: one FIFO queue under one mutex. Sweep jobs are
 *    coarse (whole simulate() calls) and kernel chunks are large, so
 *    queue contention is negligible and FIFO keeps completion order
 *    close to submission order.
 *  - submit() returns a std::future; exceptions thrown by a task are
 *    captured and rethrown from future::get(), never lost.
 *  - parallelFor() partitions an index range into a *fixed* number of
 *    chunks independent of the worker count, so any floating-point
 *    reduction built on it is bit-identical across 1/2/N-thread runs.
 *  - Pool workers that re-enter parallelFor() run the loop inline
 *    (never blocking on their own queue), making nested use safe.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/metrics.h"

namespace lsqca {

/** Fixed worker-count FIFO thread pool. */
class ThreadPool
{
  public:
    /** Spin up @p threads workers (minimum 1). */
    explicit ThreadPool(std::size_t threads);

    /** Drains nothing: pending tasks still run before workers exit. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue @p task; the returned future yields its result (or
     * rethrows its exception).
     */
    template <typename F>
    auto
    submit(F &&task) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto packaged = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(task));
        std::future<R> result = packaged->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            Queued entry;
            entry.run = [packaged] { (*packaged)(); };
            // Clock reads only when a registry is watching: the
            // default enqueue path stays timestamp-free.
            if (queueWait_.load(std::memory_order_relaxed) != nullptr) {
                entry.enqueued = std::chrono::steady_clock::now();
                entry.stamped = true;
            }
            queue_.push_back(std::move(entry));
        }
        if (metrics::Counter *tasks =
                tasks_.load(std::memory_order_relaxed))
            tasks->add();
        ready_.notify_one();
        return result;
    }

    /**
     * Attach @p registry (which must outlive the pool or a later
     * attachMetrics(nullptr)): every task's submit -> dequeue wait
     * lands in the `pool.queue_wait_seconds` histogram and submissions
     * count into `pool.tasks`. Detached (the default), the pool takes
     * no clock reads and the hot path is unchanged.
     */
    void attachMetrics(metrics::Registry *registry);

    /** Whether the calling thread is one of this pool's workers. */
    static bool insideWorker();

    /**
     * Process-wide pool for kernel parallelism, sized to the hardware
     * (hardware_concurrency, minimum 1). Created on first use.
     */
    static ThreadPool &shared();

  private:
    /** One queued task, optionally stamped with its enqueue time. */
    struct Queued
    {
        std::function<void()> run;
        std::chrono::steady_clock::time_point enqueued;
        bool stamped = false;
    };

    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<Queued> queue_;
    std::mutex mutex_;
    std::condition_variable ready_;
    bool stopping_ = false;
    /** Cached instruments of the attached registry (null = detached). */
    std::atomic<metrics::Counter *> tasks_{nullptr};
    std::atomic<metrics::Histogram *> queueWait_{nullptr};
};

/**
 * Run `body(begin, end)` over [begin, end) split into @p chunks equal
 * slices scheduled on @p pool, blocking until all complete. Chunk
 * boundaries depend only on (begin, end, chunks) — never on the worker
 * count — so per-chunk results are stable across pool sizes. Runs
 * inline when the range is empty, the pool has a single worker, or the
 * caller is itself a pool worker.
 */
void parallelFor(ThreadPool &pool, std::int64_t begin, std::int64_t end,
                 int chunks,
                 const std::function<void(std::int64_t, std::int64_t)> &body);

/**
 * Deterministic parallel sum: `body(begin, end)` returns a partial
 * value per chunk; partials are combined with += in chunk-index order,
 * so the result is bit-identical for any worker count.
 */
double parallelSum(ThreadPool &pool, std::int64_t begin, std::int64_t end,
                   int chunks,
                   const std::function<double(std::int64_t, std::int64_t)>
                       &body);

} // namespace lsqca

#endif // LSQCA_SWEEP_THREAD_POOL_H
