#ifndef LSQCA_GEOM_COORD_H
#define LSQCA_GEOM_COORD_H

/**
 * @file
 * Integer 2-D coordinates for surface-code cell grids.
 *
 * Convention used throughout the repository: @c row grows downward,
 * @c col grows rightward; the CR region sits at col < 0 relative to a SAM
 * bank, so "toward the port" means decreasing column.
 */

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <ostream>

namespace lsqca {

/** A cell position on a 2-D logical-qubit grid. */
struct Coord
{
    std::int32_t row = 0;
    std::int32_t col = 0;

    friend bool operator==(const Coord &, const Coord &) = default;

    Coord
    operator+(const Coord &o) const
    {
        return {row + o.row, col + o.col};
    }

    Coord
    operator-(const Coord &o) const
    {
        return {row - o.row, col - o.col};
    }
};

/** L1 distance — the number of nearest-neighbor steps between cells. */
inline std::int32_t
manhattan(const Coord &a, const Coord &b)
{
    return std::abs(a.row - b.row) + std::abs(a.col - b.col);
}

/** L-infinity distance — diagonal-allowed step count. */
inline std::int32_t
chebyshev(const Coord &a, const Coord &b)
{
    return std::max(std::abs(a.row - b.row), std::abs(a.col - b.col));
}

inline std::ostream &
operator<<(std::ostream &os, const Coord &c)
{
    return os << "(" << c.row << "," << c.col << ")";
}

} // namespace lsqca

template <>
struct std::hash<lsqca::Coord>
{
    std::size_t
    operator()(const lsqca::Coord &c) const noexcept
    {
        // Pack into 64 bits; rows/cols are far below 2^32 in practice.
        const auto r = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(c.row));
        const auto k = (r << 32) ^ static_cast<std::uint32_t>(c.col);
        return std::hash<std::uint64_t>{}(k);
    }
};

#endif // LSQCA_GEOM_COORD_H
