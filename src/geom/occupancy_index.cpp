#include "geom/occupancy_index.h"

#include <limits>

#include "common/error.h"

namespace lsqca {
namespace {

constexpr std::int32_t kWordBits = 64;

std::int32_t
lowestBit(std::uint64_t word)
{
    return static_cast<std::int32_t>(__builtin_ctzll(word));
}

std::int32_t
highestBit(std::uint64_t word)
{
    return 63 - static_cast<std::int32_t>(__builtin_clzll(word));
}

} // namespace

OccupancyIndex::OccupancyIndex(std::int32_t rows, std::int32_t cols)
    : rows_(rows), cols_(cols)
{
    LSQCA_REQUIRE(rows > 0 && cols > 0,
                  "OccupancyIndex dimensions must be positive");
    wordsPerRow_ = (cols + kWordBits - 1) / kWordBits;
    freeBits_.assign(static_cast<std::size_t>(rows) *
                         static_cast<std::size_t>(wordsPerRow_),
                     ~std::uint64_t{0});
    // Clear the padding bits past the last column in each row.
    const std::int32_t tail = cols % kWordBits;
    if (tail != 0) {
        const std::uint64_t last_mask = (std::uint64_t{1} << tail) - 1;
        for (std::int32_t r = 0; r < rows; ++r)
            freeBits_[static_cast<std::size_t>(r + 1) *
                          static_cast<std::size_t>(wordsPerRow_) -
                      1] = last_mask;
    }
    rowsWithEmpty_.assign(
        static_cast<std::size_t>((rows + kWordBits - 1) / kWordBits), 0);
    for (std::int32_t r = 0; r < rows; ++r)
        rowsWithEmpty_[static_cast<std::size_t>(r / kWordBits)] |=
            std::uint64_t{1} << (r % kWordBits);
    freeCountByRow_.assign(static_cast<std::size_t>(rows), cols);
}

void
OccupancyIndex::onOccupy(const Coord &c)
{
    auto &word = freeBits_[static_cast<std::size_t>(c.row) *
                               static_cast<std::size_t>(wordsPerRow_) +
                           static_cast<std::size_t>(c.col / kWordBits)];
    const std::uint64_t bit = std::uint64_t{1} << (c.col % kWordBits);
    LSQCA_ASSERT(word & bit, "occupancy index: cell was not empty");
    word &= ~bit;
    if (--freeCountByRow_[static_cast<std::size_t>(c.row)] == 0)
        rowsWithEmpty_[static_cast<std::size_t>(c.row / kWordBits)] &=
            ~(std::uint64_t{1} << (c.row % kWordBits));
}

void
OccupancyIndex::onVacate(const Coord &c)
{
    auto &word = freeBits_[static_cast<std::size_t>(c.row) *
                               static_cast<std::size_t>(wordsPerRow_) +
                           static_cast<std::size_t>(c.col / kWordBits)];
    const std::uint64_t bit = std::uint64_t{1} << (c.col % kWordBits);
    LSQCA_ASSERT(!(word & bit), "occupancy index: cell was already empty");
    word |= bit;
    if (freeCountByRow_[static_cast<std::size_t>(c.row)]++ == 0)
        rowsWithEmpty_[static_cast<std::size_t>(c.row / kWordBits)] |=
            std::uint64_t{1} << (c.row % kWordBits);
}

bool
OccupancyIndex::isEmpty(const Coord &c) const
{
    const std::uint64_t word =
        freeBits_[static_cast<std::size_t>(c.row) *
                      static_cast<std::size_t>(wordsPerRow_) +
                  static_cast<std::size_t>(c.col / kWordBits)];
    return (word >> (c.col % kWordBits)) & 1;
}

std::int32_t
OccupancyIndex::nextFreeCol(const std::uint64_t *row,
                            std::int32_t from) const
{
    std::int32_t w = from / kWordBits;
    std::uint64_t word = row[w] & (~std::uint64_t{0} << (from % kWordBits));
    while (true) {
        if (word != 0)
            return w * kWordBits + lowestBit(word);
        if (++w >= wordsPerRow_)
            return -1;
        word = row[w];
    }
}

std::int32_t
OccupancyIndex::prevFreeCol(const std::uint64_t *row,
                            std::int32_t from) const
{
    std::int32_t w = from / kWordBits;
    const std::int32_t shift = from % kWordBits;
    std::uint64_t word =
        row[w] & (shift == 63 ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << (shift + 1)) - 1);
    while (true) {
        if (word != 0)
            return w * kWordBits + highestBit(word);
        if (--w < 0)
            return -1;
        word = row[w];
    }
}

std::int32_t
OccupancyIndex::bestColInRow(std::int32_t row, std::int32_t target_col) const
{
    const std::uint64_t *bits = rowBits(row);
    // The scan visits columns in ascending order with a strict
    // "closer than best" test, so on an exact distance tie the smaller
    // column (the predecessor) wins.
    if (target_col <= 0)
        return nextFreeCol(bits, 0);
    if (target_col >= cols_ - 1)
        return prevFreeCol(bits, cols_ - 1);
    if (isEmpty({row, target_col}))
        return target_col;
    const std::int32_t pred = prevFreeCol(bits, target_col);
    const std::int32_t succ = nextFreeCol(bits, target_col);
    if (pred < 0)
        return succ;
    if (succ < 0)
        return pred;
    return target_col - pred <= succ - target_col ? pred : succ;
}

std::optional<Coord>
OccupancyIndex::nearestEmpty(const Coord &target) const
{
    std::optional<Coord> best;
    std::int32_t best_dist = std::numeric_limits<std::int32_t>::max();
    // Ascending row order reproduces the scan's cross-row tie-break
    // (smaller row wins an exact distance tie); a row whose vertical
    // distance alone already reaches best_dist cannot strictly improve
    // and is skipped without probing its column bits.
    for (std::size_t w = 0; w < rowsWithEmpty_.size(); ++w) {
        std::uint64_t word = rowsWithEmpty_[w];
        while (word != 0) {
            const std::int32_t r =
                static_cast<std::int32_t>(w) * kWordBits + lowestBit(word);
            word &= word - 1;
            const std::int32_t row_dist = std::abs(r - target.row);
            if (row_dist >= best_dist) {
                if (r > target.row)
                    return best; // rows only get farther from here on
                continue;
            }
            const std::int32_t col = bestColInRow(r, target.col);
            LSQCA_ASSERT(col >= 0,
                         "occupancy index: non-full row has no free column");
            const std::int32_t d = row_dist + std::abs(col - target.col);
            if (d < best_dist) {
                best_dist = d;
                best = Coord{r, col};
            }
        }
    }
    return best;
}

std::optional<Coord>
OccupancyIndex::nearestEmptyInRow(std::int32_t row,
                                  std::int32_t target_col) const
{
    LSQCA_REQUIRE(row >= 0 && row < rows_, "row out of range");
    if (freeCountByRow_[static_cast<std::size_t>(row)] == 0)
        return std::nullopt;
    return Coord{row, bestColInRow(row, target_col)};
}

std::vector<Coord>
OccupancyIndex::emptyCells() const
{
    std::vector<Coord> out;
    for (std::int32_t r = 0; r < rows_; ++r) {
        if (freeCountByRow_[static_cast<std::size_t>(r)] == 0)
            continue;
        const std::uint64_t *bits = rowBits(r);
        for (std::int32_t c = nextFreeCol(bits, 0); c >= 0;
             c = c + 1 < cols_ ? nextFreeCol(bits, c + 1) : -1)
            out.push_back({r, c});
    }
    return out;
}

} // namespace lsqca
