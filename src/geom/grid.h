#ifndef LSQCA_GEOM_GRID_H
#define LSQCA_GEOM_GRID_H

/**
 * @file
 * Occupancy grid for a SAM bank: which cell holds which logical qubit,
 * where the empty (auxiliary) cells are, and nearest-empty queries used by
 * the locality-aware store policy.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "common/error.h"
#include "geom/coord.h"
#include "geom/occupancy_index.h"

namespace lsqca {

/** Identifier of a logical qubit (program-level variable index). */
using QubitId = std::int32_t;

/** Sentinel for "no qubit". */
inline constexpr QubitId kNoQubit = -1;

/**
 * Mutation hook for an OccupancyGrid: every place/remove/relocate is
 * reported as the cell-level occupy/vacate pair it is (a relocate
 * vacates the source and occupies the destination, so the makeRoomAt
 * hole walk reports each shifted occupant). Detached by default; the
 * simulator attaches one per bank only while observers are present, so
 * the unobserved path pays a single never-taken branch per mutation.
 */
class CellListener
{
  public:
    virtual ~CellListener() = default;
    virtual void onCellOccupied(QubitId q, const Coord &c) = 0;
    virtual void onCellVacated(QubitId q, const Coord &c) = 0;
};

/**
 * Dense rows × cols occupancy grid.
 *
 * Cells hold either a QubitId or are empty (auxiliary). The grid offers
 * placement, removal, relocation, and nearest-empty search; it does not
 * know about scan cells or latency — that policy lives in src/arch.
 *
 * Nearest-empty queries are served by an incrementally maintained
 * OccupancyIndex (updated on every place/remove/relocate) instead of a
 * full-grid scan; results are bit-identical to the scan, including
 * tie-breaking. A monotonic version() counter bumps on every mutation
 * so callers (the bank cost models) can cache derived lookups and
 * invalidate them precisely.
 */
class OccupancyGrid
{
  public:
    /** Create an all-empty grid. @pre rows, cols > 0 */
    OccupancyGrid(std::int32_t rows, std::int32_t cols);

    std::int32_t rows() const { return rows_; }
    std::int32_t cols() const { return cols_; }
    std::int32_t cellCount() const { return rows_ * cols_; }

    /** Whether @p c lies inside the grid. */
    bool contains(const Coord &c) const;

    /** Qubit at cell @p c, or kNoQubit. @pre contains(c) */
    QubitId at(const Coord &c) const;

    bool isEmptyCell(const Coord &c) const { return at(c) == kNoQubit; }

    /** Number of occupied cells. */
    std::int32_t occupiedCount() const { return occupied_; }

    /** Number of empty cells. */
    std::int32_t emptyCount() const { return cellCount() - occupied_; }

    /** Place qubit @p q at empty cell @p c. @pre cell empty, q unplaced */
    void place(QubitId q, const Coord &c);

    /** Remove qubit @p q from the grid; its cell becomes empty. */
    Coord remove(QubitId q);

    /** Move qubit @p q to empty cell @p to. @pre to is empty */
    void relocate(QubitId q, const Coord &to);

    /** Position of qubit @p q, if placed. */
    std::optional<Coord> find(QubitId q) const;

    /** Position of qubit @p q. @pre q is placed */
    Coord locate(QubitId q) const;

    /**
     * Empty cell minimizing manhattan distance to @p target; nullopt
     * when the grid is full.
     *
     * Tie-breaking contract (pinned by tests/geom/grid_test.cpp and the
     * reference-oracle harness): among equal-distance candidates the
     * smallest row wins, and within that row the smallest column — the
     * first candidate a row-major scan with a strict "closer than best"
     * comparison would keep. The bank cost models depend on this order
     * being stable, so it is part of the API, not an implementation
     * detail.
     */
    std::optional<Coord> nearestEmpty(const Coord &target) const;

    /**
     * Empty cell in row @p row minimizing |col - target_col|, or nullopt
     * when the row is full. Equal-distance ties break toward the
     * smaller column (same scan-order contract as nearestEmpty).
     */
    std::optional<Coord> nearestEmptyInRow(std::int32_t row,
                                           std::int32_t target_col) const;

    /** All empty cells, row-major order. */
    std::vector<Coord> emptyCells() const;

    /**
     * Vacate cell @p dest by walking the nearest hole to it along a
     * Manhattan path (rows first), shifting each intervening occupant
     * one step toward the old hole — the sliding-puzzle insertion used
     * by locality-aware placement in a near-full memory.
     *
     * @return the number of hole steps (0 when @p dest was empty).
     * @pre the grid has at least one empty cell.
     */
    std::int32_t makeRoomAt(const Coord &dest);

    /**
     * Monotonic mutation counter: bumped by place/remove/relocate (and
     * therefore by makeRoomAt). Cache derived lookups keyed on this to
     * invalidate them exactly when the occupancy changes.
     */
    std::uint64_t version() const { return version_; }

    /**
     * Attach (or detach, with nullptr) the cell-event listener. The
     * grid does not own it; the caller keeps it alive while attached.
     */
    void setCellListener(CellListener *listener)
    {
        listener_ = listener;
    }

  private:
    std::size_t index(const Coord &c) const;

    /** relocate() sans notification; returns the vacated cell. */
    Coord relocateImpl(QubitId q, const Coord &to);

    /** positions_ slot for @p q, grown on demand; {-1,-1} = unplaced. */
    Coord &positionSlot(QubitId q);

    std::int32_t rows_;
    std::int32_t cols_;
    std::int32_t occupied_ = 0;
    std::uint64_t version_ = 0;
    std::vector<QubitId> cells_;
    /**
     * Qubit -> cell, indexed by QubitId (program variable indices are
     * dense, so a flat vector beats the hash map this replaced: the
     * position lookup is the single hottest operation in both the
     * detailed and fast-forward commit paths). row == -1 = unplaced.
     */
    std::vector<Coord> positions_;
    OccupancyIndex empties_;
    CellListener *listener_ = nullptr;
};

} // namespace lsqca

#endif // LSQCA_GEOM_GRID_H
