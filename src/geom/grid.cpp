#include "geom/grid.h"

namespace lsqca {

OccupancyGrid::OccupancyGrid(std::int32_t rows, std::int32_t cols)
    : rows_(rows),
      cols_(cols),
      cells_(rows > 0 && cols > 0
                 ? static_cast<std::size_t>(rows) *
                       static_cast<std::size_t>(cols)
                 : 0,
             kNoQubit),
      empties_(rows, cols) // validates rows, cols > 0
{
}

bool
OccupancyGrid::contains(const Coord &c) const
{
    return c.row >= 0 && c.row < rows_ && c.col >= 0 && c.col < cols_;
}

std::size_t
OccupancyGrid::index(const Coord &c) const
{
    LSQCA_ASSERT(contains(c), "grid coordinate out of range");
    return static_cast<std::size_t>(c.row) * static_cast<std::size_t>(cols_)
           + static_cast<std::size_t>(c.col);
}

QubitId
OccupancyGrid::at(const Coord &c) const
{
    return cells_[index(c)];
}

Coord &
OccupancyGrid::positionSlot(QubitId q)
{
    LSQCA_REQUIRE(q >= 0, "invalid qubit id");
    const auto idx = static_cast<std::size_t>(q);
    if (idx >= positions_.size())
        positions_.resize(idx + 1, Coord{-1, -1});
    return positions_[idx];
}

void
OccupancyGrid::place(QubitId q, const Coord &c)
{
    LSQCA_REQUIRE(q != kNoQubit, "cannot place the sentinel qubit");
    Coord &slot = positionSlot(q);
    LSQCA_REQUIRE(slot.row < 0, "qubit already placed");
    auto &cell = cells_[index(c)];
    LSQCA_REQUIRE(cell == kNoQubit, "cell already occupied");
    cell = q;
    slot = c;
    empties_.onOccupy(c);
    ++occupied_;
    ++version_;
    if (listener_)
        listener_->onCellOccupied(q, c);
}

Coord
OccupancyGrid::remove(QubitId q)
{
    Coord &slot = positionSlot(q);
    LSQCA_REQUIRE(slot.row >= 0, "qubit not placed");
    const Coord c = slot;
    cells_[index(c)] = kNoQubit;
    slot = Coord{-1, -1};
    empties_.onVacate(c);
    --occupied_;
    ++version_;
    if (listener_)
        listener_->onCellVacated(q, c);
    return c;
}

Coord
OccupancyGrid::relocateImpl(QubitId q, const Coord &to)
{
    auto &dest = cells_[index(to)];
    LSQCA_REQUIRE(dest == kNoQubit, "relocate destination occupied");
    Coord &slot = positionSlot(q);
    LSQCA_REQUIRE(slot.row >= 0, "qubit not placed");
    const Coord from = slot;
    cells_[index(from)] = kNoQubit;
    dest = q;
    empties_.onVacate(from);
    empties_.onOccupy(to);
    slot = to;
    ++version_;
    return from;
}

void
OccupancyGrid::relocate(QubitId q, const Coord &to)
{
    const Coord from = relocateImpl(q, to);
    if (listener_) {
        listener_->onCellVacated(q, from);
        listener_->onCellOccupied(q, to);
    }
}

std::optional<Coord>
OccupancyGrid::find(QubitId q) const
{
    const auto idx = static_cast<std::size_t>(q);
    if (q < 0 || idx >= positions_.size() || positions_[idx].row < 0)
        return std::nullopt;
    return positions_[idx];
}

Coord
OccupancyGrid::locate(QubitId q) const
{
    const auto pos = find(q);
    LSQCA_REQUIRE(pos.has_value(), "qubit not placed in grid");
    return *pos;
}

std::optional<Coord>
OccupancyGrid::nearestEmpty(const Coord &target) const
{
    return empties_.nearestEmpty(target);
}

std::optional<Coord>
OccupancyGrid::nearestEmptyInRow(std::int32_t row,
                                 std::int32_t target_col) const
{
    return empties_.nearestEmptyInRow(row, target_col);
}

std::int32_t
OccupancyGrid::makeRoomAt(const Coord &dest)
{
    LSQCA_REQUIRE(contains(dest), "makeRoomAt target out of range");
    if (isEmptyCell(dest))
        return 0;
    const auto hole = nearestEmpty(dest);
    LSQCA_REQUIRE(hole.has_value(), "makeRoomAt on a full grid");
    Coord cur = *hole;
    std::int32_t steps = 0;
    // The listener check is hoisted out of the walk: the virtual
    // notification call could touch anything, so keeping it inside
    // forces a listener_ reload per shifted occupant and cost the
    // unobserved hole walk ~13% (bank/point/storeCost kernel).
    CellListener *const listener = listener_;
    while (!(cur == dest)) {
        Coord next = cur;
        if (cur.row != dest.row)
            next.row += dest.row > cur.row ? 1 : -1;
        else
            next.col += dest.col > cur.col ? 1 : -1;
        const QubitId occupant = at(next);
        if (occupant != kNoQubit) {
            relocateImpl(occupant, cur);
            if (listener) {
                listener->onCellVacated(occupant, next);
                listener->onCellOccupied(occupant, cur);
            }
        }
        cur = next;
        ++steps;
    }
    return steps;
}

std::vector<Coord>
OccupancyGrid::emptyCells() const
{
    return empties_.emptyCells();
}

} // namespace lsqca
